file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_validation.dir/bench_sim_validation.cpp.o"
  "CMakeFiles/bench_sim_validation.dir/bench_sim_validation.cpp.o.d"
  "bench_sim_validation"
  "bench_sim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
