# Empty dependencies file for bench_sim_validation.
# This may be replaced when dependencies are built.
