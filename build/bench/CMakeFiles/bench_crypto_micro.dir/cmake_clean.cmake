file(REMOVE_RECURSE
  "CMakeFiles/bench_crypto_micro.dir/bench_crypto_micro.cpp.o"
  "CMakeFiles/bench_crypto_micro.dir/bench_crypto_micro.cpp.o.d"
  "bench_crypto_micro"
  "bench_crypto_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crypto_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
