# Empty compiler generated dependencies file for bench_crypto_micro.
# This may be replaced when dependencies are built.
