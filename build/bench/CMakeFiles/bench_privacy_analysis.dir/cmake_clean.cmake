file(REMOVE_RECURSE
  "CMakeFiles/bench_privacy_analysis.dir/bench_privacy_analysis.cpp.o"
  "CMakeFiles/bench_privacy_analysis.dir/bench_privacy_analysis.cpp.o.d"
  "bench_privacy_analysis"
  "bench_privacy_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_privacy_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
