# Empty dependencies file for bench_e2e_prototype.
# This may be replaced when dependencies are built.
