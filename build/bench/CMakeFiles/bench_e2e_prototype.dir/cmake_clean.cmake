file(REMOVE_RECURSE
  "CMakeFiles/bench_e2e_prototype.dir/bench_e2e_prototype.cpp.o"
  "CMakeFiles/bench_e2e_prototype.dir/bench_e2e_prototype.cpp.o.d"
  "bench_e2e_prototype"
  "bench_e2e_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2e_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
