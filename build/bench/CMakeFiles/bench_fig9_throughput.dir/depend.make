# Empty dependencies file for bench_fig9_throughput.
# This may be replaced when dependencies are built.
