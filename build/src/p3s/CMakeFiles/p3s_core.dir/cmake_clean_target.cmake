file(REMOVE_RECURSE
  "libp3s_core.a"
)
