file(REMOVE_RECURSE
  "CMakeFiles/p3s_core.dir/anonymizer.cpp.o"
  "CMakeFiles/p3s_core.dir/anonymizer.cpp.o.d"
  "CMakeFiles/p3s_core.dir/ara.cpp.o"
  "CMakeFiles/p3s_core.dir/ara.cpp.o.d"
  "CMakeFiles/p3s_core.dir/credentials.cpp.o"
  "CMakeFiles/p3s_core.dir/credentials.cpp.o.d"
  "CMakeFiles/p3s_core.dir/dissemination.cpp.o"
  "CMakeFiles/p3s_core.dir/dissemination.cpp.o.d"
  "CMakeFiles/p3s_core.dir/messages.cpp.o"
  "CMakeFiles/p3s_core.dir/messages.cpp.o.d"
  "CMakeFiles/p3s_core.dir/publisher.cpp.o"
  "CMakeFiles/p3s_core.dir/publisher.cpp.o.d"
  "CMakeFiles/p3s_core.dir/registration.cpp.o"
  "CMakeFiles/p3s_core.dir/registration.cpp.o.d"
  "CMakeFiles/p3s_core.dir/repository.cpp.o"
  "CMakeFiles/p3s_core.dir/repository.cpp.o.d"
  "CMakeFiles/p3s_core.dir/subscriber.cpp.o"
  "CMakeFiles/p3s_core.dir/subscriber.cpp.o.d"
  "CMakeFiles/p3s_core.dir/system.cpp.o"
  "CMakeFiles/p3s_core.dir/system.cpp.o.d"
  "CMakeFiles/p3s_core.dir/token_server.cpp.o"
  "CMakeFiles/p3s_core.dir/token_server.cpp.o.d"
  "libp3s_core.a"
  "libp3s_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
