
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p3s/anonymizer.cpp" "src/p3s/CMakeFiles/p3s_core.dir/anonymizer.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/anonymizer.cpp.o.d"
  "/root/repo/src/p3s/ara.cpp" "src/p3s/CMakeFiles/p3s_core.dir/ara.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/ara.cpp.o.d"
  "/root/repo/src/p3s/credentials.cpp" "src/p3s/CMakeFiles/p3s_core.dir/credentials.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/credentials.cpp.o.d"
  "/root/repo/src/p3s/dissemination.cpp" "src/p3s/CMakeFiles/p3s_core.dir/dissemination.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/dissemination.cpp.o.d"
  "/root/repo/src/p3s/messages.cpp" "src/p3s/CMakeFiles/p3s_core.dir/messages.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/messages.cpp.o.d"
  "/root/repo/src/p3s/publisher.cpp" "src/p3s/CMakeFiles/p3s_core.dir/publisher.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/publisher.cpp.o.d"
  "/root/repo/src/p3s/registration.cpp" "src/p3s/CMakeFiles/p3s_core.dir/registration.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/registration.cpp.o.d"
  "/root/repo/src/p3s/repository.cpp" "src/p3s/CMakeFiles/p3s_core.dir/repository.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/repository.cpp.o.d"
  "/root/repo/src/p3s/subscriber.cpp" "src/p3s/CMakeFiles/p3s_core.dir/subscriber.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/subscriber.cpp.o.d"
  "/root/repo/src/p3s/system.cpp" "src/p3s/CMakeFiles/p3s_core.dir/system.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/system.cpp.o.d"
  "/root/repo/src/p3s/token_server.cpp" "src/p3s/CMakeFiles/p3s_core.dir/token_server.cpp.o" "gcc" "src/p3s/CMakeFiles/p3s_core.dir/token_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/abe/CMakeFiles/p3s_abe.dir/DependInfo.cmake"
  "/root/repo/build/src/pbe/CMakeFiles/p3s_pbe.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p3s_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pairing/CMakeFiles/p3s_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/p3s_math.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p3s_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p3s_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
