# Empty compiler generated dependencies file for p3s_core.
# This may be replaced when dependencies are built.
