# CMake generated Testfile for 
# Source directory: /root/repo/src/p3s
# Build directory: /root/repo/build/src/p3s
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
