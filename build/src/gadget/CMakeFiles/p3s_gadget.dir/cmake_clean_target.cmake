file(REMOVE_RECURSE
  "libp3s_gadget.a"
)
