# Empty dependencies file for p3s_gadget.
# This may be replaced when dependencies are built.
