file(REMOVE_RECURSE
  "CMakeFiles/p3s_gadget.dir/gadget.cpp.o"
  "CMakeFiles/p3s_gadget.dir/gadget.cpp.o.d"
  "libp3s_gadget.a"
  "libp3s_gadget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
