
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pairing/curve.cpp" "src/pairing/CMakeFiles/p3s_pairing.dir/curve.cpp.o" "gcc" "src/pairing/CMakeFiles/p3s_pairing.dir/curve.cpp.o.d"
  "/root/repo/src/pairing/ecies.cpp" "src/pairing/CMakeFiles/p3s_pairing.dir/ecies.cpp.o" "gcc" "src/pairing/CMakeFiles/p3s_pairing.dir/ecies.cpp.o.d"
  "/root/repo/src/pairing/fq2.cpp" "src/pairing/CMakeFiles/p3s_pairing.dir/fq2.cpp.o" "gcc" "src/pairing/CMakeFiles/p3s_pairing.dir/fq2.cpp.o.d"
  "/root/repo/src/pairing/pairing.cpp" "src/pairing/CMakeFiles/p3s_pairing.dir/pairing.cpp.o" "gcc" "src/pairing/CMakeFiles/p3s_pairing.dir/pairing.cpp.o.d"
  "/root/repo/src/pairing/schnorr.cpp" "src/pairing/CMakeFiles/p3s_pairing.dir/schnorr.cpp.o" "gcc" "src/pairing/CMakeFiles/p3s_pairing.dir/schnorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/p3s_math.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p3s_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p3s_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
