file(REMOVE_RECURSE
  "libp3s_pairing.a"
)
