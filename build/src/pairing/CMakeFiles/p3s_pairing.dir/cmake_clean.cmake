file(REMOVE_RECURSE
  "CMakeFiles/p3s_pairing.dir/curve.cpp.o"
  "CMakeFiles/p3s_pairing.dir/curve.cpp.o.d"
  "CMakeFiles/p3s_pairing.dir/ecies.cpp.o"
  "CMakeFiles/p3s_pairing.dir/ecies.cpp.o.d"
  "CMakeFiles/p3s_pairing.dir/fq2.cpp.o"
  "CMakeFiles/p3s_pairing.dir/fq2.cpp.o.d"
  "CMakeFiles/p3s_pairing.dir/pairing.cpp.o"
  "CMakeFiles/p3s_pairing.dir/pairing.cpp.o.d"
  "CMakeFiles/p3s_pairing.dir/schnorr.cpp.o"
  "CMakeFiles/p3s_pairing.dir/schnorr.cpp.o.d"
  "libp3s_pairing.a"
  "libp3s_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
