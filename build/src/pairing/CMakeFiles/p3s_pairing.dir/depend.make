# Empty dependencies file for p3s_pairing.
# This may be replaced when dependencies are built.
