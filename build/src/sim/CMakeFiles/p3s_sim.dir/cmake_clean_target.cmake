file(REMOVE_RECURSE
  "libp3s_sim.a"
)
