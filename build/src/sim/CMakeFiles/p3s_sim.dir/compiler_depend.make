# Empty compiler generated dependencies file for p3s_sim.
# This may be replaced when dependencies are built.
