file(REMOVE_RECURSE
  "CMakeFiles/p3s_sim.dir/engine.cpp.o"
  "CMakeFiles/p3s_sim.dir/engine.cpp.o.d"
  "CMakeFiles/p3s_sim.dir/simnet.cpp.o"
  "CMakeFiles/p3s_sim.dir/simnet.cpp.o.d"
  "libp3s_sim.a"
  "libp3s_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
