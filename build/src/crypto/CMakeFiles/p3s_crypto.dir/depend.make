# Empty dependencies file for p3s_crypto.
# This may be replaced when dependencies are built.
