file(REMOVE_RECURSE
  "libp3s_crypto.a"
)
