file(REMOVE_RECURSE
  "CMakeFiles/p3s_crypto.dir/aead.cpp.o"
  "CMakeFiles/p3s_crypto.dir/aead.cpp.o.d"
  "CMakeFiles/p3s_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/p3s_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/p3s_crypto.dir/drbg.cpp.o"
  "CMakeFiles/p3s_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/p3s_crypto.dir/hmac.cpp.o"
  "CMakeFiles/p3s_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/p3s_crypto.dir/poly1305.cpp.o"
  "CMakeFiles/p3s_crypto.dir/poly1305.cpp.o.d"
  "CMakeFiles/p3s_crypto.dir/sha256.cpp.o"
  "CMakeFiles/p3s_crypto.dir/sha256.cpp.o.d"
  "libp3s_crypto.a"
  "libp3s_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
