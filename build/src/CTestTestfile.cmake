# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("math")
subdirs("pairing")
subdirs("crypto")
subdirs("abe")
subdirs("pbe")
subdirs("sim")
subdirs("net")
subdirs("broker")
subdirs("p3s")
subdirs("gadget")
subdirs("model")
