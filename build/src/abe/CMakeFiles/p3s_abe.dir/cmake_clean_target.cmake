file(REMOVE_RECURSE
  "libp3s_abe.a"
)
