# Empty dependencies file for p3s_abe.
# This may be replaced when dependencies are built.
