file(REMOVE_RECURSE
  "CMakeFiles/p3s_abe.dir/cpabe.cpp.o"
  "CMakeFiles/p3s_abe.dir/cpabe.cpp.o.d"
  "CMakeFiles/p3s_abe.dir/policy.cpp.o"
  "CMakeFiles/p3s_abe.dir/policy.cpp.o.d"
  "CMakeFiles/p3s_abe.dir/shamir.cpp.o"
  "CMakeFiles/p3s_abe.dir/shamir.cpp.o.d"
  "libp3s_abe.a"
  "libp3s_abe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_abe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
