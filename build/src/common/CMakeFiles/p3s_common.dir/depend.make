# Empty dependencies file for p3s_common.
# This may be replaced when dependencies are built.
