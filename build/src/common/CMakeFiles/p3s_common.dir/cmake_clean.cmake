file(REMOVE_RECURSE
  "CMakeFiles/p3s_common.dir/bytes.cpp.o"
  "CMakeFiles/p3s_common.dir/bytes.cpp.o.d"
  "CMakeFiles/p3s_common.dir/guid.cpp.o"
  "CMakeFiles/p3s_common.dir/guid.cpp.o.d"
  "CMakeFiles/p3s_common.dir/log.cpp.o"
  "CMakeFiles/p3s_common.dir/log.cpp.o.d"
  "CMakeFiles/p3s_common.dir/rng.cpp.o"
  "CMakeFiles/p3s_common.dir/rng.cpp.o.d"
  "CMakeFiles/p3s_common.dir/serial.cpp.o"
  "CMakeFiles/p3s_common.dir/serial.cpp.o.d"
  "libp3s_common.a"
  "libp3s_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
