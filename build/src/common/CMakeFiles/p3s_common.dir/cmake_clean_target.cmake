file(REMOVE_RECURSE
  "libp3s_common.a"
)
