file(REMOVE_RECURSE
  "CMakeFiles/p3s_model.dir/analytic.cpp.o"
  "CMakeFiles/p3s_model.dir/analytic.cpp.o.d"
  "CMakeFiles/p3s_model.dir/flowsim.cpp.o"
  "CMakeFiles/p3s_model.dir/flowsim.cpp.o.d"
  "CMakeFiles/p3s_model.dir/workload.cpp.o"
  "CMakeFiles/p3s_model.dir/workload.cpp.o.d"
  "libp3s_model.a"
  "libp3s_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
