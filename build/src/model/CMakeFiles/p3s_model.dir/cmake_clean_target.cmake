file(REMOVE_RECURSE
  "libp3s_model.a"
)
