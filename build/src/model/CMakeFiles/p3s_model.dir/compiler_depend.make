# Empty compiler generated dependencies file for p3s_model.
# This may be replaced when dependencies are built.
