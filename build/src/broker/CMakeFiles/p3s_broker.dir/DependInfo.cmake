
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/broker/baseline.cpp" "src/broker/CMakeFiles/p3s_broker.dir/baseline.cpp.o" "gcc" "src/broker/CMakeFiles/p3s_broker.dir/baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pbe/CMakeFiles/p3s_pbe.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p3s_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pairing/CMakeFiles/p3s_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/p3s_math.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p3s_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p3s_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
