file(REMOVE_RECURSE
  "libp3s_broker.a"
)
