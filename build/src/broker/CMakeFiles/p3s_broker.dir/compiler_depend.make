# Empty compiler generated dependencies file for p3s_broker.
# This may be replaced when dependencies are built.
