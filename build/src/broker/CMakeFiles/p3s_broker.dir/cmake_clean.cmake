file(REMOVE_RECURSE
  "CMakeFiles/p3s_broker.dir/baseline.cpp.o"
  "CMakeFiles/p3s_broker.dir/baseline.cpp.o.d"
  "libp3s_broker.a"
  "libp3s_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
