file(REMOVE_RECURSE
  "CMakeFiles/p3s_pbe.dir/epoch.cpp.o"
  "CMakeFiles/p3s_pbe.dir/epoch.cpp.o.d"
  "CMakeFiles/p3s_pbe.dir/hve.cpp.o"
  "CMakeFiles/p3s_pbe.dir/hve.cpp.o.d"
  "CMakeFiles/p3s_pbe.dir/schema.cpp.o"
  "CMakeFiles/p3s_pbe.dir/schema.cpp.o.d"
  "libp3s_pbe.a"
  "libp3s_pbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_pbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
