file(REMOVE_RECURSE
  "libp3s_pbe.a"
)
