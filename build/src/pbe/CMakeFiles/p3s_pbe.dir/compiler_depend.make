# Empty compiler generated dependencies file for p3s_pbe.
# This may be replaced when dependencies are built.
