file(REMOVE_RECURSE
  "CMakeFiles/p3s_math.dir/bigint.cpp.o"
  "CMakeFiles/p3s_math.dir/bigint.cpp.o.d"
  "CMakeFiles/p3s_math.dir/modular.cpp.o"
  "CMakeFiles/p3s_math.dir/modular.cpp.o.d"
  "CMakeFiles/p3s_math.dir/montgomery.cpp.o"
  "CMakeFiles/p3s_math.dir/montgomery.cpp.o.d"
  "CMakeFiles/p3s_math.dir/prime.cpp.o"
  "CMakeFiles/p3s_math.dir/prime.cpp.o.d"
  "libp3s_math.a"
  "libp3s_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
