file(REMOVE_RECURSE
  "libp3s_math.a"
)
