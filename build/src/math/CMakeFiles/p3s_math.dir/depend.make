# Empty dependencies file for p3s_math.
# This may be replaced when dependencies are built.
