
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/bigint.cpp" "src/math/CMakeFiles/p3s_math.dir/bigint.cpp.o" "gcc" "src/math/CMakeFiles/p3s_math.dir/bigint.cpp.o.d"
  "/root/repo/src/math/modular.cpp" "src/math/CMakeFiles/p3s_math.dir/modular.cpp.o" "gcc" "src/math/CMakeFiles/p3s_math.dir/modular.cpp.o.d"
  "/root/repo/src/math/montgomery.cpp" "src/math/CMakeFiles/p3s_math.dir/montgomery.cpp.o" "gcc" "src/math/CMakeFiles/p3s_math.dir/montgomery.cpp.o.d"
  "/root/repo/src/math/prime.cpp" "src/math/CMakeFiles/p3s_math.dir/prime.cpp.o" "gcc" "src/math/CMakeFiles/p3s_math.dir/prime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/p3s_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
