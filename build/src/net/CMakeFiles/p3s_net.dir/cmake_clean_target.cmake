file(REMOVE_RECURSE
  "libp3s_net.a"
)
