# Empty dependencies file for p3s_net.
# This may be replaced when dependencies are built.
