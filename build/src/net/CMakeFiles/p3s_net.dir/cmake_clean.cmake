file(REMOVE_RECURSE
  "CMakeFiles/p3s_net.dir/async.cpp.o"
  "CMakeFiles/p3s_net.dir/async.cpp.o.d"
  "CMakeFiles/p3s_net.dir/network.cpp.o"
  "CMakeFiles/p3s_net.dir/network.cpp.o.d"
  "CMakeFiles/p3s_net.dir/secure.cpp.o"
  "CMakeFiles/p3s_net.dir/secure.cpp.o.d"
  "libp3s_net.a"
  "libp3s_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
