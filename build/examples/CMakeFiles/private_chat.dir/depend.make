# Empty dependencies file for private_chat.
# This may be replaced when dependencies are built.
