file(REMOVE_RECURSE
  "CMakeFiles/private_chat.dir/private_chat.cpp.o"
  "CMakeFiles/private_chat.dir/private_chat.cpp.o.d"
  "private_chat"
  "private_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/private_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
