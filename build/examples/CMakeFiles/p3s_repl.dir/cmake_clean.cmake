file(REMOVE_RECURSE
  "CMakeFiles/p3s_repl.dir/p3s_repl.cpp.o"
  "CMakeFiles/p3s_repl.dir/p3s_repl.cpp.o.d"
  "p3s_repl"
  "p3s_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p3s_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
