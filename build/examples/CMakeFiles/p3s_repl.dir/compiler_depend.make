# Empty compiler generated dependencies file for p3s_repl.
# This may be replaced when dependencies are built.
