# Empty dependencies file for ma_dealroom.
# This may be replaced when dependencies are built.
