file(REMOVE_RECURSE
  "CMakeFiles/ma_dealroom.dir/ma_dealroom.cpp.o"
  "CMakeFiles/ma_dealroom.dir/ma_dealroom.cpp.o.d"
  "ma_dealroom"
  "ma_dealroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ma_dealroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
