file(REMOVE_RECURSE
  "CMakeFiles/coalition_intel.dir/coalition_intel.cpp.o"
  "CMakeFiles/coalition_intel.dir/coalition_intel.cpp.o.d"
  "coalition_intel"
  "coalition_intel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coalition_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
