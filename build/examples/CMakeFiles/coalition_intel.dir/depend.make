# Empty dependencies file for coalition_intel.
# This may be replaced when dependencies are built.
