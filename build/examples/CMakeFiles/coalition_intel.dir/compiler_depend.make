# Empty compiler generated dependencies file for coalition_intel.
# This may be replaced when dependencies are built.
