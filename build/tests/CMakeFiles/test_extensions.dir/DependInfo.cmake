
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/test_extensions.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/test_extensions.dir/extensions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p3s/CMakeFiles/p3s_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/p3s_model.dir/DependInfo.cmake"
  "/root/repo/build/src/abe/CMakeFiles/p3s_abe.dir/DependInfo.cmake"
  "/root/repo/build/src/pbe/CMakeFiles/p3s_pbe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p3s_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p3s_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pairing/CMakeFiles/p3s_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/p3s_math.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/p3s_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/p3s_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
