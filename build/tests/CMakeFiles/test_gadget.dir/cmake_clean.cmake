file(REMOVE_RECURSE
  "CMakeFiles/test_gadget.dir/gadget_test.cpp.o"
  "CMakeFiles/test_gadget.dir/gadget_test.cpp.o.d"
  "test_gadget"
  "test_gadget.pdb"
  "test_gadget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gadget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
