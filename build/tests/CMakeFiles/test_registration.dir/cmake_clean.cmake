file(REMOVE_RECURSE
  "CMakeFiles/test_registration.dir/registration_test.cpp.o"
  "CMakeFiles/test_registration.dir/registration_test.cpp.o.d"
  "test_registration"
  "test_registration.pdb"
  "test_registration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
