# Empty compiler generated dependencies file for test_registration.
# This may be replaced when dependencies are built.
