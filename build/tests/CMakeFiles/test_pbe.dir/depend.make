# Empty dependencies file for test_pbe.
# This may be replaced when dependencies are built.
