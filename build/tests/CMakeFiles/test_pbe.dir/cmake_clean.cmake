file(REMOVE_RECURSE
  "CMakeFiles/test_pbe.dir/hve_test.cpp.o"
  "CMakeFiles/test_pbe.dir/hve_test.cpp.o.d"
  "CMakeFiles/test_pbe.dir/schema_test.cpp.o"
  "CMakeFiles/test_pbe.dir/schema_test.cpp.o.d"
  "test_pbe"
  "test_pbe.pdb"
  "test_pbe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
