file(REMOVE_RECURSE
  "CMakeFiles/test_pairing.dir/pairing_test.cpp.o"
  "CMakeFiles/test_pairing.dir/pairing_test.cpp.o.d"
  "test_pairing"
  "test_pairing.pdb"
  "test_pairing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
