file(REMOVE_RECURSE
  "CMakeFiles/test_math.dir/bigint_test.cpp.o"
  "CMakeFiles/test_math.dir/bigint_test.cpp.o.d"
  "CMakeFiles/test_math.dir/modular_test.cpp.o"
  "CMakeFiles/test_math.dir/modular_test.cpp.o.d"
  "CMakeFiles/test_math.dir/montgomery_test.cpp.o"
  "CMakeFiles/test_math.dir/montgomery_test.cpp.o.d"
  "CMakeFiles/test_math.dir/prime_test.cpp.o"
  "CMakeFiles/test_math.dir/prime_test.cpp.o.d"
  "test_math"
  "test_math.pdb"
  "test_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
