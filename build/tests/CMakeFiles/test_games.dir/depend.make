# Empty dependencies file for test_games.
# This may be replaced when dependencies are built.
