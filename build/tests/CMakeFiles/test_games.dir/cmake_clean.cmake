file(REMOVE_RECURSE
  "CMakeFiles/test_games.dir/games_test.cpp.o"
  "CMakeFiles/test_games.dir/games_test.cpp.o.d"
  "test_games"
  "test_games.pdb"
  "test_games[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
