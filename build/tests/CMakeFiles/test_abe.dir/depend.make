# Empty dependencies file for test_abe.
# This may be replaced when dependencies are built.
