file(REMOVE_RECURSE
  "CMakeFiles/test_abe.dir/cpabe_test.cpp.o"
  "CMakeFiles/test_abe.dir/cpabe_test.cpp.o.d"
  "CMakeFiles/test_abe.dir/policy_test.cpp.o"
  "CMakeFiles/test_abe.dir/policy_test.cpp.o.d"
  "test_abe"
  "test_abe.pdb"
  "test_abe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_abe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
