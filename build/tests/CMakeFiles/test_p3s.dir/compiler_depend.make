# Empty compiler generated dependencies file for test_p3s.
# This may be replaced when dependencies are built.
