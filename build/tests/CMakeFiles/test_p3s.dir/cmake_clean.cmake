file(REMOVE_RECURSE
  "CMakeFiles/test_p3s.dir/p3s_test.cpp.o"
  "CMakeFiles/test_p3s.dir/p3s_test.cpp.o.d"
  "CMakeFiles/test_p3s.dir/privacy_test.cpp.o"
  "CMakeFiles/test_p3s.dir/privacy_test.cpp.o.d"
  "test_p3s"
  "test_p3s.pdb"
  "test_p3s[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p3s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
