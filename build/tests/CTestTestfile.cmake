# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_pairing[1]_include.cmake")
include("/root/repo/build/tests/test_abe[1]_include.cmake")
include("/root/repo/build/tests/test_pbe[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_broker[1]_include.cmake")
include("/root/repo/build/tests/test_p3s[1]_include.cmake")
include("/root/repo/build/tests/test_gadget[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_games[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_registration[1]_include.cmake")
include("/root/repo/build/tests/test_async[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_messages[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
