// Gadget framework (paper §6.1): "a simple mechanism we developed to capture
// information dependency underneath an encryption scheme." A gadget is a
// directed graph whose nodes are information elements or AND gates; an edge
// u → v means v depends on u. An information element becomes derivable when
// ANY of its incoming derivations fires; an AND gate fires when ALL of its
// inputs are derivable.
//
// Privacy analysis = compute the derivation closure of what a participant
// saw, then check whether any sensitive element (dark-bordered in the
// paper's Fig. 5) landed in the closure.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace p3s::gadget {

using NodeId = std::uint32_t;

class Gadget {
 public:
  /// Add an information element. `sensitive` marks it as subject to a
  /// privacy requirement (dark border in Fig. 5). Names must be unique.
  NodeId add_info(const std::string& name, bool sensitive = false);

  /// Add an AND gate (an operation like Encrypt/GenToken/Query).
  NodeId add_and(const std::string& label);

  /// Information flows from `from` into `to`.
  void add_edge(NodeId from, NodeId to);

  /// Convenience: gate with the given inputs feeding `output`.
  NodeId add_derivation(const std::string& label,
                        const std::vector<NodeId>& inputs, NodeId output);

  /// Look up an element by name; throws std::out_of_range if absent.
  NodeId find(const std::string& name) const;
  const std::string& name_of(NodeId id) const;
  bool is_sensitive(NodeId id) const;

  /// Fixpoint closure: everything derivable from `known`.
  std::set<NodeId> derive(const std::set<NodeId>& known) const;
  bool derivable(const std::set<NodeId>& known, NodeId target) const;
  bool derivable(const std::set<NodeId>& known, const std::string& target) const;

  /// Sensitive elements exposed to a participant with the given knowledge.
  std::vector<std::string> exposed_sensitive(const std::set<NodeId>& known) const;

  std::size_t node_count() const { return nodes_.size(); }

  /// Graphviz rendering of the gadget, mirroring the paper's Fig. 5 visual
  /// conventions: information elements as ellipses (sensitive ones with a
  /// dark border), AND gates as boxes.
  std::string to_dot(const std::string& graph_name = "gadget") const;

 private:
  struct Node {
    std::string name;
    bool is_gate = false;
    bool sensitive = false;
    std::vector<NodeId> inputs;  // predecessors
  };

  std::vector<Node> nodes_;
  std::map<std::string, NodeId> by_name_;
};

/// A participant's accumulated knowledge (the "curious" memory of an HBC
/// party), convertible to a node set against a gadget.
class Knowledge {
 public:
  Knowledge& sees(const Gadget& g, const std::string& element);
  Knowledge& sees_all(const Gadget& g,
                      std::initializer_list<const char*> elements);
  const std::set<NodeId>& nodes() const { return nodes_; }

  /// Collusion: pool knowledge of several HBC participants.
  static Knowledge pool(const Knowledge& a, const Knowledge& b);

 private:
  std::set<NodeId> nodes_;
};

// --- Prebuilt gadgets for the schemes P3S uses ----------------------------------

/// The PBE gadget of Fig. 5, including the extended association elements
/// a_pid_x (publisher ↔ metadata) and a_sid_y (subscriber ↔ interest), and
/// the two attack gates shown with orange edges:
///   * token probing: (token, pk, encrypt-capability) → y
///   * exhaustive tokens: (ciphertext, all-tokens) → x
Gadget make_pbe_gadget();

/// CP-ABE gadget: policy is public; payload m_A derivable from ciphertext +
/// a satisfying key; keys derive only from the master key.
Gadget make_cpabe_gadget();

/// Public-key (ECIES-style) envelope gadget.
Gadget make_pk_gadget();

/// Symmetric-key (AEAD under Ks) gadget.
Gadget make_sk_gadget();

}  // namespace p3s::gadget
