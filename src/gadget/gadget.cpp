#include "gadget/gadget.hpp"

#include <stdexcept>

namespace p3s::gadget {

NodeId Gadget::add_info(const std::string& name, bool sensitive) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Gadget: duplicate element '" + name + "'");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({name, /*is_gate=*/false, sensitive, {}});
  by_name_.emplace(name, id);
  return id;
}

NodeId Gadget::add_and(const std::string& label) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({label, /*is_gate=*/true, false, {}});
  return id;
}

void Gadget::add_edge(NodeId from, NodeId to) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("Gadget: bad node id");
  }
  nodes_[to].inputs.push_back(from);
}

NodeId Gadget::add_derivation(const std::string& label,
                              const std::vector<NodeId>& inputs,
                              NodeId output) {
  const NodeId gate = add_and(label);
  for (NodeId in : inputs) add_edge(in, gate);
  add_edge(gate, output);
  return gate;
}

NodeId Gadget::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("Gadget: unknown element '" + name + "'");
  }
  return it->second;
}

const std::string& Gadget::name_of(NodeId id) const { return nodes_.at(id).name; }

bool Gadget::is_sensitive(NodeId id) const { return nodes_.at(id).sensitive; }

std::set<NodeId> Gadget::derive(const std::set<NodeId>& known) const {
  std::set<NodeId> closure = known;
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      if (closure.contains(id)) continue;
      const Node& node = nodes_[id];
      if (node.inputs.empty()) continue;  // roots only enter via `known`
      bool fires;
      if (node.is_gate) {
        // AND gate: all inputs required.
        fires = true;
        for (NodeId in : node.inputs) {
          if (!closure.contains(in)) {
            fires = false;
            break;
          }
        }
      } else {
        // Information element: any one derivation suffices.
        fires = false;
        for (NodeId in : node.inputs) {
          if (closure.contains(in)) {
            fires = true;
            break;
          }
        }
      }
      if (fires) {
        closure.insert(id);
        changed = true;
      }
    }
  }
  return closure;
}

bool Gadget::derivable(const std::set<NodeId>& known, NodeId target) const {
  return derive(known).contains(target);
}

bool Gadget::derivable(const std::set<NodeId>& known,
                       const std::string& target) const {
  return derivable(known, find(target));
}

std::vector<std::string> Gadget::exposed_sensitive(
    const std::set<NodeId>& known) const {
  std::vector<std::string> out;
  const std::set<NodeId> closure = derive(known);
  for (NodeId id : closure) {
    if (!nodes_[id].is_gate && nodes_[id].sensitive && !known.contains(id)) {
      out.push_back(nodes_[id].name);
    }
  }
  return out;
}

std::string Gadget::to_dot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n  rankdir=LR;\n";
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    out += "  n" + std::to_string(id) + " [label=\"" + node.name + "\"";
    if (node.is_gate) {
      out += ", shape=box, style=filled, fillcolor=lightgray";
    } else if (node.sensitive) {
      out += ", shape=ellipse, penwidth=3";
    } else {
      out += ", shape=ellipse";
    }
    out += "];\n";
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId in : nodes_[id].inputs) {
      out += "  n" + std::to_string(in) + " -> n" + std::to_string(id) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

Knowledge& Knowledge::sees(const Gadget& g, const std::string& element) {
  nodes_.insert(g.find(element));
  return *this;
}

Knowledge& Knowledge::sees_all(const Gadget& g,
                               std::initializer_list<const char*> elements) {
  for (const char* e : elements) sees(g, e);
  return *this;
}

Knowledge Knowledge::pool(const Knowledge& a, const Knowledge& b) {
  Knowledge k;
  k.nodes_ = a.nodes_;
  k.nodes_.insert(b.nodes_.begin(), b.nodes_.end());
  return k;
}

// --- Prebuilt gadgets ---------------------------------------------------------------

Gadget make_pbe_gadget() {
  Gadget g;
  // Core elements (Fig. 5). Sensitive: message (GUID), attribute vector x
  // (metadata), interest vector y, and the identity associations.
  const NodeId m = g.add_info("m", /*sensitive=*/true);        // plaintext GUID
  const NodeId x = g.add_info("x", /*sensitive=*/true);        // metadata vector
  const NodeId y = g.add_info("y", /*sensitive=*/true);        // interest vector
  const NodeId pk = g.add_info("pk_pbe");
  const NodeId sk = g.add_info("sk_pbe");
  const NodeId ct = g.add_info("ct_pbe");
  const NodeId token = g.add_info("t_y");
  // Capability/space elements for the probing attacks.
  const NodeId x_space = g.add_info("X");    // ability to enumerate metadata
  const NodeId y_space = g.add_info("Y");    // ability to enumerate interests
  const NodeId all_tokens = g.add_info("T_Y");
  // Identity associations (broken edges in Fig. 5).
  const NodeId pid = g.add_info("pid");
  const NodeId sid = g.add_info("sid");
  const NodeId a_pid_x = g.add_info("a_pid_x", /*sensitive=*/true);
  const NodeId a_sid_y = g.add_info("a_sid_y", /*sensitive=*/true);

  // Encrypt: (m, x, pk) -> ct.
  g.add_derivation("Encrypt", {m, x, pk}, ct);
  // GenToken: (y, sk) -> t_y.
  g.add_derivation("GenToken", {y, sk}, token);
  // Query: (ct, t_y) -> m (on match).
  g.add_derivation("Query", {ct, token}, m);
  // Orange attack edges: token probing reveals y from (t_y, pk, X).
  g.add_derivation("TokenProbe", {token, pk, x_space}, y);
  // Exhaustive token set reveals x from (ct, T_Y).
  g.add_derivation("TokenExhaust", {ct, all_tokens, y_space}, x);
  // Accumulating all tokens needs sk-equivalent access to the whole space.
  g.add_derivation("AccumulateTokens", {y_space, sk}, all_tokens);
  // Associations: identity plus the secret links them.
  g.add_derivation("BindPub", {pid, x}, a_pid_x);
  g.add_derivation("BindSub", {sid, y}, a_sid_y);
  return g;
}

Gadget make_cpabe_gadget() {
  Gadget g;
  const NodeId m = g.add_info("m_A", /*sensitive=*/true);  // payload
  const NodeId policy = g.add_info("policy");              // public by design
  const NodeId pk = g.add_info("pk_abe");
  const NodeId mk = g.add_info("mk_abe");
  const NodeId attrs = g.add_info("S");                    // key attribute set
  const NodeId sk = g.add_info("sk_S");
  const NodeId sat = g.add_info("S_satisfies_policy");     // premise
  const NodeId ct = g.add_info("ct_abe");

  g.add_derivation("Encrypt", {m, policy, pk}, ct);
  // The policy travels in the clear with the ciphertext.
  g.add_derivation("ReadPolicy", {ct}, policy);
  g.add_derivation("KeyGen", {mk, attrs}, sk);
  g.add_derivation("Decrypt", {ct, sk, sat}, m);
  return g;
}

Gadget make_pk_gadget() {
  Gadget g;
  const NodeId m = g.add_info("m_pk", /*sensitive=*/true);
  const NodeId pk = g.add_info("pk_svc");
  const NodeId sk = g.add_info("sk_svc");
  const NodeId ct = g.add_info("ct_pk");
  g.add_derivation("Encrypt", {m, pk}, ct);
  g.add_derivation("Decrypt", {ct, sk}, m);
  return g;
}

Gadget make_sk_gadget() {
  Gadget g;
  const NodeId m = g.add_info("m_sk", /*sensitive=*/true);
  const NodeId ks = g.add_info("Ks");
  const NodeId ct = g.add_info("ct_sk");
  g.add_derivation("Seal", {m, ks}, ct);
  g.add_derivation("Open", {ct, ks}, m);
  return g;
}

}  // namespace p3s::gadget
