// Quadratic extension field F_q² = F_q[i]/(i²+1), valid because the Type-A
// pairing prime satisfies q ≡ 3 (mod 4) so -1 is a non-residue.
#pragma once

#include "math/bigint.hpp"
#include "math/modular.hpp"
#include "math/montgomery.hpp"

namespace p3s::pairing {

using math::BigInt;

/// Element a + b·i of F_q². Operations take the modulus explicitly; the
/// Pairing context owns it.
struct Fq2 {
  BigInt a;  // real part
  BigInt b;  // imaginary part

  bool operator==(const Fq2&) const = default;
};

Fq2 fq2_zero();
Fq2 fq2_one();
bool fq2_is_zero(const Fq2& x);
bool fq2_is_one(const Fq2& x);

Fq2 fq2_add(const Fq2& x, const Fq2& y, const BigInt& q);
Fq2 fq2_sub(const Fq2& x, const Fq2& y, const BigInt& q);
Fq2 fq2_neg(const Fq2& x, const BigInt& q);
Fq2 fq2_mul(const Fq2& x, const Fq2& y, const BigInt& q);
Fq2 fq2_sqr(const Fq2& x, const BigInt& q);
/// Conjugate a - b·i; equals the q-power Frobenius for q ≡ 3 (mod 4).
Fq2 fq2_conj(const Fq2& x, const BigInt& q);
/// Multiplicative inverse; throws std::domain_error on zero.
Fq2 fq2_inv(const Fq2& x, const BigInt& q);
/// x^e with e >= 0. Routes through the Montgomery/CIOS window
/// exponentiation for odd q at pairing sizes; plain square-and-multiply
/// otherwise.
Fq2 fq2_pow(const Fq2& x, const BigInt& e, const BigInt& q);
/// x^e with e >= 0 on a prebuilt Montgomery context for q (no per-call
/// context setup; allocation-free when mq.fits_fixed()).
Fq2 fq2_pow(const Fq2& x, const BigInt& e, const math::Montgomery& mq);

}  // namespace p3s::pairing
