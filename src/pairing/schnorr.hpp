// Schnorr signatures over G1 — the certificate mechanism behind the ARA's
// "public key certificates" (paper §4.3): the ARA signs role certificates;
// the PBE-TS verifies that a token requester is a registered subscriber
// without learning who it is.
#pragma once

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "pairing/pairing.hpp"

namespace p3s::pairing {

struct SchnorrKeyPair {
  BigInt secret;
  Point public_key;
};

struct SchnorrSignature {
  Point r;     // g^k
  BigInt s;    // k + c·x mod r

  Bytes serialize(const Pairing& pairing) const;
  static SchnorrSignature deserialize(const Pairing& pairing, BytesView data);
};

SchnorrKeyPair schnorr_keygen(const Pairing& pairing, Rng& rng);

SchnorrSignature schnorr_sign(const Pairing& pairing, const BigInt& secret,
                              BytesView message, Rng& rng);

bool schnorr_verify(const Pairing& pairing, const Point& public_key,
                    BytesView message, const SchnorrSignature& sig);

}  // namespace p3s::pairing
