// Symmetric (Type-A) bilinear pairing e: G1 × G1 → GT, the same algebraic
// setting PBC's "a.param" gives the paper's jPBC/cpabe stacks:
//   E: y² = x³ + x over F_q, q ≡ 3 (mod 4), #E(F_q) = q + 1 = h·r,
//   G1 = order-r subgroup, GT ⊂ F_q²* (order-r roots of unity),
//   e(P,Q) = TatePairing(P, φ(Q))^((q²−1)/r) with distortion map
//   φ(x,y) = (−x, i·y).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/probe.hpp"
#include "common/rng.hpp"
#include "math/montgomery.hpp"
#include "pairing/curve.hpp"
#include "pairing/fq2.hpp"

namespace p3s::pairing {

/// Public group parameters. Generated once and shared by every participant
/// (the ARA distributes them during registration).
struct Params {
  BigInt q;  ///< base field prime, q = h·r − 1, q ≡ 3 (mod 4)
  BigInt r;  ///< prime group order
  BigInt h;  ///< cofactor (multiple of 4)
  Point g;   ///< generator of the order-r subgroup

  Bytes serialize() const;
  static Params deserialize(BytesView data);
};

/// Generate fresh parameters: r with `r_bits` bits, q with `q_bits` bits.
/// q_bits must exceed r_bits by at least 8.
Params generate_params(Rng& rng, std::size_t r_bits, std::size_t q_bits);

/// One (P, Q) input to a multi-pairing product.
struct PairTerm {
  Point p;
  Point q;
};

/// Ciphertext-side Miller-loop precompute for one G1 point P. The Jacobian
/// V-chain of the Miller loop depends only on P; the second input Q enters
/// each iteration solely through the line evaluation, which is affine in
/// Q's coordinates: line = (A·xQ + B) + i·(C·yQ). Precomputing the (A,B,C)
/// stream once per point turns every later pairing against a fresh Q into
/// ~5 field multiplications per slot instead of the full double/add chain —
/// this is the per-broadcast state a subscriber reuses across all of its
/// tokens. Produced by Pairing::miller_precompute; consumed by the
/// PrecompPairTerm pair_product overload, which is bit-identical to the
/// plain pair_product on the same (P, Q) inputs.
class MillerPrecomp {
 public:
  bool infinity() const { return infinity_; }
  std::size_t memory_bytes() const { return slots_.size() * sizeof(Slot); }

 private:
  friend class Pairing;
  struct Slot {
    fqm::Fe a, b, c;    // line = (a·xQ + b) + i·(c·yQ)
    bool skip = false;  // V at O or a vertical line: no GT multiplication
  };
  bool infinity_ = false;
  Point point_;  // original P, for the oversized-modulus reference fallback
  // Fixed schedule over r's bits: one slot per doubling iteration plus one
  // per set bit (mixed addition), so every precomp of the same pairing
  // walks in lockstep with the interleaved product loop.
  std::vector<Slot> slots_;
};

/// One (precomputed-P, Q) input to a multi-pairing product.
struct PrecompPairTerm {
  const MillerPrecomp* p;
  Point q;
};

/// Windowed fixed-base exponentiation table for one GT element: entries
/// base^(d·16^j) for 4-bit windows j and digits d, so pow() costs one F_q²
/// multiplication per nonzero nibble of the exponent and no squarings.
/// Borrows `mq`; the owner must keep it alive (the Pairing guarantees this
/// for its own table, HvePrecomp holds the PairingPtr).
class GtFixedBase {
 public:
  GtFixedBase(const math::Montgomery& mq, const Fq2& base,
              std::size_t exp_bits);

  const Fq2& base() const { return base_; }
  /// base^e for e >= 0. Exponents wider than the table fall back to the
  /// generic windowed exponentiation.
  Fq2 pow(const BigInt& e) const;
  std::size_t memory_bytes() const {
    return table_.size() * sizeof(fqm::Fe2);
  }

 private:
  const math::Montgomery& mq_;
  Fq2 base_;
  std::size_t windows_ = 0;
  std::vector<fqm::Fe2> table_;  // entry j·15 + (d−1) holds base^(d·16^j)
};

/// Immutable pairing context; shared via shared_ptr between all crypto
/// objects bound to the same group.
class Pairing {
 public:
  explicit Pairing(Params params);

  /// Small deterministic parameters (80-bit r, 160-bit q) for fast tests.
  /// Baked-in serialized constants, validated on load. Cached singleton.
  static std::shared_ptr<const Pairing> test_pairing();
  /// PBC a.param-sized parameters (160-bit r, 512-bit q) matching the
  /// security level the paper benchmarked. Baked-in constants, validated on
  /// load. Cached singleton.
  static std::shared_ptr<const Pairing> paper_pairing();

  const Params& params() const { return params_; }
  const BigInt& q() const { return params_.q; }
  const BigInt& r() const { return params_.r; }
  /// Montgomery context for F_q — the pairing stack's fast-path engine.
  const math::Montgomery& mont_q() const { return montq_; }

  // --- Zr -----------------------------------------------------------------
  BigInt random_scalar(Rng& rng) const;           // uniform in [0, r)
  BigInt random_nonzero_scalar(Rng& rng) const;   // uniform in [1, r)

  // --- G1 -----------------------------------------------------------------
  const Point& generator() const { return params_.g; }
  Point mul(const Point& p, const BigInt& k) const;
  Point add(const Point& a, const Point& b) const;
  Point neg(const Point& p) const;
  Point random_g1(Rng& rng) const;                // nonidentity
  /// Deterministic hash onto the order-r subgroup (try-and-increment).
  Point hash_to_g1(BytesView data) const;
  Bytes serialize_g1(const Point& p) const;
  /// Validates curve membership; throws std::invalid_argument on bad input.
  Point deserialize_g1(BytesView data) const;
  std::size_t g1_bytes() const { return 1 + 2 * q_bytes_; }

  // --- GT -----------------------------------------------------------------
  /// The pairing itself (Montgomery/fixed-limb Miller loop when the modulus
  /// fits; pair_reference otherwise).
  Fq2 pair(const Point& p, const Point& q) const;
  /// ∏ e(P_i, Q_i) via one interleaved Miller loop sharing a single F_q²
  /// accumulator and a SINGLE final exponentiation. Divisions fold in as
  /// e(A,B)·e(C,D)⁻¹ = e(A,B)·e(−C,D). Terms with an identity input
  /// contribute 1. Equals ∏ pair(P_i, Q_i) exactly.
  Fq2 pair_product(std::span<const PairTerm> terms) const;
  /// Precompute the P-side Miller state once; amortizes across every later
  /// pairing of P against a fresh Q (the HVE broadcast/token split).
  MillerPrecomp miller_precompute(const Point& p) const;
  /// ∏ e(P_i, Q_i) with precomputed P_i: identical output (bit for bit) to
  /// pair_product on the same points, ~2.5× less field work.
  Fq2 pair_product_precomp(std::span<const PrecompPairTerm> terms) const;
  /// The original BigInt Miller loop with per-call final exponentiation.
  /// Kept as the correctness pin for pair()/pair_product() equivalence
  /// tests; not instrumented.
  Fq2 pair_reference(const Point& p, const Point& q) const;
  /// Precomputed e(g, g).
  const Fq2& gt_generator() const { return e_gg_; }
  Fq2 gt_mul(const Fq2& a, const Fq2& b) const;
  Fq2 gt_pow(const Fq2& a, const BigInt& e) const;
  Fq2 gt_inv(const Fq2& a) const;
  Fq2 gt_one() const { return fq2_one(); }
  /// Uniform random element of GT (used as KEM payloads).
  Fq2 random_gt(Rng& rng) const;
  Bytes serialize_gt(const Fq2& v) const;
  Fq2 deserialize_gt(BytesView data) const;
  std::size_t gt_bytes() const { return 2 * q_bytes_; }

 private:
  Params params_;
  BigInt final_exp_;  // (q² − 1) / r
  std::size_t q_bytes_;
  math::Montgomery montq_;  // Montgomery context for F_q (pairing hot path)
  Fq2 e_gg_;
  // Fixed-base tables for the bases every operation reuses: the group
  // generator (mul/random_g1/hash-derived keys) and e(g,g) (gt_pow/
  // random_gt). Built after parameter validation, hence by pointer.
  std::unique_ptr<FixedBaseTable> g_table_;
  std::unique_ptr<GtFixedBase> egg_table_;
  // Interned probe ids (common/probe.hpp). The pairing layer is hermetic —
  // no obs dependency — so instrumentation goes through the probe seam;
  // src/obs routes these into its Registry when linked. Name literals are
  // lint-checked against src/obs/catalog.hpp (metric-vocab rule).
  std::size_t pair_probe_ = 0;
  std::size_t pair_product_probe_ = 0;
  std::size_t pair_product_pairs_probe_ = 0;
  std::size_t g1_mul_probe_ = 0;
  std::size_t g1_fixed_base_probe_ = 0;
  std::size_t gt_pow_probe_ = 0;
  std::size_t gt_fixed_base_probe_ = 0;
  std::size_t hash_to_g1_probe_ = 0;
};

using PairingPtr = std::shared_ptr<const Pairing>;

}  // namespace p3s::pairing
