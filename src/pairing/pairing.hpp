// Symmetric (Type-A) bilinear pairing e: G1 × G1 → GT, the same algebraic
// setting PBC's "a.param" gives the paper's jPBC/cpabe stacks:
//   E: y² = x³ + x over F_q, q ≡ 3 (mod 4), #E(F_q) = q + 1 = h·r,
//   G1 = order-r subgroup, GT ⊂ F_q²* (order-r roots of unity),
//   e(P,Q) = TatePairing(P, φ(Q))^((q²−1)/r) with distortion map
//   φ(x,y) = (−x, i·y).
#pragma once

#include <cstddef>
#include <memory>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "math/montgomery.hpp"
#include "pairing/curve.hpp"
#include "pairing/fq2.hpp"

namespace p3s::pairing {

/// Public group parameters. Generated once and shared by every participant
/// (the ARA distributes them during registration).
struct Params {
  BigInt q;  ///< base field prime, q = h·r − 1, q ≡ 3 (mod 4)
  BigInt r;  ///< prime group order
  BigInt h;  ///< cofactor (multiple of 4)
  Point g;   ///< generator of the order-r subgroup

  Bytes serialize() const;
  static Params deserialize(BytesView data);
};

/// Generate fresh parameters: r with `r_bits` bits, q with `q_bits` bits.
/// q_bits must exceed r_bits by at least 8.
Params generate_params(Rng& rng, std::size_t r_bits, std::size_t q_bits);

/// Immutable pairing context; shared via shared_ptr between all crypto
/// objects bound to the same group.
class Pairing {
 public:
  explicit Pairing(Params params);

  /// Small deterministic parameters (80-bit r, 160-bit q) for fast tests.
  /// Cached singleton.
  static std::shared_ptr<const Pairing> test_pairing();
  /// PBC a.param-sized parameters (160-bit r, 512-bit q) matching the
  /// security level the paper benchmarked. Cached singleton.
  static std::shared_ptr<const Pairing> paper_pairing();

  const Params& params() const { return params_; }
  const BigInt& q() const { return params_.q; }
  const BigInt& r() const { return params_.r; }

  // --- Zr -----------------------------------------------------------------
  BigInt random_scalar(Rng& rng) const;           // uniform in [0, r)
  BigInt random_nonzero_scalar(Rng& rng) const;   // uniform in [1, r)

  // --- G1 -----------------------------------------------------------------
  const Point& generator() const { return params_.g; }
  Point mul(const Point& p, const BigInt& k) const;
  Point add(const Point& a, const Point& b) const;
  Point neg(const Point& p) const;
  Point random_g1(Rng& rng) const;                // nonidentity
  /// Deterministic hash onto the order-r subgroup (try-and-increment).
  Point hash_to_g1(BytesView data) const;
  Bytes serialize_g1(const Point& p) const;
  /// Validates curve membership; throws std::invalid_argument on bad input.
  Point deserialize_g1(BytesView data) const;
  std::size_t g1_bytes() const { return 1 + 2 * q_bytes_; }

  // --- GT -----------------------------------------------------------------
  /// The pairing itself.
  Fq2 pair(const Point& p, const Point& q) const;
  /// Precomputed e(g, g).
  const Fq2& gt_generator() const { return e_gg_; }
  Fq2 gt_mul(const Fq2& a, const Fq2& b) const;
  Fq2 gt_pow(const Fq2& a, const BigInt& e) const;
  Fq2 gt_inv(const Fq2& a) const;
  Fq2 gt_one() const { return fq2_one(); }
  /// Uniform random element of GT (used as KEM payloads).
  Fq2 random_gt(Rng& rng) const;
  Bytes serialize_gt(const Fq2& v) const;
  Fq2 deserialize_gt(BytesView data) const;
  std::size_t gt_bytes() const { return 2 * q_bytes_; }

 private:
  Params params_;
  BigInt final_exp_;  // (q² − 1) / r
  std::size_t q_bytes_;
  math::Montgomery montq_;  // Montgomery context for F_q (pairing hot path)
  Fq2 e_gg_;
};

using PairingPtr = std::shared_ptr<const Pairing>;

}  // namespace p3s::pairing
