// ECIES-style hybrid public-key encryption over the pairing group's G1.
// This stands in for the "public key certificates" of the P3S services: the
// subscriber encrypts (Ks, predicate) to the PBE-TS and (Ks, GUID) to the RS
// under the service's public key (paper §4.3).
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "pairing/pairing.hpp"

namespace p3s::pairing {

struct EciesKeyPair {
  BigInt secret;  // scalar in [1, r)
  Point public_key;
};

/// Generate a fresh keypair on the given group.
EciesKeyPair ecies_keygen(const Pairing& pairing, Rng& rng);

/// Encrypt `plaintext` to `recipient_pk`. Output is self-contained
/// (ephemeral point + AEAD body).
Bytes ecies_encrypt(const Pairing& pairing, const Point& recipient_pk,
                    BytesView plaintext, Rng& rng);

/// Decrypt; nullopt on any authentication failure or malformed input.
std::optional<Bytes> ecies_decrypt(const Pairing& pairing, const BigInt& secret,
                                   BytesView ciphertext);

}  // namespace p3s::pairing
