#include "pairing/pairing.hpp"

#include <mutex>
#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "math/prime.hpp"
#include "pairing/fq_mont.hpp"

namespace p3s::pairing {

using math::is_probable_prime;
using math::mod;
using math::mod_add;
using math::mod_inv;
using math::mod_mul;
using math::mod_sqrt_3mod4;
using math::mod_sub;
using math::random_prime;

Bytes Params::serialize() const {
  Writer w;
  w.bytes(q.to_bytes());
  w.bytes(r.to_bytes());
  w.bytes(h.to_bytes());
  w.bytes(g.x.to_bytes());
  w.bytes(g.y.to_bytes());
  return w.take();
}

Params Params::deserialize(BytesView data) {
  Reader rd(data);
  Params p;
  p.q = BigInt::from_bytes(rd.bytes());
  p.r = BigInt::from_bytes(rd.bytes());
  p.h = BigInt::from_bytes(rd.bytes());
  p.g.x = BigInt::from_bytes(rd.bytes());
  p.g.y = BigInt::from_bytes(rd.bytes());
  p.g.infinity = false;
  rd.expect_done();
  if (!on_curve(p.g, p.q)) throw std::invalid_argument("Params: generator off curve");
  return p;
}

Params generate_params(Rng& rng, std::size_t r_bits, std::size_t q_bits) {
  if (q_bits < r_bits + 8) {
    throw std::invalid_argument("generate_params: q_bits must exceed r_bits by >= 8");
  }
  Params p;
  p.r = random_prime(rng, r_bits);

  // Find h = 4k with q = h·r − 1 prime of exactly q_bits bits.
  // q ≡ 3 (mod 4) automatically since q = 4kr − 1.
  const std::size_t k_bits = q_bits - r_bits - 2;
  for (;;) {
    BigInt k = BigInt::random_bits(rng, k_bits);
    BigInt h = k << 2;
    BigInt q = h * p.r - BigInt{1};
    if (q.bit_length() != q_bits) continue;
    if (!is_probable_prime(q, rng)) continue;
    p.h = std::move(h);
    p.q = std::move(q);
    break;
  }

  // Generator: random curve point pushed into the order-r subgroup.
  for (;;) {
    const BigInt x = BigInt::random_below(rng, p.q);
    const BigInt t =
        mod_add(mod_mul(mod_mul(x, x, p.q), x, p.q), x, p.q);  // x³ + x
    if (!math::is_quadratic_residue(t, p.q)) continue;
    const BigInt y = mod_sqrt_3mod4(t, p.q);
    const Point cand{x, y, false};
    const Point g = point_mul(cand, p.h, p.q);
    if (g.infinity) continue;
    p.g = g;
    return p;
  }
}

Pairing::Pairing(Params params)
    : params_(std::move(params)), montq_(params_.q) {
  if (!on_curve(params_.g, params_.q) || params_.g.infinity) {
    throw std::invalid_argument("Pairing: invalid generator");
  }
  if (params_.q != params_.h * params_.r - BigInt{1}) {
    throw std::invalid_argument("Pairing: q != h*r - 1");
  }
  if ((params_.q % BigInt{4}) != BigInt{3}) {
    throw std::invalid_argument("Pairing: q % 4 != 3");
  }
  final_exp_ = (params_.q * params_.q - BigInt{1}) / params_.r;
  q_bytes_ = (params_.q.bit_length() + 7) / 8;

  // Same spellings as src/obs/catalog.hpp (metric-vocab lint enforces it);
  // duplicated here because the hermetic pairing layer cannot include obs.
  pair_probe_ = probe::intern("p3s.crypto.pair_seconds");
  pair_product_probe_ = probe::intern("p3s.crypto.pair_product_seconds");
  pair_product_pairs_probe_ = probe::intern("p3s.crypto.pair_product_pairs");
  g1_mul_probe_ = probe::intern("p3s.crypto.g1_mul_seconds");
  g1_fixed_base_probe_ = probe::intern("p3s.crypto.g1_fixed_base_total");
  gt_pow_probe_ = probe::intern("p3s.crypto.gt_pow_seconds");
  gt_fixed_base_probe_ = probe::intern("p3s.crypto.gt_fixed_base_total");
  hash_to_g1_probe_ = probe::intern("p3s.crypto.hash_to_g1_seconds");

  e_gg_ = pair(params_.g, params_.g);
  if (fq2_is_one(e_gg_)) {
    throw std::invalid_argument("Pairing: degenerate generator pairing");
  }
  // Fixed-base tables for the two bases every scheme reuses; scalars are
  // always reduced mod r first, so r's width bounds the windows.
  const std::size_t r_bits = params_.r.bit_length();
  g_table_ = std::make_unique<FixedBaseTable>(montq_, params_.g, r_bits);
  egg_table_ = std::make_unique<GtFixedBase>(montq_, e_gg_, r_bits);
}

namespace {
std::once_flag g_test_once, g_paper_once;
std::shared_ptr<const Pairing> g_test, g_paper;

// The deterministic parameter sets baked in as constants. These are exactly
// what generate_params() used to produce from the fixed seeds
// (0x703570357035 for test, 0x504243204121 for paper); baking them skips the
// Miller–Rabin prime SEARCH in every process while load_baked() still
// VALIDATES primality and group structure, so a corrupted constant cannot
// slip through.
struct BakedParams {
  const char* q;
  const char* r;
  const char* h;
  const char* gx;
  const char* gy;
};

constexpr BakedParams kTestBaked{
    "9ba9ad5de65999b599ebda719d26dfdd544e5deb",
    "db7a0f11c95b1c8fe86d",
    "b5911355ffc0b8e17a1c",
    "942841afc1a4c1e81e50cead7eb5cbde99106f0c",
    "16eeb3266036d637bd5265b1801b873f57d4a759",
};

constexpr BakedParams kPaperBaked{
    "a441dc845fe1b04433217b626a6ae249e277477244a4f8eb1aac259b7461fdca"
    "01aee47bc0476aa25b1fc4bfad77f50f6f3514cedff74b2ec5d26f88e1365727",
    "b2ee4b7d8783337ee16a28cd87ffae5845fc8151",
    "eb019811af0bd7d01600ec3d58d2cfe34a797218ce8f9182c84aa46802b122eb"
    "811f9c41b8542d97429b5aa8",
    "9498327f950568bbc68e6db1415f8397df552aad6f3a77d26b4fc30e915a6597"
    "6297784871070ca27e154cdc999dd308299db8a50f2b39a016446aa4bd3db26f",
    "3dae87b59e739113a7656147bc4c319627e75a9ec404292d7ee98e255e59ead3"
    "c9e0c49eeb7eb93f909f958b6d7c23a90a8679d5475873680eb083901ab60cda",
};

Params load_baked(const BakedParams& b) {
  Params p;
  p.q = BigInt::from_hex(b.q);
  p.r = BigInt::from_hex(b.r);
  p.h = BigInt::from_hex(b.h);
  p.g = Point{BigInt::from_hex(b.gx), BigInt::from_hex(b.gy), false};
  // Validate the constants rather than trusting the source text. Structure
  // (q = h·r − 1, q ≡ 3 mod 4, g on curve, non-degenerate e(g,g)) is
  // re-checked by the Pairing constructor; primality and the generator's
  // order need explicit checks here.
  TestRng rng(0xba4ed'cafeull);
  if (!is_probable_prime(p.q, rng, 8) || !is_probable_prime(p.r, rng, 8)) {
    throw std::logic_error("baked pairing params: composite q or r");
  }
  if (!point_mul(p.g, p.r, p.q).infinity) {
    throw std::logic_error("baked pairing params: generator order != r");
  }
  return p;
}
}  // namespace

std::shared_ptr<const Pairing> Pairing::test_pairing() {
  std::call_once(g_test_once, [] {
    g_test = std::make_shared<const Pairing>(load_baked(kTestBaked));
  });
  return g_test;
}

std::shared_ptr<const Pairing> Pairing::paper_pairing() {
  std::call_once(g_paper_once, [] {
    g_paper = std::make_shared<const Pairing>(load_baked(kPaperBaked));
  });
  return g_paper;
}

BigInt Pairing::random_scalar(Rng& rng) const {
  return BigInt::random_below(rng, params_.r);
}

BigInt Pairing::random_nonzero_scalar(Rng& rng) const {
  return BigInt{1} + BigInt::random_below(rng, params_.r - BigInt{1});
}

Point Pairing::mul(const Point& p, const BigInt& k) const {
  probe::ScopedTimer timer(g1_mul_probe_);
  const BigInt kr = mod(k, params_.r);
  if (g_table_ && !p.infinity && p == params_.g) {
    probe::add(g1_fixed_base_probe_);
    return g_table_->mul(kr);
  }
  return point_mul_mont(p, kr, montq_);
}

Point Pairing::add(const Point& a, const Point& b) const {
  return point_add(a, b, params_.q);
}

Point Pairing::neg(const Point& p) const { return point_neg(p, params_.q); }

Point Pairing::random_g1(Rng& rng) const {
  return mul(params_.g, random_nonzero_scalar(rng));
}

Point Pairing::hash_to_g1(BytesView data) const {
  // Every step below is deterministic in `data` (HKDF stream, fixed root
  // choice, one shared cofactor-multiplication path), so the same input
  // maps to the same point in every process.
  probe::ScopedTimer timer(hash_to_g1_probe_);
  const Bytes prk = crypto::hkdf_extract(str_to_bytes("p3s-hash-to-g1"), data);
  for (std::uint32_t ctr = 0;; ++ctr) {
    Writer info;
    info.u32(ctr);
    const Bytes xm = crypto::hkdf_expand(prk, info.data(), q_bytes_ + 16);
    const BigInt x = mod(BigInt::from_bytes(xm), params_.q);
    const BigInt t =
        mod_add(mod_mul(mod_mul(x, x, params_.q), x, params_.q), x, params_.q);
    if (!math::is_quadratic_residue(t, montq_)) continue;
    BigInt y = mod_sqrt_3mod4(t, montq_);
    // Use one more derived bit to pick the root deterministically.
    Writer winfo;
    winfo.u32(ctr);
    winfo.u8(0xff);
    const Bytes sign = crypto::hkdf_expand(prk, winfo.data(), 1);
    if ((sign[0] & 1) != 0) y = mod_sub(BigInt{}, y, params_.q);
    const Point g = point_mul_mont(Point{x, y, false}, params_.h, montq_);
    if (!g.infinity) return g;
  }
}

Bytes Pairing::serialize_g1(const Point& p) const {
  Writer w;
  if (p.infinity) {
    w.u8(0);
    w.raw(Bytes(2 * q_bytes_, 0));
  } else {
    w.u8(1);
    w.raw(p.x.to_bytes(q_bytes_));
    w.raw(p.y.to_bytes(q_bytes_));
  }
  return w.take();
}

Point Pairing::deserialize_g1(BytesView data) const {
  Reader r(data);
  const std::uint8_t flag = r.u8();
  const Bytes xb = r.raw(q_bytes_);
  const Bytes yb = r.raw(q_bytes_);
  r.expect_done();
  if (flag == 0) return Point::at_infinity();
  Point p{BigInt::from_bytes(xb), BigInt::from_bytes(yb), false};
  if (p.x >= params_.q || p.y >= params_.q || !on_curve(p, params_.q)) {
    throw std::invalid_argument("deserialize_g1: point not on curve");
  }
  return p;
}

namespace {
// Jacobian point used inside the Miller loop (z == 0 means infinity).
// Keeping V projective removes every per-step modular inversion: line
// values are scaled by the λ-denominator, which lies in F_q* and is killed
// by the final exponentiation ((q−1) divides (q²−1)/r), the same
// denominator-elimination argument that lets us drop vertical lines.
struct MillerPoint {
  BigInt x, y, z;
  bool infinity() const { return z.is_zero(); }
};

// F_q² arithmetic with coordinates kept in Montgomery form. Addition and
// subtraction are domain-preserving, so only products change.
Fq2 fq2_mul_m(const Fq2& x, const Fq2& y, const math::Montgomery& mq,
              const BigInt& q) {
  const BigInt t0 = mq.mul(x.a, y.a);
  const BigInt t1 = mq.mul(x.b, y.b);
  const BigInt t2 = mq.mul(mod_add(x.a, x.b, q), mod_add(y.a, y.b, q));
  return {mod_sub(t0, t1, q), mod_sub(mod_sub(t2, t0, q), t1, q)};
}

Fq2 fq2_sqr_m(const Fq2& x, const math::Montgomery& mq, const BigInt& q) {
  const BigInt t0 = mq.mul(mod_add(x.a, x.b, q), mod_sub(x.a, x.b, q));
  const BigInt t1 = mq.mul(x.a, x.b);
  return {t0, mod_add(t1, t1, q)};
}

Fq2 fq2_pow_m(const Fq2& x, const BigInt& e, const Fq2& one_m,
              const math::Montgomery& mq, const BigInt& q) {
  Fq2 acc = one_m;
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    acc = fq2_sqr_m(acc, mq, q);
    if (e.bit(i)) acc = fq2_mul_m(acc, x, mq, q);
  }
  return acc;
}
}  // namespace

Fq2 Pairing::pair_reference(const Point& p, const Point& qpt) const {
  if (p.infinity || qpt.infinity) return fq2_one();
  const BigInt& q = params_.q;
  const BigInt& r = params_.r;
  const math::Montgomery& mq = montq_;

  // Montgomery-domain inputs; every product below is a CIOS multiply.
  const BigInt one_m = mq.to_mont(BigInt{1});
  const BigInt px = mq.to_mont(p.x);
  const BigInt py = mq.to_mont(p.y);
  const BigInt qx = mq.to_mont(qpt.x);
  const BigInt qy = mq.to_mont(qpt.y);
  const Fq2 fq2_one_m{one_m, BigInt{}};

  // Miller loop computing f_{r,P}(φ(Q)) with φ(x,y) = (−x, i·y).
  Fq2 f = fq2_one_m;
  MillerPoint v{px, py, one_m};

  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    if (!v.infinity()) {
      // --- tangent line at V, scaled by 2YZ³ ---------------------------
      //   real = M·Z²·xQ + M·X − 2Y²,  imag = 2YZ³·yQ
      // with M = 3X² + Z⁴ (curve coefficient a = 1).
      const BigInt x2 = mq.mul(v.x, v.x);
      const BigInt z2 = mq.mul(v.z, v.z);
      const BigInt z4 = mq.mul(z2, z2);
      const BigInt m = mod_add(mod_add(mod_add(x2, x2, q), x2, q), z4, q);
      const BigInt y2 = mq.mul(v.y, v.y);
      const BigInt two_y2 = mod_add(y2, y2, q);
      const BigInt yz = mq.mul(v.y, v.z);
      const BigInt two_yz3 = mq.mul(mod_add(yz, yz, q), z2);  // 2YZ³
      Fq2 line;
      line.a = mod_sub(
          mod_add(mq.mul(mq.mul(m, z2), qx), mq.mul(m, v.x), q), two_y2, q);
      line.b = mq.mul(two_yz3, qy);
      f = fq2_mul_m(fq2_sqr_m(f, mq, q), line, mq, q);

      // --- double V (Jacobian, a = 1) -----------------------------------
      BigInt s = mq.mul(v.x, y2);
      s = mod_add(s, s, q);
      s = mod_add(s, s, q);  // 4XY²
      const BigInt xp = mod_sub(mq.mul(m, m), mod_add(s, s, q), q);
      BigInt y4 = mq.mul(y2, y2);
      y4 = mod_add(y4, y4, q);
      y4 = mod_add(y4, y4, q);
      y4 = mod_add(y4, y4, q);  // 8Y⁴
      const BigInt yp = mod_sub(mq.mul(m, mod_sub(s, xp, q)), y4, q);
      v = MillerPoint{xp, yp, mod_add(yz, yz, q)};
    } else {
      f = fq2_sqr_m(f, mq, q);
    }

    if (r.bit(i)) {
      if (v.infinity()) {
        v = MillerPoint{px, py, one_m};
        continue;
      }
      // --- addition V + P (P affine) ------------------------------------
      const BigInt z2 = mq.mul(v.z, v.z);
      const BigInt u2 = mq.mul(px, z2);              // xP·Z²
      const BigInt s2 = mq.mul(py, mq.mul(z2, v.z));  // yP·Z³
      const BigInt hh = mod_sub(u2, v.x, q);
      const BigInt rr = mod_sub(s2, v.y, q);
      if (hh.is_zero()) {
        if (rr.is_zero()) {
          // V == P: tangent at the affine point, scaled by its denominator.
          const BigInt x2p = mq.mul(px, px);
          const BigInt num =
              mod_add(mod_add(mod_add(x2p, x2p, q), x2p, q), one_m, q);
          const BigInt den = mod_add(py, py, q);
          Fq2 line;
          line.a = mod_sub(mq.mul(num, mod_add(qx, px, q)), mq.mul(den, py), q);
          line.b = mq.mul(den, qy);
          f = fq2_mul_m(f, line, mq, q);
          const Point dbl = point_double(p, q);
          v = dbl.infinity
                  ? MillerPoint{one_m, one_m, BigInt{}}
                  : MillerPoint{mq.to_mont(dbl.x), mq.to_mont(dbl.y), one_m};
        } else {
          // V == −P: vertical line (eliminated); V + P = O.
          v = MillerPoint{one_m, one_m, BigInt{}};
        }
        continue;
      }
      // Line through V and P scaled by Z·H:
      //   real = R·(xQ + xP) − yP·Z·H,  imag = Z·H·yQ.
      const BigInt zh = mq.mul(v.z, hh);
      Fq2 line;
      line.a = mod_sub(mq.mul(rr, mod_add(qx, px, q)), mq.mul(py, zh), q);
      line.b = mq.mul(zh, qy);
      f = fq2_mul_m(f, line, mq, q);

      // V ← V + P (mixed Jacobian addition).
      const BigInt h2 = mq.mul(hh, hh);
      const BigInt h3 = mq.mul(h2, hh);
      const BigInt uh2 = mq.mul(v.x, h2);
      const BigInt xp =
          mod_sub(mod_sub(mq.mul(rr, rr), h3, q), mod_add(uh2, uh2, q), q);
      const BigInt yp =
          mod_sub(mq.mul(rr, mod_sub(uh2, xp, q)), mq.mul(v.y, h3), q);
      v = MillerPoint{xp, yp, zh};
    }
  }

  // Final exponentiation: f^((q²−1)/r) = (conj(f)·f⁻¹)^h since
  // (q²−1)/r = (q−1)·h and f^q = conj(f) in F_q². Inversion drops out of
  // Montgomery form for the extended-Euclid step, then re-enters.
  const Fq2 f_conj = fq2_conj(f, q);
  const BigInt norm = mod_add(mq.mul(f.a, f.a), mq.mul(f.b, f.b), q);
  const BigInt norm_inv = mq.to_mont(mod_inv(mq.from_mont(norm), q));
  const Fq2 f_inv{mq.mul(f.a, norm_inv),
                  mq.mul(mod_sub(BigInt{}, f.b, q), norm_inv)};
  const Fq2 f_q_minus_1 = fq2_mul_m(f_conj, f_inv, mq, q);
  const Fq2 result_m =
      fq2_pow_m(f_q_minus_1, params_.h, Fq2{one_m, BigInt{}}, mq, q);
  return Fq2{mq.from_mont(result_m.a), mq.from_mont(result_m.b)};
}

namespace {
using fqm::Fe;
using fqm::Fe2;

// Per-term Miller-loop state on the allocation-free fixed-limb field
// representation: affine P and Q plus the running Jacobian V.
struct MillerTermM {
  Fe px, py, qx, qy;
  Fe vx, vy, vz;  // vz == 0 → V = O
};

// The shared final exponentiation f^((q²−1)/r) = (conj(f)·f⁻¹)^h since
// (q²−1)/r = (q−1)·h and f^q = conj(f) in F_q².
Fq2 final_exponentiation_m(const math::Montgomery& mq, const Params& params,
                           const Fe2& f) {
  const Fe2 f_conj = fqm::fe2_conj(mq, f);
  Fe na, nb, norm;
  fqm::fe_sqr(mq, f.a, na);
  fqm::fe_sqr(mq, f.b, nb);
  fqm::fe_add(mq, na, nb, norm);
  const Fe norm_inv = fqm::fe_inv(mq, norm);
  Fe2 f_inv;
  fqm::fe_mul(mq, f.a, norm_inv, f_inv.a);
  const Fe neg_b = fqm::fe_neg(mq, f.b);
  fqm::fe_mul(mq, neg_b, norm_inv, f_inv.b);
  Fe2 tmp;
  fqm::fe2_mul(mq, f_conj, f_inv, tmp);  // f^(q−1)
  const Fe2 res = fqm::fe2_pow(mq, tmp, params.h);
  return Fq2{fqm::fe_to(mq, res.a), fqm::fe_to(mq, res.b)};
}

// Interleaved Miller loops computing ∏ f_{r,P_i}(φ(Q_i)): one shared F_q²
// accumulator (a single squaring per bit regardless of the term count)
// followed by ONE final exponentiation f^((q²−1)/r) = (conj(f)·f⁻¹)^h.
// The line/double/add formulas are the fixed-limb port of pair_reference;
// see the comments there for the derivations.
Fq2 miller_product(const math::Montgomery& mq, const Params& params,
                   std::vector<MillerTermM>& terms) {
  const std::size_t k = mq.limb_count();
  const BigInt& r = params.r;
  const Fe one_m = fqm::fe_from(mq, BigInt{1});
  Fe2 f = fqm::fe2_one(mq);
  Fe2 tmp;

  for (auto& t : terms) {
    t.vx = t.px;
    t.vy = t.py;
    t.vz = one_m;
  }

  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    fqm::fe2_sqr(mq, f, f);
    for (auto& t : terms) {
      if (fqm::fe_is_zero(t.vz, k)) continue;
      // Tangent line at V scaled by 2YZ³, then V ← 2V (a = 1).
      Fe x2, z2, z4, m, y2, two_y2, yz, two_yz3, s, xp, y4, yp, u;
      fqm::fe_sqr(mq, t.vx, x2);
      fqm::fe_sqr(mq, t.vz, z2);
      fqm::fe_sqr(mq, z2, z4);
      fqm::fe_add(mq, x2, x2, m);
      fqm::fe_add(mq, m, x2, m);
      fqm::fe_add(mq, m, z4, m);  // M = 3X² + Z⁴
      fqm::fe_sqr(mq, t.vy, y2);
      fqm::fe_add(mq, y2, y2, two_y2);
      fqm::fe_mul(mq, t.vy, t.vz, yz);
      fqm::fe_add(mq, yz, yz, two_yz3);
      fqm::fe_mul(mq, two_yz3, z2, two_yz3);  // 2YZ³
      Fe2 line;
      fqm::fe_mul(mq, m, z2, u);
      fqm::fe_mul(mq, u, t.qx, u);  // M·Z²·xQ
      fqm::fe_mul(mq, m, t.vx, line.a);
      fqm::fe_add(mq, line.a, u, line.a);
      fqm::fe_sub(mq, line.a, two_y2, line.a);
      fqm::fe_mul(mq, two_yz3, t.qy, line.b);
      fqm::fe2_mul(mq, f, line, tmp);
      f = tmp;

      fqm::fe_mul(mq, t.vx, y2, s);
      fqm::fe_dbl(mq, s, s);
      fqm::fe_dbl(mq, s, s);  // S = 4XY²
      fqm::fe_sqr(mq, m, xp);
      fqm::fe_add(mq, s, s, u);
      fqm::fe_sub(mq, xp, u, xp);  // X' = M² − 2S
      fqm::fe_sqr(mq, y2, y4);
      fqm::fe_dbl(mq, y4, y4);
      fqm::fe_dbl(mq, y4, y4);
      fqm::fe_dbl(mq, y4, y4);  // 8Y⁴
      fqm::fe_sub(mq, s, xp, u);
      fqm::fe_mul(mq, m, u, yp);
      fqm::fe_sub(mq, yp, y4, yp);  // Y' = M(S − X') − 8Y⁴
      t.vx = xp;
      t.vy = yp;
      fqm::fe_add(mq, yz, yz, t.vz);  // Z' = 2YZ (0 iff Y was 0 → V = O)
    }

    if (!r.bit(i)) continue;
    for (auto& t : terms) {
      if (fqm::fe_is_zero(t.vz, k)) {
        t.vx = t.px;
        t.vy = t.py;
        t.vz = one_m;
        continue;
      }
      // V + P (mixed addition) with the V == ±P corner cases.
      Fe z2, u2, s2, hh, rr, u;
      fqm::fe_sqr(mq, t.vz, z2);
      fqm::fe_mul(mq, t.px, z2, u2);
      fqm::fe_mul(mq, z2, t.vz, s2);
      fqm::fe_mul(mq, t.py, s2, s2);
      fqm::fe_sub(mq, u2, t.vx, hh);
      fqm::fe_sub(mq, s2, t.vy, rr);
      if (fqm::fe_is_zero(hh, k)) {
        if (fqm::fe_is_zero(rr, k)) {
          // V == P: tangent at the affine point, scaled by its denominator.
          Fe x2p, num, den;
          fqm::fe_sqr(mq, t.px, x2p);
          fqm::fe_add(mq, x2p, x2p, num);
          fqm::fe_add(mq, num, x2p, num);
          fqm::fe_add(mq, num, one_m, num);  // 3xP² + 1
          fqm::fe_add(mq, t.py, t.py, den);  // 2yP
          Fe2 line;
          fqm::fe_add(mq, t.qx, t.px, u);
          fqm::fe_mul(mq, num, u, line.a);
          fqm::fe_mul(mq, den, t.py, u);
          fqm::fe_sub(mq, line.a, u, line.a);
          fqm::fe_mul(mq, den, t.qy, line.b);
          fqm::fe2_mul(mq, f, line, tmp);
          f = tmp;
          // V ← 2P via the plain-domain path (cold corner case).
          const Point pa{fqm::fe_to(mq, t.px), fqm::fe_to(mq, t.py), false};
          const Point dbl = point_double(pa, params.q);
          if (dbl.infinity) {
            t.vz = Fe{};
          } else {
            t.vx = fqm::fe_from(mq, dbl.x);
            t.vy = fqm::fe_from(mq, dbl.y);
            t.vz = one_m;
          }
        } else {
          t.vz = Fe{};  // V == −P: vertical line (eliminated); V + P = O
        }
        continue;
      }
      Fe zh;
      fqm::fe_mul(mq, t.vz, hh, zh);
      Fe2 line;
      fqm::fe_add(mq, t.qx, t.px, u);
      fqm::fe_mul(mq, rr, u, line.a);
      fqm::fe_mul(mq, t.py, zh, u);
      fqm::fe_sub(mq, line.a, u, line.a);  // R·(xQ + xP) − yP·Z·H
      fqm::fe_mul(mq, zh, t.qy, line.b);
      fqm::fe2_mul(mq, f, line, tmp);
      f = tmp;

      Fe h2, h3, uh2, xp, yp;
      fqm::fe_sqr(mq, hh, h2);
      fqm::fe_mul(mq, h2, hh, h3);
      fqm::fe_mul(mq, t.vx, h2, uh2);
      fqm::fe_sqr(mq, rr, xp);
      fqm::fe_sub(mq, xp, h3, xp);
      fqm::fe_add(mq, uh2, uh2, u);
      fqm::fe_sub(mq, xp, u, xp);
      fqm::fe_sub(mq, uh2, xp, u);
      fqm::fe_mul(mq, rr, u, yp);
      fqm::fe_mul(mq, t.vy, h3, u);
      fqm::fe_sub(mq, yp, u, yp);
      t.vx = xp;
      t.vy = yp;
      t.vz = zh;
    }
  }

  // The single shared final exponentiation.
  return final_exponentiation_m(mq, params, f);
}
}  // namespace

Fq2 Pairing::pair(const Point& p, const Point& qpt) const {
  probe::ScopedTimer timer(pair_probe_);
  if (p.infinity || qpt.infinity) return fq2_one();
  if (!montq_.fits_fixed()) return pair_reference(p, qpt);
  std::vector<MillerTermM> terms(1);
  terms[0].px = fqm::fe_from(montq_, p.x);
  terms[0].py = fqm::fe_from(montq_, p.y);
  terms[0].qx = fqm::fe_from(montq_, qpt.x);
  terms[0].qy = fqm::fe_from(montq_, qpt.y);
  return miller_product(montq_, params_, terms);
}

Fq2 Pairing::pair_product(std::span<const PairTerm> in) const {
  probe::ScopedTimer timer(pair_product_probe_);
  probe::observe(pair_product_pairs_probe_, static_cast<double>(in.size()));
  if (!montq_.fits_fixed()) {
    // Oversized modulus: independent reference pairings (one final
    // exponentiation each); the product is identical, just slower.
    Fq2 acc = fq2_one();
    for (const PairTerm& t : in) {
      acc = fq2_mul(acc, pair_reference(t.p, t.q), params_.q);
    }
    return acc;
  }
  std::vector<MillerTermM> terms;
  terms.reserve(in.size());
  for (const PairTerm& t : in) {
    if (t.p.infinity || t.q.infinity) continue;  // e(O, ·) = e(·, O) = 1
    MillerTermM m;
    m.px = fqm::fe_from(montq_, t.p.x);
    m.py = fqm::fe_from(montq_, t.p.y);
    m.qx = fqm::fe_from(montq_, t.q.x);
    m.qy = fqm::fe_from(montq_, t.q.y);
    terms.push_back(m);
  }
  return miller_product(montq_, params_, terms);
}

MillerPrecomp Pairing::miller_precompute(const Point& p) const {
  MillerPrecomp pre;
  pre.point_ = p;
  if (p.infinity) {
    pre.infinity_ = true;
    return pre;
  }
  if (!montq_.fits_fixed()) return pre;  // consumers use the point_ fallback
  const math::Montgomery& mq = montq_;
  const std::size_t k = mq.limb_count();
  const BigInt& r = params_.r;
  const Fe one_m = fqm::fe_from(mq, BigInt{1});
  const Fe px = fqm::fe_from(mq, p.x);
  const Fe py = fqm::fe_from(mq, p.y);
  Fe vx = px, vy = py, vz = one_m;

  const std::size_t bits = r.bit_length();
  std::size_t set_bits = 0;
  for (std::size_t i = 0; i + 1 < bits; ++i) set_bits += r.bit(i) ? 1 : 0;
  pre.slots_.reserve((bits - 1) + set_bits);

  // Walk the exact V-chain of miller_product, recording each line's
  // (A, B, C) instead of evaluating it against a Q.
  for (std::size_t i = bits - 1; i-- > 0;) {
    {
      MillerPrecomp::Slot slot;
      if (fqm::fe_is_zero(vz, k)) {
        slot.skip = true;
        pre.slots_.push_back(slot);
      } else {
        // Tangent at V scaled by 2YZ³: A = M·Z², B = M·X − 2Y², C = 2YZ³.
        Fe x2, z2, z4, m, y2, two_y2, yz, two_yz3, s, xp, y4, yp, u;
        fqm::fe_sqr(mq, vx, x2);
        fqm::fe_sqr(mq, vz, z2);
        fqm::fe_sqr(mq, z2, z4);
        fqm::fe_add(mq, x2, x2, m);
        fqm::fe_add(mq, m, x2, m);
        fqm::fe_add(mq, m, z4, m);  // M = 3X² + Z⁴
        fqm::fe_sqr(mq, vy, y2);
        fqm::fe_add(mq, y2, y2, two_y2);
        fqm::fe_mul(mq, vy, vz, yz);
        fqm::fe_add(mq, yz, yz, two_yz3);
        fqm::fe_mul(mq, two_yz3, z2, two_yz3);  // 2YZ³
        fqm::fe_mul(mq, m, z2, slot.a);
        fqm::fe_mul(mq, m, vx, slot.b);
        fqm::fe_sub(mq, slot.b, two_y2, slot.b);
        slot.c = two_yz3;
        pre.slots_.push_back(slot);

        // V ← 2V (a = 1), identical update to miller_product.
        fqm::fe_mul(mq, vx, y2, s);
        fqm::fe_dbl(mq, s, s);
        fqm::fe_dbl(mq, s, s);  // S = 4XY²
        fqm::fe_sqr(mq, m, xp);
        fqm::fe_add(mq, s, s, u);
        fqm::fe_sub(mq, xp, u, xp);  // X' = M² − 2S
        fqm::fe_sqr(mq, y2, y4);
        fqm::fe_dbl(mq, y4, y4);
        fqm::fe_dbl(mq, y4, y4);
        fqm::fe_dbl(mq, y4, y4);  // 8Y⁴
        fqm::fe_sub(mq, s, xp, u);
        fqm::fe_mul(mq, m, u, yp);
        fqm::fe_sub(mq, yp, y4, yp);  // Y' = M(S − X') − 8Y⁴
        vx = xp;
        vy = yp;
        fqm::fe_add(mq, yz, yz, vz);  // Z' = 2YZ
      }
    }

    if (!r.bit(i)) continue;
    MillerPrecomp::Slot slot;
    if (fqm::fe_is_zero(vz, k)) {
      slot.skip = true;
      pre.slots_.push_back(slot);
      vx = px;
      vy = py;
      vz = one_m;
      continue;
    }
    // V + P (mixed addition) with the V == ±P corner cases.
    Fe z2, u2, s2, hh, rr, u;
    fqm::fe_sqr(mq, vz, z2);
    fqm::fe_mul(mq, px, z2, u2);
    fqm::fe_mul(mq, z2, vz, s2);
    fqm::fe_mul(mq, py, s2, s2);
    fqm::fe_sub(mq, u2, vx, hh);
    fqm::fe_sub(mq, s2, vy, rr);
    if (fqm::fe_is_zero(hh, k)) {
      if (fqm::fe_is_zero(rr, k)) {
        // V == P: tangent at the affine point. A = 3xP² + 1,
        // B = A·xP − 2yP·yP... kept literally in sync with miller_product:
        // B = num·xP − den·yP, C = den = 2yP.
        Fe x2p, num, den;
        fqm::fe_sqr(mq, px, x2p);
        fqm::fe_add(mq, x2p, x2p, num);
        fqm::fe_add(mq, num, x2p, num);
        fqm::fe_add(mq, num, one_m, num);  // 3xP² + 1
        fqm::fe_add(mq, py, py, den);      // 2yP
        slot.a = num;
        fqm::fe_mul(mq, num, px, slot.b);
        fqm::fe_mul(mq, den, py, u);
        fqm::fe_sub(mq, slot.b, u, slot.b);
        slot.c = den;
        pre.slots_.push_back(slot);
        // V ← 2P via the plain-domain path (cold corner case).
        const Point pa{fqm::fe_to(mq, px), fqm::fe_to(mq, py), false};
        const Point dbl = point_double(pa, params_.q);
        if (dbl.infinity) {
          vz = Fe{};
        } else {
          vx = fqm::fe_from(mq, dbl.x);
          vy = fqm::fe_from(mq, dbl.y);
          vz = one_m;
        }
      } else {
        // V == −P: vertical line (eliminated); V + P = O.
        slot.skip = true;
        pre.slots_.push_back(slot);
        vz = Fe{};
      }
      continue;
    }
    Fe zh;
    fqm::fe_mul(mq, vz, hh, zh);
    slot.a = rr;  // line = R·xQ + (R·xP − yP·Z·H) + i·(Z·H·yQ)
    fqm::fe_mul(mq, rr, px, slot.b);
    fqm::fe_mul(mq, py, zh, u);
    fqm::fe_sub(mq, slot.b, u, slot.b);
    slot.c = zh;
    pre.slots_.push_back(slot);

    Fe h2, h3, uh2, xp, yp;
    fqm::fe_sqr(mq, hh, h2);
    fqm::fe_mul(mq, h2, hh, h3);
    fqm::fe_mul(mq, vx, h2, uh2);
    fqm::fe_sqr(mq, rr, xp);
    fqm::fe_sub(mq, xp, h3, xp);
    fqm::fe_add(mq, uh2, uh2, u);
    fqm::fe_sub(mq, xp, u, xp);
    fqm::fe_sub(mq, uh2, xp, u);
    fqm::fe_mul(mq, rr, u, yp);
    fqm::fe_mul(mq, vy, h3, u);
    fqm::fe_sub(mq, yp, u, yp);
    vx = xp;
    vy = yp;
    vz = zh;
  }
  return pre;
}

Fq2 Pairing::pair_product_precomp(std::span<const PrecompPairTerm> in) const {
  probe::ScopedTimer timer(pair_product_probe_);
  probe::observe(pair_product_pairs_probe_, static_cast<double>(in.size()));
  if (!montq_.fits_fixed()) {
    Fq2 acc = fq2_one();
    for (const PrecompPairTerm& t : in) {
      acc = fq2_mul(acc, pair_reference(t.p->point_, t.q), params_.q);
    }
    return acc;
  }

  // Live term state: the precomputed slot stream plus Q in Montgomery form.
  struct TermState {
    const MillerPrecomp* pre;
    Fe qx, qy;
    std::size_t cursor = 0;
  };
  std::vector<TermState> terms;
  terms.reserve(in.size());
  for (const PrecompPairTerm& t : in) {
    if (t.p->infinity() || t.q.infinity) continue;  // e(O, ·) = e(·, O) = 1
    TermState s;
    s.pre = t.p;
    s.qx = fqm::fe_from(montq_, t.q.x);
    s.qy = fqm::fe_from(montq_, t.q.y);
    terms.push_back(s);
  }

  const math::Montgomery& mq = montq_;
  const BigInt& r = params_.r;
  Fe2 f = fqm::fe2_one(mq);
  Fe2 tmp;
  Fe u;
  // Same interleaved loop shape as miller_product: one shared squaring per
  // bit, then every term consumes its next slot. Because fe_add/fe_sub/
  // fe_mul always produce the canonical representative in [0, q), the
  // regrouped evaluation A·xQ + B yields limbs identical to the inline
  // chain, so the product is bit-identical to the PairTerm overload.
  auto eval = [&](TermState& t) {
    const MillerPrecomp::Slot& slot = t.pre->slots_[t.cursor++];
    if (slot.skip) return;
    Fe2 line;
    fqm::fe_mul(mq, slot.a, t.qx, u);
    fqm::fe_add(mq, u, slot.b, line.a);
    fqm::fe_mul(mq, slot.c, t.qy, line.b);
    fqm::fe2_mul(mq, f, line, tmp);
    f = tmp;
  };
  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    fqm::fe2_sqr(mq, f, f);
    for (auto& t : terms) eval(t);
    if (!r.bit(i)) continue;
    for (auto& t : terms) eval(t);
  }
  return final_exponentiation_m(mq, params_, f);
}

GtFixedBase::GtFixedBase(const math::Montgomery& mq, const Fq2& base,
                         std::size_t exp_bits)
    : mq_(mq), base_(base) {
  if (!mq.fits_fixed() || exp_bits == 0) return;
  windows_ = (exp_bits + 3) / 4;
  table_.reserve(windows_ * 15);
  Fe2 cur{fqm::fe_from(mq, base.a), fqm::fe_from(mq, base.b)};
  for (std::size_t w = 0; w < windows_; ++w) {
    Fe2 acc = cur;
    for (unsigned d = 1; d <= 15; ++d) {
      table_.push_back(acc);
      if (d < 15) {
        Fe2 next;
        fqm::fe2_mul(mq, acc, cur, next);
        acc = next;
      }
    }
    // Next window's base: cur^16 = (cur^8)²; cur^8 sits at offset 7.
    Fe2 c8 = table_[w * 15 + 7];
    fqm::fe2_sqr(mq, c8, c8);
    cur = c8;
  }
}

Fq2 GtFixedBase::pow(const BigInt& e) const {
  if (e.is_negative()) {
    throw std::invalid_argument("GtFixedBase::pow: negative exponent");
  }
  if (table_.empty() || e.bit_length() > windows_ * 4) {
    return fq2_pow(base_, e, mq_);
  }
  Fe2 acc = fqm::fe2_one(mq_);
  Fe2 tmp;
  for (std::size_t w = 0; w < windows_; ++w) {
    unsigned nib = 0;
    for (unsigned i = 0; i < 4; ++i) {
      nib |= (e.bit(w * 4 + i) ? 1u : 0u) << i;
    }
    if (nib == 0) continue;
    fqm::fe2_mul(mq_, acc, table_[w * 15 + (nib - 1)], tmp);
    acc = tmp;
  }
  return {fqm::fe_to(mq_, acc.a), fqm::fe_to(mq_, acc.b)};
}

Fq2 Pairing::gt_mul(const Fq2& a, const Fq2& b) const {
  return fq2_mul(a, b, params_.q);
}

Fq2 Pairing::gt_pow(const Fq2& a, const BigInt& e) const {
  probe::ScopedTimer timer(gt_pow_probe_);
  const BigInt er = mod(e, params_.r);
  if (egg_table_ && a == egg_table_->base()) {
    probe::add(gt_fixed_base_probe_);
    return egg_table_->pow(er);
  }
  return fq2_pow(a, er, montq_);
}

Fq2 Pairing::gt_inv(const Fq2& a) const { return fq2_inv(a, params_.q); }

Fq2 Pairing::random_gt(Rng& rng) const {
  return gt_pow(e_gg_, random_nonzero_scalar(rng));
}

Bytes Pairing::serialize_gt(const Fq2& v) const {
  Writer w;
  w.raw(v.a.to_bytes(q_bytes_));
  w.raw(v.b.to_bytes(q_bytes_));
  return w.take();
}

Fq2 Pairing::deserialize_gt(BytesView data) const {
  Reader r(data);
  Fq2 v;
  v.a = BigInt::from_bytes(r.raw(q_bytes_));
  v.b = BigInt::from_bytes(r.raw(q_bytes_));
  r.expect_done();
  if (v.a >= params_.q || v.b >= params_.q) {
    throw std::invalid_argument("deserialize_gt: out of range");
  }
  return v;
}

}  // namespace p3s::pairing
