#include "pairing/pairing.hpp"

#include <mutex>
#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "math/prime.hpp"

namespace p3s::pairing {

using math::is_probable_prime;
using math::mod;
using math::mod_add;
using math::mod_inv;
using math::mod_mul;
using math::mod_sqrt_3mod4;
using math::mod_sub;
using math::random_prime;

Bytes Params::serialize() const {
  Writer w;
  w.bytes(q.to_bytes());
  w.bytes(r.to_bytes());
  w.bytes(h.to_bytes());
  w.bytes(g.x.to_bytes());
  w.bytes(g.y.to_bytes());
  return w.take();
}

Params Params::deserialize(BytesView data) {
  Reader rd(data);
  Params p;
  p.q = BigInt::from_bytes(rd.bytes());
  p.r = BigInt::from_bytes(rd.bytes());
  p.h = BigInt::from_bytes(rd.bytes());
  p.g.x = BigInt::from_bytes(rd.bytes());
  p.g.y = BigInt::from_bytes(rd.bytes());
  p.g.infinity = false;
  rd.expect_done();
  if (!on_curve(p.g, p.q)) throw std::invalid_argument("Params: generator off curve");
  return p;
}

Params generate_params(Rng& rng, std::size_t r_bits, std::size_t q_bits) {
  if (q_bits < r_bits + 8) {
    throw std::invalid_argument("generate_params: q_bits must exceed r_bits by >= 8");
  }
  Params p;
  p.r = random_prime(rng, r_bits);

  // Find h = 4k with q = h·r − 1 prime of exactly q_bits bits.
  // q ≡ 3 (mod 4) automatically since q = 4kr − 1.
  const std::size_t k_bits = q_bits - r_bits - 2;
  for (;;) {
    BigInt k = BigInt::random_bits(rng, k_bits);
    BigInt h = k << 2;
    BigInt q = h * p.r - BigInt{1};
    if (q.bit_length() != q_bits) continue;
    if (!is_probable_prime(q, rng)) continue;
    p.h = std::move(h);
    p.q = std::move(q);
    break;
  }

  // Generator: random curve point pushed into the order-r subgroup.
  for (;;) {
    const BigInt x = BigInt::random_below(rng, p.q);
    const BigInt t =
        mod_add(mod_mul(mod_mul(x, x, p.q), x, p.q), x, p.q);  // x³ + x
    if (!math::is_quadratic_residue(t, p.q)) continue;
    const BigInt y = mod_sqrt_3mod4(t, p.q);
    const Point cand{x, y, false};
    const Point g = point_mul(cand, p.h, p.q);
    if (g.infinity) continue;
    p.g = g;
    return p;
  }
}

Pairing::Pairing(Params params)
    : params_(std::move(params)), montq_(params_.q) {
  if (!on_curve(params_.g, params_.q) || params_.g.infinity) {
    throw std::invalid_argument("Pairing: invalid generator");
  }
  if (params_.q != params_.h * params_.r - BigInt{1}) {
    throw std::invalid_argument("Pairing: q != h*r - 1");
  }
  if ((params_.q % BigInt{4}) != BigInt{3}) {
    throw std::invalid_argument("Pairing: q % 4 != 3");
  }
  final_exp_ = (params_.q * params_.q - BigInt{1}) / params_.r;
  q_bytes_ = (params_.q.bit_length() + 7) / 8;
  e_gg_ = pair(params_.g, params_.g);
  if (fq2_is_one(e_gg_)) {
    throw std::invalid_argument("Pairing: degenerate generator pairing");
  }
}

namespace {
std::once_flag g_test_once, g_paper_once;
std::shared_ptr<const Pairing> g_test, g_paper;
}  // namespace

std::shared_ptr<const Pairing> Pairing::test_pairing() {
  std::call_once(g_test_once, [] {
    TestRng rng(0x7035'7035'7035ull);
    g_test = std::make_shared<const Pairing>(generate_params(rng, 80, 160));
  });
  return g_test;
}

std::shared_ptr<const Pairing> Pairing::paper_pairing() {
  std::call_once(g_paper_once, [] {
    TestRng rng(0x5042'4320'4121ull);  // deterministic: reproducible benches
    g_paper = std::make_shared<const Pairing>(generate_params(rng, 160, 512));
  });
  return g_paper;
}

BigInt Pairing::random_scalar(Rng& rng) const {
  return BigInt::random_below(rng, params_.r);
}

BigInt Pairing::random_nonzero_scalar(Rng& rng) const {
  return BigInt{1} + BigInt::random_below(rng, params_.r - BigInt{1});
}

Point Pairing::mul(const Point& p, const BigInt& k) const {
  return point_mul(p, mod(k, params_.r), params_.q);
}

Point Pairing::add(const Point& a, const Point& b) const {
  return point_add(a, b, params_.q);
}

Point Pairing::neg(const Point& p) const { return point_neg(p, params_.q); }

Point Pairing::random_g1(Rng& rng) const {
  return mul(params_.g, random_nonzero_scalar(rng));
}

Point Pairing::hash_to_g1(BytesView data) const {
  const Bytes prk = crypto::hkdf_extract(str_to_bytes("p3s-hash-to-g1"), data);
  for (std::uint32_t ctr = 0;; ++ctr) {
    Writer info;
    info.u32(ctr);
    const Bytes xm = crypto::hkdf_expand(prk, info.data(), q_bytes_ + 16);
    const BigInt x = mod(BigInt::from_bytes(xm), params_.q);
    const BigInt t =
        mod_add(mod_mul(mod_mul(x, x, params_.q), x, params_.q), x, params_.q);
    if (!math::is_quadratic_residue(t, params_.q)) continue;
    BigInt y = mod_sqrt_3mod4(t, params_.q);
    // Use one more derived bit to pick the root deterministically.
    Writer winfo;
    winfo.u32(ctr);
    winfo.u8(0xff);
    const Bytes sign = crypto::hkdf_expand(prk, winfo.data(), 1);
    if ((sign[0] & 1) != 0) y = mod_sub(BigInt{}, y, params_.q);
    const Point g = point_mul(Point{x, y, false}, params_.h, params_.q);
    if (!g.infinity) return g;
  }
}

Bytes Pairing::serialize_g1(const Point& p) const {
  Writer w;
  if (p.infinity) {
    w.u8(0);
    w.raw(Bytes(2 * q_bytes_, 0));
  } else {
    w.u8(1);
    w.raw(p.x.to_bytes(q_bytes_));
    w.raw(p.y.to_bytes(q_bytes_));
  }
  return w.take();
}

Point Pairing::deserialize_g1(BytesView data) const {
  Reader r(data);
  const std::uint8_t flag = r.u8();
  const Bytes xb = r.raw(q_bytes_);
  const Bytes yb = r.raw(q_bytes_);
  r.expect_done();
  if (flag == 0) return Point::at_infinity();
  Point p{BigInt::from_bytes(xb), BigInt::from_bytes(yb), false};
  if (p.x >= params_.q || p.y >= params_.q || !on_curve(p, params_.q)) {
    throw std::invalid_argument("deserialize_g1: point not on curve");
  }
  return p;
}

namespace {
// Jacobian point used inside the Miller loop (z == 0 means infinity).
// Keeping V projective removes every per-step modular inversion: line
// values are scaled by the λ-denominator, which lies in F_q* and is killed
// by the final exponentiation ((q−1) divides (q²−1)/r), the same
// denominator-elimination argument that lets us drop vertical lines.
struct MillerPoint {
  BigInt x, y, z;
  bool infinity() const { return z.is_zero(); }
};

// F_q² arithmetic with coordinates kept in Montgomery form. Addition and
// subtraction are domain-preserving, so only products change.
Fq2 fq2_mul_m(const Fq2& x, const Fq2& y, const math::Montgomery& mq,
              const BigInt& q) {
  const BigInt t0 = mq.mul(x.a, y.a);
  const BigInt t1 = mq.mul(x.b, y.b);
  const BigInt t2 = mq.mul(mod_add(x.a, x.b, q), mod_add(y.a, y.b, q));
  return {mod_sub(t0, t1, q), mod_sub(mod_sub(t2, t0, q), t1, q)};
}

Fq2 fq2_sqr_m(const Fq2& x, const math::Montgomery& mq, const BigInt& q) {
  const BigInt t0 = mq.mul(mod_add(x.a, x.b, q), mod_sub(x.a, x.b, q));
  const BigInt t1 = mq.mul(x.a, x.b);
  return {t0, mod_add(t1, t1, q)};
}

Fq2 fq2_pow_m(const Fq2& x, const BigInt& e, const Fq2& one_m,
              const math::Montgomery& mq, const BigInt& q) {
  Fq2 acc = one_m;
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    acc = fq2_sqr_m(acc, mq, q);
    if (e.bit(i)) acc = fq2_mul_m(acc, x, mq, q);
  }
  return acc;
}
}  // namespace

Fq2 Pairing::pair(const Point& p, const Point& qpt) const {
  if (p.infinity || qpt.infinity) return fq2_one();
  const BigInt& q = params_.q;
  const BigInt& r = params_.r;
  const math::Montgomery& mq = montq_;

  // Montgomery-domain inputs; every product below is a CIOS multiply.
  const BigInt one_m = mq.to_mont(BigInt{1});
  const BigInt px = mq.to_mont(p.x);
  const BigInt py = mq.to_mont(p.y);
  const BigInt qx = mq.to_mont(qpt.x);
  const BigInt qy = mq.to_mont(qpt.y);
  const Fq2 fq2_one_m{one_m, BigInt{}};

  // Miller loop computing f_{r,P}(φ(Q)) with φ(x,y) = (−x, i·y).
  Fq2 f = fq2_one_m;
  MillerPoint v{px, py, one_m};

  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    if (!v.infinity()) {
      // --- tangent line at V, scaled by 2YZ³ ---------------------------
      //   real = M·Z²·xQ + M·X − 2Y²,  imag = 2YZ³·yQ
      // with M = 3X² + Z⁴ (curve coefficient a = 1).
      const BigInt x2 = mq.mul(v.x, v.x);
      const BigInt z2 = mq.mul(v.z, v.z);
      const BigInt z4 = mq.mul(z2, z2);
      const BigInt m = mod_add(mod_add(mod_add(x2, x2, q), x2, q), z4, q);
      const BigInt y2 = mq.mul(v.y, v.y);
      const BigInt two_y2 = mod_add(y2, y2, q);
      const BigInt yz = mq.mul(v.y, v.z);
      const BigInt two_yz3 = mq.mul(mod_add(yz, yz, q), z2);  // 2YZ³
      Fq2 line;
      line.a = mod_sub(
          mod_add(mq.mul(mq.mul(m, z2), qx), mq.mul(m, v.x), q), two_y2, q);
      line.b = mq.mul(two_yz3, qy);
      f = fq2_mul_m(fq2_sqr_m(f, mq, q), line, mq, q);

      // --- double V (Jacobian, a = 1) -----------------------------------
      BigInt s = mq.mul(v.x, y2);
      s = mod_add(s, s, q);
      s = mod_add(s, s, q);  // 4XY²
      const BigInt xp = mod_sub(mq.mul(m, m), mod_add(s, s, q), q);
      BigInt y4 = mq.mul(y2, y2);
      y4 = mod_add(y4, y4, q);
      y4 = mod_add(y4, y4, q);
      y4 = mod_add(y4, y4, q);  // 8Y⁴
      const BigInt yp = mod_sub(mq.mul(m, mod_sub(s, xp, q)), y4, q);
      v = MillerPoint{xp, yp, mod_add(yz, yz, q)};
    } else {
      f = fq2_sqr_m(f, mq, q);
    }

    if (r.bit(i)) {
      if (v.infinity()) {
        v = MillerPoint{px, py, one_m};
        continue;
      }
      // --- addition V + P (P affine) ------------------------------------
      const BigInt z2 = mq.mul(v.z, v.z);
      const BigInt u2 = mq.mul(px, z2);              // xP·Z²
      const BigInt s2 = mq.mul(py, mq.mul(z2, v.z));  // yP·Z³
      const BigInt hh = mod_sub(u2, v.x, q);
      const BigInt rr = mod_sub(s2, v.y, q);
      if (hh.is_zero()) {
        if (rr.is_zero()) {
          // V == P: tangent at the affine point, scaled by its denominator.
          const BigInt x2p = mq.mul(px, px);
          const BigInt num =
              mod_add(mod_add(mod_add(x2p, x2p, q), x2p, q), one_m, q);
          const BigInt den = mod_add(py, py, q);
          Fq2 line;
          line.a = mod_sub(mq.mul(num, mod_add(qx, px, q)), mq.mul(den, py), q);
          line.b = mq.mul(den, qy);
          f = fq2_mul_m(f, line, mq, q);
          const Point dbl = point_double(p, q);
          v = dbl.infinity
                  ? MillerPoint{one_m, one_m, BigInt{}}
                  : MillerPoint{mq.to_mont(dbl.x), mq.to_mont(dbl.y), one_m};
        } else {
          // V == −P: vertical line (eliminated); V + P = O.
          v = MillerPoint{one_m, one_m, BigInt{}};
        }
        continue;
      }
      // Line through V and P scaled by Z·H:
      //   real = R·(xQ + xP) − yP·Z·H,  imag = Z·H·yQ.
      const BigInt zh = mq.mul(v.z, hh);
      Fq2 line;
      line.a = mod_sub(mq.mul(rr, mod_add(qx, px, q)), mq.mul(py, zh), q);
      line.b = mq.mul(zh, qy);
      f = fq2_mul_m(f, line, mq, q);

      // V ← V + P (mixed Jacobian addition).
      const BigInt h2 = mq.mul(hh, hh);
      const BigInt h3 = mq.mul(h2, hh);
      const BigInt uh2 = mq.mul(v.x, h2);
      const BigInt xp =
          mod_sub(mod_sub(mq.mul(rr, rr), h3, q), mod_add(uh2, uh2, q), q);
      const BigInt yp =
          mod_sub(mq.mul(rr, mod_sub(uh2, xp, q)), mq.mul(v.y, h3), q);
      v = MillerPoint{xp, yp, zh};
    }
  }

  // Final exponentiation: f^((q²−1)/r) = (conj(f)·f⁻¹)^h since
  // (q²−1)/r = (q−1)·h and f^q = conj(f) in F_q². Inversion drops out of
  // Montgomery form for the extended-Euclid step, then re-enters.
  const Fq2 f_conj = fq2_conj(f, q);
  const BigInt norm = mod_add(mq.mul(f.a, f.a), mq.mul(f.b, f.b), q);
  const BigInt norm_inv = mq.to_mont(mod_inv(mq.from_mont(norm), q));
  const Fq2 f_inv{mq.mul(f.a, norm_inv),
                  mq.mul(mod_sub(BigInt{}, f.b, q), norm_inv)};
  const Fq2 f_q_minus_1 = fq2_mul_m(f_conj, f_inv, mq, q);
  const Fq2 result_m =
      fq2_pow_m(f_q_minus_1, params_.h, Fq2{one_m, BigInt{}}, mq, q);
  return Fq2{mq.from_mont(result_m.a), mq.from_mont(result_m.b)};
}

Fq2 Pairing::gt_mul(const Fq2& a, const Fq2& b) const {
  return fq2_mul(a, b, params_.q);
}

Fq2 Pairing::gt_pow(const Fq2& a, const BigInt& e) const {
  return fq2_pow(a, mod(e, params_.r), params_.q);
}

Fq2 Pairing::gt_inv(const Fq2& a) const { return fq2_inv(a, params_.q); }

Fq2 Pairing::random_gt(Rng& rng) const {
  return gt_pow(e_gg_, random_nonzero_scalar(rng));
}

Bytes Pairing::serialize_gt(const Fq2& v) const {
  Writer w;
  w.raw(v.a.to_bytes(q_bytes_));
  w.raw(v.b.to_bytes(q_bytes_));
  return w.take();
}

Fq2 Pairing::deserialize_gt(BytesView data) const {
  Reader r(data);
  Fq2 v;
  v.a = BigInt::from_bytes(r.raw(q_bytes_));
  v.b = BigInt::from_bytes(r.raw(q_bytes_));
  r.expect_done();
  if (v.a >= params_.q || v.b >= params_.q) {
    throw std::invalid_argument("deserialize_gt: out of range");
  }
  return v;
}

}  // namespace p3s::pairing
