#include "pairing/schnorr.hpp"

#include "common/serial.hpp"
#include "crypto/sha256.hpp"
#include "math/modular.hpp"

namespace p3s::pairing {

using math::mod;
using math::mod_add;
using math::mod_mul;

namespace {
BigInt challenge(const Pairing& p, const Point& r, const Point& pk,
                 BytesView message) {
  Writer w;
  w.bytes(p.serialize_g1(r));
  w.bytes(p.serialize_g1(pk));
  w.bytes(message);
  return mod(math::BigInt::from_bytes(crypto::Sha256::digest(w.data())), p.r());
}
}  // namespace

Bytes SchnorrSignature::serialize(const Pairing& pairing) const {
  Writer w;
  w.bytes(pairing.serialize_g1(r));
  w.bytes(s.to_bytes());
  return w.take();
}

SchnorrSignature SchnorrSignature::deserialize(const Pairing& pairing,
                                               BytesView data) {
  Reader rd(data);
  SchnorrSignature sig;
  sig.r = pairing.deserialize_g1(rd.bytes());
  sig.s = math::BigInt::from_bytes(rd.bytes());
  rd.expect_done();
  return sig;
}

SchnorrKeyPair schnorr_keygen(const Pairing& pairing, Rng& rng) {
  SchnorrKeyPair kp;
  kp.secret = pairing.random_nonzero_scalar(rng);
  kp.public_key = pairing.mul(pairing.generator(), kp.secret);
  return kp;
}

SchnorrSignature schnorr_sign(const Pairing& pairing, const BigInt& secret,
                              BytesView message, Rng& rng) {
  const BigInt k = pairing.random_nonzero_scalar(rng);
  SchnorrSignature sig;
  sig.r = pairing.mul(pairing.generator(), k);
  const Point pk = pairing.mul(pairing.generator(), secret);
  const BigInt c = challenge(pairing, sig.r, pk, message);
  sig.s = mod_add(k, mod_mul(c, secret, pairing.r()), pairing.r());
  return sig;
}

bool schnorr_verify(const Pairing& pairing, const Point& public_key,
                    BytesView message, const SchnorrSignature& sig) {
  const BigInt c = challenge(pairing, sig.r, public_key, message);
  const Point lhs = pairing.mul(pairing.generator(), sig.s);
  const Point rhs = pairing.add(sig.r, pairing.mul(public_key, c));
  return lhs == rhs;
}

}  // namespace p3s::pairing
