// The supersingular curve E: y² = x³ + x over F_q (q ≡ 3 mod 4), the group
// behind PBC's "Type A" pairing that the paper's jPBC/cpabe stacks use.
// #E(F_q) = q + 1; the pairing group is the order-r subgroup with q + 1 = h·r.
#pragma once

#include "math/bigint.hpp"
#include "math/modular.hpp"

namespace p3s::pairing {

using math::BigInt;

/// Affine point; (infinity=true) is the identity.
struct Point {
  BigInt x;
  BigInt y;
  bool infinity = true;

  static Point at_infinity() { return Point{}; }
  bool operator==(const Point&) const = default;
};

/// True iff p is the identity or satisfies the curve equation mod q.
bool on_curve(const Point& p, const BigInt& q);

Point point_neg(const Point& p, const BigInt& q);
Point point_add(const Point& p1, const Point& p2, const BigInt& q);
Point point_double(const Point& p, const BigInt& q);
/// k·p with k >= 0 (Jacobian double-and-add internally).
Point point_mul(const Point& p, const BigInt& k, const BigInt& q);

}  // namespace p3s::pairing
