// The supersingular curve E: y² = x³ + x over F_q (q ≡ 3 mod 4), the group
// behind PBC's "Type A" pairing that the paper's jPBC/cpabe stacks use.
// #E(F_q) = q + 1; the pairing group is the order-r subgroup with q + 1 = h·r.
#pragma once

#include <cstdint>
#include <vector>

#include "math/bigint.hpp"
#include "math/modular.hpp"
#include "math/montgomery.hpp"
#include "pairing/fq_mont.hpp"

namespace p3s::pairing {

using math::BigInt;

/// Affine point; (infinity=true) is the identity.
struct Point {
  BigInt x;
  BigInt y;
  bool infinity = true;

  static Point at_infinity() { return Point{}; }
  bool operator==(const Point&) const = default;
};

/// True iff p is the identity or satisfies the curve equation mod q.
bool on_curve(const Point& p, const BigInt& q);

Point point_neg(const Point& p, const BigInt& q);
Point point_add(const Point& p1, const Point& p2, const BigInt& q);
Point point_double(const Point& p, const BigInt& q);
/// k·p with k >= 0. Reference double-and-add (division-based reduction);
/// kept as the correctness pin for the Montgomery/wNAF fast path below.
Point point_mul(const Point& p, const BigInt& k, const BigInt& q);

/// k·p with k >= 0 on the Montgomery-domain fast path: 4-bit wNAF over
/// Jacobian coordinates with CIOS field multiplication (zero heap traffic
/// per group operation). Falls back to the reference path when the modulus
/// exceeds math::Montgomery::kMaxFixedLimbs.
Point point_mul_mont(const Point& p, const BigInt& k,
                     const math::Montgomery& mq);

/// Signed 4-bit NAF digits of k >= 0, least-significant first. Nonzero
/// digits are odd and in [-15, 15]; at most one in any 4 consecutive
/// positions.
std::vector<std::int8_t> wnaf4(const BigInt& k);

/// Precomputed fixed-base table: all w-bit window multiples
/// d·2^{jw}·B (d in [1, 2^w), j over the scalar windows), stored as affine
/// Montgomery-domain points. A multiplication then costs one mixed
/// Jacobian addition per nonzero window — no doublings — which is ~5–8x
/// fewer field operations than generic double-and-add for the bases the
/// system reuses on every operation (the group generator, HVE/CP-ABE
/// public-key components). Memory: windows·(2^w − 1) points, i.e. ~4.7 KB
/// per 80-bit-scalar base and ~19 KB per 160-bit-scalar base at w = 4
/// (see DESIGN.md).
///
/// The table borrows `mq`; it must outlive the table (the owning Pairing
/// guarantees this for its own tables).
class FixedBaseTable {
 public:
  static constexpr unsigned kWindow = 4;

  /// Build the table for scalars of at most `scalar_bits` bits. Larger
  /// scalars (and oversized moduli) fall back to point_mul internally.
  FixedBaseTable(const math::Montgomery& mq, const Point& base,
                 std::size_t scalar_bits);

  const Point& base() const { return base_; }
  /// k·base for k >= 0.
  Point mul(const BigInt& k) const;
  /// Table footprint in bytes (0 when the fallback path is active).
  std::size_t memory_bytes() const {
    return (xs_.size() + ys_.size()) * sizeof(fqm::Fe);
  }

 private:
  const math::Montgomery& mq_;
  Point base_;
  std::size_t scalar_bits_ = 0;
  std::size_t windows_ = 0;
  // Entry j·(2^w − 1) + (d − 1) holds d·2^{jw}·B; empty when falling back.
  std::vector<fqm::Fe> xs_, ys_;
};

}  // namespace p3s::pairing
