#include "pairing/fq2.hpp"

#include <stdexcept>

#include "pairing/fq_mont.hpp"

namespace p3s::pairing {

using math::mod;
using math::mod_add;
using math::mod_inv;
using math::mod_mul;
using math::mod_sub;

Fq2 fq2_zero() { return {BigInt{}, BigInt{}}; }
Fq2 fq2_one() { return {BigInt{1}, BigInt{}}; }

bool fq2_is_zero(const Fq2& x) { return x.a.is_zero() && x.b.is_zero(); }
bool fq2_is_one(const Fq2& x) { return x.a == BigInt{1} && x.b.is_zero(); }

Fq2 fq2_add(const Fq2& x, const Fq2& y, const BigInt& q) {
  return {mod_add(x.a, y.a, q), mod_add(x.b, y.b, q)};
}

Fq2 fq2_sub(const Fq2& x, const Fq2& y, const BigInt& q) {
  return {mod_sub(x.a, y.a, q), mod_sub(x.b, y.b, q)};
}

Fq2 fq2_neg(const Fq2& x, const BigInt& q) {
  return {mod_sub(BigInt{}, x.a, q), mod_sub(BigInt{}, x.b, q)};
}

Fq2 fq2_mul(const Fq2& x, const Fq2& y, const BigInt& q) {
  // (a1 + b1 i)(a2 + b2 i) = (a1a2 - b1b2) + (a1b2 + b1a2) i
  // Karatsuba-style: 3 base multiplications.
  const BigInt t0 = mod_mul(x.a, y.a, q);
  const BigInt t1 = mod_mul(x.b, y.b, q);
  const BigInt t2 =
      mod_mul(mod_add(x.a, x.b, q), mod_add(y.a, y.b, q), q);
  return {mod_sub(t0, t1, q), mod_sub(mod_sub(t2, t0, q), t1, q)};
}

Fq2 fq2_sqr(const Fq2& x, const BigInt& q) {
  // (a + bi)^2 = (a+b)(a-b) + 2ab i
  const BigInt t0 = mod_mul(mod_add(x.a, x.b, q), mod_sub(x.a, x.b, q), q);
  const BigInt t1 = mod_mul(x.a, x.b, q);
  return {t0, mod_add(t1, t1, q)};
}

Fq2 fq2_conj(const Fq2& x, const BigInt& q) {
  return {x.a, mod_sub(BigInt{}, x.b, q)};
}

Fq2 fq2_inv(const Fq2& x, const BigInt& q) {
  if (fq2_is_zero(x)) throw std::domain_error("fq2_inv: zero");
  // 1/(a+bi) = (a-bi)/(a^2+b^2)
  const BigInt norm =
      mod_add(mod_mul(x.a, x.a, q), mod_mul(x.b, x.b, q), q);
  const BigInt ninv = mod_inv(norm, q);
  return {mod_mul(x.a, ninv, q), mod_mul(mod_sub(BigInt{}, x.b, q), ninv, q)};
}

Fq2 fq2_pow(const Fq2& x, const BigInt& e, const BigInt& q) {
  if (e.is_negative()) throw std::invalid_argument("fq2_pow: negative exponent");
  // Montgomery fast path mirrors math::mod_pow's heuristic: for odd q and
  // long exponents the one-off context setup amortizes well below the
  // division-based reduction cost.
  if (q.is_odd() && q.bit_length() >= 128 && e.bit_length() >= 64) {
    return fq2_pow(x, e, math::Montgomery(q));
  }
  Fq2 acc = fq2_one();
  const std::size_t bits = e.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    acc = fq2_sqr(acc, q);
    if (e.bit(i)) acc = fq2_mul(acc, x, q);
  }
  return acc;
}

Fq2 fq2_pow(const Fq2& x, const BigInt& e, const math::Montgomery& mq) {
  if (e.is_negative()) throw std::invalid_argument("fq2_pow: negative exponent");
  if (!mq.fits_fixed()) {
    // Oversized modulus: plain square-and-multiply reference path.
    const BigInt& q = mq.modulus();
    Fq2 acc = fq2_one();
    for (std::size_t i = e.bit_length(); i-- > 0;) {
      acc = fq2_sqr(acc, q);
      if (e.bit(i)) acc = fq2_mul(acc, x, q);
    }
    return acc;
  }
  const fqm::Fe2 xm{fqm::fe_from(mq, x.a), fqm::fe_from(mq, x.b)};
  const fqm::Fe2 r = fqm::fe2_pow(mq, xm, e);
  return {fqm::fe_to(mq, r.a), fqm::fe_to(mq, r.b)};
}

}  // namespace p3s::pairing
