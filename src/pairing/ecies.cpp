#include "pairing/ecies.hpp"

#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"

namespace p3s::pairing {

namespace {
Bytes derive_key(const Pairing& pairing, const Point& ephemeral,
                 const Point& shared) {
  const Bytes ikm =
      concat(pairing.serialize_g1(ephemeral), pairing.serialize_g1(shared));
  return crypto::hkdf(str_to_bytes("p3s-ecies-v1"), ikm, {}, 32);
}
}  // namespace

EciesKeyPair ecies_keygen(const Pairing& pairing, Rng& rng) {
  EciesKeyPair kp;
  kp.secret = pairing.random_nonzero_scalar(rng);
  kp.public_key = pairing.mul(pairing.generator(), kp.secret);
  return kp;
}

Bytes ecies_encrypt(const Pairing& pairing, const Point& recipient_pk,
                    BytesView plaintext, Rng& rng) {
  const BigInt k = pairing.random_nonzero_scalar(rng);
  const Point c1 = pairing.mul(pairing.generator(), k);
  const Point shared = pairing.mul(recipient_pk, k);
  const Bytes key = derive_key(pairing, c1, shared);
  const Bytes c1_ser = pairing.serialize_g1(c1);
  const crypto::AeadCiphertext body =
      crypto::aead_encrypt(key, plaintext, c1_ser, rng);
  Writer w;
  w.bytes(c1_ser);
  w.bytes(body.serialize());
  return w.take();
}

std::optional<Bytes> ecies_decrypt(const Pairing& pairing, const BigInt& secret,
                                   BytesView ciphertext) {
  try {
    Reader r(ciphertext);
    const Bytes c1_ser = r.bytes();
    const Bytes body_ser = r.bytes();
    r.expect_done();
    const Point c1 = pairing.deserialize_g1(c1_ser);
    if (c1.infinity) return std::nullopt;
    const Point shared = pairing.mul(c1, secret);
    const Bytes key = derive_key(pairing, c1, shared);
    return crypto::aead_decrypt(key, crypto::AeadCiphertext::deserialize(body_ser),
                                c1_ser);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace p3s::pairing
