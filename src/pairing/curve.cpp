#include "pairing/curve.hpp"

#include <stdexcept>

namespace p3s::pairing {

using math::mod;
using math::mod_add;
using math::mod_inv;
using math::mod_mul;
using math::mod_sub;

bool on_curve(const Point& p, const BigInt& q) {
  if (p.infinity) return true;
  // y^2 == x^3 + x
  const BigInt lhs = mod_mul(p.y, p.y, q);
  const BigInt x2 = mod_mul(p.x, p.x, q);
  const BigInt rhs = mod_add(mod_mul(x2, p.x, q), p.x, q);
  return lhs == rhs;
}

Point point_neg(const Point& p, const BigInt& q) {
  if (p.infinity) return p;
  return {p.x, mod_sub(BigInt{}, p.y, q), false};
}

Point point_double(const Point& p, const BigInt& q) {
  if (p.infinity) return p;
  if (p.y.is_zero()) return Point::at_infinity();
  // lambda = (3x^2 + 1) / (2y)   [curve coefficient a = 1]
  const BigInt x2 = mod_mul(p.x, p.x, q);
  const BigInt num = mod_add(mod_add(mod_add(x2, x2, q), x2, q), BigInt{1}, q);
  const BigInt lambda = mod_mul(num, mod_inv(mod_add(p.y, p.y, q), q), q);
  const BigInt x3 = mod_sub(mod_sub(mod_mul(lambda, lambda, q), p.x, q), p.x, q);
  const BigInt y3 = mod_sub(mod_mul(lambda, mod_sub(p.x, x3, q), q), p.y, q);
  return {x3, y3, false};
}

Point point_add(const Point& p1, const Point& p2, const BigInt& q) {
  if (p1.infinity) return p2;
  if (p2.infinity) return p1;
  if (p1.x == p2.x) {
    if (p1.y == p2.y) return point_double(p1, q);
    return Point::at_infinity();  // p2 == -p1
  }
  const BigInt lambda = mod_mul(mod_sub(p2.y, p1.y, q),
                                mod_inv(mod_sub(p2.x, p1.x, q), q), q);
  const BigInt x3 =
      mod_sub(mod_sub(mod_mul(lambda, lambda, q), p1.x, q), p2.x, q);
  const BigInt y3 = mod_sub(mod_mul(lambda, mod_sub(p1.x, x3, q), q), p1.y, q);
  return {x3, y3, false};
}

namespace {
// Jacobian coordinates (X, Y, Z): x = X/Z^2, y = Y/Z^3. Avoids the modular
// inversion per step that affine arithmetic needs, which makes scalar
// multiplication ~20x faster at pairing sizes.
struct Jac {
  BigInt x, y, z;  // z == 0 means infinity
};

Point jac_to_affine(const Jac& j, const BigInt& q) {
  if (j.z.is_zero()) return Point::at_infinity();
  const BigInt zinv = mod_inv(j.z, q);
  const BigInt zinv2 = mod_mul(zinv, zinv, q);
  return {mod_mul(j.x, zinv2, q), mod_mul(j.y, mod_mul(zinv2, zinv, q), q),
          false};
}

Jac jac_double(const Jac& p, const BigInt& q) {
  if (p.z.is_zero() || p.y.is_zero()) return {BigInt{1}, BigInt{1}, BigInt{}};
  // General doubling for y^2 = x^3 + a x with a = 1:
  //   M = 3X^2 + a Z^4, S = 4XY^2,
  //   X' = M^2 - 2S, Y' = M(S - X') - 8Y^4, Z' = 2YZ.
  const BigInt y2 = mod_mul(p.y, p.y, q);
  const BigInt z2 = mod_mul(p.z, p.z, q);
  const BigInt x2 = mod_mul(p.x, p.x, q);
  const BigInt z4 = mod_mul(z2, z2, q);
  const BigInt m = mod_add(mod_add(mod_add(x2, x2, q), x2, q), z4, q);
  BigInt s = mod_mul(p.x, y2, q);
  s = mod_add(s, s, q);
  s = mod_add(s, s, q);
  const BigInt xp = mod_sub(mod_mul(m, m, q), mod_add(s, s, q), q);
  BigInt y4 = mod_mul(y2, y2, q);  // Y^4
  // 8 Y^4
  y4 = mod_add(y4, y4, q);
  y4 = mod_add(y4, y4, q);
  y4 = mod_add(y4, y4, q);
  const BigInt yp = mod_sub(mod_mul(m, mod_sub(s, xp, q), q), y4, q);
  BigInt zp = mod_mul(p.y, p.z, q);
  zp = mod_add(zp, zp, q);
  return {xp, yp, zp};
}

// Mixed addition: p (Jacobian) + a (affine, not infinity).
Jac jac_add_affine(const Jac& p, const Point& a, const BigInt& q) {
  if (p.z.is_zero()) return {a.x, a.y, BigInt{1}};
  const BigInt z2 = mod_mul(p.z, p.z, q);
  const BigInt u2 = mod_mul(a.x, z2, q);
  const BigInt s2 = mod_mul(a.y, mod_mul(z2, p.z, q), q);
  const BigInt h = mod_sub(u2, p.x, q);
  const BigInt rr = mod_sub(s2, p.y, q);
  if (h.is_zero()) {
    if (rr.is_zero()) return jac_double(p, q);
    return {BigInt{1}, BigInt{1}, BigInt{}};  // infinity
  }
  const BigInt h2 = mod_mul(h, h, q);
  const BigInt h3 = mod_mul(h2, h, q);
  const BigInt uh2 = mod_mul(p.x, h2, q);
  const BigInt xp =
      mod_sub(mod_sub(mod_mul(rr, rr, q), h3, q), mod_add(uh2, uh2, q), q);
  const BigInt yp = mod_sub(mod_mul(rr, mod_sub(uh2, xp, q), q),
                            mod_mul(p.y, h3, q), q);
  const BigInt zp = mod_mul(p.z, h, q);
  return {xp, yp, zp};
}
}  // namespace

Point point_mul(const Point& p, const BigInt& k, const BigInt& q) {
  if (k.is_negative()) throw std::invalid_argument("point_mul: negative scalar");
  if (p.infinity || k.is_zero()) return Point::at_infinity();
  Jac acc{BigInt{1}, BigInt{1}, BigInt{}};  // infinity
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = jac_double(acc, q);
    if (k.bit(i)) acc = jac_add_affine(acc, p, q);
  }
  return jac_to_affine(acc, q);
}

}  // namespace p3s::pairing
