#include "pairing/curve.hpp"

#include <stdexcept>

namespace p3s::pairing {

using math::mod;
using math::mod_add;
using math::mod_inv;
using math::mod_mul;
using math::mod_sub;

bool on_curve(const Point& p, const BigInt& q) {
  if (p.infinity) return true;
  // y^2 == x^3 + x
  const BigInt lhs = mod_mul(p.y, p.y, q);
  const BigInt x2 = mod_mul(p.x, p.x, q);
  const BigInt rhs = mod_add(mod_mul(x2, p.x, q), p.x, q);
  return lhs == rhs;
}

Point point_neg(const Point& p, const BigInt& q) {
  if (p.infinity) return p;
  return {p.x, mod_sub(BigInt{}, p.y, q), false};
}

Point point_double(const Point& p, const BigInt& q) {
  if (p.infinity) return p;
  if (p.y.is_zero()) return Point::at_infinity();
  // lambda = (3x^2 + 1) / (2y)   [curve coefficient a = 1]
  const BigInt x2 = mod_mul(p.x, p.x, q);
  const BigInt num = mod_add(mod_add(mod_add(x2, x2, q), x2, q), BigInt{1}, q);
  const BigInt lambda = mod_mul(num, mod_inv(mod_add(p.y, p.y, q), q), q);
  const BigInt x3 = mod_sub(mod_sub(mod_mul(lambda, lambda, q), p.x, q), p.x, q);
  const BigInt y3 = mod_sub(mod_mul(lambda, mod_sub(p.x, x3, q), q), p.y, q);
  return {x3, y3, false};
}

Point point_add(const Point& p1, const Point& p2, const BigInt& q) {
  if (p1.infinity) return p2;
  if (p2.infinity) return p1;
  if (p1.x == p2.x) {
    if (p1.y == p2.y) return point_double(p1, q);
    return Point::at_infinity();  // p2 == -p1
  }
  const BigInt lambda = mod_mul(mod_sub(p2.y, p1.y, q),
                                mod_inv(mod_sub(p2.x, p1.x, q), q), q);
  const BigInt x3 =
      mod_sub(mod_sub(mod_mul(lambda, lambda, q), p1.x, q), p2.x, q);
  const BigInt y3 = mod_sub(mod_mul(lambda, mod_sub(p1.x, x3, q), q), p1.y, q);
  return {x3, y3, false};
}

namespace {
// Jacobian coordinates (X, Y, Z): x = X/Z^2, y = Y/Z^3. Avoids the modular
// inversion per step that affine arithmetic needs, which makes scalar
// multiplication ~20x faster at pairing sizes.
struct Jac {
  BigInt x, y, z;  // z == 0 means infinity
};

Point jac_to_affine(const Jac& j, const BigInt& q) {
  if (j.z.is_zero()) return Point::at_infinity();
  const BigInt zinv = mod_inv(j.z, q);
  const BigInt zinv2 = mod_mul(zinv, zinv, q);
  return {mod_mul(j.x, zinv2, q), mod_mul(j.y, mod_mul(zinv2, zinv, q), q),
          false};
}

Jac jac_double(const Jac& p, const BigInt& q) {
  if (p.z.is_zero() || p.y.is_zero()) return {BigInt{1}, BigInt{1}, BigInt{}};
  // General doubling for y^2 = x^3 + a x with a = 1:
  //   M = 3X^2 + a Z^4, S = 4XY^2,
  //   X' = M^2 - 2S, Y' = M(S - X') - 8Y^4, Z' = 2YZ.
  const BigInt y2 = mod_mul(p.y, p.y, q);
  const BigInt z2 = mod_mul(p.z, p.z, q);
  const BigInt x2 = mod_mul(p.x, p.x, q);
  const BigInt z4 = mod_mul(z2, z2, q);
  const BigInt m = mod_add(mod_add(mod_add(x2, x2, q), x2, q), z4, q);
  BigInt s = mod_mul(p.x, y2, q);
  s = mod_add(s, s, q);
  s = mod_add(s, s, q);
  const BigInt xp = mod_sub(mod_mul(m, m, q), mod_add(s, s, q), q);
  BigInt y4 = mod_mul(y2, y2, q);  // Y^4
  // 8 Y^4
  y4 = mod_add(y4, y4, q);
  y4 = mod_add(y4, y4, q);
  y4 = mod_add(y4, y4, q);
  const BigInt yp = mod_sub(mod_mul(m, mod_sub(s, xp, q), q), y4, q);
  BigInt zp = mod_mul(p.y, p.z, q);
  zp = mod_add(zp, zp, q);
  return {xp, yp, zp};
}

// Mixed addition: p (Jacobian) + a (affine, not infinity).
Jac jac_add_affine(const Jac& p, const Point& a, const BigInt& q) {
  if (p.z.is_zero()) return {a.x, a.y, BigInt{1}};
  const BigInt z2 = mod_mul(p.z, p.z, q);
  const BigInt u2 = mod_mul(a.x, z2, q);
  const BigInt s2 = mod_mul(a.y, mod_mul(z2, p.z, q), q);
  const BigInt h = mod_sub(u2, p.x, q);
  const BigInt rr = mod_sub(s2, p.y, q);
  if (h.is_zero()) {
    if (rr.is_zero()) return jac_double(p, q);
    return {BigInt{1}, BigInt{1}, BigInt{}};  // infinity
  }
  const BigInt h2 = mod_mul(h, h, q);
  const BigInt h3 = mod_mul(h2, h, q);
  const BigInt uh2 = mod_mul(p.x, h2, q);
  const BigInt xp =
      mod_sub(mod_sub(mod_mul(rr, rr, q), h3, q), mod_add(uh2, uh2, q), q);
  const BigInt yp = mod_sub(mod_mul(rr, mod_sub(uh2, xp, q), q),
                            mod_mul(p.y, h3, q), q);
  const BigInt zp = mod_mul(p.z, h, q);
  return {xp, yp, zp};
}
}  // namespace

Point point_mul(const Point& p, const BigInt& k, const BigInt& q) {
  if (k.is_negative()) throw std::invalid_argument("point_mul: negative scalar");
  if (p.infinity || k.is_zero()) return Point::at_infinity();
  Jac acc{BigInt{1}, BigInt{1}, BigInt{}};  // infinity
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    acc = jac_double(acc, q);
    if (k.bit(i)) acc = jac_add_affine(acc, p, q);
  }
  return jac_to_affine(acc, q);
}

std::vector<std::int8_t> wnaf4(const BigInt& k) {
  if (k.is_negative()) throw std::invalid_argument("wnaf4: negative scalar");
  std::vector<std::uint64_t> v = k.limbs();
  std::vector<std::int8_t> digits;
  digits.reserve(k.bit_length() + 1);
  const auto is_zero = [&v] {
    for (const std::uint64_t w : v) {
      if (w != 0) return false;
    }
    return true;
  };
  while (!is_zero()) {
    std::int8_t d = 0;
    if (v[0] & 1) {
      const unsigned u = static_cast<unsigned>(v[0] & 31);  // k mod 2^(w+1)
      if (u > 16) {
        d = static_cast<std::int8_t>(static_cast<int>(u) - 32);
        // v += (32 - u)
        std::uint64_t carry = 32 - u;
        for (std::size_t i = 0; carry != 0 && i < v.size(); ++i) {
          const std::uint64_t s = v[i] + carry;
          carry = s < v[i] ? 1 : 0;
          v[i] = s;
        }
        if (carry != 0) v.push_back(carry);
      } else {
        d = static_cast<std::int8_t>(u);
        // v -= u (u <= 15 < v, since v is odd and >= u here)
        std::uint64_t borrow = u;
        for (std::size_t i = 0; borrow != 0 && i < v.size(); ++i) {
          const std::uint64_t r = v[i] - borrow;
          borrow = r > v[i] ? 1 : 0;
          v[i] = r;
        }
      }
    }
    digits.push_back(d);
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      v[i] = (v[i] >> 1) | (v[i + 1] << 63);
    }
    if (!v.empty()) v.back() >>= 1;
  }
  return digits;
}

namespace {
using fqm::Fe;
using math::Montgomery;

// Jacobian point with Montgomery-form fixed-width coordinates; z == 0 is
// the identity. All functions here assume mq.fits_fixed().
struct JacM {
  Fe x, y, z;
};

struct AffM {
  Fe x, y;
  bool inf = true;
};

bool jacm_is_inf(const Montgomery& m, const JacM& p) {
  return fqm::fe_is_zero(p.z, m.limb_count());
}

JacM jacm_infinity() { return JacM{}; }

// Same doubling formula as jac_double above (a = 1), on Fe limbs.
JacM jacm_double(const Montgomery& m, const JacM& p) {
  if (jacm_is_inf(m, p) || fqm::fe_is_zero(p.y, m.limb_count())) {
    return jacm_infinity();
  }
  Fe y2, z2, x2, z4, mm, s, xp, y4, yp, zp, t;
  fqm::fe_sqr(m, p.y, y2);
  fqm::fe_sqr(m, p.z, z2);
  fqm::fe_sqr(m, p.x, x2);
  fqm::fe_sqr(m, z2, z4);
  fqm::fe_add(m, x2, x2, mm);
  fqm::fe_add(m, mm, x2, mm);
  fqm::fe_add(m, mm, z4, mm);  // M = 3X² + Z⁴
  fqm::fe_mul(m, p.x, y2, s);
  fqm::fe_dbl(m, s, s);
  fqm::fe_dbl(m, s, s);  // S = 4XY²
  fqm::fe_sqr(m, mm, xp);
  fqm::fe_add(m, s, s, t);
  fqm::fe_sub(m, xp, t, xp);  // X' = M² − 2S
  fqm::fe_sqr(m, y2, y4);
  fqm::fe_dbl(m, y4, y4);
  fqm::fe_dbl(m, y4, y4);
  fqm::fe_dbl(m, y4, y4);  // 8Y⁴
  fqm::fe_sub(m, s, xp, t);
  fqm::fe_mul(m, mm, t, yp);
  fqm::fe_sub(m, yp, y4, yp);  // Y' = M(S − X') − 8Y⁴
  fqm::fe_mul(m, p.y, p.z, zp);
  fqm::fe_dbl(m, zp, zp);  // Z' = 2YZ
  return {xp, yp, zp};
}

// Mixed addition p + a with a affine (adding the identity is a no-op on
// either side).
JacM jacm_add_affine(const Montgomery& m, const JacM& p, const AffM& a) {
  if (a.inf) return p;
  if (jacm_is_inf(m, p)) return {a.x, a.y, fqm::fe_from(m, BigInt{1})};
  Fe z2, u2, s2, h, rr, t;
  fqm::fe_sqr(m, p.z, z2);
  fqm::fe_mul(m, a.x, z2, u2);
  fqm::fe_mul(m, z2, p.z, t);
  fqm::fe_mul(m, a.y, t, s2);
  fqm::fe_sub(m, u2, p.x, h);
  fqm::fe_sub(m, s2, p.y, rr);
  const std::size_t k = m.limb_count();
  if (fqm::fe_is_zero(h, k)) {
    if (fqm::fe_is_zero(rr, k)) return jacm_double(m, p);
    return jacm_infinity();  // a == -p
  }
  Fe h2, h3, uh2, xp, yp, zp;
  fqm::fe_sqr(m, h, h2);
  fqm::fe_mul(m, h2, h, h3);
  fqm::fe_mul(m, p.x, h2, uh2);
  fqm::fe_sqr(m, rr, xp);
  fqm::fe_sub(m, xp, h3, xp);
  fqm::fe_add(m, uh2, uh2, t);
  fqm::fe_sub(m, xp, t, xp);  // X' = r² − H³ − 2·U1·H²
  fqm::fe_sub(m, uh2, xp, t);
  fqm::fe_mul(m, rr, t, yp);
  fqm::fe_mul(m, p.y, h3, t);
  fqm::fe_sub(m, yp, t, yp);  // Y' = r(U1·H² − X') − Y1·H³
  fqm::fe_mul(m, p.z, h, zp);
  return {xp, yp, zp};
}

AffM affm_neg(const Montgomery& m, const AffM& a) {
  if (a.inf) return a;
  return {a.x, fqm::fe_neg(m, a.y), false};
}

Point jacm_to_point(const Montgomery& m, const JacM& p) {
  if (jacm_is_inf(m, p)) return Point::at_infinity();
  // One (Fermat, in-domain) inversion per scalar multiplication.
  Fe zinv, zinv2, zinv3, xa, ya;
  zinv = fqm::fe_inv(m, p.z);
  fqm::fe_sqr(m, zinv, zinv2);
  fqm::fe_mul(m, zinv2, zinv, zinv3);
  fqm::fe_mul(m, p.x, zinv2, xa);
  fqm::fe_mul(m, p.y, zinv3, ya);
  return {fqm::fe_to(m, xa), fqm::fe_to(m, ya), false};
}

// Normalize a batch of Jacobian points to affine with a single field
// inversion (Montgomery's trick); identity entries come back as inf.
std::vector<AffM> jacm_batch_normalize(const Montgomery& m,
                                       const std::vector<JacM>& pts) {
  const std::size_t n = pts.size();
  const Fe one = fqm::fe_from(m, BigInt{1});
  std::vector<AffM> out(n);
  // prefix[i] = product of all non-identity z's among pts[0..i-1].
  std::vector<Fe> prefix(n + 1);
  prefix[0] = one;
  for (std::size_t i = 0; i < n; ++i) {
    if (jacm_is_inf(m, pts[i])) {
      prefix[i + 1] = prefix[i];
    } else {
      fqm::fe_mul(m, prefix[i], pts[i].z, prefix[i + 1]);
    }
  }
  Fe inv = fqm::fe_inv(m, prefix[n]);
  for (std::size_t i = n; i-- > 0;) {
    if (jacm_is_inf(m, pts[i])) continue;
    Fe zinv, zinv2, zinv3, t;
    fqm::fe_mul(m, inv, prefix[i], zinv);  // 1/z_i
    fqm::fe_mul(m, inv, pts[i].z, t);      // drop z_i from the running inverse
    inv = t;
    fqm::fe_sqr(m, zinv, zinv2);
    fqm::fe_mul(m, zinv2, zinv, zinv3);
    fqm::fe_mul(m, pts[i].x, zinv2, out[i].x);
    fqm::fe_mul(m, pts[i].y, zinv3, out[i].y);
    out[i].inf = false;
  }
  return out;
}
}  // namespace

Point point_mul_mont(const Point& p, const BigInt& k,
                     const math::Montgomery& mq) {
  if (k.is_negative()) throw std::invalid_argument("point_mul: negative scalar");
  if (p.infinity || k.is_zero()) return Point::at_infinity();
  if (!mq.fits_fixed()) return point_mul(p, k, mq.modulus());

  // Odd-multiple table {1, 3, ..., 15}·P: chain mixed additions of an
  // affine 2P, then normalize the chain with one shared inversion.
  const AffM pa{fqm::fe_from(mq, p.x), fqm::fe_from(mq, p.y), false};
  const JacM p2j =
      jacm_double(mq, JacM{pa.x, pa.y, fqm::fe_from(mq, BigInt{1})});
  if (jacm_is_inf(mq, p2j)) {
    // 2P = identity (P has order <= 2): k·P depends only on k mod 2.
    return k.bit(0) ? p : Point::at_infinity();
  }
  std::vector<JacM> chain(8);
  chain[0] = {pa.x, pa.y, fqm::fe_from(mq, BigInt{1})};
  const AffM p2 = jacm_batch_normalize(mq, {p2j})[0];
  for (std::size_t i = 1; i < 8; ++i) {
    chain[i] = jacm_add_affine(mq, chain[i - 1], p2);
  }
  const std::vector<AffM> table = jacm_batch_normalize(mq, chain);

  const std::vector<std::int8_t> digits = wnaf4(k);
  JacM acc = jacm_infinity();
  for (std::size_t i = digits.size(); i-- > 0;) {
    acc = jacm_double(mq, acc);
    const std::int8_t d = digits[i];
    if (d > 0) {
      acc = jacm_add_affine(mq, acc, table[static_cast<std::size_t>(d) / 2]);
    } else if (d < 0) {
      acc = jacm_add_affine(
          mq, acc, affm_neg(mq, table[static_cast<std::size_t>(-d) / 2]));
    }
  }
  return jacm_to_point(mq, acc);
}

FixedBaseTable::FixedBaseTable(const math::Montgomery& mq, const Point& base,
                               std::size_t scalar_bits)
    : mq_(mq), base_(base), scalar_bits_(scalar_bits) {
  if (!mq.fits_fixed() || base.infinity || scalar_bits == 0) return;
  windows_ = (scalar_bits + kWindow - 1) / kWindow;
  constexpr std::size_t kPerWindow = (1u << kWindow) - 1;  // 15

  xs_.reserve(windows_ * kPerWindow);
  ys_.reserve(windows_ * kPerWindow);
  AffM cur{fqm::fe_from(mq, base.x), fqm::fe_from(mq, base.y), false};
  for (std::size_t w = 0; w < windows_; ++w) {
    // d·cur for d = 1..15, chained mixed additions; then 16·cur = 2·(8·cur)
    // becomes the next window's base.
    std::vector<JacM> window(kPerWindow);
    window[0] = {cur.x, cur.y, fqm::fe_from(mq, BigInt{1})};
    for (std::size_t d = 1; d < kPerWindow; ++d) {
      window[d] = jacm_add_affine(mq, window[d - 1], cur);
    }
    const JacM next = jacm_double(mq, window[7]);
    window.push_back(next);
    const std::vector<AffM> norm = jacm_batch_normalize(mq, window);
    // An identity entry means the base has tiny order — not a case the
    // system's order-r bases hit; fall back to the generic path.
    const bool next_needed = w + 1 < windows_;
    bool degenerate = next_needed && norm[kPerWindow].inf;
    for (std::size_t d = 0; d < kPerWindow; ++d) degenerate |= norm[d].inf;
    if (degenerate) {
      xs_.clear();
      ys_.clear();
      windows_ = 0;
      return;
    }
    for (std::size_t d = 0; d < kPerWindow; ++d) {
      xs_.push_back(norm[d].x);
      ys_.push_back(norm[d].y);
    }
    if (next_needed) cur = norm[kPerWindow];
  }
}

Point FixedBaseTable::mul(const BigInt& k) const {
  if (k.is_negative()) throw std::invalid_argument("point_mul: negative scalar");
  if (k.is_zero() || base_.infinity) return Point::at_infinity();
  if (xs_.empty() || k.bit_length() > windows_ * kWindow) {
    return point_mul_mont(base_, k, mq_);
  }
  constexpr std::size_t kPerWindow = (1u << kWindow) - 1;
  JacM acc = jacm_infinity();
  for (std::size_t w = 0; w < windows_; ++w) {
    unsigned nib = 0;
    for (unsigned i = 0; i < kWindow; ++i) {
      nib |= (k.bit(w * kWindow + i) ? 1u : 0u) << i;
    }
    if (nib == 0) continue;
    const std::size_t idx = w * kPerWindow + (nib - 1);
    acc = jacm_add_affine(mq_, acc, AffM{xs_[idx], ys_[idx], false});
  }
  return jacm_to_point(mq_, acc);
}

}  // namespace p3s::pairing
