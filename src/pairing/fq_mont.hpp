// Fixed-width Montgomery-domain elements of F_q and F_q² — the
// representation the pairing fast path runs on. A value is a flat array of
// math::Montgomery::kMaxFixedLimbs 64-bit limbs (only the context's
// limb_count() low limbs are significant), so the Miller loop, wNAF scalar
// multiplication, and GT exponentiation perform zero heap allocations;
// BigInt appears only at the boundaries. Callers must check
// Montgomery::fits_fixed() and fall back to the BigInt reference paths for
// oversized moduli.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>

#include "math/montgomery.hpp"

namespace p3s::pairing::fqm {

using math::BigInt;
using math::Montgomery;

inline constexpr std::size_t kMaxLimbs = Montgomery::kMaxFixedLimbs;

/// Residue mod q in Montgomery form (or plain form where noted).
struct Fe {
  std::array<std::uint64_t, kMaxLimbs> w{};
};

/// Element a + b·i of F_q², both coordinates in Montgomery form.
struct Fe2 {
  Fe a, b;
};

inline bool fe_is_zero(const Fe& x, std::size_t k) {
  for (std::size_t i = 0; i < k; ++i) {
    if (x.w[i] != 0) return false;
  }
  return true;
}

/// Pack a BigInt already reduced into [0, q) without domain conversion.
inline Fe fe_pack(const BigInt& v) {
  Fe out;
  const auto& limbs = v.limbs();
  for (std::size_t i = 0; i < limbs.size(); ++i) out.w[i] = limbs[i];
  return out;
}

inline BigInt fe_unpack(const Fe& x, std::size_t k) {
  return BigInt::from_limbs_le(
      std::vector<std::uint64_t>(x.w.begin(), x.w.begin() + k));
}

/// plain BigInt in [0, q) -> Montgomery-form Fe.
inline Fe fe_from(const Montgomery& m, const BigInt& plain) {
  return fe_pack(m.to_mont(plain));
}

/// Montgomery-form Fe -> plain BigInt.
inline BigInt fe_to(const Montgomery& m, const Fe& x) {
  return m.from_mont(fe_unpack(x, m.limb_count()));
}

inline void fe_add(const Montgomery& m, const Fe& x, const Fe& y, Fe& out) {
  m.add_limbs(x.w.data(), y.w.data(), out.w.data());
}

inline void fe_sub(const Montgomery& m, const Fe& x, const Fe& y, Fe& out) {
  m.sub_limbs(x.w.data(), y.w.data(), out.w.data());
}

inline void fe_mul(const Montgomery& m, const Fe& x, const Fe& y, Fe& out) {
  m.mul_limbs(x.w.data(), y.w.data(), out.w.data());
}

inline void fe_sqr(const Montgomery& m, const Fe& x, Fe& out) {
  m.mul_limbs(x.w.data(), x.w.data(), out.w.data());
}

inline void fe_dbl(const Montgomery& m, const Fe& x, Fe& out) {
  m.add_limbs(x.w.data(), x.w.data(), out.w.data());
}

inline Fe fe_neg(const Montgomery& m, const Fe& x) {
  Fe zero, out;
  m.sub_limbs(zero.w.data(), x.w.data(), out.w.data());
  return out;
}

/// x⁻¹ = x^(q−2) (Fermat; q must be prime). ~1.3·log₂q CIOS multiplications
/// with no heap traffic — several times cheaper than the BigInt
/// extended-gcd inverse for the field sizes here. Throws std::domain_error
/// on zero.
inline Fe fe_inv(const Montgomery& m, const Fe& x) {
  if (fe_is_zero(x, m.limb_count())) throw std::domain_error("fe_inv: zero");
  const BigInt e = m.modulus() - BigInt{2};
  Fe acc = fe_from(m, BigInt{1});
  for (std::size_t bit = e.bit_length(); bit-- > 0;) {
    fe_sqr(m, acc, acc);
    if (e.bit(bit)) fe_mul(m, acc, x, acc);
  }
  return acc;
}

inline bool fe2_is_zero(const Fe2& x, std::size_t k) {
  return fe_is_zero(x.a, k) && fe_is_zero(x.b, k);
}

/// Karatsuba-style product: 3 CIOS multiplications. out must not alias x/y.
inline void fe2_mul(const Montgomery& m, const Fe2& x, const Fe2& y, Fe2& out) {
  Fe t0, t1, sx, sy, t2;
  fe_mul(m, x.a, y.a, t0);
  fe_mul(m, x.b, y.b, t1);
  fe_add(m, x.a, x.b, sx);
  fe_add(m, y.a, y.b, sy);
  fe_mul(m, sx, sy, t2);
  fe_sub(m, t0, t1, out.a);
  fe_sub(m, t2, t0, t2);
  fe_sub(m, t2, t1, out.b);
}

/// (a + bi)² = (a+b)(a−b) + 2ab·i: 2 CIOS multiplications. out may alias x.
inline void fe2_sqr(const Montgomery& m, const Fe2& x, Fe2& out) {
  Fe s, d, t0, t1;
  fe_add(m, x.a, x.b, s);
  fe_sub(m, x.a, x.b, d);
  fe_mul(m, s, d, t0);
  fe_mul(m, x.a, x.b, t1);
  out.a = t0;
  fe_dbl(m, t1, out.b);
}

inline Fe2 fe2_conj(const Montgomery& m, const Fe2& x) {
  return {x.a, fe_neg(m, x.b)};
}

inline Fe2 fe2_one(const Montgomery& m) {
  return {fe_from(m, BigInt{1}), Fe{}};
}

/// x^e (e >= 0) by 4-bit fixed-window exponentiation.
inline Fe2 fe2_pow(const Montgomery& m, const Fe2& x, const BigInt& e) {
  const Fe2 one = fe2_one(m);
  const std::size_t bits = e.bit_length();
  if (bits == 0) return one;
  std::array<Fe2, 16> table;
  table[0] = one;
  table[1] = x;
  for (int i = 2; i < 16; ++i) fe2_mul(m, table[i - 1], x, table[i]);
  Fe2 acc = one;
  const std::size_t windows = (bits + 3) / 4;
  for (std::size_t w = windows; w-- > 0;) {
    for (int i = 0; i < 4; ++i) fe2_sqr(m, acc, acc);
    unsigned nib = 0;
    for (int i = 3; i >= 0; --i) {
      nib = (nib << 1) |
            (e.bit(w * 4 + static_cast<std::size_t>(i)) ? 1u : 0u);
    }
    if (nib != 0) {
      Fe2 next;
      fe2_mul(m, acc, table[nib], next);
      acc = next;
    }
  }
  return acc;
}

}  // namespace p3s::pairing::fqm
