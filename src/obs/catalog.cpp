#include "obs/catalog.hpp"

#include "obs/metrics.hpp"

namespace p3s::obs {

void register_catalog(Registry& r) {
  using namespace names;   // NOLINT
  using namespace labels;  // NOLINT
  const auto lat = Histogram::latency_bounds();
  const auto sz = Histogram::size_bounds();

  // Publisher.
  r.counter(kPubPublishTotal, {}, "1", "items published");
  r.histogram(kPubPublishSeconds, {}, "seconds",
              "publish() call: encrypt + submit content + metadata", lat);
  r.histogram(kPubPbeEncryptSeconds, {}, "seconds",
              "HVE encryption of the GUID under the metadata vector", lat);
  r.histogram(kPubAbeEncryptSeconds, {}, "seconds",
              "CP-ABE encryption of (GUID, payload) under the policy", lat);
  r.histogram(kPubPayloadBytes, {}, "bytes", "plaintext payload size", sz);
  r.counter(kPubBatchTotal, {}, "1", "publish_batch() calls");
  r.histogram(kPubBatchItems, {}, "1", "items per publish_batch() call",
              Histogram::exponential_bounds(1.0, 2.0, 16));
  r.histogram(kPubBatchSeconds, {}, "seconds",
              "publish_batch() call: parallel encrypt + serial submit", lat);

  // Dissemination server.
  r.counter(kDsPublishesTotal, {}, "1", "metadata publishes accepted");
  r.counter(kDsFanoutTotal, {}, "1", "metadata notifications fanned out");
  r.histogram(kDsFanoutBatch, {}, "1", "subscribers notified per publish",
              Histogram::exponential_bounds(1.0, 2.0, 16));
  r.counter(kDsContentForwardedTotal, {}, "1", "content frames sent to RS");
  r.gauge(kDsSubscribers, {}, "1", "registered subscribers");
  r.gauge(kDsPublishers, {}, "1", "registered publishers");
  r.gauge(kDsSessions, {}, "1", "live secure-channel sessions");
  r.histogram(kDsFanoutSeconds, {}, "seconds",
              "one metadata fanout: seal (parallel) + send to all subscribers",
              lat);
  r.counter(kDsBatchFlushesTotal, {}, "1",
            "batched broadcast flushes executed");
  r.counter(kDsCoverTotal, {}, "1", "garbage cover broadcasts injected");
  r.counter(kDsPadBytesTotal, {}, "bytes",
            "pad bytes added to broadcast frames");

  // Repository server.
  r.counter(kRsStoreTotal, {}, "1", "items stored");
  r.histogram(kRsStoredBytes, {}, "bytes", "stored CP-ABE ciphertext size",
              sz);
  r.counter(kRsFetchTotal, {{"status", kStatusOk}}, "1",
            "content requests answered with the ciphertext");
  r.counter(kRsFetchTotal, {{"status", kStatusNotFound}}, "1",
            "content requests for expired/unknown GUIDs");
  r.gauge(kRsItems, {}, "1", "items currently stored");
  r.counter(kRsGcReclaimedTotal, {}, "1", "items reclaimed by TTL GC");

  // PBE token server.
  r.counter(kTsTokensIssuedTotal, {}, "1", "HVE tokens issued");
  r.counter(kTsRejectedTotal, {}, "1", "token requests rejected");
  r.histogram(kTsGentokenSeconds, {}, "seconds", "HVE GenToken runtime", lat);

  // Registration authority.
  r.counter(kAraRegistrationsTotal, {{"role", kRoleSubscriber}}, "1",
            "subscriber registrations");
  r.counter(kAraRegistrationsTotal, {{"role", kRolePublisher}}, "1",
            "publisher registrations");

  // Anonymizing relay.
  r.counter(kAnonForwardedTotal, {}, "1", "requests relayed to a service");
  r.counter(kAnonRepliesTotal, {}, "1", "replies relayed back");
  r.gauge(kAnonPending, {}, "1", "requests awaiting a reply");
  r.gauge(kAnonHeld, {}, "1", "requests held for the next batch flush");
  r.counter(kAnonBatchFlushesTotal, {}, "1", "batch flushes executed");
  r.histogram(kAnonBatchSize, {}, "1",
              "requests (real + decoy) relayed per batch flush",
              Histogram::exponential_bounds(1.0, 2.0, 12));
  r.histogram(kAnonFlushSeconds, {}, "seconds",
              "one batch flush: shuffle, pad, decoy synthesis, sends", lat);
  r.counter(kAnonCoverTotal, {}, "1", "decoy cover fetches injected");
  r.counter(kAnonDecoyRepliesTotal, {}, "1",
            "service replies to decoys absorbed (never relayed)");
  r.counter(kAnonPadBytesTotal, {}, "bytes",
            "pad bytes added to relayed frames");

  // Subscriber.
  r.counter(kSubMetadataReceivedTotal, {}, "1", "metadata broadcasts seen");
  r.counter(kSubMatchAttemptsTotal, {}, "1",
            "HVE query evaluations (pairing work)");
  r.counter(kSubMatchHitsTotal, {}, "1", "broadcasts that matched a token");
  r.histogram(kSubMatchSeconds, {}, "seconds",
              "local matching of one broadcast against all tokens", lat);
  r.histogram(kSubDecryptSeconds, {}, "seconds",
              "CP-ABE decryption of a fetched payload", lat);
  r.counter(kSubDeliveriesTotal, {}, "1", "payloads decrypted and delivered");
  r.counter(kSubFetchFailuresTotal, {}, "1",
            "matched items the RS no longer had");
  r.counter(kSubUndecryptableTotal, {}, "1",
            "fetched payloads the attribute key could not decrypt");
  r.counter(kSubTokenRequestsTotal, {}, "1", "token requests sent");
  r.counter(kSubTokenRejectionsTotal, {}, "1", "token requests rejected");
  r.counter(kSubMatchSkippedWidth, {}, "1",
            "tokens skipped by the width pre-filter (no pairing work)");

  // Secure channel.
  r.counter(kChanHandshakesTotal, {{"side", kSideClient}}, "1",
            "sessions initiated");
  r.counter(kChanHandshakesTotal, {{"side", kSideServer}}, "1",
            "sessions accepted");
  r.counter(kChanHandshakeFailuresTotal, {}, "1",
            "hello blobs that failed to decrypt");
  r.counter(kChanRecordsSealedTotal, {}, "1", "records sealed");
  r.counter(kChanRecordsOpenedTotal, {}, "1", "records opened");
  r.counter(kChanOpenFailuresTotal, {}, "1",
            "records dropped (replay, reorder, tamper)");
  r.histogram(kChanRecordBytes, {}, "bytes", "sealed record size", sz);

  // Simulation.
  r.counter(kSimEventsTotal, {}, "1", "discrete events executed");
  r.gauge(kSimQueueDepth, {}, "1", "pending events in the engine queue");
  r.counter(kSimFramesTotal, {}, "1", "frames sent through SimNetwork");
  r.histogram(kSimFrameBytes, {}, "bytes", "simulated wire frame size", sz);

  // Pairing stack.
  r.histogram(kCryptoPairSeconds, {}, "seconds", "single pairing e(P,Q)",
              lat);
  r.histogram(kCryptoPairProductSeconds, {}, "seconds",
              "multi-pairing product (one shared final exponentiation)", lat);
  r.histogram(kCryptoPairProductPairs, {}, "1",
              "terms per pair_product call",
              Histogram::exponential_bounds(1.0, 2.0, 12));
  r.histogram(kCryptoG1MulSeconds, {}, "seconds",
              "G1 scalar multiplication (wNAF or fixed-base table)", lat);
  r.counter(kCryptoG1FixedBaseTotal, {}, "1",
            "G1 multiplications served by the generator table");
  r.histogram(kCryptoGtPowSeconds, {}, "seconds", "GT exponentiation", lat);
  r.counter(kCryptoGtFixedBaseTotal, {}, "1",
            "GT exponentiations served by the e(g,g) table");
  r.histogram(kCryptoHashToG1Seconds, {}, "seconds",
              "hash-to-G1 (try-and-increment + cofactor clearing)", lat);
  r.histogram(kCryptoHveBatchSeconds, {}, "seconds",
              "hve_match_any: all tokens against one prepared ciphertext",
              lat);
  r.histogram(kCryptoHveBatchTokens, {}, "1",
              "tokens evaluated per hve_match_any call",
              Histogram::exponential_bounds(1.0, 2.0, 12));
  r.histogram(kCryptoHvePrepareSeconds, {}, "seconds",
              "hve_match_prepare: per-broadcast Miller precompute", lat);

  // Execution layer.
  r.gauge(kExecThreads, {}, "1", "global pool worker count");
  r.counter(kExecTasksTotal, {}, "1", "tasks submitted to any pool");
  r.counter(kExecInlineTotal, {}, "1",
            "tasks run inline (single-thread fallback or nested submit)");
  r.counter(kExecStealsTotal, {}, "1", "tasks taken from another queue");
  r.counter(kExecParallelForTotal, {}, "1",
            "parallel_for / parallel_find invocations");

  // Injected network faults.
  r.counter(kNetFaultDroppedTotal, {}, "1",
            "frames dropped by a FaultPlan drop decision");
  r.counter(kNetFaultDuplicatedTotal, {}, "1",
            "frames duplicated by a FaultPlan");
  r.counter(kNetFaultDelayedTotal, {}, "1",
            "frames given extra delivery delay by a FaultPlan");
  r.counter(kNetFaultReorderedTotal, {}, "1",
            "deliveries where another in-flight frame overtook the head");
  r.counter(kNetFaultBlackoutDroppedTotal, {}, "1",
            "frames lost to an endpoint blackout window");

  // Reliable request layer.
  r.counter(kClientRetryTotal, {}, "1",
            "requests re-sent after a timeout (publish, token, fetch, sync)");
  r.counter(kClientRetryExhaustedTotal, {}, "1",
            "requests abandoned after the attempt cap (surfaced error)");
  r.counter(kClientRetryReconnectsTotal, {}, "1",
            "channel re-establishments triggered by repeated timeouts");
  r.counter(kClientTimeoutTotal, {}, "1",
            "request deadlines that expired without a response");

  // Adversarial suite (src/attack).
  r.counter(kAttackScenariosTotal, {}, "1", "attack scenarios executed");
  r.counter(kAttackFramesObservedTotal, {}, "1",
            "traffic records ingested by the eavesdropper observer");
  r.counter(kAttackProbesTotal, {}, "1",
            "chosen publications injected by the probe adversary");
  r.counter(kAttackGuessesTotal, {}, "1",
            "adversary guesses evaluated against ground truth");
  r.counter(kAttackGuessesCorrectTotal, {}, "1",
            "adversary guesses that matched ground truth");
  r.gauge(kAttackAdvantageBps, {}, "1",
          "last measured adversary advantage, in basis points");
}

}  // namespace p3s::obs
