// The CLOSED metric vocabulary. Every metric the P3S data path emits is
// declared here — and only here — as a compile-time constant; components
// must instrument through these names so no runtime string (interest,
// metadata value, payload, pseudonym, endpoint name) can ever become a
// metric name. scripts/check_docs.sh keeps this file and OBSERVABILITY.md
// in exact sync (names here are the source of truth); tests/obs_test.cpp
// asserts every name passes Registry::valid_name.
//
// Naming: p3s.<component>.<metric>[_total|_seconds|_bytes]. Components:
//   pub  publisher client        sub  subscriber client
//   ds   dissemination server    rs   repository server
//   ts   PBE token server        ara  registration authority
//   anon anonymizing relay       chan secure channel (net/secure)
//   sim  discrete-event engine + simulated network
//   crypto  pairing-stack primitives (Miller loops, scalar mult, GT exp)
//   exec shared thread-pool execution layer (src/exec)
//   net  injected network faults (src/net chaos hooks)
//   client  reliable request layer shared by pub/sub clients
#pragma once

namespace p3s::obs {
class Registry;

namespace names {

// --- publisher (paper §4.3, Fig. 4) ----------------------------------------
inline constexpr char kPubPublishTotal[] = "p3s.pub.publish_total";
inline constexpr char kPubPublishSeconds[] = "p3s.pub.publish_seconds";
inline constexpr char kPubPbeEncryptSeconds[] = "p3s.pub.pbe_encrypt_seconds";
inline constexpr char kPubAbeEncryptSeconds[] = "p3s.pub.abe_encrypt_seconds";
inline constexpr char kPubPayloadBytes[] = "p3s.pub.payload_bytes";
inline constexpr char kPubBatchTotal[] = "p3s.pub.batch_total";
inline constexpr char kPubBatchItems[] = "p3s.pub.batch_items";
inline constexpr char kPubBatchSeconds[] = "p3s.pub.batch_seconds";

// --- dissemination server (paper §4.1) -------------------------------------
inline constexpr char kDsPublishesTotal[] = "p3s.ds.publishes_total";
inline constexpr char kDsFanoutTotal[] = "p3s.ds.fanout_total";
inline constexpr char kDsFanoutBatch[] = "p3s.ds.fanout_batch";
inline constexpr char kDsContentForwardedTotal[] =
    "p3s.ds.content_forwarded_total";
inline constexpr char kDsSubscribers[] = "p3s.ds.subscribers";
inline constexpr char kDsPublishers[] = "p3s.ds.publishers";
inline constexpr char kDsSessions[] = "p3s.ds.sessions";
inline constexpr char kDsFanoutSeconds[] = "p3s.ds.fanout_seconds";
inline constexpr char kDsBatchFlushesTotal[] = "p3s.ds.batch_flushes_total";
inline constexpr char kDsCoverTotal[] = "p3s.ds.cover_total";
inline constexpr char kDsPadBytesTotal[] = "p3s.ds.pad_bytes_total";

// --- repository server (paper §4.1, §4.3 "Deletion") -----------------------
inline constexpr char kRsStoreTotal[] = "p3s.rs.store_total";
inline constexpr char kRsStoredBytes[] = "p3s.rs.stored_bytes";
inline constexpr char kRsFetchTotal[] = "p3s.rs.fetch_total";  // {status=}
inline constexpr char kRsItems[] = "p3s.rs.items";
inline constexpr char kRsGcReclaimedTotal[] = "p3s.rs.gc_reclaimed_total";

// --- PBE token server (paper §4.3, Fig. 3) ---------------------------------
inline constexpr char kTsTokensIssuedTotal[] = "p3s.ts.tokens_issued_total";
inline constexpr char kTsRejectedTotal[] = "p3s.ts.rejected_total";
inline constexpr char kTsGentokenSeconds[] = "p3s.ts.gentoken_seconds";

// --- registration authority (paper §4.2) -----------------------------------
inline constexpr char kAraRegistrationsTotal[] =
    "p3s.ara.registrations_total";  // {role=}

// --- anonymizing relay (paper §4.1; hardening DESIGN.md §11) ---------------
inline constexpr char kAnonForwardedTotal[] = "p3s.anon.forwarded_total";
inline constexpr char kAnonRepliesTotal[] = "p3s.anon.replies_total";
inline constexpr char kAnonPending[] = "p3s.anon.pending";
inline constexpr char kAnonHeld[] = "p3s.anon.held";
inline constexpr char kAnonBatchFlushesTotal[] =
    "p3s.anon.batch_flushes_total";
inline constexpr char kAnonBatchSize[] = "p3s.anon.batch_size";
inline constexpr char kAnonFlushSeconds[] = "p3s.anon.flush_seconds";
inline constexpr char kAnonCoverTotal[] = "p3s.anon.cover_total";
inline constexpr char kAnonDecoyRepliesTotal[] =
    "p3s.anon.decoy_replies_total";
inline constexpr char kAnonPadBytesTotal[] = "p3s.anon.pad_bytes_total";

// --- subscriber (paper §4.3, Figs. 3 & 4) ----------------------------------
inline constexpr char kSubMetadataReceivedTotal[] =
    "p3s.sub.metadata_received_total";
inline constexpr char kSubMatchAttemptsTotal[] =
    "p3s.sub.match_attempts_total";
inline constexpr char kSubMatchHitsTotal[] = "p3s.sub.match_hits_total";
inline constexpr char kSubMatchSeconds[] = "p3s.sub.match_seconds";
inline constexpr char kSubDecryptSeconds[] = "p3s.sub.decrypt_seconds";
inline constexpr char kSubDeliveriesTotal[] = "p3s.sub.deliveries_total";
inline constexpr char kSubFetchFailuresTotal[] =
    "p3s.sub.fetch_failures_total";
inline constexpr char kSubUndecryptableTotal[] =
    "p3s.sub.undecryptable_total";
inline constexpr char kSubTokenRequestsTotal[] =
    "p3s.sub.token_requests_total";
inline constexpr char kSubTokenRejectionsTotal[] =
    "p3s.sub.token_rejections_total";
inline constexpr char kSubMatchSkippedWidth[] =
    "p3s.sub.match_skipped_width";

// --- secure channel (paper §4.1 "TLS tunnels") -----------------------------
inline constexpr char kChanHandshakesTotal[] =
    "p3s.chan.handshakes_total";  // {side=}
inline constexpr char kChanHandshakeFailuresTotal[] =
    "p3s.chan.handshake_failures_total";
inline constexpr char kChanRecordsSealedTotal[] =
    "p3s.chan.records_sealed_total";
inline constexpr char kChanRecordsOpenedTotal[] =
    "p3s.chan.records_opened_total";
inline constexpr char kChanOpenFailuresTotal[] =
    "p3s.chan.open_failures_total";
inline constexpr char kChanRecordBytes[] = "p3s.chan.record_bytes";

// --- discrete-event simulation (§6.2 experiments) --------------------------
inline constexpr char kSimEventsTotal[] = "p3s.sim.events_total";
inline constexpr char kSimQueueDepth[] = "p3s.sim.queue_depth";
inline constexpr char kSimFramesTotal[] = "p3s.sim.frames_total";
inline constexpr char kSimFrameBytes[] = "p3s.sim.frame_bytes";

// --- pairing stack (fast-path primitives; DESIGN.md "fast path") -----------
inline constexpr char kCryptoPairSeconds[] = "p3s.crypto.pair_seconds";
inline constexpr char kCryptoPairProductSeconds[] =
    "p3s.crypto.pair_product_seconds";
inline constexpr char kCryptoPairProductPairs[] =
    "p3s.crypto.pair_product_pairs";
inline constexpr char kCryptoG1MulSeconds[] = "p3s.crypto.g1_mul_seconds";
inline constexpr char kCryptoG1FixedBaseTotal[] =
    "p3s.crypto.g1_fixed_base_total";
inline constexpr char kCryptoGtPowSeconds[] = "p3s.crypto.gt_pow_seconds";
inline constexpr char kCryptoGtFixedBaseTotal[] =
    "p3s.crypto.gt_fixed_base_total";
inline constexpr char kCryptoHashToG1Seconds[] =
    "p3s.crypto.hash_to_g1_seconds";
inline constexpr char kCryptoHveBatchSeconds[] =
    "p3s.crypto.hve_batch_seconds";
inline constexpr char kCryptoHveBatchTokens[] =
    "p3s.crypto.hve_batch_tokens";
inline constexpr char kCryptoHvePrepareSeconds[] =
    "p3s.crypto.hve_prepare_seconds";

// --- execution layer (src/exec; DESIGN.md "execution layer") ---------------
inline constexpr char kExecThreads[] = "p3s.exec.threads";
inline constexpr char kExecTasksTotal[] = "p3s.exec.tasks_total";
inline constexpr char kExecInlineTotal[] = "p3s.exec.inline_total";
inline constexpr char kExecStealsTotal[] = "p3s.exec.steals_total";
inline constexpr char kExecParallelForTotal[] =
    "p3s.exec.parallel_for_total";

// --- injected network faults (src/net FaultPlan; DESIGN.md "Reliability") --
inline constexpr char kNetFaultDroppedTotal[] = "p3s.net.fault_dropped_total";
inline constexpr char kNetFaultDuplicatedTotal[] =
    "p3s.net.fault_duplicated_total";
inline constexpr char kNetFaultDelayedTotal[] = "p3s.net.fault_delayed_total";
inline constexpr char kNetFaultReorderedTotal[] =
    "p3s.net.fault_reordered_total";
inline constexpr char kNetFaultBlackoutDroppedTotal[] =
    "p3s.net.fault_blackout_dropped_total";

// --- adversarial suite (src/attack; DESIGN.md §11) -------------------------
// Emitted by the attack harness, not the data path: how much attack traffic
// ran and how well the adversary did, so hardening regressions show up in
// dashboards the same way perf regressions do.
inline constexpr char kAttackScenariosTotal[] = "p3s.attack.scenarios_total";
inline constexpr char kAttackFramesObservedTotal[] =
    "p3s.attack.frames_observed_total";
inline constexpr char kAttackProbesTotal[] = "p3s.attack.probes_total";
inline constexpr char kAttackGuessesTotal[] = "p3s.attack.guesses_total";
inline constexpr char kAttackGuessesCorrectTotal[] =
    "p3s.attack.guesses_correct_total";
inline constexpr char kAttackAdvantageBps[] = "p3s.attack.advantage_bps";

// --- reliable request layer (pub/sub clients; DESIGN.md "Reliability") -----
inline constexpr char kClientRetryTotal[] = "p3s.client.retry_total";
inline constexpr char kClientRetryExhaustedTotal[] =
    "p3s.client.retry_exhausted_total";
inline constexpr char kClientRetryReconnectsTotal[] =
    "p3s.client.retry_reconnects_total";
inline constexpr char kClientTimeoutTotal[] = "p3s.client.timeout_total";

}  // namespace names

// Closed label value sets (label values are vocabulary too).
namespace labels {
inline constexpr char kStatusOk[] = "ok";
inline constexpr char kStatusNotFound[] = "notfound";
inline constexpr char kRoleSubscriber[] = "subscriber";
inline constexpr char kRolePublisher[] = "publisher";
inline constexpr char kSideClient[] = "client";
inline constexpr char kSideServer[] = "server";
}  // namespace labels

/// Register the full catalogue (with units, help, histogram bounds) into
/// `registry`. Registry::global() does this automatically; a snapshot
/// therefore always shows the complete schema, zeros included.
void register_catalog(Registry& registry);

}  // namespace p3s::obs
