#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace p3s::obs {

namespace {

const char* type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

// Human scale for a value in the metric's unit.
std::string human_value(double v, const std::string& unit) {
  char buf[64];
  if (unit == "seconds") {
    if (v >= 1.0) {
      std::snprintf(buf, sizeof(buf), "%.4gs", v);
    } else if (v >= 1e-3) {
      std::snprintf(buf, sizeof(buf), "%.4gms", v * 1e3);
    } else {
      std::snprintf(buf, sizeof(buf), "%.4gus", v * 1e6);
    }
  } else if (unit == "bytes") {
    if (v >= 1024.0 * 1024.0) {
      std::snprintf(buf, sizeof(buf), "%.4gMB", v / (1024.0 * 1024.0));
    } else if (v >= 1024.0) {
      std::snprintf(buf, sizeof(buf), "%.4gKB", v / 1024.0);
    } else {
      std::snprintf(buf, sizeof(buf), "%.4gB", v);
    }
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  std::string s = buf;
  // JSON has no inf/nan literals; clamp to null-free safe output.
  if (s.find("inf") != std::string::npos ||
      s.find("nan") != std::string::npos) {
    return "0";
  }
  return s;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string render_text(const RegistrySnapshot& snap, std::size_t max_spans) {
  std::size_t width = 0;
  for (const auto& m : snap.metrics) width = std::max(width, m.name.size());

  std::string out;
  char line[256];
  for (const auto& m : snap.metrics) {
    switch (m.type) {
      case MetricType::kCounter:
        std::snprintf(line, sizeof(line), "%-*s  counter    %" PRIu64 "\n",
                      static_cast<int>(width), m.name.c_str(),
                      m.counter_value);
        break;
      case MetricType::kGauge:
        std::snprintf(line, sizeof(line), "%-*s  gauge      %" PRId64 "\n",
                      static_cast<int>(width), m.name.c_str(), m.gauge_value);
        break;
      case MetricType::kHistogram: {
        const double mean =
            m.count == 0 ? 0.0 : m.sum / static_cast<double>(m.count);
        std::snprintf(line, sizeof(line),
                      "%-*s  histogram  count=%" PRIu64
                      " mean=%s p50=%s p95=%s p99=%s\n",
                      static_cast<int>(width), m.name.c_str(), m.count,
                      human_value(mean, m.unit).c_str(),
                      human_value(m.p50, m.unit).c_str(),
                      human_value(m.p95, m.unit).c_str(),
                      human_value(m.p99, m.unit).c_str());
        break;
      }
    }
    out += line;
  }
  if (max_spans > 0 && !snap.spans.empty()) {
    out += "recent spans (most recent first):\n";
    std::size_t shown = 0;
    for (const auto& s : snap.spans) {
      if (shown++ >= max_spans) break;
      std::snprintf(line, sizeof(line), "  %-*s  t=%.6f  dt=%s\n",
                    static_cast<int>(width), s.name, s.start,
                    human_value(s.duration, "seconds").c_str());
      out += line;
    }
  }
  return out;
}

std::string render_text(const Registry& registry, std::size_t max_spans) {
  return render_text(registry.snapshot(), max_spans);
}

std::string render_json(const RegistrySnapshot& snap, std::size_t max_spans) {
  std::string out = "{\"p3s_metrics_version\":1,\"time\":";
  out += json_number(snap.time);
  out += ",\"enabled\":";
  out += snap.enabled ? "true" : "false";
  out += ",\"metrics\":[";
  bool first = true;
  char buf[64];
  for (const auto& m : snap.metrics) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    out += json_string(m.name);
    out += ",\"type\":\"";
    out += type_name(m.type);
    out += "\",\"unit\":";
    out += json_string(m.unit);
    out += ",\"help\":";
    out += json_string(m.help);
    switch (m.type) {
      case MetricType::kCounter:
        std::snprintf(buf, sizeof(buf), ",\"value\":%" PRIu64 "}",
                      m.counter_value);
        out += buf;
        break;
      case MetricType::kGauge:
        std::snprintf(buf, sizeof(buf), ",\"value\":%" PRId64 "}",
                      m.gauge_value);
        out += buf;
        break;
      case MetricType::kHistogram:
        std::snprintf(buf, sizeof(buf), ",\"count\":%" PRIu64, m.count);
        out += buf;
        out += ",\"sum\":" + json_number(m.sum);
        out += ",\"p50\":" + json_number(m.p50);
        out += ",\"p95\":" + json_number(m.p95);
        out += ",\"p99\":" + json_number(m.p99) + "}";
        break;
    }
  }
  out += "],\"spans\":[";
  first = true;
  std::size_t shown = 0;
  for (const auto& s : snap.spans) {
    if (shown++ >= max_spans) break;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += s.name;  // interned closed-vocabulary string
    out += "\",\"start\":" + json_number(s.start);
    out += ",\"dur\":" + json_number(s.duration) + "}";
  }
  out += "]}";
  return out;
}

std::string render_json(const Registry& registry, std::size_t max_spans) {
  return render_json(registry.snapshot(), max_spans);
}

void write_json_file(const Registry& registry, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("obs: cannot open '" + path + "' for write");
  }
  out << render_json(registry) << "\n";
  if (!out) throw std::runtime_error("obs: write to '" + path + "' failed");
}

}  // namespace p3s::obs
