// Privacy-safe observability: a low-overhead metrics registry (monotonic
// counters, gauges, fixed-bucket latency/size histograms) plus lightweight
// trace spans. Design constraints, in order:
//
//  1. Privacy (paper §6.1 threat model). Metric names and label key/values
//     are a CLOSED vocabulary: lowercase [a-z0-9_.] identifiers registered
//     up front (src/obs/catalog.hpp). Runtime data — subscriber interest,
//     metadata values, payload bytes, pseudonyms, endpoint names — can
//     never flow into a name, a label, or an exported snapshot; the
//     registry rejects anything outside the vocabulary charset at
//     registration time and tests/obs_test.cpp + tests/privacy_test.cpp
//     machine-check exported snapshots for leaks.
//  2. Overhead. The hot write paths (Counter::inc, Gauge::set,
//     Histogram::record) are lock-free (relaxed atomics, counters sharded
//     across cache lines for concurrent writers) and allocation-free; a
//     disabled registry reduces every write to one relaxed atomic load.
//  3. Time. Latency spans ride the registry clock: std::steady_clock by
//     default, or the discrete-event sim::SimEngine clock when a ClockGuard
//     installs one — so simulated latencies land in the same histograms as
//     wall-clock ones.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace p3s::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

/// Label set attached to a metric instance. Keys and values must be drawn
/// from the closed vocabulary charset ([a-z0-9_], value also allows '.');
/// they are part of the metric identity ("name{k=v,...}").
using Labels = std::map<std::string, std::string, std::less<>>;

/// Monotonic counter. Sharded across cache lines so concurrent writers do
/// not bounce one line; reads sum the shards (eventually exact: inc is a
/// single relaxed fetch_add, so no increment is ever lost).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shard().fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class Registry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::atomic<std::uint64_t>& shard() noexcept {
    // Cheap thread->shard mapping; collisions only cost contention.
    const auto id =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return shards_[id % kShards].v;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }
  std::array<Shard, kShards> shards_;
  const std::atomic<bool>* enabled_;
};

/// Last-write-wins signed gauge (queue depths, session counts, item counts).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram with atomic bucket counts. Bucket upper bounds are
/// chosen at registration (exponential_bounds below); the last bucket is an
/// implicit +inf overflow. Percentiles interpolate linearly inside the
/// winning bucket, so their resolution is one bucket width by construction.
class Histogram {
 public:
  /// `count` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  /// Default latency bounds: 1us .. ~137s, factor 2 (28 buckets).
  static std::vector<double> latency_bounds() {
    return exponential_bounds(1e-6, 2.0, 28);
  }
  /// Default size bounds: 16B .. 1GB, factor 4 (14 buckets).
  static std::vector<double> size_bounds() {
    return exponential_bounds(16.0, 4.0, 14);
  }

  void record(double value) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;
  double mean() const noexcept {
    const auto n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  /// p in [0,1]; returns 0 when empty. Linear interpolation in-bucket.
  double percentile(double p) const noexcept;
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Observation count at or below bounds_[i] (plus overflow at size()).
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Histogram(const std::atomic<bool>* enabled, std::vector<double> bounds);
  void reset() noexcept;

  std::vector<double> bounds_;                    // sorted upper bounds
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double bits, CAS-accumulated
  const std::atomic<bool>* enabled_;
};

/// One completed trace span: which catalogued operation ran, when (registry
/// clock), and for how long. `name` points at the interned metric name — a
/// closed-vocabulary string, never runtime data.
struct SpanRecord {
  const char* name = nullptr;
  double start = 0.0;
  double duration = 0.0;
};

struct MetricSnapshot {
  std::string name;  // "base{k=v,...}" when labeled
  MetricType type;
  std::string unit;
  std::string help;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  std::uint64_t count = 0;  // histogram
  double sum = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

struct RegistrySnapshot {
  double time = 0.0;  // registry clock at snapshot
  bool enabled = true;
  std::vector<MetricSnapshot> metrics;  // sorted by name
  std::vector<SpanRecord> spans;        // most recent first, bounded
};

/// Metric registry. Registration (counter/gauge/histogram) takes a mutex and
/// may allocate; callers cache the returned reference (stable for the
/// registry's lifetime) so the hot path never touches the map again.
class Registry {
 public:
  using Clock = std::function<double()>;

  Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry, pre-registered with the full P3S
  /// metric catalogue (src/obs/catalog.hpp).
  static Registry& global();

  /// Get-or-create. Throws std::invalid_argument when the name or a label
  /// violates the closed vocabulary, or when the name exists with a
  /// different type. unit/help are recorded on first registration.
  Counter& counter(std::string_view name, const Labels& labels = {},
                   std::string_view unit = "1", std::string_view help = "");
  Gauge& gauge(std::string_view name, const Labels& labels = {},
               std::string_view unit = "1", std::string_view help = "");
  Histogram& histogram(std::string_view name, const Labels& labels = {},
                       std::string_view unit = "seconds",
                       std::string_view help = "",
                       std::vector<double> bounds = {});

  /// Master switch. Disabled: every write is one relaxed load, timers skip
  /// the clock read entirely.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Time source for spans/timers, in seconds. Default: steady_clock.
  /// Pass nullptr to restore the default. Prefer ClockGuard (RAII).
  void set_clock(Clock clock);
  double now() const;

  /// Record a completed span into the bounded ring (drops oldest).
  void record_span(const char* name, double start, double duration);

  /// Zero all metric values and spans; registrations are kept.
  void reset();

  /// Consistent, name-sorted view for the exporters.
  RegistrySnapshot snapshot() const;

  /// True when `name` + every label key/value fit the closed vocabulary.
  static bool valid_name(std::string_view name);
  static bool valid_label(std::string_view key, std::string_view value);

 private:
  struct Entry {
    MetricType type;
    std::string unit;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& find_or_create(std::string_view name, const Labels& labels,
                        MetricType type, std::string_view unit,
                        std::string_view help, std::vector<double> bounds);

  static constexpr std::size_t kSpanRing = 1024;

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_ P3S_GUARDED_BY(mutex_);
  std::atomic<bool> enabled_{true};
  Clock clock_ P3S_GUARDED_BY(mutex_);  // empty = steady_clock

  std::array<SpanRecord, kSpanRing> spans_{};
  std::atomic<std::uint64_t> span_next_{0};
};

/// RAII clock override: installs `clock` on construction, restores the
/// steady default on destruction. Used by the discrete-event benches so
/// latency histograms record SIMULATED seconds during the run.
class ClockGuard {
 public:
  ClockGuard(Registry& registry, Registry::Clock clock) : registry_(registry) {
    registry_.set_clock(std::move(clock));
  }
  ~ClockGuard() { registry_.set_clock(nullptr); }
  ClockGuard(const ClockGuard&) = delete;
  ClockGuard& operator=(const ClockGuard&) = delete;

 private:
  Registry& registry_;
};

/// Times a scope on the registry clock into a histogram, optionally also
/// recording a trace span (pass the interned metric name). Does nothing —
/// not even a clock read — when the registry is disabled.
class ScopedTimer {
 public:
  ScopedTimer(Registry& registry, Histogram& histogram,
              const char* span_name = nullptr)
      : registry_(registry), histogram_(histogram), span_name_(span_name) {
    if (registry_.enabled()) {
      armed_ = true;
      start_ = registry_.now();
    }
  }
  ~ScopedTimer() {
    if (!armed_) return;
    const double dt = registry_.now() - start_;
    histogram_.record(dt);
    if (span_name_ != nullptr) registry_.record_span(span_name_, start_, dt);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Registry& registry_;
  Histogram& histogram_;
  const char* span_name_;
  double start_ = 0.0;
  bool armed_ = false;
};

}  // namespace p3s::obs
