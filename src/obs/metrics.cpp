#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <stdexcept>

#include "common/probe.hpp"
#include "obs/catalog.hpp"

namespace p3s::obs {

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  if (start <= 0.0 || factor <= 1.0 || count == 0) {
    throw std::invalid_argument("Histogram: bad exponential bounds");
  }
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      enabled_(enabled) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bounds must be sorted, non-empty");
  }
}

void Histogram::record(double value) noexcept {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Accumulate the sum as a CAS loop over the double's bit pattern: keeps
  // the hot path lock-free without requiring atomic<double>::fetch_add.
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  while (true) {
    const double updated = std::bit_cast<double>(expected) + value;
    if (sum_bits_.compare_exchange_weak(expected,
                                        std::bit_cast<std::uint64_t>(updated),
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      // Interpolate linearly inside this bucket.
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i]
                                           : bounds_.back();  // overflow: clamp
      const double frac =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds_.back();
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

Registry::Registry() = default;

namespace {

// Receiver side of the common/probe.hpp seam: routes probe events from the
// hermetic primitive layers (pairing today) into the global registry. Ids
// resolve to catalogued instruments lazily, then hit a lock-free per-id
// cache — the probe hot path costs one atomic load per event after the
// first. Ids beyond the fixed cache (far larger than the catalogue needs)
// fall back to a registry lookup per event.
class RegistryProbeSink final : public probe::Sink {
 public:
  explicit RegistryProbeSink(Registry& registry) : registry_(registry) {}

  double now() const override {
    return registry_.enabled() ? registry_.now() : 0.0;
  }

  void observe(std::size_t id, double value) override {
    if (Histogram* h = resolve(hists_, id, [this](const char* name) {
          return &registry_.histogram(name);
        })) {
      h->record(value);
    }
  }

  void add(std::size_t id, std::uint64_t delta) override {
    if (Counter* c = resolve(counters_, id, [this](const char* name) {
          return &registry_.counter(name);
        })) {
      c->inc(delta);
    }
  }

 private:
  static constexpr std::size_t kCache = 64;

  template <typename T, typename Resolve>
  T* resolve(std::array<std::atomic<T*>, kCache>& cache, std::size_t id,
             Resolve make) {
    const char* name = probe::interned_name(id);
    if (name == nullptr) return nullptr;
    if (id >= kCache) return make(name);
    T* cached = cache[id].load(std::memory_order_acquire);
    if (cached != nullptr) return cached;
    T* fresh = make(name);  // get-or-create: idempotent, stable reference
    cache[id].store(fresh, std::memory_order_release);
    return fresh;
  }

  Registry& registry_;
  std::array<std::atomic<Histogram*>, kCache> hists_{};
  std::array<std::atomic<Counter*>, kCache> counters_{};
};

}  // namespace

Registry& Registry::global() {
  static Registry* instance = [] {
    auto* r = new Registry();  // never destroyed: safe to touch at exit
    register_catalog(*r);
    // Wire the primitive layers' probe seam into this registry (never
    // uninstalled: the registry and sink live for the process).
    probe::set_sink(new RegistryProbeSink(*r));
    return r;
  }();
  return *instance;
}

namespace {
// Force the probe sink's installation at load time in every process that
// links obs, so primitive-layer events recorded before the first explicit
// Registry::global() call still land in the registry.
[[maybe_unused]] const bool kProbeSinkInstalled = (Registry::global(), true);
}  // namespace

namespace {
bool vocab_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
         c == '.';
}
bool vocab_word(std::string_view s) {
  if (s.empty() || s.size() > 64) return false;
  return std::all_of(s.begin(), s.end(), vocab_char);
}
}  // namespace

bool Registry::valid_name(std::string_view name) {
  // Closed vocabulary: "p3s.<component>.<metric>", lowercase [a-z0-9_.].
  // This is the privacy chokepoint — runtime strings (interest values,
  // pseudonyms, payloads) contain characters or prefixes this rejects, and
  // every exported byte of a name passed through here.
  if (!vocab_word(name)) return false;
  if (!name.starts_with("p3s.")) return false;
  return std::count(name.begin(), name.end(), '.') >= 2;
}

bool Registry::valid_label(std::string_view key, std::string_view value) {
  return vocab_word(key) && vocab_word(value) && key.find('.') ==
         std::string_view::npos;
}

Registry::Entry& Registry::find_or_create(std::string_view name,
                                          const Labels& labels,
                                          MetricType type,
                                          std::string_view unit,
                                          std::string_view help,
                                          std::vector<double> bounds) {
  if (!valid_name(name)) {
    throw std::invalid_argument("obs: metric name outside closed vocabulary: '" +
                                std::string(name) + "'");
  }
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!valid_label(k, v)) {
        throw std::invalid_argument("obs: label outside closed vocabulary: '" +
                                    k + "=" + v + "'");
      }
      if (!first) key += ',';
      first = false;
      key += k;
      key += '=';
      key += v;
    }
    key += '}';
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    if (it->second.type != type) {
      throw std::invalid_argument("obs: metric '" + key +
                                  "' re-registered with a different type");
    }
    return it->second;
  }
  Entry entry;
  entry.type = type;
  entry.unit = std::string(unit);
  entry.help = std::string(help);
  switch (type) {
    case MetricType::kCounter:
      entry.counter.reset(new Counter(&enabled_));
      break;
    case MetricType::kGauge:
      entry.gauge.reset(new Gauge(&enabled_));
      break;
    case MetricType::kHistogram:
      if (bounds.empty()) bounds = Histogram::latency_bounds();
      entry.histogram.reset(new Histogram(&enabled_, std::move(bounds)));
      break;
  }
  return metrics_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter& Registry::counter(std::string_view name, const Labels& labels,
                           std::string_view unit, std::string_view help) {
  return *find_or_create(name, labels, MetricType::kCounter, unit, help, {})
              .counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels,
                       std::string_view unit, std::string_view help) {
  return *find_or_create(name, labels, MetricType::kGauge, unit, help, {})
              .gauge;
}

Histogram& Registry::histogram(std::string_view name, const Labels& labels,
                               std::string_view unit, std::string_view help,
                               std::vector<double> bounds) {
  return *find_or_create(name, labels, MetricType::kHistogram, unit, help,
                         std::move(bounds))
              .histogram;
}

void Registry::set_clock(Clock clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  clock_ = std::move(clock);
}

double Registry::now() const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (clock_) return clock_();
  }
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Registry::record_span(const char* name, double start, double duration) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t slot =
      span_next_.fetch_add(1, std::memory_order_relaxed) % kSpanRing;
  spans_[slot] = SpanRecord{name, start, duration};
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, entry] : metrics_) {
    switch (entry.type) {
      case MetricType::kCounter:
        entry.counter->reset();
        break;
      case MetricType::kGauge:
        entry.gauge->reset();
        break;
      case MetricType::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
  spans_.fill(SpanRecord{});
  span_next_.store(0, std::memory_order_relaxed);
}

RegistrySnapshot Registry::snapshot() const {
  RegistrySnapshot snap;
  snap.time = now();
  snap.enabled = enabled();
  std::lock_guard<std::mutex> lock(mutex_);
  snap.metrics.reserve(metrics_.size());
  for (const auto& [key, entry] : metrics_) {  // map order == name-sorted
    MetricSnapshot m;
    m.name = key;
    m.type = entry.type;
    m.unit = entry.unit;
    m.help = entry.help;
    switch (entry.type) {
      case MetricType::kCounter:
        m.counter_value = entry.counter->value();
        break;
      case MetricType::kGauge:
        m.gauge_value = entry.gauge->value();
        break;
      case MetricType::kHistogram:
        m.count = entry.histogram->count();
        m.sum = entry.histogram->sum();
        m.p50 = entry.histogram->percentile(0.50);
        m.p95 = entry.histogram->percentile(0.95);
        m.p99 = entry.histogram->percentile(0.99);
        break;
    }
    snap.metrics.push_back(std::move(m));
  }
  // Most recent spans first, bounded to the ring size.
  const std::uint64_t next = span_next_.load(std::memory_order_relaxed);
  const std::uint64_t recorded = std::min<std::uint64_t>(next, kSpanRing);
  snap.spans.reserve(recorded);
  for (std::uint64_t i = 0; i < recorded; ++i) {
    const SpanRecord& rec = spans_[(next - 1 - i) % kSpanRing];
    if (rec.name != nullptr) snap.spans.push_back(rec);
  }
  return snap;
}

}  // namespace p3s::obs
