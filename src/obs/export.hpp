// Snapshot exporters: aligned text for humans (REPL `stats`, bench
// epilogues) and JSON for tooling (`BENCH_*.json` trajectory files). Both
// render only closed-vocabulary names and numeric values — the privacy
// suite greps these outputs for leaks.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace p3s::obs {

/// Aligned text table, one metric per line, sorted by name. Histograms show
/// count/mean/p50/p95/p99 scaled by their unit; `max_spans` recent trace
/// spans are appended when nonzero.
std::string render_text(const RegistrySnapshot& snapshot,
                        std::size_t max_spans = 0);
std::string render_text(const Registry& registry, std::size_t max_spans = 0);

/// Stable JSON document: {"p3s_metrics_version":1,"time":…,"metrics":[…],
/// "spans":[…]}. Keys and names need no escaping by construction (closed
/// vocabulary), numbers use shortest-roundtrip formatting.
std::string render_json(const RegistrySnapshot& snapshot,
                        std::size_t max_spans = 64);
std::string render_json(const Registry& registry, std::size_t max_spans = 64);

/// Write render_json() to `path` (truncating). Throws std::runtime_error on
/// I/O failure.
void write_json_file(const Registry& registry, const std::string& path);

}  // namespace p3s::obs
