// Poly1305 one-time authenticator (RFC 8439).
#pragma once

#include "common/bytes.hpp"

namespace p3s::crypto {

/// Compute the 16-byte Poly1305 tag of `msg` under the 32-byte one-time key.
/// Throws std::invalid_argument on wrong key size.
Bytes poly1305_tag(BytesView key, BytesView msg);

}  // namespace p3s::crypto
