// ChaCha20 stream cipher (RFC 8439). Backbone of the AEAD and the DRBG.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace p3s::crypto {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeySize = 32;
  static constexpr std::size_t kNonceSize = 12;

  /// Throws std::invalid_argument on wrong key/nonce sizes.
  ChaCha20(BytesView key, BytesView nonce, std::uint32_t initial_counter = 0);

  /// XOR the keystream into `data` in place (encrypt == decrypt).
  void apply(Bytes& data);

  /// One-shot: returns data XOR keystream.
  static Bytes crypt(BytesView key, BytesView nonce, BytesView data,
                     std::uint32_t initial_counter = 0);

  /// One 64-byte keystream block at the current counter (used by Poly1305
  /// key derivation and the DRBG), then advances the counter.
  std::array<std::uint8_t, 64> keystream_block();

 private:
  void block(std::array<std::uint32_t, 16>& out);

  std::array<std::uint32_t, 16> state_;
};

}  // namespace p3s::crypto
