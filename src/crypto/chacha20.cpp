#include "crypto/chacha20.hpp"

#include <bit>
#include <stdexcept>

namespace p3s::crypto {

namespace {
void quarter_round(std::array<std::uint32_t, 16>& s, int a, int b, int c, int d) {
  s[a] += s[b];
  s[d] = std::rotl(s[d] ^ s[a], 16);
  s[c] += s[d];
  s[b] = std::rotl(s[b] ^ s[c], 12);
  s[a] += s[b];
  s[d] = std::rotl(s[d] ^ s[a], 8);
  s[c] += s[d];
  s[b] = std::rotl(s[b] ^ s[c], 7);
}

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

ChaCha20::ChaCha20(BytesView key, BytesView nonce, std::uint32_t initial_counter) {
  if (key.size() != kKeySize) throw std::invalid_argument("ChaCha20: bad key size");
  if (nonce.size() != kNonceSize) {
    throw std::invalid_argument("ChaCha20: bad nonce size");
  }
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = le32(key.data() + 4 * i);
  state_[12] = initial_counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = le32(nonce.data() + 4 * i);
}

void ChaCha20::block(std::array<std::uint32_t, 16>& out) {
  out = state_;
  for (int round = 0; round < 10; ++round) {
    quarter_round(out, 0, 4, 8, 12);
    quarter_round(out, 1, 5, 9, 13);
    quarter_round(out, 2, 6, 10, 14);
    quarter_round(out, 3, 7, 11, 15);
    quarter_round(out, 0, 5, 10, 15);
    quarter_round(out, 1, 6, 11, 12);
    quarter_round(out, 2, 7, 8, 13);
    quarter_round(out, 3, 4, 9, 14);
  }
  for (int i = 0; i < 16; ++i) out[i] += state_[i];
  ++state_[12];
}

std::array<std::uint8_t, 64> ChaCha20::keystream_block() {
  std::array<std::uint32_t, 16> words;
  block(words);
  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    out[4 * i] = static_cast<std::uint8_t>(words[i]);
    out[4 * i + 1] = static_cast<std::uint8_t>(words[i] >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(words[i] >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(words[i] >> 24);
  }
  return out;
}

void ChaCha20::apply(Bytes& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto ks = keystream_block();
    const std::size_t n = std::min<std::size_t>(64, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= ks[i];
    off += n;
  }
}

Bytes ChaCha20::crypt(BytesView key, BytesView nonce, BytesView data,
                      std::uint32_t initial_counter) {
  Bytes out(data.begin(), data.end());
  ChaCha20 c(key, nonce, initial_counter);
  c.apply(out);
  return out;
}

}  // namespace p3s::crypto
