// ChaCha20-based deterministic random bit generator with fast key erasure.
// This is the production Rng implementation; TestRng (common) is for tests.
#pragma once

#include <array>

#include "common/rng.hpp"

namespace p3s::crypto {

class Drbg final : public Rng {
 public:
  /// Seeded from std::random_device.
  Drbg();
  /// Deterministic seeding (reproducible experiments). Seed is hashed, so
  /// any length is fine.
  explicit Drbg(BytesView seed);

  void fill(std::span<std::uint8_t> out) override;

 private:
  void refill();

  std::array<std::uint8_t, 32> key_;
  std::array<std::uint8_t, 960> pool_;  // 15 blocks of output per rekey
  std::size_t pos_;
  std::uint64_t counter_ = 0;
};

}  // namespace p3s::crypto
