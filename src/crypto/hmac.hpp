// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). HKDF is the KDF used to turn
// pairing-group elements (GT) and DH shared secrets into symmetric keys.
#pragma once

#include "common/bytes.hpp"

namespace p3s::crypto {

/// HMAC-SHA256 of `data` under `key` (any key length).
Bytes hmac_sha256(BytesView key, BytesView data);

/// HKDF-Extract(salt, ikm) -> 32-byte PRK.
Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand(prk, info, len); len <= 255*32.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t len);

/// Extract-then-expand convenience.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t len);

}  // namespace p3s::crypto
