// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869). HKDF is the KDF used to turn
// pairing-group elements (GT) and DH shared secrets into symmetric keys.
#pragma once

#include "common/bytes.hpp"

namespace p3s::crypto {

/// HMAC-SHA256 of `data` under `key` (any key length).
Bytes hmac_sha256(BytesView key, BytesView data);

/// Verify `mac` against HMAC-SHA256(key, data) in constant time (crypto/
/// ct.hpp). The single blessed entry point for MAC checks — callers must
/// never compare digests themselves.
bool hmac_verify(BytesView key, BytesView data, BytesView mac);

/// HKDF-Extract(salt, ikm) -> 32-byte PRK.
Bytes hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand(prk, info, len); len <= 255*32.
Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t len);

/// Extract-then-expand convenience.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t len);

}  // namespace p3s::crypto
