// ChaCha20-Poly1305 AEAD (RFC 8439). Every symmetric encryption in P3S —
// payload super-encryption under Ks, secure-channel records, the hybrid
// layers of CP-ABE and HVE — goes through this interface.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace p3s::crypto {

struct AeadCiphertext {
  Bytes nonce;  // 12 bytes
  Bytes body;   // ciphertext || 16-byte tag

  Bytes serialize() const;
  static AeadCiphertext deserialize(BytesView data);
};

/// Encrypt `plaintext` with additional authenticated data `aad` under the
/// 32-byte `key`, using a fresh random nonce from `rng`.
AeadCiphertext aead_encrypt(BytesView key, BytesView plaintext, BytesView aad,
                            Rng& rng);

/// Decrypt; returns nullopt when the tag check fails (wrong key, wrong aad,
/// or tampering).
std::optional<Bytes> aead_decrypt(BytesView key, const AeadCiphertext& ct,
                                  BytesView aad);

}  // namespace p3s::crypto
