#include "crypto/poly1305.hpp"

#include <cstdint>
#include <stdexcept>

namespace p3s::crypto {

namespace {
constexpr std::uint64_t kMask26 = (1u << 26) - 1;

std::uint32_t le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

Bytes poly1305_tag(BytesView key, BytesView msg) {
  if (key.size() != 32) throw std::invalid_argument("poly1305: bad key size");

  // r (clamped), decomposed into 26-bit limbs.
  const std::uint32_t t0 = le32(key.data()) & 0x0fffffff;
  const std::uint32_t t1 = le32(key.data() + 4) & 0x0ffffffc;
  const std::uint32_t t2 = le32(key.data() + 8) & 0x0ffffffc;
  const std::uint32_t t3 = le32(key.data() + 12) & 0x0ffffffc;

  const std::uint64_t r0 = t0 & kMask26;
  const std::uint64_t r1 = ((t0 >> 26) | (static_cast<std::uint64_t>(t1) << 6)) & kMask26;
  const std::uint64_t r2 = ((t1 >> 20) | (static_cast<std::uint64_t>(t2) << 12)) & kMask26;
  const std::uint64_t r3 = ((t2 >> 14) | (static_cast<std::uint64_t>(t3) << 18)) & kMask26;
  const std::uint64_t r4 = t3 >> 8;

  std::uint64_t h0 = 0, h1 = 0, h2 = 0, h3 = 0, h4 = 0;

  std::size_t off = 0;
  while (off < msg.size()) {
    const std::size_t n = std::min<std::size_t>(16, msg.size() - off);
    std::uint8_t block[17] = {};
    for (std::size_t i = 0; i < n; ++i) block[i] = msg[off + i];
    block[n] = (n == 16) ? 0 : 1;  // pad bit for partial block
    const std::uint64_t hibit = (n == 16) ? (1u << 24) : 0;

    const std::uint32_t m0 = le32(block);
    const std::uint32_t m1 = le32(block + 4);
    const std::uint32_t m2 = le32(block + 8);
    const std::uint32_t m3 = le32(block + 12);
    // block[16] holds the partial-block pad bit (bit 8*n == bit 128 only when
    // n == 16, handled by hibit instead).
    h0 += m0 & kMask26;
    h1 += ((m0 >> 26) | (static_cast<std::uint64_t>(m1) << 6)) & kMask26;
    h2 += ((m1 >> 20) | (static_cast<std::uint64_t>(m2) << 12)) & kMask26;
    h3 += ((m2 >> 14) | (static_cast<std::uint64_t>(m3) << 18)) & kMask26;
    h4 += (m3 >> 8) | (static_cast<std::uint64_t>(block[16]) << 24) | hibit;

    // h *= r (mod 2^130 - 5)
    const std::uint64_t d0 =
        h0 * r0 + 5 * (h1 * r4 + h2 * r3 + h3 * r2 + h4 * r1);
    const std::uint64_t d1 =
        h0 * r1 + h1 * r0 + 5 * (h2 * r4 + h3 * r3 + h4 * r2);
    const std::uint64_t d2 =
        h0 * r2 + h1 * r1 + h2 * r0 + 5 * (h3 * r4 + h4 * r3);
    const std::uint64_t d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + 5 * (h4 * r4);
    const std::uint64_t d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

    std::uint64_t c;
    c = d0 >> 26;
    h0 = d0 & kMask26;
    std::uint64_t e1 = d1 + c;
    c = e1 >> 26;
    h1 = e1 & kMask26;
    std::uint64_t e2 = d2 + c;
    c = e2 >> 26;
    h2 = e2 & kMask26;
    std::uint64_t e3 = d3 + c;
    c = e3 >> 26;
    h3 = e3 & kMask26;
    std::uint64_t e4 = d4 + c;
    c = e4 >> 26;
    h4 = e4 & kMask26;
    h0 += c * 5;
    c = h0 >> 26;
    h0 &= kMask26;
    h1 += c;

    off += n;
  }

  // Full carry propagation.
  std::uint64_t c;
  c = h1 >> 26;
  h1 &= kMask26;
  h2 += c;
  c = h2 >> 26;
  h2 &= kMask26;
  h3 += c;
  c = h3 >> 26;
  h3 &= kMask26;
  h4 += c;
  c = h4 >> 26;
  h4 &= kMask26;
  h0 += c * 5;
  c = h0 >> 26;
  h0 &= kMask26;
  h1 += c;

  // Compute h + -p = h - (2^130 - 5); select it if non-negative.
  std::uint64_t g0 = h0 + 5;
  c = g0 >> 26;
  g0 &= kMask26;
  std::uint64_t g1 = h1 + c;
  c = g1 >> 26;
  g1 &= kMask26;
  std::uint64_t g2 = h2 + c;
  c = g2 >> 26;
  g2 &= kMask26;
  std::uint64_t g3 = h3 + c;
  c = g3 >> 26;
  g3 &= kMask26;
  std::uint64_t g4 = h4 + c;
  const bool ge_p = (g4 >> 26) != 0;
  g4 &= kMask26;
  if (ge_p) {
    h0 = g0;
    h1 = g1;
    h2 = g2;
    h3 = g3;
    h4 = g4;
  }

  // h mod 2^128 into four 32-bit words.
  const std::uint64_t f0 = (h0 | (h1 << 26)) & 0xffffffffull;
  const std::uint64_t f1 = ((h1 >> 6) | (h2 << 20)) & 0xffffffffull;
  const std::uint64_t f2 = ((h2 >> 12) | (h3 << 14)) & 0xffffffffull;
  const std::uint64_t f3 = ((h3 >> 18) | (h4 << 8)) & 0xffffffffull;

  // tag = (h + s) mod 2^128 where s = key[16..32).
  std::uint64_t acc = f0 + le32(key.data() + 16);
  Bytes tag(16);
  for (int i = 0; i < 4; ++i) {
    tag[i] = static_cast<std::uint8_t>(acc >> (8 * i));
  }
  acc = (acc >> 32) + f1 + le32(key.data() + 20);
  for (int i = 0; i < 4; ++i) {
    tag[4 + i] = static_cast<std::uint8_t>(acc >> (8 * i));
  }
  acc = (acc >> 32) + f2 + le32(key.data() + 24);
  for (int i = 0; i < 4; ++i) {
    tag[8 + i] = static_cast<std::uint8_t>(acc >> (8 * i));
  }
  acc = (acc >> 32) + f3 + le32(key.data() + 28);
  for (int i = 0; i < 4; ++i) {
    tag[12 + i] = static_cast<std::uint8_t>(acc >> (8 * i));
  }
  return tag;
}

}  // namespace p3s::crypto
