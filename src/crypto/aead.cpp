#include "crypto/aead.hpp"

#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/ct.hpp"
#include "crypto/poly1305.hpp"

namespace p3s::crypto {

namespace {
Bytes mac_input(BytesView aad, BytesView ct) {
  Bytes m(aad.begin(), aad.end());
  m.insert(m.end(), (16 - aad.size() % 16) % 16, 0);
  m.insert(m.end(), ct.begin(), ct.end());
  m.insert(m.end(), (16 - ct.size() % 16) % 16, 0);
  for (std::uint64_t len : {static_cast<std::uint64_t>(aad.size()),
                            static_cast<std::uint64_t>(ct.size())}) {
    for (int i = 0; i < 8; ++i) m.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  return m;
}

Bytes one_time_key(BytesView key, BytesView nonce) {
  ChaCha20 c(key, nonce, 0);
  const auto block = c.keystream_block();
  return Bytes(block.begin(), block.begin() + 32);
}
}  // namespace

Bytes AeadCiphertext::serialize() const {
  Writer w;
  w.bytes(nonce);
  w.bytes(body);
  return w.take();
}

AeadCiphertext AeadCiphertext::deserialize(BytesView data) {
  Reader r(data);
  AeadCiphertext ct;
  ct.nonce = r.bytes();
  ct.body = r.bytes();
  r.expect_done();
  if (ct.nonce.size() != ChaCha20::kNonceSize) {
    throw std::invalid_argument("AeadCiphertext: bad nonce size");
  }
  if (ct.body.size() < 16) {
    throw std::invalid_argument("AeadCiphertext: body shorter than tag");
  }
  return ct;
}

AeadCiphertext aead_encrypt(BytesView key, BytesView plaintext, BytesView aad,
                            Rng& rng) {
  AeadCiphertext out;
  out.nonce = rng.bytes(ChaCha20::kNonceSize);
  out.body = ChaCha20::crypt(key, out.nonce, plaintext, 1);
  const Bytes otk = one_time_key(key, out.nonce);
  const Bytes tag = poly1305_tag(otk, mac_input(aad, out.body));
  out.body.insert(out.body.end(), tag.begin(), tag.end());
  return out;
}

std::optional<Bytes> aead_decrypt(BytesView key, const AeadCiphertext& ct,
                                  BytesView aad) {
  if (ct.body.size() < 16 || ct.nonce.size() != ChaCha20::kNonceSize) {
    return std::nullopt;
  }
  const BytesView cipher(ct.body.data(), ct.body.size() - 16);
  const BytesView tag(ct.body.data() + ct.body.size() - 16, 16);
  const Bytes otk = one_time_key(key, ct.nonce);
  const Bytes expected = poly1305_tag(otk, mac_input(aad, cipher));
  if (!ct_equal(expected, tag)) return std::nullopt;
  return ChaCha20::crypt(key, ct.nonce, cipher, 1);
}

}  // namespace p3s::crypto
