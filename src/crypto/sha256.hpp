// SHA-256 (FIPS 180-4). Used for HMAC/HKDF, hash-to-group, GUID commitment
// checks, and the DRBG seed path.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace p3s::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();

  void update(BytesView data);
  /// Finalize and return the 32-byte digest. The object must not be reused
  /// after finalization.
  Bytes finish();

  /// One-shot convenience.
  static Bytes digest(BytesView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, kBlockSize> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace p3s::crypto
