#include "crypto/drbg.hpp"

#include <random>

#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"

namespace p3s::crypto {

Drbg::Drbg() {
  std::random_device rd;
  Bytes seed(48);
  for (auto& b : seed) b = static_cast<std::uint8_t>(rd());
  const Bytes k = Sha256::digest(seed);
  std::copy(k.begin(), k.end(), key_.begin());
  pos_ = pool_.size();  // force refill on first use
}

Drbg::Drbg(BytesView seed) {
  const Bytes k = Sha256::digest(seed);
  std::copy(k.begin(), k.end(), key_.begin());
  pos_ = pool_.size();
}

void Drbg::refill() {
  // Fast key erasure: generate 16 blocks; block 0 becomes the next key,
  // blocks 1..15 are the output pool. Nonce carries a monotonic counter so
  // state never repeats even if key_ were to collide.
  Bytes nonce(ChaCha20::kNonceSize, 0);
  for (int i = 0; i < 8; ++i) {
    nonce[i] = static_cast<std::uint8_t>(counter_ >> (8 * i));
  }
  ++counter_;
  ChaCha20 c(BytesView(key_.data(), key_.size()), nonce, 0);
  const auto first = c.keystream_block();
  std::copy(first.begin(), first.begin() + 32, key_.begin());
  for (std::size_t blk = 0; blk < pool_.size() / 64; ++blk) {
    const auto ks = c.keystream_block();
    std::copy(ks.begin(), ks.end(), pool_.begin() + blk * 64);
  }
  pos_ = 0;
}

void Drbg::fill(std::span<std::uint8_t> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    if (pos_ == pool_.size()) refill();
    const std::size_t n = std::min(pool_.size() - pos_, out.size() - off);
    std::copy(pool_.begin() + pos_, pool_.begin() + pos_ + n, out.begin() + off);
    pos_ += n;
    off += n;
  }
}

}  // namespace p3s::crypto
