// Constant-time primitives. This is the ONE blessed home for secret
// comparisons: every MAC/tag/digest check in the tree routes through
// ct_equal (tools/p3s-lint's secret-compare rule flags memcmp and ==/!= on
// secret-named operands in the crypto-bearing modules). tests/ct_test.cpp
// pins the timing behaviour with a dudect-style Welch t-test.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace p3s::crypto {

/// Constant-time equality over equal-length buffers; only the LENGTH may
/// leak (mismatched sizes return false immediately — sizes are public
/// protocol constants for every caller). The accumulator is pinned with a
/// value barrier so the compiler can neither short-circuit the loop nor
/// branch on partial results.
inline bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : "+r"(diff));
#endif
  return diff == 0;
}

/// Constant-time "is all zero".
inline bool ct_is_zero(BytesView a) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i];
#if defined(__GNUC__) || defined(__clang__)
  __asm__ __volatile__("" : "+r"(acc));
#endif
  return acc == 0;
}

/// Branchless select: returns `yes` when pick != 0, else `no`. For callers
/// that must not branch on a secret decision bit.
inline std::uint8_t ct_select_u8(std::uint8_t pick, std::uint8_t yes,
                                 std::uint8_t no) {
  const std::uint8_t mask =
      static_cast<std::uint8_t>(-static_cast<std::uint8_t>(pick != 0));
  return static_cast<std::uint8_t>((yes & mask) | (no & static_cast<std::uint8_t>(~mask)));
}

}  // namespace p3s::crypto
