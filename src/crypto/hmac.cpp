#include "crypto/hmac.hpp"

#include <stdexcept>

#include "crypto/ct.hpp"
#include "crypto/sha256.hpp"

namespace p3s::crypto {

Bytes hmac_sha256(BytesView key, BytesView data) {
  Bytes k(key.begin(), key.end());
  if (k.size() > Sha256::kBlockSize) k = Sha256::digest(k);
  k.resize(Sha256::kBlockSize, 0);

  Bytes ipad = k, opad = k;
  for (std::size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] ^= 0x36;
    opad[i] ^= 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Bytes inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

bool hmac_verify(BytesView key, BytesView data, BytesView mac) {
  return ct_equal(hmac_sha256(key, data), mac);
}

Bytes hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(BytesView prk, BytesView info, std::size_t len) {
  if (len > 255 * Sha256::kDigestSize) {
    throw std::invalid_argument("hkdf_expand: output too long");
  }
  Bytes out;
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < len) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = hmac_sha256(prk, block);
    out.insert(out.end(), t.begin(), t.end());
  }
  out.resize(len);
  return out;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t len) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, len);
}

}  // namespace p3s::crypto
