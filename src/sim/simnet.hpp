// Simulated network with per-link latency and per-NIC egress bandwidth.
// Matches the paper's cost model: a frame of size m from A to B arrives at
//   start + m/B_A + ℓ, where start is when A's NIC becomes free —
// so fan-out from one node (the DS broadcasting PBE metadata to all
// subscribers) serializes on that node's NIC, which is exactly the
// bottleneck the paper's throughput model captures.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <utility>

#include "net/fault.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace p3s::sim {

struct LinkConfig {
  double latency_s = 0.045;            // paper Table 1: ℓ = 45 ms
  double bandwidth_bps = 10e6;         // paper Table 1: ℬ = 10 Mbps
};

class SimNetwork final : public net::Network {
 public:
  explicit SimNetwork(SimEngine& engine, LinkConfig defaults = {})
      : engine_(engine), defaults_(defaults) {}

  /// Override the link used for a specific (from, to) pair — e.g. the paper
  /// assumes DS→RS runs on a 100 Mbps LAN while clients see 10 Mbps.
  void set_link(const std::string& from, const std::string& to,
                LinkConfig link);
  /// Override every link leaving `from` (NIC-level config).
  void set_egress(const std::string& from, LinkConfig link);

  void register_endpoint(const std::string& name, Handler handler) override;
  void unregister_endpoint(const std::string& name) override;
  void send(const std::string& from, const std::string& to,
            Bytes frame) override;
  /// Like send(), but the NIC/link timing uses `wire_size` instead of the
  /// frame's real length. Lets large-payload experiments model multi-MB
  /// transfers without allocating them (the receiver still gets `frame`).
  void send_sized(const std::string& from, const std::string& to, Bytes frame,
                  std::size_t wire_size);
  double now() const override { return engine_.now(); }

  SimEngine& engine() { return engine_; }

  // --- fault injection (mirrors AsyncNetwork; DESIGN.md "Reliability") -----
  /// Install a seeded net::FaultPlan so figure benches can run lossy:
  /// per-link drop/duplicate, extra delivery delay (seconds here), and
  /// endpoint blackout windows. Reorder probabilities are ignored — delay
  /// variance already reorders a discrete-event schedule. NIC time is
  /// consumed even by frames the plan drops (the bytes left the host).
  void set_fault_plan(net::FaultPlan plan) { plan_ = std::move(plan); }
  void clear_fault_plan() { plan_.reset(); }
  net::FaultPlan* fault_plan() { return plan_.has_value() ? &*plan_ : nullptr; }

  std::size_t dropped_frames() const { return dropped_; }
  std::size_t dropped_on(const std::string& from, const std::string& to) const;

 private:
  const LinkConfig& link_for(const std::string& from,
                             const std::string& to) const;

  SimEngine& engine_;
  LinkConfig defaults_;
  std::map<std::pair<std::string, std::string>, LinkConfig> pair_links_;
  std::map<std::string, LinkConfig> egress_links_;
  std::map<std::string, Handler> endpoints_;
  std::map<std::string, double> nic_free_at_;
  std::optional<net::FaultPlan> plan_;
  std::size_t dropped_ = 0;
  std::map<std::pair<std::string, std::string>, std::size_t> dropped_by_link_;
};

}  // namespace p3s::sim
