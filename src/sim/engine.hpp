// Discrete-event engine for the performance experiments: the paper evaluated
// P3S at scale (100 subscribers) with analytic models; we reproduce those
// models AND cross-check them with packet-level simulation on this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace p3s::sim {

class SimEngine {
 public:
  using Task = std::function<void()>;

  /// Schedule at an absolute time (>= now, else clamped to now).
  void at(double time, Task task);
  /// Schedule `delay` seconds from now (negative clamped to 0).
  void after(double delay, Task task);

  double now() const { return now_; }
  bool empty() const { return queue_.empty(); }

  /// Observability: this engine's clock as an obs::Registry clock source
  /// (see obs::ClockGuard) — latency spans then record SIMULATED seconds.
  /// The returned callable captures `this`; uninstall before destruction.
  std::function<double()> clock_fn() {
    return [this] { return now_; };
  }

  /// Execute the next event; returns false when the queue is empty.
  bool step();
  /// Run until no events remain.
  void run();
  /// Run events with time <= t, then set now to t.
  void run_until(double t);

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    Task task;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace p3s::sim
