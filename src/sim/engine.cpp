#include "sim/engine.hpp"

#include <algorithm>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::sim {

namespace {
struct SimMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& events = reg.counter(obs::names::kSimEventsTotal);
  obs::Gauge& queue_depth = reg.gauge(obs::names::kSimQueueDepth);
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}
}  // namespace

void SimEngine::at(double time, Task task) {
  queue_.push(Event{std::max(time, now_), next_seq_++, std::move(task)});
}

void SimEngine::after(double delay, Task task) {
  at(now_ + std::max(delay, 0.0), std::move(task));
}

bool SimEngine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move via const_cast is the standard
  // workaround — the element is popped immediately after.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  SimMetrics& metrics = sim_metrics();
  metrics.events.inc();
  metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  ev.task();
  return true;
}

void SimEngine::run() {
  while (step()) {
  }
}

void SimEngine::run_until(double t) {
  while (!queue_.empty() && queue_.top().time <= t) step();
  now_ = std::max(now_, t);
}

}  // namespace p3s::sim
