#include "sim/simnet.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::sim {

namespace {
struct SimNetMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& frames = reg.counter(obs::names::kSimFramesTotal);
  obs::Histogram& frame_bytes =
      reg.histogram(obs::names::kSimFrameBytes, {}, "bytes");
  // Fault hooks share the p3s.net.fault_* vocabulary with AsyncNetwork.
  obs::Counter& fault_dropped =
      reg.counter(obs::names::kNetFaultDroppedTotal);
  obs::Counter& fault_duplicated =
      reg.counter(obs::names::kNetFaultDuplicatedTotal);
  obs::Counter& fault_delayed =
      reg.counter(obs::names::kNetFaultDelayedTotal);
  obs::Counter& fault_blackout_dropped =
      reg.counter(obs::names::kNetFaultBlackoutDroppedTotal);
};

SimNetMetrics& simnet_metrics() {
  static SimNetMetrics m;
  return m;
}
}  // namespace

void SimNetwork::set_link(const std::string& from, const std::string& to,
                          LinkConfig link) {
  pair_links_[{from, to}] = link;
}

void SimNetwork::set_egress(const std::string& from, LinkConfig link) {
  egress_links_[from] = link;
}

const LinkConfig& SimNetwork::link_for(const std::string& from,
                                       const std::string& to) const {
  const auto pit = pair_links_.find({from, to});
  if (pit != pair_links_.end()) return pit->second;
  const auto eit = egress_links_.find(from);
  if (eit != egress_links_.end()) return eit->second;
  return defaults_;
}

void SimNetwork::register_endpoint(const std::string& name, Handler handler) {
  if (!endpoints_.emplace(name, std::move(handler)).second) {
    throw std::invalid_argument("SimNetwork: duplicate endpoint '" + name + "'");
  }
}

void SimNetwork::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

void SimNetwork::send(const std::string& from, const std::string& to,
                      Bytes frame) {
  const std::size_t wire_size = frame.size();
  send_sized(from, to, std::move(frame), wire_size);
}

std::size_t SimNetwork::dropped_on(const std::string& from,
                                   const std::string& to) const {
  const auto it = dropped_by_link_.find({from, to});
  return it != dropped_by_link_.end() ? it->second : 0;
}

void SimNetwork::send_sized(const std::string& from, const std::string& to,
                            Bytes frame, std::size_t wire_size) {
  SimNetMetrics& metrics = simnet_metrics();
  if (plan_.has_value() && plan_->in_blackout(from, now())) {
    // A dark sender's frames die on the host — no NIC time, no wire, and
    // therefore no entry in the eavesdropper's traffic log. Every other
    // fault below loses the frame PAST the observation point.
    ++dropped_;
    ++dropped_by_link_[{from, to}];
    metrics.fault_blackout_dropped.inc();
    return;
  }
  traffic_.push_back({now(), from, to, wire_size, frame});
  metrics.frames.inc();
  metrics.frame_bytes.record(static_cast<double>(wire_size));
  const LinkConfig& link = link_for(from, to);
  const double tx = static_cast<double>(wire_size) * 8.0 / link.bandwidth_bps;
  double& nic_free = nic_free_at_[from];
  const double start = std::max(engine_.now(), nic_free);
  nic_free = start + tx;
  double arrival = start + tx + link.latency_s;

  if (plan_.has_value()) {
    // NIC time above is spent either way: the frame left the host (and the
    // traffic log) before the fault ate it.
    const auto lost = [&](obs::Counter& counter) {
      ++dropped_;
      ++dropped_by_link_[{from, to}];
      counter.inc();
    };
    if (plan_->in_blackout(to, arrival)) {
      lost(metrics.fault_blackout_dropped);
      return;
    }
    if (plan_->should_drop(from, to)) {
      lost(metrics.fault_dropped);
      return;
    }
    const double extra = plan_->delay(from, to);
    if (extra > 0.0) metrics.fault_delayed.inc();
    arrival += extra;
    if (plan_->should_duplicate(from, to)) {
      metrics.fault_duplicated.inc();
      traffic_.push_back({now(), from, to, wire_size, frame});
      const double dup_arrival =
          start + tx + link.latency_s + plan_->delay(from, to);
      engine_.at(dup_arrival, [this, from, to, frame]() {
        const auto it = endpoints_.find(to);
        if (it == endpoints_.end()) return;
        Handler handler = it->second;
        handler(from, frame);
      });
    }
  }

  engine_.at(arrival, [this, from, to, frame = std::move(frame)]() {
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) return;  // host down: frame lost
    Handler handler = it->second;
    handler(from, frame);
  });
}

}  // namespace p3s::sim
