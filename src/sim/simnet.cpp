#include "sim/simnet.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::sim {

namespace {
struct SimNetMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& frames = reg.counter(obs::names::kSimFramesTotal);
  obs::Histogram& frame_bytes =
      reg.histogram(obs::names::kSimFrameBytes, {}, "bytes");
};

SimNetMetrics& simnet_metrics() {
  static SimNetMetrics m;
  return m;
}
}  // namespace

void SimNetwork::set_link(const std::string& from, const std::string& to,
                          LinkConfig link) {
  pair_links_[{from, to}] = link;
}

void SimNetwork::set_egress(const std::string& from, LinkConfig link) {
  egress_links_[from] = link;
}

const LinkConfig& SimNetwork::link_for(const std::string& from,
                                       const std::string& to) const {
  const auto pit = pair_links_.find({from, to});
  if (pit != pair_links_.end()) return pit->second;
  const auto eit = egress_links_.find(from);
  if (eit != egress_links_.end()) return eit->second;
  return defaults_;
}

void SimNetwork::register_endpoint(const std::string& name, Handler handler) {
  if (!endpoints_.emplace(name, std::move(handler)).second) {
    throw std::invalid_argument("SimNetwork: duplicate endpoint '" + name + "'");
  }
}

void SimNetwork::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

void SimNetwork::send(const std::string& from, const std::string& to,
                      Bytes frame) {
  const std::size_t wire_size = frame.size();
  send_sized(from, to, std::move(frame), wire_size);
}

void SimNetwork::send_sized(const std::string& from, const std::string& to,
                            Bytes frame, std::size_t wire_size) {
  traffic_.push_back({now(), from, to, wire_size, frame});
  SimNetMetrics& metrics = simnet_metrics();
  metrics.frames.inc();
  metrics.frame_bytes.record(static_cast<double>(wire_size));
  const LinkConfig& link = link_for(from, to);
  const double tx = static_cast<double>(wire_size) * 8.0 / link.bandwidth_bps;
  double& nic_free = nic_free_at_[from];
  const double start = std::max(engine_.now(), nic_free);
  nic_free = start + tx;
  const double arrival = start + tx + link.latency_s;

  engine_.at(arrival, [this, from, to, frame = std::move(frame)]() {
    const auto it = endpoints_.find(to);
    if (it == endpoints_.end()) return;  // host down: frame lost
    Handler handler = it->second;
    handler(from, frame);
  });
}

}  // namespace p3s::sim
