// Random-number source abstraction. Crypto components take an Rng& so tests
// can be made deterministic; the production CSPRNG (ChaCha20-based DRBG)
// lives in src/crypto and implements this interface.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace p3s {

/// Interface for random byte sources.
class Rng {
 public:
  virtual ~Rng() = default;

  /// Fill `out` with random bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Convenience: n random bytes.
  Bytes bytes(std::size_t n);

  /// Uniform value in [0, bound) via rejection sampling. bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Raw 64 random bits.
  std::uint64_t u64();
};

/// Fast deterministic non-cryptographic generator (xoshiro256**): for unit
/// tests, simulations, and workload generation. NOT for key material in
/// production settings; the DRBG in src/crypto is the secure source.
class TestRng final : public Rng {
 public:
  explicit TestRng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  void fill(std::span<std::uint8_t> out) override;

 private:
  std::uint64_t next();

  std::uint64_t s_[4];
};

}  // namespace p3s
