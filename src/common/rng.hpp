// Random-number source abstraction. Crypto components take an Rng& so tests
// can be made deterministic; the production CSPRNG (ChaCha20-based DRBG)
// lives in src/crypto and implements this interface.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace p3s {

/// Interface for random byte sources.
class Rng {
 public:
  virtual ~Rng() = default;

  /// Fill `out` with random bytes.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  /// Convenience: n random bytes.
  Bytes bytes(std::size_t n);

  /// Uniform value in [0, bound) via rejection sampling. bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Raw 64 random bits.
  std::uint64_t u64();
};

/// Serves a fixed byte stream that was drawn from a real Rng ahead of time.
/// This is how parallel code keeps bit-identical randomness: the caller
/// pre-draws the exact bytes each task will consume (in sequential order) and
/// hands every task its own ReplayRng slice, so N-thread output equals the
/// 1-thread run. Throws std::out_of_range if a task asks for more bytes than
/// were pre-drawn — a consumption-accounting bug, never silent.
class ReplayRng final : public Rng {
 public:
  explicit ReplayRng(Bytes stream) : stream_(std::move(stream)) {}

  void fill(std::span<std::uint8_t> out) override;

  /// Bytes not yet served (0 when the task consumed its full budget).
  std::size_t remaining() const { return stream_.size() - pos_; }

 private:
  Bytes stream_;
  std::size_t pos_ = 0;
};

/// Fast deterministic non-cryptographic generator (xoshiro256**): for unit
/// tests, simulations, and workload generation. NOT for key material in
/// production settings; the DRBG in src/crypto is the secure source.
class TestRng final : public Rng {
 public:
  explicit TestRng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  void fill(std::span<std::uint8_t> out) override;

 private:
  std::uint64_t next();

  std::uint64_t s_[4];
};

}  // namespace p3s
