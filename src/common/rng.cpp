#include "common/rng.hpp"

#include <algorithm>
#include <stdexcept>

namespace p3s {

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  fill(out);
  return out;
}

std::uint64_t Rng::u64() {
  std::uint8_t buf[8];
  fill(buf);
  std::uint64_t v = 0;
  for (std::uint8_t b : buf) v = (v << 8) | b;
  return v;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = u64();
  } while (v >= limit);
  return v % bound;
}

void ReplayRng::fill(std::span<std::uint8_t> out) {
  if (out.size() > stream_.size() - pos_) {
    throw std::out_of_range("ReplayRng: pre-drawn byte stream exhausted");
  }
  std::copy(stream_.begin() + static_cast<std::ptrdiff_t>(pos_),
            stream_.begin() + static_cast<std::ptrdiff_t>(pos_ + out.size()),
            out.begin());
  pos_ += out.size();
}

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

TestRng::TestRng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t TestRng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void TestRng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < out.size(); ++b) {
      out[i++] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
}

}  // namespace p3s
