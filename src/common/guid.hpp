// Globally-unique identifiers for published items. The paper draws GUIDs
// "from a large space (making it hard to guess)"; we use 128 random bits.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace p3s {

/// 128-bit publication identifier.
class Guid {
 public:
  static constexpr std::size_t kSize = 16;

  Guid() = default;  // all-zero GUID ("null")
  static Guid random(Rng& rng);
  static Guid from_bytes(BytesView data);  // throws if size != kSize
  static Guid from_hex(std::string_view hex);

  Bytes to_bytes() const;
  std::string to_hex() const;
  bool is_null() const;

  auto operator<=>(const Guid&) const = default;

  const std::array<std::uint8_t, kSize>& raw() const { return bytes_; }

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

}  // namespace p3s

template <>
struct std::hash<p3s::Guid> {
  std::size_t operator()(const p3s::Guid& g) const noexcept {
    // FNV-1a over the 16 bytes; GUIDs are uniform so this is fine.
    std::size_t h = 1469598103934665603ull;
    for (std::uint8_t b : g.raw()) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return h;
  }
};
