// Concurrency annotation vocabulary, machine-checked by tools/p3s-lint
// (locks.hpp pass). The macros expand to nothing: they are structured
// comments with teeth — p3s-lint parses them off the token stream and
// enforces them across translation units, so they never rot the way prose
// comments do. Placement mirrors clang's thread-safety attributes:
//
//   P3S_GUARDED_BY(mu)  on a field declaration: every access outside the
//                       owning record's constructor/destructor must happen
//                       with `mu` held (a lock_guard/unique_lock/scoped_lock
//                       scope, an explicit mu.lock(), or from a function
//                       annotated P3S_REQUIRES(mu)).
//   P3S_REQUIRES(mu)    trailing on a function declaration: callers must
//                       already hold `mu`; the body is checked as if `mu`
//                       were held throughout.
//   P3S_NO_BLOCK        trailing on a function declaration: the function
//                       (and everything it reaches) must not sleep, wait,
//                       join, or call anything P3S_BLOCKING. Pool task
//                       lambdas get this check implicitly.
//   P3S_BLOCKING        trailing on a function declaration: marks a call
//                       that may block (e.g. net::Network::send) so the
//                       no-block pass can flag it transitively. This is the
//                       machine check behind the "sends stay serial on the
//                       caller" pool invariant.
//
// Annotations merge across declaration and out-of-line definition by
// (record, name), so annotating the header covers the .cpp body.
#pragma once

#define P3S_GUARDED_BY(mu)
#define P3S_REQUIRES(mu)
#define P3S_NO_BLOCK
#define P3S_BLOCKING
