#include "common/guid.hpp"

#include <algorithm>
#include <stdexcept>

namespace p3s {

Guid Guid::random(Rng& rng) {
  Guid g;
  rng.fill(g.bytes_);
  return g;
}

Guid Guid::from_bytes(BytesView data) {
  if (data.size() != kSize) {
    throw std::invalid_argument("Guid::from_bytes: need exactly 16 bytes");
  }
  Guid g;
  std::copy(data.begin(), data.end(), g.bytes_.begin());
  return g;
}

Guid Guid::from_hex(std::string_view hex) { return from_bytes(p3s::from_hex(hex)); }

Bytes Guid::to_bytes() const { return Bytes(bytes_.begin(), bytes_.end()); }

std::string Guid::to_hex() const {
  return p3s::to_hex(BytesView(bytes_.data(), bytes_.size()));
}

bool Guid::is_null() const {
  return std::all_of(bytes_.begin(), bytes_.end(),
                     [](std::uint8_t b) { return b == 0; });
}

}  // namespace p3s
