// Deterministic binary serialization used by every P3S protocol frame and
// crypto object. Fixed-width integers are big-endian; variable-length
// buffers and strings are length-prefixed with u32.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace p3s {

/// Append-only encoder.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix (caller knows the size).
  void raw(BytesView data);
  /// u32 length prefix followed by the bytes.
  void bytes(BytesView data);
  /// u32 length prefix followed by the characters.
  void str(std::string_view s);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Bounds-checked decoder over a byte view. All methods throw
/// std::out_of_range on truncated input.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  Bytes raw(std::size_t n);
  Bytes bytes();
  std::string str();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  /// Throws std::invalid_argument unless the whole buffer was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace p3s
