// Instrumentation seam for the hermetic primitive layers (math, crypto,
// pairing). Those modules may not depend on src/obs (the layering DAG
// enforced by tools/p3s-lint forbids it), yet their hot paths are exactly
// the ones the observability layer wants to time. The inversion: primitives
// emit through this dependency-free probe API; src/obs installs a Sink that
// routes probe events into its Registry when (and only when) obs is linked
// into the process. With no sink installed every probe call is a single
// relaxed atomic load — test binaries that link only the primitive layers
// pay nothing and need no obs symbols.
//
// Names are interned once (string literals, catalogued in
// src/obs/catalog.hpp — the metric-vocab lint cross-checks every literal)
// into dense ids so the per-event path never hashes a string.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace p3s::probe {

/// Receiver side of the seam. Implemented by src/obs (Registry adapter);
/// `now` must return seconds on the sink's clock so simulated-time guards
/// keep working for probe-timed scopes.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual double now() const = 0;
  virtual void observe(std::size_t id, double value) = 0;  // histograms
  virtual void add(std::size_t id, std::uint64_t delta) = 0;  // counters
};

/// Intern a metric name (must be a string literal or otherwise outlive the
/// process) and return its dense id. Thread-safe; re-interning the same
/// spelling returns the same id.
std::size_t intern(const char* name);

/// Number of interned names so far / name for an id (for sinks).
std::size_t interned_count();
const char* interned_name(std::size_t id);

/// Install (or clear, with nullptr) the process-wide sink. The sink must
/// outlive all subsequent probe calls; installation is one atomic store.
void set_sink(Sink* sink);
Sink* sink();

inline void add(std::size_t id, std::uint64_t delta = 1) {
  if (Sink* s = sink()) s->add(id, delta);
}

inline void observe(std::size_t id, double value) {
  if (Sink* s = sink()) s->observe(id, value);
}

/// Times a scope on the sink's clock into the histogram `id`. Captures the
/// sink once so install/clear races cannot mismatch start/stop clocks.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::size_t id) : id_(id), sink_(sink()) {
    if (sink_ != nullptr) start_ = sink_->now();
  }
  ~ScopedTimer() {
    if (sink_ != nullptr) sink_->observe(id_, sink_->now() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::size_t id_;
  Sink* sink_;
  double start_ = 0.0;
};

}  // namespace p3s::probe
