#include "common/serial.hpp"

#include <stdexcept>

namespace p3s {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Writer::bytes(BytesView data) {
  if (data.size() > 0xffffffffu) {
    throw std::length_error("Writer::bytes: buffer too large");
  }
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void Writer::str(std::string_view s) {
  bytes(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw std::out_of_range("Reader: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] << 8 | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
  pos_ += 8;
  return v;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

Bytes Reader::bytes() { return raw(u32()); }

std::string Reader::str() {
  Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

void Reader::expect_done() const {
  if (!done()) throw std::invalid_argument("Reader: trailing bytes");
}

}  // namespace p3s
