// Byte-buffer utilities shared across all P3S modules.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace p3s {

/// The canonical octet-string type used by every serialization and crypto API.
using Bytes = std::vector<std::uint8_t>;

/// View over immutable bytes; cheap to pass by value.
using BytesView = std::span<const std::uint8_t>;

/// Encode `data` as lowercase hex.
std::string to_hex(BytesView data);

/// Decode a hex string (upper or lower case). Throws std::invalid_argument on
/// malformed input (odd length or non-hex character).
Bytes from_hex(std::string_view hex);

/// Copy a UTF-8/ASCII string into a byte buffer.
Bytes str_to_bytes(std::string_view s);

/// Interpret bytes as a string (no validation; used for test fixtures).
std::string bytes_to_str(BytesView data);

/// Concatenate buffers.
Bytes concat(BytesView a, BytesView b);

/// XOR b into a (sizes must match). Throws std::invalid_argument otherwise.
void xor_inplace(Bytes& a, BytesView b);

}  // namespace p3s
