#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace p3s {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& component,
              const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << component << ": " << message
            << "\n";
}
}  // namespace detail

}  // namespace p3s
