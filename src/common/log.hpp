// Minimal leveled logger. Components log protocol events at Debug; the
// default level (Warn) keeps tests and benches quiet.
#pragma once

#include <sstream>
#include <string>

namespace p3s {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& component,
              const std::string& message);
}

/// Stream-style log statement: LOG(kInfo, "RS") << "stored " << guid;
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogLine() {
    if (level_ >= log_level()) detail::log_emit(level_, component_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (level_ >= log_level()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

inline LogLine log_debug(std::string c) { return LogLine(LogLevel::kDebug, std::move(c)); }
inline LogLine log_info(std::string c) { return LogLine(LogLevel::kInfo, std::move(c)); }
inline LogLine log_warn(std::string c) { return LogLine(LogLevel::kWarn, std::move(c)); }
inline LogLine log_error(std::string c) { return LogLine(LogLevel::kError, std::move(c)); }

}  // namespace p3s
