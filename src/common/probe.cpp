#include "common/probe.hpp"

#include <cstring>
#include <mutex>
#include <vector>

#include "common/annotations.hpp"

namespace p3s::probe {

namespace {
std::atomic<Sink*> g_sink{nullptr};

struct InternTable {
  std::mutex mutex;
  std::vector<const char*> names P3S_GUARDED_BY(mutex);
};

InternTable& table() {
  static InternTable* t = new InternTable();  // never destroyed
  return *t;
}
}  // namespace

std::size_t intern(const char* name) {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  for (std::size_t i = 0; i < t.names.size(); ++i) {
    if (std::strcmp(t.names[i], name) == 0) return i;
  }
  t.names.push_back(name);
  return t.names.size() - 1;
}

std::size_t interned_count() {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  return t.names.size();
}

const char* interned_name(std::size_t id) {
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mutex);
  return id < t.names.size() ? t.names[id] : nullptr;
}

void set_sink(Sink* sink) { g_sink.store(sink, std::memory_order_release); }

Sink* sink() { return g_sink.load(std::memory_order_acquire); }

}  // namespace p3s::probe
