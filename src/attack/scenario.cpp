#include "attack/scenario.hpp"

#include <utility>

#include "abe/policy.hpp"
#include "pairing/pairing.hpp"
#include "pbe/schema.hpp"

namespace p3s::attack {

namespace {

core::P3sConfig scenario_config(const ScenarioConfig& cfg) {
  core::P3sConfig config;
  config.pairing = pairing::Pairing::test_pairing();
  config.schema = pbe::MetadataSchema(
      {{"sector", {"finance", "tech"}}, {"grade", {"x", "y"}}});
  config.rs_grace_seconds = 1e9;
  config.with_anonymizer = cfg.with_anonymizer;
  config.reliability.enabled = cfg.reliability;
  if (cfg.reliability) {
    config.reliability.timeout = 300.0;
    config.reliability.max_timeout = 1200.0;
    config.reliability.sync_interval = 700.0;
    config.reliability.max_attempts = 16;
    config.reliability.reconnect_after = 3;
  }
  if (cfg.hardened) {
    config.anon_hardening.batching = true;
    config.anon_hardening.batch_size = 3;
    config.anon_hardening.flush_interval = 200.0;
    config.anon_hardening.flush_jitter = 100.0;
    config.anon_hardening.min_batch = 3;
    config.anon_hardening.pad_bucket = 512;
    config.anon_hardening.seed = 0xa110'5eed ^ cfg.seed;
    config.ds_hardening.batching = true;
    config.ds_hardening.batch_size = 4;
    config.ds_hardening.flush_interval = 300.0;
    config.ds_hardening.flush_jitter = 150.0;
    config.ds_hardening.pad_bucket = 1024;
    config.ds_hardening.seed = 0xd5'5eed ^ cfg.seed;
    config.rs_response_pad_bucket = 1024;
  }
  return config;
}

}  // namespace

AttackScenario::AttackScenario(const ScenarioConfig& cfg)
    : cfg_(cfg), rng_(0xa77ac4u ^ cfg.seed) {
  system_ =
      std::make_unique<core::P3sSystem>(net_, scenario_config(cfg), rng_);
}

std::vector<core::Subscriber*> AttackScenario::subscribers() {
  std::vector<core::Subscriber*> out;
  out.reserve(subs_.size());
  for (const auto& s : subs_) out.push_back(s.get());
  return out;
}

core::Publisher& AttackScenario::attacker() {
  if (!attacker_) {
    attacker_ = system_->make_publisher("mal", "mallory", rng_);
    net_.run_until_idle(500000);
  }
  return *attacker_;
}

bool AttackScenario::settle() {
  std::size_t n = 0;
  for (const std::string& topic : topics()) {
    for (std::size_t i = 0; i < cfg_.subs_per_topic; ++i, ++n) {
      const std::string name = "sub" + std::to_string(n);
      subs_.push_back(system_->make_subscriber(
          name, "user" + std::to_string(n), {"m"}, rng_));
      subs_.back()->subscribe({{"sector", topic}});
      truth_[name] = topic;
    }
  }
  pub_ = system_->make_publisher("pub1", "press", rng_);
  return converge([&] {
    if (!pub_->connected()) return false;
    for (const auto& sub : subs_) {
      if (!sub->connected() || sub->token_count() != 1) return false;
    }
    return true;
  });
}

Guid AttackScenario::publish(const std::string& topic, bool probe) {
  core::Publisher& p = probe ? attacker() : *pub_;
  schedule_.push_back({net_.now(), topic, probe});
  const Guid guid = p.publish(
      {{"sector", topic}, {"grade", "x"}},
      str_to_bytes("ATTACK-PAYLOAD-" + std::to_string(schedule_.size())),
      abe::parse_policy("m"), /*ttl=*/1e9);
  net_.run_until_idle(500000);
  return guid;
}

void AttackScenario::poll_all() {
  if (pub_) pub_->poll();
  if (attacker_) attacker_->poll();
  for (const auto& sub : subs_) sub->poll();
  system_->ds().poll();
  if (auto* anon = system_->anonymizer()) anon->poll();
}

bool AttackScenario::converge(const std::function<bool()>& done,
                              int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    net_.run_until_idle(500000);
    if (done()) return true;
    poll_all();
    if (net_.in_flight() == 0) net_.advance(97);
  }
  net_.run_until_idle(500000);
  return done();
}

bool AttackScenario::drain() {
  return converge([&] {
    if (net_.in_flight() != 0) return false;
    if (system_->ds().queued_broadcast_count() != 0) return false;
    const auto* anon = system_->anonymizer();
    return anon == nullptr || anon->held_count() == 0;
  });
}

std::size_t AttackScenario::metadata_received_total() const {
  std::size_t total = 0;
  for (const auto& sub : subs_) total += sub->metadata_received();
  return total;
}

std::size_t AttackScenario::duplicate_metadata_total() const {
  std::size_t total = 0;
  for (const auto& sub : subs_) total += sub->duplicate_metadata();
  return total;
}

std::size_t AttackScenario::deliveries_of(const core::Subscriber& sub) const {
  return sub.deliveries().size();
}

}  // namespace p3s::attack
