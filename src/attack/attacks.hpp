// Executable attacks with leak budgets (DESIGN.md §11). Each evaluator
// turns an eavesdropper's (or malicious service's) view of a finished
// scenario into an AttackReport: a quantified adversary advantage compared
// against the declared leak budget for that attack class. The attacks are
// the paper's §6.1 threats made concrete:
//
//   frequency     — passive reaction analysis: correlate a known publish
//                   schedule with per-subscriber outbound traffic timing.
//   probe         — chosen-publication oracle (Vivek): a malicious publisher
//                   probes each topic and watches who reacts.
//   intersection  — malicious RS: intersect request arrival rounds with the
//                   publish schedule to attribute interests.
//   replay        — malicious relay griefing: duplicate broadcasts to
//                   amplify subscriber metadata processing.
//
// tests/attack_test.cpp runs every attack twice per seed: against a
// vulnerable baseline (defense off — the attack must LAND, exceeding its
// budget) and against the hardened configuration (advantage must stay
// within budget). A budget that both sides satisfy would be vacuous.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "attack/observer.hpp"

namespace p3s::attack {

/// One entry of the ground-truth publish schedule the adversary correlates
/// against. `probe` marks publications the adversary issued itself.
struct PublishEvent {
  double time = 0.0;
  std::string topic;
  bool probe = false;
};

/// Quantified outcome of one attack run.
struct AttackReport {
  std::string name;
  double advantage = 0.0;  // over random guessing; >= 0
  double budget = 0.0;     // declared leak budget for this attack class
  std::size_t samples = 0; // guesses (or expected frames, for replay)
  std::size_t correct = 0; // correct guesses (classification attacks)
  std::string detail;

  bool within_budget() const { return advantage <= budget; }
};

/// Does this sighting count as `victim` reacting? (e.g. victim → relay for
/// the wire eavesdropper, victim → RS for the malicious-RS view.)
using ReactionFilter =
    std::function<bool(const Sighting&, const std::string& victim)>;

/// Shared core of the classification attacks: for every victim, compute a
/// per-topic reaction rate — the fraction of that topic's publish windows
/// (publish time, next event time] in which the victim emitted a reaction —
/// and guess the topic with the highest rate (ties fall to schedule order).
/// Advantage = max(0, accuracy - 1/|topics|). With `probes_only`, only
/// adversary-issued publications open windows (the chosen-publication
/// oracle); ambient publications still close them.
AttackReport classify_by_reaction(
    const std::string& name, const EavesdropperObserver& observer,
    const std::vector<PublishEvent>& schedule, bool probes_only,
    const std::map<std::string, std::string>& truth,
    const ReactionFilter& is_reaction, const std::vector<std::string>& topics,
    double budget);

/// Passive frequency/reaction analysis over the full wire: reactions are
/// victim → relay frames.
AttackReport frequency_attack(const EavesdropperObserver& observer,
                              const std::vector<PublishEvent>& schedule,
                              const std::map<std::string, std::string>& truth,
                              const std::string& relay,
                              const std::vector<std::string>& topics,
                              double budget);

/// Chosen-publication oracle: same inference, but only the adversary's own
/// probe publications open reaction windows.
AttackReport probe_attack(const EavesdropperObserver& observer,
                          const std::vector<PublishEvent>& schedule,
                          const std::map<std::string, std::string>& truth,
                          const std::string& relay,
                          const std::vector<std::string>& topics,
                          double budget);

/// Malicious-RS intersection: the adversary sees only frames ARRIVING at
/// the RS. A victim it can identify there (direct fetches — no anonymizer)
/// is classified by intersecting its request rounds with the schedule; a
/// victim it never sees falls back to the uniform prior.
AttackReport intersection_attack(
    const EavesdropperObserver& observer,
    const std::vector<PublishEvent>& schedule,
    const std::map<std::string, std::string>& truth, const std::string& rs,
    const std::vector<std::string>& topics, double budget);

/// Replay griefing: a malicious relay duplicates broadcast frames.
/// Advantage = amplification of metadata processing at the victims,
/// max(0, (received - expected) / expected) with expected =
/// broadcasts x subscribers.
AttackReport replay_attack(std::size_t broadcasts, std::size_t subscribers,
                           std::size_t metadata_received_total, double budget);

/// Record the run in the p3s.attack.* metrics (scenarios, frames observed,
/// guesses/correct, probes, advantage in basis points).
void emit_attack_metrics(const AttackReport& report,
                         std::size_t frames_observed, std::size_t probes = 0);

}  // namespace p3s::attack
