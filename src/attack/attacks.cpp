#include "attack/attacks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::attack {

namespace {

struct AttackMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& scenarios = reg.counter(obs::names::kAttackScenariosTotal);
  obs::Counter& frames = reg.counter(obs::names::kAttackFramesObservedTotal);
  obs::Counter& probes = reg.counter(obs::names::kAttackProbesTotal);
  obs::Counter& guesses = reg.counter(obs::names::kAttackGuessesTotal);
  obs::Counter& correct = reg.counter(obs::names::kAttackGuessesCorrectTotal);
  obs::Gauge& advantage = reg.gauge(obs::names::kAttackAdvantageBps);
};

AttackMetrics& attack_metrics() {
  static AttackMetrics m;
  return m;
}

}  // namespace

AttackReport classify_by_reaction(
    const std::string& name, const EavesdropperObserver& observer,
    const std::vector<PublishEvent>& schedule, bool probes_only,
    const std::map<std::string, std::string>& truth,
    const ReactionFilter& is_reaction, const std::vector<std::string>& topics,
    double budget) {
  AttackReport report;
  report.name = name;
  report.budget = budget;

  // Window i = (t_i, t_{i+1}]; the last window is open-ended so tail
  // reactions (e.g. a hardened relay flushing after the schedule ended)
  // still attribute — to the LAST publication, which is exactly the
  // misattribution the mixing defense creates.
  struct Window {
    double after = 0.0;
    double until = 0.0;
    std::string topic;
  };
  std::vector<Window> windows;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (probes_only && !schedule[i].probe) continue;
    const double until = i + 1 < schedule.size()
                             ? schedule[i + 1].time
                             : std::numeric_limits<double>::infinity();
    windows.push_back({schedule[i].time, until, schedule[i].topic});
  }

  for (const auto& [victim, actual_topic] : truth) {
    std::map<std::string, std::size_t> hits;
    std::map<std::string, std::size_t> totals;
    for (const Window& w : windows) {
      ++totals[w.topic];
      bool reacted = false;
      for (const Sighting& s : observer.sightings()) {
        if (s.time <= w.after || s.time > w.until) continue;
        if (is_reaction(s, victim)) {
          reacted = true;
          break;
        }
      }
      if (reacted) ++hits[w.topic];
    }
    // Argmax by reaction rate; ties resolve to the earliest topic in
    // `topics` so an all-flat profile degrades to the uniform prior.
    std::string guess = topics.empty() ? std::string() : topics.front();
    double best = -1.0;
    for (const std::string& topic : topics) {
      const auto t = totals.find(topic);
      const double rate =
          (t == totals.end() || t->second == 0)
              ? 0.0
              : static_cast<double>(hits[topic]) /
                    static_cast<double>(t->second);
      if (rate > best) {
        best = rate;
        guess = topic;
      }
    }
    ++report.samples;
    if (guess == actual_topic) ++report.correct;
  }

  const double chance =
      topics.empty() ? 0.0 : 1.0 / static_cast<double>(topics.size());
  const double accuracy =
      report.samples == 0 ? 0.0
                          : static_cast<double>(report.correct) /
                                static_cast<double>(report.samples);
  report.advantage = std::max(0.0, accuracy - chance);
  std::ostringstream detail;
  detail << report.correct << "/" << report.samples << " victims classified ("
         << windows.size() << " windows)";
  report.detail = detail.str();
  return report;
}

AttackReport frequency_attack(const EavesdropperObserver& observer,
                              const std::vector<PublishEvent>& schedule,
                              const std::map<std::string, std::string>& truth,
                              const std::string& relay,
                              const std::vector<std::string>& topics,
                              double budget) {
  return classify_by_reaction(
      "frequency", observer, schedule, /*probes_only=*/false, truth,
      [&relay](const Sighting& s, const std::string& victim) {
        return s.from == victim && s.to == relay;
      },
      topics, budget);
}

AttackReport probe_attack(const EavesdropperObserver& observer,
                          const std::vector<PublishEvent>& schedule,
                          const std::map<std::string, std::string>& truth,
                          const std::string& relay,
                          const std::vector<std::string>& topics,
                          double budget) {
  return classify_by_reaction(
      "probe", observer, schedule, /*probes_only=*/true, truth,
      [&relay](const Sighting& s, const std::string& victim) {
        return s.from == victim && s.to == relay;
      },
      topics, budget);
}

AttackReport intersection_attack(
    const EavesdropperObserver& observer,
    const std::vector<PublishEvent>& schedule,
    const std::map<std::string, std::string>& truth, const std::string& rs,
    const std::vector<std::string>& topics, double budget) {
  // The malicious RS only sees its own ingress. With an anonymizer in the
  // path every request arrives from the relay, is_reaction never fires for
  // any victim, and classification collapses to the uniform prior.
  AttackReport report = classify_by_reaction(
      "intersection", observer, schedule, /*probes_only=*/false, truth,
      [&rs](const Sighting& s, const std::string& victim) {
        return s.to == rs && s.from == victim;
      },
      topics, budget);
  std::set<std::string> requesters;
  for (const Sighting& s : observer.on_link("", rs)) requesters.insert(s.from);
  std::ostringstream detail;
  detail << report.detail << "; " << requesters.size()
         << " distinct requesters at RS";
  report.detail = detail.str();
  return report;
}

AttackReport replay_attack(std::size_t broadcasts, std::size_t subscribers,
                           std::size_t metadata_received_total,
                           double budget) {
  AttackReport report;
  report.name = "replay";
  report.budget = budget;
  const std::size_t wanted = broadcasts * subscribers;
  report.samples = wanted;
  report.correct = 0;
  if (wanted > 0 && metadata_received_total > wanted) {
    report.advantage =
        static_cast<double>(metadata_received_total - wanted) /
        static_cast<double>(wanted);
  }
  std::ostringstream detail;
  detail << metadata_received_total << " metadata processed for " << wanted
         << " genuine broadcasts";
  report.detail = detail.str();
  return report;
}

void emit_attack_metrics(const AttackReport& report,
                         std::size_t frames_observed, std::size_t probes) {
  AttackMetrics& m = attack_metrics();
  m.scenarios.inc();
  m.frames.inc(frames_observed);
  m.probes.inc(probes);
  m.guesses.inc(report.samples);
  m.correct.inc(report.correct);
  m.advantage.set(static_cast<std::int64_t>(
      std::lround(report.advantage * 10000.0)));
}

}  // namespace p3s::attack
