// Adversarial workload scenarios (DESIGN.md §11): a full P3S deployment on
// an AsyncNetwork, a population of subscribers with known ground-truth
// interests, and a publish schedule the adversary correlates against. The
// same scenario runs in two modes:
//
//   vulnerable — the attacked defense is OFF (no traffic shaping, or no
//                anonymizer, or no reliable layer). The executable attack
//                must LAND here: advantage above its leak budget.
//   hardened   — batched mixing, jittered flushes, decoy cover and bucketed
//                padding (P3sConfig hardening knobs). Advantage must stay
//                within budget while deliveries remain exactly-once.
//
// Pacing matters and is deliberate: publish() drains in-flight frames but
// does NOT poll, so hardened components hold their batches across publish
// rounds — mixing defends only because the workload gives it something to
// mix, which is the honest version of the trade-off.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/attacks.hpp"
#include "attack/observer.hpp"
#include "common/rng.hpp"
#include "net/async.hpp"
#include "p3s/system.hpp"

namespace p3s::attack {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  bool hardened = false;         // traffic-shaping defenses (P3sConfig)
  bool with_anonymizer = true;   // off = the intersection baseline
  bool reliability = false;      // on = the replay defense
  std::size_t subs_per_topic = 3;
};

class AttackScenario {
 public:
  explicit AttackScenario(const ScenarioConfig& cfg);

  /// The two ground-truth interest classes subscribers split over.
  static std::vector<std::string> topics() { return {"finance", "tech"}; }

  net::AsyncNetwork& net() { return net_; }
  core::P3sSystem& system() { return *system_; }
  const std::vector<PublishEvent>& schedule() const { return schedule_; }
  /// Subscriber endpoint → topic it subscribed to.
  const std::map<std::string, std::string>& truth() const { return truth_; }
  std::vector<core::Subscriber*> subscribers();

  /// The malicious publisher issuing probe publications. Lazily registered
  /// (a legitimate registration — the ARA cannot tell intent).
  core::Publisher& attacker();

  /// Deploy subscribers (subs_per_topic per topic) and the workload
  /// publisher; converge to connected/tokened state.
  [[nodiscard]] bool settle();

  /// Publish on `topic` (from the attacker when `probe`), record the event
  /// in the ground-truth schedule, and drain in-flight frames without
  /// polling (see file comment).
  Guid publish(const std::string& topic, bool probe = false);

  /// Pump + poll + advance until `done()` holds with an idle wire.
  [[nodiscard]] bool converge(const std::function<bool()>& done,
                              int max_rounds = 500);
  /// Converge until queued batches are flushed and the wire is idle.
  [[nodiscard]] bool drain();

  EavesdropperObserver observer() const {
    return EavesdropperObserver(net_.traffic());
  }

  std::size_t metadata_received_total() const;
  std::size_t duplicate_metadata_total() const;
  /// Deliveries of `topic` publications seen by `sub` (exactly-once check).
  std::size_t deliveries_of(const core::Subscriber& sub) const;

 private:
  void poll_all();

  ScenarioConfig cfg_;
  net::AsyncNetwork net_;
  TestRng rng_;
  std::unique_ptr<core::P3sSystem> system_;
  std::vector<std::unique_ptr<core::Subscriber>> subs_;
  std::unique_ptr<core::Publisher> pub_;
  std::unique_ptr<core::Publisher> attacker_;
  std::vector<PublishEvent> schedule_;
  std::map<std::string, std::string> truth_;
};

}  // namespace p3s::attack
