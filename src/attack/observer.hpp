// Eavesdropper's instrument (DESIGN.md §11): replays the network traffic
// log as an adversary would see it. The constructor strips every record
// down to a Sighting — time, endpoints, size — and discards the ciphertext
// bytes, so no attack built on this observer can accidentally depend on
// frame CONTENT. Everything the adversarial workload suite infers, it
// infers from shape alone (the paper's §6.1 network-observer model).
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "net/network.hpp"

namespace p3s::attack {

/// Frame metadata available to a wire eavesdropper. Deliberately excludes
/// the frame bytes (see file comment).
struct Sighting {
  double time = 0.0;
  std::string from;
  std::string to;
  std::size_t size = 0;
};

struct LinkStats {
  std::size_t frames = 0;
  std::size_t bytes = 0;
};

/// Thread-safe per-link accumulator for the parallel sweep in
/// EavesdropperObserver::link_tally(). Accumulation is commutative, so the
/// tally is deterministic regardless of worker interleaving.
class LinkTally {
 public:
  void add(const Sighting& s) {
    std::lock_guard<std::mutex> lock(mutex_);
    LinkStats& stats = links_[{s.from, s.to}];
    ++stats.frames;
    stats.bytes += s.size;
  }

  std::map<std::pair<std::string, std::string>, LinkStats> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return links_;
  }

 private:
  mutable std::mutex mutex_;  // guards the tally during the parallel sweep
  std::map<std::pair<std::string, std::string>, LinkStats> links_
      P3S_GUARDED_BY(mutex_);
};

class EavesdropperObserver {
 public:
  explicit EavesdropperObserver(
      const std::vector<net::TrafficRecord>& traffic);

  const std::vector<Sighting>& sightings() const { return sightings_; }

  /// Frames from → to, in wire order. An empty string is a wildcard.
  std::vector<Sighting> on_link(const std::string& from,
                                const std::string& to) const;

  /// Did `from` send anything to `to` in (after, until]?
  bool sent_in_window(const std::string& from, const std::string& to,
                      double after, double until) const;

  /// Per-link frame/byte totals, swept in parallel on the global pool.
  std::map<std::pair<std::string, std::string>, LinkStats> link_tally() const;

  /// Distinct frame sizes seen on a link — the padding check: a hardened
  /// link collapses onto bucket multiples.
  std::set<std::size_t> sizes_on(const std::string& from,
                                 const std::string& to) const;

 private:
  std::vector<Sighting> sightings_;
};

}  // namespace p3s::attack
