#include "attack/observer.hpp"

#include "exec/pool.hpp"

namespace p3s::attack {

EavesdropperObserver::EavesdropperObserver(
    const std::vector<net::TrafficRecord>& traffic) {
  sightings_.reserve(traffic.size());
  for (const net::TrafficRecord& rec : traffic) {
    sightings_.push_back({rec.time, rec.from, rec.to, rec.size});
  }
}

std::vector<Sighting> EavesdropperObserver::on_link(
    const std::string& from, const std::string& to) const {
  std::vector<Sighting> out;
  for (const Sighting& s : sightings_) {
    if (!from.empty() && s.from != from) continue;
    if (!to.empty() && s.to != to) continue;
    out.push_back(s);
  }
  return out;
}

bool EavesdropperObserver::sent_in_window(const std::string& from,
                                          const std::string& to, double after,
                                          double until) const {
  for (const Sighting& s : sightings_) {
    if (s.time <= after || s.time > until) continue;
    if (s.from == from && s.to == to) return true;
  }
  return false;
}

std::map<std::pair<std::string, std::string>, LinkStats>
EavesdropperObserver::link_tally() const {
  LinkTally tally;
  exec::Pool::global().parallel_for(
      0, sightings_.size(),
      [&](std::size_t i) { tally.add(sightings_[i]); },
      /*grain=*/64);
  return tally.snapshot();
}

std::set<std::size_t> EavesdropperObserver::sizes_on(
    const std::string& from, const std::string& to) const {
  std::set<std::size_t> sizes;
  for (const Sighting& s : on_link(from, to)) sizes.insert(s.size);
  return sizes;
}

}  // namespace p3s::attack
