#include "abe/cpabe.hpp"

#include <stdexcept>

#include "abe/shamir.hpp"
#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"
#include "math/modular.hpp"

namespace p3s::abe {

using math::BigInt;
using math::mod;
using math::mod_inv;
using math::mod_mul;

namespace {
Point hash_attribute(const pairing::Pairing& p, const std::string& attr) {
  return p.hash_to_g1(concat(str_to_bytes("cpabe-attr:"), str_to_bytes(attr)));
}
}  // namespace

// --- Serialization -------------------------------------------------------------

Bytes CpabePublicKey::serialize() const {
  Writer w;
  w.bytes(pairing->serialize_g1(g));
  w.bytes(pairing->serialize_g1(h));
  w.bytes(pairing->serialize_g1(f));
  w.bytes(pairing->serialize_gt(e_gg_alpha));
  return w.take();
}

CpabePublicKey CpabePublicKey::deserialize(PairingPtr pairing, BytesView data) {
  Reader r(data);
  CpabePublicKey pk;
  pk.g = pairing->deserialize_g1(r.bytes());
  pk.h = pairing->deserialize_g1(r.bytes());
  pk.f = pairing->deserialize_g1(r.bytes());
  pk.e_gg_alpha = pairing->deserialize_gt(r.bytes());
  r.expect_done();
  pk.pairing = std::move(pairing);
  return pk;
}

std::set<std::string> CpabeSecretKey::attributes() const {
  std::set<std::string> out;
  for (const auto& [attr, comp] : components) out.insert(attr);
  return out;
}

Bytes CpabeSecretKey::serialize(const pairing::Pairing& pairing) const {
  Writer w;
  w.bytes(pairing.serialize_g1(d));
  w.u32(static_cast<std::uint32_t>(components.size()));
  for (const auto& [attr, comp] : components) {
    w.str(attr);
    w.bytes(pairing.serialize_g1(comp.d));
    w.bytes(pairing.serialize_g1(comp.d_prime));
  }
  return w.take();
}

CpabeSecretKey CpabeSecretKey::deserialize(const pairing::Pairing& pairing,
                                           BytesView data) {
  Reader r(data);
  CpabeSecretKey sk;
  sk.d = pairing.deserialize_g1(r.bytes());
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string attr = r.str();
    CpabeKeyComponent comp;
    comp.d = pairing.deserialize_g1(r.bytes());
    comp.d_prime = pairing.deserialize_g1(r.bytes());
    sk.components.emplace(attr, std::move(comp));
  }
  r.expect_done();
  return sk;
}

Bytes CpabeCiphertext::serialize(const pairing::Pairing& pairing) const {
  Writer w;
  w.bytes(policy.serialize());
  w.bytes(pairing.serialize_gt(c_tilde));
  w.bytes(pairing.serialize_g1(c));
  w.u32(static_cast<std::uint32_t>(leaves.size()));
  for (const Leaf& leaf : leaves) {
    w.str(leaf.attribute);
    w.bytes(pairing.serialize_g1(leaf.cy));
    w.bytes(pairing.serialize_g1(leaf.cy_prime));
  }
  return w.take();
}

CpabeCiphertext CpabeCiphertext::deserialize(const pairing::Pairing& pairing,
                                             BytesView data) {
  Reader r(data);
  CpabeCiphertext ct{PolicyNode::deserialize(r.bytes()), {}, {}, {}};
  ct.c_tilde = pairing.deserialize_gt(r.bytes());
  ct.c = pairing.deserialize_g1(r.bytes());
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    Leaf leaf;
    leaf.attribute = r.str();
    leaf.cy = pairing.deserialize_g1(r.bytes());
    leaf.cy_prime = pairing.deserialize_g1(r.bytes());
    ct.leaves.push_back(std::move(leaf));
  }
  r.expect_done();
  if (ct.leaves.size() != ct.policy.leaf_count()) {
    throw std::invalid_argument("CpabeCiphertext: leaf count mismatch");
  }
  return ct;
}

// --- Core scheme ----------------------------------------------------------------

CpabeKeys cpabe_setup(PairingPtr pairing, Rng& rng) {
  const pairing::Pairing& p = *pairing;
  const BigInt alpha = p.random_nonzero_scalar(rng);
  const BigInt beta = p.random_nonzero_scalar(rng);

  CpabeKeys keys;
  keys.pk.pairing = pairing;
  keys.pk.g = p.generator();
  keys.pk.h = p.mul(p.generator(), beta);
  keys.pk.f = p.mul(p.generator(), mod_inv(beta, p.r()));
  keys.pk.e_gg_alpha = p.gt_pow(p.gt_generator(), alpha);
  keys.mk.beta = beta;
  keys.mk.g_alpha = p.mul(p.generator(), alpha);
  return keys;
}

CpabeSecretKey cpabe_keygen(const CpabeKeys& keys,
                            const std::set<std::string>& attributes, Rng& rng) {
  if (attributes.empty()) {
    throw std::invalid_argument("cpabe_keygen: empty attribute set");
  }
  const pairing::Pairing& p = *keys.pk.pairing;
  const BigInt r = p.random_nonzero_scalar(rng);
  const Point g_r = p.mul(p.generator(), r);

  CpabeSecretKey sk;
  // D = (g^α · g^r)^{1/β} = g^{(α+r)/β}
  sk.d = p.mul(p.add(keys.mk.g_alpha, g_r), mod_inv(keys.mk.beta, p.r()));
  for (const std::string& attr : attributes) {
    const BigInt rj = p.random_nonzero_scalar(rng);
    CpabeKeyComponent comp;
    comp.d = p.add(g_r, p.mul(hash_attribute(p, attr), rj));
    comp.d_prime = p.mul(p.generator(), rj);
    sk.components.emplace(attr, std::move(comp));
  }
  return sk;
}

namespace {
// DFS share distribution: node's own share is `share`; leaves append to out.
void share_tree(const pairing::Pairing& p, const PolicyNode& node,
                const BigInt& share, Rng& rng,
                std::vector<std::pair<std::string, BigInt>>& out) {
  if (node.is_leaf()) {
    out.emplace_back(node.attribute(), share);
    return;
  }
  const SharePolynomial poly(share, node.k() - 1, p.r(), rng);
  for (std::size_t i = 0; i < node.children().size(); ++i) {
    share_tree(p, node.children()[i], poly.eval(i + 1), rng, out);
  }
}

// DFS decrypt. `leaf_index` walks the ciphertext leaf array in the same
// order encryption emitted it. Returns e(g,g)^{r·q_node(0)} when this node
// is satisfied.
std::optional<Fq2> decrypt_node(const pairing::Pairing& p,
                                const CpabeSecretKey& sk,
                                const CpabeCiphertext& ct,
                                const PolicyNode& node,
                                std::size_t& leaf_index) {
  if (node.is_leaf()) {
    const CpabeCiphertext::Leaf& leaf = ct.leaves.at(leaf_index++);
    const auto it = sk.components.find(leaf.attribute);
    if (it == sk.components.end()) return std::nullopt;
    // e(D_j, C_y) / e(D'_j, C'_y) = e(g,g)^{r·q_y(0)}
    const Fq2 num = p.pair(it->second.d, leaf.cy);
    const Fq2 den = p.pair(it->second.d_prime, leaf.cy_prime);
    return p.gt_mul(num, p.gt_inv(den));
  }

  // Gather satisfied children (child index is 1-based for Lagrange).
  std::vector<std::uint64_t> indices;
  std::vector<Fq2> values;
  for (std::size_t i = 0; i < node.children().size(); ++i) {
    const auto sub = decrypt_node(p, sk, ct, node.children()[i], leaf_index);
    if (sub.has_value() && indices.size() < node.k()) {
      indices.push_back(i + 1);
      values.push_back(*sub);
    }
  }
  if (indices.size() < node.k()) return std::nullopt;
  Fq2 acc = p.gt_one();
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const BigInt coeff = lagrange_at_zero(indices, indices[j], p.r());
    acc = p.gt_mul(acc, p.gt_pow(values[j], coeff));
  }
  return acc;
}

// One (leaf, exponent) term of the flattened decryption: ciphertext leaf
// `index` contributes e(D_j,C_y)^coeff · e(D'_j,C'_y)^{-coeff}, where coeff
// is the product of the Lagrange coefficients on the path to the root.
struct LeafTerm {
  std::size_t index;
  BigInt coeff;
};

// Flattened twin of decrypt_node: instead of evaluating pairings per leaf
// and combining in GT, collect which leaves the recursive evaluation would
// use and with what accumulated Lagrange exponent. Child selection (first k
// satisfied, in order) matches decrypt_node exactly, so
// ∏ e(D_j,C_y)^{c_j}·e(D'_j,C'_y)^{-c_j} over the result equals its output.
std::optional<std::vector<LeafTerm>> select_node(const pairing::Pairing& p,
                                                 const CpabeSecretKey& sk,
                                                 const CpabeCiphertext& ct,
                                                 const PolicyNode& node,
                                                 std::size_t& leaf_index) {
  if (node.is_leaf()) {
    const std::size_t idx = leaf_index++;
    const CpabeCiphertext::Leaf& leaf = ct.leaves.at(idx);
    if (sk.components.find(leaf.attribute) == sk.components.end()) {
      return std::nullopt;
    }
    return std::vector<LeafTerm>{{idx, BigInt(1)}};
  }

  std::vector<std::uint64_t> indices;
  std::vector<std::vector<LeafTerm>> selected;
  for (std::size_t i = 0; i < node.children().size(); ++i) {
    auto sub = select_node(p, sk, ct, node.children()[i], leaf_index);
    if (sub.has_value() && indices.size() < node.k()) {
      indices.push_back(i + 1);
      selected.push_back(std::move(*sub));
    }
  }
  if (indices.size() < node.k()) return std::nullopt;
  std::vector<LeafTerm> out;
  for (std::size_t j = 0; j < indices.size(); ++j) {
    const BigInt coeff = lagrange_at_zero(indices, indices[j], p.r());
    for (LeafTerm& term : selected[j]) {
      out.push_back({term.index, mod_mul(term.coeff, coeff, p.r())});
    }
  }
  return out;
}
}  // namespace

CpabeCiphertext cpabe_encrypt(const CpabePublicKey& pk, const Fq2& message,
                              const PolicyNode& policy, Rng& rng) {
  const pairing::Pairing& p = *pk.pairing;
  const BigInt s = p.random_nonzero_scalar(rng);

  CpabeCiphertext ct{policy, {}, {}, {}};
  ct.c_tilde = p.gt_mul(message, p.gt_pow(pk.e_gg_alpha, s));
  ct.c = p.mul(pk.h, s);

  std::vector<std::pair<std::string, BigInt>> shares;
  share_tree(p, policy, s, rng, shares);
  ct.leaves.reserve(shares.size());
  for (const auto& [attr, share] : shares) {
    CpabeCiphertext::Leaf leaf;
    leaf.attribute = attr;
    leaf.cy = p.mul(p.generator(), share);
    leaf.cy_prime = p.mul(hash_attribute(p, attr), share);
    ct.leaves.push_back(std::move(leaf));
  }
  return ct;
}

std::optional<Fq2> cpabe_decrypt(const CpabePublicKey& pk,
                                 const CpabeSecretKey& sk,
                                 const CpabeCiphertext& ct) {
  const pairing::Pairing& p = *pk.pairing;
  if (ct.leaves.size() != ct.policy.leaf_count()) return std::nullopt;
  if (!ct.policy.satisfied_by(sk.attributes())) return std::nullopt;

  std::size_t leaf_index = 0;
  const auto selection = select_node(p, sk, ct, ct.policy, leaf_index);
  if (!selection.has_value()) return std::nullopt;

  // Fold the whole tree evaluation plus the final e(C,D) division into ONE
  // multi-pairing: e(P,Q)^λ = e(λP,Q) pulls the Lagrange exponents into G1
  // (scalar mults are ~7× cheaper than pairings here) and e(X,Y)^{-1} =
  // e(-X,Y) turns divisions into extra product terms.
  std::vector<pairing::PairTerm> terms;
  terms.reserve(2 * selection->size() + 1);
  for (const LeafTerm& term : *selection) {
    const CpabeCiphertext::Leaf& leaf = ct.leaves[term.index];
    const CpabeKeyComponent& comp = sk.components.at(leaf.attribute);
    terms.push_back({p.mul(comp.d, term.coeff), leaf.cy});
    terms.push_back({p.neg(p.mul(comp.d_prime, term.coeff)), leaf.cy_prime});
  }
  terms.push_back({p.neg(ct.c), sk.d});
  // M = C̃ · A / e(C, D);  e(C,D) = e(g,g)^{s(α+r)}, A = e(g,g)^{rs}.
  return p.gt_mul(ct.c_tilde, p.pair_product(terms));
}

std::optional<Fq2> cpabe_decrypt_reference(const CpabePublicKey& pk,
                                           const CpabeSecretKey& sk,
                                           const CpabeCiphertext& ct) {
  const pairing::Pairing& p = *pk.pairing;
  if (ct.leaves.size() != ct.policy.leaf_count()) return std::nullopt;
  if (!ct.policy.satisfied_by(sk.attributes())) return std::nullopt;

  std::size_t leaf_index = 0;
  const auto a = decrypt_node(p, sk, ct, ct.policy, leaf_index);
  if (!a.has_value()) return std::nullopt;
  // M = C̃ · A / e(C, D);  e(C,D) = e(g,g)^{s(α+r)}, A = e(g,g)^{rs}.
  const Fq2 e_cd = p.pair(ct.c, sk.d);
  return p.gt_mul(ct.c_tilde, p.gt_mul(*a, p.gt_inv(e_cd)));
}

// --- Hybrid layer -----------------------------------------------------------------

namespace {
Bytes kem_key(const pairing::Pairing& p, const Fq2& z) {
  return crypto::hkdf(str_to_bytes("p3s-cpabe-kem-v1"), p.serialize_gt(z), {},
                      32);
}
}  // namespace

Bytes cpabe_encrypt_bytes(const CpabePublicKey& pk, BytesView payload,
                          const PolicyNode& policy, Rng& rng) {
  const pairing::Pairing& p = *pk.pairing;
  const Fq2 z = p.random_gt(rng);
  const CpabeCiphertext kem = cpabe_encrypt(pk, z, policy, rng);
  const crypto::AeadCiphertext dem =
      crypto::aead_encrypt(kem_key(p, z), payload, str_to_bytes("cpabe"), rng);
  Writer w;
  w.bytes(kem.serialize(p));
  w.bytes(dem.serialize());
  return w.take();
}

std::optional<Bytes> cpabe_decrypt_bytes(const CpabePublicKey& pk,
                                         const CpabeSecretKey& sk,
                                         BytesView ciphertext) {
  try {
    const pairing::Pairing& p = *pk.pairing;
    Reader r(ciphertext);
    const CpabeCiphertext kem = CpabeCiphertext::deserialize(p, r.bytes());
    const crypto::AeadCiphertext dem =
        crypto::AeadCiphertext::deserialize(r.bytes());
    r.expect_done();
    const auto z = cpabe_decrypt(pk, sk, kem);
    if (!z.has_value()) return std::nullopt;
    return crypto::aead_decrypt(kem_key(p, *z), dem, str_to_bytes("cpabe"));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

PolicyNode cpabe_peek_policy(const pairing::Pairing& pairing,
                             BytesView ciphertext) {
  Reader r(ciphertext);
  const CpabeCiphertext kem = CpabeCiphertext::deserialize(pairing, r.bytes());
  return kem.policy;
}

}  // namespace p3s::abe
