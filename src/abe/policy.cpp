#include "abe/policy.hpp"

#include <cctype>
#include <stdexcept>

#include "common/serial.hpp"

namespace p3s::abe {

PolicyNode PolicyNode::leaf(std::string attribute) {
  if (attribute.empty()) {
    throw std::invalid_argument("PolicyNode::leaf: empty attribute");
  }
  PolicyNode n;
  n.attribute_ = std::move(attribute);
  return n;
}

PolicyNode PolicyNode::threshold(unsigned k, std::vector<PolicyNode> children) {
  if (children.empty()) {
    throw std::invalid_argument("PolicyNode::threshold: no children");
  }
  if (k < 1 || k > children.size()) {
    throw std::invalid_argument("PolicyNode::threshold: k out of range");
  }
  PolicyNode n;
  n.k_ = k;
  n.children_ = std::move(children);
  return n;
}

bool PolicyNode::satisfied_by(const std::set<std::string>& attributes) const {
  if (is_leaf()) return attributes.contains(attribute_);
  unsigned satisfied = 0;
  for (const PolicyNode& c : children_) {
    if (c.satisfied_by(attributes) && ++satisfied >= k_) return true;
  }
  return false;
}

std::size_t PolicyNode::leaf_count() const {
  if (is_leaf()) return 1;
  std::size_t n = 0;
  for (const PolicyNode& c : children_) n += c.leaf_count();
  return n;
}

std::set<std::string> PolicyNode::attribute_set() const {
  std::set<std::string> out;
  if (is_leaf()) {
    out.insert(attribute_);
    return out;
  }
  for (const PolicyNode& c : children_) {
    auto sub = c.attribute_set();
    out.insert(sub.begin(), sub.end());
  }
  return out;
}

std::string PolicyNode::to_string() const {
  if (is_leaf()) return attribute_;
  std::string sep;
  if (k_ == 1) {
    sep = " or ";
  } else if (k_ == children_.size()) {
    sep = " and ";
  } else {
    std::string out = std::to_string(k_) + " of (";
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (i) out += ", ";
      out += children_[i].to_string();
    }
    return out + ")";
  }
  std::string out = "(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i) out += sep;
    out += children_[i].to_string();
  }
  return out + ")";
}

Bytes PolicyNode::serialize() const {
  Writer w;
  if (is_leaf()) {
    w.u8(0);
    w.str(attribute_);
  } else {
    w.u8(1);
    w.u32(k_);
    w.u32(static_cast<std::uint32_t>(children_.size()));
    for (const PolicyNode& c : children_) w.bytes(c.serialize());
  }
  return w.take();
}

namespace {
PolicyNode deserialize_node(Reader& r) {
  const std::uint8_t node_type = r.u8();
  if (node_type == 0) {
    return PolicyNode::leaf(r.str());
  }
  if (node_type != 1) throw std::invalid_argument("PolicyNode: bad tag");
  const std::uint32_t k = r.u32();
  const std::uint32_t n = r.u32();
  if (n > 4096) throw std::invalid_argument("PolicyNode: too many children");
  std::vector<PolicyNode> children;
  children.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Bytes sub = r.bytes();
    Reader rs(sub);
    children.push_back(deserialize_node(rs));
    rs.expect_done();
  }
  return PolicyNode::threshold(k, std::move(children));
}
}  // namespace

PolicyNode PolicyNode::deserialize(BytesView data) {
  Reader r(data);
  PolicyNode n = deserialize_node(r);
  r.expect_done();
  return n;
}

// --- Parser ------------------------------------------------------------------

namespace {
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  PolicyNode parse() {
    PolicyNode n = or_expr();
    skip_ws();
    if (pos_ != text_.size()) fail("unexpected trailing input");
    return n;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("policy parse error at offset " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ == text_.size();
  }

  bool peek_char(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  void expect_char(char c) {
    if (!peek_char(c)) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  static bool word_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
           c == '.' || c == '-';
  }

  std::string peek_word() {
    skip_ws();
    std::size_t end = pos_;
    while (end < text_.size() && word_char(text_[end])) ++end;
    return std::string(text_.substr(pos_, end - pos_));
  }

  bool consume_keyword(std::string_view kw) {
    if (peek_word() == kw) {
      pos_ += kw.size();
      return true;
    }
    return false;
  }

  PolicyNode or_expr() {
    std::vector<PolicyNode> terms;
    terms.push_back(and_expr());
    while (!at_end() && consume_keyword("or")) terms.push_back(and_expr());
    if (terms.size() == 1) return std::move(terms[0]);
    return PolicyNode::threshold(1, std::move(terms));
  }

  PolicyNode and_expr() {
    std::vector<PolicyNode> factors;
    factors.push_back(factor());
    while (!at_end() && consume_keyword("and")) factors.push_back(factor());
    if (factors.size() == 1) return std::move(factors[0]);
    const unsigned k = static_cast<unsigned>(factors.size());
    return PolicyNode::threshold(k, std::move(factors));
  }

  PolicyNode factor() {
    skip_ws();
    if (peek_char('(')) {
      ++pos_;
      PolicyNode n = or_expr();
      expect_char(')');
      return n;
    }
    const std::string word = peek_word();
    if (word.empty()) fail("expected attribute, '(' or threshold");
    // "<int> of (...)"?
    bool all_digits = !word.empty();
    for (char c : word) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        all_digits = false;
        break;
      }
    }
    if (all_digits) {
      const std::size_t save = pos_;
      pos_ += word.size();
      if (consume_keyword("of")) {
        expect_char('(');
        std::vector<PolicyNode> children;
        children.push_back(or_expr());
        while (peek_char(',')) {
          ++pos_;
          children.push_back(or_expr());
        }
        expect_char(')');
        unsigned long k = 0;
        try {
          k = std::stoul(word);
        } catch (const std::exception&) {
          fail("threshold out of range");
        }
        if (k < 1 || k > children.size()) fail("threshold k out of range");
        return PolicyNode::threshold(static_cast<unsigned>(k),
                                     std::move(children));
      }
      pos_ = save;  // a purely numeric attribute name
    }
    if (word == "or" || word == "and" || word == "of") {
      fail("reserved word used as attribute");
    }
    pos_ += word.size();
    return PolicyNode::leaf(word);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};
}  // namespace

PolicyNode parse_policy(std::string_view text) { return Parser(text).parse(); }

}  // namespace p3s::abe
