// Ciphertext-Policy Attribute-Based Encryption, the Bethencourt–Sahai–Waters
// (S&P 2007) construction the paper cites as [8,15]. Publishers encrypt
// (GUID, payload) under a policy; the ARA issues attribute keys; only
// subscribers whose attributes satisfy the policy can decrypt.
//
//   Setup:   α,β ← Zr.  PK = (g, h=g^β, f=g^{1/β}, e(g,g)^α).  MK = (β, g^α).
//   KeyGen:  r ← Zr. D = g^{(α+r)/β}; per attribute j: r_j ← Zr,
//            D_j = g^r·H(j)^{r_j}, D'_j = g^{r_j}.
//   Encrypt: share s down the policy tree; C̃ = M·e(g,g)^{αs}, C = h^s,
//            per leaf y: C_y = g^{q_y(0)}, C'_y = H(att(y))^{q_y(0)}.
//   Decrypt: recursive pairing + Lagrange, then M = C̃·A / e(C,D) with
//            A = e(g,g)^{rs}.
//
// The policy travels IN THE CLEAR with the ciphertext (inherent to CP-ABE
// and called out in the paper's privacy analysis).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "abe/policy.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "pairing/pairing.hpp"

namespace p3s::abe {

using pairing::Fq2;
using pairing::PairingPtr;
using pairing::Point;

struct CpabePublicKey {
  PairingPtr pairing;
  Point g;           // group generator
  Point h;           // g^β
  Point f;           // g^{1/β} (delegation; kept for construction fidelity)
  Fq2 e_gg_alpha;    // e(g,g)^α

  Bytes serialize() const;
  static CpabePublicKey deserialize(PairingPtr pairing, BytesView data);
};

struct CpabeMasterKey {
  math::BigInt beta;
  Point g_alpha;  // g^α
};

/// Per-attribute key pair (D_j, D'_j).
struct CpabeKeyComponent {
  Point d;        // g^r · H(j)^{r_j}
  Point d_prime;  // g^{r_j}
};

struct CpabeSecretKey {
  Point d;  // g^{(α+r)/β}
  std::map<std::string, CpabeKeyComponent> components;

  std::set<std::string> attributes() const;
  Bytes serialize(const pairing::Pairing& pairing) const;
  static CpabeSecretKey deserialize(const pairing::Pairing& pairing,
                                    BytesView data);
};

struct CpabeCiphertext {
  PolicyNode policy;
  Fq2 c_tilde;  // M · e(g,g)^{αs}
  Point c;      // h^s
  struct Leaf {
    std::string attribute;
    Point cy;       // g^{q_y(0)}
    Point cy_prime; // H(att)^{q_y(0)}
  };
  std::vector<Leaf> leaves;  // DFS order over the policy tree

  Bytes serialize(const pairing::Pairing& pairing) const;
  static CpabeCiphertext deserialize(const pairing::Pairing& pairing,
                                     BytesView data);
};

struct CpabeKeys {
  CpabePublicKey pk;
  CpabeMasterKey mk;
};

/// System setup (run by the ARA).
CpabeKeys cpabe_setup(PairingPtr pairing, Rng& rng);

/// Issue a secret key for an attribute set (run by the ARA at registration).
CpabeSecretKey cpabe_keygen(const CpabeKeys& keys,
                            const std::set<std::string>& attributes, Rng& rng);

/// Encrypt a GT element under a policy.
CpabeCiphertext cpabe_encrypt(const CpabePublicKey& pk, const Fq2& message,
                              const PolicyNode& policy, Rng& rng);

/// Decrypt; nullopt when sk's attributes do not satisfy the policy. The
/// policy-tree evaluation and the final e(C,D) division are folded into a
/// single multi-pairing product (one Miller loop pass, one final
/// exponentiation) via e(P,Q)^λ = e(λP,Q) and e(X,Y)^{-1} = e(-X,Y).
std::optional<Fq2> cpabe_decrypt(const CpabePublicKey& pk,
                                 const CpabeSecretKey& sk,
                                 const CpabeCiphertext& ct);

/// The original recursive per-leaf-pairing decryption (BSW §4.2 verbatim).
/// Correctness pin for cpabe_decrypt equivalence tests; not the hot path.
std::optional<Fq2> cpabe_decrypt_reference(const CpabePublicKey& pk,
                                           const CpabeSecretKey& sk,
                                           const CpabeCiphertext& ct);

// --- Hybrid layer (KEM-DEM): what P3S actually sends --------------------------

/// Encrypt an arbitrary byte payload: CP-ABE wraps a random GT element,
/// HKDF derives an AEAD key from it, the AEAD carries the payload.
Bytes cpabe_encrypt_bytes(const CpabePublicKey& pk, BytesView payload,
                          const PolicyNode& policy, Rng& rng);

/// Decrypt the hybrid form; nullopt if attributes don't satisfy the policy
/// or the ciphertext was tampered with.
std::optional<Bytes> cpabe_decrypt_bytes(const CpabePublicKey& pk,
                                         const CpabeSecretKey& sk,
                                         BytesView ciphertext);

/// The policy is visible in the clear on the hybrid wire format (paper §3.2);
/// extracting it must not require any key material.
PolicyNode cpabe_peek_policy(const pairing::Pairing& pairing,
                             BytesView ciphertext);

}  // namespace p3s::abe
