#include "abe/shamir.hpp"

#include <stdexcept>

#include "math/modular.hpp"

namespace p3s::abe {

using math::mod;
using math::mod_add;
using math::mod_inv;
using math::mod_mul;
using math::mod_sub;

SharePolynomial::SharePolynomial(const BigInt& constant, unsigned degree,
                                 const BigInt& r, Rng& rng)
    : r_(r) {
  coeffs_.reserve(degree + 1);
  coeffs_.push_back(mod(constant, r));
  for (unsigned i = 0; i < degree; ++i) {
    coeffs_.push_back(BigInt::random_below(rng, r));
  }
}

BigInt SharePolynomial::eval(std::uint64_t x) const {
  const BigInt bx{x};
  BigInt acc{};
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = mod_add(mod_mul(acc, bx, r_), coeffs_[i], r_);
  }
  return acc;
}

BigInt lagrange_at_zero(const std::vector<std::uint64_t>& subset,
                        std::uint64_t i, const BigInt& r) {
  bool member = false;
  BigInt num{1}, den{1};
  const BigInt bi{i};
  for (std::uint64_t j : subset) {
    if (j == i) {
      member = true;
      continue;
    }
    const BigInt bj{j};
    num = mod_mul(num, mod_sub(BigInt{}, bj, r), r);  // (0 - j)
    den = mod_mul(den, mod_sub(bi, bj, r), r);        // (i - j)
  }
  if (!member) {
    throw std::invalid_argument("lagrange_at_zero: i not in subset");
  }
  return mod_mul(num, mod_inv(den, r), r);
}

}  // namespace p3s::abe
