// Access-policy trees for CP-ABE (Bethencourt–Sahai–Waters). Interior nodes
// are k-of-n threshold gates; AND is n-of-n, OR is 1-of-n. The textual
// language accepted by parse_policy:
//
//   policy := or_expr
//   or_expr := and_expr ("or" and_expr)*
//   and_expr := factor ("and" factor)*
//   factor := ATTRIBUTE | "(" policy ")" | INT "of" "(" policy ("," policy)+ ")"
//
// e.g.  "analyst and (org:us or org:uk)"  or  "2 of (a, b, c)".
//
// Note: per the paper (§3.2), CP-ABE policies are transmitted in the clear;
// NOT is unsupported (negative attributes must be modeled as distinct
// attributes, doubling the space).
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace p3s::abe {

class PolicyNode {
 public:
  /// Leaf carrying an attribute.
  static PolicyNode leaf(std::string attribute);
  /// Threshold gate: satisfied when >= k children are satisfied.
  /// Requires 1 <= k <= children.size() and children nonempty.
  static PolicyNode threshold(unsigned k, std::vector<PolicyNode> children);

  bool is_leaf() const { return children_.empty(); }
  const std::string& attribute() const { return attribute_; }
  unsigned k() const { return k_; }
  const std::vector<PolicyNode>& children() const { return children_; }

  /// Clear-text satisfaction check (the policy is public).
  bool satisfied_by(const std::set<std::string>& attributes) const;

  /// Total number of leaves (== number of ciphertext components).
  std::size_t leaf_count() const;

  /// All distinct attributes mentioned.
  std::set<std::string> attribute_set() const;

  /// Canonical textual form (re-parsable).
  std::string to_string() const;

  Bytes serialize() const;
  static PolicyNode deserialize(BytesView data);

  bool operator==(const PolicyNode&) const = default;

 private:
  PolicyNode() = default;

  std::string attribute_;             // leaf only
  unsigned k_ = 0;                    // gate only
  std::vector<PolicyNode> children_;  // empty for leaf
};

/// Parse the policy language; throws std::invalid_argument with a useful
/// message on syntax errors.
PolicyNode parse_policy(std::string_view text);

}  // namespace p3s::abe
