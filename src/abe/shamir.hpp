// Polynomial secret sharing over Z_r used by the CP-ABE policy tree: each
// threshold gate hides its share in a random degree-(k-1) polynomial and
// hands evaluations to its children; decryption interpolates at 0 with
// Lagrange coefficients.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "math/bigint.hpp"

namespace p3s::abe {

using math::BigInt;

/// Random polynomial of degree `degree` over Z_r with p(0) == constant.
class SharePolynomial {
 public:
  SharePolynomial(const BigInt& constant, unsigned degree, const BigInt& r,
                  Rng& rng);

  /// Evaluate at x (Horner, mod r).
  BigInt eval(std::uint64_t x) const;

 private:
  std::vector<BigInt> coeffs_;  // coeffs_[0] == constant
  BigInt r_;
};

/// Lagrange basis coefficient Δ_{i,S}(0) = Π_{j∈S, j≠i} (0-j)/(i-j) mod r.
/// `subset` holds the 1-based child indices used in reconstruction; `i`
/// must be a member. Throws std::invalid_argument otherwise.
BigInt lagrange_at_zero(const std::vector<std::uint64_t>& subset,
                        std::uint64_t i, const BigInt& r);

}  // namespace p3s::abe
