// Workload generation for scale experiments: skewed (Zipf) popularity over
// attribute values — realistic pub-sub interest distributions where a few
// topics are hot — plus empirical match-rate estimation, connecting
// generated workloads to the f parameter the paper's models take as input.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "pbe/schema.hpp"

namespace p3s::model {

struct WorkloadConfig {
  /// Zipf skew parameter: 0 = uniform, 1 ≈ classic web-like skew.
  double zipf_s = 0.8;
  /// Probability that an interest leaves a given attribute as wildcard.
  double wildcard_prob = 0.5;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(pbe::MetadataSchema schema, WorkloadConfig config = {});

  /// Full metadata assignment with Zipf-weighted value popularity.
  pbe::Metadata random_metadata(Rng& rng) const;

  /// Conjunctive interest: each attribute independently wildcarded with
  /// wildcard_prob; concrete values drawn from the same Zipf weights, so
  /// popular content meets popular interest. Guaranteed non-empty.
  pbe::Interest random_interest(Rng& rng) const;

  /// Empirical match fraction f: generate `n_interests` interests and
  /// `n_publications` metadata and count matches — the realized f that the
  /// analytic models take as a parameter.
  double estimate_match_rate(Rng& rng, std::size_t n_interests,
                             std::size_t n_publications) const;

  const pbe::MetadataSchema& schema() const { return schema_; }

 private:
  std::size_t sample_value(Rng& rng, std::size_t n_values) const;

  pbe::MetadataSchema schema_;
  WorkloadConfig config_;
  std::vector<double> zipf_cdf_;  // shared CDF up to the max value count
};

}  // namespace p3s::model
