#include "model/analytic.hpp"

namespace p3s::model {

BaselineLatency baseline_latency(const ModelParams& p, double payload_bytes) {
  BaselineLatency out;
  // The baseline ships payload+metadata; SSL framing overhead is negligible
  // (paper: "difference in the size of cleartext and ciphertext is
  // insignificant").
  out.t1 = p.latency_s + p.serialization_s(payload_bytes, p.bandwidth_bps);
  out.t2 = static_cast<double>(p.n_subscribers) * p.t_baseline_match_s;
  out.t3 = p.match_fraction * static_cast<double>(p.n_subscribers) * out.t1;
  return out;
}

P3sLatency p3s_latency(const ModelParams& p, double payload_bytes) {
  P3sLatency out;
  const double ser_pe = p.serialization_s(p.metadata_ct_bytes, p.bandwidth_bps);
  const double c_a = p.abe_ct_bytes(payload_bytes);

  out.tp1 = p.latency_s + ser_pe + p.t_pbe_encrypt_s;
  out.tp2 = p.latency_s + static_cast<double>(p.n_subscribers) * ser_pe;
  out.tp3 = p.t_pbe_match_s;
  out.tp4 = p.latency_s + p.serialization_s(p.guid_bytes, p.bandwidth_bps);

  out.tb1 = p.latency_s + p.serialization_s(c_a, p.bandwidth_bps) +
            p.t_abe_encrypt_s;
  out.tb2 = p.latency_s + p.serialization_s(c_a, p.lan_bandwidth_bps);

  // Last matching subscriber: waits for the RS to serialize the payload to
  // all f·N_s requesters, plus latency, plus its CP-ABE decryption.
  out.tr = p.latency_s +
           p.serialization_s(c_a, p.bandwidth_bps) * p.match_fraction *
               static_cast<double>(p.n_subscribers) +
           p.t_abe_decrypt_s;
  return out;
}

BaselineThroughput baseline_throughput(const ModelParams& p,
                                       double payload_bytes) {
  BaselineThroughput out;
  out.r_match = static_cast<double>(p.broker_threads) /
                (static_cast<double>(p.n_subscribers) * p.t_baseline_match_s);
  out.r_send = p.bandwidth_bps /
               (payload_bytes * 8.0 * static_cast<double>(p.n_subscribers) *
                p.match_fraction);
  return out;
}

namespace {
unsigned tree_levels(std::size_t n, unsigned fanout) {
  unsigned levels = 0;
  std::size_t reach = 1;
  while (reach < n) {
    reach *= fanout;
    ++levels;
  }
  return levels == 0 ? 1 : levels;
}
}  // namespace

P3sThroughput p3s_throughput_hierarchical(const ModelParams& p,
                                          double payload_bytes,
                                          unsigned fanout) {
  P3sThroughput out = p3s_throughput(p, payload_bytes);
  // Each relay (including the DS root) serializes at most `fanout` copies
  // per publication instead of N_s.
  out.r_ds = p.bandwidth_bps /
             (p.metadata_ct_bytes * 8.0 * static_cast<double>(fanout));
  return out;
}

P3sLatency p3s_latency_hierarchical(const ModelParams& p, double payload_bytes,
                                    unsigned fanout) {
  P3sLatency out = p3s_latency(p, payload_bytes);
  const double ser_pe = p.serialization_s(p.metadata_ct_bytes, p.bandwidth_bps);
  const unsigned levels = tree_levels(p.n_subscribers, fanout);
  out.tp2 = static_cast<double>(levels) *
            (p.latency_s + static_cast<double>(fanout) * ser_pe);
  return out;
}

P3sThroughput p3s_throughput(const ModelParams& p, double payload_bytes) {
  P3sThroughput out;
  const double c_a = p.abe_ct_bytes(payload_bytes);
  // Hardened shaping (DESIGN.md §11): padding inflates every frame's wire
  // cost, cover traffic multiplies the frame count — both scale the NIC-bound
  // rates down by (1+pad)(1+cover). Cover broadcasts additionally consume
  // subscriber match time (a garbage HVE matches like a real one), so the
  // match rate pays the cover factor but not the padding one.
  const double wire_shaping =
      (1.0 + p.anon_pad_overhead) * (1.0 + p.anon_cover_fraction);
  out.r_ds = p.bandwidth_bps / (p.metadata_ct_bytes * 8.0 *
                                static_cast<double>(p.n_subscribers) *
                                wire_shaping);
  out.r_match = static_cast<double>(p.sub_match_threads) /
                (p.t_pbe_match_s * (1.0 + p.anon_cover_fraction));
  out.r_rs = p.bandwidth_bps /
             (c_a * 8.0 * static_cast<double>(p.n_subscribers) *
              p.match_fraction * wire_shaping);
  return out;
}

}  // namespace p3s::model
