// The paper's §6.2 analytic end-to-end latency and throughput models for the
// baseline broker and for P3S, with per-term breakdowns so benches can print
// the same decomposition as Fig. 6/7.
#pragma once

#include "model/params.hpp"

namespace p3s::model {

// --- Latency (paper Fig. 6) --------------------------------------------------------

struct BaselineLatency {
  double t1;  ///< publisher → broker: ℓ + ser(c)
  double t2;  ///< broker matching: N_s · t_match
  double t3;  ///< broker → matching subscribers: f·N_s · t1
  double total() const { return t1 + t2 + t3; }
};

struct P3sLatency {
  // metadata path (t_p):
  double tp1;  ///< PBE-encrypt + send metadata to DS: ℓ + ser(P_E) + enc_P
  double tp2;  ///< DS fan-out, last subscriber: ℓ + N_s·ser(P_E)
  double tp3;  ///< local PBE match: t_PBE
  double tp4;  ///< content request to RS: ℓ + ser(G)
  // content path (t_b):
  double tb1;  ///< CP-ABE encrypt + send to DS: ℓ + ser(c_A) + enc_A
  double tb2;  ///< DS → RS over the LAN: ℓ + ser_LAN(c_A)
  // response path (t_r):
  double tr;   ///< RS → all f·N_s matching subscribers + dec_A

  double metadata_path() const { return tp1 + tp2 + tp3 + tp4; }
  double content_path() const { return tb1 + tb2; }
  /// t_P = max(t_p, t_b) + t_r (worst case; see paper).
  double total() const {
    const double tp = metadata_path();
    const double tb = content_path();
    return (tp > tb ? tp : tb) + tr;
  }
};

BaselineLatency baseline_latency(const ModelParams& p, double payload_bytes);
P3sLatency p3s_latency(const ModelParams& p, double payload_bytes);

// --- Throughput (paper Fig. 7), publications per second ------------------------------

struct BaselineThroughput {
  double r_match;  ///< z / (N_s · t_match)
  double r_send;   ///< ℬ / (c · N_s · f)
  double total() const { return r_match < r_send ? r_match : r_send; }
  const char* bottleneck() const {
    return r_match < r_send ? "broker-matching" : "broker-nic";
  }
};

struct P3sThroughput {
  double r_ds;     ///< ℬ / (P_E · N_s): DS metadata broadcast
  double r_match;  ///< w / t_PBE: subscriber-local matching
  double r_rs;     ///< ℬ / (c_A · N_s · f): RS payload service
  double total() const {
    double m = r_ds;
    if (r_match < m) m = r_match;
    if (r_rs < m) m = r_rs;
    return m;
  }
  const char* bottleneck() const {
    if (r_ds <= r_match && r_ds <= r_rs) return "ds-nic";
    if (r_match <= r_rs) return "subscriber-matching";
    return "rs-nic";
  }
};

BaselineThroughput baseline_throughput(const ModelParams& p,
                                       double payload_bytes);
P3sThroughput p3s_throughput(const ModelParams& p, double payload_bytes);

// --- Hierarchical dissemination (paper §6.2: "This issue can be addressed by
// reconfiguring the P3S architecture to use hierarchical dissemination") ------

/// P3S throughput when the DS broadcast runs over a relay tree of fan-out
/// `fanout`: each node forwards the PBE metadata to at most `fanout`
/// children, so the per-NIC broadcast cost drops from N_s·ser(P_E) to
/// fanout·ser(P_E). Requires fanout >= 2.
P3sThroughput p3s_throughput_hierarchical(const ModelParams& p,
                                          double payload_bytes,
                                          unsigned fanout);

/// Latency with the relay tree: the fan-out term becomes
/// levels·(ℓ + fanout·ser(P_E)) with levels = ceil(log_fanout(N_s)).
P3sLatency p3s_latency_hierarchical(const ModelParams& p, double payload_bytes,
                                    unsigned fanout);

}  // namespace p3s::model
