#include "model/workload.hpp"

#include <cmath>

namespace p3s::model {

WorkloadGenerator::WorkloadGenerator(pbe::MetadataSchema schema,
                                     WorkloadConfig config)
    : schema_(std::move(schema)), config_(config) {
  std::size_t max_values = 0;
  for (const auto& spec : schema_.attributes()) {
    max_values = std::max(max_values, spec.values.size());
  }
  // CDF over ranks 1..max_values with weight 1/rank^s.
  double total = 0;
  zipf_cdf_.reserve(max_values);
  for (std::size_t rank = 1; rank <= max_values; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), config_.zipf_s);
    zipf_cdf_.push_back(total);
  }
  for (double& v : zipf_cdf_) v /= total;
}

std::size_t WorkloadGenerator::sample_value(Rng& rng,
                                            std::size_t n_values) const {
  // Rejection-free: renormalize the CDF prefix for this attribute.
  const double scale = zipf_cdf_[n_values - 1];
  const double u =
      static_cast<double>(rng.uniform(1u << 30)) / static_cast<double>(1u << 30) *
      scale;
  for (std::size_t i = 0; i < n_values; ++i) {
    if (u <= zipf_cdf_[i]) return i;
  }
  return n_values - 1;
}

pbe::Metadata WorkloadGenerator::random_metadata(Rng& rng) const {
  pbe::Metadata md;
  for (const auto& spec : schema_.attributes()) {
    md[spec.name] = spec.values[sample_value(rng, spec.values.size())];
  }
  return md;
}

pbe::Interest WorkloadGenerator::random_interest(Rng& rng) const {
  pbe::Interest interest;
  const auto& attrs = schema_.attributes();
  for (const auto& spec : attrs) {
    const double u = static_cast<double>(rng.uniform(1u << 30)) /
                     static_cast<double>(1u << 30);
    if (u >= config_.wildcard_prob) {
      interest[spec.name] = spec.values[sample_value(rng, spec.values.size())];
    }
  }
  if (interest.empty()) {
    // All-wildcard interests are rejected by the schema; pin one attribute.
    const auto& spec = attrs[rng.uniform(attrs.size())];
    interest[spec.name] = spec.values[sample_value(rng, spec.values.size())];
  }
  return interest;
}

double WorkloadGenerator::estimate_match_rate(Rng& rng,
                                              std::size_t n_interests,
                                              std::size_t n_publications) const {
  std::vector<pbe::Interest> interests;
  interests.reserve(n_interests);
  for (std::size_t i = 0; i < n_interests; ++i) {
    interests.push_back(random_interest(rng));
  }
  std::size_t matches = 0;
  for (std::size_t k = 0; k < n_publications; ++k) {
    const pbe::Metadata md = random_metadata(rng);
    for (const auto& interest : interests) {
      if (pbe::interest_matches(interest, md)) ++matches;
    }
  }
  return static_cast<double>(matches) /
         (static_cast<double>(n_interests) * static_cast<double>(n_publications));
}

}  // namespace p3s::model
