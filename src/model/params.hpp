// Model parameters (paper Table 1) with the crypto-cost knobs that the paper
// measured from its prototype. bench_table1_params re-measures them from OUR
// primitives and feeds them back into these structures, reproducing the
// paper's methodology end to end.
#pragma once

#include <cstddef>

namespace p3s::model {

struct ModelParams {
  // --- network (Table 1) ----------------------------------------------------
  double latency_s = 0.045;          ///< ℓ = 45 ms
  double bandwidth_bps = 10e6;       ///< ℬ = 10 Mbps (client links)
  double lan_bandwidth_bps = 100e6;  ///< DS↔RS LAN (paper §6.2 latency sketch)

  // --- sizes (Table 1) --------------------------------------------------------
  double metadata_ct_bytes = 10'000;  ///< P_E: PBE-encrypted metadata ≈ 10 KB
  double guid_bytes = 10;             ///< |GUID| ≈ 10 bytes
  std::size_t abe_policy_attrs = 10;  ///< v: attributes in CP-ABE policy
  std::size_t abe_k_bits = 384;       ///< k: CP-ABE security parameter

  // --- population -------------------------------------------------------------
  std::size_t n_subscribers = 100;  ///< N_s
  double match_fraction = 0.05;     ///< f

  // --- measured operation costs (paper §6.2 prose) -----------------------------
  double t_pbe_encrypt_s = 0.030;        ///< enc_P ≈ 30 ms
  double t_pbe_match_s = 0.030;          ///< t_PBE ≈ 30 ms (38 ms worst case)
  double t_abe_encrypt_s = 0.003;        ///< enc_A ("fairly fast", ≈ 3 ms)
  double t_abe_decrypt_s = 0.012;        ///< dec_A ≈ 12 ms
  double t_baseline_match_s = 0.00005;   ///< 0.05 ms per XPath subscription test

  // --- hardware threads ---------------------------------------------------------
  unsigned broker_threads = 4;     ///< z: broker matching threads (baseline)
  unsigned sub_match_threads = 2;  ///< w: subscriber PBE-match threads (paper: 2)

  // --- traffic-shaping overheads (DESIGN.md §11 hardening) ----------------------
  /// Fractional byte inflation from bucketed frame padding (0.0 = off). A
  /// frame padded to the next multiple of a bucket carries on average half a
  /// bucket of dead bytes; callers derive the fraction from their bucket /
  /// typical-frame-size ratio.
  double anon_pad_overhead = 0.0;
  /// Cover/decoy frames injected per genuine frame (0.0 = off). Cover
  /// broadcasts also burn subscriber match time: a garbage HVE ciphertext is
  /// indistinguishable from a real one until the match fails.
  double anon_cover_fraction = 0.0;

  /// CP-ABE ciphertext size: c_A = c + 2vk (two group elements of k bits per
  /// policy attribute; paper: "estimated from theory to be c_A = 2vk + c").
  double abe_ct_bytes(double payload_bytes) const {
    return payload_bytes +
           2.0 * static_cast<double>(abe_policy_attrs) *
               static_cast<double>(abe_k_bits) / 8.0;
  }

  double serialization_s(double bytes, double bps) const {
    return bytes * 8.0 / bps;
  }

  /// Paper Table 1 values verbatim.
  static ModelParams paper_defaults() { return ModelParams{}; }
};

}  // namespace p3s::model
