#include "model/flowsim.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/simnet.hpp"

namespace p3s::model {

namespace {

// Flow-sim frames are 9 bytes (8-byte publication id + tag); the wire size
// used for NIC/link timing is passed separately via send_sized, so
// multi-megabyte payload experiments cost no memory.
enum : std::uint8_t {
  kTagMetadata = 0,
  kTagStore = 1,
  kTagRequest = 2,
  kTagContent = 3,
};

Bytes make_frame(std::size_t pub_id, std::uint8_t tag) {
  Bytes f(9);
  for (int i = 0; i < 8; ++i) {
    f[i] = static_cast<std::uint8_t>(pub_id >> (8 * (7 - i)));
  }
  f[8] = tag;
  return f;
}

std::size_t frame_id(BytesView f) {
  std::size_t id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | f[i];
  return id;
}

std::size_t matching_count(const ModelParams& p) {
  return static_cast<std::size_t>(
      p.match_fraction * static_cast<double>(p.n_subscribers) + 0.5);
}

// Serial resource with `threads` workers approximated as a fluid server of
// rate threads/service_time (the paper models matching capacity the same
// way: r = z / t_match).
class FluidServer {
 public:
  FluidServer(double service_time, unsigned threads)
      : effective_time_(service_time / static_cast<double>(threads)) {}

  /// Returns completion time for work arriving at `arrival`.
  double finish(double arrival) {
    busy_until_ = std::max(busy_until_, arrival) + effective_time_;
    return busy_until_;
  }

 private:
  double effective_time_;
  double busy_until_ = 0.0;
};

struct BaselineSim {
  sim::SimEngine engine;
  sim::SimNetwork net;
  std::vector<double> completions;

  BaselineSim(const ModelParams& p, double payload_bytes, int n_pubs)
      : net(engine, {p.latency_s, p.bandwidth_bps}) {
    const std::size_t n_match = matching_count(p);
    const auto payload = static_cast<std::size_t>(payload_bytes);
    auto matcher = std::make_shared<FluidServer>(
        static_cast<double>(p.n_subscribers) * p.t_baseline_match_s,
        p.broker_threads);

    // Matching subscribers record payload arrival; a publication completes
    // when its n_match-th delivery lands (deliveries arrive in order).
    for (std::size_t s = 0; s < n_match; ++s) {
      net.register_endpoint(
          "sub" + std::to_string(s),
          [this, n_match](const std::string&, BytesView) {
            if (++deliveries_seen % n_match == 0) {
              completions.push_back(engine.now());
            }
          });
    }

    net.register_endpoint(
        "broker", [this, payload, n_match, matcher](const std::string&,
                                                    BytesView frame) {
          const std::size_t id = frame_id(frame);
          const double done_matching = matcher->finish(engine.now());
          engine.at(done_matching, [this, id, payload, n_match] {
            for (std::size_t s = 0; s < n_match; ++s) {
              net.send_sized("broker", "sub" + std::to_string(s),
                             make_frame(id, kTagContent), payload);
            }
          });
        });

    net.register_endpoint("pub", [](const std::string&, BytesView) {});
    for (int k = 0; k < n_pubs; ++k) {
      net.send_sized("pub", "broker", make_frame(static_cast<std::size_t>(k),
                                                 kTagMetadata),
                     payload);
    }
    // Observability spans recorded during the run carry SIMULATED time.
    obs::ClockGuard obs_clock(obs::Registry::global(), engine.clock_fn());
    engine.run();
  }

 private:
  std::size_t deliveries_seen = 0;
};

struct P3sSim {
  sim::SimEngine engine;
  sim::SimNetwork net;
  std::vector<double> completions;

  P3sSim(const ModelParams& p, double payload_bytes, int n_pubs)
      : net(engine, {p.latency_s, p.bandwidth_bps}) {
    const std::size_t n_match = matching_count(p);
    const std::size_t pe = static_cast<std::size_t>(p.metadata_ct_bytes);
    const std::size_t ca =
        static_cast<std::size_t>(p.abe_ct_bytes(payload_bytes));
    const std::size_t guid = static_cast<std::size_t>(p.guid_bytes);

    // DS→RS is a LAN link (paper: 100 Mbps); content forwarding leaves from
    // a dedicated store port, mirroring the model's parallel paths.
    net.set_link("ds-store", "rs", {p.latency_s, p.lan_bandwidth_bps});

    // Per-subscriber matching capacity: w threads at t_PBE each.
    std::vector<std::shared_ptr<FluidServer>> matchers;
    for (std::size_t s = 0; s < p.n_subscribers; ++s) {
      matchers.push_back(
          std::make_shared<FluidServer>(p.t_pbe_match_s, p.sub_match_threads));
    }

    // RS: holds content availability per publication id; queues early
    // requests until the store arrives.
    auto stored = std::make_shared<std::set<std::size_t>>();
    auto waiting =
        std::make_shared<std::map<std::size_t, std::vector<std::string>>>();

    net.register_endpoint(
        "rs", [this, ca, stored, waiting](const std::string& from,
                                          BytesView frame) {
          const std::size_t id = frame_id(frame);
          if (frame[8] == kTagStore) {
            stored->insert(id);
            const auto it = waiting->find(id);
            if (it != waiting->end()) {
              for (const std::string& req : it->second) {
                net.send_sized("rs", req, make_frame(id, kTagContent), ca);
              }
              waiting->erase(it);
            }
          } else if (frame[8] == kTagRequest) {
            if (stored->contains(id)) {
              net.send_sized("rs", from, make_frame(id, kTagContent), ca);
            } else {
              (*waiting)[id].push_back(from);
            }
          }
        });

    // Subscribers: match on metadata arrival, request content, decrypt.
    for (std::size_t s = 0; s < p.n_subscribers; ++s) {
      const std::string name = "sub" + std::to_string(s);
      // Paper's worst case: "matching subscribers receive the encrypted
      // metadata last" — put them at the end of the fan-out order.
      const bool matches = s + n_match >= p.n_subscribers;
      net.register_endpoint(
          name, [this, &p, s, name, matches, guid, n_match,
                 matchers](const std::string&, BytesView frame) {
            const std::size_t id = frame_id(frame);
            if (frame[8] == kTagContent) {
              engine.after(p.t_abe_decrypt_s, [this, n_match] {
                if (++deliveries_seen % n_match == 0) {
                  completions.push_back(engine.now());
                }
              });
              return;
            }
            // Metadata broadcast: run the local PBE match.
            const double done = matchers[s]->finish(engine.now());
            if (matches) {
              engine.at(done, [this, name, id, guid] {
                net.send_sized(name, "rs", make_frame(id, kTagRequest),
                               std::max<std::size_t>(guid, 9));
              });
            }
          });
    }

    // DS: fans metadata out; forwards content to RS via the store port.
    net.register_endpoint(
        "ds", [this, &p, pe](const std::string&, BytesView frame) {
          const std::size_t id = frame_id(frame);
          for (std::size_t s = 0; s < p.n_subscribers; ++s) {
            net.send_sized("ds", "sub" + std::to_string(s),
                           make_frame(id, kTagMetadata), pe);
          }
        });
    net.register_endpoint("ds-store-in",
                          [this, ca](const std::string&, BytesView frame) {
                            net.send_sized("ds-store", "rs",
                                           make_frame(frame_id(frame), kTagStore),
                                           ca);
                          });
    net.register_endpoint("ds-store", [](const std::string&, BytesView) {});
    net.register_endpoint("pub-m", [](const std::string&, BytesView) {});
    net.register_endpoint("pub-c", [](const std::string&, BytesView) {});

    // Publisher: metadata and content paths run in parallel (the model's
    // max(t_p, t_b)); each publication pays its encryption times first.
    for (int k = 0; k < n_pubs; ++k) {
      const auto id = static_cast<std::size_t>(k);
      const double pub_start = static_cast<double>(k) * 1e-9;  // back-to-back
      engine.at(pub_start + p.t_pbe_encrypt_s, [this, id, pe] {
        net.send_sized("pub-m", "ds", make_frame(id, kTagMetadata), pe);
      });
      engine.at(pub_start + p.t_abe_encrypt_s, [this, id, ca] {
        net.send_sized("pub-c", "ds-store-in", make_frame(id, kTagStore), ca);
      });
    }
    obs::ClockGuard obs_clock(obs::Registry::global(), engine.clock_fn());
    engine.run();
  }

 private:
  std::size_t deliveries_seen = 0;
};

double rate_from_completions(const std::vector<double>& completions) {
  if (completions.size() < 2) return 0.0;
  const double span = completions.back() - completions.front();
  if (span <= 0) return 0.0;
  return static_cast<double>(completions.size() - 1) / span;
}

}  // namespace

double simulate_baseline_latency(const ModelParams& p, double payload_bytes) {
  BaselineSim sim(p, payload_bytes, 1);
  return sim.completions.empty() ? 0.0 : sim.completions.back();
}

double simulate_p3s_latency(const ModelParams& p, double payload_bytes) {
  P3sSim sim(p, payload_bytes, 1);
  return sim.completions.empty() ? 0.0 : sim.completions.back();
}

double simulate_baseline_throughput(const ModelParams& p, double payload_bytes,
                                    int n_pubs) {
  BaselineSim sim(p, payload_bytes, n_pubs);
  return rate_from_completions(sim.completions);
}

double simulate_p3s_throughput(const ModelParams& p, double payload_bytes,
                               int n_pubs) {
  P3sSim sim(p, payload_bytes, n_pubs);
  return rate_from_completions(sim.completions);
}

}  // namespace p3s::model
