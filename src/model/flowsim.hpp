// Packet-level cross-check of the §6.2 analytic models: the same message
// flows (Fig. 6/7) are replayed on the discrete-event network with NIC
// serialization, link latency, and crypto costs as service times. Crypto is
// charged as time, not executed — the functional correctness of the real
// protocol is covered by the integration tests; this answers only the
// performance question, exactly as the paper's models do.
#pragma once

#include "model/params.hpp"

namespace p3s::model {

/// End-to-end latency of one publication to the LAST matching subscriber.
double simulate_baseline_latency(const ModelParams& p, double payload_bytes);
double simulate_p3s_latency(const ModelParams& p, double payload_bytes);

/// Sustained publications/second measured by injecting `n_pubs` back-to-back
/// publications and timing the completion spacing.
double simulate_baseline_throughput(const ModelParams& p, double payload_bytes,
                                    int n_pubs = 24);
double simulate_p3s_throughput(const ModelParams& p, double payload_bytes,
                               int n_pubs = 24);

}  // namespace p3s::model
