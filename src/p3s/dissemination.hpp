// Dissemination Server (paper §4.1): terminates the secure channels
// ("TLS tunnels") to publishers and subscribers, fans PBE-encrypted metadata
// out to every registered subscriber, and forwards CP-ABE-encrypted payloads
// to the RS. Sees only ciphertext and sizes (curious log asserts this).
//
// Reliable path (DESIGN.md "Reliability"): a kPublishRequest is stored on
// the RS first (kStoreRequest/kStoreAck) and only then fanned out and acked
// back to the publisher, keyed by the publisher's request id so retries are
// idempotent. Broadcasts get a per-incarnation sequence index and are kept
// in a bounded replay ring so reliable subscribers can repair gaps with
// kMetaSyncRequest.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/serial.hpp"
#include "net/network.hpp"
#include "net/secure.hpp"
#include "pairing/ecies.hpp"

namespace p3s::core {

class DisseminationServer {
 public:
  /// `identity` lets a restarted DS keep its long-term channel key (from
  /// "disk"); omit it for a fresh deployment.
  DisseminationServer(net::Network& network, std::string name,
                      pairing::PairingPtr pairing, std::string rs_name,
                      Rng& rng,
                      std::optional<pairing::EciesKeyPair> identity = {});
  ~DisseminationServer();

  const std::string& name() const { return name_; }
  const pairing::Point& public_key() const { return keys_.public_key; }
  const pairing::EciesKeyPair& identity() const { return keys_; }

  std::size_t subscriber_count() const { return subscribers_.size(); }
  std::size_t publisher_count() const { return publishers_.size(); }
  /// Publish requests stored on the RS but not yet acknowledged.
  std::size_t pending_store_count() const { return pending_stores_.size(); }

  /// Curious log: per-source frame sizes. The privacy tests check that no
  /// plaintext metadata/payload/interest ever reaches the DS.
  struct Observation {
    std::string from;
    std::size_t inner_size;
    std::uint8_t inner_type;
  };
  const std::vector<Observation>& observations() const { return observations_; }

  /// Simulate a crash: drop all sessions, registrations, the metadata replay
  /// ring, and in-flight publish state (long-term key survives, as it would
  /// on disk). Clients must re-register (paper §6.1: "A restarted DS needs
  /// to wait for subscribers and publishers to (re)register"); the bumped
  /// incarnation tells reliable subscribers their sequence space reset.
  void crash_and_restart();

 private:
  struct PendingStore {
    std::string publisher;
    Bytes hve_ciphertext;
    Bytes store_frame;  // re-forwarded verbatim on publisher retry
  };

  void on_frame(const std::string& from, BytesView frame);
  void handle_inner(const std::string& from, BytesView inner);
  void send_sealed(const std::string& to, BytesView inner);
  /// Assign the next broadcast index, append to the replay ring, seal in
  /// parallel (legacy frame for fire-and-forget subscribers, indexed frame
  /// for reliable ones) and send to every registered subscriber.
  void fan_out_metadata(const Bytes& hve_ciphertext);
  void handle_store_ack(const std::string& from, Reader& r);
  void mark_done(const Bytes& request_id);

  net::Network& network_;
  std::string name_;
  pairing::PairingPtr pairing_;
  std::string rs_name_;
  pairing::EciesKeyPair keys_;
  Rng& rng_;
  std::map<std::string, net::SecureSession> sessions_;
  std::set<std::string> subscribers_;
  std::set<std::string> publishers_;
  std::vector<Observation> observations_;

  // --- reliable-layer state ------------------------------------------------
  // Incarnation is a restart counter, not a secret: it only has to differ
  // across crash_and_restart() calls on this instance so reliable
  // subscribers can detect the sequence-space reset. (A production DS would
  // persist or randomize it; drawing from rng_ here would shift the shared
  // test RNG stream and break wire-level determinism pins.)
  std::uint64_t incarnation_ = 1;
  std::uint64_t next_meta_index_ = 0;
  std::uint64_t meta_base_ = 0;
  std::deque<Bytes> meta_ring_;  // hve ciphertexts [meta_base_, next index)
  std::map<std::string, std::uint64_t> reliable_subs_;  // name → joined index
  std::map<Bytes, PendingStore> pending_stores_;
  std::set<Bytes> done_requests_;
  std::deque<Bytes> done_order_;  // FIFO eviction for done_requests_
};

}  // namespace p3s::core
