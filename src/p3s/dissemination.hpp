// Dissemination Server (paper §4.1): terminates the secure channels
// ("TLS tunnels") to publishers and subscribers, fans PBE-encrypted metadata
// out to every registered subscriber, and forwards CP-ABE-encrypted payloads
// to the RS. Sees only ciphertext and sizes (curious log asserts this).
//
// Reliable path (DESIGN.md "Reliability"): a kPublishRequest is stored on
// the RS first (kStoreRequest/kStoreAck) and only then fanned out and acked
// back to the publisher, keyed by the publisher's request id so retries are
// idempotent. Broadcasts get a per-incarnation sequence index and are kept
// in a bounded replay ring so reliable subscribers can repair gaps with
// kMetaSyncRequest.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/serial.hpp"
#include "crypto/drbg.hpp"
#include "net/network.hpp"
#include "net/secure.hpp"
#include "p3s/hardening.hpp"
#include "pairing/ecies.hpp"

namespace p3s::core {

class DisseminationServer {
 public:
  /// `identity` lets a restarted DS keep its long-term channel key (from
  /// "disk"); omit it for a fresh deployment.
  DisseminationServer(net::Network& network, std::string name,
                      pairing::PairingPtr pairing, std::string rs_name,
                      Rng& rng,
                      std::optional<pairing::EciesKeyPair> identity = {});
  ~DisseminationServer();

  const std::string& name() const { return name_; }
  const pairing::Point& public_key() const { return keys_.public_key; }
  const pairing::EciesKeyPair& identity() const { return keys_; }

  std::size_t subscriber_count() const { return subscribers_.size(); }
  std::size_t publisher_count() const { return publishers_.size(); }
  /// Publish requests stored on the RS but not yet acknowledged.
  std::size_t pending_store_count() const { return pending_stores_.size(); }

  /// Broadcast shaping (DESIGN.md §11): batched fanout with a DRBG-jittered
  /// flush, bucketed broadcast padding, and garbage cover broadcasts. All
  /// off by default; enabling creates the dedicated hardening DRBG.
  void set_hardening(DsHardening hardening);
  const DsHardening& hardening() const { return hard_; }
  /// Hardening driver: flush a due broadcast batch and inject due cover.
  /// Call whenever network time may have advanced; no-op unhardened.
  void poll();
  /// Broadcasts queued for the next batched flush.
  std::size_t queued_broadcast_count() const { return pending_fanout_.size(); }

  /// Curious log: per-source frame sizes. The privacy tests check that no
  /// plaintext metadata/payload/interest ever reaches the DS.
  struct Observation {
    std::string from;
    std::size_t inner_size;
    std::uint8_t inner_type;
  };
  const std::vector<Observation>& observations() const { return observations_; }

  /// Simulate a crash: drop all sessions, registrations, the metadata replay
  /// ring, and in-flight publish state (long-term key survives, as it would
  /// on disk). Clients must re-register (paper §6.1: "A restarted DS needs
  /// to wait for subscribers and publishers to (re)register"); the bumped
  /// incarnation tells reliable subscribers their sequence space reset.
  void crash_and_restart();

  /// Malicious-DS model (DESIGN.md §11, the attack suite's replay-griefing
  /// scenario): re-seal and re-send every retained broadcast to every
  /// connected subscriber. The DS owns the channel keys, so each replay
  /// carries a fresh channel sequence number and the transport-level replay
  /// protection cannot reject it — only the broadcast-index layer of the
  /// reliable protocol can. Fire-and-forget subscribers reprocess the
  /// metadata (match + fetch amplification); reliable ones suppress it.
  /// Returns the number of frames sent.
  std::size_t replay_broadcasts();

 private:
  struct PendingStore {
    std::string publisher;
    Bytes hve_ciphertext;
    Bytes store_frame;  // re-forwarded verbatim on publisher retry
  };

  void on_frame(const std::string& from, BytesView frame);
  void handle_inner(const std::string& from, BytesView inner);
  void send_sealed(const std::string& to, BytesView inner);
  /// Assign the next broadcast index, append to the replay ring, seal in
  /// parallel (legacy frame for fire-and-forget subscribers, indexed frame
  /// for reliable ones) and send to every registered subscriber.
  void fan_out_metadata(const Bytes& hve_ciphertext);
  /// Batching indirection: queue the broadcast for a jittered flush when
  /// hardening batches, otherwise fan out immediately (base behavior).
  void schedule_fanout(const Bytes& hve_ciphertext);
  void flush_broadcasts();
  double jittered(double base);
  void handle_store_ack(const std::string& from, Reader& r);
  void mark_done(const Bytes& request_id);

  net::Network& network_;
  std::string name_;
  pairing::PairingPtr pairing_;
  std::string rs_name_;
  pairing::EciesKeyPair keys_;
  Rng& rng_;
  std::map<std::string, net::SecureSession> sessions_;
  std::set<std::string> subscribers_;
  std::set<std::string> publishers_;
  std::vector<Observation> observations_;

  // --- reliable-layer state ------------------------------------------------
  // Incarnation is a restart counter, not a secret: it only has to differ
  // across crash_and_restart() calls on this instance so reliable
  // subscribers can detect the sequence-space reset. (A production DS would
  // persist or randomize it; drawing from rng_ here would shift the shared
  // test RNG stream and break wire-level determinism pins.)
  std::uint64_t incarnation_ = 1;
  std::uint64_t next_meta_index_ = 0;
  std::uint64_t meta_base_ = 0;
  std::deque<Bytes> meta_ring_;  // hve ciphertexts [meta_base_, next index)
  std::map<std::string, std::uint64_t> reliable_subs_;  // name → joined index
  std::map<Bytes, PendingStore> pending_stores_;
  std::set<Bytes> done_requests_;
  std::deque<Bytes> done_order_;  // FIFO eviction for done_requests_

  // --- broadcast shaping (DESIGN.md §11) -----------------------------------
  // Hardening randomness comes from a dedicated DRBG, not rng_: enabling
  // shaping must not shift the shared test RNG stream (the fanout seals'
  // wire-determinism pin depends on it). Cover broadcasts DO consume rng_
  // seal nonces like any real fanout — that is inherent to being real
  // broadcasts.
  DsHardening hard_;
  std::optional<crypto::Drbg> hard_drbg_;
  std::vector<Bytes> pending_fanout_;  // queued hve cts awaiting flush
  std::optional<double> fanout_deadline_;
  std::optional<double> next_cover_;
  std::size_t last_hve_size_ = 256;  // cover broadcasts mimic real ct size
};

}  // namespace p3s::core
