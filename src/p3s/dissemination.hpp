// Dissemination Server (paper §4.1): terminates the secure channels
// ("TLS tunnels") to publishers and subscribers, fans PBE-encrypted metadata
// out to every registered subscriber, and forwards CP-ABE-encrypted payloads
// to the RS. Sees only ciphertext and sizes (curious log asserts this).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/secure.hpp"
#include "pairing/ecies.hpp"

namespace p3s::core {

class DisseminationServer {
 public:
  /// `identity` lets a restarted DS keep its long-term channel key (from
  /// "disk"); omit it for a fresh deployment.
  DisseminationServer(net::Network& network, std::string name,
                      pairing::PairingPtr pairing, std::string rs_name,
                      Rng& rng,
                      std::optional<pairing::EciesKeyPair> identity = {});
  ~DisseminationServer();

  const std::string& name() const { return name_; }
  const pairing::Point& public_key() const { return keys_.public_key; }
  const pairing::EciesKeyPair& identity() const { return keys_; }

  std::size_t subscriber_count() const { return subscribers_.size(); }
  std::size_t publisher_count() const { return publishers_.size(); }

  /// Curious log: per-source frame sizes. The privacy tests check that no
  /// plaintext metadata/payload/interest ever reaches the DS.
  struct Observation {
    std::string from;
    std::size_t inner_size;
    std::uint8_t inner_type;
  };
  const std::vector<Observation>& observations() const { return observations_; }

  /// Simulate a crash: drop all sessions and registrations (long-term key
  /// survives, as it would on disk). Clients must re-register (paper §6.1:
  /// "A restarted DS needs to wait for subscribers and publishers to
  /// (re)register").
  void crash_and_restart();

 private:
  void on_frame(const std::string& from, BytesView frame);
  void handle_inner(const std::string& from, BytesView inner);
  void send_sealed(const std::string& to, BytesView inner);

  net::Network& network_;
  std::string name_;
  pairing::PairingPtr pairing_;
  std::string rs_name_;
  pairing::EciesKeyPair keys_;
  Rng& rng_;
  std::map<std::string, net::SecureSession> sessions_;
  std::set<std::string> subscribers_;
  std::set<std::string> publishers_;
  std::vector<Observation> observations_;
};

}  // namespace p3s::core
