// P3S wire protocol frames. Outer frames cross the Network; "inner" frames
// travel sealed inside the DS secure channel. Anonymizable request frames
// (to RS / PBE-TS) carry a reply tag the anonymizer rewrites so services can
// answer without learning the requester (paper §4.3).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "common/guid.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"

namespace p3s::core {

enum class FrameType : std::uint8_t {
  // --- DS channel layer ---
  kChannelHello = 1,    // client → DS: ECIES session establishment blob
  kChannelRecord = 2,   // both directions: sealed inner frame
  // --- inner frames (inside the DS channel) ---
  kRegisterSubscriber = 3,  // client → DS
  kRegisterPublisher = 4,   // client → DS
  kPublishMetadata = 5,     // publisher → DS: HVE-encrypted GUID
  kPublishContent = 6,      // publisher → DS: (GUID, TTL, CP-ABE payload)
  kMetadataDelivery = 7,    // DS → subscriber: HVE-encrypted GUID
  kAck = 8,
  // --- DS → RS (LAN) ---
  kStoreContent = 9,        // (GUID, TTL, CP-ABE payload)
  // --- anonymization service ---
  kAnonForward = 10,        // client → anon: {destination, request frame}
  // --- RS request/response ---
  kContentRequest = 11,     // {tag, ECIES(Ks, GUID)}
  kContentResponse = 12,    // {tag, AEAD_Ks(status ++ payload)}
  // --- PBE-TS request/response ---
  kTokenRequest = 13,       // {tag, ECIES(Ks, certificate, interest)}
  kTokenResponse = 14,      // {tag, AEAD_Ks(status ++ token)}
  // --- ARA registration (Fig. 2 over the network) ---
  kAraRegisterSubscriber = 15,  // {tag, ECIES(Ks, identity)}
  kAraRegisterPublisher = 16,   // {tag, ECIES(Ks, identity)}
  kAraResponse = 17,            // {tag, AEAD_Ks(status ++ credentials)}
  // --- clean departure (inner frame on the DS channel) ---
  kUnregister = 18,             // client → DS: remove my registration
  // --- reliable request layer (DESIGN.md "Reliability") ---
  // Inner frames on the DS channel unless noted. The reliable publish path
  // replaces the fire-and-forget kPublishContent/kPublishMetadata pair with
  // one request the publisher may retry: the DS stores first (kStoreRequest
  // to the RS, plain LAN frame like kStoreContent), fans the metadata out
  // only after the RS acknowledged, then acks the publisher — so a metadata
  // match can never race an unstored payload.
  kPublishRequest = 19,   // pub → DS: {request_id}{content body}{hve ct}
  kPublishAck = 20,       // DS → pub: {request_id}
  kMetadataDeliverySeq = 21,  // DS → sub: {u64 index}{hve ct}
  kMetaSyncRequest = 22,  // sub → DS: {u64 from_index} (gap repair/heartbeat)
  kMetaSyncInfo = 23,     // DS → sub: {u64 incarnation}{u64 next_index}
  kStoreRequest = 24,     // DS → RS (LAN): {request_id}{content body}
  kStoreAck = 25,         // RS → DS (LAN): {request_id}
};

/// Idempotency key for reliable publish/store: fixed-size random id drawn by
/// the publisher, echoed through DS → RS → DS → publisher acks.
inline constexpr std::size_t kRequestIdSize = 16;

/// Frame header parse: returns the type and leaves `r` positioned at the
/// body. Throws on truncated input or unknown type.
FrameType read_frame_type(Reader& r);

/// {type}{body...} helpers.
Bytes frame(FrameType type, BytesView body);
Bytes frame(FrameType type);

// Tagged request/response bodies (anonymizer-compatible).
struct TaggedBody {
  std::uint64_t tag = 0;
  Bytes payload;
};
Bytes tagged_frame(FrameType type, std::uint64_t tag, BytesView payload);
TaggedBody read_tagged(Reader& r);

// --- traffic-shape hardening (DESIGN.md §11) -------------------------------
// Frames that cross an eavesdropper-visible link may carry one OPTIONAL
// trailing bytes field of rng-drawn pad so their wire size rounds up to a
// configured bucket; size then stops fingerprinting the content. Readers
// accept-and-discard the field whether or not padding is configured, so
// padded and unpadded deployments interoperate.
/// Consume the optional trailing pad field, then require the end of `r`.
void skip_pad(Reader& r);
/// Append a pad field so `frame` sizes to the next multiple of `bucket`
/// (bucket 0 = passthrough). Use on frames whose readers end in skip_pad().
Bytes pad_to_bucket(Bytes frame, std::size_t bucket, Rng& rng);

// kPublishContent / kStoreContent body. The GUID field is either the raw
// 16-byte GUID (paper Fig. 4, in the clear) or — when the publisher enables
// the footnote-1 mitigation — an ECIES envelope under the RS public key, so
// eavesdroppers on the publisher→DS→RS path cannot learn the GUID.
struct ContentBody {
  bool guid_wrapped = false;
  Bytes guid_field;        // raw GUID or ECIES(RS_pk, GUID)
  double ttl_seconds = 0;  // T_pub: publisher's deletion intent
  Bytes abe_ciphertext;
};
Bytes content_body(const ContentBody& c);
ContentBody read_content(Reader& r);

// kPublishRequest body: the idempotency key, the content submission, and the
// HVE metadata ciphertext in one frame (retried atomically).
struct PublishRequestBody {
  Bytes request_id;  // kRequestIdSize bytes
  ContentBody content;
  Bytes hve_ciphertext;
};
Bytes publish_request_body(const PublishRequestBody& b);
PublishRequestBody read_publish_request(Reader& r);

// kStoreRequest body: acknowledged variant of kStoreContent.
struct StoreRequestBody {
  Bytes request_id;  // kRequestIdSize bytes
  ContentBody content;
};
Bytes store_request_body(const StoreRequestBody& b);
StoreRequestBody read_store_request(Reader& r);

// Status bytes inside AEAD-protected responses.
inline constexpr std::uint8_t kStatusOk = 0;
inline constexpr std::uint8_t kStatusNotFound = 1;
inline constexpr std::uint8_t kStatusRejected = 2;

}  // namespace p3s::core
