// PBE Token Server (paper §4.1, §4.3 Fig. 3): receives the 3-tuple
// (Ks, subscriber certificate, plaintext predicate) ECIES-encrypted under
// its public key, validates the certificate, computes the HVE token for the
// predicate, and returns it AEAD-encrypted under Ks. When the request
// arrives via the anonymization service, the PBE-TS sees the plaintext
// predicate but cannot bind it to a subscriber identity — the exact
// visibility trade-off the paper analyzes (and lists as an open
// shortcoming in §8).
#pragma once

#include <string>
#include <vector>

#include "net/network.hpp"
#include "p3s/credentials.hpp"
#include "pairing/ecies.hpp"

namespace p3s::core {

class PbeTokenServer {
 public:
  PbeTokenServer(net::Network& network, std::string name,
                 pairing::PairingPtr pairing, pbe::HveKeys hve_keys,
                 pbe::MetadataSchema schema, pairing::Point ara_cert_pk,
                 Rng& rng);
  ~PbeTokenServer();

  const std::string& name() const { return name_; }
  const pairing::Point& public_key() const { return keys_.public_key; }

  /// Curious log: every plaintext predicate this HBC service has seen,
  /// together with the network principal it arrived from ("anon" when the
  /// anonymizer is in use). The privacy tests assert identity unlinkability.
  struct SeenPredicate {
    std::string network_from;
    pbe::Interest interest;
  };
  const std::vector<SeenPredicate>& seen_predicates() const {
    return seen_predicates_;
  }
  std::size_t rejected_requests() const { return rejected_; }

 private:
  void on_frame(const std::string& from, BytesView frame);

  net::Network& network_;
  std::string name_;
  pairing::PairingPtr pairing_;
  pbe::HveKeys hve_keys_;
  pbe::MetadataSchema schema_;
  pairing::Point ara_cert_pk_;
  pairing::EciesKeyPair keys_;
  Rng& rng_;
  std::vector<SeenPredicate> seen_predicates_;
  std::size_t rejected_ = 0;
};

}  // namespace p3s::core
