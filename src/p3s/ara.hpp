// Attribute-Based Access Control and Registration Authority (paper §4.1).
// The ARA is the trust anchor: it runs CP-ABE setup, provisions the PBE-TS
// with HVE keys, signs role certificates, and hands publishers/subscribers
// their credentials at registration. Per the paper's analysis (§6.1) the
// ARA is assumed trusted and "only interacts with other components during
// registration" — so registration is modeled as a trusted local exchange
// rather than a network protocol.
#pragma once

#include <set>
#include <string>

#include "p3s/credentials.hpp"

namespace p3s::core {

class Ara {
 public:
  /// Performs CP-ABE and HVE setup over the schema's bit width. When
  /// `epoch` is set the schema is extended with the epoch attribute
  /// (token revocation, §6.1). When `embedded_token_server` is true,
  /// subscriber credentials include the HVE master key (§8 alternative
  /// configuration: PBE-TS embedded in each subscriber).
  Ara(pairing::PairingPtr pairing, pbe::MetadataSchema schema, Rng& rng,
      std::optional<pbe::EpochPolicy> epoch = {},
      bool embedded_token_server = false);

  /// Provisioning: the HVE master keys handed to the PBE-TS at deployment.
  const pbe::HveKeys& hve_keys() const { return hve_keys_; }
  /// The certificate-authority public key services use to verify certs.
  const pairing::Point& certificate_pk() const { return cert_keys_.public_key; }
  const pbe::MetadataSchema& schema() const { return schema_; }
  const abe::CpabePublicKey& abe_pk() const { return abe_keys_.pk; }

  /// The ARA learns the service directory when the services are deployed.
  void set_service_directory(ServiceDirectory services);

  /// Register a subscriber: issues a CP-ABE key for `attributes` and a
  /// pseudonymous subscriber certificate.
  SubscriberCredentials register_subscriber(
      const std::string& pseudonym, const std::set<std::string>& attributes,
      Rng& rng) const;

  /// Register a publisher: hands out the public parameters.
  PublisherCredentials register_publisher(const std::string& pseudonym,
                                          Rng& rng) const;

 private:
  Certificate issue_certificate(const std::string& pseudonym,
                                Certificate::Role role, Rng& rng) const;

  pairing::PairingPtr pairing_;
  std::optional<pbe::EpochPolicy> epoch_;
  pbe::MetadataSchema schema_;
  abe::CpabeKeys abe_keys_;
  pbe::HveKeys hve_keys_;
  pairing::SchnorrKeyPair cert_keys_;
  ServiceDirectory services_;
  bool embedded_token_server_;
};

}  // namespace p3s::core
