// Traffic-shape hardening knobs (DESIGN.md §11 "Threat model & adversarial
// suite"). The attack literature the adversarial suite executes (Vivek's
// frequency/inference probes; the survey's intersection and timing attacks)
// wins through traffic SHAPE — sizes, counts, timing — which the base
// protocol's cryptography does not hide. These configs enable the three
// standard mixes of countermeasures, all OFF by default so the base wire
// protocol stays bit-identical:
//
//   * batched mixing with a DRBG-jittered flush (anonymizer and DS): held
//     frames leave in a shuffled burst at an unpredictable time, so an
//     observer cannot link a request to its trigger by FIFO order or timing;
//   * padding to bucketed frame sizes: wire size stops fingerprinting which
//     metadata/payload a frame carries;
//   * cover traffic: decoy fetches (anonymizer) and garbage broadcasts (DS)
//     that give a lone real frame a crowd to hide in.
//
// Every knob draws its randomness from a dedicated crypto::Drbg seeded from
// the config, NEVER from the component's shared test RNG — enabling
// hardening must not shift the main RNG stream (wire-level determinism pins
// in other tests depend on it).
#pragma once

#include <cstddef>
#include <cstdint>

namespace p3s::core {

/// Anonymizer mixing (src/p3s/anonymizer): batch, shuffle, jitter, decoys.
struct AnonHardening {
  /// Hold forwarded requests and flush them as a shuffled batch instead of
  /// relaying immediately (immediate relay preserves FIFO order and timing —
  /// the linkage an eavesdropper exploits).
  bool batching = false;
  /// Flush as soon as this many requests are held.
  std::size_t batch_size = 4;
  /// ... or when the oldest held request has waited this long (network time
  /// units), plus jitter so the flush time itself leaks nothing.
  double flush_interval = 200.0;
  double flush_jitter = 100.0;  // uniform [0, jitter) extra, DRBG-drawn
  /// Top a short batch up to this size with decoy RS fetches before
  /// flushing (0 = never). A single-subscriber batch has no crowd to hide
  /// in: it is padded with decoys, or held until the deadline forces it out.
  std::size_t min_batch = 0;
  /// Pad relayed requests and responses to this bucket (0 = off).
  std::size_t pad_bucket = 0;
  /// Seed for the dedicated mixing/decoy DRBG.
  std::uint64_t seed = 0xa70'11;

  bool any_enabled() const {
    return batching || min_batch > 0 || pad_bucket > 0;
  }
};

/// Dissemination-server broadcast shaping: batch publishes, pad broadcast
/// frames, inject garbage cover broadcasts.
struct DsHardening {
  /// Queue fanouts and flush them as one shuffled burst: a reacting
  /// subscriber is then attributable only to the batch, not to a single
  /// publication (defeats per-round frequency fingerprinting and blunts the
  /// chosen-publication probe oracle).
  bool batching = false;
  std::size_t batch_size = 4;
  double flush_interval = 200.0;
  double flush_jitter = 100.0;  // uniform [0, jitter) extra, DRBG-drawn
  /// Pad broadcast inner frames to this bucket (0 = off); sealed record
  /// sizes then stop fingerprinting the metadata ciphertext.
  std::size_t pad_bucket = 0;
  /// Inject a garbage broadcast roughly every this many network time units
  /// (0 = off). Subscribers treat garbage as a universal non-match, so cover
  /// costs them no pairing work beyond the parse attempt.
  double cover_interval = 0.0;
  std::uint64_t seed = 0xd5'c0;

  bool any_enabled() const {
    return batching || pad_bucket > 0 || cover_interval > 0.0;
  }
};

}  // namespace p3s::core
