#include "p3s/registration.hpp"

#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

AraServer::AraServer(net::Network& network, std::string name, const Ara& ara,
                     Rng& rng)
    : network_(network),
      name_(std::move(name)),
      ara_(ara),
      keys_(pairing::ecies_keygen(*ara.abe_pk().pairing, rng)),
      rng_(rng) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

AraServer::~AraServer() { network_.unregister_endpoint(name_); }

void AraServer::enroll_subscriber(const std::string& identity,
                                  std::set<std::string> attributes) {
  subscriber_roster_[identity] = std::move(attributes);
}

void AraServer::enroll_publisher(const std::string& identity) {
  publisher_roster_.insert(identity);
}

void AraServer::on_frame(const std::string& from, BytesView data) {
  try {
    const pairing::PairingPtr pairing = ara_.abe_pk().pairing;
    Reader r(data);
    const FrameType type = read_frame_type(r);
    if (type != FrameType::kAraRegisterSubscriber &&
        type != FrameType::kAraRegisterPublisher) {
      log_warn("ara") << "unexpected frame from " << from;
      return;
    }
    const TaggedBody body = read_tagged(r);
    const auto plain =
        pairing::ecies_decrypt(*pairing, keys_.secret, body.payload);
    if (!plain.has_value()) {
      ++rejected_;
      return;
    }
    Reader pr(*plain);
    const Bytes ks = pr.bytes();
    const std::string identity = pr.str();
    pr.expect_done();

    auto respond = [&](std::uint8_t status, BytesView payload) {
      Writer inner;
      inner.u8(status);
      inner.bytes(payload);
      const Bytes sealed =
          crypto::aead_encrypt(ks, inner.data(), str_to_bytes("ara-resp"), rng_)
              .serialize();
      network_.send(name_, from,
                    tagged_frame(FrameType::kAraResponse, body.tag, sealed));
    };

    if (type == FrameType::kAraRegisterSubscriber) {
      const auto it = subscriber_roster_.find(identity);
      if (it == subscriber_roster_.end()) {
        ++rejected_;
        respond(kStatusRejected, {});
        return;
      }
      const SubscriberCredentials creds =
          ara_.register_subscriber(identity, it->second, rng_);
      respond(kStatusOk, creds.serialize(pairing));
    } else {
      if (!publisher_roster_.contains(identity)) {
        ++rejected_;
        respond(kStatusRejected, {});
        return;
      }
      const PublisherCredentials creds = ara_.register_publisher(identity, rng_);
      respond(kStatusOk, creds.serialize(pairing));
    }
  } catch (const std::exception& e) {
    ++rejected_;
    log_warn("ara") << "bad registration from " << from << ": " << e.what();
  }
}

namespace {
// Drive one request/response exchange on a synchronous network: register a
// temporary endpoint, send, capture the response delivered inline.
std::optional<Bytes> exchange(net::Network& network,
                              const std::string& client_endpoint,
                              const std::string& ara_name,
                              const pairing::Pairing& pairing,
                              const pairing::Point& ara_pk, FrameType type,
                              const std::string& identity, Rng& rng) {
  const Bytes ks = rng.bytes(32);
  Writer plain;
  plain.bytes(ks);
  plain.str(identity);
  const Bytes blob = pairing::ecies_encrypt(pairing, ara_pk, plain.data(), rng);

  std::optional<Bytes> result;
  const std::string temp = client_endpoint + ".reg";
  network.register_endpoint(temp, [&](const std::string&, BytesView data) {
    try {
      Reader r(data);
      if (read_frame_type(r) != FrameType::kAraResponse) return;
      const TaggedBody body = read_tagged(r);
      const auto inner = crypto::aead_decrypt(
          ks, crypto::AeadCiphertext::deserialize(body.payload),
          str_to_bytes("ara-resp"));
      if (!inner.has_value()) return;
      Reader ir(*inner);
      const std::uint8_t status = ir.u8();
      Bytes creds = ir.bytes();
      ir.expect_done();
      if (status == kStatusOk) result = std::move(creds);
    } catch (const std::exception&) {
      // leave result empty
    }
  });
  network.send(temp, ara_name, tagged_frame(type, 1, blob));
  network.unregister_endpoint(temp);
  return result;
}
}  // namespace

std::optional<SubscriberCredentials> register_subscriber_remote(
    net::Network& network, const std::string& client_endpoint,
    const std::string& ara_name, const pairing::Point& ara_pk,
    pairing::PairingPtr pairing, const std::string& identity, Rng& rng) {
  const auto blob =
      exchange(network, client_endpoint, ara_name, *pairing, ara_pk,
               FrameType::kAraRegisterSubscriber, identity, rng);
  if (!blob.has_value()) return std::nullopt;
  try {
    return SubscriberCredentials::deserialize(std::move(pairing), *blob);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<PublisherCredentials> register_publisher_remote(
    net::Network& network, const std::string& client_endpoint,
    const std::string& ara_name, const pairing::Point& ara_pk,
    pairing::PairingPtr pairing, const std::string& identity, Rng& rng) {
  const auto blob =
      exchange(network, client_endpoint, ara_name, *pairing, ara_pk,
               FrameType::kAraRegisterPublisher, identity, rng);
  if (!blob.has_value()) return std::nullopt;
  try {
    return PublisherCredentials::deserialize(std::move(pairing), *blob);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace p3s::core
