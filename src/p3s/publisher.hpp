// Publisher client library (paper §4.3, Fig. 4). The publisher never learns
// who subscribes or whether anything matched: it PBE-encrypts the GUID under
// the item's metadata, CP-ABE-encrypts (GUID, payload) under its access
// policy, and hands both to the DS over the secure channel.
//
// With ReliabilityConfig.enabled the fire-and-forget submission becomes a
// retried request: content + metadata travel in one kPublishRequest keyed by
// a random request id, the DS acks only after the RS stored the payload, and
// poll() re-sends past-deadline requests with capped exponential backoff
// (re-establishing the channel after repeated timeouts — DS restart
// re-registration). Retries are idempotent end to end: the DS dedupes by
// request id, the RS overwrites by GUID.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/guid.hpp"
#include "net/network.hpp"
#include "net/secure.hpp"
#include "p3s/credentials.hpp"
#include "p3s/reliability.hpp"

namespace p3s::core {

/// One item of a batch publish: the same inputs publish() takes.
struct PublishItem {
  pbe::Metadata metadata;
  Bytes payload;
  abe::PolicyNode policy;
  double ttl_seconds = 3600.0;
};

class Publisher {
 public:
  Publisher(net::Network& network, std::string name,
            PublisherCredentials credentials, Rng& rng,
            ReliabilityConfig reliability = {});
  ~Publisher();

  /// Establish the DS channel and register as a publisher.
  void connect();
  bool connected() const { return connected_; }
  /// Clean departure: deregister from the DS and drop the channel.
  void disconnect();

  /// Publish one item. `ttl_seconds` is the publisher's deletion intent
  /// (T_pub). Returns the fresh GUID. Throws std::logic_error when not
  /// connected, std::invalid_argument on metadata/policy errors. When the
  /// credentials carry an epoch policy, the metadata is stamped with the
  /// current epoch automatically.
  Guid publish(const pbe::Metadata& metadata, BytesView payload,
               const abe::PolicyNode& policy, double ttl_seconds = 3600.0);

  /// Publish a batch. The per-item cryptography (CP-ABE encrypt, HVE
  /// encrypt, optional GUID super-encryption) runs as pool tasks; the
  /// channel seals and network sends stay serial in item order (content
  /// before metadata per item, as in publish()). Each item draws its
  /// randomness from a dedicated DRBG seeded serially from the publisher's
  /// RNG, so the produced traffic is bit-identical for any pool size.
  /// Returns the fresh GUIDs in item order.
  std::vector<Guid> publish_batch(const std::vector<PublishItem>& items);

  /// Reliable-mode driver: re-send past-deadline publish requests and the
  /// registration, with backoff + jitter from the client DRBG. Call it
  /// whenever network time may have advanced. No-op when reliability is off.
  void poll();

  /// Footnote-1 mitigation: super-encrypt the GUID in the content
  /// submission under the RS public key so eavesdroppers (and the DS)
  /// cannot learn it. Off by default to match the base paper protocol.
  void set_guid_super_encryption(bool on) { super_encrypt_guid_ = on; }

  const std::string& name() const { return name_; }

  // --- reliable-layer observable state ------------------------------------
  /// Publishes not yet acknowledged by the DS.
  std::size_t pending_publish_count() const { return pending_.size(); }
  /// Publishes abandoned after max_attempts (the surfaced error the paper's
  /// §6.1 "detect at the application level" asks for).
  std::size_t publish_failures() const { return publish_failures_; }
  std::size_t retries() const { return retries_; }

 private:
  struct EncodedItem {
    Bytes content_body;  // serialized ContentBody
    Bytes hve_ciphertext;
  };
  struct PendingPublish {
    Bytes request_frame;  // full kPublishRequest inner frame, re-sealed as is
    double deadline = 0.0;
    std::size_t attempts = 1;  // sends so far
  };

  void on_frame(const std::string& from, BytesView frame);
  void send_sealed(BytesView inner);
  void submit_item(const EncodedItem& enc);
  /// The pure (sendless) per-item cryptography, shared by publish() and the
  /// batch path; safe to run concurrently for distinct items when each call
  /// gets its own Rng.
  EncodedItem encode_item(const pbe::Metadata& metadata, BytesView payload,
                          const abe::PolicyNode& policy, double ttl_seconds,
                          const Guid& guid, Rng& rng, double now);

  net::Network& network_;
  std::string name_;
  PublisherCredentials creds_;
  Rng& rng_;
  ReliabilityConfig reliability_;
  std::optional<net::SecureSession> session_;
  bool connected_ = false;
  bool super_encrypt_guid_ = false;

  std::map<Bytes, PendingPublish> pending_;
  std::optional<double> register_deadline_;
  std::size_t register_attempts_ = 0;
  std::size_t publish_failures_ = 0;
  std::size_t retries_ = 0;
};

}  // namespace p3s::core
