// Network registration protocol (paper Fig. 2): clients contact the ARA
// over the wire, authenticate by identity (the ARA holds a provisioned
// roster of who gets which CP-ABE attributes — attribute assignment is an
// out-of-band administrative decision, never client-chosen), and receive
// their credentials encrypted under a request-scoped symmetric key Ks.
//
// The ARA public key is the deployment's trust anchor, assumed to be known
// a priori (like a CA certificate).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "net/network.hpp"
#include "p3s/ara.hpp"
#include "pairing/ecies.hpp"

namespace p3s::core {

/// The ARA's network front end.
class AraServer {
 public:
  AraServer(net::Network& network, std::string name, const Ara& ara, Rng& rng);
  ~AraServer();

  const std::string& name() const { return name_; }
  const pairing::Point& public_key() const { return keys_.public_key; }

  /// Provision the roster: which identities may register, and with which
  /// CP-ABE attributes (subscribers only).
  void enroll_subscriber(const std::string& identity,
                         std::set<std::string> attributes);
  void enroll_publisher(const std::string& identity);

  std::size_t rejected_requests() const { return rejected_; }

 private:
  void on_frame(const std::string& from, BytesView frame);

  net::Network& network_;
  std::string name_;
  const Ara& ara_;
  pairing::EciesKeyPair keys_;
  Rng& rng_;
  std::map<std::string, std::set<std::string>> subscriber_roster_;
  std::set<std::string> publisher_roster_;
  std::size_t rejected_ = 0;
};

/// Client-side registration calls. These drive the Fig. 2 exchange on a
/// synchronous network (DirectNetwork); they return nullopt when the ARA
/// rejects the identity or the exchange fails.
std::optional<SubscriberCredentials> register_subscriber_remote(
    net::Network& network, const std::string& client_endpoint,
    const std::string& ara_name, const pairing::Point& ara_pk,
    pairing::PairingPtr pairing, const std::string& identity, Rng& rng);

std::optional<PublisherCredentials> register_publisher_remote(
    net::Network& network, const std::string& client_endpoint,
    const std::string& ara_name, const pairing::Point& ara_pk,
    pairing::PairingPtr pairing, const std::string& identity, Rng& rng);

}  // namespace p3s::core
