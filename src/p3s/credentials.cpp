#include "p3s/credentials.hpp"

#include <stdexcept>

#include "common/serial.hpp"

namespace p3s::core {

Bytes Certificate::signed_body() const {
  Writer w;
  w.str("p3s-cert-v1");
  w.str(pseudonym);
  w.u8(static_cast<std::uint8_t>(role));
  return w.take();
}

Bytes Certificate::serialize(const pairing::Pairing& pairing) const {
  Writer w;
  w.str(pseudonym);
  w.u8(static_cast<std::uint8_t>(role));
  w.bytes(signature.serialize(pairing));
  return w.take();
}

Certificate Certificate::deserialize(const pairing::Pairing& pairing,
                                     BytesView data) {
  Reader r(data);
  Certificate cert;
  cert.pseudonym = r.str();
  const std::uint8_t role = r.u8();
  if (role != 1 && role != 2) {
    throw std::invalid_argument("Certificate: bad role");
  }
  cert.role = static_cast<Role>(role);
  cert.signature = pairing::SchnorrSignature::deserialize(pairing, r.bytes());
  r.expect_done();
  return cert;
}

bool Certificate::verify(const pairing::Pairing& pairing,
                         const pairing::Point& ara_pk) const {
  return pairing::schnorr_verify(pairing, ara_pk, signed_body(), signature);
}

Bytes ServiceDirectory::serialize(const pairing::Pairing& pairing) const {
  Writer w;
  w.str(ds_name);
  w.str(rs_name);
  w.str(pbe_ts_name);
  w.str(anonymizer_name);
  w.bytes(pairing.serialize_g1(ds_pk));
  w.bytes(pairing.serialize_g1(rs_pk));
  w.bytes(pairing.serialize_g1(pbe_ts_pk));
  return w.take();
}

ServiceDirectory ServiceDirectory::deserialize(const pairing::Pairing& pairing,
                                               BytesView data) {
  Reader r(data);
  ServiceDirectory d;
  d.ds_name = r.str();
  d.rs_name = r.str();
  d.pbe_ts_name = r.str();
  d.anonymizer_name = r.str();
  d.ds_pk = pairing.deserialize_g1(r.bytes());
  d.rs_pk = pairing.deserialize_g1(r.bytes());
  d.pbe_ts_pk = pairing.deserialize_g1(r.bytes());
  r.expect_done();
  return d;
}

namespace {
template <typename T, typename Fn>
void write_optional(Writer& w, const std::optional<T>& v, Fn&& ser) {
  w.u8(v.has_value() ? 1 : 0);
  if (v.has_value()) w.bytes(ser(*v));
}
}  // namespace

Bytes SubscriberCredentials::serialize(pairing::PairingPtr pairing) const {
  Writer w;
  w.bytes(schema.serialize());
  w.bytes(abe_pk.serialize());
  w.bytes(abe_sk.serialize(*pairing));
  w.bytes(certificate.serialize(*pairing));
  w.bytes(services.serialize(*pairing));
  write_optional(w, epoch, [](const pbe::EpochPolicy& e) { return e.serialize(); });
  write_optional(w, embedded_hve,
                 [](const pbe::HveKeys& k) { return k.serialize(); });
  return w.take();
}

SubscriberCredentials SubscriberCredentials::deserialize(
    pairing::PairingPtr pairing, BytesView data) {
  Reader r(data);
  const pbe::MetadataSchema schema = pbe::MetadataSchema::deserialize(r.bytes());
  auto abe_pk = abe::CpabePublicKey::deserialize(pairing, r.bytes());
  auto abe_sk = abe::CpabeSecretKey::deserialize(*pairing, r.bytes());
  auto cert = Certificate::deserialize(*pairing, r.bytes());
  auto services = ServiceDirectory::deserialize(*pairing, r.bytes());
  SubscriberCredentials creds{schema,
                              std::move(abe_pk),
                              std::move(abe_sk),
                              std::move(cert),
                              std::move(services),
                              std::nullopt,
                              std::nullopt};
  if (r.u8() != 0) creds.epoch = pbe::EpochPolicy::deserialize(r.bytes());
  if (r.u8() != 0) {
    creds.embedded_hve = pbe::HveKeys::deserialize(pairing, r.bytes());
  }
  r.expect_done();
  return creds;
}

Bytes PublisherCredentials::serialize(pairing::PairingPtr pairing) const {
  Writer w;
  w.bytes(schema.serialize());
  w.bytes(abe_pk.serialize());
  w.bytes(hve_pk.serialize());
  w.bytes(certificate.serialize(*pairing));
  w.bytes(services.serialize(*pairing));
  write_optional(w, epoch, [](const pbe::EpochPolicy& e) { return e.serialize(); });
  return w.take();
}

PublisherCredentials PublisherCredentials::deserialize(
    pairing::PairingPtr pairing, BytesView data) {
  Reader r(data);
  const pbe::MetadataSchema schema = pbe::MetadataSchema::deserialize(r.bytes());
  auto abe_pk = abe::CpabePublicKey::deserialize(pairing, r.bytes());
  auto hve_pk = pbe::HvePublicKey::deserialize(pairing, r.bytes());
  auto cert = Certificate::deserialize(*pairing, r.bytes());
  auto services = ServiceDirectory::deserialize(*pairing, r.bytes());
  PublisherCredentials creds{schema,          std::move(abe_pk),
                             std::move(hve_pk), std::move(cert),
                             std::move(services), std::nullopt};
  if (r.u8() != 0) creds.epoch = pbe::EpochPolicy::deserialize(r.bytes());
  r.expect_done();
  return creds;
}

}  // namespace p3s::core
