#include "p3s/ara.hpp"

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::core {

namespace {
obs::Counter& registrations(const char* role) {
  return obs::Registry::global().counter(obs::names::kAraRegistrationsTotal,
                                         {{"role", role}});
}
}  // namespace

Ara::Ara(pairing::PairingPtr pairing, pbe::MetadataSchema schema, Rng& rng,
         std::optional<pbe::EpochPolicy> epoch, bool embedded_token_server)
    : pairing_(pairing),
      epoch_(std::move(epoch)),
      schema_(epoch_.has_value() ? epoch_->extend(schema) : std::move(schema)),
      abe_keys_(abe::cpabe_setup(pairing, rng)),
      hve_keys_(pbe::hve_setup(pairing, schema_.width(), rng)),
      cert_keys_(pairing::schnorr_keygen(*pairing, rng)),
      embedded_token_server_(embedded_token_server) {}

void Ara::set_service_directory(ServiceDirectory services) {
  services_ = std::move(services);
}

Certificate Ara::issue_certificate(const std::string& pseudonym,
                                   Certificate::Role role, Rng& rng) const {
  Certificate cert;
  cert.pseudonym = pseudonym;
  cert.role = role;
  cert.signature = pairing::schnorr_sign(*pairing_, cert_keys_.secret,
                                         cert.signed_body(), rng);
  return cert;
}

SubscriberCredentials Ara::register_subscriber(
    const std::string& pseudonym, const std::set<std::string>& attributes,
    Rng& rng) const {
  SubscriberCredentials creds{
      schema_,
      abe_keys_.pk,
      abe::cpabe_keygen(abe_keys_, attributes, rng),
      issue_certificate(pseudonym, Certificate::Role::kSubscriber, rng),
      services_,
      epoch_,
      embedded_token_server_ ? std::optional<pbe::HveKeys>(hve_keys_)
                             : std::nullopt};
  registrations(obs::labels::kRoleSubscriber).inc();
  return creds;
}

PublisherCredentials Ara::register_publisher(const std::string& pseudonym,
                                             Rng& rng) const {
  PublisherCredentials creds{
      schema_,
      abe_keys_.pk,
      hve_keys_.pk,
      issue_certificate(pseudonym, Certificate::Role::kPublisher, rng),
      services_,
      epoch_};
  registrations(obs::labels::kRolePublisher).inc();
  return creds;
}

}  // namespace p3s::core
