// Subscriber client library (paper §4.3, Figs. 3 & 4). The subscriber:
//  1. obtains PBE tokens for its interests from the PBE-TS via the
//     anonymization service (the PBE-TS sees the plaintext predicate but not
//     who asked);
//  2. matches every PBE-encrypted metadata broadcast LOCALLY against its
//     tokens — interest never leaves the subscriber;
//  3. on a match, fetches the CP-ABE payload from the RS anonymously under a
//     fresh symmetric key Ks;
//  4. decrypts the payload iff its ARA-issued attributes satisfy the
//     publisher's policy.
//
// With ReliabilityConfig.enabled the client becomes loss-tolerant
// (DESIGN.md "Reliability"): token and content requests carry deadlines and
// are retried with backoff (same tag + same Ks, so duplicate responses are
// naturally deduplicated); metadata arrives as an indexed stream whose gaps
// are detected and repaired through kMetaSyncRequest, with a heartbeat sync
// that also detects a restarted DS (incarnation change) and re-registers.
// Exactly-once delivery is enforced at the GUID level regardless of how
// often a broadcast or response is replayed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/guid.hpp"
#include "common/serial.hpp"
#include "net/network.hpp"
#include "net/secure.hpp"
#include "p3s/credentials.hpp"
#include "p3s/reliability.hpp"

namespace p3s::core {

class Subscriber {
 public:
  struct Delivery {
    Guid guid;
    Bytes payload;
  };
  using DeliveryHandler = std::function<void(const Delivery&)>;

  /// `use_anonymizer` false = direct RS/PBE-TS contact (paper: privacy still
  /// holds except the services learn request-to-identity binding).
  Subscriber(net::Network& network, std::string name,
             SubscriberCredentials credentials, Rng& rng,
             bool use_anonymizer = true, ReliabilityConfig reliability = {});
  ~Subscriber();

  /// Establish the DS channel and register as a subscriber.
  void connect();
  bool connected() const { return connected_; }

  /// Register an interest: requests a PBE token for it. The predicate must
  /// constrain at least one attribute (all-wildcard rejected by schema).
  void subscribe(const pbe::Interest& interest);

  /// Drop an interest: its token is discarded locally so matching stops
  /// immediately. Interest privacy means the infrastructure is never told —
  /// the DS keeps broadcasting (it broadcasts to everyone regardless).
  /// Returns false when no such interest was registered.
  bool unsubscribe(const pbe::Interest& interest);

  /// Clean departure: tell the DS to drop the registration and channel.
  /// Tokens are kept so a later connect() + subscribe history can resume.
  void disconnect();

  /// After a DS restart: re-establish the channel and registration; after a
  /// subscriber restart: also re-request tokens for all interests
  /// (paper §6.1 restart discussion).
  void reconnect();
  void refresh_tokens();

  /// Reliable-mode driver: re-send past-deadline token/content requests and
  /// the registration, and run the metadata sync heartbeat. Call it whenever
  /// network time may have advanced. No-op when reliability is off.
  void poll();

  /// Diagnostic/test hook: ask the DS to replay its broadcast ring from
  /// `from_index` (reliable mode only). Replayed frames the subscriber
  /// already processed are counted as duplicates, never re-delivered.
  void request_metadata_replay(std::uint64_t from_index);

  void set_delivery_handler(DeliveryHandler handler) {
    handler_ = std::move(handler);
  }

  // --- observable state / curious log ------------------------------------
  const std::vector<Delivery>& deliveries() const { return deliveries_; }
  std::size_t token_count() const { return tokens_.size(); }
  std::size_t metadata_received() const { return metadata_received_; }
  std::size_t match_count() const { return matches_; }
  /// Matched but the RS no longer had the item (TTL deletion / slow client).
  std::size_t fetch_failures() const { return fetch_failures_; }
  /// Fetched but CP-ABE attributes did not satisfy the policy.
  std::size_t undecryptable_payloads() const { return undecryptable_; }
  std::size_t token_rejections() const { return token_rejections_; }
  // --- reliable-layer observable state ------------------------------------
  /// Replayed/duplicated broadcasts that were suppressed, not re-processed.
  std::size_t duplicate_metadata() const { return duplicate_metadata_; }
  /// Token/content requests abandoned after max_attempts (surfaced error).
  std::size_t request_failures() const { return request_failures_; }
  std::size_t retries() const { return retries_; }
  std::size_t pending_request_count() const {
    return pending_token_requests_.size() + pending_content_requests_.size();
  }
  /// Broadcast indices known missing and awaiting sync repair.
  std::size_t missing_metadata_count() const { return missing_meta_.size(); }
  const std::string& name() const { return name_; }
  const SubscriberCredentials& credentials() const { return creds_; }

 private:
  struct PendingRequest {
    Bytes request;  // full outer request frame, re-sent verbatim
    std::string service;
    double deadline = 0.0;
    std::size_t attempts = 1;  // sends so far
  };

  void on_frame(const std::string& from, BytesView frame);
  void handle_inner(BytesView inner);
  void handle_reliable_ack(Reader& r);
  void handle_sequenced_metadata(Reader& r);
  void handle_sync_info(Reader& r);
  void handle_metadata(BytesView hve_ct);
  void handle_token_response(BytesView body);
  void handle_content_response(BytesView body);
  void request_token(const pbe::Interest& interest);
  void request_content(const Guid& guid);
  void send_sealed(BytesView inner);
  void send_service_request(const std::string& service, Bytes request);
  void send_sync(double now);
  void retry_requests(std::map<std::uint64_t, PendingRequest>& pending,
                      double now);
  /// Rebuild the width index + position union after any tokens_ mutation.
  void reindex_tokens();

  net::Network& network_;
  std::string name_;
  SubscriberCredentials creds_;
  Rng& rng_;
  bool use_anonymizer_;
  ReliabilityConfig reliability_;

  std::optional<net::SecureSession> session_;
  bool connected_ = false;
  std::vector<pbe::Interest> interests_;
  std::vector<pbe::HveToken> tokens_;
  // Width index over tokens_: token_min_widths_[i] is the smallest broadcast
  // width tokens_[i] can possibly match (max probed position + 1), so
  // narrower broadcasts skip that token with zero pairing work.
  // token_positions_union_ is the ascending union of all probed positions,
  // limiting the per-broadcast Miller precompute to positions some token
  // actually probes.
  std::vector<std::uint32_t> token_min_widths_;
  std::vector<std::uint32_t> token_positions_union_;
  std::uint64_t next_tag_ = 1;
  std::map<std::uint64_t, Bytes> pending_token_ks_;
  std::map<std::uint64_t, Bytes> pending_content_ks_;
  std::set<Guid> requested_guids_;

  // --- reliable-layer state ------------------------------------------------
  std::map<std::uint64_t, PendingRequest> pending_token_requests_;
  std::map<std::uint64_t, PendingRequest> pending_content_requests_;
  std::optional<double> register_deadline_;
  std::size_t register_attempts_ = 0;
  // Sequenced metadata stream. Invariant once the baseline is set: every
  // index < next_meta_index_ was either processed or sits in missing_meta_.
  // Frames arriving before the first (incarnation, joined-index) ack are
  // ignored — the post-ack sync replays them from the DS ring, so the
  // baseline never has to guess which history it was entitled to.
  bool meta_baseline_ = false;
  std::optional<std::uint64_t> ds_incarnation_;
  std::uint64_t next_meta_index_ = 0;
  std::set<std::uint64_t> missing_meta_;
  bool force_sync_ = false;
  std::optional<double> sync_deadline_;
  std::size_t sync_failures_ = 0;
  double next_heartbeat_ = 0.0;
  std::set<Guid> delivered_guids_;

  DeliveryHandler handler_;
  std::vector<Delivery> deliveries_;
  std::size_t metadata_received_ = 0;
  std::size_t matches_ = 0;
  std::size_t fetch_failures_ = 0;
  std::size_t undecryptable_ = 0;
  std::size_t token_rejections_ = 0;
  std::size_t duplicate_metadata_ = 0;
  std::size_t request_failures_ = 0;
  std::size_t retries_ = 0;
};

}  // namespace p3s::core
