#include "p3s/anonymizer.hpp"

#include <utility>

#include "common/guid.hpp"
#include "common/log.hpp"
#include "common/serial.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "pairing/ecies.hpp"

namespace p3s::core {

namespace {
struct AnonMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& forwarded = reg.counter(obs::names::kAnonForwardedTotal);
  obs::Counter& replies = reg.counter(obs::names::kAnonRepliesTotal);
  obs::Gauge& pending = reg.gauge(obs::names::kAnonPending);
  obs::Gauge& held = reg.gauge(obs::names::kAnonHeld);
  obs::Counter& batch_flushes =
      reg.counter(obs::names::kAnonBatchFlushesTotal);
  obs::Histogram& batch_size = reg.histogram(
      obs::names::kAnonBatchSize, {}, "1", "",
      obs::Histogram::exponential_bounds(1.0, 2.0, 12));
  obs::Histogram& flush_seconds =
      reg.histogram(obs::names::kAnonFlushSeconds);
  obs::Counter& cover = reg.counter(obs::names::kAnonCoverTotal);
  obs::Counter& decoy_replies =
      reg.counter(obs::names::kAnonDecoyRepliesTotal);
  obs::Counter& pad_bytes = reg.counter(obs::names::kAnonPadBytesTotal);
};

AnonMetrics& anon_metrics() {
  static AnonMetrics m;
  return m;
}

Bytes seed_bytes(std::uint64_t seed) {
  Writer w;
  w.u64(seed);
  return w.take();
}
}  // namespace

Anonymizer::Anonymizer(net::Network& network, std::string name,
                       AnonHardening hardening)
    : network_(network),
      name_(std::move(name)),
      hard_(hardening),
      drbg_(seed_bytes(hardening.seed)) {
  network_.register_endpoint(name_, [this](const std::string& from,
                                           BytesView frame) {
    on_frame(from, frame);
  });
}

Anonymizer::~Anonymizer() { network_.unregister_endpoint(name_); }

void Anonymizer::enable_cover(pairing::PairingPtr pairing, std::string rs_name,
                              pairing::Point rs_pk) {
  cover_ = Cover{std::move(pairing), std::move(rs_name), rs_pk};
}

double Anonymizer::jittered(double base) {
  if (hard_.flush_jitter <= 0.0) return base;
  std::uint64_t x = 0;
  for (const std::uint8_t b : drbg_.bytes(8)) x = (x << 8) | b;
  return base +
         hard_.flush_jitter * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

Bytes Anonymizer::maybe_pad(Bytes frame) {
  if (hard_.pad_bucket == 0) return frame;
  const std::size_t before = frame.size();
  Bytes padded = pad_to_bucket(std::move(frame), hard_.pad_bucket, drbg_);
  anon_metrics().pad_bytes.inc(padded.size() - before);
  return padded;
}

void Anonymizer::relay(const Held& h) {
  network_.send(name_, h.destination,
                maybe_pad(tagged_frame(h.type, h.tag, h.payload)));
}

Anonymizer::Held Anonymizer::make_decoy() {
  // Byte-compatible with Subscriber::request_content: fresh 32-byte Ks and a
  // random "GUID" inside an ECIES envelope to the RS. The RS answers a clean
  // kStatusNotFound sealed under the throwaway Ks; the reply is absorbed
  // here. Neither the wire nor the RS can tell a decoy from a real miss.
  Writer plain;
  plain.bytes(drbg_.bytes(32));
  plain.raw(drbg_.bytes(Guid::kSize));
  const Bytes blob = pairing::ecies_encrypt(*cover_->pairing, cover_->rs_pk,
                                            plain.data(), drbg_);
  Held h;
  h.destination = cover_->rs_name;
  h.type = FrameType::kContentRequest;
  h.tag = next_tag_++;
  h.payload = blob;
  decoy_tags_.insert(h.tag);
  anon_metrics().cover.inc();
  return h;
}

void Anonymizer::flush() {
  flush_deadline_.reset();
  AnonMetrics& metrics = anon_metrics();
  if (held_.empty()) return;  // empty flush: nothing to mix, nothing sent
  obs::ScopedTimer timer(metrics.reg, metrics.flush_seconds,
                         obs::names::kAnonFlushSeconds);
  // No crowd to hide in? Pad the batch with decoys up to min_batch (a lone
  // real request would otherwise be trivially linkable). Without cover
  // material the request was already held until the deadline — "pad or
  // hold", and past the deadline it must go out regardless.
  while (cover_.has_value() && held_.size() < hard_.min_batch) {
    held_.push_back(make_decoy());
  }
  // DRBG Fisher–Yates: the flush order is independent of arrival order, so
  // position in the burst cannot link a forward back to its requester.
  for (std::size_t i = held_.size(); i > 1; --i) {
    std::uint64_t x = 0;
    for (const std::uint8_t b : drbg_.bytes(8)) x = (x << 8) | b;
    std::swap(held_[i - 1], held_[static_cast<std::size_t>(x % i)]);
  }
  for (const Held& h : held_) relay(h);
  metrics.batch_flushes.inc();
  metrics.batch_size.record(static_cast<double>(held_.size()));
  held_.clear();
  metrics.held.set(0);
}

void Anonymizer::poll() {
  if (flush_deadline_.has_value() && network_.now() >= *flush_deadline_) {
    flush();
  }
}

void Anonymizer::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);
    if (type == FrameType::kAnonForward) {
      // {destination, request frame}: rewrite the request's tag and relay.
      const std::string dest = r.str();
      const Bytes request = r.bytes();
      skip_pad(r);

      Reader rr(request);
      const FrameType req_type = read_frame_type(rr);
      TaggedBody body = read_tagged(rr);
      const std::uint64_t tag = next_tag_++;
      pending_[tag] = Pending{from, body.tag};
      observations_.push_back({from, dest, request.size()});
      AnonMetrics& metrics = anon_metrics();
      metrics.forwarded.inc();
      metrics.pending.set(static_cast<std::int64_t>(pending_.size()));
      Held held;
      held.destination = dest;
      held.type = req_type;
      held.tag = tag;
      held.payload = std::move(body.payload);
      if (!hard_.batching) {
        relay(held);
        return;
      }
      held_.push_back(std::move(held));
      metrics.held.set(static_cast<std::int64_t>(held_.size()));
      if (held_.size() >= hard_.batch_size) {
        flush();
      } else if (!flush_deadline_.has_value()) {
        flush_deadline_ = network_.now() + jittered(hard_.flush_interval);
      }
      return;
    }
    if (type == FrameType::kContentResponse ||
        type == FrameType::kTokenResponse) {
      TaggedBody body = read_tagged(r);
      AnonMetrics& metrics = anon_metrics();
      if (decoy_tags_.erase(body.tag) > 0) {
        // A service answered one of our decoys: absorb it. Relaying would
        // hand the eavesdropper a frame with no matching request upstream.
        metrics.decoy_replies.inc();
        return;
      }
      const auto it = pending_.find(body.tag);
      if (it == pending_.end()) return;  // stale/unknown tag: drop
      const Pending origin = it->second;
      pending_.erase(it);
      metrics.replies.inc();
      metrics.pending.set(static_cast<std::int64_t>(pending_.size()));
      network_.send(
          name_, origin.requester,
          maybe_pad(tagged_frame(type, origin.original_tag, body.payload)));
      return;
    }
    log_warn("anon") << "unexpected frame type from " << from;
  } catch (const std::exception& e) {
    log_warn("anon") << "malformed frame from " << from << ": " << e.what();
  }
}

}  // namespace p3s::core
