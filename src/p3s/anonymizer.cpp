#include "p3s/anonymizer.hpp"

#include "common/log.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

namespace {
struct AnonMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& forwarded = reg.counter(obs::names::kAnonForwardedTotal);
  obs::Counter& replies = reg.counter(obs::names::kAnonRepliesTotal);
  obs::Gauge& pending = reg.gauge(obs::names::kAnonPending);
};

AnonMetrics& anon_metrics() {
  static AnonMetrics m;
  return m;
}
}  // namespace

Anonymizer::Anonymizer(net::Network& network, std::string name)
    : network_(network), name_(std::move(name)) {
  network_.register_endpoint(name_, [this](const std::string& from,
                                           BytesView frame) {
    on_frame(from, frame);
  });
}

Anonymizer::~Anonymizer() { network_.unregister_endpoint(name_); }

void Anonymizer::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);
    if (type == FrameType::kAnonForward) {
      // {destination, request frame}: rewrite the request's tag and relay.
      const std::string dest = r.str();
      const Bytes request = r.bytes();
      r.expect_done();

      Reader rr(request);
      const FrameType req_type = read_frame_type(rr);
      TaggedBody body = read_tagged(rr);
      const std::uint64_t tag = next_tag_++;
      pending_[tag] = Pending{from, body.tag};
      observations_.push_back({from, dest, request.size()});
      AnonMetrics& metrics = anon_metrics();
      metrics.forwarded.inc();
      metrics.pending.set(static_cast<std::int64_t>(pending_.size()));
      network_.send(name_, dest, tagged_frame(req_type, tag, body.payload));
      return;
    }
    if (type == FrameType::kContentResponse ||
        type == FrameType::kTokenResponse) {
      TaggedBody body = read_tagged(r);
      const auto it = pending_.find(body.tag);
      if (it == pending_.end()) return;  // stale/unknown tag: drop
      const Pending origin = it->second;
      pending_.erase(it);
      AnonMetrics& metrics = anon_metrics();
      metrics.replies.inc();
      metrics.pending.set(static_cast<std::int64_t>(pending_.size()));
      network_.send(name_, origin.requester,
                    tagged_frame(type, origin.original_tag, body.payload));
      return;
    }
    log_warn("anon") << "unexpected frame type from " << from;
  } catch (const std::exception& e) {
    log_warn("anon") << "malformed frame from " << from << ": " << e.what();
  }
}

}  // namespace p3s::core
