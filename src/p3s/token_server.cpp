#include "p3s/token_server.hpp"

#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

namespace {
struct TsMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& issued = reg.counter(obs::names::kTsTokensIssuedTotal);
  obs::Counter& rejected = reg.counter(obs::names::kTsRejectedTotal);
  obs::Histogram& gentoken_seconds =
      reg.histogram(obs::names::kTsGentokenSeconds);
};

TsMetrics& ts_metrics() {
  static TsMetrics m;
  return m;
}
}  // namespace

PbeTokenServer::PbeTokenServer(net::Network& network, std::string name,
                               pairing::PairingPtr pairing,
                               pbe::HveKeys hve_keys,
                               pbe::MetadataSchema schema,
                               pairing::Point ara_cert_pk, Rng& rng)
    : network_(network),
      name_(std::move(name)),
      pairing_(std::move(pairing)),
      hve_keys_(std::move(hve_keys)),
      schema_(std::move(schema)),
      ara_cert_pk_(std::move(ara_cert_pk)),
      keys_(pairing::ecies_keygen(*pairing_, rng)),
      rng_(rng) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

PbeTokenServer::~PbeTokenServer() { network_.unregister_endpoint(name_); }

void PbeTokenServer::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);
    if (type != FrameType::kTokenRequest) {
      log_warn("pbe-ts") << "unexpected frame from " << from;
      return;
    }
    const TaggedBody body = read_tagged(r);

    const auto plain = pairing::ecies_decrypt(*pairing_, keys_.secret,
                                              body.payload);
    if (!plain.has_value()) {
      ++rejected_;
      ts_metrics().rejected.inc();
      return;  // cannot even recover Ks: silently drop
    }
    Reader pr(*plain);
    const Bytes ks = pr.bytes();
    const Bytes cert_bytes = pr.bytes();
    const Bytes interest_bytes = pr.bytes();
    pr.expect_done();

    auto respond = [&](std::uint8_t status, BytesView payload) {
      Writer inner;
      inner.u8(status);
      inner.bytes(payload);
      const Bytes sealed =
          crypto::aead_encrypt(ks, inner.data(), str_to_bytes("token-resp"),
                               rng_)
              .serialize();
      network_.send(name_, from,
                    tagged_frame(FrameType::kTokenResponse, body.tag, sealed));
    };

    const Certificate cert = Certificate::deserialize(*pairing_, cert_bytes);
    if (cert.role != Certificate::Role::kSubscriber ||
        !cert.verify(*pairing_, ara_cert_pk_)) {
      ++rejected_;
      ts_metrics().rejected.inc();
      respond(kStatusRejected, {});
      return;
    }

    const pbe::Interest interest = pbe::deserialize_string_map(interest_bytes);
    // The HBC PBE-TS remembers everything it sees (paper §6.1): the
    // plaintext predicate, but only the network-visible requester.
    seen_predicates_.push_back({from, interest});

    TsMetrics& metrics = ts_metrics();
    const pbe::Pattern pattern = schema_.encode_interest(interest);
    const pbe::HveToken token = [&] {
      obs::ScopedTimer t(metrics.reg, metrics.gentoken_seconds,
                         obs::names::kTsGentokenSeconds);
      return pbe::hve_gen_token(hve_keys_, pattern, rng_);
    }();
    metrics.issued.inc();
    respond(kStatusOk, token.serialize(*pairing_));
  } catch (const std::exception& e) {
    ++rejected_;
    ts_metrics().rejected.inc();
    log_warn("pbe-ts") << "bad request from " << from << ": " << e.what();
  }
}

}  // namespace p3s::core
