// Registration artifacts issued by the ARA (paper §4.3, Fig. 2): metadata
// schema, CP-ABE keying material, PBE public parameters, role certificates,
// and the contact/public-key directory for the P3S services.
#pragma once

#include <string>

#include <optional>

#include "abe/cpabe.hpp"
#include "common/bytes.hpp"
#include "pairing/schnorr.hpp"
#include "pbe/epoch.hpp"
#include "pbe/hve.hpp"
#include "pbe/schema.hpp"

namespace p3s::core {

/// Role certificate: the ARA attests that the holder of `pseudonym` is a
/// registered subscriber/publisher. Pseudonymous by design — presenting it
/// (e.g. to the PBE-TS) proves membership without identifying the client.
struct Certificate {
  enum class Role : std::uint8_t { kSubscriber = 1, kPublisher = 2 };

  std::string pseudonym;
  Role role = Role::kSubscriber;
  pairing::SchnorrSignature signature;

  /// The byte string the ARA signs.
  Bytes signed_body() const;
  Bytes serialize(const pairing::Pairing& pairing) const;
  static Certificate deserialize(const pairing::Pairing& pairing,
                                 BytesView data);
  /// Verify against the ARA's certificate-authority public key.
  bool verify(const pairing::Pairing& pairing,
              const pairing::Point& ara_pk) const;
};

/// Contact information + public keys for the P3S third parties.
struct ServiceDirectory {
  std::string ds_name;
  std::string rs_name;
  std::string pbe_ts_name;
  std::string anonymizer_name;  // empty when no anonymization service
  pairing::Point ds_pk;         // channel-establishment key
  pairing::Point rs_pk;         // content-request envelope key
  pairing::Point pbe_ts_pk;     // token-request envelope key

  Bytes serialize(const pairing::Pairing& pairing) const;
  static ServiceDirectory deserialize(const pairing::Pairing& pairing,
                                      BytesView data);
};

/// Everything a subscriber gets at registration (paper Fig. 2, left).
struct SubscriberCredentials {
  pbe::MetadataSchema schema;
  abe::CpabePublicKey abe_pk;   // needed to run CP-ABE decryption
  abe::CpabeSecretKey abe_sk;   // SKC: attribute key for payload decryption
  Certificate certificate;
  ServiceDirectory services;
  /// Token-revocation epochs (§6.1 mitigation); nullopt = timeless tokens.
  std::optional<pbe::EpochPolicy> epoch;
  /// §8 alternative configuration: the PBE-TS embedded in each subscriber —
  /// interest never leaves the client, at the cost of trusting every
  /// subscriber with the HVE master key (see the embedded-TS tests for the
  /// leakage this trades in).
  std::optional<pbe::HveKeys> embedded_hve;

  /// Wire format for network registration (Fig. 2 over the ARA protocol).
  Bytes serialize(pairing::PairingPtr pairing) const;
  static SubscriberCredentials deserialize(pairing::PairingPtr pairing,
                                           BytesView data);
};

/// Everything a publisher gets at registration (paper Fig. 2, right).
struct PublisherCredentials {
  pbe::MetadataSchema schema;
  abe::CpabePublicKey abe_pk;   // PKC: CP-ABE public parameters
  pbe::HvePublicKey hve_pk;     // PBE public parameters for metadata
  Certificate certificate;
  ServiceDirectory services;
  std::optional<pbe::EpochPolicy> epoch;  // publications stamped when set

  Bytes serialize(pairing::PairingPtr pairing) const;
  static PublisherCredentials deserialize(pairing::PairingPtr pairing,
                                          BytesView data);
};

}  // namespace p3s::core
