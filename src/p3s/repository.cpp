#include "p3s/repository.hpp"

#include <fstream>

#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

namespace {
struct RsMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& stores = reg.counter(obs::names::kRsStoreTotal);
  obs::Histogram& stored_bytes =
      reg.histogram(obs::names::kRsStoredBytes, {}, "bytes");
  obs::Counter& fetch_ok = reg.counter(
      obs::names::kRsFetchTotal, {{"status", obs::labels::kStatusOk}});
  obs::Counter& fetch_notfound = reg.counter(
      obs::names::kRsFetchTotal, {{"status", obs::labels::kStatusNotFound}});
  obs::Gauge& items = reg.gauge(obs::names::kRsItems);
  obs::Counter& gc_reclaimed = reg.counter(obs::names::kRsGcReclaimedTotal);
};

RsMetrics& rs_metrics() {
  static RsMetrics m;
  return m;
}
}  // namespace

RepositoryServer::RepositoryServer(net::Network& network, std::string name,
                                   pairing::PairingPtr pairing, Rng& rng,
                                   double grace_seconds)
    : network_(network),
      name_(std::move(name)),
      pairing_(std::move(pairing)),
      keys_(pairing::ecies_keygen(*pairing_, rng)),
      rng_(rng),
      grace_seconds_(grace_seconds) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

RepositoryServer::~RepositoryServer() { network_.unregister_endpoint(name_); }

std::size_t RepositoryServer::garbage_collect() {
  const double now = network_.now();
  std::size_t collected = 0;
  for (auto it = store_.begin(); it != store_.end();) {
    if (it->second.expires_at <= now) {
      it = store_.erase(it);
      ++collected;
    } else {
      ++it;
    }
  }
  RsMetrics& metrics = rs_metrics();
  metrics.gc_reclaimed.inc(collected);
  metrics.items.set(static_cast<std::int64_t>(store_.size()));
  return collected;
}

void RepositoryServer::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);
    sources_.push_back(from);

    if (type == FrameType::kStoreContent ||
        type == FrameType::kStoreRequest) {
      Bytes request_id;
      ContentBody body;
      if (type == FrameType::kStoreRequest) {
        StoreRequestBody req = read_store_request(r);
        request_id = std::move(req.request_id);
        body = std::move(req.content);
      } else {
        body = read_content(r);
      }
      Guid guid;
      if (body.guid_wrapped) {
        // Footnote-1 mitigation: the GUID arrives under our public key.
        const auto plain =
            pairing::ecies_decrypt(*pairing_, keys_.secret, body.guid_field);
        if (!plain.has_value() || plain->size() != Guid::kSize) {
          log_warn("rs") << "undecryptable wrapped GUID from " << from;
          return;
        }
        guid = Guid::from_bytes(*plain);
      } else {
        guid = Guid::from_bytes(body.guid_field);
      }
      RsMetrics& metrics = rs_metrics();
      metrics.stores.inc();
      metrics.stored_bytes.record(
          static_cast<double>(body.abe_ciphertext.size()));
      // Overwrite by GUID: re-storing the same item (publisher/DS retry) is
      // idempotent — one slot, refreshed expiry, never a second copy.
      store_[guid] = Item{std::move(body.abe_ciphertext),
                          network_.now() + body.ttl_seconds + grace_seconds_};
      metrics.items.set(static_cast<std::int64_t>(store_.size()));
      if (!request_id.empty()) {
        Writer ack;
        ack.u8(static_cast<std::uint8_t>(FrameType::kStoreAck));
        ack.raw(request_id);
        network_.send(name_, from, ack.take());
      }
      return;
    }

    if (type == FrameType::kContentRequest) {
      const TaggedBody body = read_tagged(r);
      const auto plain =
          pairing::ecies_decrypt(*pairing_, keys_.secret, body.payload);
      if (!plain.has_value()) return;
      Reader pr(*plain);
      const Bytes ks = pr.bytes();
      const Guid guid = Guid::from_bytes(pr.raw(Guid::kSize));
      pr.expect_done();

      ++request_counts_[guid];

      Writer inner;
      const auto it = store_.find(guid);
      if (it == store_.end() || it->second.expires_at <= network_.now()) {
        rs_metrics().fetch_notfound.inc();
        inner.u8(kStatusNotFound);
        inner.bytes({});
      } else {
        rs_metrics().fetch_ok.inc();
        inner.u8(kStatusOk);
        inner.bytes(it->second.abe_ciphertext);
      }
      // Super-encrypted under the requester's Ks so eavesdroppers cannot
      // tell whether two subscribers fetched the same payload (paper §6.1).
      // With padding on, hit and miss plaintexts round up to the same bucket
      // before sealing, so response SIZE leaks nothing either (DESIGN.md §11).
      Bytes plain_resp = inner.take();
      if (response_pad_bucket_ > 0) {
        plain_resp =
            pad_to_bucket(std::move(plain_resp), response_pad_bucket_, rng_);
      }
      const Bytes sealed =
          crypto::aead_encrypt(ks, plain_resp, str_to_bytes("content-resp"),
                               rng_)
              .serialize();
      network_.send(name_, from,
                    tagged_frame(FrameType::kContentResponse, body.tag, sealed));
      return;
    }
    log_warn("rs") << "unexpected frame type from " << from;
  } catch (const std::exception& e) {
    log_warn("rs") << "bad frame from " << from << ": " << e.what();
  }
}

Bytes RepositoryServer::snapshot() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(store_.size()));
  for (const auto& [guid, item] : store_) {
    w.raw(guid.to_bytes());
    w.u64(static_cast<std::uint64_t>(item.expires_at * 1000.0));
    w.bytes(item.abe_ciphertext);
  }
  return w.take();
}

void RepositoryServer::save_to_file(const std::string& path) const {
  const Bytes snap = snapshot();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("RS: cannot open '" + path + "' for write");
  out.write(reinterpret_cast<const char*>(snap.data()),
            static_cast<std::streamsize>(snap.size()));
  if (!out) throw std::runtime_error("RS: write to '" + path + "' failed");
}

void RepositoryServer::load_from_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("RS: cannot open '" + path + "' for read");
  const std::streamsize size = in.tellg();
  in.seekg(0);
  Bytes snap(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(snap.data()), size);
  if (!in) throw std::runtime_error("RS: read from '" + path + "' failed");
  restore(snap);
}

void RepositoryServer::restore(BytesView snapshot) {
  Reader r(snapshot);
  const std::uint32_t n = r.u32();
  std::map<Guid, Item> restored;
  for (std::uint32_t i = 0; i < n; ++i) {
    const Guid guid = Guid::from_bytes(r.raw(Guid::kSize));
    Item item;
    item.expires_at = static_cast<double>(r.u64()) / 1000.0;
    item.abe_ciphertext = r.bytes();
    restored.emplace(guid, std::move(item));
  }
  r.expect_done();
  store_ = std::move(restored);
  rs_metrics().items.set(static_cast<std::int64_t>(store_.size()));
}

}  // namespace p3s::core
