// Reliable request layer configuration (DESIGN.md "Reliability"). Off by
// default: with `enabled == false` every client behaves exactly like the
// fire-and-forget protocol (bit-identical wire traffic, pinned by the
// determinism tests). Enabled, each request the client sends — DS publish,
// RS fetch, PBE-TS token grant, registration, metadata sync — carries a
// deadline; expiry re-sends with capped exponential backoff and jitter
// drawn from the client's own DRBG, so retry schedules are deterministic
// per client seed. All times are in network-time units (logical ticks on
// AsyncNetwork, seconds on SimNetwork).
#pragma once

#include <cstddef>

#include "common/rng.hpp"

namespace p3s::core {

struct ReliabilityConfig {
  bool enabled = false;
  /// Base request timeout; doubles (capped) per attempt.
  double timeout = 64.0;
  double backoff = 2.0;
  double max_timeout = 1024.0;
  /// Deadline is scaled by a uniform factor in [1-jitter, 1+jitter] so
  /// retry storms from many clients decorrelate.
  double jitter = 0.25;
  /// Attempts before the request is abandoned and surfaced as a failure.
  std::size_t max_attempts = 10;
  /// Consecutive sync/registration timeouts before the client assumes the
  /// DS restarted and re-establishes the secure channel.
  std::size_t reconnect_after = 3;
  /// Subscriber heartbeat period for kMetaSyncRequest (gap detection even
  /// when no broadcast arrives at all).
  double sync_interval = 256.0;
};

/// Timeout for attempt `attempt` (0-based): min(timeout·backoff^attempt,
/// max_timeout), jittered from `rng`. Draws from `rng` only when jitter is
/// on — so a run without faults (no retries, attempt 0 drawn once per
/// request) stays cheap and deterministic.
double retry_timeout(const ReliabilityConfig& config, std::size_t attempt,
                     Rng& rng);

}  // namespace p3s::core
