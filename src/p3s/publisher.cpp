#include "p3s/publisher.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/drbg.hpp"
#include "exec/pool.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

namespace {
struct PubMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& publishes = reg.counter(obs::names::kPubPublishTotal);
  obs::Histogram& publish_seconds =
      reg.histogram(obs::names::kPubPublishSeconds);
  obs::Histogram& pbe_encrypt_seconds =
      reg.histogram(obs::names::kPubPbeEncryptSeconds);
  obs::Histogram& abe_encrypt_seconds =
      reg.histogram(obs::names::kPubAbeEncryptSeconds);
  obs::Histogram& payload_bytes =
      reg.histogram(obs::names::kPubPayloadBytes, {}, "bytes");
  obs::Counter& batches = reg.counter(obs::names::kPubBatchTotal);
  obs::Histogram& batch_items = reg.histogram(obs::names::kPubBatchItems);
  obs::Histogram& batch_seconds =
      reg.histogram(obs::names::kPubBatchSeconds);
  // Reliable request layer (shared p3s.client.* vocabulary).
  obs::Counter& retry = reg.counter(obs::names::kClientRetryTotal);
  obs::Counter& retry_exhausted =
      reg.counter(obs::names::kClientRetryExhaustedTotal);
  obs::Counter& reconnects =
      reg.counter(obs::names::kClientRetryReconnectsTotal);
  obs::Counter& timeouts = reg.counter(obs::names::kClientTimeoutTotal);
};

PubMetrics& pub_metrics() {
  static PubMetrics m;
  return m;
}
}  // namespace

Publisher::Publisher(net::Network& network, std::string name,
                     PublisherCredentials credentials, Rng& rng,
                     ReliabilityConfig reliability)
    : network_(network),
      name_(std::move(name)),
      creds_(std::move(credentials)),
      rng_(rng),
      reliability_(reliability) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

Publisher::~Publisher() { network_.unregister_endpoint(name_); }

void Publisher::send_sealed(BytesView inner) {
  if (!session_.has_value()) throw std::logic_error("Publisher: not connected");
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelRecord));
  w.bytes(session_->seal(inner, rng_));
  network_.send(name_, creds_.services.ds_name, w.take());
}

void Publisher::connect() {
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;
  Bytes hello;
  session_ = net::SecureSession::initiate(pairing, creds_.services.ds_pk, rng_,
                                          hello);
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelHello));
  w.bytes(hello);
  network_.send(name_, creds_.services.ds_name, w.take());
  send_sealed(frame(FrameType::kRegisterPublisher));
  if (reliability_.enabled) {
    register_deadline_ =
        network_.now() + retry_timeout(reliability_, register_attempts_, rng_);
  }
}

void Publisher::disconnect() {
  if (!session_.has_value()) return;
  send_sealed(frame(FrameType::kUnregister));
  session_.reset();
  connected_ = false;
}

void Publisher::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);
    if (type != FrameType::kChannelRecord || !session_.has_value()) return;
    const Bytes record = r.bytes();
    r.expect_done();
    const auto inner = session_->open(record);
    if (!inner.has_value()) return;
    Reader ir(*inner);
    const FrameType inner_type = read_frame_type(ir);
    if (inner_type == FrameType::kAck) {
      connected_ = true;
      register_deadline_.reset();
      register_attempts_ = 0;
      return;
    }
    if (inner_type == FrameType::kPublishAck) {
      const Bytes request_id = ir.raw(kRequestIdSize);
      ir.expect_done();
      pending_.erase(request_id);  // duplicate acks miss and are ignored
    }
  } catch (const std::exception& e) {
    log_warn("pub:" + name_) << "bad frame from " << from << ": " << e.what();
  }
}

void Publisher::poll() {
  if (!reliability_.enabled) return;
  const double now = network_.now();
  PubMetrics& metrics = pub_metrics();

  if (!connected_ && register_deadline_.has_value() &&
      now >= *register_deadline_) {
    metrics.timeouts.inc();
    ++register_attempts_;
    if (register_attempts_ >= reliability_.max_attempts) {
      metrics.retry_exhausted.inc();
      register_deadline_.reset();
    } else {
      metrics.retry.inc();
      metrics.reconnects.inc();
      ++retries_;
      connect();  // fresh hello + register (also resets the deadline)
    }
  }

  bool reconnected_this_poll = false;
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingPublish& p = it->second;
    if (now < p.deadline) {
      ++it;
      continue;
    }
    metrics.timeouts.inc();
    if (p.attempts >= reliability_.max_attempts) {
      ++publish_failures_;
      metrics.retry_exhausted.inc();
      it = pending_.erase(it);
      continue;
    }
    // Every reconnect_after-th attempt assumes the channel (not just the
    // frame) is gone — e.g. the DS restarted and lost our registration —
    // and re-establishes it before re-sending.
    if (p.attempts % reliability_.reconnect_after == 0 &&
        !reconnected_this_poll) {
      metrics.reconnects.inc();
      reconnected_this_poll = true;
      connect();
    }
    ++p.attempts;
    ++retries_;
    metrics.retry.inc();
    if (session_.has_value()) send_sealed(p.request_frame);
    p.deadline = now + retry_timeout(reliability_, p.attempts - 1, rng_);
    ++it;
  }
}

Publisher::EncodedItem Publisher::encode_item(const pbe::Metadata& metadata,
                                              BytesView payload,
                                              const abe::PolicyNode& policy,
                                              double ttl_seconds,
                                              const Guid& guid, Rng& rng,
                                              double now) {
  PubMetrics& metrics = pub_metrics();
  metrics.payload_bytes.record(static_cast<double>(payload.size()));

  // Token-revocation epochs (§6.1 mitigation): stamp the metadata with the
  // epoch active now, so only current-epoch tokens match it.
  pbe::Metadata stamped = metadata;
  if (creds_.epoch.has_value()) {
    stamped = creds_.epoch->stamp(std::move(stamped), now);
  }

  // CP-ABE-encrypt the 2-tuple (GUID, payload) under the policy into the
  // (GUID, ciphertext, TTL) storage frame for the RS.
  Writer tuple;
  tuple.raw(guid.to_bytes());
  tuple.bytes(payload);
  const Bytes abe_ct = [&] {
    obs::ScopedTimer t(metrics.reg, metrics.abe_encrypt_seconds,
                       obs::names::kPubAbeEncryptSeconds);
    return abe::cpabe_encrypt_bytes(creds_.abe_pk, tuple.data(), policy, rng);
  }();
  ContentBody body;
  body.guid_wrapped = super_encrypt_guid_;
  body.guid_field =
      super_encrypt_guid_
          ? pairing::ecies_encrypt(*creds_.abe_pk.pairing,
                                   creds_.services.rs_pk, guid.to_bytes(), rng)
          : guid.to_bytes();
  body.ttl_seconds = ttl_seconds;
  body.abe_ciphertext = abe_ct;
  EncodedItem out;
  out.content_body = content_body(body);

  // PBE-encrypt the GUID under the metadata vector for dissemination to all
  // subscribers (paper Fig. 4).
  const pbe::BitVector bits = creds_.schema.encode_metadata(stamped);
  out.hve_ciphertext = [&] {
    obs::ScopedTimer t(metrics.reg, metrics.pbe_encrypt_seconds,
                       obs::names::kPubPbeEncryptSeconds);
    return pbe::hve_encrypt_bytes(creds_.hve_pk, bits, guid.to_bytes(), rng);
  }();
  return out;
}

void Publisher::submit_item(const EncodedItem& enc) {
  if (!reliability_.enabled) {
    // Fire-and-forget (base paper protocol). Content is submitted before
    // the metadata broadcast so that a subscriber whose match races the
    // store never misses (the paper's model takes max(t_p, t_b) for the
    // same reason).
    send_sealed(frame(FrameType::kPublishContent, enc.content_body));
    Writer meta;
    meta.u8(static_cast<std::uint8_t>(FrameType::kPublishMetadata));
    meta.bytes(enc.hve_ciphertext);
    send_sealed(meta.data());
    return;
  }
  // Reliable: one retryable request carrying both halves; the DS broadcasts
  // only after the RS acked the store, which closes the race structurally.
  Writer req;
  req.u8(static_cast<std::uint8_t>(FrameType::kPublishRequest));
  req.raw(rng_.bytes(kRequestIdSize));
  req.bytes(enc.content_body);
  req.bytes(enc.hve_ciphertext);
  const Bytes request_id(req.data().begin() + 1,
                         req.data().begin() + 1 + kRequestIdSize);
  PendingPublish pending;
  pending.request_frame = req.take();
  pending.deadline = network_.now() + retry_timeout(reliability_, 0, rng_);
  // Register the pending entry before sending: on DirectNetwork the whole
  // store→fanout→ack chain runs inline inside this send, and the ack must
  // find the entry to erase.
  const Bytes request_frame = pending.request_frame;
  pending_.emplace(request_id, std::move(pending));
  send_sealed(request_frame);
}

Guid Publisher::publish(const pbe::Metadata& metadata, BytesView payload,
                        const abe::PolicyNode& policy, double ttl_seconds) {
  if (!connected_) throw std::logic_error("Publisher: not connected");

  PubMetrics& metrics = pub_metrics();
  obs::ScopedTimer publish_timer(metrics.reg, metrics.publish_seconds,
                                 obs::names::kPubPublishSeconds);
  metrics.publishes.inc();

  const Guid guid = Guid::random(rng_);
  const EncodedItem enc = encode_item(metadata, payload, policy, ttl_seconds,
                                      guid, rng_, network_.now());
  submit_item(enc);
  return guid;
}

std::vector<Guid> Publisher::publish_batch(
    const std::vector<PublishItem>& items) {
  if (!connected_) throw std::logic_error("Publisher: not connected");

  PubMetrics& metrics = pub_metrics();
  obs::ScopedTimer batch_timer(metrics.reg, metrics.batch_seconds,
                               obs::names::kPubBatchSeconds);
  metrics.batches.inc();
  metrics.batch_items.record(static_cast<double>(items.size()));
  metrics.publishes.inc(items.size());

  // Per-item randomness: a dedicated DRBG per item, seeded serially from
  // the publisher's RNG in item order. Rejection sampling inside the
  // pairing code makes a byte-budget pre-draw impossible, so independent
  // deterministic streams are what keeps an N-worker batch bit-identical
  // to the single-thread run (pinned by the batch equivalence test).
  const double now = network_.now();
  std::vector<Guid> guids;
  std::vector<crypto::Drbg> rngs;
  guids.reserve(items.size());
  rngs.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    guids.push_back(Guid::random(rng_));
    rngs.emplace_back(rng_.bytes(32));
  }

  std::vector<EncodedItem> encoded(items.size());
  exec::Pool::global().parallel_for(0, items.size(), [&](std::size_t i) {
    encoded[i] = encode_item(items[i].metadata, items[i].payload,
                             items[i].policy, items[i].ttl_seconds, guids[i],
                             rngs[i], now);
  });

  // Seals and sends stay serial and in item order: the channel's record
  // sequence numbers and net::Network are single-threaded state. Content
  // still precedes metadata per item, as in publish().
  for (const EncodedItem& enc : encoded) submit_item(enc);
  return guids;
}

}  // namespace p3s::core
