#include "p3s/publisher.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/drbg.hpp"
#include "exec/pool.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

namespace {
struct PubMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& publishes = reg.counter(obs::names::kPubPublishTotal);
  obs::Histogram& publish_seconds =
      reg.histogram(obs::names::kPubPublishSeconds);
  obs::Histogram& pbe_encrypt_seconds =
      reg.histogram(obs::names::kPubPbeEncryptSeconds);
  obs::Histogram& abe_encrypt_seconds =
      reg.histogram(obs::names::kPubAbeEncryptSeconds);
  obs::Histogram& payload_bytes =
      reg.histogram(obs::names::kPubPayloadBytes, {}, "bytes");
  obs::Counter& batches = reg.counter(obs::names::kPubBatchTotal);
  obs::Histogram& batch_items = reg.histogram(obs::names::kPubBatchItems);
  obs::Histogram& batch_seconds =
      reg.histogram(obs::names::kPubBatchSeconds);
};

PubMetrics& pub_metrics() {
  static PubMetrics m;
  return m;
}
}  // namespace

Publisher::Publisher(net::Network& network, std::string name,
                     PublisherCredentials credentials, Rng& rng)
    : network_(network),
      name_(std::move(name)),
      creds_(std::move(credentials)),
      rng_(rng) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

Publisher::~Publisher() { network_.unregister_endpoint(name_); }

void Publisher::send_sealed(BytesView inner) {
  if (!session_.has_value()) throw std::logic_error("Publisher: not connected");
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelRecord));
  w.bytes(session_->seal(inner, rng_));
  network_.send(name_, creds_.services.ds_name, w.take());
}

void Publisher::connect() {
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;
  Bytes hello;
  session_ = net::SecureSession::initiate(pairing, creds_.services.ds_pk, rng_,
                                          hello);
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelHello));
  w.bytes(hello);
  network_.send(name_, creds_.services.ds_name, w.take());
  send_sealed(frame(FrameType::kRegisterPublisher));
}

void Publisher::disconnect() {
  if (!session_.has_value()) return;
  send_sealed(frame(FrameType::kUnregister));
  session_.reset();
  connected_ = false;
}

void Publisher::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);
    if (type != FrameType::kChannelRecord || !session_.has_value()) return;
    const Bytes record = r.bytes();
    r.expect_done();
    const auto inner = session_->open(record);
    if (!inner.has_value()) return;
    Reader ir(*inner);
    if (read_frame_type(ir) == FrameType::kAck) connected_ = true;
  } catch (const std::exception& e) {
    log_warn("pub:" + name_) << "bad frame from " << from << ": " << e.what();
  }
}

Publisher::EncodedItem Publisher::encode_item(const pbe::Metadata& metadata,
                                              BytesView payload,
                                              const abe::PolicyNode& policy,
                                              double ttl_seconds,
                                              const Guid& guid, Rng& rng,
                                              double now) {
  PubMetrics& metrics = pub_metrics();
  metrics.payload_bytes.record(static_cast<double>(payload.size()));

  // Token-revocation epochs (§6.1 mitigation): stamp the metadata with the
  // epoch active now, so only current-epoch tokens match it.
  pbe::Metadata stamped = metadata;
  if (creds_.epoch.has_value()) {
    stamped = creds_.epoch->stamp(std::move(stamped), now);
  }

  // CP-ABE-encrypt the 2-tuple (GUID, payload) under the policy into the
  // (GUID, ciphertext, TTL) storage frame for the RS.
  Writer tuple;
  tuple.raw(guid.to_bytes());
  tuple.bytes(payload);
  const Bytes abe_ct = [&] {
    obs::ScopedTimer t(metrics.reg, metrics.abe_encrypt_seconds,
                       obs::names::kPubAbeEncryptSeconds);
    return abe::cpabe_encrypt_bytes(creds_.abe_pk, tuple.data(), policy, rng);
  }();
  ContentBody body;
  body.guid_wrapped = super_encrypt_guid_;
  body.guid_field =
      super_encrypt_guid_
          ? pairing::ecies_encrypt(*creds_.abe_pk.pairing,
                                   creds_.services.rs_pk, guid.to_bytes(), rng)
          : guid.to_bytes();
  body.ttl_seconds = ttl_seconds;
  body.abe_ciphertext = abe_ct;
  EncodedItem out;
  Writer content_frame;
  content_frame.u8(static_cast<std::uint8_t>(FrameType::kPublishContent));
  content_frame.raw(content_body(body));
  out.content_frame = content_frame.take();

  // PBE-encrypt the GUID under the metadata vector for dissemination to all
  // subscribers (paper Fig. 4).
  const pbe::BitVector bits = creds_.schema.encode_metadata(stamped);
  const Bytes hve_ct = [&] {
    obs::ScopedTimer t(metrics.reg, metrics.pbe_encrypt_seconds,
                       obs::names::kPubPbeEncryptSeconds);
    return pbe::hve_encrypt_bytes(creds_.hve_pk, bits, guid.to_bytes(), rng);
  }();
  Writer meta_frame;
  meta_frame.u8(static_cast<std::uint8_t>(FrameType::kPublishMetadata));
  meta_frame.bytes(hve_ct);
  out.meta_frame = meta_frame.take();
  return out;
}

Guid Publisher::publish(const pbe::Metadata& metadata, BytesView payload,
                        const abe::PolicyNode& policy, double ttl_seconds) {
  if (!connected_) throw std::logic_error("Publisher: not connected");

  PubMetrics& metrics = pub_metrics();
  obs::ScopedTimer publish_timer(metrics.reg, metrics.publish_seconds,
                                 obs::names::kPubPublishSeconds);
  metrics.publishes.inc();

  const Guid guid = Guid::random(rng_);
  const EncodedItem enc = encode_item(metadata, payload, policy, ttl_seconds,
                                      guid, rng_, network_.now());
  // Content is submitted before the metadata broadcast so that a subscriber
  // whose match races the store never misses (the paper's model takes
  // max(t_p, t_b) for the same reason).
  send_sealed(enc.content_frame);
  send_sealed(enc.meta_frame);
  return guid;
}

std::vector<Guid> Publisher::publish_batch(
    const std::vector<PublishItem>& items) {
  if (!connected_) throw std::logic_error("Publisher: not connected");

  PubMetrics& metrics = pub_metrics();
  obs::ScopedTimer batch_timer(metrics.reg, metrics.batch_seconds,
                               obs::names::kPubBatchSeconds);
  metrics.batches.inc();
  metrics.batch_items.record(static_cast<double>(items.size()));
  metrics.publishes.inc(items.size());

  // Per-item randomness: a dedicated DRBG per item, seeded serially from
  // the publisher's RNG in item order. Rejection sampling inside the
  // pairing code makes a byte-budget pre-draw impossible, so independent
  // deterministic streams are what keeps an N-worker batch bit-identical
  // to the single-thread run (pinned by the batch equivalence test).
  const double now = network_.now();
  std::vector<Guid> guids;
  std::vector<crypto::Drbg> rngs;
  guids.reserve(items.size());
  rngs.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    guids.push_back(Guid::random(rng_));
    rngs.emplace_back(rng_.bytes(32));
  }

  std::vector<EncodedItem> encoded(items.size());
  exec::Pool::global().parallel_for(0, items.size(), [&](std::size_t i) {
    encoded[i] = encode_item(items[i].metadata, items[i].payload,
                             items[i].policy, items[i].ttl_seconds, guids[i],
                             rngs[i], now);
  });

  // Seals and sends stay serial and in item order: the channel's record
  // sequence numbers and net::Network are single-threaded state. Content
  // still precedes metadata per item, as in publish().
  for (const EncodedItem& enc : encoded) {
    send_sealed(enc.content_frame);
    send_sealed(enc.meta_frame);
  }
  return guids;
}

}  // namespace p3s::core
