#include "p3s/system.hpp"

namespace p3s::core {

P3sSystem::P3sSystem(net::Network& network, P3sConfig config, Rng& rng)
    : network_(network),
      config_(std::move(config)),
      ara_(config_.pairing, config_.schema, rng, config_.epoch,
           config_.embedded_token_server) {
  rs_ = std::make_unique<RepositoryServer>(network_, config_.rs_name,
                                           config_.pairing, rng,
                                           config_.rs_grace_seconds);
  ts_ = std::make_unique<PbeTokenServer>(
      network_, config_.ts_name, config_.pairing, ara_.hve_keys(),
      ara_.schema(), ara_.certificate_pk(), rng);
  rs_->set_response_pad_bucket(config_.rs_response_pad_bucket);
  ds_ = std::make_unique<DisseminationServer>(
      network_, config_.ds_name, config_.pairing, config_.rs_name, rng);
  ds_->set_hardening(config_.ds_hardening);
  if (config_.with_anonymizer) {
    anon_ = std::make_unique<Anonymizer>(network_, config_.anon_name,
                                         config_.anon_hardening);
    if (config_.anon_hardening.min_batch > 0) {
      // Decoy fetches need the RS public key; without cover material a short
      // batch is held until its deadline instead of being topped up.
      anon_->enable_cover(config_.pairing, config_.rs_name, rs_->public_key());
    }
  }

  directory_.ds_name = config_.ds_name;
  directory_.rs_name = config_.rs_name;
  directory_.pbe_ts_name = config_.ts_name;
  directory_.anonymizer_name = config_.with_anonymizer ? config_.anon_name : "";
  directory_.ds_pk = ds_->public_key();
  directory_.rs_pk = rs_->public_key();
  directory_.pbe_ts_pk = ts_->public_key();
  ara_.set_service_directory(directory_);
}

std::unique_ptr<Subscriber> P3sSystem::make_subscriber(
    const std::string& endpoint_name, const std::string& pseudonym,
    const std::set<std::string>& attributes, Rng& rng) {
  auto sub = std::make_unique<Subscriber>(
      network_, endpoint_name, ara_.register_subscriber(pseudonym, attributes, rng),
      rng, config_.with_anonymizer, config_.reliability);
  sub->connect();
  return sub;
}

std::unique_ptr<Publisher> P3sSystem::make_publisher(
    const std::string& endpoint_name, const std::string& pseudonym, Rng& rng) {
  auto pub = std::make_unique<Publisher>(
      network_, endpoint_name, ara_.register_publisher(pseudonym, rng), rng,
      config_.reliability);
  pub->connect();
  return pub;
}

}  // namespace p3s::core
