#include "p3s/reliability.hpp"

#include <algorithm>

namespace p3s::core {

double retry_timeout(const ReliabilityConfig& config, std::size_t attempt,
                     Rng& rng) {
  double t = config.timeout;
  for (std::size_t i = 0; i < attempt; ++i) {
    t = std::min(t * config.backoff, config.max_timeout);
    if (t >= config.max_timeout) break;
  }
  t = std::min(t, config.max_timeout);
  if (config.jitter > 0.0) {
    constexpr std::uint64_t kBuckets = 1u << 16;
    const double u = static_cast<double>(rng.uniform(kBuckets)) /
                     static_cast<double>(kBuckets - 1);
    t *= 1.0 - config.jitter + 2.0 * config.jitter * u;
  }
  return t;
}

}  // namespace p3s::core
