#include "p3s/dissemination.hpp"

#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/chacha20.hpp"
#include "exec/pool.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

namespace {
// Replay ring / idempotency caps: bounded memory under arbitrarily long
// chaos runs. A subscriber that falls more than kMetaRingCap broadcasts
// behind can no longer repair the gap by sync (same truncation any
// non-durable broker exhibits); a publisher retrying a request evicted from
// the done set would double-store, but stores are GUID-idempotent anyway.
constexpr std::size_t kMetaRingCap = 1024;
constexpr std::size_t kDoneCap = 4096;

struct DsMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& publishes = reg.counter(obs::names::kDsPublishesTotal);
  obs::Counter& fanout = reg.counter(obs::names::kDsFanoutTotal);
  obs::Histogram& fanout_batch = reg.histogram(
      obs::names::kDsFanoutBatch, {}, "1", "",
      obs::Histogram::exponential_bounds(1.0, 2.0, 16));
  obs::Counter& content_forwarded =
      reg.counter(obs::names::kDsContentForwardedTotal);
  obs::Gauge& subscribers = reg.gauge(obs::names::kDsSubscribers);
  obs::Gauge& publishers = reg.gauge(obs::names::kDsPublishers);
  obs::Gauge& sessions = reg.gauge(obs::names::kDsSessions);
  obs::Histogram& fanout_seconds =
      reg.histogram(obs::names::kDsFanoutSeconds);
  obs::Counter& batch_flushes =
      reg.counter(obs::names::kDsBatchFlushesTotal);
  obs::Counter& cover = reg.counter(obs::names::kDsCoverTotal);
  obs::Counter& pad_bytes = reg.counter(obs::names::kDsPadBytesTotal);
};

DsMetrics& ds_metrics() {
  static DsMetrics m;
  return m;
}
}  // namespace

DisseminationServer::DisseminationServer(
    net::Network& network, std::string name, pairing::PairingPtr pairing,
    std::string rs_name, Rng& rng,
    std::optional<pairing::EciesKeyPair> identity)
    : network_(network),
      name_(std::move(name)),
      pairing_(std::move(pairing)),
      rs_name_(std::move(rs_name)),
      keys_(identity.has_value() ? std::move(*identity)
                                 : pairing::ecies_keygen(*pairing_, rng)),
      rng_(rng) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

DisseminationServer::~DisseminationServer() {
  network_.unregister_endpoint(name_);
}

void DisseminationServer::crash_and_restart() {
  sessions_.clear();
  subscribers_.clear();
  publishers_.clear();
  reliable_subs_.clear();
  pending_stores_.clear();
  done_requests_.clear();
  done_order_.clear();
  meta_ring_.clear();
  meta_base_ = 0;
  next_meta_index_ = 0;
  pending_fanout_.clear();
  fanout_deadline_.reset();
  next_cover_.reset();
  ++incarnation_;
  DsMetrics& metrics = ds_metrics();
  metrics.sessions.set(0);
  metrics.subscribers.set(0);
  metrics.publishers.set(0);
}

std::size_t DisseminationServer::replay_broadcasts() {
  std::size_t sent = 0;
  for (std::uint64_t i = meta_base_; i < next_meta_index_; ++i) {
    const Bytes& hve = meta_ring_[static_cast<std::size_t>(i - meta_base_)];
    for (const std::string& sub : subscribers_) {
      if (!sessions_.contains(sub)) continue;
      Writer w;
      if (reliable_subs_.contains(sub)) {
        // Same broadcast index as the original: the sequenced layer can
        // (and must) recognize and suppress the replay.
        w.u8(static_cast<std::uint8_t>(FrameType::kMetadataDeliverySeq));
        w.u64(i);
      } else {
        w.u8(static_cast<std::uint8_t>(FrameType::kMetadataDelivery));
      }
      w.bytes(hve);
      send_sealed(sub, w.data());
      ++sent;
    }
  }
  return sent;
}

void DisseminationServer::send_sealed(const std::string& to, BytesView inner) {
  const auto it = sessions_.find(to);
  if (it == sessions_.end()) return;
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelRecord));
  w.bytes(it->second.seal(inner, rng_));
  network_.send(name_, to, w.take());
}

void DisseminationServer::set_hardening(DsHardening hardening) {
  hard_ = hardening;
  if (hard_.any_enabled()) {
    Writer seed;
    seed.u64(hard_.seed);
    hard_drbg_.emplace(seed.data());
  }
}

double DisseminationServer::jittered(double base) {
  if (!hard_drbg_.has_value() || hard_.flush_jitter <= 0.0) return base;
  std::uint64_t x = 0;
  for (const std::uint8_t b : hard_drbg_->bytes(8)) x = (x << 8) | b;
  return base +
         hard_.flush_jitter * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

void DisseminationServer::schedule_fanout(const Bytes& hve_ciphertext) {
  last_hve_size_ = hve_ciphertext.size();
  if (!hard_.batching) {
    fan_out_metadata(hve_ciphertext);
    return;
  }
  pending_fanout_.push_back(hve_ciphertext);
  if (pending_fanout_.size() >= hard_.batch_size) {
    flush_broadcasts();
  } else if (!fanout_deadline_.has_value()) {
    fanout_deadline_ = network_.now() + jittered(hard_.flush_interval);
  }
}

void DisseminationServer::flush_broadcasts() {
  fanout_deadline_.reset();
  if (pending_fanout_.empty()) return;
  // DRBG Fisher–Yates over the queued broadcasts: a reacting subscriber is
  // attributable to the batch, not to any publication's arrival order.
  for (std::size_t i = pending_fanout_.size(); i > 1; --i) {
    std::uint64_t x = 0;
    for (const std::uint8_t b : hard_drbg_->bytes(8)) x = (x << 8) | b;
    std::swap(pending_fanout_[i - 1],
              pending_fanout_[static_cast<std::size_t>(x % i)]);
  }
  for (const Bytes& ct : pending_fanout_) fan_out_metadata(ct);
  pending_fanout_.clear();
  ds_metrics().batch_flushes.inc();
}

void DisseminationServer::poll() {
  if (!hard_.any_enabled()) return;
  const double now = network_.now();
  if (fanout_deadline_.has_value() && now >= *fanout_deadline_) {
    flush_broadcasts();
  }
  if (hard_.cover_interval > 0.0) {
    if (!next_cover_.has_value()) {
      next_cover_ = now + jittered(hard_.cover_interval);
    } else if (now >= *next_cover_) {
      // Garbage of a real ciphertext's size: after sealing (and bucketed
      // padding, when on) a cover broadcast is indistinguishable from a
      // publication on the wire; subscribers parse it into a universal
      // non-match (no pairing work done).
      fan_out_metadata(hard_drbg_->bytes(last_hve_size_));
      ds_metrics().cover.inc();
      next_cover_ = network_.now() + jittered(hard_.cover_interval);
    }
  }
}

void DisseminationServer::mark_done(const Bytes& request_id) {
  if (!done_requests_.insert(request_id).second) return;
  done_order_.push_back(request_id);
  while (done_order_.size() > kDoneCap) {
    done_requests_.erase(done_order_.front());
    done_order_.pop_front();
  }
}

void DisseminationServer::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);

    if (type == FrameType::kChannelHello) {
      const Bytes hello = r.bytes();
      r.expect_done();
      auto session = net::SecureSession::accept(*pairing_, keys_.secret, hello);
      if (!session.has_value()) {
        log_warn("ds") << "bad channel hello from " << from;
        return;
      }
      sessions_.insert_or_assign(from, std::move(*session));
      ds_metrics().sessions.set(static_cast<std::int64_t>(sessions_.size()));
      return;
    }

    if (type == FrameType::kChannelRecord) {
      const auto sit = sessions_.find(from);
      if (sit == sessions_.end()) return;  // no session: drop
      const Bytes record = r.bytes();
      r.expect_done();
      const auto inner = sit->second.open(record);
      if (!inner.has_value()) {
        log_warn("ds") << "undecryptable record from " << from;
        return;
      }
      handle_inner(from, *inner);
      return;
    }

    if (type == FrameType::kStoreAck) {
      handle_store_ack(from, r);
      return;
    }
    log_warn("ds") << "unexpected outer frame from " << from;
  } catch (const std::exception& e) {
    log_warn("ds") << "bad frame from " << from << ": " << e.what();
  }
}

void DisseminationServer::handle_store_ack(const std::string& from, Reader& r) {
  if (from != rs_name_) return;  // only the RS acknowledges stores
  const Bytes request_id = r.raw(kRequestIdSize);
  r.expect_done();
  const auto it = pending_stores_.find(request_id);
  if (it == pending_stores_.end()) return;  // duplicate ack: already handled
  PendingStore pending = std::move(it->second);
  pending_stores_.erase(it);
  mark_done(request_id);
  // The payload is durably stored; now the broadcast cannot outrun it. (A
  // batched flush only delays the broadcast further — the store-first
  // ordering is preserved, and the publisher ack below never waits on it.)
  schedule_fanout(pending.hve_ciphertext);
  Writer ack;
  ack.u8(static_cast<std::uint8_t>(FrameType::kPublishAck));
  ack.raw(request_id);
  send_sealed(pending.publisher, ack.data());
}

void DisseminationServer::fan_out_metadata(const Bytes& hve_ciphertext) {
  DsMetrics& metrics = ds_metrics();
  metrics.publishes.inc();
  obs::ScopedTimer fanout_timer(metrics.reg, metrics.fanout_seconds,
                                obs::names::kDsFanoutSeconds);
  const std::uint64_t index = next_meta_index_++;
  meta_ring_.push_back(hve_ciphertext);
  while (meta_ring_.size() > kMetaRingCap) {
    meta_ring_.pop_front();
    ++meta_base_;
  }
  // Fan out to every registered subscriber; the DS cannot tell who (if
  // anyone) will match — that is the point. The inner frame is serialized
  // once per flavor (legacy / indexed); the per-session seals (AEAD over
  // distinct session state) run in parallel into per-subscriber buffers.
  // seal() consumes exactly one AEAD nonce from the RNG, so nonces are
  // pre-drawn serially in subscriber order and replayed per task — the wire
  // bytes are identical to the sequential loop for any pool size. Sends stay
  // on this thread: net::Network is not thread-safe.
  Writer legacy_w;
  legacy_w.u8(static_cast<std::uint8_t>(FrameType::kMetadataDelivery));
  legacy_w.bytes(hve_ciphertext);
  Writer indexed_w;
  indexed_w.u8(static_cast<std::uint8_t>(FrameType::kMetadataDeliverySeq));
  indexed_w.u64(index);
  indexed_w.bytes(hve_ciphertext);
  Bytes legacy = legacy_w.take();
  Bytes indexed = indexed_w.take();
  if (hard_.pad_bucket > 0) {
    // Bucketed broadcast padding: the sealed record size then rounds with
    // the bucket instead of tracking the metadata ciphertext byte-for-byte.
    const std::size_t before = legacy.size() + indexed.size();
    legacy = pad_to_bucket(std::move(legacy), hard_.pad_bucket, *hard_drbg_);
    indexed =
        pad_to_bucket(std::move(indexed), hard_.pad_bucket, *hard_drbg_);
    metrics.pad_bytes.inc(legacy.size() + indexed.size() - before);
  }
  std::vector<const std::string*> subs;
  std::vector<net::SecureSession*> sess;
  std::vector<const Bytes*> payloads;
  subs.reserve(subscribers_.size());
  sess.reserve(subscribers_.size());
  payloads.reserve(subscribers_.size());
  for (const std::string& sub : subscribers_) {
    const auto it = sessions_.find(sub);
    if (it == sessions_.end()) continue;  // no session: drop, as before
    subs.push_back(&sub);
    sess.push_back(&it->second);
    payloads.push_back(reliable_subs_.contains(sub) ? &indexed : &legacy);
  }
  std::vector<Bytes> nonces;
  nonces.reserve(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    nonces.push_back(rng_.bytes(crypto::ChaCha20::kNonceSize));
  }
  std::vector<Bytes> records(subs.size());
  exec::Pool::global().parallel_for(0, subs.size(), [&](std::size_t i) {
    ReplayRng nonce_rng(nonces[i]);
    Writer w;
    w.u8(static_cast<std::uint8_t>(FrameType::kChannelRecord));
    w.bytes(sess[i]->seal(*payloads[i], nonce_rng));
    records[i] = w.take();
  });
  for (std::size_t i = 0; i < subs.size(); ++i) {
    network_.send(name_, *subs[i], std::move(records[i]));
  }
  metrics.fanout.inc(subs.size());
  metrics.fanout_batch.record(static_cast<double>(subscribers_.size()));
}

void DisseminationServer::handle_inner(const std::string& from,
                                       BytesView inner) {
  Reader r(inner);
  const FrameType type = read_frame_type(r);
  observations_.push_back(
      {from, inner.size(), static_cast<std::uint8_t>(type)});

  DsMetrics& metrics = ds_metrics();
  switch (type) {
    case FrameType::kRegisterSubscriber: {
      subscribers_.insert(from);
      metrics.subscribers.set(static_cast<std::int64_t>(subscribers_.size()));
      const bool reliable = !r.done() && r.u8() == 1;
      if (!reliable) {
        send_sealed(from, frame(FrameType::kAck));
        return;
      }
      // Joined index: first registration pins where this subscriber's
      // entitlement starts; re-registrations keep it so a repaired channel
      // can still sync everything broadcast since joining.
      const auto [it, inserted] =
          reliable_subs_.try_emplace(from, next_meta_index_);
      (void)inserted;
      Writer ack;
      ack.u64(incarnation_);
      ack.u64(it->second);
      send_sealed(from, frame(FrameType::kAck, ack.data()));
      return;
    }
    case FrameType::kRegisterPublisher:
      publishers_.insert(from);
      metrics.publishers.set(static_cast<std::int64_t>(publishers_.size()));
      send_sealed(from, frame(FrameType::kAck));
      return;
    case FrameType::kUnregister:
      subscribers_.erase(from);
      publishers_.erase(from);
      sessions_.erase(from);
      reliable_subs_.erase(from);
      metrics.subscribers.set(static_cast<std::int64_t>(subscribers_.size()));
      metrics.publishers.set(static_cast<std::int64_t>(publishers_.size()));
      metrics.sessions.set(static_cast<std::int64_t>(sessions_.size()));
      return;
    case FrameType::kPublishMetadata: {
      if (!publishers_.contains(from)) return;
      const Bytes hve_ct = r.bytes();
      r.expect_done();
      schedule_fanout(hve_ct);
      return;
    }
    case FrameType::kPublishContent: {
      if (!publishers_.contains(from)) return;
      ContentBody body = read_content(r);
      network_.send(name_, rs_name_,
                    frame(FrameType::kStoreContent, content_body(body)));
      metrics.content_forwarded.inc();
      return;
    }
    case FrameType::kPublishRequest: {
      if (!publishers_.contains(from)) return;
      PublishRequestBody body = read_publish_request(r);
      if (done_requests_.contains(body.request_id)) {
        // Retry of a completed publish: the store and fanout already
        // happened; only the ack was lost. Re-ack, deliver nothing twice.
        Writer ack;
        ack.u8(static_cast<std::uint8_t>(FrameType::kPublishAck));
        ack.raw(body.request_id);
        send_sealed(from, ack.data());
        return;
      }
      const auto [it, inserted] = pending_stores_.try_emplace(
          body.request_id,
          PendingStore{from, body.hve_ciphertext,
                       frame(FrameType::kStoreRequest,
                             store_request_body(
                                 {body.request_id, body.content}))});
      if (inserted) metrics.content_forwarded.inc();
      // (Re-)forward the store; the RS overwrites by GUID so duplicates are
      // harmless. On DirectNetwork the ack can arrive re-entrantly inside
      // this send and erase the pending entry — do not touch `it` after.
      Bytes store_frame = it->second.store_frame;
      network_.send(name_, rs_name_, std::move(store_frame));
      return;
    }
    case FrameType::kMetaSyncRequest: {
      if (!subscribers_.contains(from) || !reliable_subs_.contains(from)) {
        return;  // stale/unregistered: the client's reconnect path recovers
      }
      const std::uint64_t from_index = r.u64();
      r.expect_done();
      const std::uint64_t start = std::max(from_index, meta_base_);
      for (std::uint64_t i = start; i < next_meta_index_; ++i) {
        Writer replay;
        replay.u8(static_cast<std::uint8_t>(FrameType::kMetadataDeliverySeq));
        replay.u64(i);
        replay.bytes(meta_ring_[static_cast<std::size_t>(i - meta_base_)]);
        send_sealed(from, replay.data());
        metrics.fanout.inc();
      }
      Writer info;
      info.u8(static_cast<std::uint8_t>(FrameType::kMetaSyncInfo));
      info.u64(incarnation_);
      info.u64(next_meta_index_);
      send_sealed(from, info.data());
      return;
    }
    default:
      log_warn("ds") << "unexpected inner frame " << static_cast<int>(type)
                     << " from " << from;
  }
}

}  // namespace p3s::core
