#include "p3s/dissemination.hpp"

#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/chacha20.hpp"
#include "exec/pool.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

namespace {
struct DsMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& publishes = reg.counter(obs::names::kDsPublishesTotal);
  obs::Counter& fanout = reg.counter(obs::names::kDsFanoutTotal);
  obs::Histogram& fanout_batch = reg.histogram(
      obs::names::kDsFanoutBatch, {}, "1", "",
      obs::Histogram::exponential_bounds(1.0, 2.0, 16));
  obs::Counter& content_forwarded =
      reg.counter(obs::names::kDsContentForwardedTotal);
  obs::Gauge& subscribers = reg.gauge(obs::names::kDsSubscribers);
  obs::Gauge& publishers = reg.gauge(obs::names::kDsPublishers);
  obs::Gauge& sessions = reg.gauge(obs::names::kDsSessions);
  obs::Histogram& fanout_seconds =
      reg.histogram(obs::names::kDsFanoutSeconds);
};

DsMetrics& ds_metrics() {
  static DsMetrics m;
  return m;
}
}  // namespace

DisseminationServer::DisseminationServer(
    net::Network& network, std::string name, pairing::PairingPtr pairing,
    std::string rs_name, Rng& rng,
    std::optional<pairing::EciesKeyPair> identity)
    : network_(network),
      name_(std::move(name)),
      pairing_(std::move(pairing)),
      rs_name_(std::move(rs_name)),
      keys_(identity.has_value() ? std::move(*identity)
                                 : pairing::ecies_keygen(*pairing_, rng)),
      rng_(rng) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

DisseminationServer::~DisseminationServer() {
  network_.unregister_endpoint(name_);
}

void DisseminationServer::crash_and_restart() {
  sessions_.clear();
  subscribers_.clear();
  publishers_.clear();
  DsMetrics& metrics = ds_metrics();
  metrics.sessions.set(0);
  metrics.subscribers.set(0);
  metrics.publishers.set(0);
}

void DisseminationServer::send_sealed(const std::string& to, BytesView inner) {
  const auto it = sessions_.find(to);
  if (it == sessions_.end()) return;
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelRecord));
  w.bytes(it->second.seal(inner, rng_));
  network_.send(name_, to, w.take());
}

void DisseminationServer::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);

    if (type == FrameType::kChannelHello) {
      const Bytes hello = r.bytes();
      r.expect_done();
      auto session = net::SecureSession::accept(*pairing_, keys_.secret, hello);
      if (!session.has_value()) {
        log_warn("ds") << "bad channel hello from " << from;
        return;
      }
      sessions_.insert_or_assign(from, std::move(*session));
      ds_metrics().sessions.set(static_cast<std::int64_t>(sessions_.size()));
      return;
    }

    if (type == FrameType::kChannelRecord) {
      const auto sit = sessions_.find(from);
      if (sit == sessions_.end()) return;  // no session: drop
      const Bytes record = r.bytes();
      r.expect_done();
      const auto inner = sit->second.open(record);
      if (!inner.has_value()) {
        log_warn("ds") << "undecryptable record from " << from;
        return;
      }
      handle_inner(from, *inner);
      return;
    }
    log_warn("ds") << "unexpected outer frame from " << from;
  } catch (const std::exception& e) {
    log_warn("ds") << "bad frame from " << from << ": " << e.what();
  }
}

void DisseminationServer::handle_inner(const std::string& from,
                                       BytesView inner) {
  Reader r(inner);
  const FrameType type = read_frame_type(r);
  observations_.push_back(
      {from, inner.size(), static_cast<std::uint8_t>(type)});

  DsMetrics& metrics = ds_metrics();
  switch (type) {
    case FrameType::kRegisterSubscriber:
      subscribers_.insert(from);
      metrics.subscribers.set(static_cast<std::int64_t>(subscribers_.size()));
      send_sealed(from, frame(FrameType::kAck));
      return;
    case FrameType::kRegisterPublisher:
      publishers_.insert(from);
      metrics.publishers.set(static_cast<std::int64_t>(publishers_.size()));
      send_sealed(from, frame(FrameType::kAck));
      return;
    case FrameType::kUnregister:
      subscribers_.erase(from);
      publishers_.erase(from);
      sessions_.erase(from);
      metrics.subscribers.set(static_cast<std::int64_t>(subscribers_.size()));
      metrics.publishers.set(static_cast<std::int64_t>(publishers_.size()));
      metrics.sessions.set(static_cast<std::int64_t>(sessions_.size()));
      return;
    case FrameType::kPublishMetadata: {
      if (!publishers_.contains(from)) return;
      const Bytes hve_ct = r.bytes();
      r.expect_done();
      metrics.publishes.inc();
      obs::ScopedTimer fanout_timer(metrics.reg, metrics.fanout_seconds,
                                    obs::names::kDsFanoutSeconds);
      // Fan out to every registered subscriber; the DS cannot tell who (if
      // anyone) will match — that is the point. The inner frame is
      // serialized once; the per-session seals (AEAD over distinct session
      // state) run in parallel into per-subscriber buffers. seal() consumes
      // exactly one AEAD nonce from the RNG, so nonces are pre-drawn
      // serially in subscriber order and replayed per task — the wire bytes
      // are identical to the sequential loop for any pool size. Sends stay
      // on this thread: net::Network is not thread-safe.
      Writer fwd;
      fwd.u8(static_cast<std::uint8_t>(FrameType::kMetadataDelivery));
      fwd.bytes(hve_ct);
      std::vector<const std::string*> subs;
      std::vector<net::SecureSession*> sess;
      subs.reserve(subscribers_.size());
      sess.reserve(subscribers_.size());
      for (const std::string& sub : subscribers_) {
        const auto it = sessions_.find(sub);
        if (it == sessions_.end()) continue;  // no session: drop, as before
        subs.push_back(&sub);
        sess.push_back(&it->second);
      }
      std::vector<Bytes> nonces;
      nonces.reserve(subs.size());
      for (std::size_t i = 0; i < subs.size(); ++i) {
        nonces.push_back(rng_.bytes(crypto::ChaCha20::kNonceSize));
      }
      std::vector<Bytes> records(subs.size());
      exec::Pool::global().parallel_for(0, subs.size(), [&](std::size_t i) {
        ReplayRng nonce_rng(nonces[i]);
        Writer w;
        w.u8(static_cast<std::uint8_t>(FrameType::kChannelRecord));
        w.bytes(sess[i]->seal(fwd.data(), nonce_rng));
        records[i] = w.take();
      });
      for (std::size_t i = 0; i < subs.size(); ++i) {
        network_.send(name_, *subs[i], std::move(records[i]));
      }
      metrics.fanout.inc(subs.size());
      metrics.fanout_batch.record(static_cast<double>(subscribers_.size()));
      return;
    }
    case FrameType::kPublishContent: {
      if (!publishers_.contains(from)) return;
      ContentBody body = read_content(r);
      network_.send(name_, rs_name_,
                    frame(FrameType::kStoreContent, content_body(body)));
      metrics.content_forwarded.inc();
      return;
    }
    default:
      log_warn("ds") << "unexpected inner frame " << static_cast<int>(type)
                     << " from " << from;
  }
}

}  // namespace p3s::core
