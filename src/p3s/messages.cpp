#include "p3s/messages.hpp"

#include <stdexcept>

namespace p3s::core {

FrameType read_frame_type(Reader& r) {
  const std::uint8_t t = r.u8();
  if (t < 1 || t > 25) throw std::invalid_argument("unknown frame type");
  return static_cast<FrameType>(t);
}

Bytes frame(FrameType type, BytesView body) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(body);
  return w.take();
}

Bytes frame(FrameType type) { return frame(type, {}); }

Bytes tagged_frame(FrameType type, std::uint64_t tag, BytesView payload) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(tag);
  w.bytes(payload);
  return w.take();
}

TaggedBody read_tagged(Reader& r) {
  TaggedBody body;
  body.tag = r.u64();
  body.payload = r.bytes();
  skip_pad(r);
  return body;
}

void skip_pad(Reader& r) {
  if (!r.done()) (void)r.bytes();  // optional trailing pad field
  r.expect_done();
}

Bytes pad_to_bucket(Bytes frame, std::size_t bucket, Rng& rng) {
  if (bucket == 0) return frame;
  // The pad travels as one extra u32-length-prefixed bytes field appended to
  // the frame, so the padded size is exactly the next multiple of `bucket`
  // that fits the 4-byte prefix. Pad content is rng-drawn so padding is
  // indistinguishable from ciphertext on the wire.
  const std::size_t with_prefix = frame.size() + 4;
  const std::size_t target =
      ((with_prefix + bucket - 1) / bucket) * bucket;
  const std::size_t pad_len = target - with_prefix;
  Writer w;
  w.raw(frame);
  w.bytes(rng.bytes(pad_len));
  return w.take();
}

Bytes content_body(const ContentBody& c) {
  Writer w;
  w.u8(c.guid_wrapped ? 1 : 0);
  w.bytes(c.guid_field);
  w.u64(static_cast<std::uint64_t>(c.ttl_seconds * 1000.0));  // ms precision
  w.bytes(c.abe_ciphertext);
  return w.take();
}

// The content body is nested length-prefixed inside the reliable-layer
// bodies so read_content()'s whole-buffer check keeps holding on its slice.
Bytes publish_request_body(const PublishRequestBody& b) {
  if (b.request_id.size() != kRequestIdSize) {
    throw std::invalid_argument("PublishRequestBody: bad request id size");
  }
  Writer w;
  w.raw(b.request_id);
  w.bytes(content_body(b.content));
  w.bytes(b.hve_ciphertext);
  return w.take();
}

PublishRequestBody read_publish_request(Reader& r) {
  PublishRequestBody b;
  b.request_id = r.raw(kRequestIdSize);
  const Bytes content = r.bytes();
  b.hve_ciphertext = r.bytes();
  r.expect_done();
  Reader cr(content);
  b.content = read_content(cr);
  return b;
}

Bytes store_request_body(const StoreRequestBody& b) {
  if (b.request_id.size() != kRequestIdSize) {
    throw std::invalid_argument("StoreRequestBody: bad request id size");
  }
  Writer w;
  w.raw(b.request_id);
  w.bytes(content_body(b.content));
  return w.take();
}

StoreRequestBody read_store_request(Reader& r) {
  StoreRequestBody b;
  b.request_id = r.raw(kRequestIdSize);
  const Bytes content = r.bytes();
  r.expect_done();
  Reader cr(content);
  b.content = read_content(cr);
  return b;
}

ContentBody read_content(Reader& r) {
  ContentBody c;
  c.guid_wrapped = r.u8() != 0;
  c.guid_field = r.bytes();
  c.ttl_seconds = static_cast<double>(r.u64()) / 1000.0;
  c.abe_ciphertext = r.bytes();
  r.expect_done();
  if (!c.guid_wrapped && c.guid_field.size() != Guid::kSize) {
    throw std::invalid_argument("ContentBody: bad clear GUID size");
  }
  return c;
}

}  // namespace p3s::core
