#include "p3s/messages.hpp"

#include <stdexcept>

namespace p3s::core {

FrameType read_frame_type(Reader& r) {
  const std::uint8_t t = r.u8();
  if (t < 1 || t > 18) throw std::invalid_argument("unknown frame type");
  return static_cast<FrameType>(t);
}

Bytes frame(FrameType type, BytesView body) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(body);
  return w.take();
}

Bytes frame(FrameType type) { return frame(type, {}); }

Bytes tagged_frame(FrameType type, std::uint64_t tag, BytesView payload) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u64(tag);
  w.bytes(payload);
  return w.take();
}

TaggedBody read_tagged(Reader& r) {
  TaggedBody body;
  body.tag = r.u64();
  body.payload = r.bytes();
  r.expect_done();
  return body;
}

Bytes content_body(const ContentBody& c) {
  Writer w;
  w.u8(c.guid_wrapped ? 1 : 0);
  w.bytes(c.guid_field);
  w.u64(static_cast<std::uint64_t>(c.ttl_seconds * 1000.0));  // ms precision
  w.bytes(c.abe_ciphertext);
  return w.take();
}

ContentBody read_content(Reader& r) {
  ContentBody c;
  c.guid_wrapped = r.u8() != 0;
  c.guid_field = r.bytes();
  c.ttl_seconds = static_cast<double>(r.u64()) / 1000.0;
  c.abe_ciphertext = r.bytes();
  r.expect_done();
  if (!c.guid_wrapped && c.guid_field.size() != Guid::kSize) {
    throw std::invalid_argument("ContentBody: bad clear GUID size");
  }
  return c;
}

}  // namespace p3s::core
