// Anonymization service (paper §4.1): subscribers reach the PBE-TS and RS
// through this relay so those services cannot bind requests to subscriber
// identities. The relay rewrites the request's reply tag, remembers
// tag → requester, and routes the response back. It never inspects request
// payloads (they are ECIES-encrypted to the destination service).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"

namespace p3s::core {

class Anonymizer {
 public:
  Anonymizer(net::Network& network, std::string name);
  ~Anonymizer();

  const std::string& name() const { return name_; }

  /// Curious log — what an HBC anonymizer could remember: who asked to
  /// reach which service (but nothing about content). Exposed for the
  /// privacy tests.
  struct Observation {
    std::string requester;
    std::string destination;
    std::size_t size;
  };
  const std::vector<Observation>& observations() const { return observations_; }

 private:
  void on_frame(const std::string& from, BytesView frame);

  net::Network& network_;
  std::string name_;
  struct Pending {
    std::string requester;
    std::uint64_t original_tag;
  };
  std::uint64_t next_tag_ = 1;
  std::map<std::uint64_t, Pending> pending_;  // rewritten tag -> origin
  std::vector<Observation> observations_;
};

}  // namespace p3s::core
