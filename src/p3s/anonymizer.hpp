// Anonymization service (paper §4.1): subscribers reach the PBE-TS and RS
// through this relay so those services cannot bind requests to subscriber
// identities. The relay rewrites the request's reply tag, remembers
// tag → requester, and routes the response back. It never inspects request
// payloads (they are ECIES-encrypted to the destination service).
//
// Identity rewriting alone does not hide traffic SHAPE: an eavesdropper can
// link a subscriber's request to the relay's forward by FIFO order and
// timing, and frame sizes fingerprint what was fetched (DESIGN.md §11;
// tests/attack_test.cpp executes the attacks). AnonHardening therefore adds
// batched mixing with a DRBG-jittered flush, padding to bucketed sizes, and
// decoy cover fetches — all off by default so the base wire protocol is
// unchanged.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "crypto/drbg.hpp"
#include "net/network.hpp"
#include "p3s/hardening.hpp"
#include "p3s/messages.hpp"
#include "pairing/pairing.hpp"

namespace p3s::core {

class Anonymizer {
 public:
  Anonymizer(net::Network& network, std::string name,
             AnonHardening hardening = {});
  ~Anonymizer();

  const std::string& name() const { return name_; }
  const AnonHardening& hardening() const { return hard_; }

  /// Give the relay what it needs to synthesize decoy RS fetches (a fresh
  /// Ks and a random GUID under the RS public key — byte-compatible with a
  /// real subscriber fetch, so the wire cannot tell them apart). Required
  /// before a flush can top a short batch up to `min_batch`.
  void enable_cover(pairing::PairingPtr pairing, std::string rs_name,
                    pairing::Point rs_pk);

  /// Mixing driver: flush the held batch once its jittered deadline passes.
  /// Call whenever network time may have advanced; no-op when batching is
  /// off or nothing is held.
  void poll();

  /// Requests currently held for the next batch flush.
  std::size_t held_count() const { return held_.size(); }

  /// Curious log — what an HBC anonymizer could remember: who asked to
  /// reach which service (but nothing about content). Decoys are the
  /// relay's own noise, not observations of anyone. Exposed for the
  /// privacy tests.
  struct Observation {
    std::string requester;
    std::string destination;
    std::size_t size;
  };
  const std::vector<Observation>& observations() const { return observations_; }

 private:
  struct Held {
    std::string destination;
    FrameType type = FrameType::kContentRequest;
    std::uint64_t tag = 0;  // rewritten tag, already in pending_/decoys_
    Bytes payload;
  };
  struct Cover {
    pairing::PairingPtr pairing;
    std::string rs_name;
    pairing::Point rs_pk;
  };

  void on_frame(const std::string& from, BytesView frame);
  /// Send one (possibly padded) request frame to its service.
  void relay(const Held& h);
  /// Shuffle, top up with decoys, and send the held batch.
  void flush();
  Held make_decoy();
  double jittered(double base);
  Bytes maybe_pad(Bytes frame);

  net::Network& network_;
  std::string name_;
  AnonHardening hard_;
  /// Dedicated randomness for mixing, padding, and decoys — never the
  /// shared test RNG (hardening must not shift other components' streams).
  crypto::Drbg drbg_;
  struct Pending {
    std::string requester;
    std::uint64_t original_tag;
  };
  std::uint64_t next_tag_ = 1;
  std::map<std::uint64_t, Pending> pending_;  // rewritten tag -> origin
  std::set<std::uint64_t> decoy_tags_;        // replies to absorb, not relay
  std::vector<Held> held_;                    // batch awaiting flush
  std::optional<double> flush_deadline_;
  std::optional<Cover> cover_;
  std::vector<Observation> observations_;
};

}  // namespace p3s::core
