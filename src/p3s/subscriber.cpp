#include "p3s/subscriber.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

namespace {
struct SubMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& metadata_received =
      reg.counter(obs::names::kSubMetadataReceivedTotal);
  obs::Counter& match_attempts =
      reg.counter(obs::names::kSubMatchAttemptsTotal);
  obs::Counter& match_hits = reg.counter(obs::names::kSubMatchHitsTotal);
  obs::Histogram& match_seconds =
      reg.histogram(obs::names::kSubMatchSeconds);
  obs::Histogram& decrypt_seconds =
      reg.histogram(obs::names::kSubDecryptSeconds);
  obs::Counter& deliveries = reg.counter(obs::names::kSubDeliveriesTotal);
  obs::Counter& fetch_failures =
      reg.counter(obs::names::kSubFetchFailuresTotal);
  obs::Counter& undecryptable =
      reg.counter(obs::names::kSubUndecryptableTotal);
  obs::Counter& token_requests =
      reg.counter(obs::names::kSubTokenRequestsTotal);
  obs::Counter& token_rejections =
      reg.counter(obs::names::kSubTokenRejectionsTotal);
  obs::Counter& match_skipped_width =
      reg.counter(obs::names::kSubMatchSkippedWidth);
};

SubMetrics& sub_metrics() {
  static SubMetrics m;
  return m;
}
}  // namespace

Subscriber::Subscriber(net::Network& network, std::string name,
                       SubscriberCredentials credentials, Rng& rng,
                       bool use_anonymizer)
    : network_(network),
      name_(std::move(name)),
      creds_(std::move(credentials)),
      rng_(rng),
      use_anonymizer_(use_anonymizer &&
                      !creds_.services.anonymizer_name.empty()) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

Subscriber::~Subscriber() { network_.unregister_endpoint(name_); }

void Subscriber::send_sealed(BytesView inner) {
  if (!session_.has_value()) throw std::logic_error("Subscriber: not connected");
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelRecord));
  w.bytes(session_->seal(inner, rng_));
  network_.send(name_, creds_.services.ds_name, w.take());
}

void Subscriber::connect() {
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;
  Bytes hello;
  session_ = net::SecureSession::initiate(pairing, creds_.services.ds_pk, rng_,
                                          hello);
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelHello));
  w.bytes(hello);
  network_.send(name_, creds_.services.ds_name, w.take());
  send_sealed(frame(FrameType::kRegisterSubscriber));
}

void Subscriber::reconnect() { connect(); }

bool Subscriber::unsubscribe(const pbe::Interest& interest) {
  const auto it = std::find(interests_.begin(), interests_.end(), interest);
  if (it == interests_.end()) return false;
  interests_.erase(it);
  // Tokens are not labeled with their interest (unlinkability), so rebuild
  // the token set from the remaining interests. Epoch-restricted tokens are
  // re-requested for the current epoch as a side effect.
  refresh_tokens();
  return true;
}

void Subscriber::disconnect() {
  if (!session_.has_value()) return;
  send_sealed(frame(FrameType::kUnregister));
  session_.reset();
  connected_ = false;
}

void Subscriber::refresh_tokens() {
  tokens_.clear();
  reindex_tokens();
  for (const pbe::Interest& interest : interests_) request_token(interest);
}

void Subscriber::reindex_tokens() {
  token_min_widths_.clear();
  token_positions_union_.clear();
  for (const pbe::HveToken& token : tokens_) {
    std::uint32_t max_pos = 0;
    for (const std::uint32_t pos : token.positions) {
      max_pos = std::max(max_pos, pos);
      token_positions_union_.push_back(pos);
    }
    token_min_widths_.push_back(max_pos + 1);
  }
  std::sort(token_positions_union_.begin(), token_positions_union_.end());
  token_positions_union_.erase(
      std::unique(token_positions_union_.begin(),
                  token_positions_union_.end()),
      token_positions_union_.end());
}

void Subscriber::subscribe(const pbe::Interest& interest) {
  // Validate locally first so schema errors throw at the call site.
  (void)creds_.schema.encode_interest(interest);
  interests_.push_back(interest);
  request_token(interest);
}

void Subscriber::send_service_request(const std::string& service,
                                      Bytes request) {
  if (use_anonymizer_) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(FrameType::kAnonForward));
    w.str(service);
    w.bytes(request);
    network_.send(name_, creds_.services.anonymizer_name, w.take());
  } else {
    network_.send(name_, service, std::move(request));
  }
}

void Subscriber::request_token(const pbe::Interest& interest) {
  sub_metrics().token_requests.inc();
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;

  // Token-revocation epochs (§6.1): restrict the predicate to the current
  // epoch so the resulting token expires when the epoch rolls over.
  pbe::Interest effective = interest;
  if (creds_.epoch.has_value()) {
    effective = creds_.epoch->restrict(std::move(effective), network_.now());
  }

  // §8 alternative configuration: PBE-TS embedded in the subscriber — the
  // predicate never leaves this process.
  if (creds_.embedded_hve.has_value()) {
    tokens_.push_back(pbe::hve_gen_token(
        *creds_.embedded_hve, creds_.schema.encode_interest(effective), rng_));
    reindex_tokens();
    return;
  }

  // Fig. 3: 3-tuple (Ks, subscriber certificate, plaintext predicate)
  // under the PBE-TS public key.
  const Bytes ks = rng_.bytes(32);
  Writer plain;
  plain.bytes(ks);
  plain.bytes(creds_.certificate.serialize(pairing));
  plain.bytes(pbe::serialize_string_map(effective));
  const Bytes blob = pairing::ecies_encrypt(
      pairing, creds_.services.pbe_ts_pk, plain.data(), rng_);

  const std::uint64_t tag = next_tag_++;
  pending_token_ks_[tag] = ks;
  send_service_request(creds_.services.pbe_ts_name,
                       tagged_frame(FrameType::kTokenRequest, tag, blob));
}

void Subscriber::request_content(const Guid& guid) {
  if (!requested_guids_.insert(guid).second) return;  // already in flight
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;
  // Fig. 4: 2-tuple (Ks, GUID) under the RS public key.
  const Bytes ks = rng_.bytes(32);
  Writer plain;
  plain.bytes(ks);
  plain.raw(guid.to_bytes());
  const Bytes blob = pairing::ecies_encrypt(pairing, creds_.services.rs_pk,
                                            plain.data(), rng_);
  const std::uint64_t tag = next_tag_++;
  pending_content_ks_[tag] = ks;
  send_service_request(creds_.services.rs_name,
                       tagged_frame(FrameType::kContentRequest, tag, blob));
}

void Subscriber::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);
    switch (type) {
      case FrameType::kChannelRecord: {
        if (!session_.has_value()) return;
        const Bytes record = r.bytes();
        r.expect_done();
        const auto inner = session_->open(record);
        if (inner.has_value()) handle_inner(*inner);
        return;
      }
      case FrameType::kTokenResponse:
        handle_token_response(data.subspan(1));
        return;
      case FrameType::kContentResponse:
        handle_content_response(data.subspan(1));
        return;
      default:
        return;
    }
  } catch (const std::exception& e) {
    log_warn("sub:" + name_) << "bad frame from " << from << ": " << e.what();
  }
}

void Subscriber::handle_inner(BytesView inner) {
  Reader r(inner);
  const FrameType type = read_frame_type(r);
  if (type == FrameType::kAck) {
    connected_ = true;
    return;
  }
  if (type == FrameType::kMetadataDelivery) {
    const Bytes hve_ct = r.bytes();
    r.expect_done();
    handle_metadata(hve_ct);
  }
}

void Subscriber::handle_metadata(BytesView hve_ct) {
  ++metadata_received_;
  SubMetrics& metrics = sub_metrics();
  metrics.metadata_received.inc();
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;

  // Local matching on encrypted metadata. A successful KEM decryption
  // reveals exactly the GUID — nothing else about the metadata (attribute
  // hiding). The ciphertext-side Miller state is prepared once per
  // broadcast (restricted to positions some token probes) and shared by
  // every token evaluation, which run on the global pool with first-hit
  // short-circuit.
  std::optional<Guid> matched;
  {
    obs::ScopedTimer match_timer(metrics.reg, metrics.match_seconds,
                                 obs::names::kSubMatchSeconds);
    try {
      if (!tokens_.empty()) {
        const pbe::HveMatchCt prepared = pbe::hve_match_prepare(
            pairing, hve_ct, &token_positions_union_);
        // Width pre-filter: a token probing a position beyond this
        // broadcast's width can never match — skip it before any pairing.
        std::vector<const pbe::HveToken*> eligible;
        eligible.reserve(tokens_.size());
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
          if (token_min_widths_[i] > prepared.width()) {
            metrics.match_skipped_width.inc();
            continue;
          }
          eligible.push_back(&tokens_[i]);
        }
        metrics.match_attempts.inc(eligible.size());
        const pbe::HveMatchResult res =
            pbe::hve_match_any(pairing, eligible, prepared);
        if (res.matched() && res.payload.size() == Guid::kSize) {
          ++matches_;
          metrics.match_hits.inc();
          matched = Guid::from_bytes(res.payload);
        }
      }
    } catch (const std::exception&) {
      // Malformed broadcast — same outcome as a universal non-match.
    }
  }  // the match timer ends at the decision; the RS fetch is not match time
  if (matched.has_value()) request_content(*matched);
}

void Subscriber::handle_token_response(BytesView body) {
  Reader r(body);
  const TaggedBody tagged = read_tagged(r);
  const auto it = pending_token_ks_.find(tagged.tag);
  if (it == pending_token_ks_.end()) return;
  const Bytes ks = it->second;
  pending_token_ks_.erase(it);

  const auto plain = crypto::aead_decrypt(
      ks, crypto::AeadCiphertext::deserialize(tagged.payload),
      str_to_bytes("token-resp"));
  if (!plain.has_value()) return;
  Reader pr(*plain);
  const std::uint8_t status = pr.u8();
  const Bytes token_bytes = pr.bytes();
  pr.expect_done();
  if (status != kStatusOk) {
    ++token_rejections_;
    sub_metrics().token_rejections.inc();
    return;
  }
  tokens_.push_back(
      pbe::HveToken::deserialize(*creds_.abe_pk.pairing, token_bytes));
  reindex_tokens();
}

void Subscriber::handle_content_response(BytesView body) {
  Reader r(body);
  const TaggedBody tagged = read_tagged(r);
  const auto it = pending_content_ks_.find(tagged.tag);
  if (it == pending_content_ks_.end()) return;
  const Bytes ks = it->second;
  pending_content_ks_.erase(it);

  const auto plain = crypto::aead_decrypt(
      ks, crypto::AeadCiphertext::deserialize(tagged.payload),
      str_to_bytes("content-resp"));
  if (!plain.has_value()) return;
  Reader pr(*plain);
  const std::uint8_t status = pr.u8();
  const Bytes abe_ct = pr.bytes();
  pr.expect_done();
  SubMetrics& metrics = sub_metrics();
  if (status != kStatusOk) {
    ++fetch_failures_;
    metrics.fetch_failures.inc();
    return;
  }

  const auto tuple = [&] {
    obs::ScopedTimer t(metrics.reg, metrics.decrypt_seconds,
                       obs::names::kSubDecryptSeconds);
    return abe::cpabe_decrypt_bytes(creds_.abe_pk, creds_.abe_sk, abe_ct);
  }();
  if (!tuple.has_value()) {
    ++undecryptable_;
    metrics.undecryptable.inc();
    return;
  }
  Reader tr(*tuple);
  Delivery delivery;
  delivery.guid = Guid::from_bytes(tr.raw(Guid::kSize));
  delivery.payload = tr.bytes();
  tr.expect_done();
  deliveries_.push_back(delivery);
  metrics.deliveries.inc();
  if (handler_) handler_(deliveries_.back());
}

}  // namespace p3s::core
