#include "p3s/subscriber.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"
#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {

namespace {
struct SubMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& metadata_received =
      reg.counter(obs::names::kSubMetadataReceivedTotal);
  obs::Counter& match_attempts =
      reg.counter(obs::names::kSubMatchAttemptsTotal);
  obs::Counter& match_hits = reg.counter(obs::names::kSubMatchHitsTotal);
  obs::Histogram& match_seconds =
      reg.histogram(obs::names::kSubMatchSeconds);
  obs::Histogram& decrypt_seconds =
      reg.histogram(obs::names::kSubDecryptSeconds);
  obs::Counter& deliveries = reg.counter(obs::names::kSubDeliveriesTotal);
  obs::Counter& fetch_failures =
      reg.counter(obs::names::kSubFetchFailuresTotal);
  obs::Counter& undecryptable =
      reg.counter(obs::names::kSubUndecryptableTotal);
  obs::Counter& token_requests =
      reg.counter(obs::names::kSubTokenRequestsTotal);
  obs::Counter& token_rejections =
      reg.counter(obs::names::kSubTokenRejectionsTotal);
  obs::Counter& match_skipped_width =
      reg.counter(obs::names::kSubMatchSkippedWidth);
  // Reliable request layer (shared p3s.client.* vocabulary).
  obs::Counter& retry = reg.counter(obs::names::kClientRetryTotal);
  obs::Counter& retry_exhausted =
      reg.counter(obs::names::kClientRetryExhaustedTotal);
  obs::Counter& reconnects =
      reg.counter(obs::names::kClientRetryReconnectsTotal);
  obs::Counter& timeouts = reg.counter(obs::names::kClientTimeoutTotal);
};

SubMetrics& sub_metrics() {
  static SubMetrics m;
  return m;
}
}  // namespace

Subscriber::Subscriber(net::Network& network, std::string name,
                       SubscriberCredentials credentials, Rng& rng,
                       bool use_anonymizer, ReliabilityConfig reliability)
    : network_(network),
      name_(std::move(name)),
      creds_(std::move(credentials)),
      rng_(rng),
      use_anonymizer_(use_anonymizer &&
                      !creds_.services.anonymizer_name.empty()),
      reliability_(reliability) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

Subscriber::~Subscriber() { network_.unregister_endpoint(name_); }

void Subscriber::send_sealed(BytesView inner) {
  if (!session_.has_value()) throw std::logic_error("Subscriber: not connected");
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelRecord));
  w.bytes(session_->seal(inner, rng_));
  network_.send(name_, creds_.services.ds_name, w.take());
}

void Subscriber::connect() {
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;
  Bytes hello;
  session_ = net::SecureSession::initiate(pairing, creds_.services.ds_pk, rng_,
                                          hello);
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelHello));
  w.bytes(hello);
  network_.send(name_, creds_.services.ds_name, w.take());
  if (reliability_.enabled) {
    // Reliable registration: the flag byte asks the DS for the sequenced
    // metadata stream, and the ack carries (incarnation, joined index).
    connected_ = false;
    Writer reg;
    reg.u8(1);
    send_sealed(frame(FrameType::kRegisterSubscriber, reg.data()));
    register_deadline_ =
        network_.now() + retry_timeout(reliability_, register_attempts_, rng_);
  } else {
    send_sealed(frame(FrameType::kRegisterSubscriber));
  }
}

void Subscriber::reconnect() { connect(); }

bool Subscriber::unsubscribe(const pbe::Interest& interest) {
  const auto it = std::find(interests_.begin(), interests_.end(), interest);
  if (it == interests_.end()) return false;
  interests_.erase(it);
  // Tokens are not labeled with their interest (unlinkability), so rebuild
  // the token set from the remaining interests. Epoch-restricted tokens are
  // re-requested for the current epoch as a side effect.
  refresh_tokens();
  return true;
}

void Subscriber::disconnect() {
  if (!session_.has_value()) return;
  send_sealed(frame(FrameType::kUnregister));
  session_.reset();
  connected_ = false;
  // A clean departure is not a lost channel: stop the reliable machinery
  // from re-registering or syncing behind the application's back.
  register_deadline_.reset();
  sync_deadline_.reset();
  force_sync_ = false;
}

void Subscriber::refresh_tokens() {
  tokens_.clear();
  reindex_tokens();
  for (const pbe::Interest& interest : interests_) request_token(interest);
}

void Subscriber::reindex_tokens() {
  token_min_widths_.clear();
  token_positions_union_.clear();
  for (const pbe::HveToken& token : tokens_) {
    std::uint32_t max_pos = 0;
    for (const std::uint32_t pos : token.positions) {
      max_pos = std::max(max_pos, pos);
      token_positions_union_.push_back(pos);
    }
    token_min_widths_.push_back(max_pos + 1);
  }
  std::sort(token_positions_union_.begin(), token_positions_union_.end());
  token_positions_union_.erase(
      std::unique(token_positions_union_.begin(),
                  token_positions_union_.end()),
      token_positions_union_.end());
}

void Subscriber::subscribe(const pbe::Interest& interest) {
  // Validate locally first so schema errors throw at the call site.
  (void)creds_.schema.encode_interest(interest);
  interests_.push_back(interest);
  request_token(interest);
}

void Subscriber::send_service_request(const std::string& service,
                                      Bytes request) {
  if (use_anonymizer_) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(FrameType::kAnonForward));
    w.str(service);
    w.bytes(request);
    network_.send(name_, creds_.services.anonymizer_name, w.take());
  } else {
    network_.send(name_, service, std::move(request));
  }
}

void Subscriber::request_token(const pbe::Interest& interest) {
  sub_metrics().token_requests.inc();
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;

  // Token-revocation epochs (§6.1): restrict the predicate to the current
  // epoch so the resulting token expires when the epoch rolls over.
  pbe::Interest effective = interest;
  if (creds_.epoch.has_value()) {
    effective = creds_.epoch->restrict(std::move(effective), network_.now());
  }

  // §8 alternative configuration: PBE-TS embedded in the subscriber — the
  // predicate never leaves this process.
  if (creds_.embedded_hve.has_value()) {
    tokens_.push_back(pbe::hve_gen_token(
        *creds_.embedded_hve, creds_.schema.encode_interest(effective), rng_));
    reindex_tokens();
    return;
  }

  // Fig. 3: 3-tuple (Ks, subscriber certificate, plaintext predicate)
  // under the PBE-TS public key.
  const Bytes ks = rng_.bytes(32);
  Writer plain;
  plain.bytes(ks);
  plain.bytes(creds_.certificate.serialize(pairing));
  plain.bytes(pbe::serialize_string_map(effective));
  const Bytes blob = pairing::ecies_encrypt(
      pairing, creds_.services.pbe_ts_pk, plain.data(), rng_);

  const std::uint64_t tag = next_tag_++;
  pending_token_ks_[tag] = ks;
  Bytes request = tagged_frame(FrameType::kTokenRequest, tag, blob);
  if (reliability_.enabled) {
    // Retries re-send the exact same bytes: same tag, same Ks, so a late
    // first response and a retry response are interchangeable and the
    // second one finds no pending Ks — deduplicated for free. Track before
    // sending: on DirectNetwork the response arrives inside this call.
    PendingRequest p;
    p.request = request;
    p.service = creds_.services.pbe_ts_name;
    p.deadline = network_.now() + retry_timeout(reliability_, 0, rng_);
    pending_token_requests_.emplace(tag, std::move(p));
  }
  send_service_request(creds_.services.pbe_ts_name, std::move(request));
}

void Subscriber::request_content(const Guid& guid) {
  if (!requested_guids_.insert(guid).second) return;  // already in flight
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;
  // Fig. 4: 2-tuple (Ks, GUID) under the RS public key.
  const Bytes ks = rng_.bytes(32);
  Writer plain;
  plain.bytes(ks);
  plain.raw(guid.to_bytes());
  const Bytes blob = pairing::ecies_encrypt(pairing, creds_.services.rs_pk,
                                            plain.data(), rng_);
  const std::uint64_t tag = next_tag_++;
  pending_content_ks_[tag] = ks;
  Bytes request = tagged_frame(FrameType::kContentRequest, tag, blob);
  if (reliability_.enabled) {
    PendingRequest p;
    p.request = request;
    p.service = creds_.services.rs_name;
    p.deadline = network_.now() + retry_timeout(reliability_, 0, rng_);
    pending_content_requests_.emplace(tag, std::move(p));
  }
  send_service_request(creds_.services.rs_name, std::move(request));
}

void Subscriber::request_metadata_replay(std::uint64_t from_index) {
  if (!session_.has_value()) return;
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kMetaSyncRequest));
  w.u64(from_index);
  send_sealed(w.data());
}

void Subscriber::send_sync(double now) {
  // Ask for the lowest known gap, or for "anything new" when gapless. The
  // DS replays [from, its next) and finishes with kMetaSyncInfo, which is
  // what actually reveals gaps (and restarts) to us.
  const std::uint64_t from =
      missing_meta_.empty() ? next_meta_index_ : *missing_meta_.begin();
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kMetaSyncRequest));
  w.u64(from);
  send_sealed(w.data());
  force_sync_ = false;
  sync_deadline_ = now + retry_timeout(reliability_, sync_failures_, rng_);
  next_heartbeat_ = now + reliability_.sync_interval;
}

void Subscriber::retry_requests(
    std::map<std::uint64_t, PendingRequest>& pending, double now) {
  SubMetrics& metrics = sub_metrics();
  for (auto it = pending.begin(); it != pending.end();) {
    PendingRequest& p = it->second;
    if (now < p.deadline) {
      ++it;
      continue;
    }
    metrics.timeouts.inc();
    if (p.attempts >= reliability_.max_attempts) {
      // Surface the failure at the application level (§6.1) instead of
      // retrying forever; the Ks entry stays so a very late response can
      // still complete the request.
      ++request_failures_;
      metrics.retry_exhausted.inc();
      it = pending.erase(it);
      continue;
    }
    ++p.attempts;
    ++retries_;
    metrics.retry.inc();
    send_service_request(p.service, p.request);
    p.deadline = now + retry_timeout(reliability_, p.attempts - 1, rng_);
    ++it;
  }
}

void Subscriber::poll() {
  if (!reliability_.enabled) return;
  const double now = network_.now();
  SubMetrics& metrics = sub_metrics();

  if (!connected_ && register_deadline_.has_value() &&
      now >= *register_deadline_) {
    metrics.timeouts.inc();
    ++register_attempts_;
    if (register_attempts_ >= reliability_.max_attempts) {
      metrics.retry_exhausted.inc();
      register_deadline_.reset();
    } else {
      metrics.retry.inc();
      metrics.reconnects.inc();
      ++retries_;
      connect();  // fresh hello + register (also resets the deadline)
    }
  }

  retry_requests(pending_token_requests_, now);
  retry_requests(pending_content_requests_, now);

  if (!connected_ || !meta_baseline_) return;
  if (sync_deadline_.has_value() && now >= *sync_deadline_) {
    metrics.timeouts.inc();
    sync_deadline_.reset();
    ++sync_failures_;
    ++retries_;
    if (sync_failures_ >= reliability_.reconnect_after) {
      // Repeated unanswered syncs: assume the channel (or the DS) died —
      // e.g. an endpoint restart wiped our registration. Re-establish and
      // let the post-ack sync repair whatever we missed.
      metrics.reconnects.inc();
      sync_failures_ = 0;
      connect();
      return;
    }
    metrics.retry.inc();
  }
  if (!sync_deadline_.has_value() &&
      (force_sync_ || !missing_meta_.empty() || now >= next_heartbeat_)) {
    send_sync(now);
  }
}

void Subscriber::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const FrameType type = read_frame_type(r);
    switch (type) {
      case FrameType::kChannelRecord: {
        if (!session_.has_value()) return;
        const Bytes record = r.bytes();
        r.expect_done();
        const auto inner = session_->open(record);
        if (inner.has_value()) handle_inner(*inner);
        return;
      }
      case FrameType::kTokenResponse:
        handle_token_response(data.subspan(1));
        return;
      case FrameType::kContentResponse:
        handle_content_response(data.subspan(1));
        return;
      default:
        return;
    }
  } catch (const std::exception& e) {
    log_warn("sub:" + name_) << "bad frame from " << from << ": " << e.what();
  }
}

void Subscriber::handle_inner(BytesView inner) {
  Reader r(inner);
  const FrameType type = read_frame_type(r);
  if (type == FrameType::kAck) {
    connected_ = true;
    register_deadline_.reset();
    register_attempts_ = 0;
    if (!r.done()) handle_reliable_ack(r);
    return;
  }
  if (type == FrameType::kMetadataDelivery) {
    const Bytes hve_ct = r.bytes();
    skip_pad(r);  // hardened DS pads broadcasts to a bucket
    handle_metadata(hve_ct);
    return;
  }
  if (type == FrameType::kMetadataDeliverySeq) {
    handle_sequenced_metadata(r);
    return;
  }
  if (type == FrameType::kMetaSyncInfo) {
    handle_sync_info(r);
    return;
  }
}

void Subscriber::handle_reliable_ack(Reader& r) {
  const std::uint64_t incarnation = r.u64();
  const std::uint64_t joined = r.u64();
  r.expect_done();
  if (!meta_baseline_) {
    // First ack pins the baseline: we are entitled to everything from our
    // join index on. Broadcasts that raced ahead of this ack were dropped
    // on purpose — the forced sync replays them from the DS ring.
    meta_baseline_ = true;
    ds_incarnation_ = incarnation;
    next_meta_index_ = joined;
    missing_meta_.clear();
    force_sync_ = true;
    return;
  }
  if (ds_incarnation_ != incarnation) {
    // The DS restarted: its index space restarted at 0 and the ring was
    // wiped, so prior gaps are unrecoverable. Start over from 0 and sync
    // to pull whatever the new incarnation has broadcast so far.
    ds_incarnation_ = incarnation;
    next_meta_index_ = 0;
    missing_meta_.clear();
    force_sync_ = true;
  }
  // Same-incarnation re-ack (retried registration): stream state stands.
}

void Subscriber::handle_sequenced_metadata(Reader& r) {
  const std::uint64_t index = r.u64();
  const Bytes hve_ct = r.bytes();
  skip_pad(r);  // hardened DS pads broadcasts to a bucket
  if (!meta_baseline_) return;  // pre-ack frame; recovered via sync
  if (index >= next_meta_index_) {
    for (std::uint64_t i = next_meta_index_; i < index; ++i) {
      missing_meta_.insert(i);
    }
    next_meta_index_ = index + 1;
    handle_metadata(hve_ct);
    return;
  }
  if (missing_meta_.erase(index) > 0) {
    handle_metadata(hve_ct);
    return;
  }
  // Already processed: a duplicated frame or a sync replay overlapping what
  // arrived out of order in the meantime. Never processed twice.
  ++duplicate_metadata_;
}

void Subscriber::handle_sync_info(Reader& r) {
  const std::uint64_t incarnation = r.u64();
  const std::uint64_t ds_next = r.u64();
  r.expect_done();
  if (!meta_baseline_) return;
  if (ds_incarnation_ != incarnation) {
    ds_incarnation_ = incarnation;
    next_meta_index_ = 0;
    missing_meta_.clear();
    force_sync_ = true;
  } else {
    // Everything below the DS's next index exists; anything we have not
    // seen yet is a gap to repair on the next sync round.
    for (std::uint64_t i = next_meta_index_; i < ds_next; ++i) {
      missing_meta_.insert(i);
    }
    next_meta_index_ = std::max(next_meta_index_, ds_next);
  }
  sync_deadline_.reset();
  sync_failures_ = 0;
}

void Subscriber::handle_metadata(BytesView hve_ct) {
  ++metadata_received_;
  SubMetrics& metrics = sub_metrics();
  metrics.metadata_received.inc();
  const pairing::Pairing& pairing = *creds_.abe_pk.pairing;

  // Local matching on encrypted metadata. A successful KEM decryption
  // reveals exactly the GUID — nothing else about the metadata (attribute
  // hiding). The ciphertext-side Miller state is prepared once per
  // broadcast (restricted to positions some token probes) and shared by
  // every token evaluation, which run on the global pool with first-hit
  // short-circuit.
  std::optional<Guid> matched;
  {
    obs::ScopedTimer match_timer(metrics.reg, metrics.match_seconds,
                                 obs::names::kSubMatchSeconds);
    try {
      if (!tokens_.empty()) {
        const pbe::HveMatchCt prepared = pbe::hve_match_prepare(
            pairing, hve_ct, &token_positions_union_);
        // Width pre-filter: a token probing a position beyond this
        // broadcast's width can never match — skip it before any pairing.
        std::vector<const pbe::HveToken*> eligible;
        eligible.reserve(tokens_.size());
        for (std::size_t i = 0; i < tokens_.size(); ++i) {
          if (token_min_widths_[i] > prepared.width()) {
            metrics.match_skipped_width.inc();
            continue;
          }
          eligible.push_back(&tokens_[i]);
        }
        metrics.match_attempts.inc(eligible.size());
        const pbe::HveMatchResult res =
            pbe::hve_match_any(pairing, eligible, prepared);
        if (res.matched() && res.payload.size() == Guid::kSize) {
          ++matches_;
          metrics.match_hits.inc();
          matched = Guid::from_bytes(res.payload);
        }
      }
    } catch (const std::exception&) {
      // Malformed broadcast — same outcome as a universal non-match.
    }
  }  // the match timer ends at the decision; the RS fetch is not match time
  if (matched.has_value()) request_content(*matched);
}

void Subscriber::handle_token_response(BytesView body) {
  Reader r(body);
  const TaggedBody tagged = read_tagged(r);
  const auto it = pending_token_ks_.find(tagged.tag);
  if (it == pending_token_ks_.end()) return;
  const Bytes ks = it->second;
  pending_token_ks_.erase(it);
  pending_token_requests_.erase(tagged.tag);

  const auto plain = crypto::aead_decrypt(
      ks, crypto::AeadCiphertext::deserialize(tagged.payload),
      str_to_bytes("token-resp"));
  if (!plain.has_value()) return;
  Reader pr(*plain);
  const std::uint8_t status = pr.u8();
  const Bytes token_bytes = pr.bytes();
  pr.expect_done();
  if (status != kStatusOk) {
    ++token_rejections_;
    sub_metrics().token_rejections.inc();
    return;
  }
  tokens_.push_back(
      pbe::HveToken::deserialize(*creds_.abe_pk.pairing, token_bytes));
  reindex_tokens();
}

void Subscriber::handle_content_response(BytesView body) {
  Reader r(body);
  const TaggedBody tagged = read_tagged(r);
  const auto it = pending_content_ks_.find(tagged.tag);
  if (it == pending_content_ks_.end()) return;
  const Bytes ks = it->second;
  pending_content_ks_.erase(it);
  pending_content_requests_.erase(tagged.tag);

  const auto plain = crypto::aead_decrypt(
      ks, crypto::AeadCiphertext::deserialize(tagged.payload),
      str_to_bytes("content-resp"));
  if (!plain.has_value()) return;
  Reader pr(*plain);
  const std::uint8_t status = pr.u8();
  const Bytes abe_ct = pr.bytes();
  skip_pad(pr);  // hardened RS pads responses inside the AEAD
  SubMetrics& metrics = sub_metrics();
  if (status != kStatusOk) {
    ++fetch_failures_;
    metrics.fetch_failures.inc();
    return;
  }

  const auto tuple = [&] {
    obs::ScopedTimer t(metrics.reg, metrics.decrypt_seconds,
                       obs::names::kSubDecryptSeconds);
    return abe::cpabe_decrypt_bytes(creds_.abe_pk, creds_.abe_sk, abe_ct);
  }();
  if (!tuple.has_value()) {
    ++undecryptable_;
    metrics.undecryptable.inc();
    return;
  }
  Reader tr(*tuple);
  Delivery delivery;
  delivery.guid = Guid::from_bytes(tr.raw(Guid::kSize));
  delivery.payload = tr.bytes();
  tr.expect_done();
  // GUID-level exactly-once, defense in depth behind the tag/Ks dedup: even
  // a replayed response for a re-requested GUID never delivers twice.
  if (!delivered_guids_.insert(delivery.guid).second) {
    ++duplicate_metadata_;
    return;
  }
  deliveries_.push_back(delivery);
  metrics.deliveries.inc();
  if (handler_) handler_(deliveries_.back());
}

}  // namespace p3s::core
