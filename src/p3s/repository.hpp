// Repository Server (paper §4.1, §4.3): stores CP-ABE-encrypted payloads
// indexed by GUID, serves them to anonymous requesters, and garbage-collects
// per the publisher's TTL plus a configurable grace period T_G (paper's
// "Deletion" paragraph: items are deleted after TTL_pub + T_G; with T_G = 0
// slow consumers may miss matched items).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/guid.hpp"
#include "net/network.hpp"
#include "pairing/ecies.hpp"

namespace p3s::core {

class RepositoryServer {
 public:
  /// `grace_seconds` is T_G. Time comes from the network clock.
  RepositoryServer(net::Network& network, std::string name,
                   pairing::PairingPtr pairing, Rng& rng,
                   double grace_seconds = 5.0);
  ~RepositoryServer();

  const std::string& name() const { return name_; }
  const pairing::Point& public_key() const { return keys_.public_key; }

  /// Delete all items past TTL_pub + T_G (the paper's garbage collector).
  /// Returns how many items were collected.
  std::size_t garbage_collect();

  /// Hardening (DESIGN.md §11): pad the plaintext of every content response
  /// up to a multiple of `bucket` BEFORE sealing under Ks, so hit and miss
  /// (and small vs. large payloads within a bucket) produce identically
  /// sized frames on both the rs→anon and anon→sub legs. 0 disables.
  void set_response_pad_bucket(std::size_t bucket) {
    response_pad_bucket_ = bucket;
  }
  std::size_t response_pad_bucket() const { return response_pad_bucket_; }

  std::size_t stored_items() const { return store_.size(); }

  /// --- Curious log (paper §6.1: what the HBC RS can know) ---------------
  /// Request count per GUID ("can keep track of whether a payload has ever
  /// been requested and how many requests have been received").
  const std::map<Guid, std::size_t>& request_counts() const {
    return request_counts_;
  }
  /// Sizes of stored ciphertexts (visible), publisher identity is NOT
  /// among the observations: everything arrives from the DS.
  const std::vector<std::string>& frame_sources() const { return sources_; }

  /// --- Persistence (the paper's RS stores encrypted content on disk and
  /// resumes after crash without re-encryption) --------------------------
  Bytes snapshot() const;
  void restore(BytesView snapshot);
  /// Disk-backed variants (the paper's prototype used an embedded Derby
  /// database; a flat snapshot file preserves the same property). Throws
  /// std::runtime_error on I/O failure.
  void save_to_file(const std::string& path) const;
  void load_from_file(const std::string& path);

 private:
  struct Item {
    Bytes abe_ciphertext;
    double expires_at;  // absolute network time incl. grace
  };

  void on_frame(const std::string& from, BytesView frame);

  net::Network& network_;
  std::string name_;
  pairing::PairingPtr pairing_;
  pairing::EciesKeyPair keys_;
  Rng& rng_;
  double grace_seconds_;
  std::size_t response_pad_bucket_ = 0;
  std::map<Guid, Item> store_;
  std::map<Guid, std::size_t> request_counts_;
  std::vector<std::string> sources_;
};

}  // namespace p3s::core
