// Convenience wiring: deploys a full P3S instance (ARA + DS + RS + PBE-TS +
// optional anonymizer) on a Network and hands out registered clients.
// This is the entry point the examples and integration tests use.
#pragma once

#include <memory>
#include <string>

#include "p3s/anonymizer.hpp"
#include "p3s/ara.hpp"
#include "p3s/dissemination.hpp"
#include "p3s/publisher.hpp"
#include "p3s/repository.hpp"
#include "p3s/subscriber.hpp"
#include "p3s/token_server.hpp"

namespace p3s::core {

struct P3sConfig {
  pairing::PairingPtr pairing;
  pbe::MetadataSchema schema = pbe::MetadataSchema::uniform(2, 2);
  double rs_grace_seconds = 5.0;  // T_G
  bool with_anonymizer = true;
  /// Token-revocation epochs (§6.1 mitigation); nullopt = timeless tokens.
  std::optional<pbe::EpochPolicy> epoch;
  /// §8 alternative configuration: embed the PBE-TS in every subscriber.
  bool embedded_token_server = false;
  /// Reliable request layer for every client this system hands out
  /// (DESIGN.md "Reliability"). Off by default: the wire traffic is then
  /// bit-identical to the fire-and-forget base protocol.
  ReliabilityConfig reliability;
  /// Traffic-shaping defenses (DESIGN.md §11) — all off by default so the
  /// base wire protocol is byte-identical to the unhardened system.
  AnonHardening anon_hardening;
  DsHardening ds_hardening;
  std::size_t rs_response_pad_bucket = 0;
  std::string ds_name = "ds";
  std::string rs_name = "rs";
  std::string ts_name = "pbe-ts";
  std::string anon_name = "anon";
};

class P3sSystem {
 public:
  P3sSystem(net::Network& network, P3sConfig config, Rng& rng);

  Ara& ara() { return ara_; }
  DisseminationServer& ds() { return *ds_; }
  RepositoryServer& rs() { return *rs_; }
  PbeTokenServer& token_server() { return *ts_; }
  /// nullptr when the system runs without anonymization.
  Anonymizer* anonymizer() { return anon_.get(); }
  const ServiceDirectory& directory() const { return directory_; }
  net::Network& network() { return network_; }

  /// Register + connect a subscriber in one step.
  std::unique_ptr<Subscriber> make_subscriber(
      const std::string& endpoint_name, const std::string& pseudonym,
      const std::set<std::string>& attributes, Rng& rng);

  /// Register + connect a publisher in one step.
  std::unique_ptr<Publisher> make_publisher(const std::string& endpoint_name,
                                            const std::string& pseudonym,
                                            Rng& rng);

 private:
  net::Network& network_;
  P3sConfig config_;
  Ara ara_;
  std::unique_ptr<RepositoryServer> rs_;
  std::unique_ptr<PbeTokenServer> ts_;
  std::unique_ptr<DisseminationServer> ds_;
  std::unique_ptr<Anonymizer> anon_;
  ServiceDirectory directory_;
};

}  // namespace p3s::core
