// Modular arithmetic on BigInt: the helpers needed by finite fields and the
// pairing layer. All functions expect a positive modulus.
#pragma once

#include "math/bigint.hpp"

namespace p3s::math {

class Montgomery;

/// a mod m, normalized into [0, m).
BigInt mod(const BigInt& a, const BigInt& m);

/// (a + b) mod m with both inputs already in [0, m).
BigInt mod_add(const BigInt& a, const BigInt& b, const BigInt& m);

/// (a - b) mod m with both inputs already in [0, m).
BigInt mod_sub(const BigInt& a, const BigInt& b, const BigInt& m);

/// (a * b) mod m.
BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m);

/// base^exp mod m (exp >= 0). Fixed 4-bit window exponentiation.
BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m);

/// Multiplicative inverse of a mod m. Throws std::domain_error if
/// gcd(a, m) != 1.
BigInt mod_inv(const BigInt& a, const BigInt& m);

/// Greatest common divisor (non-negative).
BigInt gcd(BigInt a, BigInt b);

/// Legendre symbol helper: true iff a is a quadratic residue mod odd prime p
/// (a must be in [0, p); 0 counts as a residue).
bool is_quadratic_residue(const BigInt& a, const BigInt& p);

/// Square root mod a prime p with p % 4 == 3 (the only case the Type-A
/// pairing curve needs): returns r with r^2 = a (mod p). Throws
/// std::domain_error if a is not a residue or p % 4 != 3.
BigInt mod_sqrt_3mod4(const BigInt& a, const BigInt& p);

/// Same predicates on a prebuilt Montgomery context for p: callers that
/// already hold one (the pairing stack) skip the per-call context setup and
/// get CIOS exponentiation for any modulus size.
bool is_quadratic_residue(const BigInt& a, const Montgomery& mp);
BigInt mod_sqrt_3mod4(const BigInt& a, const Montgomery& mp);

}  // namespace p3s::math
