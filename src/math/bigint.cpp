#include "math/bigint.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace p3s::math {

using u64 = std::uint64_t;
using u128 = unsigned __int128;
using Limbs = std::vector<u64>;

namespace {
// Karatsuba kicks in above this many limbs per operand.
constexpr std::size_t kKaratsubaThreshold = 24;
}  // namespace

BigInt::BigInt(std::int64_t v) {
  if (v < 0) {
    negative_ = true;
    // Careful with INT64_MIN.
    limbs_.push_back(static_cast<u64>(-(v + 1)) + 1);
  } else if (v > 0) {
    limbs_.push_back(static_cast<u64>(v));
  }
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(v);
}

BigInt BigInt::from_limbs_le(std::vector<std::uint64_t> limbs) {
  return from_limbs(std::move(limbs), /*negative=*/false);
}

BigInt BigInt::from_limbs(Limbs limbs, bool negative) {
  BigInt r;
  r.limbs_ = std::move(limbs);
  r.negative_ = negative;
  r.normalize();
  return r;
}

void BigInt::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::cmp_mag(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

std::strong_ordering BigInt::operator<=>(const BigInt& b) const {
  if (negative_ != b.negative_) {
    return negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  }
  int c = cmp_mag(*this, b);
  if (negative_) c = -c;
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

Limbs BigInt::add_mag(const Limbs& a, const Limbs& b) {
  const Limbs& big = a.size() >= b.size() ? a : b;
  const Limbs& small = a.size() >= b.size() ? b : a;
  Limbs out(big.size() + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    u128 sum = static_cast<u128>(big[i]) + (i < small.size() ? small[i] : 0) + carry;
    out[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out[big.size()] = carry;
  return out;
}

Limbs BigInt::sub_mag(const Limbs& a, const Limbs& b) {
  Limbs out(a.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u128 bi = (i < b.size() ? b[i] : 0);
    u128 ai = a[i];
    u128 rhs = bi + static_cast<u64>(borrow);
    if (ai >= rhs) {
      out[i] = static_cast<u64>(ai - rhs);
      borrow = 0;
    } else {
      out[i] = static_cast<u64>((u128{1} << 64) + ai - rhs);
      borrow = 1;
    }
  }
  return out;
}

namespace {
Limbs mul_school(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  Limbs out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 carry = 0;
    const u128 ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      u128 cur = static_cast<u128>(out[i + j]) + ai * b[j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + b.size()] = carry;
  }
  return out;
}

Limbs limbs_shifted(const Limbs& a, std::size_t limb_shift) {
  if (a.empty()) return {};
  Limbs out(a.size() + limb_shift, 0);
  std::copy(a.begin(), a.end(), out.begin() + limb_shift);
  return out;
}

void trim(Limbs& a) {
  while (!a.empty() && a.back() == 0) a.pop_back();
}

Limbs add_limbs(const Limbs& a, const Limbs& b);
Limbs sub_limbs(const Limbs& a, const Limbs& b);

Limbs add_limbs(const Limbs& a, const Limbs& b) {
  const Limbs& big = a.size() >= b.size() ? a : b;
  const Limbs& small = a.size() >= b.size() ? b : a;
  Limbs out(big.size() + 1, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < big.size(); ++i) {
    u128 sum = static_cast<u128>(big[i]) + (i < small.size() ? small[i] : 0) + carry;
    out[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> 64);
  }
  out[big.size()] = carry;
  trim(out);
  return out;
}

// Requires a >= b as magnitudes.
Limbs sub_limbs(const Limbs& a, const Limbs& b) {
  Limbs out(a.size(), 0);
  u64 borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u128 bi = static_cast<u128>(i < b.size() ? b[i] : 0) + borrow;
    u128 ai = a[i];
    if (ai >= bi) {
      out[i] = static_cast<u64>(ai - bi);
      borrow = 0;
    } else {
      out[i] = static_cast<u64>((u128{1} << 64) + ai - bi);
      borrow = 1;
    }
  }
  trim(out);
  return out;
}

Limbs mul_karatsuba(const Limbs& a, const Limbs& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return mul_school(a, b);
  }
  const std::size_t half = std::max(a.size(), b.size()) / 2;
  Limbs a0(a.begin(), a.begin() + std::min(half, a.size()));
  Limbs a1(a.begin() + std::min(half, a.size()), a.end());
  Limbs b0(b.begin(), b.begin() + std::min(half, b.size()));
  Limbs b1(b.begin() + std::min(half, b.size()), b.end());
  trim(a0);
  trim(b0);

  Limbs z0 = mul_karatsuba(a0, b0);
  Limbs z2 = mul_karatsuba(a1, b1);
  Limbs sa = add_limbs(a0, a1);
  Limbs sb = add_limbs(b0, b1);
  Limbs z1 = mul_karatsuba(sa, sb);
  z1 = sub_limbs(z1, add_limbs(z0, z2));

  Limbs out = add_limbs(z0, limbs_shifted(z1, half));
  out = add_limbs(out, limbs_shifted(z2, 2 * half));
  return out;
}
}  // namespace

Limbs BigInt::mul_mag(const Limbs& a, const Limbs& b) {
  return mul_karatsuba(a, b);
}

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.negative_ == b.negative_) {
    return BigInt::from_limbs(BigInt::add_mag(a.limbs_, b.limbs_), a.negative_);
  }
  int c = BigInt::cmp_mag(a, b);
  if (c == 0) return BigInt{};
  if (c > 0) {
    return BigInt::from_limbs(BigInt::sub_mag(a.limbs_, b.limbs_), a.negative_);
  }
  return BigInt::from_limbs(BigInt::sub_mag(b.limbs_, a.limbs_), b.negative_);
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + (-b); }

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

BigInt operator*(const BigInt& a, const BigInt& b) {
  return BigInt::from_limbs(BigInt::mul_mag(a.limbs_, b.limbs_),
                            a.negative_ != b.negative_);
}

BigInt operator<<(const BigInt& a, std::size_t n) {
  if (a.is_zero() || n == 0) return a;
  const std::size_t limb_shift = n / 64;
  const unsigned bit_shift = n % 64;
  Limbs out(a.limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    out[i + limb_shift] |= bit_shift == 0 ? a.limbs_[i] : (a.limbs_[i] << bit_shift);
    if (bit_shift != 0) {
      out[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
    }
  }
  return BigInt::from_limbs(std::move(out), a.negative_);
}

BigInt operator>>(const BigInt& a, std::size_t n) {
  const std::size_t limb_shift = n / 64;
  if (limb_shift >= a.limbs_.size()) return BigInt{};
  const unsigned bit_shift = n % 64;
  Limbs out(a.limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < a.limbs_.size()) {
      out[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
    }
  }
  return BigInt::from_limbs(std::move(out), a.negative_);
}

DivMod BigInt::divmod(const BigInt& a, const BigInt& b) {
  if (b.is_zero()) throw std::domain_error("BigInt: division by zero");
  if (cmp_mag(a, b) < 0) return {BigInt{}, a};

  // Magnitude division first; signs fixed up at the end.
  Limbs q_mag;
  Limbs r_mag;

  if (b.limbs_.size() == 1) {
    const u64 d = b.limbs_[0];
    q_mag.assign(a.limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = a.limbs_.size(); i-- > 0;) {
      u128 cur = (rem << 64) | a.limbs_[i];
      q_mag[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    if (rem != 0) r_mag.push_back(static_cast<u64>(rem));
  } else {
    // Knuth Algorithm D (TAOCP vol 2, 4.3.1) with 64-bit limbs.
    const int s = std::countl_zero(b.limbs_.back());
    BigInt vb = b.abs() << static_cast<std::size_t>(s);
    BigInt ub = a.abs() << static_cast<std::size_t>(s);
    Limbs v = vb.limbs_;
    Limbs u = ub.limbs_;
    const std::size_t n = v.size();
    const std::size_t m = u.size() - n;
    u.push_back(0);  // u has m+n+1 limbs
    q_mag.assign(m + 1, 0);

    const u64 vtop = v[n - 1];
    const u64 vsec = v[n - 2];
    for (std::size_t j = m + 1; j-- > 0;) {
      // Estimate qhat = (u[j+n]*B + u[j+n-1]) / vtop.
      u128 num = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
      u128 qhat = num / vtop;
      u128 rhat = num % vtop;
      while (qhat >= (u128{1} << 64) ||
             qhat * vsec > ((rhat << 64) | u[j + n - 2])) {
        --qhat;
        rhat += vtop;
        if (rhat >= (u128{1} << 64)) break;
      }
      // Multiply-subtract: u[j..j+n] -= qhat * v.
      u128 borrow = 0;
      u128 carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u128 p = qhat * v[i] + carry;
        carry = p >> 64;
        u64 plo = static_cast<u64>(p);
        u128 sub = static_cast<u128>(u[i + j]) - plo - borrow;
        u[i + j] = static_cast<u64>(sub);
        borrow = (sub >> 64) & 1;  // 1 if underflow
      }
      u128 sub = static_cast<u128>(u[j + n]) - carry - borrow;
      u[j + n] = static_cast<u64>(sub);
      bool negative = ((sub >> 64) & 1) != 0;

      q_mag[j] = static_cast<u64>(qhat);
      if (negative) {
        // qhat was one too large: add v back.
        --q_mag[j];
        u128 c2 = 0;
        for (std::size_t i = 0; i < n; ++i) {
          u128 sum = static_cast<u128>(u[i + j]) + v[i] + c2;
          u[i + j] = static_cast<u64>(sum);
          c2 = sum >> 64;
        }
        u[j + n] = static_cast<u64>(u[j + n] + c2);
      }
    }
    // Remainder = u[0..n) >> s.
    Limbs rl(u.begin(), u.begin() + n);
    BigInt r = BigInt::from_limbs(std::move(rl), false) >> static_cast<std::size_t>(s);
    r_mag = r.limbs_;
  }

  BigInt q = from_limbs(std::move(q_mag), a.negative_ != b.negative_);
  BigInt r = from_limbs(std::move(r_mag), a.negative_);
  return {std::move(q), std::move(r)};
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).quot;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  return BigInt::divmod(a, b).rem;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  return 64 * (limbs_.size() - 1) +
         (64 - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

std::uint64_t BigInt::to_u64() const {
  if (negative_) throw std::overflow_error("BigInt::to_u64: negative value");
  if (limbs_.size() > 1) throw std::overflow_error("BigInt::to_u64: too large");
  return limbs_.empty() ? 0 : limbs_[0];
}

BigInt BigInt::from_dec(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigInt::from_dec: empty");
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '-') {
    neg = true;
    i = 1;
    if (s.size() == 1) throw std::invalid_argument("BigInt::from_dec: lone '-'");
  }
  BigInt r;
  const BigInt ten{std::uint64_t{10}};
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      throw std::invalid_argument("BigInt::from_dec: non-digit");
    }
    r = r * ten + BigInt{static_cast<std::uint64_t>(s[i] - '0')};
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

BigInt BigInt::from_hex(std::string_view s) {
  if (s.empty()) throw std::invalid_argument("BigInt::from_hex: empty");
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '-') {
    neg = true;
    i = 1;
    if (s.size() == 1) throw std::invalid_argument("BigInt::from_hex: lone '-'");
  }
  BigInt r;
  for (; i < s.size(); ++i) {
    char c = s[i];
    int v;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else throw std::invalid_argument("BigInt::from_hex: non-hex digit");
    r = (r << 4) + BigInt{static_cast<std::uint64_t>(v)};
  }
  if (neg && !r.is_zero()) r.negative_ = true;
  return r;
}

BigInt BigInt::from_bytes(BytesView data) {
  BigInt r;
  for (std::uint8_t b : data) {
    r = (r << 8) + BigInt{static_cast<std::uint64_t>(b)};
  }
  return r;
}

std::string BigInt::to_dec() const {
  if (is_zero()) return "0";
  BigInt v = abs();
  const BigInt chunk{std::uint64_t{10'000'000'000'000'000'000ull}};  // 10^19
  std::vector<u64> groups;
  while (!v.is_zero()) {
    auto [q, r] = divmod(v, chunk);
    groups.push_back(r.is_zero() ? 0 : r.limbs_[0]);
    v = std::move(q);
  }
  std::string out = negative_ ? "-" : "";
  out += std::to_string(groups.back());
  for (std::size_t i = groups.size() - 1; i-- > 0;) {
    std::string part = std::to_string(groups[i]);
    out += std::string(19 - part.size(), '0') + part;
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(digits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  out = out.substr(first);
  if (negative_) out.insert(out.begin(), '-');
  return out;
}

Bytes BigInt::to_bytes(std::size_t min_len) const {
  if (negative_) throw std::domain_error("BigInt::to_bytes: negative value");
  Bytes out;
  const std::size_t nbytes = (bit_length() + 7) / 8;
  out.resize(std::max(nbytes, min_len), 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    const std::size_t limb = i / 8;
    out[out.size() - 1 - i] =
        static_cast<std::uint8_t>(limbs_[limb] >> (8 * (i % 8)));
  }
  return out;
}

BigInt BigInt::random_bits(Rng& rng, std::size_t bits) {
  if (bits == 0) return BigInt{};
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes buf = rng.bytes(nbytes);
  // Clear excess high bits, then force the top bit so the width is exact.
  const unsigned excess = static_cast<unsigned>(nbytes * 8 - bits);
  buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
  buf[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return from_bytes(buf);
}

BigInt BigInt::random_below(Rng& rng, const BigInt& bound) {
  if (bound <= BigInt{}) {
    throw std::invalid_argument("BigInt::random_below: bound must be positive");
  }
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const unsigned excess = static_cast<unsigned>(nbytes * 8 - bits);
  for (;;) {
    Bytes buf = rng.bytes(nbytes);
    buf[0] &= static_cast<std::uint8_t>(0xff >> excess);
    BigInt v = from_bytes(buf);
    if (v < bound) return v;
  }
}

}  // namespace p3s::math
