#include "math/montgomery.hpp"

#include <array>
#include <stdexcept>

#include "math/modular.hpp"

namespace p3s::math {

namespace {
using u64 = std::uint64_t;
using u128 = unsigned __int128;

// -x⁻¹ mod 2^64 for odd x (Newton–Hensel lifting: 6 iterations double the
// precision each time: 2, 4, 8, 16, 32, 64 bits).
u64 neg_inv64(u64 x) {
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - x * inv;
  return ~inv + 1;  // -inv
}
}  // namespace

Montgomery::Montgomery(const BigInt& modulus) : n_(modulus) {
  if (n_ <= BigInt{1} || n_.is_even()) {
    throw std::invalid_argument("Montgomery: modulus must be odd and > 1");
  }
  n_limbs_ = n_.limbs();
  n0_inv_ = neg_inv64(n_limbs_[0]);
  // R² mod n by repeated modular doubling of R mod n.
  const std::size_t k = n_limbs_.size();
  BigInt r = mod(BigInt{1} << (64 * k), n_);
  one_mont_ = r;
  BigInt r2 = r;
  for (std::size_t i = 0; i < 64 * k; ++i) {
    r2 = mod_add(r2, r2, n_);
  }
  r2_ = r2;
}

std::vector<u64> Montgomery::mont_mul_limbs(const std::vector<u64>& a,
                                            const std::vector<u64>& b) const {
  // CIOS (coarsely integrated operand scanning), Koç et al.
  const std::size_t k = n_limbs_.size();
  std::vector<u64> t(k + 2, 0);
  for (std::size_t i = 0; i < k; ++i) {
    const u128 ai = i < a.size() ? a[i] : 0;
    // t += a[i] * b
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const u128 bj = j < b.size() ? b[j] : 0;
      const u128 cur = static_cast<u128>(t[j]) + ai * bj + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<u64>(cur);
    t[k + 1] = static_cast<u64>(cur >> 64);

    // Reduce: add m·n and shift one word.
    const u64 m = t[0] * n0_inv_;
    u128 acc = static_cast<u128>(t[0]) + static_cast<u128>(m) * n_limbs_[0];
    carry = static_cast<u64>(acc >> 64);
    for (std::size_t j = 1; j < k; ++j) {
      acc = static_cast<u128>(t[j]) + static_cast<u128>(m) * n_limbs_[j] + carry;
      t[j - 1] = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> 64);
    }
    acc = static_cast<u128>(t[k]) + carry;
    t[k - 1] = static_cast<u64>(acc);
    t[k] = t[k + 1] + static_cast<u64>(acc >> 64);
    t[k + 1] = 0;
  }
  t.resize(k + 1);
  return t;
}

namespace {
// True iff a >= b over k limbs (little-endian).
bool ge_limbs(const u64* a, const u64* b, std::size_t k) {
  for (std::size_t i = k; i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

// out = a - b over k limbs; returns the final borrow.
u64 sub_borrow(const u64* a, const u64* b, u64* out, std::size_t k) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u64 bi = b[i] + borrow;
    const u64 wrapped = (borrow != 0 && bi == 0) ? 1 : 0;  // b[i]+borrow overflowed
    const u64 r = a[i] - bi;
    borrow = wrapped | (r > a[i] ? 1 : 0);
    out[i] = r;
  }
  return borrow;
}
}  // namespace

void Montgomery::mul_limbs(const u64* a, const u64* b, u64* out) const {
  // CIOS as in mont_mul_limbs, but on fixed stack buffers: zero heap
  // traffic, which dominates at pairing sizes (3–8 limbs).
  const std::size_t k = n_limbs_.size();
  u64 t[kMaxFixedLimbs + 2] = {0};
  for (std::size_t i = 0; i < k; ++i) {
    const u128 ai = a[i];
    u64 carry = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const u128 cur = static_cast<u128>(t[j]) + ai * b[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[k]) + carry;
    t[k] = static_cast<u64>(cur);
    t[k + 1] = static_cast<u64>(cur >> 64);

    const u64 m = t[0] * n0_inv_;
    u128 acc = static_cast<u128>(t[0]) + static_cast<u128>(m) * n_limbs_[0];
    carry = static_cast<u64>(acc >> 64);
    for (std::size_t j = 1; j < k; ++j) {
      acc = static_cast<u128>(t[j]) + static_cast<u128>(m) * n_limbs_[j] + carry;
      t[j - 1] = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> 64);
    }
    acc = static_cast<u128>(t[k]) + carry;
    t[k - 1] = static_cast<u64>(acc);
    t[k] = t[k + 1] + static_cast<u64>(acc >> 64);
    t[k + 1] = 0;
  }
  // Result < 2n with a possible carry limb in t[k]; one conditional
  // subtraction normalizes into [0, n).
  if (t[k] != 0 || ge_limbs(t, n_limbs_.data(), k)) {
    sub_borrow(t, n_limbs_.data(), t, k);
  }
  for (std::size_t i = 0; i < k; ++i) out[i] = t[i];
}

void Montgomery::add_limbs(const u64* a, const u64* b, u64* out) const {
  const std::size_t k = n_limbs_.size();
  u64 t[kMaxFixedLimbs];
  u64 carry = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const u64 s1 = a[i] + b[i];
    const u64 c1 = s1 < a[i] ? 1 : 0;
    const u64 s2 = s1 + carry;
    carry = c1 | (s2 < s1 ? 1 : 0);
    t[i] = s2;
  }
  if (carry != 0 || ge_limbs(t, n_limbs_.data(), k)) {
    sub_borrow(t, n_limbs_.data(), t, k);
  }
  for (std::size_t i = 0; i < k; ++i) out[i] = t[i];
}

void Montgomery::sub_limbs(const u64* a, const u64* b, u64* out) const {
  const std::size_t k = n_limbs_.size();
  u64 t[kMaxFixedLimbs];
  if (sub_borrow(a, b, t, k) != 0) {
    u64 carry = 0;
    for (std::size_t i = 0; i < k; ++i) {
      const u64 s1 = t[i] + n_limbs_[i];
      const u64 c1 = s1 < t[i] ? 1 : 0;
      const u64 s2 = s1 + carry;
      carry = c1 | (s2 < s1 ? 1 : 0);
      t[i] = s2;
    }
  }
  for (std::size_t i = 0; i < k; ++i) out[i] = t[i];
}

BigInt Montgomery::mul(const BigInt& a_mont, const BigInt& b_mont) const {
  BigInt result =
      BigInt::from_limbs_le(mont_mul_limbs(a_mont.limbs(), b_mont.limbs()));
  // CIOS leaves the result < 2n; one conditional subtraction normalizes.
  if (result >= n_) result -= n_;
  return result;
}

BigInt Montgomery::to_mont(const BigInt& a) const { return mul(a, r2_); }

BigInt Montgomery::from_mont(const BigInt& a_mont) const {
  return mul(a_mont, BigInt{1});
}

BigInt Montgomery::pow(const BigInt& base, const BigInt& exp) const {
  if (exp.is_negative()) {
    throw std::invalid_argument("Montgomery::pow: negative exponent");
  }
  const BigInt b = to_mont(mod(base, n_));
  const std::size_t bits = exp.bit_length();
  if (bits == 0) return mod(BigInt{1}, n_);

  std::array<BigInt, 16> table;
  table[0] = one_mont_;
  table[1] = b;
  for (int i = 2; i < 16; ++i) table[i] = mul(table[i - 1], b);

  const std::size_t windows = (bits + 3) / 4;
  BigInt acc = one_mont_;
  for (std::size_t w = windows; w-- > 0;) {
    for (int i = 0; i < 4; ++i) acc = mul(acc, acc);
    unsigned nib = 0;
    for (int i = 3; i >= 0; --i) {
      nib = (nib << 1) |
            (exp.bit(w * 4 + static_cast<std::size_t>(i)) ? 1u : 0u);
    }
    if (nib != 0) acc = mul(acc, table[nib]);
  }
  return from_mont(acc);
}

}  // namespace p3s::math
