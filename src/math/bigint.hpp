// Arbitrary-precision signed integers. This is the arithmetic substrate for
// the pairing library (the paper's prototype used jPBC/PBC; we build the
// equivalent from scratch — see DESIGN.md §2).
//
// Representation: sign/magnitude with 64-bit little-endian limbs, always
// normalized (no high zero limbs; zero is non-negative with empty limbs).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace p3s::math {

struct DivMod;

class BigInt {
 public:
  BigInt() = default;  // zero
  BigInt(std::int64_t v);
  BigInt(std::uint64_t v);
  BigInt(int v) : BigInt(static_cast<std::int64_t>(v)) {}

  /// Parse decimal, with optional leading '-'. Throws on malformed input.
  static BigInt from_dec(std::string_view s);
  /// Parse hex (no 0x prefix), with optional leading '-'.
  static BigInt from_hex(std::string_view s);
  /// Big-endian unsigned bytes.
  static BigInt from_bytes(BytesView data);

  std::string to_dec() const;
  std::string to_hex() const;
  /// Big-endian unsigned bytes, padded with leading zeros to at least
  /// `min_len`. Throws if negative.
  Bytes to_bytes(std::size_t min_len = 0) const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits (0 for zero).
  std::size_t bit_length() const;
  /// Value of bit i (LSB = 0) of the magnitude.
  bool bit(std::size_t i) const;

  /// Convert to uint64_t; throws std::overflow_error if it does not fit or
  /// is negative.
  std::uint64_t to_u64() const;

  BigInt operator-() const;
  BigInt abs() const;

  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  /// Remainder with sign of dividend (C++ semantics).
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  friend BigInt operator<<(const BigInt& a, std::size_t n);
  friend BigInt operator>>(const BigInt& a, std::size_t n);

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }
  BigInt& operator%=(const BigInt& b) { return *this = *this % b; }

  std::strong_ordering operator<=>(const BigInt& b) const;
  bool operator==(const BigInt& b) const = default;

  /// Quotient and remainder in one pass (truncated division).
  static DivMod divmod(const BigInt& a, const BigInt& b);

  /// Uniform random integer with exactly `bits` bits (MSB set) — used for
  /// prime generation.
  static BigInt random_bits(Rng& rng, std::size_t bits);
  /// Uniform random integer in [0, bound). bound must be positive.
  static BigInt random_below(Rng& rng, const BigInt& bound);

  /// Access for field-internal fast paths (read-only).
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

  /// Construct a non-negative value from little-endian 64-bit limbs
  /// (normalizing trailing zeros). Fast path for Montgomery arithmetic.
  static BigInt from_limbs_le(std::vector<std::uint64_t> limbs);

 private:
  static BigInt from_limbs(std::vector<std::uint64_t> limbs, bool negative);
  void normalize();
  // Magnitude helpers (ignore sign).
  static int cmp_mag(const BigInt& a, const BigInt& b);
  static std::vector<std::uint64_t> add_mag(const std::vector<std::uint64_t>& a,
                                            const std::vector<std::uint64_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint64_t> sub_mag(const std::vector<std::uint64_t>& a,
                                            const std::vector<std::uint64_t>& b);
  static std::vector<std::uint64_t> mul_mag(const std::vector<std::uint64_t>& a,
                                            const std::vector<std::uint64_t>& b);

  std::vector<std::uint64_t> limbs_;
  bool negative_ = false;
};

/// Result of BigInt::divmod (truncated division).
struct DivMod {
  BigInt quot;
  BigInt rem;
};

}  // namespace p3s::math
