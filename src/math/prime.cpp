#include "math/prime.hpp"

#include <array>
#include <stdexcept>

#include "math/modular.hpp"

namespace p3s::math {

namespace {
constexpr std::array<std::uint64_t, 40> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173};
}  // namespace

bool is_probable_prime(const BigInt& n, Rng& rng, int rounds) {
  if (n < BigInt{2}) return false;
  for (std::uint64_t p : kSmallPrimes) {
    const BigInt bp{p};
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n - 1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt{1};
  std::size_t s = 0;
  BigInt d = n_minus_1;
  while (d.is_even()) {
    d = d >> 1;
    ++s;
  }

  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    const BigInt a = BigInt{2} + BigInt::random_below(rng, n - BigInt{3});
    BigInt x = mod_pow(a, d, n);
    if (x == BigInt{1} || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 0; i + 1 < s; ++i) {
      x = mod_mul(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt random_prime(Rng& rng, std::size_t bits, int rounds) {
  if (bits < 2) throw std::invalid_argument("random_prime: need >= 2 bits");
  for (;;) {
    BigInt cand = BigInt::random_bits(rng, bits);
    if (cand.is_even()) cand += BigInt{1};
    if (cand.bit_length() != bits) continue;  // +1 overflowed the width
    if (is_probable_prime(cand, rng, rounds)) return cand;
  }
}

}  // namespace p3s::math
