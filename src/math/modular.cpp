#include "math/modular.hpp"

#include <array>
#include <stdexcept>

#include "math/montgomery.hpp"

namespace p3s::math {

BigInt mod(const BigInt& a, const BigInt& m) {
  BigInt r = a % m;
  if (r.is_negative()) r += m;
  return r;
}

BigInt mod_add(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt r = a + b;
  if (r >= m) r -= m;
  return r;
}

BigInt mod_sub(const BigInt& a, const BigInt& b, const BigInt& m) {
  BigInt r = a - b;
  if (r.is_negative()) r += m;
  return r;
}

BigInt mod_mul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return mod(a * b, m);
}

BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (exp.is_negative()) throw std::invalid_argument("mod_pow: negative exponent");
  if (m == BigInt{1}) return BigInt{};
  const BigInt b = mod(base, m);
  const std::size_t bits = exp.bit_length();
  if (bits == 0) return BigInt{1};

  // Montgomery fast path: for odd moduli and long exponents the per-call
  // context setup amortizes well below the division-based reduction cost.
  if (m.is_odd() && m.bit_length() >= 128 && bits >= 64) {
    return Montgomery(m).pow(b, exp);
  }

  // Precompute b^0..b^15 for a 4-bit fixed window.
  std::array<BigInt, 16> table;
  table[0] = BigInt{1};
  table[1] = b;
  for (int i = 2; i < 16; ++i) table[i] = mod_mul(table[i - 1], b, m);

  const std::size_t windows = (bits + 3) / 4;
  BigInt acc{1};
  for (std::size_t w = windows; w-- > 0;) {
    for (int i = 0; i < 4; ++i) acc = mod_mul(acc, acc, m);
    unsigned nib = 0;
    for (int i = 3; i >= 0; --i) {
      nib = (nib << 1) | (exp.bit(w * 4 + static_cast<std::size_t>(i)) ? 1u : 0u);
    }
    if (nib != 0) acc = mod_mul(acc, table[nib], m);
  }
  return acc;
}

BigInt gcd(BigInt a, BigInt b) {
  a = a.abs();
  b = b.abs();
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt mod_inv(const BigInt& a, const BigInt& m) {
  // Extended Euclid keeping only the coefficient of a.
  BigInt r0 = m, r1 = mod(a, m);
  BigInt t0{}, t1{1};
  while (!r1.is_zero()) {
    auto [q, r2] = BigInt::divmod(r0, r1);
    BigInt t2 = t0 - q * t1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (r0 != BigInt{1}) throw std::domain_error("mod_inv: not invertible");
  return mod(t0, m);
}

bool is_quadratic_residue(const BigInt& a, const BigInt& p) {
  if (a.is_zero()) return true;
  const BigInt e = (p - BigInt{1}) >> 1;
  return mod_pow(a, e, p) == BigInt{1};
}

BigInt mod_sqrt_3mod4(const BigInt& a, const BigInt& p) {
  if ((p % BigInt{4}) != BigInt{3}) {
    throw std::domain_error("mod_sqrt_3mod4: p % 4 != 3");
  }
  const BigInt r = mod_pow(a, (p + BigInt{1}) >> 2, p);
  if (mod_mul(r, r, p) != mod(a, p)) {
    throw std::domain_error("mod_sqrt_3mod4: not a quadratic residue");
  }
  return r;
}

bool is_quadratic_residue(const BigInt& a, const Montgomery& mp) {
  if (a.is_zero()) return true;
  const BigInt e = (mp.modulus() - BigInt{1}) >> 1;
  return mp.pow(a, e) == BigInt{1};
}

BigInt mod_sqrt_3mod4(const BigInt& a, const Montgomery& mp) {
  const BigInt& p = mp.modulus();
  if ((p % BigInt{4}) != BigInt{3}) {
    throw std::domain_error("mod_sqrt_3mod4: p % 4 != 3");
  }
  const BigInt r = mp.pow(a, (p + BigInt{1}) >> 2);
  if (mod_mul(r, r, p) != mod(a, p)) {
    throw std::domain_error("mod_sqrt_3mod4: not a quadratic residue");
  }
  return r;
}

}  // namespace p3s::math
