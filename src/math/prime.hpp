// Primality testing and prime generation for pairing parameter setup.
#pragma once

#include "math/bigint.hpp"

namespace p3s::math {

/// Miller–Rabin probabilistic primality test. `rounds` random bases; error
/// probability <= 4^-rounds. Handles small/even inputs exactly.
bool is_probable_prime(const BigInt& n, Rng& rng, int rounds = 32);

/// Random prime with exactly `bits` bits.
BigInt random_prime(Rng& rng, std::size_t bits, int rounds = 32);

}  // namespace p3s::math
