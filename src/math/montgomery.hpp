// Montgomery-form modular arithmetic for a fixed odd modulus (CIOS
// multiplication). Used to accelerate modular exponentiation — the dominant
// cost of Miller–Rabin during pairing-parameter generation and of the
// pairing's final exponentiation path.
//
// R = 2^(64·k) where k is the modulus limb count. Values in "Montgomery
// form" are a·R mod n; mul() computes a·b·R⁻¹ mod n.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/bigint.hpp"

namespace p3s::math {

class Montgomery {
 public:
  /// Widest modulus (in 64-bit limbs) the allocation-free fixed-width limb
  /// API below supports: 512 bits covers the paper-scale pairing field.
  static constexpr std::size_t kMaxFixedLimbs = 8;

  /// Throws std::invalid_argument unless modulus is odd and > 1.
  explicit Montgomery(const BigInt& modulus);

  const BigInt& modulus() const { return n_; }

  /// a·R mod n (a in [0, n)); from_mont inverts it.
  BigInt to_mont(const BigInt& a) const;
  BigInt from_mont(const BigInt& a_mont) const;

  /// Montgomery product a·b·R⁻¹ mod n (both inputs in Montgomery form,
  /// output in Montgomery form).
  BigInt mul(const BigInt& a_mont, const BigInt& b_mont) const;

  /// base^exp mod n with plain-form input and output (4-bit window,
  /// Montgomery internally). exp >= 0.
  BigInt pow(const BigInt& base, const BigInt& exp) const;

  // --- Fixed-width limb API (pairing hot path) -----------------------------
  // Operates on raw little-endian limb buffers of exactly limb_count()
  // words, all values in [0, n) and (for mul) in Montgomery form. No heap
  // allocation; outputs may alias inputs. Only valid when fits_fixed().

  std::size_t limb_count() const { return n_limbs_.size(); }
  bool fits_fixed() const { return n_limbs_.size() <= kMaxFixedLimbs; }

  /// CIOS product a·b·R⁻¹ mod n into out (all limb_count() words).
  void mul_limbs(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out) const;
  /// (a + b) mod n into out.
  void add_limbs(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out) const;
  /// (a - b) mod n into out.
  void sub_limbs(const std::uint64_t* a, const std::uint64_t* b,
                 std::uint64_t* out) const;

 private:
  std::vector<std::uint64_t> mont_mul_limbs(
      const std::vector<std::uint64_t>& a,
      const std::vector<std::uint64_t>& b) const;

  BigInt n_;
  std::vector<std::uint64_t> n_limbs_;
  std::uint64_t n0_inv_;  // -n⁻¹ mod 2^64
  BigInt r2_;             // R² mod n
  BigInt one_mont_;       // R mod n
};

}  // namespace p3s::math
