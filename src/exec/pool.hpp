// Shared execution layer: a fixed-size work-stealing thread pool driving the
// three hot loops of the data path (multi-token HVE matching, DS fanout
// sealing, publisher batch encryption). Design constraints, in order:
//
//  1. Determinism. A pool of size 1 never spawns a thread: submit() and
//     parallel_for() run the work inline on the caller, in order, so the
//     discrete-event sim benches and the pinned equivalence tests see the
//     exact sequential execution. Parallel callers must therefore arrange
//     their work so the RESULT is order-independent (pure functions, or
//     pre-drawn randomness + deterministic merge).
//  2. No oversubscription. The pool is fixed-size; tasks submitted from
//     inside a worker run inline instead of deadlocking on a full queue.
//  3. Privacy. Tasks carry no metric names or runtime strings; the obs
//     integration is limited to the closed p3s.exec.* vocabulary.
//
// Work distribution: one deque per worker. submit() round-robins pushes;
// an idle worker pops its own deque from the front and steals from the
// BACK of a victim's deque, so stealing grabs the oldest (likely largest)
// work and owners keep cache-warm recent tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/annotations.hpp"

namespace p3s::exec {

class Pool {
 public:
  /// `threads == 0` sizes the pool to std::thread::hardware_concurrency().
  /// A pool of size 1 is the deterministic fallback: no worker threads are
  /// created and every task runs inline on the submitting thread.
  explicit Pool(std::size_t threads = 0);
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  std::size_t thread_count() const { return threads_; }

  /// Fire-and-forget task. Inline when thread_count() == 1 or when called
  /// from a pool worker (a worker blocking on its own pool would deadlock).
  void submit(std::function<void()> fn);

  /// submit() + future for the result (exceptions propagate through it).
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// Run body(i) for i in [begin, end), blocking until all complete. Indices
  /// are chunked into ~4 chunks per worker (at least `grain` indices each).
  /// The caller participates, so a single-thread pool degenerates to the
  /// plain sequential loop. Exceptions from body are rethrown (first one).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// First-hit search: evaluates pred(i) for i in [0, n) and returns the
  /// LOWEST index for which pred returned true, or SIZE_MAX when none did.
  /// Order-deterministic: a hit at index i only short-circuits indices > i,
  /// so the result always equals the sequential lowest hit.
  std::size_t parallel_find(std::size_t n,
                            const std::function<bool(std::size_t)>& pred);

  /// The process-wide pool the data path uses by default. Sized from the
  /// P3S_THREADS environment variable when set (clamped to [1, 256]), else
  /// hardware_concurrency. Created on first use.
  static Pool& global();
  /// Resize the global pool (benches/tests). Existing references to the old
  /// pool must be quiesced by the caller; the old pool is drained and joined.
  static void set_global_threads(std::size_t threads);

 private:
  struct Queue {
    std::deque<std::function<void()>> tasks;
  };

  void worker(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out)
      P3S_REQUIRES(mutex_);

  std::size_t threads_ = 1;
  std::vector<Queue> queues_ P3S_GUARDED_BY(mutex_);
  std::mutex mutex_;  // guards all queues + cv (coarse; tasks are chunky)
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::size_t next_queue_ P3S_GUARDED_BY(mutex_) = 0;
  bool stopping_ P3S_GUARDED_BY(mutex_) = false;
};

/// True while the current thread is a Pool worker (any pool). Nested
/// parallel constructs check this to run inline instead of re-entering the
/// queue from inside a worker.
bool on_worker_thread();

}  // namespace p3s::exec
