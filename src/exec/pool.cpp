#include "exec/pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::exec {

namespace {
struct ExecMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Gauge& threads = reg.gauge(obs::names::kExecThreads);
  obs::Counter& tasks = reg.counter(obs::names::kExecTasksTotal);
  obs::Counter& inline_tasks = reg.counter(obs::names::kExecInlineTotal);
  obs::Counter& steals = reg.counter(obs::names::kExecStealsTotal);
  obs::Counter& parallel_for = reg.counter(obs::names::kExecParallelForTotal);
};

ExecMetrics& exec_metrics() {
  static ExecMetrics m;
  return m;
}

thread_local bool t_on_worker = false;
}  // namespace

bool on_worker_thread() { return t_on_worker; }

Pool::Pool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  threads_ = threads;
  queues_.resize(threads_);
  if (threads_ == 1) return;  // deterministic inline mode: no workers
  workers_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker(i); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool Pool::try_pop(std::size_t self, std::function<void()>& out) {
  // Caller holds mutex_. Own queue first (front: newest-first locality is
  // irrelevant under one mutex, FIFO keeps submit order), then steal the
  // back of the first non-empty victim.
  if (!queues_[self].tasks.empty()) {
    out = std::move(queues_[self].tasks.front());
    queues_[self].tasks.pop_front();
    return true;
  }
  for (std::size_t k = 1; k < threads_; ++k) {
    Queue& victim = queues_[(self + k) % threads_];
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      exec_metrics().steals.inc();
      return true;
    }
  }
  return false;
}

void Pool::worker(std::size_t self) {
  t_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // try_pop first so a stopping pool still drains queued tasks.
      cv_.wait(lock, [&] { return try_pop(self, task) || stopping_; });
      if (!task) return;  // stopping and no work left
    }
    task();
  }
}

void Pool::submit(std::function<void()> fn) {
  exec_metrics().tasks.inc();
  if (threads_ == 1 || t_on_worker) {
    // Deterministic fallback / nested submission from a worker: run inline.
    exec_metrics().inline_tasks.inc();
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queues_[next_queue_].tasks.push_back(std::move(fn));
    next_queue_ = (next_queue_ + 1) % threads_;
  }
  cv_.notify_one();
}

void Pool::parallel_for(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)>& body,
                        std::size_t grain) {
  if (begin >= end) return;
  exec_metrics().parallel_for.inc();
  const std::size_t n = end - begin;
  if (threads_ == 1 || t_on_worker || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  if (grain == 0) grain = 1;
  std::size_t chunk = n / (threads_ * 4);
  if (chunk < grain) chunk = grain;

  // Dynamic chunking over a shared index: helpers AND the caller pull
  // chunks, so the loop completes even when every worker is busy elsewhere.
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error_mutex = std::make_shared<std::mutex>();
  auto error = std::make_shared<std::exception_ptr>();
  auto worklet = [next, first_error, error_mutex, error, &body, end, chunk] {
    for (;;) {
      const std::size_t i = next->fetch_add(chunk, std::memory_order_relaxed);
      if (i >= end) return;
      const std::size_t stop = i + chunk < end ? i + chunk : end;
      try {
        for (std::size_t j = i; j < stop && !first_error->load(); ++j) {
          body(j);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!first_error->exchange(true)) *error = std::current_exception();
      }
    }
  };

  const std::size_t chunks = (n + chunk - 1) / chunk;
  std::size_t helpers = threads_ - 1;
  if (helpers > chunks - 1) helpers = chunks - 1;
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(async(worklet));
  worklet();
  for (auto& f : futures) f.get();
  if (first_error->load()) std::rethrow_exception(*error);
}

std::size_t Pool::parallel_find(
    std::size_t n, const std::function<bool(std::size_t)>& pred) {
  if (n == 0) return SIZE_MAX;
  if (threads_ == 1 || t_on_worker || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) return i;
    }
    return SIZE_MAX;
  }
  exec_metrics().parallel_for.inc();

  // Lowest-hit semantics: a hit at index i prunes only indices above i, so
  // the returned index is identical to the sequential scan's.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto best = std::make_shared<std::atomic<std::size_t>>(SIZE_MAX);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  auto error_mutex = std::make_shared<std::mutex>();
  auto error = std::make_shared<std::exception_ptr>();
  auto worklet = [next, best, first_error, error_mutex, error, &pred, n] {
    for (;;) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      if (i > best->load(std::memory_order_relaxed)) continue;
      if (first_error->load()) return;
      try {
        if (pred(i)) {
          std::size_t cur = best->load(std::memory_order_relaxed);
          while (i < cur &&
                 !best->compare_exchange_weak(cur, i,
                                              std::memory_order_relaxed)) {
          }
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(*error_mutex);
        if (!first_error->exchange(true)) *error = std::current_exception();
      }
    }
  };

  std::size_t helpers = threads_ - 1;
  if (helpers > n - 1) helpers = n - 1;
  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) futures.push_back(async(worklet));
  worklet();
  for (auto& f : futures) f.get();
  if (first_error->load()) std::rethrow_exception(*error);
  return best->load();
}

namespace {
std::mutex g_global_mutex;
std::unique_ptr<Pool> g_global;

std::size_t env_threads() {
  const char* env = std::getenv("P3S_THREADS");
  if (env == nullptr || *env == '\0') return 0;  // 0 = hardware_concurrency
  const long v = std::strtol(env, nullptr, 10);
  if (v < 1) return 1;
  if (v > 256) return 256;
  return static_cast<std::size_t>(v);
}
}  // namespace

Pool& Pool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global) {
    g_global = std::make_unique<Pool>(env_threads());
    exec_metrics().threads.set(
        static_cast<std::int64_t>(g_global->thread_count()));
  }
  return *g_global;
}

void Pool::set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global.reset();  // drain + join before replacing
  g_global = std::make_unique<Pool>(threads);
  exec_metrics().threads.set(
      static_cast<std::int64_t>(g_global->thread_count()));
}

}  // namespace p3s::exec
