#include "net/secure.hpp"

#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::net {

namespace {

// Metric handles resolved once; every instance of every channel shares them.
struct ChanMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& handshakes_client =
      reg.counter(obs::names::kChanHandshakesTotal,
                  {{"side", obs::labels::kSideClient}});
  obs::Counter& handshakes_server =
      reg.counter(obs::names::kChanHandshakesTotal,
                  {{"side", obs::labels::kSideServer}});
  obs::Counter& handshake_failures =
      reg.counter(obs::names::kChanHandshakeFailuresTotal);
  obs::Counter& sealed = reg.counter(obs::names::kChanRecordsSealedTotal);
  obs::Counter& opened = reg.counter(obs::names::kChanRecordsOpenedTotal);
  obs::Counter& open_failures =
      reg.counter(obs::names::kChanOpenFailuresTotal);
  obs::Histogram& record_bytes =
      reg.histogram(obs::names::kChanRecordBytes, {}, "bytes");
};

ChanMetrics& chan_metrics() {
  static ChanMetrics m;
  return m;
}

Bytes direction_key(BytesView master, const char* label) {
  return crypto::hkdf_expand(crypto::hkdf_extract(str_to_bytes("p3s-chan"), master),
                             str_to_bytes(label), 32);
}
}  // namespace

SecureSession::SecureSession(Bytes key, bool is_client) {
  const Bytes c2s = direction_key(key, "client-to-server");
  const Bytes s2c = direction_key(key, "server-to-client");
  send_key_ = is_client ? c2s : s2c;
  recv_key_ = is_client ? s2c : c2s;
}

SecureSession SecureSession::initiate(const pairing::Pairing& pairing,
                                      const pairing::Point& server_pk, Rng& rng,
                                      Bytes& hello_out) {
  const Bytes master = rng.bytes(32);
  hello_out = pairing::ecies_encrypt(pairing, server_pk, master, rng);
  chan_metrics().handshakes_client.inc();
  return SecureSession(master, /*is_client=*/true);
}

std::optional<SecureSession> SecureSession::accept(
    const pairing::Pairing& pairing, const math::BigInt& server_sk,
    BytesView hello) {
  const auto master = pairing::ecies_decrypt(pairing, server_sk, hello);
  if (!master.has_value() || master->size() != 32) {
    chan_metrics().handshake_failures.inc();
    return std::nullopt;
  }
  chan_metrics().handshakes_server.inc();
  return SecureSession(*master, /*is_client=*/false);
}

Bytes SecureSession::seal(BytesView plaintext, Rng& rng) {
  Writer aad;
  aad.u64(send_seq_);
  const crypto::AeadCiphertext ct =
      crypto::aead_encrypt(send_key_, plaintext, aad.data(), rng);
  Writer w;
  w.u64(send_seq_++);
  w.bytes(ct.serialize());
  Bytes record = w.take();
  ChanMetrics& m = chan_metrics();
  m.sealed.inc();
  m.record_bytes.record(static_cast<double>(record.size()));
  return record;
}

std::optional<Bytes> SecureSession::open(BytesView record) {
  ChanMetrics& m = chan_metrics();
  try {
    Reader r(record);
    const std::uint64_t seq = r.u64();
    const Bytes body = r.bytes();
    r.expect_done();
    if (seq < recv_seq_) {
      m.open_failures.inc();
      return std::nullopt;  // replay/reorder
    }
    Writer aad;
    aad.u64(seq);
    const auto pt = crypto::aead_decrypt(
        recv_key_, crypto::AeadCiphertext::deserialize(body), aad.data());
    if (!pt.has_value()) {
      m.open_failures.inc();
      return std::nullopt;
    }
    recv_seq_ = seq + 1;
    m.opened.inc();
    return pt;
  } catch (const std::exception&) {
    m.open_failures.inc();
    return std::nullopt;
  }
}

}  // namespace p3s::net
