#include "net/secure.hpp"

#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"

namespace p3s::net {

namespace {
Bytes direction_key(BytesView master, const char* label) {
  return crypto::hkdf_expand(crypto::hkdf_extract(str_to_bytes("p3s-chan"), master),
                             str_to_bytes(label), 32);
}
}  // namespace

SecureSession::SecureSession(Bytes key, bool is_client) {
  const Bytes c2s = direction_key(key, "client-to-server");
  const Bytes s2c = direction_key(key, "server-to-client");
  send_key_ = is_client ? c2s : s2c;
  recv_key_ = is_client ? s2c : c2s;
}

SecureSession SecureSession::initiate(const pairing::Pairing& pairing,
                                      const pairing::Point& server_pk, Rng& rng,
                                      Bytes& hello_out) {
  const Bytes master = rng.bytes(32);
  hello_out = pairing::ecies_encrypt(pairing, server_pk, master, rng);
  return SecureSession(master, /*is_client=*/true);
}

std::optional<SecureSession> SecureSession::accept(
    const pairing::Pairing& pairing, const math::BigInt& server_sk,
    BytesView hello) {
  const auto master = pairing::ecies_decrypt(pairing, server_sk, hello);
  if (!master.has_value() || master->size() != 32) return std::nullopt;
  return SecureSession(*master, /*is_client=*/false);
}

Bytes SecureSession::seal(BytesView plaintext, Rng& rng) {
  Writer aad;
  aad.u64(send_seq_);
  const crypto::AeadCiphertext ct =
      crypto::aead_encrypt(send_key_, plaintext, aad.data(), rng);
  Writer w;
  w.u64(send_seq_++);
  w.bytes(ct.serialize());
  return w.take();
}

std::optional<Bytes> SecureSession::open(BytesView record) {
  try {
    Reader r(record);
    const std::uint64_t seq = r.u64();
    const Bytes body = r.bytes();
    r.expect_done();
    if (seq < recv_seq_) return std::nullopt;  // replay/reorder
    Writer aad;
    aad.u64(seq);
    const auto pt = crypto::aead_decrypt(
        recv_key_, crypto::AeadCiphertext::deserialize(body), aad.data());
    if (!pt.has_value()) return std::nullopt;
    recv_seq_ = seq + 1;
    return pt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace p3s::net
