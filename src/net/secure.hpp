// Secure channel ("TLS tunnel" substitute, paper §4.1: "The DS sets up TLS
// tunnels to subscribers and publishers"). One ECIES-wrapped session-key
// establishment message, then AEAD records with per-direction sequence
// numbers (replay/reorder detection — the property §6.1 relies on:
// "participants can detect if network failures cause message loss").
#pragma once

#include <cstdint>
#include <optional>

#include "common/annotations.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "pairing/ecies.hpp"

namespace p3s::net {

/// Client side: creates the session and the hello blob; server side:
/// accepts the hello. Both then seal/open records.
class SecureSession {
 public:
  /// Client constructor: generates a session key and the hello message to
  /// send (ECIES under the server's public key).
  static SecureSession initiate(const pairing::Pairing& pairing,
                                const pairing::Point& server_pk, Rng& rng,
                                Bytes& hello_out);

  /// Server constructor: accept a hello blob. nullopt when the blob fails
  /// to decrypt (wrong server key / tampering).
  static std::optional<SecureSession> accept(const pairing::Pairing& pairing,
                                             const math::BigInt& server_sk,
                                             BytesView hello);

  /// Encrypt a record for the peer. The sequence number is authenticated.
  /// P3S_NO_BLOCK: called from pool task lambdas (DS fanout sealing), so it
  /// must stay pure CPU — no waits, no network.
  Bytes seal(BytesView plaintext, Rng& rng) P3S_NO_BLOCK;

  /// Decrypt a record from the peer; enforces strictly increasing sequence
  /// numbers (detects replay, reorder, and silent drop of later reads).
  /// P3S_NO_BLOCK for the same reason as seal().
  std::optional<Bytes> open(BytesView record) P3S_NO_BLOCK;

 private:
  SecureSession(Bytes key, bool is_client);

  Bytes send_key_;
  Bytes recv_key_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

}  // namespace p3s::net
