// Deferred-delivery in-process network. Unlike DirectNetwork (inline,
// synchronous), send() only enqueues; frames are delivered when the test or
// application pumps the queue. This models true asynchronous message
// passing — in-flight races, loss, reordering — while staying fully
// deterministic and single-threaded.
//
// Fault injection hooks cover the §6.1 robustness discussion: "participants
// can detect if network failures cause message loss at the application
// level" and the slow-consumer/deletion races behind the T_G grace period.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "net/network.hpp"

namespace p3s::net {

class AsyncNetwork final : public Network {
 public:
  void register_endpoint(const std::string& name, Handler handler) override;
  void unregister_endpoint(const std::string& name) override;
  void send(const std::string& from, const std::string& to,
            Bytes frame) override;
  double now() const override { return static_cast<double>(tick_); }

  /// Advance logical time without delivering anything.
  void advance(std::uint64_t ticks) { tick_ += ticks; }

  /// Deliver one in-flight frame (oldest first; newest first when
  /// reordering is on). Returns false when nothing is in flight.
  bool pump_one();

  /// Deliver until the queue drains (frames sent during delivery are also
  /// processed). Returns the number of frames delivered. Throws
  /// std::runtime_error if `max_deliveries` is exceeded (live-lock guard).
  std::size_t run_until_idle(std::size_t max_deliveries = 100000);

  std::size_t in_flight() const { return queue_.size(); }

  // --- fault injection -----------------------------------------------------
  /// Drop the next `n` frames instead of delivering them (they still appear
  /// in the traffic log — the wire saw them; the receiver did not).
  void drop_next(std::size_t n) { drop_remaining_ += n; }
  /// Deliver newest-first (adversarial reordering) while enabled.
  void set_reorder(bool on) { reorder_ = on; }

  std::size_t dropped_frames() const { return dropped_; }

 private:
  struct InFlight {
    std::string from;
    std::string to;
    Bytes frame;
  };

  std::map<std::string, Handler> endpoints_;
  std::deque<InFlight> queue_;
  std::uint64_t tick_ = 0;
  std::size_t drop_remaining_ = 0;
  std::size_t dropped_ = 0;
  bool reorder_ = false;
};

}  // namespace p3s::net
