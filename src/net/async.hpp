// Deferred-delivery in-process network. Unlike DirectNetwork (inline,
// synchronous), send() only enqueues; frames are delivered when the test or
// application pumps the queue. This models true asynchronous message
// passing — in-flight races, loss, reordering — while staying fully
// deterministic and single-threaded.
//
// Fault injection hooks cover the §6.1 robustness discussion: "participants
// can detect if network failures cause message loss at the application
// level" and the slow-consumer/deletion races behind the T_G grace period.
// Beyond the manual drop_next/set_reorder knobs, a seeded net::FaultPlan
// drives probabilistic per-link drop/duplicate/reorder/delay and endpoint
// blackout windows — every chaos schedule is replayable from its seed.
// Without a plan installed the behavior (and the tick sequence) is exactly
// the pre-fault-plan network.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "net/fault.hpp"
#include "net/network.hpp"

namespace p3s::net {

class AsyncNetwork final : public Network {
 public:
  void register_endpoint(const std::string& name, Handler handler) override;
  void unregister_endpoint(const std::string& name) override;
  void send(const std::string& from, const std::string& to,
            Bytes frame) override;
  double now() const override { return static_cast<double>(tick_); }

  /// Advance logical time without delivering anything.
  void advance(std::uint64_t ticks) { tick_ += ticks; }

  /// Deliver one in-flight frame (oldest first; newest first when
  /// reordering is on; earliest deliver_at first under a FaultPlan).
  /// Returns false when nothing is in flight.
  bool pump_one();

  /// Deliver until the queue drains (frames sent during delivery are also
  /// processed). Returns the number of frames delivered. Throws
  /// std::runtime_error if `max_deliveries` is exceeded (live-lock guard).
  std::size_t run_until_idle(std::size_t max_deliveries = 100000);

  std::size_t in_flight() const { return queue_.size(); }

  // --- fault injection -----------------------------------------------------
  /// Drop the next `n` frames instead of delivering them (they still appear
  /// in the traffic log — the wire saw them; the receiver did not).
  void drop_next(std::size_t n) { drop_remaining_ += n; }
  /// Deliver newest-first (adversarial reordering) while enabled.
  void set_reorder(bool on) { reorder_ = on; }

  /// Install a seeded fault schedule; all probabilistic faults (and their
  /// replayability) come from the plan. clear_fault_plan() restores the
  /// exact legacy delivery order.
  void set_fault_plan(FaultPlan plan) { plan_ = std::move(plan); }
  void clear_fault_plan() { plan_.reset(); }
  /// Mutable access so a running chaos harness can add blackout windows at
  /// the current network time. nullptr when no plan is installed.
  FaultPlan* fault_plan() { return plan_.has_value() ? &*plan_ : nullptr; }

  /// Every frame lost for any reason (drop_next, plan drop, blackout).
  /// All of them were recorded in the traffic log first.
  std::size_t dropped_frames() const { return dropped_; }
  /// Per-link loss counter for the same events.
  std::size_t dropped_on(const std::string& from, const std::string& to) const;

 private:
  struct InFlight {
    std::string from;
    std::string to;
    Bytes frame;
    std::uint64_t deliver_at = 0;
  };

  void count_drop(const std::string& from, const std::string& to);

  std::map<std::string, Handler> endpoints_;
  std::deque<InFlight> queue_;
  std::uint64_t tick_ = 0;
  std::size_t drop_remaining_ = 0;
  std::size_t dropped_ = 0;
  bool reorder_ = false;
  std::optional<FaultPlan> plan_;
  std::map<std::pair<std::string, std::string>, std::size_t> dropped_by_link_;
};

}  // namespace p3s::net
