#include "net/network.hpp"

#include <stdexcept>

namespace p3s::net {

std::uint64_t Network::bytes_sent_by(const std::string& name) const {
  std::uint64_t total = 0;
  for (const TrafficRecord& rec : traffic_) {
    if (rec.from == name) total += rec.size;
  }
  return total;
}

void DirectNetwork::register_endpoint(const std::string& name,
                                      Handler handler) {
  if (!endpoints_.emplace(name, std::move(handler)).second) {
    throw std::invalid_argument("DirectNetwork: duplicate endpoint '" + name +
                                "'");
  }
}

void DirectNetwork::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

void DirectNetwork::send(const std::string& from, const std::string& to,
                         Bytes frame) {
  ++tick_;
  record(from, to, frame);
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return;  // dropped, like a dead host
  // Copy the handler: the receiver may unregister itself while handling.
  Handler handler = it->second;
  handler(from, frame);
}

}  // namespace p3s::net
