// Seeded, replayable network-fault schedule shared by AsyncNetwork and
// sim::SimNetwork. A FaultPlan owns every random decision fault injection
// makes — per-link drop/duplicate/reorder probabilities, extra delivery
// delay, and endpoint blackout windows — and draws them all from one
// deterministic stream keyed by a single seed. Replaying a chaos schedule is
// therefore one number: reconstruct the plan with the same seed and the same
// configuration calls and every drop/dup/delay lands on the same frame.
//
// The decision stream is a seeded xoshiro generator rather than a literal
// ReplayRng: ReplayRng replays a finite pre-drawn byte budget, but a fault
// schedule cannot know its draw count up front (it depends on how much
// traffic the protocol generates, including retries the faults themselves
// provoke). The seeded stream gives the same replay-by-seed property with
// unbounded draws.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace p3s::net {

/// Per-(from, to) fault probabilities. Delay is expressed in the owning
/// network's time units (logical ticks for AsyncNetwork, seconds for
/// sim::SimNetwork).
struct LinkFaults {
  double drop = 0.0;       // P(frame lost on the wire)
  double duplicate = 0.0;  // P(frame delivered twice)
  double reorder = 0.0;    // P(another in-flight frame overtakes this one)
  double delay_max = 0.0;  // extra delivery delay, uniform in [0, delay_max)
};

/// [from_time, until_time): the endpoint is dark — frames it sends are lost
/// at send time, frames addressed to it are lost at delivery time.
struct BlackoutWindow {
  std::string endpoint;
  double from_time = 0.0;
  double until_time = 0.0;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed), rng_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Faults applied to every link without a per-link override.
  void set_default(LinkFaults faults) { default_ = faults; }
  void set_link(const std::string& from, const std::string& to,
                LinkFaults faults);
  void add_blackout(const std::string& endpoint, double from_time,
                    double until_time);

  const LinkFaults& faults_for(const std::string& from,
                               const std::string& to) const;
  bool in_blackout(const std::string& endpoint, double time) const;

  // --- decisions (each consumes from the seeded stream when the relevant
  // probability is strictly between 0 and 1) -------------------------------
  bool should_drop(const std::string& from, const std::string& to);
  bool should_duplicate(const std::string& from, const std::string& to);
  bool should_reorder(const std::string& from, const std::string& to);
  double delay(const std::string& from, const std::string& to);
  /// Uniform index in [0, bound) for reorder victim selection. bound > 0.
  std::size_t pick(std::size_t bound);

 private:
  bool chance(double p);

  std::uint64_t seed_;
  TestRng rng_;
  LinkFaults default_;
  std::map<std::pair<std::string, std::string>, LinkFaults> links_;
  std::vector<BlackoutWindow> blackouts_;
};

}  // namespace p3s::net
