#include "net/fault.hpp"

#include <stdexcept>

namespace p3s::net {

namespace {
// Probability resolution: 2^20 buckets is far below any probability a chaos
// plan would meaningfully distinguish, and keeps the draw a single uniform().
constexpr std::uint64_t kChanceBuckets = 1u << 20;
}  // namespace

void FaultPlan::set_link(const std::string& from, const std::string& to,
                         LinkFaults faults) {
  links_[{from, to}] = faults;
}

void FaultPlan::add_blackout(const std::string& endpoint, double from_time,
                             double until_time) {
  if (until_time < from_time) {
    throw std::invalid_argument("FaultPlan: blackout window ends before start");
  }
  blackouts_.push_back({endpoint, from_time, until_time});
}

const LinkFaults& FaultPlan::faults_for(const std::string& from,
                                        const std::string& to) const {
  const auto it = links_.find({from, to});
  return it != links_.end() ? it->second : default_;
}

bool FaultPlan::in_blackout(const std::string& endpoint, double time) const {
  for (const BlackoutWindow& w : blackouts_) {
    if (w.endpoint == endpoint && time >= w.from_time && time < w.until_time) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return rng_.uniform(kChanceBuckets) <
         static_cast<std::uint64_t>(p * static_cast<double>(kChanceBuckets));
}

bool FaultPlan::should_drop(const std::string& from, const std::string& to) {
  return chance(faults_for(from, to).drop);
}

bool FaultPlan::should_duplicate(const std::string& from,
                                 const std::string& to) {
  return chance(faults_for(from, to).duplicate);
}

bool FaultPlan::should_reorder(const std::string& from, const std::string& to) {
  return chance(faults_for(from, to).reorder);
}

double FaultPlan::delay(const std::string& from, const std::string& to) {
  const double max = faults_for(from, to).delay_max;
  if (max <= 0.0) return 0.0;
  return max * static_cast<double>(rng_.uniform(kChanceBuckets)) /
         static_cast<double>(kChanceBuckets);
}

std::size_t FaultPlan::pick(std::size_t bound) {
  if (bound == 0) throw std::invalid_argument("FaultPlan: pick(0)");
  return static_cast<std::size_t>(rng_.uniform(bound));
}

}  // namespace p3s::net
