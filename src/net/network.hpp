// In-process message-passing substrate standing in for the paper's
// ActiveMQ/JMS transport. Components register named endpoints and exchange
// opaque byte frames. Two implementations:
//   * DirectNetwork (this file) — immediate synchronous dispatch; used by
//     functional tests and the runnable examples.
//   * sim::SimNetwork (src/sim) — discrete-event delivery with link latency
//     and bandwidth; used for the performance experiments.
//
// Every frame that crosses the network is also appended to a traffic log:
// this is the "eavesdropper's view" used by the privacy tests (the paper's
// §6.1 analysis of what network observers learn — sizes and endpoints, not
// content).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/bytes.hpp"

namespace p3s::net {

/// What an eavesdropper records per frame.
struct TrafficRecord {
  double time = 0.0;
  std::string from;
  std::string to;
  std::size_t size = 0;
  Bytes frame;  // ciphertext as seen on the wire
};

class Network {
 public:
  using Handler =
      std::function<void(const std::string& from, BytesView frame)>;

  virtual ~Network() = default;

  /// Register a named endpoint. Throws std::invalid_argument on duplicates.
  virtual void register_endpoint(const std::string& name, Handler handler) = 0;
  /// Remove an endpoint (component crash/leave). Unknown names are ignored.
  virtual void unregister_endpoint(const std::string& name) = 0;
  /// Queue a frame for delivery. Frames to unknown endpoints are dropped
  /// (recorded in the traffic log either way, like a real wire). Marked
  /// P3S_BLOCKING: delivery may dispatch handlers inline or touch transport
  /// queues, so pool tasks must never call it — sends stay serial on the
  /// caller (p3s-lint no-block).
  virtual void send(const std::string& from, const std::string& to,
                    Bytes frame) P3S_BLOCKING = 0;
  /// Current network time in seconds (wall-free; simulated or logical).
  virtual double now() const = 0;

  const std::vector<TrafficRecord>& traffic() const { return traffic_; }
  void clear_traffic() { traffic_.clear(); }
  /// Total bytes ever sent from `name` (NIC egress counter).
  std::uint64_t bytes_sent_by(const std::string& name) const;

 protected:
  void record(const std::string& from, const std::string& to,
              const Bytes& frame) {
    traffic_.push_back({now(), from, to, frame.size(), frame});
  }

  std::vector<TrafficRecord> traffic_;
};

/// Immediate synchronous delivery: `send` invokes the receiver's handler
/// inline (re-entrantly for protocol chains). Logical time is a counter.
class DirectNetwork final : public Network {
 public:
  void register_endpoint(const std::string& name, Handler handler) override;
  void unregister_endpoint(const std::string& name) override;
  void send(const std::string& from, const std::string& to,
            Bytes frame) override;
  double now() const override { return static_cast<double>(tick_); }

  /// Advance logical time (e.g. to trigger RS garbage collection windows).
  void advance(std::uint64_t ticks) { tick_ += ticks; }

 private:
  std::map<std::string, Handler> endpoints_;
  std::uint64_t tick_ = 0;
};

}  // namespace p3s::net
