#include "net/async.hpp"

#include <stdexcept>

namespace p3s::net {

void AsyncNetwork::register_endpoint(const std::string& name, Handler handler) {
  if (!endpoints_.emplace(name, std::move(handler)).second) {
    throw std::invalid_argument("AsyncNetwork: duplicate endpoint '" + name +
                                "'");
  }
}

void AsyncNetwork::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

void AsyncNetwork::send(const std::string& from, const std::string& to,
                        Bytes frame) {
  ++tick_;
  record(from, to, frame);
  queue_.push_back(InFlight{from, to, std::move(frame)});
}

bool AsyncNetwork::pump_one() {
  while (!queue_.empty()) {
    InFlight msg;
    if (reorder_) {
      msg = std::move(queue_.back());
      queue_.pop_back();
    } else {
      msg = std::move(queue_.front());
      queue_.pop_front();
    }
    ++tick_;
    if (drop_remaining_ > 0) {
      --drop_remaining_;
      ++dropped_;
      continue;  // frame lost on the wire
    }
    const auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end()) continue;  // host down
    Handler handler = it->second;  // copy: receiver may unregister itself
    handler(msg.from, msg.frame);
    return true;
  }
  return false;
}

std::size_t AsyncNetwork::run_until_idle(std::size_t max_deliveries) {
  std::size_t delivered = 0;
  while (pump_one()) {
    if (++delivered > max_deliveries) {
      throw std::runtime_error("AsyncNetwork: live-lock (message storm)");
    }
  }
  return delivered;
}

}  // namespace p3s::net
