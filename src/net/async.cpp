#include "net/async.hpp"

#include <stdexcept>

#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::net {

namespace {
struct NetFaultMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& dropped = reg.counter(obs::names::kNetFaultDroppedTotal);
  obs::Counter& duplicated =
      reg.counter(obs::names::kNetFaultDuplicatedTotal);
  obs::Counter& delayed = reg.counter(obs::names::kNetFaultDelayedTotal);
  obs::Counter& reordered = reg.counter(obs::names::kNetFaultReorderedTotal);
  obs::Counter& blackout_dropped =
      reg.counter(obs::names::kNetFaultBlackoutDroppedTotal);
};

NetFaultMetrics& net_fault_metrics() {
  static NetFaultMetrics m;
  return m;
}
}  // namespace

void AsyncNetwork::register_endpoint(const std::string& name, Handler handler) {
  if (!endpoints_.emplace(name, std::move(handler)).second) {
    throw std::invalid_argument("AsyncNetwork: duplicate endpoint '" + name +
                                "'");
  }
}

void AsyncNetwork::unregister_endpoint(const std::string& name) {
  endpoints_.erase(name);
}

std::size_t AsyncNetwork::dropped_on(const std::string& from,
                                     const std::string& to) const {
  const auto it = dropped_by_link_.find({from, to});
  return it != dropped_by_link_.end() ? it->second : 0;
}

void AsyncNetwork::count_drop(const std::string& from, const std::string& to) {
  ++dropped_;
  ++dropped_by_link_[{from, to}];
}

void AsyncNetwork::send(const std::string& from, const std::string& to,
                        Bytes frame) {
  ++tick_;
  if (!plan_.has_value()) {
    record(from, to, frame);
    queue_.push_back(InFlight{from, to, std::move(frame), tick_});
    return;
  }
  NetFaultMetrics& metrics = net_fault_metrics();
  const double t = now();
  if (plan_->in_blackout(from, t)) {
    // A dark sender's frames never leave the host segment — they are lost
    // before the wire, so the eavesdropper (whose tap is the wire) never
    // sees them. Plan drops and receiver blackouts below happen PAST the
    // observation point and stay in the traffic log.
    count_drop(from, to);
    metrics.blackout_dropped.inc();
    return;
  }
  // The wire sees the frame whether or not it survives delivery: the traffic
  // log is the eavesdropper's view, and loss happens past the observation
  // point (a duplicate appears twice — once per wire appearance).
  record(from, to, frame);
  if (plan_->should_drop(from, to)) {
    count_drop(from, to);
    metrics.dropped.inc();
    return;
  }
  const auto delayed = [&] {
    const std::uint64_t d = static_cast<std::uint64_t>(plan_->delay(from, to));
    if (d > 0) metrics.delayed.inc();
    return tick_ + d;
  };
  const std::uint64_t deliver_at = delayed();
  if (plan_->should_duplicate(from, to)) {
    metrics.duplicated.inc();
    record(from, to, frame);  // the eavesdropper sees both copies
    queue_.push_back(InFlight{from, to, frame, delayed()});
  }
  queue_.push_back(InFlight{from, to, std::move(frame), deliver_at});
}

bool AsyncNetwork::pump_one() {
  while (!queue_.empty()) {
    InFlight msg;
    if (plan_.has_value()) {
      // Earliest deliver_at first (FIFO on ties); a reorder fault lets a
      // uniformly chosen in-flight frame overtake the scheduled one.
      std::size_t idx = 0;
      for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (queue_[i].deliver_at < queue_[idx].deliver_at) idx = i;
      }
      if (queue_.size() > 1 &&
          plan_->should_reorder(queue_[idx].from, queue_[idx].to)) {
        const std::size_t victim = plan_->pick(queue_.size());
        if (victim != idx) net_fault_metrics().reordered.inc();
        idx = victim;
      }
      msg = std::move(queue_[idx]);
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));
      tick_ = std::max(tick_ + 1, msg.deliver_at);
    } else if (reorder_) {
      msg = std::move(queue_.back());
      queue_.pop_back();
      ++tick_;
    } else {
      msg = std::move(queue_.front());
      queue_.pop_front();
      ++tick_;
    }
    if (drop_remaining_ > 0) {
      --drop_remaining_;
      count_drop(msg.from, msg.to);
      continue;  // frame lost on the wire
    }
    if (plan_.has_value() && plan_->in_blackout(msg.to, now())) {
      count_drop(msg.from, msg.to);
      net_fault_metrics().blackout_dropped.inc();
      continue;  // receiver dark at delivery time
    }
    const auto it = endpoints_.find(msg.to);
    if (it == endpoints_.end()) continue;  // host down
    Handler handler = it->second;  // copy: receiver may unregister itself
    handler(msg.from, msg.frame);
    return true;
  }
  return false;
}

std::size_t AsyncNetwork::run_until_idle(std::size_t max_deliveries) {
  std::size_t delivered = 0;
  while (pump_one()) {
    if (++delivered > max_deliveries) {
      throw std::runtime_error("AsyncNetwork: live-lock (message storm)");
    }
  }
  return delivered;
}

}  // namespace p3s::net
