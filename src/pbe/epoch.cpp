#include "pbe/epoch.hpp"

#include <cmath>
#include <stdexcept>

#include "common/serial.hpp"

namespace p3s::pbe {

EpochPolicy::EpochPolicy(std::size_t n_epochs, double epoch_seconds)
    : n_epochs_(n_epochs), epoch_seconds_(epoch_seconds) {
  if (n_epochs < 2) {
    throw std::invalid_argument("EpochPolicy: need >= 2 epochs");
  }
  if (!(epoch_seconds > 0)) {
    throw std::invalid_argument("EpochPolicy: epoch_seconds must be positive");
  }
}

std::size_t EpochPolicy::epoch_at(double time) const {
  const double idx = std::floor(time / epoch_seconds_);
  return static_cast<std::size_t>(idx) % n_epochs_;
}

std::string EpochPolicy::value_of(std::size_t epoch) const {
  return "e" + std::to_string(epoch % n_epochs_);
}

MetadataSchema EpochPolicy::extend(const MetadataSchema& schema) const {
  std::vector<AttributeSpec> specs = schema.attributes();
  AttributeSpec epoch_spec;
  epoch_spec.name = attribute_name();
  for (std::size_t e = 0; e < n_epochs_; ++e) {
    epoch_spec.values.push_back(value_of(e));
  }
  specs.push_back(std::move(epoch_spec));
  return MetadataSchema(std::move(specs));
}

Metadata EpochPolicy::stamp(Metadata md, double time) const {
  md[attribute_name()] = value_of(epoch_at(time));
  return md;
}

Interest EpochPolicy::restrict(Interest interest, double time) const {
  interest[attribute_name()] = value_of(epoch_at(time));
  return interest;
}

Bytes EpochPolicy::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(n_epochs_));
  w.u64(static_cast<std::uint64_t>(epoch_seconds_ * 1000.0));  // ms precision
  return w.take();
}

EpochPolicy EpochPolicy::deserialize(BytesView data) {
  Reader r(data);
  const std::uint32_t n = r.u32();
  const double seconds = static_cast<double>(r.u64()) / 1000.0;
  r.expect_done();
  return EpochPolicy(n, seconds);
}

}  // namespace p3s::pbe
