// Time-stamped publications and tokens — the token-revocation mitigation of
// paper §6.1: "One possibility is to time-stamp publications and tokens,
// making tokens active only within a configurable period of time. This
// approach has the advantage of providing a token revocation mechanism but
// requires the clients to be time-synchronized and using time as an
// additional metadata attribute."
//
// The epoch is one extra schema attribute with `n_epochs` values, cycled as
// epoch(t) = floor(t / epoch_seconds) mod n_epochs. Publishers stamp
// metadata with the current epoch; token requests are restricted to the
// current epoch, so a token stops matching after its epoch rolls over —
// bounding how many live tokens an adversary can hoard (the §6.1 token
// accumulation attack).
#pragma once

#include <cstddef>

#include "pbe/schema.hpp"

namespace p3s::pbe {

class EpochPolicy {
 public:
  /// Throws std::invalid_argument unless n_epochs >= 2 and
  /// epoch_seconds > 0.
  EpochPolicy(std::size_t n_epochs, double epoch_seconds);

  std::size_t n_epochs() const { return n_epochs_; }
  double epoch_seconds() const { return epoch_seconds_; }

  /// Epoch index active at time t (seconds).
  std::size_t epoch_at(double time) const;

  /// Name of the epoch attribute added to schemas.
  static const char* attribute_name() { return "_epoch"; }
  /// Value string for epoch index e.
  std::string value_of(std::size_t epoch) const;

  /// Extend a schema with the epoch attribute.
  MetadataSchema extend(const MetadataSchema& schema) const;

  /// Stamp metadata with the epoch active at `time`.
  Metadata stamp(Metadata md, double time) const;

  /// Restrict an interest to the epoch active at `time` (a token for it
  /// matches only publications stamped in the same epoch).
  Interest restrict(Interest interest, double time) const;

  bool operator==(const EpochPolicy&) const = default;

  Bytes serialize() const;
  static EpochPolicy deserialize(BytesView data);

 private:
  std::size_t n_epochs_;
  double epoch_seconds_;
};

}  // namespace p3s::pbe
