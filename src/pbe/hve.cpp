#include "pbe/hve.hpp"

#include <stdexcept>

#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "crypto/hmac.hpp"
#include "exec/pool.hpp"
#include "math/modular.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::pbe {

using math::mod;
using math::mod_add;
using math::mod_inv;
using math::mod_mul;
using math::mod_sub;

bool hve_match_plain(const BitVector& x, const Pattern& w) {
  if (x.size() != w.size()) return false;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (w[i] != kWildcard && w[i] != static_cast<std::int8_t>(x[i])) return false;
  }
  return true;
}

// --- Serialization ---------------------------------------------------------------

namespace {
void write_points(Writer& w, const pairing::Pairing& p,
                  const std::vector<Point>& pts) {
  w.u32(static_cast<std::uint32_t>(pts.size()));
  for (const Point& pt : pts) w.raw(p.serialize_g1(pt));
}

std::vector<Point> read_points(Reader& r, const pairing::Pairing& p) {
  const std::uint32_t n = r.u32();
  if (n > 1u << 20) throw std::invalid_argument("hve: vector too long");
  std::vector<Point> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(p.deserialize_g1(r.raw(p.g1_bytes())));
  }
  return out;
}
}  // namespace

Bytes HvePublicKey::serialize() const {
  Writer w;
  write_points(w, *pairing, t);
  write_points(w, *pairing, v);
  write_points(w, *pairing, r);
  write_points(w, *pairing, m);
  w.raw(pairing->serialize_gt(omega));
  return w.take();
}

HvePublicKey HvePublicKey::deserialize(PairingPtr pairing, BytesView data) {
  Reader rd(data);
  HvePublicKey pk;
  pk.t = read_points(rd, *pairing);
  pk.v = read_points(rd, *pairing);
  pk.r = read_points(rd, *pairing);
  pk.m = read_points(rd, *pairing);
  pk.omega = pairing->deserialize_gt(rd.raw(pairing->gt_bytes()));
  rd.expect_done();
  if (pk.v.size() != pk.t.size() || pk.r.size() != pk.t.size() ||
      pk.m.size() != pk.t.size()) {
    throw std::invalid_argument("HvePublicKey: ragged vectors");
  }
  pk.pairing = std::move(pairing);
  return pk;
}

Bytes HveCiphertext::serialize(const pairing::Pairing& pairing) const {
  Writer wr;
  wr.raw(pairing.serialize_gt(c0));
  write_points(wr, pairing, x);
  write_points(wr, pairing, w);
  return wr.take();
}

HveCiphertext HveCiphertext::deserialize(const pairing::Pairing& pairing,
                                         BytesView data) {
  Reader rd(data);
  HveCiphertext ct;
  ct.c0 = pairing.deserialize_gt(rd.raw(pairing.gt_bytes()));
  ct.x = read_points(rd, pairing);
  ct.w = read_points(rd, pairing);
  rd.expect_done();
  if (ct.w.size() != ct.x.size()) {
    throw std::invalid_argument("HveCiphertext: ragged vectors");
  }
  return ct;
}

Bytes HveToken::serialize(const pairing::Pairing& pairing) const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(positions.size()));
  for (std::uint32_t p : positions) w.u32(p);
  write_points(w, pairing, y);
  write_points(w, pairing, l);
  return w.take();
}

HveToken HveToken::deserialize(const pairing::Pairing& pairing, BytesView data) {
  Reader rd(data);
  HveToken tok;
  const std::uint32_t n = rd.u32();
  if (n > 1u << 20) throw std::invalid_argument("HveToken: too many positions");
  tok.positions.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) tok.positions.push_back(rd.u32());
  tok.y = read_points(rd, pairing);
  tok.l = read_points(rd, pairing);
  rd.expect_done();
  if (tok.y.size() != tok.positions.size() ||
      tok.l.size() != tok.positions.size()) {
    throw std::invalid_argument("HveToken: ragged vectors");
  }
  return tok;
}

namespace {
void write_scalars(Writer& w, const std::vector<BigInt>& xs) {
  w.u32(static_cast<std::uint32_t>(xs.size()));
  for (const BigInt& x : xs) w.bytes(x.to_bytes());
}

std::vector<BigInt> read_scalars(Reader& r) {
  const std::uint32_t n = r.u32();
  if (n > 1u << 20) throw std::invalid_argument("hve: scalar vector too long");
  std::vector<BigInt> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(BigInt::from_bytes(r.bytes()));
  return out;
}
}  // namespace

Bytes HveMasterKey::serialize() const {
  Writer w;
  write_scalars(w, t);
  write_scalars(w, v);
  write_scalars(w, r);
  write_scalars(w, m);
  w.bytes(y.to_bytes());
  return w.take();
}

HveMasterKey HveMasterKey::deserialize(BytesView data) {
  Reader rd(data);
  HveMasterKey msk;
  msk.t = read_scalars(rd);
  msk.v = read_scalars(rd);
  msk.r = read_scalars(rd);
  msk.m = read_scalars(rd);
  msk.y = BigInt::from_bytes(rd.bytes());
  rd.expect_done();
  if (msk.v.size() != msk.t.size() || msk.r.size() != msk.t.size() ||
      msk.m.size() != msk.t.size()) {
    throw std::invalid_argument("HveMasterKey: ragged vectors");
  }
  return msk;
}

Bytes HveKeys::serialize() const {
  Writer w;
  w.bytes(pk.serialize());
  w.bytes(msk.serialize());
  return w.take();
}

HveKeys HveKeys::deserialize(PairingPtr pairing, BytesView data) {
  Reader r(data);
  HveKeys keys;
  keys.pk = HvePublicKey::deserialize(std::move(pairing), r.bytes());
  keys.msk = HveMasterKey::deserialize(r.bytes());
  r.expect_done();
  if (keys.msk.t.size() != keys.pk.width()) {
    throw std::invalid_argument("HveKeys: pk/msk width mismatch");
  }
  return keys;
}

// --- Core scheme --------------------------------------------------------------------

HvePrecomp hve_precompute(const HvePublicKey& pk) {
  const pairing::Pairing& p = *pk.pairing;
  const std::size_t bits = p.r().bit_length();
  HvePrecomp pre;
  pre.pairing = pk.pairing;
  auto build = [&](const std::vector<Point>& bases,
                   std::vector<pairing::FixedBaseTable>& tables) {
    tables.reserve(bases.size());
    for (const Point& b : bases) tables.emplace_back(p.mont_q(), b, bits);
  };
  build(pk.t, pre.t);
  build(pk.v, pre.v);
  build(pk.r, pre.r);
  build(pk.m, pre.m);
  pre.omega.emplace(p.mont_q(), pk.omega, bits);
  return pre;
}

HveKeys hve_setup(PairingPtr pairing, std::size_t width, Rng& rng) {
  if (width == 0) throw std::invalid_argument("hve_setup: zero width");
  const pairing::Pairing& p = *pairing;
  HveKeys keys;
  keys.pk.pairing = pairing;
  keys.msk.y = p.random_nonzero_scalar(rng);
  keys.pk.omega = p.gt_pow(p.gt_generator(), keys.msk.y);

  auto fill = [&](std::vector<BigInt>& exps, std::vector<Point>& pts) {
    exps.reserve(width);
    pts.reserve(width);
    for (std::size_t i = 0; i < width; ++i) {
      const BigInt e = p.random_nonzero_scalar(rng);
      pts.push_back(p.mul(p.generator(), e));
      exps.push_back(e);
    }
  };
  fill(keys.msk.t, keys.pk.t);
  fill(keys.msk.v, keys.pk.v);
  fill(keys.msk.r, keys.pk.r);
  fill(keys.msk.m, keys.pk.m);
  return keys;
}

HveCiphertext hve_encrypt(const HvePublicKey& pk, const BitVector& x,
                          const Fq2& message, Rng& rng,
                          const HvePrecomp* precomp) {
  const pairing::Pairing& p = *pk.pairing;
  if (x.size() != pk.width()) {
    throw std::invalid_argument("hve_encrypt: width mismatch");
  }
  if (precomp != nullptr && precomp->width() != pk.width()) {
    throw std::invalid_argument("hve_encrypt: precomp width mismatch");
  }
  const BigInt s = p.random_nonzero_scalar(rng);

  HveCiphertext ct;
  const Fq2 omega_s =
      precomp != nullptr ? precomp->omega->pow(s) : p.gt_pow(pk.omega, s);
  ct.c0 = p.gt_mul(message, p.gt_inv(omega_s));
  ct.x.reserve(x.size());
  ct.w.reserve(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 1) throw std::invalid_argument("hve_encrypt: non-binary bit");
    const BigInt si = p.random_scalar(rng);
    const BigInt s_minus_si = mod_sub(s, si, p.r());
    if (precomp != nullptr) {
      if (x[i] == 1) {
        ct.x.push_back(precomp->t[i].mul(s_minus_si));
        ct.w.push_back(precomp->v[i].mul(si));
      } else {
        ct.x.push_back(precomp->r[i].mul(s_minus_si));
        ct.w.push_back(precomp->m[i].mul(si));
      }
    } else if (x[i] == 1) {
      ct.x.push_back(p.mul(pk.t[i], s_minus_si));
      ct.w.push_back(p.mul(pk.v[i], si));
    } else {
      ct.x.push_back(p.mul(pk.r[i], s_minus_si));
      ct.w.push_back(p.mul(pk.m[i], si));
    }
  }
  return ct;
}

HveToken hve_gen_token(const HveKeys& keys, const Pattern& w, Rng& rng) {
  const pairing::Pairing& p = *keys.pk.pairing;
  if (w.size() != keys.pk.width()) {
    throw std::invalid_argument("hve_gen_token: width mismatch");
  }
  HveToken tok;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w[i] != kWildcard && w[i] != 0 && w[i] != 1) {
      throw std::invalid_argument("hve_gen_token: bad pattern symbol");
    }
    if (w[i] != kWildcard) tok.positions.push_back(static_cast<std::uint32_t>(i));
  }
  if (tok.positions.empty()) {
    throw std::invalid_argument(
        "hve_gen_token: all-wildcard predicates are not permitted");
  }

  // Split y into shares a_i over the non-wildcard positions.
  std::vector<BigInt> shares;
  shares.reserve(tok.positions.size());
  BigInt sum{};
  for (std::size_t j = 0; j + 1 < tok.positions.size(); ++j) {
    BigInt a = p.random_scalar(rng);
    sum = mod_add(sum, a, p.r());
    shares.push_back(std::move(a));
  }
  shares.push_back(mod_sub(keys.msk.y, sum, p.r()));

  tok.y.reserve(tok.positions.size());
  tok.l.reserve(tok.positions.size());
  for (std::size_t j = 0; j < tok.positions.size(); ++j) {
    const std::size_t i = tok.positions[j];
    const BigInt& a = shares[j];
    const BigInt& num = a;
    if (w[i] == 1) {
      tok.y.push_back(p.mul(p.generator(), mod_mul(num, mod_inv(keys.msk.t[i], p.r()), p.r())));
      tok.l.push_back(p.mul(p.generator(), mod_mul(num, mod_inv(keys.msk.v[i], p.r()), p.r())));
    } else {
      tok.y.push_back(p.mul(p.generator(), mod_mul(num, mod_inv(keys.msk.r[i], p.r()), p.r())));
      tok.l.push_back(p.mul(p.generator(), mod_mul(num, mod_inv(keys.msk.m[i], p.r()), p.r())));
    }
  }
  return tok;
}

Fq2 hve_query(const pairing::Pairing& pairing, const HveToken& token,
              const HveCiphertext& ct) {
  // All 2|S| pairings share one interleaved Miller loop and a single final
  // exponentiation — this is the subscriber's hot path.
  std::vector<pairing::PairTerm> terms;
  terms.reserve(2 * token.positions.size());
  for (std::size_t j = 0; j < token.positions.size(); ++j) {
    const std::size_t i = token.positions[j];
    if (i >= ct.width()) {
      throw std::invalid_argument("hve_query: token/ciphertext width mismatch");
    }
    terms.push_back({ct.x[i], token.y[j]});
    terms.push_back({ct.w[i], token.l[j]});
  }
  return pairing.gt_mul(ct.c0, pairing.pair_product(terms));
}

Fq2 hve_query_reference(const pairing::Pairing& pairing, const HveToken& token,
                        const HveCiphertext& ct) {
  Fq2 acc = pairing.gt_one();
  for (std::size_t j = 0; j < token.positions.size(); ++j) {
    const std::size_t i = token.positions[j];
    if (i >= ct.width()) {
      throw std::invalid_argument("hve_query: token/ciphertext width mismatch");
    }
    acc = pairing.gt_mul(acc, pairing.pair_reference(ct.x[i], token.y[j]));
    acc = pairing.gt_mul(acc, pairing.pair_reference(ct.w[i], token.l[j]));
  }
  return pairing.gt_mul(ct.c0, acc);
}

// --- KEM-DEM wrapper -----------------------------------------------------------------

namespace {
Bytes kem_key(const pairing::Pairing& p, const Fq2& z) {
  return crypto::hkdf(str_to_bytes("p3s-hve-kem-v1"), p.serialize_gt(z), {}, 32);
}
}  // namespace

Bytes hve_encrypt_bytes(const HvePublicKey& pk, const BitVector& x,
                        BytesView payload, Rng& rng) {
  const pairing::Pairing& p = *pk.pairing;
  const Fq2 z = p.random_gt(rng);
  const HveCiphertext kem = hve_encrypt(pk, x, z, rng);
  const crypto::AeadCiphertext dem =
      crypto::aead_encrypt(kem_key(p, z), payload, str_to_bytes("hve"), rng);
  Writer w;
  w.bytes(kem.serialize(p));
  w.bytes(dem.serialize());
  return w.take();
}

std::optional<Bytes> hve_query_bytes(const pairing::Pairing& pairing,
                                     const HveToken& token, BytesView data) {
  try {
    Reader r(data);
    const HveCiphertext kem = HveCiphertext::deserialize(pairing, r.bytes());
    const crypto::AeadCiphertext dem =
        crypto::AeadCiphertext::deserialize(r.bytes());
    r.expect_done();
    const Fq2 z = hve_query(pairing, token, kem);
    return crypto::aead_decrypt(kem_key(pairing, z), dem, str_to_bytes("hve"));
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

// --- Batch matching -------------------------------------------------------------------

namespace {
struct MatchMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Histogram& prepare =
      reg.histogram(obs::names::kCryptoHvePrepareSeconds);
  obs::Histogram& batch = reg.histogram(obs::names::kCryptoHveBatchSeconds);
  obs::Histogram& batch_tokens =
      reg.histogram(obs::names::kCryptoHveBatchTokens);
};

MatchMetrics& match_metrics() {
  static MatchMetrics m;
  return m;
}
}  // namespace

HveMatchCt hve_match_prepare(const pairing::Pairing& pairing, BytesView data,
                             const std::vector<std::uint32_t>* positions) {
  obs::ScopedTimer timer(obs::Registry::global(), match_metrics().prepare);
  Reader r(data);
  HveMatchCt ct;
  ct.kem = HveCiphertext::deserialize(pairing, r.bytes());
  ct.dem = crypto::AeadCiphertext::deserialize(r.bytes());
  r.expect_done();
  const std::size_t width = ct.kem.width();
  ct.prepared.assign(width, positions == nullptr ? 1 : 0);
  if (positions != nullptr) {
    for (std::uint32_t p : *positions) {
      if (p < width) ct.prepared[p] = 1;
    }
  }
  ct.x.resize(width);
  ct.w.resize(width);
  // Each position's precompute is pure and deterministic (no RNG), so the
  // loop parallelizes with bit-identical results for any pool size.
  std::vector<std::size_t> todo;
  todo.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    if (ct.prepared[i]) todo.push_back(i);
  }
  exec::Pool::global().parallel_for(0, todo.size(), [&](std::size_t k) {
    const std::size_t i = todo[k];
    ct.x[i] = pairing.miller_precompute(ct.kem.x[i]);
    ct.w[i] = pairing.miller_precompute(ct.kem.w[i]);
  });
  return ct;
}

Fq2 hve_query(const pairing::Pairing& pairing, const HveToken& token,
              const HveMatchCt& ct) {
  // Same term order as the plain overload; pair_product_precomp is
  // bit-identical to pair_product, so so is this.
  std::vector<pairing::PrecompPairTerm> terms;
  terms.reserve(2 * token.positions.size());
  for (std::size_t j = 0; j < token.positions.size(); ++j) {
    const std::size_t i = token.positions[j];
    if (i >= ct.width()) {
      throw std::invalid_argument("hve_query: token/ciphertext width mismatch");
    }
    if (!ct.prepared[i]) {
      throw std::invalid_argument(
          "hve_query: position excluded from hve_match_prepare");
    }
    terms.push_back({&ct.x[i], token.y[j]});
    terms.push_back({&ct.w[i], token.l[j]});
  }
  return pairing.gt_mul(ct.kem.c0, pairing.pair_product_precomp(terms));
}

HveMatchResult hve_match_any(const pairing::Pairing& pairing,
                             std::span<const HveToken* const> tokens,
                             const HveMatchCt& ct, exec::Pool* pool) {
  obs::ScopedTimer timer(obs::Registry::global(), match_metrics().batch);
  match_metrics().batch_tokens.record(static_cast<double>(tokens.size()));
  HveMatchResult res;
  if (tokens.empty()) return res;

  // A slot per token so concurrent evaluations never share state; slot idx
  // is written by exactly one task.
  std::vector<std::optional<Bytes>> payloads(tokens.size());
  const auto eval = [&](std::size_t idx) -> bool {
    const HveToken& tok = *tokens[idx];
    // Tokens wider than this broadcast can never match — same outcome as
    // hve_query_bytes's width-mismatch nullopt, without the pairing work.
    for (const std::uint32_t i : tok.positions) {
      if (i >= ct.width()) return false;
    }
    const Fq2 z = hve_query(pairing, tok, ct);
    auto payload =
        crypto::aead_decrypt(kem_key(pairing, z), ct.dem, str_to_bytes("hve"));
    if (!payload.has_value()) return false;
    payloads[idx] = std::move(payload);
    return true;
  };

  exec::Pool& p = pool != nullptr ? *pool : exec::Pool::global();
  const std::size_t hit = p.parallel_find(tokens.size(), eval);
  if (hit == HveMatchResult::kNoMatch) return res;
  res.token_index = hit;
  res.payload = std::move(*payloads[hit]);
  return res;
}

}  // namespace p3s::pbe
