// Hidden-Vector Encryption over prime-order groups — the Iovino–Persiano
// (Pairing 2008) construction the paper cites as [7,10] and integrates via
// jPBC. Binary alphabet with wildcards in the key pattern:
//
//   Setup(ℓ): per position i: t_i,v_i,r_i,m_i ← Zr*; y ← Zr.
//       PK = (T_i=g^{t_i}, V_i=g^{v_i}, R_i=g^{r_i}, M_i=g^{m_i}, Ω=e(g,g)^y)
//   Encrypt(x ∈ {0,1}^ℓ, msg): s, s_i ← Zr;  C0 = msg·Ω^{−s};
//       x_i=1: X_i = T_i^{s−s_i}, W_i = V_i^{s_i}
//       x_i=0: X_i = R_i^{s−s_i}, W_i = M_i^{s_i}
//   GenToken(w ∈ {0,1,*}^ℓ): over non-wildcard positions S, split y into
//       random a_i with Σa_i = y;
//       w_i=1: Y_i = g^{a_i/t_i}, L_i = g^{a_i/v_i}
//       w_i=0: Y_i = g^{a_i/r_i}, L_i = g^{a_i/m_i}
//   Query: Π_{i∈S} e(X_i,Y_i)·e(W_i,L_i) = e(g,g)^{ys} iff match; then
//       msg = C0 · e(g,g)^{ys}.
//
// Matching costs 2|S| pairings — the paper's ~30-38 ms t_PBE figure.
// Security notes carried from the paper: the scheme is attribute hiding
// (semantic security for x) and collusion resistant, but NOT token private:
// a party holding a token plus the public key can probe it (see §6.1 and
// the gadget tests).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "pairing/pairing.hpp"

namespace p3s::exec {
class Pool;
}  // namespace p3s::exec

namespace p3s::pbe {

using math::BigInt;
using pairing::Fq2;
using pairing::PairingPtr;
using pairing::Point;

/// Attribute vector: each entry 0 or 1.
using BitVector = std::vector<std::uint8_t>;
/// Interest pattern: 0, 1, or kWildcard per position.
constexpr std::int8_t kWildcard = -1;
using Pattern = std::vector<std::int8_t>;

/// Plaintext match predicate (reference semantics for tests/baseline):
/// match(x, w) == 1 iff x_i == w_i at every non-wildcard position.
bool hve_match_plain(const BitVector& x, const Pattern& w);

struct HvePublicKey {
  PairingPtr pairing;
  std::vector<Point> t, v, r, m;  // per-position bases
  Fq2 omega;                      // e(g,g)^y

  std::size_t width() const { return t.size(); }
  Bytes serialize() const;
  static HvePublicKey deserialize(PairingPtr pairing, BytesView data);
};

struct HveMasterKey {
  std::vector<BigInt> t, v, r, m;
  BigInt y;

  Bytes serialize() const;
  static HveMasterKey deserialize(BytesView data);
};

struct HveKeys {
  HvePublicKey pk;
  HveMasterKey msk;

  Bytes serialize() const;
  static HveKeys deserialize(PairingPtr pairing, BytesView data);
};

struct HveCiphertext {
  Fq2 c0;
  std::vector<Point> x;  // X_i
  std::vector<Point> w;  // W_i

  std::size_t width() const { return x.size(); }
  Bytes serialize(const pairing::Pairing& pairing) const;
  static HveCiphertext deserialize(const pairing::Pairing& pairing,
                                   BytesView data);
};

/// The token reveals which positions are non-wildcard but not their values,
/// and (per the paper) is not token-private against probing attacks.
struct HveToken {
  std::vector<std::uint32_t> positions;  // non-wildcard positions, ascending
  std::vector<Point> y;                  // Y_i
  std::vector<Point> l;                  // L_i

  Bytes serialize(const pairing::Pairing& pairing) const;
  static HveToken deserialize(const pairing::Pairing& pairing, BytesView data);
};

/// Publisher-side precomputation for one public key: fixed-base windowed
/// tables for every per-position base (T/V/R/M) plus the Ω power table, so
/// repeated hve_encrypt calls pay one table-driven multiplication per
/// component instead of generic double-and-add. Build once per key
/// (~width·4 tables); holds the PairingPtr so the borrowed Montgomery
/// context stays alive.
struct HvePrecomp {
  PairingPtr pairing;
  std::vector<pairing::FixedBaseTable> t, v, r, m;  // per position
  std::optional<pairing::GtFixedBase> omega;        // Ω = e(g,g)^y

  std::size_t width() const { return t.size(); }
};

HvePrecomp hve_precompute(const HvePublicKey& pk);

/// Run by the PBE-TS operator (in P3S, keying material is provisioned by the
/// ARA and the PBE-TS holds the master key).
HveKeys hve_setup(PairingPtr pairing, std::size_t width, Rng& rng);

/// Encrypt a GT element under attribute vector x. x.size() must equal width.
/// Pass the key's HvePrecomp to take the fixed-base fast path.
HveCiphertext hve_encrypt(const HvePublicKey& pk, const BitVector& x,
                          const Fq2& message, Rng& rng,
                          const HvePrecomp* precomp = nullptr);

/// Generate the token for pattern w (performed by the PBE-TS on the
/// subscriber's plaintext predicate). Throws std::invalid_argument if the
/// pattern is all wildcards (paper: honest clients never subscribe to
/// everything) or the width mismatches.
HveToken hve_gen_token(const HveKeys& keys, const Pattern& w, Rng& rng);

/// Candidate decryption: equals the encrypted message iff match(x,w) == 1;
/// a uniformly random-looking GT element otherwise. The 2|S| pairings run
/// as ONE interleaved multi-pairing product (single final exponentiation).
Fq2 hve_query(const pairing::Pairing& pairing, const HveToken& token,
              const HveCiphertext& ct);

/// The original 2|S|-independent-pairings evaluation. Correctness pin for
/// hve_query equivalence tests; not used on the hot path.
Fq2 hve_query_reference(const pairing::Pairing& pairing,
                        const HveToken& token, const HveCiphertext& ct);

// --- KEM-DEM wrapper: how P3S ships the GUID -----------------------------------

/// Encrypt an arbitrary short payload (in P3S: the GUID) under attribute
/// vector x. A random GT element is HVE-encrypted; HKDF of it keys an AEAD.
/// Failed matches surface as AEAD failures, giving an explicit match/no-match
/// signal.
Bytes hve_encrypt_bytes(const HvePublicKey& pk, const BitVector& x,
                        BytesView payload, Rng& rng);

/// nullopt iff the token's predicate does not match the ciphertext's
/// attribute vector (or the input is malformed).
std::optional<Bytes> hve_query_bytes(const pairing::Pairing& pairing,
                                     const HveToken& token, BytesView data);

// --- Batch matching: ciphertext-side state shared across tokens ---------------

/// Per-broadcast, token-independent match state: the KEM/DEM halves of one
/// hve_encrypt_bytes blob plus a Miller precompute for every ciphertext
/// point. Built ONCE per broadcast by hve_match_prepare and then shared —
/// strictly read-only, hence safe to probe from many threads — by every
/// token evaluation, so the Miller loop's point-arithmetic chain is paid
/// per broadcast instead of per (broadcast, token) pair.
struct HveMatchCt {
  HveCiphertext kem;
  crypto::AeadCiphertext dem;
  std::vector<pairing::MillerPrecomp> x, w;  // index = ciphertext position
  std::vector<std::uint8_t> prepared;        // 1 iff position has precomp

  std::size_t width() const { return kem.width(); }
};

/// Deserialize an hve_encrypt_bytes blob and precompute the ciphertext-side
/// Miller state. `positions` restricts the (expensive) precompute to the
/// union of positions the caller's tokens actually probe; nullptr prepares
/// every position. Throws std::invalid_argument on malformed input.
HveMatchCt hve_match_prepare(
    const pairing::Pairing& pairing, BytesView data,
    const std::vector<std::uint32_t>* positions = nullptr);

/// hve_query against prepared state — bit-identical to the plain overload
/// on the same token and ciphertext. Throws std::invalid_argument if the
/// token probes a position hve_match_prepare was told to skip.
Fq2 hve_query(const pairing::Pairing& pairing, const HveToken& token,
              const HveMatchCt& ct);

/// Outcome of hve_match_any.
struct HveMatchResult {
  /// Index into `tokens` of the LOWEST-index matching token (identical to
  /// what the sequential per-token loop would return), or kNoMatch.
  static constexpr std::size_t kNoMatch = static_cast<std::size_t>(-1);
  std::size_t token_index = kNoMatch;
  Bytes payload;  // decrypted DEM payload (in P3S: the GUID) when matched

  bool matched() const { return token_index != kNoMatch; }
};

/// Evaluate every token against one prepared broadcast, in parallel on
/// `pool` (nullptr → exec::Pool::global()) with first-hit short-circuit.
/// Each evaluation is a pure function of (token, ct), so the result is
/// deterministic regardless of thread count. Tokens probing positions the
/// prepare call skipped make the whole call throw std::invalid_argument.
HveMatchResult hve_match_any(const pairing::Pairing& pairing,
                             std::span<const HveToken* const> tokens,
                             const HveMatchCt& ct,
                             exec::Pool* pool = nullptr);

}  // namespace p3s::pbe
