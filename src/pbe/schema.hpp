// Metadata space (paper §2, §3.1): a fixed, predefined set of attributes
// with enumerated values, distributed by the ARA at registration. Metadata
// is a full assignment attribute→value; subscriber interest is a conjunctive
// equality predicate where unmentioned attributes are wildcards.
//
// The HVE mapping follows the paper: an attribute with up to 2^b values is
// encoded in b bits; a wildcard spans all b bits of its attribute. The
// paper's Table 1 uses P = 40 bits total.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "pbe/hve.hpp"

namespace p3s::pbe {

/// Full metadata assignment: every schema attribute must be present.
using Metadata = std::map<std::string, std::string>;

/// Conjunctive interest: attribute → required value; absent attributes are
/// wildcards. An empty map would be the all-wildcard predicate, which the
/// paper assumes honest clients never register (and HVE token generation
/// rejects).
using Interest = std::map<std::string, std::string>;

/// Plaintext match semantics (used by the baseline broker and as the
/// reference predicate for HVE property tests).
bool interest_matches(const Interest& interest, const Metadata& metadata);

/// Wire encoding for Metadata/Interest (both are string maps). Used by the
/// baseline broker (which ships them in the clear) and by the subscriber →
/// PBE-TS token request (where the plaintext predicate travels inside an
/// ECIES envelope).
Bytes serialize_string_map(const std::map<std::string, std::string>& m);
std::map<std::string, std::string> deserialize_string_map(BytesView data);

struct AttributeSpec {
  std::string name;
  std::vector<std::string> values;  // enumerated legal values
};

class MetadataSchema {
 public:
  /// Throws std::invalid_argument on duplicate names, empty value lists, or
  /// attributes with a single value (0 bits).
  explicit MetadataSchema(std::vector<AttributeSpec> attributes);

  /// The paper's evaluation-scale schema: `n_attrs` attributes with
  /// `n_values` values each (defaults give the 40-bit vector of Table 1:
  /// 13 attributes x 8 values = 39 bits ~ 40).
  static MetadataSchema uniform(std::size_t n_attrs, std::size_t n_values);

  const std::vector<AttributeSpec>& attributes() const { return attrs_; }
  /// Total HVE vector width in bits.
  std::size_t width() const { return width_; }

  /// Encode full metadata; throws std::invalid_argument on missing/unknown
  /// attributes or values.
  BitVector encode_metadata(const Metadata& md) const;

  /// Encode an interest; wildcards span each absent attribute's bits.
  /// Throws on unknown attributes/values or on the all-wildcard interest.
  Pattern encode_interest(const Interest& interest) const;

  Bytes serialize() const;
  static MetadataSchema deserialize(BytesView data);

  bool operator==(const MetadataSchema& other) const {
    return attrs_ == other.attrs_;
  }

 private:
  struct Layout {
    std::size_t offset;  // first bit
    std::size_t bits;    // bit count
  };
  const Layout& layout_of(const std::string& attr) const;
  std::size_t value_index(const AttributeSpec& spec,
                          const std::string& value) const;

  std::vector<AttributeSpec> attrs_;
  std::map<std::string, std::size_t> index_;  // name -> attrs_ position
  std::vector<Layout> layouts_;
  std::size_t width_ = 0;
};

inline bool operator==(const AttributeSpec& a, const AttributeSpec& b) {
  return a.name == b.name && a.values == b.values;
}

}  // namespace p3s::pbe
