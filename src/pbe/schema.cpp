#include "pbe/schema.hpp"

#include <stdexcept>

#include "common/serial.hpp"

namespace p3s::pbe {

bool interest_matches(const Interest& interest, const Metadata& metadata) {
  for (const auto& [attr, value] : interest) {
    const auto it = metadata.find(attr);
    if (it == metadata.end() || it->second != value) return false;
  }
  return true;
}

Bytes serialize_string_map(const std::map<std::string, std::string>& m) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(m.size()));
  for (const auto& [key, value] : m) {
    w.str(key);
    w.str(value);
  }
  return w.take();
}

std::map<std::string, std::string> deserialize_string_map(BytesView data) {
  Reader r(data);
  const std::uint32_t n = r.u32();
  if (n > 1u << 16) throw std::invalid_argument("string map too large");
  std::map<std::string, std::string> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    out.emplace(std::move(key), r.str());
  }
  r.expect_done();
  return out;
}

namespace {
std::size_t bits_for(std::size_t n_values) {
  std::size_t bits = 0;
  std::size_t cap = 1;
  while (cap < n_values) {
    cap <<= 1;
    ++bits;
  }
  return bits;
}
}  // namespace

MetadataSchema::MetadataSchema(std::vector<AttributeSpec> attributes)
    : attrs_(std::move(attributes)) {
  if (attrs_.empty()) {
    throw std::invalid_argument("MetadataSchema: no attributes");
  }
  std::size_t offset = 0;
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    const AttributeSpec& spec = attrs_[i];
    if (spec.values.size() < 2) {
      throw std::invalid_argument("MetadataSchema: attribute '" + spec.name +
                                  "' needs >= 2 values");
    }
    if (!index_.emplace(spec.name, i).second) {
      throw std::invalid_argument("MetadataSchema: duplicate attribute '" +
                                  spec.name + "'");
    }
    const std::size_t bits = bits_for(spec.values.size());
    layouts_.push_back({offset, bits});
    offset += bits;
  }
  width_ = offset;
}

MetadataSchema MetadataSchema::uniform(std::size_t n_attrs,
                                       std::size_t n_values) {
  std::vector<AttributeSpec> specs;
  specs.reserve(n_attrs);
  for (std::size_t i = 0; i < n_attrs; ++i) {
    AttributeSpec spec;
    spec.name = "attr" + std::to_string(i);
    for (std::size_t v = 0; v < n_values; ++v) {
      spec.values.push_back("v" + std::to_string(v));
    }
    specs.push_back(std::move(spec));
  }
  return MetadataSchema(std::move(specs));
}

const MetadataSchema::Layout& MetadataSchema::layout_of(
    const std::string& attr) const {
  const auto it = index_.find(attr);
  if (it == index_.end()) {
    throw std::invalid_argument("MetadataSchema: unknown attribute '" + attr +
                                "'");
  }
  return layouts_[it->second];
}

std::size_t MetadataSchema::value_index(const AttributeSpec& spec,
                                        const std::string& value) const {
  for (std::size_t i = 0; i < spec.values.size(); ++i) {
    if (spec.values[i] == value) return i;
  }
  throw std::invalid_argument("MetadataSchema: unknown value '" + value +
                              "' for attribute '" + spec.name + "'");
}

BitVector MetadataSchema::encode_metadata(const Metadata& md) const {
  BitVector out(width_, 0);
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    const AttributeSpec& spec = attrs_[i];
    const auto it = md.find(spec.name);
    if (it == md.end()) {
      throw std::invalid_argument("MetadataSchema: metadata missing attribute '" +
                                  spec.name + "'");
    }
    const std::size_t v = value_index(spec, it->second);
    for (std::size_t b = 0; b < layouts_[i].bits; ++b) {
      out[layouts_[i].offset + b] = static_cast<std::uint8_t>((v >> b) & 1);
    }
  }
  // Reject extraneous attributes to catch schema drift early.
  for (const auto& [attr, value] : md) {
    (void)value;
    if (!index_.contains(attr)) {
      throw std::invalid_argument("MetadataSchema: unknown attribute '" + attr +
                                  "'");
    }
  }
  return out;
}

Pattern MetadataSchema::encode_interest(const Interest& interest) const {
  if (interest.empty()) {
    throw std::invalid_argument(
        "MetadataSchema: all-wildcard interest is not permitted");
  }
  Pattern out(width_, kWildcard);
  for (const auto& [attr, value] : interest) {
    const auto it = index_.find(attr);
    if (it == index_.end()) {
      throw std::invalid_argument("MetadataSchema: unknown attribute '" + attr +
                                  "'");
    }
    const AttributeSpec& spec = attrs_[it->second];
    const Layout& lay = layouts_[it->second];
    const std::size_t v = value_index(spec, value);
    for (std::size_t b = 0; b < lay.bits; ++b) {
      out[lay.offset + b] = static_cast<std::int8_t>((v >> b) & 1);
    }
  }
  return out;
}

Bytes MetadataSchema::serialize() const {
  Writer w;
  w.u32(static_cast<std::uint32_t>(attrs_.size()));
  for (const AttributeSpec& spec : attrs_) {
    w.str(spec.name);
    w.u32(static_cast<std::uint32_t>(spec.values.size()));
    for (const std::string& v : spec.values) w.str(v);
  }
  return w.take();
}

MetadataSchema MetadataSchema::deserialize(BytesView data) {
  Reader r(data);
  const std::uint32_t n = r.u32();
  if (n > 1u << 16) throw std::invalid_argument("MetadataSchema: too large");
  std::vector<AttributeSpec> specs;
  specs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    AttributeSpec spec;
    spec.name = r.str();
    const std::uint32_t nv = r.u32();
    if (nv > 1u << 16) throw std::invalid_argument("MetadataSchema: too large");
    for (std::uint32_t v = 0; v < nv; ++v) spec.values.push_back(r.str());
    specs.push_back(std::move(spec));
  }
  r.expect_done();
  return MetadataSchema(std::move(specs));
}

}  // namespace p3s::pbe
