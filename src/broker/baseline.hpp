// Baseline system (paper §6.2): "a standard centralized pub-sub system,
// where publishers submit their payload and metadata (such as a topic) to a
// central broker, subscribers register subscriptions with the broker, and
// the broker sends the payload whose metadata matches with a subscription to
// the subscriber." No privacy: the broker sees interests, metadata, and
// payloads in the clear — that visibility is exactly what the privacy tests
// contrast against P3S.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "pbe/schema.hpp"

namespace p3s::broker {

struct BaselineDelivery {
  pbe::Metadata metadata;
  Bytes payload;
};

class BaselineBroker {
 public:
  BaselineBroker(net::Network& network, std::string name);
  ~BaselineBroker();

  const std::string& name() const { return name_; }
  std::size_t subscription_count() const { return subscriptions_.size(); }
  std::uint64_t publications() const { return publications_; }
  /// Total subscription predicate evaluations performed (the broker-side
  /// matching cost the paper models as N_s · t_match).
  std::uint64_t match_operations() const { return match_operations_; }

  /// The broker's (non-private) view — everything in the clear.
  const std::vector<pbe::Interest>& visible_interests() const {
    return visible_interests_;
  }
  const std::vector<pbe::Metadata>& visible_metadata() const {
    return visible_metadata_;
  }

 private:
  void on_frame(const std::string& from, BytesView frame);

  net::Network& network_;
  std::string name_;
  std::multimap<std::string, pbe::Interest> subscriptions_;  // subscriber -> interest
  std::uint64_t publications_ = 0;
  std::uint64_t match_operations_ = 0;
  std::vector<pbe::Interest> visible_interests_;
  std::vector<pbe::Metadata> visible_metadata_;
};

class BaselineSubscriber {
 public:
  BaselineSubscriber(net::Network& network, std::string name,
                     std::string broker);
  ~BaselineSubscriber();

  void subscribe(const pbe::Interest& interest);
  const std::vector<BaselineDelivery>& received() const { return received_; }
  const std::string& name() const { return name_; }

 private:
  void on_frame(const std::string& from, BytesView frame);

  net::Network& network_;
  std::string name_;
  std::string broker_;
  std::vector<BaselineDelivery> received_;
};

class BaselinePublisher {
 public:
  BaselinePublisher(net::Network& network, std::string name,
                    std::string broker);
  ~BaselinePublisher();

  void publish(const pbe::Metadata& metadata, BytesView payload);
  const std::string& name() const { return name_; }

 private:
  net::Network& network_;
  std::string name_;
  std::string broker_;
};

}  // namespace p3s::broker
