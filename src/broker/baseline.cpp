#include "broker/baseline.hpp"

#include "common/log.hpp"
#include "common/serial.hpp"

namespace p3s::broker {

namespace {
enum class Tag : std::uint8_t { kSubscribe = 1, kPublish = 2, kDeliver = 3 };
}  // namespace

BaselineBroker::BaselineBroker(net::Network& network, std::string name)
    : network_(network), name_(std::move(name)) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

BaselineBroker::~BaselineBroker() { network_.unregister_endpoint(name_); }

void BaselineBroker::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    const Tag tag = static_cast<Tag>(r.u8());
    if (tag == Tag::kSubscribe) {
      const pbe::Interest interest = pbe::deserialize_string_map(r.bytes());
      r.expect_done();
      subscriptions_.emplace(from, interest);
      visible_interests_.push_back(interest);
      return;
    }
    if (tag == Tag::kPublish) {
      const pbe::Metadata metadata = pbe::deserialize_string_map(r.bytes());
      const Bytes payload = r.bytes();
      r.expect_done();
      ++publications_;
      visible_metadata_.push_back(metadata);

      Writer w;
      w.u8(static_cast<std::uint8_t>(Tag::kDeliver));
      w.bytes(pbe::serialize_string_map(metadata));
      w.bytes(payload);
      const Bytes frame = w.take();
      // The broker tests each registered subscription (cost the paper
      // models) and forwards to each matching subscriber once.
      std::string last_delivered;
      for (const auto& [subscriber, interest] : subscriptions_) {
        ++match_operations_;
        if (subscriber != last_delivered &&
            pbe::interest_matches(interest, metadata)) {
          network_.send(name_, subscriber, frame);
          last_delivered = subscriber;
        }
      }
      return;
    }
    log_warn("broker") << "unknown frame from " << from;
  } catch (const std::exception& e) {
    log_warn("broker") << "bad frame from " << from << ": " << e.what();
  }
}

BaselineSubscriber::BaselineSubscriber(net::Network& network, std::string name,
                                       std::string broker)
    : network_(network), name_(std::move(name)), broker_(std::move(broker)) {
  network_.register_endpoint(
      name_, [this](const std::string& from, BytesView frame) {
        on_frame(from, frame);
      });
}

BaselineSubscriber::~BaselineSubscriber() {
  network_.unregister_endpoint(name_);
}

void BaselineSubscriber::subscribe(const pbe::Interest& interest) {
  Writer w;
  w.u8(1);  // kSubscribe
  w.bytes(pbe::serialize_string_map(interest));
  network_.send(name_, broker_, w.take());
}

void BaselineSubscriber::on_frame(const std::string& from, BytesView data) {
  try {
    Reader r(data);
    if (r.u8() != 3) return;  // not kDeliver
    BaselineDelivery d;
    d.metadata = pbe::deserialize_string_map(r.bytes());
    d.payload = r.bytes();
    r.expect_done();
    received_.push_back(std::move(d));
  } catch (const std::exception& e) {
    log_warn("baseline-sub") << "bad frame from " << from << ": " << e.what();
  }
}

BaselinePublisher::BaselinePublisher(net::Network& network, std::string name,
                                     std::string broker)
    : network_(network), name_(std::move(name)), broker_(std::move(broker)) {
  network_.register_endpoint(name_,
                             [](const std::string&, BytesView) {});
}

BaselinePublisher::~BaselinePublisher() { network_.unregister_endpoint(name_); }

void BaselinePublisher::publish(const pbe::Metadata& metadata,
                                BytesView payload) {
  Writer w;
  w.u8(2);  // kPublish
  w.bytes(pbe::serialize_string_map(metadata));
  w.bytes(payload);
  network_.send(name_, broker_, w.take());
}

}  // namespace p3s::broker
