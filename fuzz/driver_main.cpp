// Standalone corpus-replay driver, linked when the toolchain has no
// libFuzzer runtime (gcc). Replays every file in the paths given on the
// command line through LLVMFuzzerTestOneInput; directories are walked
// recursively. libFuzzer-style flags (leading '-') are ignored so the same
// invocation works for either binary flavor.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

int run_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "driver: cannot read %s\n", path.c_str());
    return -1;
  }
  std::vector<char> buf((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(buf.data()),
                         buf.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  long replayed = 0;
  bool failed = false;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // libFuzzer flag; not ours
    const fs::path p(argv[i]);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (!entry.is_regular_file()) continue;
        const int r = run_file(entry.path());
        if (r < 0) failed = true;
        if (r > 0) ++replayed;
      }
    } else {
      const int r = run_file(p);
      if (r < 0) failed = true;
      if (r > 0) ++replayed;
    }
  }
  std::fprintf(stderr, "driver: replayed %ld inputs\n", replayed);
  if (failed || replayed == 0) {
    std::fprintf(stderr, "driver: FAILED (missing or unreadable corpus)\n");
    return 1;
  }
  return 0;
}
