// Fuzz harness for the DS/RS wire-frame decoders: frame-type dispatch,
// tagged request/response bodies, content bodies, the secure-channel record
// layout, AEAD ciphertext envelopes, and the metadata-schema string map.
// These are the parsers that face attacker-controlled bytes off the wire
// (paper §4: everything a client sends crosses the DS boundary). The
// decoders' contract is throw-or-parse: std::exception rejections are fine,
// crashes and sanitizer findings are not.
#include <cstdint>
#include <exception>

#include "crypto/aead.hpp"
#include "p3s/messages.hpp"
#include "pbe/epoch.hpp"
#include "pbe/schema.hpp"

namespace {

using p3s::BytesView;

// The outer frame path: type byte, then the body decoder that type selects.
void drive_frame(BytesView input) {
  using p3s::core::FrameType;
  p3s::Reader r(input);
  const FrameType type = p3s::core::read_frame_type(r);
  switch (type) {
    case FrameType::kChannelRecord: {
      // SecureSession::open's record layout: u64 seq, AEAD envelope.
      (void)r.u64();
      const p3s::Bytes body = r.bytes();
      r.expect_done();
      (void)p3s::crypto::AeadCiphertext::deserialize(body);
      break;
    }
    case FrameType::kPublishContent:
    case FrameType::kStoreContent:
      (void)p3s::core::read_content(r);
      break;
    case FrameType::kAnonForward:
    case FrameType::kContentRequest:
    case FrameType::kContentResponse:
    case FrameType::kTokenRequest:
    case FrameType::kTokenResponse:
    case FrameType::kAraRegisterSubscriber:
    case FrameType::kAraRegisterPublisher:
    case FrameType::kAraResponse:
      (void)p3s::core::read_tagged(r);
      break;
    default:
      // Remaining types carry module-specific bodies; consume as a
      // length-prefixed blob the way the channel demux does.
      if (!r.done()) (void)r.bytes();
      break;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const BytesView input(data, size);
  try {
    drive_frame(input);
  } catch (const std::exception&) {
  }
  try {
    (void)p3s::crypto::AeadCiphertext::deserialize(input);
  } catch (const std::exception&) {
  }
  try {
    (void)p3s::pbe::deserialize_string_map(input);
  } catch (const std::exception&) {
  }
  try {
    (void)p3s::pbe::EpochPolicy::deserialize(input);
  } catch (const std::exception&) {
  }
  return 0;
}
