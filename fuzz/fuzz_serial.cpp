// Fuzz harness for the bounds-checked serializer (common/serial.hpp), the
// substrate every P3S wire frame is parsed with. The input is interpreted
// as {n_ops}{op bytes...}{payload}: each op byte drives one Reader method
// against the payload. std::out_of_range / std::invalid_argument are the
// decoder's documented rejection path; anything else — OOB reads, UB,
// aborts — is a finding for the sanitizer underneath.
#include <cstdint>
#include <stdexcept>

#include "common/serial.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size < 2) return 0;
  const std::size_t n_ops = static_cast<std::size_t>(data[0] % 32) + 1;
  if (size < 1 + n_ops) return 0;
  const p3s::BytesView payload(data + 1 + n_ops, size - 1 - n_ops);

  p3s::Reader r(payload);
  for (std::size_t i = 0; i < n_ops; ++i) {
    const std::uint8_t op = data[1 + i];
    try {
      switch (op % 9) {
        case 0: (void)r.u8(); break;
        case 1: (void)r.u16(); break;
        case 2: (void)r.u32(); break;
        case 3: (void)r.u64(); break;
        case 4: (void)r.raw(op >> 4); break;
        case 5: (void)r.bytes(); break;
        case 6: (void)r.str(); break;
        case 7: (void)r.done(); break;
        case 8: r.expect_done(); break;
      }
    } catch (const std::out_of_range&) {
      // truncated input: the decoder's contract; keep driving
    } catch (const std::invalid_argument&) {
      // trailing bytes on expect_done: also contractual
    }
    (void)r.remaining();
  }

  // Round-trip sanity: whatever the Writer emits, the Reader must accept.
  p3s::Writer w;
  w.u8(data[1]);
  w.bytes(payload);
  w.str("f");
  p3s::Reader rt(w.data());
  (void)rt.u8();
  (void)rt.bytes();
  (void)rt.str();
  rt.expect_done();
  return 0;
}
