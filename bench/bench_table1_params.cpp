// Table 1 reproduction: measure the model parameters from OUR primitives —
// the same methodology as the paper, which measured its jPBC/cpabe stack and
// fed the numbers into the §6.2 analytic models.
//
// Two security levels are reported:
//   * test scale  (80-bit r / 160-bit q)  — what the unit tests use;
//   * paper scale (160-bit r / 512-bit q) — PBC "a.param" sizing, matching
//     the toolkits the paper benchmarked.
// Set P3S_SKIP_PAPER_SCALE=1 to skip the slower paper-scale pass.
#include <cstdio>
#include <cstdlib>

#include "abe/cpabe.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "model/params.hpp"
#include "pbe/hve.hpp"
#include "pbe/schema.hpp"

using namespace p3s;  // NOLINT
using benchutil::human_bytes;
using benchutil::human_time;
using benchutil::time_op;

namespace {

struct Measured {
  double enc_p, t_pbe, gen_token;
  double enc_a, dec_a, keygen_a;
  double pbe_ct_bytes, abe_ct_overhead_bytes;
};

Measured measure(const pairing::PairingPtr& pp, int iters) {
  TestRng rng(0x7ab1e);
  Measured m{};

  // PBE at the paper's 40-bit metadata spec (P = 40).
  const std::size_t width = 40;
  const auto hve = pbe::hve_setup(pp, width, rng);
  pbe::BitVector x(width);
  pbe::Pattern w(width);
  for (std::size_t i = 0; i < width; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    w[i] = static_cast<std::int8_t>(x[i]);
  }
  const Bytes guid = rng.bytes(16);
  Bytes hve_ct;
  m.enc_p = time_op(iters, [&] { hve_ct = pbe::hve_encrypt_bytes(hve.pk, x, guid, rng); });
  m.pbe_ct_bytes = static_cast<double>(hve_ct.size());
  pbe::HveToken tok = pbe::hve_gen_token(hve, w, rng);
  m.gen_token = time_op(iters, [&] { tok = pbe::hve_gen_token(hve, w, rng); });
  m.t_pbe = time_op(iters, [&] {
    (void)pbe::hve_query_bytes(*hve.pk.pairing, tok, hve_ct);
  });

  // CP-ABE with the paper's v = 10 policy attributes.
  const auto abe_keys = abe::cpabe_setup(pp, rng);
  std::vector<abe::PolicyNode> leaves;
  std::set<std::string> attrs;
  for (int i = 0; i < 10; ++i) {
    leaves.push_back(abe::PolicyNode::leaf("attr" + std::to_string(i)));
    attrs.insert("attr" + std::to_string(i));
  }
  const auto policy = abe::PolicyNode::threshold(10, std::move(leaves));
  abe::CpabeSecretKey sk = abe::cpabe_keygen(abe_keys, attrs, rng);
  m.keygen_a = time_op(iters, [&] { sk = abe::cpabe_keygen(abe_keys, attrs, rng); });

  const Bytes payload = rng.bytes(1024);
  Bytes abe_ct;
  m.enc_a = time_op(iters, [&] {
    abe_ct = abe::cpabe_encrypt_bytes(abe_keys.pk, payload, policy, rng);
  });
  m.abe_ct_overhead_bytes = static_cast<double>(abe_ct.size()) - 1024.0;
  m.dec_a = time_op(iters, [&] {
    (void)abe::cpabe_decrypt_bytes(abe_keys.pk, sk, abe_ct);
  });
  return m;
}

void print_measured(const char* label, const Measured& m) {
  std::printf("%-46s %10s\n", "-- measured with our primitives --", label);
  std::printf("%-46s %10s\n", "enc_P (PBE encrypt, 40-bit vector)",
              human_time(m.enc_p).c_str());
  std::printf("%-46s %10s\n", "t_PBE (PBE match, full 40-bit token)",
              human_time(m.t_pbe).c_str());
  std::printf("%-46s %10s\n", "PBE GenToken", human_time(m.gen_token).c_str());
  std::printf("%-46s %10s\n", "P_E (PBE-encrypted metadata size)",
              human_bytes(m.pbe_ct_bytes).c_str());
  std::printf("%-46s %10s\n", "enc_A (CP-ABE encrypt, v=10 policy)",
              human_time(m.enc_a).c_str());
  std::printf("%-46s %10s\n", "dec_A (CP-ABE decrypt)",
              human_time(m.dec_a).c_str());
  std::printf("%-46s %10s\n", "CP-ABE KeyGen (10 attributes)",
              human_time(m.keygen_a).c_str());
  std::printf("%-46s %10s\n", "c_A - c (CP-ABE ciphertext overhead)",
              human_bytes(m.abe_ct_overhead_bytes).c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Table 1: Parameters and values used in performance models ===\n\n");
  const model::ModelParams p = model::ModelParams::paper_defaults();
  std::printf("%-46s %10s   %s\n", "symbol / meaning", "value", "source");
  std::printf("%-46s %9.0fms   paper Table 1\n", "l   network latency",
              p.latency_s * 1e3);
  std::printf("%-46s %8.0fMbps  paper Table 1\n", "B   network bandwidth",
              p.bandwidth_bps / 1e6);
  std::printf("%-46s %10s   paper Table 1\n", "c   plaintext payload size",
              "varying");
  std::printf("%-46s %9.0fbit   paper Table 1\n", "P   PBE metadata spec",
              40.0);
  std::printf("%-46s %10s   paper Table 1\n", "P_E PBE-encrypted metadata",
              human_bytes(p.metadata_ct_bytes).c_str());
  std::printf("%-46s %10s   c + 2vk (paper theory)\n",
              "c_A CP-ABE-encrypted payload",
              "c+960B");
  std::printf("%-46s %10zu   paper Table 1\n", "N_s subscribers",
              p.n_subscribers);
  std::printf("%-46s %9.0f%%    paper Table 1\n", "f   match fraction",
              p.match_fraction * 100);
  std::printf("%-46s %10zu   paper Table 1\n", "v   CP-ABE policy attributes",
              p.abe_policy_attrs);
  std::printf("%-46s %9zubit   paper Table 1\n", "k   CP-ABE security param",
              p.abe_k_bits);
  std::printf("\npaper-measured operation costs (jPBC / cpabe toolkit):\n");
  std::printf("%-46s %10s\n", "enc_P", "~30ms");
  std::printf("%-46s %10s\n", "t_PBE", "30-38ms");
  std::printf("%-46s %10s\n", "enc_A", "~few ms");
  std::printf("%-46s %10s\n", "dec_A", "~12ms");
  std::printf("\n");

  const Measured test_scale = measure(pairing::Pairing::test_pairing(), 5);
  print_measured("(test scale: 80-bit r, 160-bit q)", test_scale);

  if (const char* skip = std::getenv("P3S_SKIP_PAPER_SCALE");
      skip == nullptr || skip[0] != '1') {
    std::printf("generating paper-scale (512-bit) pairing group...\n");
    const Measured paper_scale = measure(pairing::Pairing::paper_pairing(), 1);
    print_measured("(paper scale: 160-bit r, 512-bit q)", paper_scale);
  }

  std::printf(
      "Note: absolute costs differ from the paper's (different library,\n"
      "hardware, and era); the analytic models take these as inputs, so the\n"
      "figure reproductions feed whichever calibration is requested.\n");
  p3s::benchutil::emit_metrics("table1_params");
  return 0;
}
