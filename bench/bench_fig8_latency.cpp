// Figure 8 reproduction: end-to-end latency vs payload size at B = 10 Mbps.
//   8(a) absolute latency (baseline vs P3S),
//   8(b) latency relative to baseline (the paper's 10x target line).
// Columns also include the discrete-event simulation cross-check.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "model/analytic.hpp"
#include "model/flowsim.hpp"

using namespace p3s;  // NOLINT
using benchutil::human_bytes;

int main() {
  const model::ModelParams p = model::ModelParams::paper_defaults();

  std::printf("=== Fig. 8(a): End-to-end latency vs message size (B=10Mbps, N_s=%zu, f=%.0f%%) ===\n\n",
              p.n_subscribers, p.match_fraction * 100);
  std::printf("%10s  %12s  %12s  %12s  %12s  %8s\n", "payload", "baseline(s)",
              "p3s(s)", "sim-base(s)", "sim-p3s(s)", "p3s/base");
  std::printf("%10s  %12s  %12s  %12s  %12s  %8s\n", "-------", "-----------",
              "------", "-----------", "----------", "--------");

  std::vector<double> sizes;
  for (double c = 1024.0; c <= 100.0 * 1024 * 1024; c *= 2) sizes.push_back(c);

  bool within_10x_large = true;
  double crossover = -1;
  double prev_ratio = -1;
  for (double c : sizes) {
    const double base = model::baseline_latency(p, c).total();
    const double p3s = model::p3s_latency(p, c).total();
    const double sim_base = model::simulate_baseline_latency(p, c);
    const double sim_p3s = model::simulate_p3s_latency(p, c);
    const double ratio = p3s / base;
    std::printf("%10s  %12.3f  %12.3f  %12.3f  %12.3f  %7.2fx\n",
                human_bytes(c).c_str(), base, p3s, sim_base, sim_p3s, ratio);
    if (c >= 1024.0 * 1024 && ratio > 10.0) within_10x_large = false;
    if (prev_ratio > 10.0 && ratio <= 10.0 && crossover < 0) crossover = c;
    prev_ratio = ratio;
  }

  std::printf("\n=== Fig. 8(b): latency relative to baseline ===\n\n");
  std::printf("%10s  %10s   %s\n", "payload", "p3s/base", "(10x = paper target)");
  for (double c : sizes) {
    const double ratio = model::p3s_latency(p, c).total() /
                         model::baseline_latency(p, c).total();
    const int bars = static_cast<int>(ratio * 4);
    std::printf("%10s  %9.2fx   %.*s%s\n", human_bytes(c).c_str(), ratio,
                bars > 60 ? 60 : bars,
                "############################################################",
                ratio > 10.0 ? "  <-- exceeds 10x" : "");
  }

  std::printf("\nShape checks vs paper:\n");
  std::printf("  [%s] P3S within 10x of baseline for payloads >= 1MB\n",
              within_10x_large ? "ok" : "FAIL");
  const double r1k = model::p3s_latency(p, 1024).total() /
                     model::baseline_latency(p, 1024).total();
  std::printf("  [%s] small-payload threshold visible (ratio at 1KB = %.1fx > ratio at 64MB = %.1fx)\n",
              r1k > model::p3s_latency(p, 64.0 * 1024 * 1024).total() /
                        model::baseline_latency(p, 64.0 * 1024 * 1024).total()
                  ? "ok"
                  : "FAIL",
              r1k,
              model::p3s_latency(p, 64.0 * 1024 * 1024).total() /
                  model::baseline_latency(p, 64.0 * 1024 * 1024).total());
  if (crossover > 0) {
    std::printf("  [ok] 10x crossover near %s\n", human_bytes(crossover).c_str());
  }
  p3s::benchutil::emit_metrics("fig8_latency");
  return 0;
}
