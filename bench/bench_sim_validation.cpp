// Beyond the paper: validate the §6.2 closed-form models against the
// packet-level discrete-event simulation across the full parameter grid
// (payload size x match fraction x bandwidth). The paper only had the
// analytic models; this quantifies how tight they are.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "model/analytic.hpp"
#include "model/flowsim.hpp"

using namespace p3s;  // NOLINT
using benchutil::human_bytes;

int main() {
  std::printf("=== Analytic model vs discrete-event simulation (N_s=100) ===\n\n");
  std::printf("%10s %5s %8s | %10s %10s %6s | %10s %10s %6s\n", "payload", "f",
              "B(Mbps)", "lat-model", "lat-sim", "err", "thr-model", "thr-sim",
              "err");

  double worst_lat_err = 0, worst_thr_err = 0;
  for (const double mbps : {10.0, 100.0}) {
    for (const double f : {0.05, 0.5}) {
      for (double c : {1024.0, 65536.0, 1048576.0, 16777216.0}) {
        model::ModelParams p = model::ModelParams::paper_defaults();
        p.match_fraction = f;
        p.bandwidth_bps = mbps * 1e6;

        const double lat_model = model::p3s_latency(p, c).total();
        const double lat_sim = model::simulate_p3s_latency(p, c);
        const double lat_err = (lat_model - lat_sim) / lat_model;

        const double thr_model = model::p3s_throughput(p, c).total();
        const double thr_sim = model::simulate_p3s_throughput(p, c);
        const double thr_err = std::abs(thr_model - thr_sim) / thr_model;

        worst_lat_err = std::max(worst_lat_err, std::abs(lat_err));
        worst_thr_err = std::max(worst_thr_err, thr_err);

        std::printf("%10s %4.0f%% %8.0f | %9.3fs %9.3fs %5.1f%% | %10.4f %10.4f %5.1f%%\n",
                    human_bytes(c).c_str(), f * 100, mbps, lat_model, lat_sim,
                    lat_err * 100, thr_model, thr_sim, thr_err * 100);
      }
    }
  }

  std::printf("\nThe analytic latency model is a worst-case bound: sim <= model everywhere.\n");
  std::printf("Worst relative deviation: latency %.1f%%, throughput %.1f%%\n",
              worst_lat_err * 100, worst_thr_err * 100);
  std::printf("[%s] models within 35%% of packet-level simulation across the grid\n",
              worst_lat_err < 0.35 && worst_thr_err < 0.35 ? "ok" : "FAIL");
  p3s::benchutil::emit_metrics("sim_validation");
  return 0;
}
