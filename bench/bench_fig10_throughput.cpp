// Figure 10 reproduction: throughput at f = 50% — the match-rate ablation.
// "increasing the match rate benefits P3S ... if more subscribers match, the
// baseline loses its advantage."
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "model/analytic.hpp"
#include "model/flowsim.hpp"

using namespace p3s;  // NOLINT
using benchutil::human_bytes;

int main() {
  model::ModelParams p50 = model::ModelParams::paper_defaults();
  p50.match_fraction = 0.50;
  model::ModelParams p5 = model::ModelParams::paper_defaults();
  p5.match_fraction = 0.05;
  // Same P3S_THREADS knob as fig9: subscriber match parallelism.
  p50.sub_match_threads = benchutil::env_threads(p50.sub_match_threads);
  p5.sub_match_threads = p50.sub_match_threads;

  std::printf("=== Fig. 10: Throughput vs message size (f=50%%, B=10Mbps, N_s=%zu, w=%u) ===\n\n",
              p50.n_subscribers, p50.sub_match_threads);
  std::printf("%10s  %12s  %12s  %10s  |  %10s\n", "payload", "base(pub/s)",
              "p3s(pub/s)", "rel(f=50%)", "rel(f=5%)");
  std::printf("%10s  %12s  %12s  %10s  |  %10s\n", "-------", "-----------",
              "----------", "----------", "---------");

  std::vector<double> sizes;
  for (double c = 1024.0; c <= 100.0 * 1024 * 1024; c *= 4) sizes.push_back(c);

  bool f50_always_better = true;
  for (double c : sizes) {
    const double base50 = model::baseline_throughput(p50, c).total();
    const double p3s50 = model::p3s_throughput(p50, c).total();
    const double rel50 = p3s50 / base50;
    const double rel5 = model::p3s_throughput(p5, c).total() /
                        model::baseline_throughput(p5, c).total();
    std::printf("%10s  %12.4f  %12.4f  %9.4fx  |  %9.4fx\n",
                human_bytes(c).c_str(), base50, p3s50, rel50, rel5);
    if (rel50 < rel5 - 1e-9) f50_always_better = false;
  }

  // Where does each configuration cross the paper's 10x line? In the
  // DS-bound regime rel = c·f/P_E, so the crossover payload shrinks by the
  // same factor f grows: f=50% crosses at ~2KB, f=5% only at ~20KB.
  auto crossover = [](const model::ModelParams& p) {
    for (double c = 512.0; c <= 100.0 * 1024 * 1024; c *= 2) {
      if (model::p3s_throughput(p, c).total() /
              model::baseline_throughput(p, c).total() >=
          0.1) {
        return c;
      }
    }
    return -1.0;
  };
  const double cross50 = crossover(p50);
  const double cross5 = crossover(p5);
  std::printf("\nShape checks vs paper:\n");
  std::printf("  [%s] raising f from 5%% to 50%% improves P3S's relative throughput at every size\n",
              f50_always_better ? "ok" : "FAIL");
  std::printf("  [%s] 10x crossover moves from %s (f=5%%) down to %s (f=50%%): the baseline loses its advantage\n",
              cross50 > 0 && cross50 * 4 <= cross5 ? "ok" : "FAIL",
              human_bytes(cross5).c_str(), human_bytes(cross50).c_str());

  // Paper: "increasing the network bandwidth from 10 to 100 Mbps helps both
  // systems equally."
  model::ModelParams p100 = p50;
  p100.bandwidth_bps = 100e6;
  const double c = 4.0 * 1024 * 1024;
  const double gain_base = model::baseline_throughput(p100, c).total() /
                           model::baseline_throughput(p50, c).total();
  const double gain_p3s = model::p3s_throughput(p100, c).total() /
                          model::p3s_throughput(p50, c).total();
  std::printf("  [%s] 10->100 Mbps helps both equally (base x%.1f, p3s x%.1f)\n",
              std::abs(gain_base - gain_p3s) < 0.5 ? "ok" : "FAIL", gain_base,
              gain_p3s);
  // Privacy/throughput trade-off at the high match rate (DESIGN.md §11):
  // with f=50% the RS NIC carries most of the load, so padding+cover bite
  // hardest exactly where P3S was winning.
  model::ModelParams ph = p50;
  ph.anon_pad_overhead = 0.05;
  ph.anon_cover_fraction = 0.25;
  std::printf("\n=== Privacy/throughput trade-off at f=50%% (pad=%.0f%%, "
              "cover=%.0f%%) ===\n\n",
              ph.anon_pad_overhead * 100.0, ph.anon_cover_fraction * 100.0);
  std::printf("%10s  %12s  %12s  %8s\n", "payload", "plain(pub/s)",
              "hard(pub/s)", "cost");
  for (double sz : sizes) {
    const double plain = model::p3s_throughput(p50, sz).total();
    const double hard = model::p3s_throughput(ph, sz).total();
    std::printf("%10s  %12.4f  %12.4f  %7.1f%%\n", human_bytes(sz).c_str(),
                plain, hard, (1.0 - hard / plain) * 100.0);
  }
  p3s::benchutil::emit_metrics("fig10_throughput");
  return 0;
}
