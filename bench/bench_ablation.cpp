// Ablation studies for the design choices discussed in the paper:
//   1. hierarchical dissemination fan-out (§6.2 remedy for the small-payload
//      flatline),
//   2. token-revocation epochs (§6.1 mitigation) — the HVE cost of the extra
//      epoch attribute and of per-epoch token refresh,
//   3. metadata-space width — how P and P_E drive both crypto cost and the
//      DS broadcast bottleneck,
//   4. GUID super-encryption (footnote 1) — publish-side cost of closing the
//      GUID leak.
#include <cstdio>

#include "abe/policy.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "model/analytic.hpp"
#include "pairing/ecies.hpp"
#include "pbe/epoch.hpp"
#include "pbe/hve.hpp"
#include "pbe/schema.hpp"

using namespace p3s;  // NOLINT
using benchutil::human_bytes;
using benchutil::human_time;
using benchutil::time_op;

int main() {
  TestRng rng(0xab1a);
  const auto pp = pairing::Pairing::test_pairing();

  // --- 1. hierarchical dissemination ---------------------------------------
  std::printf("=== Ablation 1: hierarchical dissemination fan-out (1KB payload, f=5%%) ===\n\n");
  const model::ModelParams p = model::ModelParams::paper_defaults();
  const double c = 1024.0;
  std::printf("%8s  %14s  %16s  %14s\n", "fanout", "thr (pub/s)",
              "bottleneck", "fanout lat (s)");
  std::printf("%8s  %14.3f  %16s  %14.3f   (flat: paper architecture)\n", "-",
              model::p3s_throughput(p, c).total(),
              model::p3s_throughput(p, c).bottleneck(),
              model::p3s_latency(p, c).tp2);
  for (unsigned fanout : {2u, 5u, 10u, 20u, 50u}) {
    const auto thr = model::p3s_throughput_hierarchical(p, c, fanout);
    const auto lat = model::p3s_latency_hierarchical(p, c, fanout);
    std::printf("%8u  %14.3f  %16s  %14.3f\n", fanout, thr.total(),
                thr.bottleneck(), lat.tp2);
  }
  std::printf("\n");

  // --- 2. epoch overhead -----------------------------------------------------
  std::printf("=== Ablation 2: token-revocation epochs (HVE cost) ===\n\n");
  const auto base_schema = pbe::MetadataSchema::uniform(13, 8);  // 39-bit
  std::printf("%14s  %8s  %10s  %10s  %10s\n", "config", "width", "enc_P",
              "t_PBE", "P_E");
  for (const std::size_t n_epochs : {0u, 4u, 16u, 64u}) {
    pbe::MetadataSchema schema = base_schema;
    pbe::Metadata md;
    for (const auto& spec : base_schema.attributes()) md[spec.name] = "v0";
    pbe::Interest interest = {{"attr0", "v0"}, {"attr1", "v1"}};
    if (n_epochs > 0) {
      const pbe::EpochPolicy ep(n_epochs, 60.0);
      schema = ep.extend(base_schema);
      md = ep.stamp(md, 0.0);
      interest = ep.restrict(interest, 0.0);
    }
    const auto keys = pbe::hve_setup(pp, schema.width(), rng);
    const auto bits = schema.encode_metadata(md);
    const auto pattern = schema.encode_interest(interest);
    Bytes ct;
    const double enc = time_op(3, [&] {
      ct = pbe::hve_encrypt_bytes(keys.pk, bits, rng.bytes(16), rng);
    });
    const auto tok = pbe::hve_gen_token(keys, pattern, rng);
    const double match = time_op(3, [&] {
      (void)pbe::hve_query_bytes(*pp, tok, ct);
    });
    char label[32];
    if (n_epochs == 0) {
      std::snprintf(label, sizeof(label), "no epochs");
    } else {
      std::snprintf(label, sizeof(label), "%zu epochs", n_epochs);
    }
    std::printf("%14s  %8zu  %10s  %10s  %10s\n", label, schema.width(),
                human_time(enc).c_str(), human_time(match).c_str(),
                human_bytes(static_cast<double>(ct.size())).c_str());
  }
  std::printf("  -> revocation costs a few extra bits of vector width; the\n"
              "     match cost scales with the token's concrete positions.\n\n");

  // --- 3. metadata-space width ------------------------------------------------
  std::printf("=== Ablation 3: metadata-space width (P) vs cost and DS bottleneck ===\n\n");
  std::printf("%8s  %10s  %10s  %10s  %16s\n", "width", "enc_P", "t_PBE",
              "P_E", "ds-cap (pub/s)");
  for (const std::size_t attrs : {4u, 8u, 13u, 20u}) {
    const auto schema = pbe::MetadataSchema::uniform(attrs, 8);
    const auto keys = pbe::hve_setup(pp, schema.width(), rng);
    pbe::BitVector bits(schema.width());
    pbe::Pattern pattern(schema.width());
    for (std::size_t i = 0; i < schema.width(); ++i) {
      bits[i] = static_cast<std::uint8_t>(rng.uniform(2));
      pattern[i] = static_cast<std::int8_t>(bits[i]);
    }
    Bytes ct;
    const double enc = time_op(3, [&] {
      ct = pbe::hve_encrypt_bytes(keys.pk, bits, rng.bytes(16), rng);
    });
    const auto tok = pbe::hve_gen_token(keys, pattern, rng);
    const double match = time_op(3, [&] {
      (void)pbe::hve_query_bytes(*pp, tok, ct);
    });
    model::ModelParams mp = model::ModelParams::paper_defaults();
    mp.metadata_ct_bytes = static_cast<double>(ct.size());
    std::printf("%8zu  %10s  %10s  %10s  %16.3f\n", schema.width(),
                human_time(enc).c_str(), human_time(match).c_str(),
                human_bytes(static_cast<double>(ct.size())).c_str(),
                model::p3s_throughput(mp, 1024.0).r_ds);
  }
  std::printf("  -> vector width drives every PBE cost linearly AND shrinks the\n"
              "     DS broadcast capacity: the metadata space is THE P3S sizing knob.\n\n");

  // --- 4. GUID super-encryption -------------------------------------------------
  std::printf("=== Ablation 4: GUID super-encryption (footnote 1) ===\n\n");
  {
    const auto guid = rng.bytes(16);
    const auto kp = pairing::ecies_keygen(*pp, rng);
    const double wrap = time_op(10, [&] {
      (void)pairing::ecies_encrypt(*pp, kp.public_key, guid, rng);
    });
    Bytes blob = pairing::ecies_encrypt(*pp, kp.public_key, guid, rng);
    const double unwrap = time_op(10, [&] {
      (void)pairing::ecies_decrypt(*pp, kp.secret, blob);
    });
    std::printf("  publisher-side wrap: %s   RS-side unwrap: %s   size: 16B -> %s\n",
                human_time(wrap).c_str(), human_time(unwrap).c_str(),
                human_bytes(static_cast<double>(blob.size())).c_str());
    std::printf("  -> closing the eavesdropper GUID leak costs two ECIES ops per\n"
                "     publication — negligible next to enc_P/enc_A.\n");
  }
  p3s::benchutil::emit_metrics("ablation");
  return 0;
}
