// Prototype measurements (paper §6.2, first paragraph): run the REAL P3S
// stack and the REAL baseline broker in-process, with actual HVE/CP-ABE
// crypto, and measure wall-clock publish→deliver times and component
// operation counts — the "metrics collected by running the P3S prototype in
// various configurations" step that calibrates the analytic models.
#include <chrono>
#include <cstdio>

#include "abe/policy.hpp"
#include "bench_util.hpp"
#include "broker/baseline.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "p3s/system.hpp"

using namespace p3s;  // NOLINT
using benchutil::human_bytes;
using benchutil::human_time;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  TestRng rng(0xe2e);
  const auto schema = pbe::MetadataSchema::uniform(4, 4);  // 8-bit vectors

  std::printf("=== Prototype wall-clock measurements (real crypto, in-process transport) ===\n");
  std::printf("    schema: 4 attributes x 4 values (8-bit HVE vectors), test-scale pairing\n\n");

  for (const std::size_t n_subs : {4u, 16u}) {
    // --- P3S ---------------------------------------------------------------
    net::DirectNetwork net;
    core::P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = schema;
    core::P3sSystem system(net, config, rng);

    std::vector<std::unique_ptr<core::Subscriber>> subs;
    for (std::size_t i = 0; i < n_subs; ++i) {
      subs.push_back(system.make_subscriber("sub" + std::to_string(i),
                                            "pseud" + std::to_string(i),
                                            {"analyst"}, rng));
      // Half the subscribers match attr0=v0.
      subs.back()->subscribe(
          {{"attr0", i % 2 == 0 ? "v0" : "v1"}});
    }
    auto pub = system.make_publisher("pub", "press", rng);

    const Bytes payload = rng.bytes(1024);
    const pbe::Metadata md = {
        {"attr0", "v0"}, {"attr1", "v1"}, {"attr2", "v2"}, {"attr3", "v3"}};
    const auto policy = abe::parse_policy("analyst");

    const int reps = 5;
    const double t0 = now_s();
    for (int r = 0; r < reps; ++r) pub->publish(md, payload, policy);
    const double p3s_time = (now_s() - t0) / reps;

    std::size_t delivered = 0;
    for (const auto& s : subs) delivered += s->deliveries().size();

    // --- baseline ------------------------------------------------------------
    net::DirectNetwork bnet;
    broker::BaselineBroker broker(bnet, "broker");
    std::vector<std::unique_ptr<broker::BaselineSubscriber>> bsubs;
    for (std::size_t i = 0; i < n_subs; ++i) {
      bsubs.push_back(std::make_unique<broker::BaselineSubscriber>(
          bnet, "sub" + std::to_string(i), "broker"));
      bsubs[i]->subscribe({{"attr0", i % 2 == 0 ? "v0" : "v1"}});
    }
    broker::BaselinePublisher bpub(bnet, "pub", "broker");
    const double t1 = now_s();
    for (int r = 0; r < reps; ++r) bpub.publish(md, payload);
    const double base_time = (now_s() - t1) / reps;

    std::printf("N_s=%-3zu  p3s publish->deliver(all): %-10s baseline: %-10s overhead: %.0fx\n",
                n_subs, human_time(p3s_time).c_str(),
                human_time(base_time).c_str(), p3s_time / base_time);
    std::printf("         deliveries/pub: %.1f (expected %.1f); ds bytes/pub: %s; matches at subscribers: %zu\n",
                static_cast<double>(delivered) / reps,
                static_cast<double>((n_subs + 1) / 2),
                human_bytes(static_cast<double>(net.bytes_sent_by("ds")) / reps)
                    .c_str(),
                [&] {
                  std::size_t m = 0;
                  for (const auto& s : subs) m += s->match_count();
                  return m;
                }() / reps);
  }

  std::printf(
      "\nNote: in-process overhead is crypto-dominated (no real network);\n"
      "the §6.2 models add network latency/bandwidth on top of these costs.\n");
  p3s::benchutil::emit_metrics("e2e_prototype");
  return 0;
}
