// §6.1 / Fig. 5 reproduction: run the gadget analysis for every participant
// class and print the visibility matrix the paper gives in prose
// ("Summary of non-3rd / 3rd party participant's visibility").
#include <cstdio>

#include "gadget/gadget.hpp"

#include "bench_util.hpp"

using namespace p3s::gadget;  // NOLINT

namespace {

void report(const Gadget& g, const char* participant, const Knowledge& k,
            std::initializer_list<const char*> targets) {
  std::printf("%-28s", participant);
  for (const char* t : targets) {
    std::printf(" %10s", g.derivable(k.nodes(), t) ? "DERIVES" : "-");
  }
  const auto exposed = g.exposed_sensitive(k.nodes());
  std::printf("   exposed:{");
  for (std::size_t i = 0; i < exposed.size(); ++i) {
    std::printf("%s%s", i ? "," : "", exposed[i].c_str());
  }
  std::printf("}\n");
}

}  // namespace

int main() {
  std::printf("=== PBE gadget (paper Fig. 5) — derivation analysis ===\n\n");
  const Gadget pbe = make_pbe_gadget();
  std::printf("%-28s %10s %10s %10s %10s\n", "participant (knowledge)", "m",
              "x", "y", "a_sid_y");
  std::printf("%-28s %10s %10s %10s %10s\n", "-----------------------", "-",
              "-", "-", "-------");

  Knowledge hbc_sub;
  hbc_sub.sees_all(pbe, {"pk_pbe", "ct_pbe", "t_y", "y"});
  report(pbe, "HBC subscriber (own token)", hbc_sub, {"m", "x", "a_sid_y"});

  Knowledge hbc_nonmatch;
  hbc_nonmatch.sees_all(pbe, {"pk_pbe", "ct_pbe"});
  report(pbe, "HBC subscriber (no token)", hbc_nonmatch, {"m", "x", "a_sid_y"});

  Knowledge ds;
  ds.sees_all(pbe, {"ct_pbe", "pk_pbe"});
  report(pbe, "HBC DS", ds, {"m", "x", "y"});

  Knowledge ts;
  ts.sees_all(pbe, {"y", "sk_pbe", "pk_pbe"});
  report(pbe, "HBC PBE-TS (with anon)", ts, {"m", "x", "a_sid_y"});

  Knowledge ts_noanon = ts;
  ts_noanon.sees(pbe, "sid");
  report(pbe, "PBE-TS without anonymizer", ts_noanon, {"m", "x", "a_sid_y"});

  Knowledge malicious;
  malicious.sees_all(pbe, {"t_y", "pk_pbe", "X", "ct_pbe"});
  report(pbe, "malicious (stolen token)", malicious, {"m", "x", "y"});

  Knowledge hoarder;
  hoarder.sees_all(pbe, {"ct_pbe", "T_Y", "Y"});
  report(pbe, "token hoarder", hoarder, {"m", "x", "y"});

  std::printf("\nPaper's threats reproduced:\n");
  std::printf("  [%s] token probing reveals subscriber interest y (orange edges)\n",
              pbe.derivable(malicious.nodes(), "y") ? "ok" : "FAIL");
  std::printf("  [%s] exhaustive token set reveals metadata x\n",
              pbe.derivable(hoarder.nodes(), "x") ? "ok" : "FAIL");
  std::printf("  [%s] HBC DS derives nothing sensitive\n",
              pbe.exposed_sensitive(ds.nodes()).empty() ? "ok" : "FAIL");
  std::printf("  [%s] anonymizer blocks predicate-to-identity binding at PBE-TS\n",
              !pbe.derivable(ts.nodes(), "a_sid_y") &&
                      pbe.derivable(ts_noanon.nodes(), "a_sid_y")
                  ? "ok"
                  : "FAIL");

  std::printf("\n=== CP-ABE gadget ===\n\n");
  const Gadget cg = make_cpabe_gadget();
  std::printf("%-28s %10s %10s\n", "participant", "m_A", "policy");
  Knowledge rs;
  rs.sees_all(cg, {"ct_abe", "pk_abe"});
  report(cg, "HBC RS", rs, {"m_A", "policy"});
  Knowledge authorized;
  authorized.sees_all(cg, {"ct_abe", "sk_S", "S_satisfies_policy"});
  report(cg, "authorized subscriber", authorized, {"m_A", "policy"});
  Knowledge unauthorized;
  unauthorized.sees_all(cg, {"ct_abe", "sk_S"});
  report(cg, "unauthorized subscriber", unauthorized, {"m_A", "policy"});

  std::printf("\n  [%s] CP-ABE policy is public, payload only with satisfying key\n",
              cg.derivable(rs.nodes(), "policy") &&
                      !cg.derivable(rs.nodes(), "m_A") &&
                      cg.derivable(authorized.nodes(), "m_A") &&
                      !cg.derivable(unauthorized.nodes(), "m_A")
                  ? "ok"
                  : "FAIL");
  p3s::benchutil::emit_metrics("privacy_analysis");
  return 0;
}
