// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include "obs/export.hpp"

namespace p3s::benchutil {

/// Standard bench epilogue: print the metrics snapshot as aligned text and
/// write the JSON form to BENCH_<name>.json (in $P3S_BENCH_JSON_DIR when
/// set, else the working directory) for trajectory tooling. Set
/// P3S_BENCH_JSON=0 to skip the file. See OBSERVABILITY.md for the schema.
inline void emit_metrics(const std::string& name) {
  obs::Registry& reg = obs::Registry::global();
  std::printf("\n=== metrics snapshot (OBSERVABILITY.md) ===\n%s",
              obs::render_text(reg).c_str());
  const char* flag = std::getenv("P3S_BENCH_JSON");
  if (flag != nullptr && std::string(flag) == "0") return;
  const char* dir = std::getenv("P3S_BENCH_JSON_DIR");
  const std::string path =
      (dir != nullptr ? std::string(dir) + "/" : std::string()) + "BENCH_" +
      name + ".json";
  try {
    obs::write_json_file(reg, path);
    std::printf("[metrics json -> %s]\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metrics json not written: %s\n", e.what());
  }
}

/// The P3S_THREADS override (same variable the exec::Pool honours), or
/// `fallback` when unset/invalid. The figure benches feed this into the
/// model's subscriber-match thread count so a thread-scaling sweep on real
/// hardware and the analytic model use one knob.
inline unsigned env_threads(unsigned fallback) {
  const char* env = std::getenv("P3S_THREADS");
  if (env == nullptr) return fallback;
  const long v = std::strtol(env, nullptr, 10);
  if (v < 1 || v > 256) return fallback;
  return static_cast<unsigned>(v);
}

/// Wall-clock seconds for `iters` runs of `fn`, averaged.
inline double time_op(int iters, const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() /
         static_cast<double>(iters);
}

inline std::string human_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0fMB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0fKB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  }
  return buf;
}

inline std::string human_time(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  }
  return buf;
}

}  // namespace p3s::benchutil
