// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace p3s::benchutil {

/// Wall-clock seconds for `iters` runs of `fn`, averaged.
inline double time_op(int iters, const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count() /
         static_cast<double>(iters);
}

inline std::string human_bytes(double bytes) {
  char buf[32];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0fMB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.0fKB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  }
  return buf;
}

inline std::string human_time(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  }
  return buf;
}

}  // namespace p3s::benchutil
