// Google-benchmark microbenchmarks for every cryptographic primitive in the
// stack — the measurements that parameterize the §6.2 models (enc_P, t_PBE,
// enc_A, dec_A) plus the substrate operations underneath them.
#include <benchmark/benchmark.h>

#include "abe/cpabe.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/aead.hpp"
#include "crypto/sha256.hpp"
#include "pairing/ecies.hpp"
#include "pairing/pairing.hpp"
#include "pairing/schnorr.hpp"
#include "pbe/hve.hpp"

#include "bench_util.hpp"

namespace {

using namespace p3s;  // NOLINT

pairing::PairingPtr pp() { return pairing::Pairing::test_pairing(); }

void BM_Sha256_1KB(benchmark::State& state) {
  TestRng rng(1);
  const Bytes data = rng.bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KB);

void BM_AeadSeal_1KB(benchmark::State& state) {
  TestRng rng(2);
  const Bytes key = rng.bytes(32);
  const Bytes data = rng.bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::aead_encrypt(key, data, {}, rng));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_AeadSeal_1KB);

void BM_G1_ScalarMul(benchmark::State& state) {
  TestRng rng(3);
  const auto p = pp();
  const auto pt = p->random_g1(rng);
  const auto k = p->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p->mul(pt, k));
  }
}
BENCHMARK(BM_G1_ScalarMul);

void BM_G1_ScalarMul_Reference(benchmark::State& state) {
  TestRng rng(3);
  const auto p = pp();
  const auto pt = p->random_g1(rng);
  const auto k = p->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::point_mul(pt, k, p->q()));
  }
}
BENCHMARK(BM_G1_ScalarMul_Reference);

void BM_G1_ScalarMul_FixedBase(benchmark::State& state) {
  TestRng rng(3);
  const auto p = pp();
  const pairing::FixedBaseTable table(p->mont_q(), p->random_g1(rng),
                                      p->r().bit_length());
  const auto k = p->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.mul(k));
  }
}
BENCHMARK(BM_G1_ScalarMul_FixedBase);

void BM_Pairing(benchmark::State& state) {
  TestRng rng(4);
  const auto p = pp();
  const auto a = p->random_g1(rng);
  const auto b = p->random_g1(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p->pair(a, b));
  }
}
BENCHMARK(BM_Pairing);

void BM_Pairing_Reference(benchmark::State& state) {
  TestRng rng(4);
  const auto p = pp();
  const auto a = p->random_g1(rng);
  const auto b = p->random_g1(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p->pair_reference(a, b));
  }
}
BENCHMARK(BM_Pairing_Reference);

void BM_PairProduct(benchmark::State& state) {
  TestRng rng(4);
  const auto p = pp();
  std::vector<pairing::PairTerm> terms;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    terms.push_back({p->random_g1(rng), p->random_g1(rng)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(p->pair_product(terms));
  }
  // Per-pairing cost: divide by the term count when comparing to BM_Pairing.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PairProduct)->Arg(2)->Arg(8)->Arg(21)->Arg(80);

void BM_GtPow(benchmark::State& state) {
  TestRng rng(4);
  const auto p = pp();
  const auto a = p->random_gt(rng);
  const auto e = p->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(p->gt_pow(a, e));
  }
}
BENCHMARK(BM_GtPow);

void BM_GtPow_FixedBase(benchmark::State& state) {
  TestRng rng(4);
  const auto p = pp();
  const auto e = p->random_scalar(rng);
  for (auto _ : state) {
    // The GT generator hits the Pairing-owned e(g,g) table.
    benchmark::DoNotOptimize(p->gt_pow(p->gt_generator(), e));
  }
}
BENCHMARK(BM_GtPow_FixedBase);

void BM_HashToG1(benchmark::State& state) {
  const auto p = pp();
  std::uint64_t i = 0;
  for (auto _ : state) {
    Writer w;
    w.u64(i++);
    benchmark::DoNotOptimize(p->hash_to_g1(w.data()));
  }
}
BENCHMARK(BM_HashToG1);

void BM_Ecies_Encrypt(benchmark::State& state) {
  TestRng rng(5);
  const auto p = pp();
  const auto kp = pairing::ecies_keygen(*p, rng);
  const Bytes msg = rng.bytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::ecies_encrypt(*p, kp.public_key, msg, rng));
  }
}
BENCHMARK(BM_Ecies_Encrypt);

void BM_Schnorr_Sign(benchmark::State& state) {
  TestRng rng(6);
  const auto p = pp();
  const auto kp = pairing::schnorr_keygen(*p, rng);
  const Bytes msg = rng.bytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pairing::schnorr_sign(*p, kp.secret, msg, rng));
  }
}
BENCHMARK(BM_Schnorr_Sign);

// --- HVE: enc_P and t_PBE as a function of vector width -------------------------

void BM_Hve_Encrypt(benchmark::State& state) {
  TestRng rng(7);
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const auto keys = pbe::hve_setup(pp(), width, rng);
  pbe::BitVector x(width);
  for (auto& b : x) b = static_cast<std::uint8_t>(rng.uniform(2));
  const Bytes guid = rng.bytes(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbe::hve_encrypt_bytes(keys.pk, x, guid, rng));
  }
}
BENCHMARK(BM_Hve_Encrypt)->Arg(8)->Arg(20)->Arg(40);

void BM_Hve_Encrypt_Precomp(benchmark::State& state) {
  TestRng rng(7);
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const auto keys = pbe::hve_setup(pp(), width, rng);
  const pbe::HvePrecomp pre = pbe::hve_precompute(keys.pk);
  pbe::BitVector x(width);
  for (auto& b : x) b = static_cast<std::uint8_t>(rng.uniform(2));
  const auto m = keys.pk.pairing->random_gt(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbe::hve_encrypt(keys.pk, x, m, rng, &pre));
  }
}
BENCHMARK(BM_Hve_Encrypt_Precomp)->Arg(8)->Arg(20)->Arg(40);

void BM_Hve_Match(benchmark::State& state) {
  TestRng rng(8);
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const auto keys = pbe::hve_setup(pp(), width, rng);
  pbe::BitVector x(width);
  pbe::Pattern w(width);
  for (std::size_t i = 0; i < width; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    w[i] = static_cast<std::int8_t>(x[i]);  // full-width match: worst case
  }
  const Bytes ct = pbe::hve_encrypt_bytes(keys.pk, x, rng.bytes(16), rng);
  const auto tok = pbe::hve_gen_token(keys, w, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbe::hve_query_bytes(*keys.pk.pairing, tok, ct));
  }
}
BENCHMARK(BM_Hve_Match)->Arg(8)->Arg(20)->Arg(40);

// Multi-token matching: a subscriber holding T tokens evaluates one
// broadcast. The sequential baseline runs the full per-token hve_query
// (every token re-derives the Miller-loop state from the ciphertext); the
// batch path prepares the ciphertext-side state once (hve_match_prepare)
// and shares it across all tokens (hve_match_any), optionally spreading the
// per-token evaluations over the global pool (P3S_THREADS).
struct HveMatchFixture {
  pairing::PairingPtr p = pp();
  pbe::HveKeys keys;
  Bytes ct;
  std::vector<pbe::HveToken> tokens;
  std::vector<const pbe::HveToken*> token_ptrs;

  HveMatchFixture(std::size_t width, std::size_t n_tokens) {
    TestRng rng(13);
    keys = pbe::hve_setup(p, width, rng);
    pbe::BitVector x(width);
    for (auto& b : x) b = static_cast<std::uint8_t>(rng.uniform(2));
    ct = pbe::hve_encrypt_bytes(keys.pk, x, rng.bytes(16), rng);
    for (std::size_t t = 0; t < n_tokens; ++t) {
      // Sparse predicates (6 fixed positions), all deliberately mismatched:
      // no early out, every token pays full evaluation — the worst case.
      pbe::Pattern w(width, pbe::kWildcard);
      for (std::size_t i = 0; i < 6; ++i) {
        const std::size_t pos = (t * 7 + i * 5) % width;
        w[pos] = static_cast<std::int8_t>(1 - x[pos]);
      }
      tokens.push_back(pbe::hve_gen_token(keys, w, rng));
    }
    for (const auto& tok : tokens) token_ptrs.push_back(&tok);
  }
};

void BM_Hve_MatchAny_Sequential(benchmark::State& state) {
  const HveMatchFixture fx(40, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& tok : fx.tokens) {
      benchmark::DoNotOptimize(pbe::hve_query_bytes(*fx.p, tok, fx.ct));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Hve_MatchAny_Sequential)->Arg(4)->Arg(16);

void BM_Hve_MatchAny(benchmark::State& state) {
  const HveMatchFixture fx(40, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const pbe::HveMatchCt prepared = pbe::hve_match_prepare(*fx.p, fx.ct);
    benchmark::DoNotOptimize(
        pbe::hve_match_any(*fx.p, fx.token_ptrs, prepared));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Hve_MatchAny)->Arg(4)->Arg(16);

void BM_Hve_MatchPrepare(benchmark::State& state) {
  const HveMatchFixture fx(40, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbe::hve_match_prepare(*fx.p, fx.ct));
  }
}
BENCHMARK(BM_Hve_MatchPrepare);

void BM_Hve_GenToken(benchmark::State& state) {
  TestRng rng(9);
  const std::size_t width = 40;
  const auto keys = pbe::hve_setup(pp(), width, rng);
  pbe::Pattern w(width, pbe::kWildcard);
  for (std::size_t i = 0; i < 6; ++i) w[i] = 1;  // typical sparse predicate
  for (auto _ : state) {
    benchmark::DoNotOptimize(pbe::hve_gen_token(keys, w, rng));
  }
}
BENCHMARK(BM_Hve_GenToken);

// --- CP-ABE: enc_A and dec_A as a function of policy size -------------------------

abe::PolicyNode and_policy(int v) {
  std::vector<abe::PolicyNode> leaves;
  for (int i = 0; i < v; ++i) {
    leaves.push_back(abe::PolicyNode::leaf("attr" + std::to_string(i)));
  }
  return abe::PolicyNode::threshold(static_cast<unsigned>(v), std::move(leaves));
}

void BM_Cpabe_Encrypt(benchmark::State& state) {
  TestRng rng(10);
  const auto keys = abe::cpabe_setup(pp(), rng);
  const auto policy = and_policy(static_cast<int>(state.range(0)));
  const Bytes payload = rng.bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        abe::cpabe_encrypt_bytes(keys.pk, payload, policy, rng));
  }
}
BENCHMARK(BM_Cpabe_Encrypt)->Arg(2)->Arg(5)->Arg(10);

void BM_Cpabe_Decrypt(benchmark::State& state) {
  TestRng rng(11);
  const auto keys = abe::cpabe_setup(pp(), rng);
  const int v = static_cast<int>(state.range(0));
  const auto policy = and_policy(v);
  std::set<std::string> attrs;
  for (int i = 0; i < v; ++i) attrs.insert("attr" + std::to_string(i));
  const auto sk = abe::cpabe_keygen(keys, attrs, rng);
  const Bytes ct = abe::cpabe_encrypt_bytes(keys.pk, rng.bytes(1024), policy, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::cpabe_decrypt_bytes(keys.pk, sk, ct));
  }
}
BENCHMARK(BM_Cpabe_Decrypt)->Arg(2)->Arg(5)->Arg(10);

void BM_Cpabe_Decrypt_Reference(benchmark::State& state) {
  TestRng rng(11);
  const auto keys = abe::cpabe_setup(pp(), rng);
  const int v = static_cast<int>(state.range(0));
  const auto policy = and_policy(v);
  std::set<std::string> attrs;
  for (int i = 0; i < v; ++i) attrs.insert("attr" + std::to_string(i));
  const auto sk = abe::cpabe_keygen(keys, attrs, rng);
  const auto m = keys.pk.pairing->random_gt(rng);
  const auto ct = abe::cpabe_encrypt(keys.pk, m, policy, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::cpabe_decrypt_reference(keys.pk, sk, ct));
  }
}
BENCHMARK(BM_Cpabe_Decrypt_Reference)->Arg(10);

void BM_Cpabe_KeyGen(benchmark::State& state) {
  TestRng rng(12);
  const auto keys = abe::cpabe_setup(pp(), rng);
  std::set<std::string> attrs;
  for (int i = 0; i < 10; ++i) attrs.insert("attr" + std::to_string(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(abe::cpabe_keygen(keys, attrs, rng));
  }
}
BENCHMARK(BM_Cpabe_KeyGen);

}  // namespace

// Expanded BENCHMARK_MAIN() with the standard metrics epilogue. The pairing
// stack now carries whole-primitive instrumentation (the p3s.crypto.* group),
// so the epilogue's JSON snapshot doubles as a latency record for the fast
// paths exercised above — scripts/perf_smoke.sh diffs two of these snapshots
// to flag regressions.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  p3s::benchutil::emit_metrics("crypto_micro");
  return 0;
}
