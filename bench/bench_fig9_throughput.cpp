// Figure 9 reproduction: throughput vs payload size at f = 5%.
//   9(a) absolute throughput (baseline vs P3S) with bottleneck attribution,
//   9(b) throughput relative to baseline.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "model/analytic.hpp"
#include "model/flowsim.hpp"

using namespace p3s;  // NOLINT
using benchutil::human_bytes;

int main() {
  model::ModelParams p = model::ModelParams::paper_defaults();
  p.match_fraction = 0.05;
  // P3S_THREADS (the exec::Pool knob) drives the modelled subscriber match
  // parallelism, so the figure can be regenerated for a thread sweep.
  p.sub_match_threads = benchutil::env_threads(p.sub_match_threads);

  std::printf("=== Fig. 9(a): Throughput vs message size (f=5%%, B=10Mbps, N_s=%zu, w=%u) ===\n\n",
              p.n_subscribers, p.sub_match_threads);
  std::printf("%10s  %12s  %12s  %14s  %12s  %12s\n", "payload", "base(pub/s)",
              "p3s(pub/s)", "p3s bottleneck", "sim-base", "sim-p3s");
  std::printf("%10s  %12s  %12s  %14s  %12s  %12s\n", "-------", "-----------",
              "----------", "--------------", "--------", "-------");

  std::vector<double> sizes;
  for (double c = 1024.0; c <= 100.0 * 1024 * 1024; c *= 4) sizes.push_back(c);

  for (double c : sizes) {
    const auto base = model::baseline_throughput(p, c);
    const auto p3s = model::p3s_throughput(p, c);
    const double sim_base = model::simulate_baseline_throughput(p, c);
    const double sim_p3s = model::simulate_p3s_throughput(p, c);
    std::printf("%10s  %12.4f  %12.4f  %14s  %12.4f  %12.4f\n",
                human_bytes(c).c_str(), base.total(), p3s.total(),
                p3s.bottleneck(), sim_base, sim_p3s);
  }

  std::printf("\n=== Fig. 9(b): throughput relative to baseline (f=5%%) ===\n\n");
  std::printf("%10s  %10s\n", "payload", "p3s/base");
  for (double c : sizes) {
    const double rel = model::p3s_throughput(p, c).total() /
                       model::baseline_throughput(p, c).total();
    std::printf("%10s  %9.4fx%s\n", human_bytes(c).c_str(), rel,
                rel < 0.1 ? "  <-- worse than 10x (paper: small payloads, low f)"
                          : "");
  }
  // "Flat" means P3S's ABSOLUTE throughput is payload-independent while the
  // DS broadcast is the bottleneck.
  const bool flat_small =
      std::abs(model::p3s_throughput(p, 1024.0).total() -
               model::p3s_throughput(p, 16.0 * 1024).total()) <
      0.01 * model::p3s_throughput(p, 1024.0).total();

  std::printf("\nShape checks vs paper:\n");
  const double rel_small = model::p3s_throughput(p, 1024).total() /
                           model::baseline_throughput(p, 1024).total();
  const double rel_large =
      model::p3s_throughput(p, 16.0 * 1024 * 1024).total() /
      model::baseline_throughput(p, 16.0 * 1024 * 1024).total();
  std::printf("  [%s] P3S flattens at the DS broadcast rate for small payloads\n",
              flat_small ? "ok" : "FAIL");
  std::printf("  [%s] small payloads at f=5%% are the losing regime (rel=%.4f < 0.1)\n",
              rel_small < 0.1 ? "ok" : "FAIL", rel_small);
  std::printf("  [%s] large payloads match the baseline almost exactly (rel=%.3f ~ 1)\n",
              rel_large > 0.9 && rel_large < 1.1 ? "ok" : "FAIL", rel_large);

  // Thread-scaling sweep: P3S throughput at 1KB as the subscriber match
  // parallelism w grows. At the paper's 10Mbps the DS NIC binds and threads
  // cannot help, so the sweep runs at 1Gbps where PBE matching is the
  // bottleneck; the curve climbs with w until another resource binds.
  std::printf("\n=== Thread scaling (payload=1KB, f=5%%, B=1Gbps) ===\n\n");
  std::printf("%8s  %12s  %14s\n", "threads", "p3s(pub/s)", "bottleneck");
  for (unsigned w : {1u, 2u, 4u, 8u, 16u}) {
    model::ModelParams pw = p;
    pw.bandwidth_bps = 1e9;
    pw.sub_match_threads = w;
    const auto tp = model::p3s_throughput(pw, 1024.0);
    std::printf("%8u  %12.4f  %14s\n", w, tp.total(), tp.bottleneck());
  }
  // Privacy/throughput trade-off (DESIGN.md §11): the same curve with the
  // anonymizer/DS hardening on — bucketed padding (~half a 1KB bucket dead
  // per ~10KB metadata frame) and one cover frame per four genuine ones.
  model::ModelParams ph = p;
  ph.anon_pad_overhead = 0.05;
  ph.anon_cover_fraction = 0.25;
  std::printf("\n=== Privacy/throughput trade-off: hardening off vs on "
              "(pad=%.0f%%, cover=%.0f%%) ===\n\n",
              ph.anon_pad_overhead * 100.0, ph.anon_cover_fraction * 100.0);
  std::printf("%10s  %12s  %12s  %8s\n", "payload", "plain(pub/s)",
              "hard(pub/s)", "cost");
  for (double c : sizes) {
    const double plain = model::p3s_throughput(p, c).total();
    const double hard = model::p3s_throughput(ph, c).total();
    std::printf("%10s  %12.4f  %12.4f  %7.1f%%\n", human_bytes(c).c_str(),
                plain, hard, (1.0 - hard / plain) * 100.0);
  }
  p3s::benchutil::emit_metrics("fig9_throughput");
  return 0;
}
