// Adversarial-suite bench (DESIGN.md §11): runs each attack scenario from
// src/attack end to end in both modes and reports (a) the measured adversary
// advantage against its leak budget and (b) what the hardening costs — wall
// time per publish round and wire bytes, vulnerable baseline vs hardened.
// Epilogue: BENCH_attack.json with the p3s.attack.* / p3s.anon.* counters.
#include <cstdio>
#include <string>

#include "attack/attacks.hpp"
#include "attack/scenario.hpp"
#include "bench_util.hpp"

using namespace p3s;  // NOLINT

namespace {

struct RunResult {
  double seconds = 0.0;       // wall time for the publish rounds + drain
  std::size_t publishes = 0;  // genuine publications pushed through
  std::size_t wire_frames = 0;
  std::size_t wire_bytes = 0;
  attack::AttackReport report;
};

RunResult run_frequency(bool hardened, std::uint64_t seed, int rounds) {
  attack::ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.hardened = hardened;
  cfg.subs_per_topic = 3;
  attack::AttackScenario sc(cfg);
  if (!sc.settle()) throw std::runtime_error("scenario failed to settle");
  const std::size_t frames_before = sc.net().traffic().size();
  RunResult out;
  out.seconds = benchutil::time_op(1, [&] {
    for (int round = 0; round < rounds; ++round) {
      sc.publish("finance");
      sc.publish("tech");
    }
    sc.drain();
  });
  out.publishes = static_cast<std::size_t>(rounds) * 2;
  const attack::EavesdropperObserver obs = sc.observer();
  for (std::size_t i = frames_before; i < obs.sightings().size(); ++i) {
    ++out.wire_frames;
    out.wire_bytes += obs.sightings()[i].size;
  }
  out.report = attack::frequency_attack(
      obs, sc.schedule(), sc.truth(), sc.system().directory().anonymizer_name,
      attack::AttackScenario::topics(), 0.25);
  attack::emit_attack_metrics(out.report, obs.sightings().size());
  return out;
}

void print_row(const char* mode, const RunResult& r) {
  std::printf("%10s  %10.3f  %12.1f  %10zu  %12s  %9.3f\n", mode, r.seconds,
              static_cast<double>(r.publishes) / r.seconds, r.wire_frames,
              benchutil::human_bytes(static_cast<double>(r.wire_bytes)).c_str(),
              r.report.advantage);
}

}  // namespace

int main() {
  constexpr int kRounds = 6;
  std::printf("=== Adversarial suite: hardening cost vs adversary advantage "
              "(frequency attack, %d rounds x 2 topics) ===\n\n",
              kRounds);
  std::printf("%10s  %10s  %12s  %10s  %12s  %9s\n", "mode", "wall(s)",
              "pub/s", "frames", "wire", "advantage");
  std::printf("%10s  %10s  %12s  %10s  %12s  %9s\n", "----", "-------",
              "-----", "------", "----", "---------");
  const RunResult plain = run_frequency(/*hardened=*/false, 1, kRounds);
  print_row("vulnerable", plain);
  const RunResult hard = run_frequency(/*hardened=*/true, 1, kRounds);
  print_row("hardened", hard);

  std::printf("\nTrade-off: hardening costs %.1f%% wire bytes and %.2fx wall "
              "time, and buys advantage %.3f -> %.3f (budget %.2f).\n",
              (static_cast<double>(hard.wire_bytes) /
                   static_cast<double>(plain.wire_bytes) -
               1.0) *
                  100.0,
              hard.seconds / plain.seconds, plain.report.advantage,
              hard.report.advantage, hard.report.budget);
  const bool landed = plain.report.advantage > plain.report.budget;
  const bool contained = hard.report.advantage <= hard.report.budget;
  std::printf("  [%s] vulnerable baseline exceeds the leak budget\n",
              landed ? "ok" : "FAIL");
  std::printf("  [%s] hardened run stays within the leak budget\n",
              contained ? "ok" : "FAIL");

  benchutil::emit_metrics("attack");
  return landed && contained ? 0 : 1;
}
