// Workload sensitivity (extends the paper's fixed f = 5%/50% points):
// generate skewed subscriber populations, measure the REALIZED match rate f,
// and feed it through the §6.2 models — showing where realistic workloads
// land between the paper's two operating points.
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "model/analytic.hpp"
#include "model/workload.hpp"

using namespace p3s;  // NOLINT

int main() {
  TestRng rng(0x301c);
  const auto schema = pbe::MetadataSchema::uniform(13, 8);  // paper's 40-bit

  std::printf("=== Workload-driven match rates -> model throughput (64KB payloads) ===\n\n");
  std::printf("%8s %10s | %10s | %12s %12s %10s\n", "zipf s", "wildcard%",
              "realized f", "base(pub/s)", "p3s(pub/s)", "p3s/base");

  for (const double zipf : {0.0, 0.8, 1.2}) {
    for (const double wc : {0.3, 0.6, 0.9}) {
      model::WorkloadConfig config;
      config.zipf_s = zipf;
      config.wildcard_prob = wc;
      const model::WorkloadGenerator gen(schema, config);
      const double f = gen.estimate_match_rate(rng, 100, 60);

      model::ModelParams p = model::ModelParams::paper_defaults();
      p.match_fraction = std::max(f, 1e-4);
      const double c = 64.0 * 1024;
      const double base = model::baseline_throughput(p, c).total();
      const double p3s = model::p3s_throughput(p, c).total();
      std::printf("%8.1f %9.0f%% | %9.4f%% | %12.3f %12.3f %9.3fx\n", zipf,
                  wc * 100, f * 100, base, p3s, p3s / base);
    }
  }
  std::printf(
      "\n-> the paper's f=5%% and f=50%% bracket realistic workloads: broad\n"
      "   (wildcard-heavy) interests push f up and P3S toward parity; narrow\n"
      "   interests recreate the small-f regime where the baseline's\n"
      "   selective dissemination wins.\n");
  p3s::benchutil::emit_metrics("workload");
  return 0;
}
