// Network registration (paper Fig. 2): credential serialization round-trips
// and the ARA request/response protocol, including roster enforcement and
// end-to-end operation with remotely-registered clients.
#include <gtest/gtest.h>

#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "p3s/registration.hpp"
#include "p3s/system.hpp"

namespace p3s::core {
namespace {

pbe::MetadataSchema schema2() {
  return pbe::MetadataSchema({{"topic", {"a", "b"}}, {"tier", {"x", "y"}}});
}

class RegistrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = schema2();
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
    ara_server_ =
        std::make_unique<AraServer>(net_, "ara", system_->ara(), rng_);
  }

  net::DirectNetwork net_;
  TestRng rng_{0xa5a};
  std::unique_ptr<P3sSystem> system_;
  std::unique_ptr<AraServer> ara_server_;
};

TEST_F(RegistrationTest, SubscriberCredentialsSerializeRoundTrip) {
  const auto pairing = pairing::Pairing::test_pairing();
  const auto creds = system_->ara().register_subscriber("alice", {"m"}, rng_);
  const auto creds2 = SubscriberCredentials::deserialize(
      pairing, creds.serialize(pairing));
  EXPECT_EQ(creds2.schema, creds.schema);
  EXPECT_EQ(creds2.certificate.pseudonym, "alice");
  EXPECT_EQ(creds2.services.ds_name, creds.services.ds_name);
  EXPECT_EQ(creds2.services.rs_pk, creds.services.rs_pk);
  EXPECT_FALSE(creds2.epoch.has_value());
  EXPECT_FALSE(creds2.embedded_hve.has_value());
  // The deserialized key still verifies/decrypts: run a full flow with it.
  Subscriber sub(net_, "sub-x", creds2, rng_);
  sub.connect();
  EXPECT_TRUE(sub.connected());
}

TEST_F(RegistrationTest, PublisherCredentialsSerializeRoundTrip) {
  const auto pairing = pairing::Pairing::test_pairing();
  const auto creds = system_->ara().register_publisher("press", rng_);
  const auto creds2 =
      PublisherCredentials::deserialize(pairing, creds.serialize(pairing));
  EXPECT_EQ(creds2.schema, creds.schema);
  EXPECT_EQ(creds2.hve_pk.t, creds.hve_pk.t);
  EXPECT_EQ(creds2.certificate.pseudonym, "press");
}

TEST_F(RegistrationTest, CredentialsWithEpochAndEmbeddedHveRoundTrip) {
  const auto pairing = pairing::Pairing::test_pairing();
  TestRng rng(5);
  Ara ara(pairing, schema2(), rng, pbe::EpochPolicy(4, 60.0),
          /*embedded_token_server=*/true);
  const auto creds = ara.register_subscriber("bob", {"m"}, rng);
  const auto creds2 =
      SubscriberCredentials::deserialize(pairing, creds.serialize(pairing));
  ASSERT_TRUE(creds2.epoch.has_value());
  EXPECT_EQ(creds2.epoch->n_epochs(), 4u);
  ASSERT_TRUE(creds2.embedded_hve.has_value());
  EXPECT_EQ(creds2.embedded_hve->msk.y, creds.embedded_hve->msk.y);
  EXPECT_EQ(creds2.embedded_hve->pk.width(), creds.schema.width());
}

TEST_F(RegistrationTest, RemoteRegistrationEndToEnd) {
  ara_server_->enroll_subscriber("alice", {"analyst"});
  ara_server_->enroll_publisher("press");
  const auto pairing = pairing::Pairing::test_pairing();

  const auto sub_creds = register_subscriber_remote(
      net_, "sub1", "ara", ara_server_->public_key(), pairing, "alice", rng_);
  ASSERT_TRUE(sub_creds.has_value());
  const auto pub_creds = register_publisher_remote(
      net_, "pub1", "ara", ara_server_->public_key(), pairing, "press", rng_);
  ASSERT_TRUE(pub_creds.has_value());

  // Remotely-registered clients interoperate with the running system.
  Subscriber sub(net_, "sub1", *sub_creds, rng_);
  Publisher pub(net_, "pub1", *pub_creds, rng_);
  sub.connect();
  pub.connect();
  sub.subscribe({{"topic", "a"}});
  pub.publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("hello"),
              abe::parse_policy("analyst"));
  ASSERT_EQ(sub.deliveries().size(), 1u);
  EXPECT_EQ(bytes_to_str(sub.deliveries()[0].payload), "hello");
}

TEST_F(RegistrationTest, UnenrolledIdentityRejected) {
  const auto pairing = pairing::Pairing::test_pairing();
  const auto creds = register_subscriber_remote(
      net_, "sub1", "ara", ara_server_->public_key(), pairing, "mallory", rng_);
  EXPECT_FALSE(creds.has_value());
  EXPECT_EQ(ara_server_->rejected_requests(), 1u);
}

TEST_F(RegistrationTest, PublisherIdentityCannotRegisterAsSubscriber) {
  ara_server_->enroll_publisher("press");
  const auto pairing = pairing::Pairing::test_pairing();
  EXPECT_FALSE(register_subscriber_remote(net_, "x", "ara",
                                          ara_server_->public_key(), pairing,
                                          "press", rng_)
                   .has_value());
}

TEST_F(RegistrationTest, WrongAraKeyFailsClosed) {
  ara_server_->enroll_subscriber("alice", {"m"});
  const auto pairing = pairing::Pairing::test_pairing();
  const auto wrong = pairing::ecies_keygen(*pairing, rng_);
  EXPECT_FALSE(register_subscriber_remote(net_, "x", "ara", wrong.public_key,
                                          pairing, "alice", rng_)
                   .has_value());
}

TEST_F(RegistrationTest, IdentityIsEncryptedOnTheWire) {
  ara_server_->enroll_subscriber("super-secret-identity", {"m"});
  const auto pairing = pairing::Pairing::test_pairing();
  net_.clear_traffic();
  (void)register_subscriber_remote(net_, "x", "ara", ara_server_->public_key(),
                                   pairing, "super-secret-identity", rng_);
  const Bytes needle = str_to_bytes("super-secret-identity");
  for (const auto& rec : net_.traffic()) {
    EXPECT_EQ(std::search(rec.frame.begin(), rec.frame.end(), needle.begin(),
                          needle.end()),
              rec.frame.end());
  }
}

}  // namespace
}  // namespace p3s::core
