#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/simnet.hpp"

namespace p3s::sim {
namespace {

TEST(SimEngine, RunsEventsInTimeOrder) {
  SimEngine eng;
  std::vector<int> order;
  eng.at(3.0, [&] { order.push_back(3); });
  eng.at(1.0, [&] { order.push_back(1); });
  eng.at(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(SimEngine, SimultaneousEventsAreFifo) {
  SimEngine eng;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    eng.at(1.0, [&, i] { order.push_back(i); });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimEngine, AfterIsRelative) {
  SimEngine eng;
  double fired_at = -1;
  eng.at(5.0, [&] { eng.after(2.5, [&] { fired_at = eng.now(); }); });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(SimEngine, PastSchedulingClampsToNow) {
  SimEngine eng;
  double fired_at = -1;
  eng.at(10.0, [&] { eng.at(3.0, [&] { fired_at = eng.now(); }); });
  eng.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(SimEngine, RunUntilStopsAtBoundary) {
  SimEngine eng;
  int fired = 0;
  eng.at(1.0, [&] { ++fired; });
  eng.at(5.0, [&] { ++fired; });
  eng.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimNetwork, DeliveryTimeIsSerializationPlusLatency) {
  SimEngine eng;
  SimNetwork net(eng, {0.045, 10e6});
  double arrival = -1;
  net.register_endpoint("b", [&](const std::string&, BytesView) {
    arrival = eng.now();
  });
  net.register_endpoint("a", [](const std::string&, BytesView) {});
  net.send("a", "b", Bytes(12'500));  // 12500 B = 100 kbit -> 10 ms at 10 Mbps
  eng.run();
  EXPECT_NEAR(arrival, 0.045 + 0.010, 1e-9);
}

TEST(SimNetwork, NicSerializesFanOut) {
  // Two frames out of the same NIC: second waits for the first (the DS
  // broadcast bottleneck from the paper's throughput model).
  SimEngine eng;
  SimNetwork net(eng, {0.0, 8e6});  // zero latency, 1 MB/s
  std::vector<double> arrivals;
  net.register_endpoint("s1", [&](const std::string&, BytesView) {
    arrivals.push_back(eng.now());
  });
  net.register_endpoint("s2", [&](const std::string&, BytesView) {
    arrivals.push_back(eng.now());
  });
  net.register_endpoint("ds", [](const std::string&, BytesView) {});
  net.send("ds", "s1", Bytes(1'000'000));  // 1 s of wire time
  net.send("ds", "s2", Bytes(1'000'000));
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 1.0, 1e-9);
  EXPECT_NEAR(arrivals[1], 2.0, 1e-9);  // queued behind the first
}

TEST(SimNetwork, PerLinkOverride) {
  SimEngine eng;
  SimNetwork net(eng, {0.045, 10e6});
  net.set_link("ds", "rs", {0.001, 100e6});
  double arrival = -1;
  net.register_endpoint("rs", [&](const std::string&, BytesView) {
    arrival = eng.now();
  });
  net.register_endpoint("ds", [](const std::string&, BytesView) {});
  net.send("ds", "rs", Bytes(125'000));  // 1 Mbit -> 10 ms at 100 Mbps
  eng.run();
  EXPECT_NEAR(arrival, 0.001 + 0.010, 1e-9);
}

TEST(SimNetwork, EgressOverrideAppliesToAllDestinations) {
  SimEngine eng;
  SimNetwork net(eng, {0.0, 10e6});
  net.set_egress("fast", {0.0, 100e6});
  std::vector<double> arrivals;
  net.register_endpoint("x", [&](const std::string&, BytesView) {
    arrivals.push_back(eng.now());
  });
  net.register_endpoint("fast", [](const std::string&, BytesView) {});
  net.send("fast", "x", Bytes(125'000));  // 10 ms at 100 Mbps
  eng.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_NEAR(arrivals[0], 0.010, 1e-9);
}

TEST(SimNetwork, FramesToDeadHostsAreLost) {
  SimEngine eng;
  SimNetwork net(eng);
  net.register_endpoint("a", [](const std::string&, BytesView) {});
  EXPECT_NO_THROW(net.send("a", "dead", Bytes(10)));
  EXPECT_NO_THROW(eng.run());
  EXPECT_EQ(net.traffic().size(), 1u);  // eavesdropper still saw it
}

TEST(SimNetwork, FaultPlanMirrorsAsyncSemantics) {
  // The same seeded FaultPlan API drives the discrete-event network: drops
  // and duplicates by probability, blackouts by sim time, extra delay added
  // to the computed arrival. (Reorder probabilities are ignored — delay
  // variance is what reorders a discrete-event schedule.)
  SimEngine eng;
  SimNetwork net(eng, {0.001, 10e6});
  net::FaultPlan plan(11);
  net::LinkFaults lossy;
  lossy.drop = 1.0;
  plan.set_link("a", "b", lossy);
  net.set_fault_plan(std::move(plan));
  int got_b = 0, got_a = 0;
  net.register_endpoint("a", [&](const std::string&, BytesView) { ++got_a; });
  net.register_endpoint("b", [&](const std::string&, BytesView) { ++got_b; });
  net.send("a", "b", Bytes(100));
  net.send("b", "a", Bytes(100));
  eng.run();
  EXPECT_EQ(got_b, 0);
  EXPECT_EQ(got_a, 1);
  EXPECT_EQ(net.dropped_frames(), 1u);
  EXPECT_EQ(net.dropped_on("a", "b"), 1u);
  EXPECT_EQ(net.dropped_on("b", "a"), 0u);
  EXPECT_EQ(net.traffic().size(), 2u);  // dropped frame still on the log
}

TEST(SimNetwork, FaultPlanDuplicateAndDelay) {
  SimEngine eng;
  SimNetwork net(eng, {0.0, 8e6});
  net::FaultPlan plan(12);
  net::LinkFaults f;
  f.duplicate = 1.0;
  f.delay_max = 0.5;
  plan.set_default(f);
  net.set_fault_plan(std::move(plan));
  std::vector<double> arrivals;
  net.register_endpoint("b", [&](const std::string&, BytesView) {
    arrivals.push_back(eng.now());
  });
  net.register_endpoint("a", [](const std::string&, BytesView) {});
  net.send("a", "b", Bytes(10));
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);  // original + duplicate
  EXPECT_EQ(net.traffic().size(), 2u);
  // Extra delay only ever pushes arrivals later than the fault-free time.
  for (const double t : arrivals) EXPECT_GE(t, 10 * 8.0 / 8e6);
}

TEST(SimNetwork, FaultPlanBlackoutBySimTime) {
  SimEngine eng;
  SimNetwork net(eng, {0.0, 8e6});
  net::FaultPlan plan(13);
  plan.add_blackout("b", 0.0, 1.0);
  net.set_fault_plan(std::move(plan));
  int got = 0;
  net.register_endpoint("b", [&](const std::string&, BytesView) { ++got; });
  net.register_endpoint("a", [](const std::string&, BytesView) {});
  eng.at(0.5, [&] { net.send("a", "b", Bytes(10)); });  // inside: lost
  eng.at(2.0, [&] { net.send("a", "b", Bytes(10)); });  // after: delivered
  eng.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net.dropped_frames(), 1u);
}

TEST(SimNetwork, TrafficLogTimestamps) {
  SimEngine eng;
  SimNetwork net(eng, {0.0, 8e6});
  net.register_endpoint("b", [](const std::string&, BytesView) {});
  net.register_endpoint("a", [](const std::string&, BytesView) {});
  eng.at(1.5, [&] { net.send("a", "b", Bytes(10)); });
  eng.run();
  ASSERT_EQ(net.traffic().size(), 1u);
  EXPECT_DOUBLE_EQ(net.traffic()[0].time, 1.5);
}

}  // namespace
}  // namespace p3s::sim
