#include <gtest/gtest.h>

#include <stdexcept>

#include "common/bytes.hpp"
#include "common/guid.hpp"
#include "common/probe.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"

namespace p3s {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), b);
  EXPECT_EQ(from_hex("0001ABFF"), b);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, StrRoundTrip) {
  EXPECT_EQ(bytes_to_str(str_to_bytes("hello")), "hello");
}

TEST(Bytes, Concat) {
  EXPECT_EQ(concat(str_to_bytes("ab"), str_to_bytes("cd")), str_to_bytes("abcd"));
}

// Without an installed sink (nothing links obs here) every probe call must
// be a safe no-op, and interning must still hand out stable dense ids —
// that is what lets the hermetic layers instrument unconditionally.
TEST(Probe, NoopWithoutSinkAndStableIds) {
  EXPECT_EQ(probe::sink(), nullptr);
  const std::size_t id = probe::intern("p3s.crypto.pair_seconds");
  EXPECT_EQ(probe::intern("p3s.crypto.pair_seconds"), id);
  EXPECT_STREQ(probe::interned_name(id), "p3s.crypto.pair_seconds");
  probe::observe(id, 1.0);  // must not crash
  probe::add(id, 2);
  {
    probe::ScopedTimer timer(id);
  }
  EXPECT_NE(probe::intern("p3s.crypto.g1_mul_seconds"), id);
}

TEST(Bytes, XorInplace) {
  Bytes a = {0xff, 0x00};
  xor_inplace(a, Bytes{0x0f, 0xf0});
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0}));
  EXPECT_THROW(xor_inplace(a, Bytes{0x01}), std::invalid_argument);
}

TEST(Serial, IntRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_TRUE(r.done());
}

TEST(Serial, BytesAndStrings) {
  Writer w;
  w.bytes(str_to_bytes("payload"));
  w.str("metadata");
  w.raw(Bytes{1, 2, 3});
  Reader r(w.data());
  EXPECT_EQ(bytes_to_str(r.bytes()), "payload");
  EXPECT_EQ(r.str(), "metadata");
  EXPECT_EQ(r.raw(3), (Bytes{1, 2, 3}));
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Serial, TruncationDetected) {
  Writer w;
  w.u32(7);
  Reader r(w.data());
  EXPECT_THROW(r.u64(), std::out_of_range);
}

TEST(Serial, LengthPrefixTruncationDetected) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow, none do
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), std::out_of_range);
}

TEST(Serial, TrailingBytesDetected) {
  Writer w;
  w.u16(1);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), std::invalid_argument);
}

TEST(Rng, DeterministicWithSeed) {
  TestRng a(42), b(42), c(43);
  EXPECT_EQ(a.bytes(32), b.bytes(32));
  TestRng a2(42);
  EXPECT_NE(a2.bytes(32), c.bytes(32));
}

TEST(Rng, UniformRespectsBound) {
  TestRng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  EXPECT_EQ(rng.uniform(1), 0u);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformCoversRange) {
  TestRng rng(7);
  bool seen[8] = {};
  for (int i = 0; i < 200; ++i) seen[rng.uniform(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Guid, RandomIsUniqueAndNonNull) {
  TestRng rng(3);
  Guid a = Guid::random(rng);
  Guid b = Guid::random(rng);
  EXPECT_NE(a, b);
  EXPECT_FALSE(a.is_null());
  EXPECT_TRUE(Guid{}.is_null());
}

TEST(Guid, RoundTripsThroughBytesAndHex) {
  TestRng rng(4);
  Guid g = Guid::random(rng);
  EXPECT_EQ(Guid::from_bytes(g.to_bytes()), g);
  EXPECT_EQ(Guid::from_hex(g.to_hex()), g);
  EXPECT_EQ(g.to_hex().size(), 32u);
}

TEST(Guid, FromBytesRejectsWrongSize) {
  EXPECT_THROW(Guid::from_bytes(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Guid::from_bytes(Bytes(17)), std::invalid_argument);
}

TEST(Guid, HashDistributes) {
  TestRng rng(5);
  std::hash<Guid> h;
  Guid a = Guid::random(rng);
  Guid b = Guid::random(rng);
  EXPECT_NE(h(a), h(b));  // overwhelmingly likely
  EXPECT_EQ(h(a), h(Guid::from_bytes(a.to_bytes())));
}

}  // namespace
}  // namespace p3s
