// Tests of the §6.2 analytic models: the qualitative claims the paper makes
// about Figs. 8-10 must hold in our implementation of the formulas, and the
// packet-level simulation must agree with the closed-form model.
#include <gtest/gtest.h>

#include "model/analytic.hpp"
#include "model/flowsim.hpp"

namespace p3s::model {
namespace {

constexpr double kKB = 1024.0;
constexpr double kMB = 1024.0 * 1024.0;

TEST(AnalyticLatency, BaselineSmallPayloadIsFast) {
  const ModelParams p = ModelParams::paper_defaults();
  const BaselineLatency lat = baseline_latency(p, 1 * kKB);
  // ℓ + tiny serialization + 5 ms matching + 5 deliveries.
  EXPECT_LT(lat.total(), 0.5);
  EXPECT_GT(lat.total(), p.latency_s);
}

TEST(AnalyticLatency, P3sHasFloorFromPbeAndFanOut) {
  // Paper: "For small payloads P3S exhibits a threshold" — the PBE match
  // (~30-38 ms) and the N_s · ser(P_E) fan-out dominate.
  const ModelParams p = ModelParams::paper_defaults();
  const P3sLatency small = p3s_latency(p, 1 * kKB);
  const P3sLatency tiny = p3s_latency(p, 100.0);
  // The floor: both are dominated by metadata path, nearly equal.
  EXPECT_NEAR(small.total(), tiny.total(), 0.01 * small.total());
  // The fan-out term alone: 100 subscribers x 8 ms = 0.8 s.
  EXPECT_GT(small.tp2, 0.7);
}

TEST(AnalyticLatency, P3sConvergesToBaselineForLargePayloads) {
  // Paper Fig. 8(b): the relative latency approaches ~1 as serialization
  // dominates.
  const ModelParams p = ModelParams::paper_defaults();
  for (double c : {10 * kMB, 100 * kMB}) {
    const double ratio = p3s_latency(p, c).total() / baseline_latency(p, c).total();
    EXPECT_LT(ratio, 1.6) << c;
    EXPECT_GT(ratio, 0.3) << c;
  }
}

TEST(AnalyticLatency, P3sWithin10xEverywhere) {
  // The paper's headline: overhead within 10x across payload sizes.
  const ModelParams p = ModelParams::paper_defaults();
  for (double c = 1 * kKB; c <= 100 * kMB; c *= 4) {
    const double ratio =
        p3s_latency(p, c).total() / baseline_latency(p, c).total();
    EXPECT_LT(ratio, 10.0) << "payload " << c;
  }
}

TEST(AnalyticLatency, WorstCaseUsesMaxOfPaths) {
  const ModelParams p = ModelParams::paper_defaults();
  const P3sLatency lat = p3s_latency(p, 100 * kMB);
  // At 100 MB the content path exceeds the metadata path.
  EXPECT_GT(lat.content_path(), lat.metadata_path());
  EXPECT_DOUBLE_EQ(lat.total(), lat.content_path() + lat.tr);
}

TEST(AnalyticThroughput, BandwidthBoundForLargePayloads) {
  // Paper Fig. 9: "As payload size increases, throughput decreases because
  // fewer messages per second can be sent out the network interface."
  const ModelParams p = ModelParams::paper_defaults();
  const BaselineThroughput b1 = baseline_throughput(p, 1 * kMB);
  const BaselineThroughput b2 = baseline_throughput(p, 10 * kMB);
  EXPECT_NEAR(b1.total() / b2.total(), 10.0, 0.5);
  EXPECT_STREQ(b2.bottleneck(), "broker-nic");
}

TEST(AnalyticThroughput, P3sFlattensForSmallPayloads) {
  // Paper: "For small payloads, P3S performance flattens because ... the DS
  // must send the PBE encrypted metadata to each of the 100 subscribers."
  const ModelParams p = ModelParams::paper_defaults();
  const P3sThroughput t1 = p3s_throughput(p, 1 * kKB);
  const P3sThroughput t2 = p3s_throughput(p, 16 * kKB);
  EXPECT_NEAR(t1.total(), t2.total(), 0.05 * t1.total());
  EXPECT_STREQ(t1.bottleneck(), "ds-nic");
  // And the flat value is ℬ/(P_E·N_s) = 10e6 / (10000·8·100) = 1.25/s.
  EXPECT_NEAR(t1.total(), 1.25, 0.05);
}

TEST(AnalyticThroughput, P3sMatchesBaselineShapeForLargePayloads) {
  // Paper: "The P3S system exhibits almost exactly the same behavior as the
  // baseline for large payloads, but it is the bandwidth out of the RS that
  // limits the throughput."
  const ModelParams p = ModelParams::paper_defaults();
  for (double c : {1 * kMB, 10 * kMB, 100 * kMB}) {
    const double ratio =
        p3s_throughput(p, c).total() / baseline_throughput(p, c).total();
    EXPECT_NEAR(ratio, 1.0, 0.05) << c;
    EXPECT_STREQ(p3s_throughput(p, c).bottleneck(), "rs-nic") << c;
  }
}

TEST(AnalyticThroughput, SmallPayloadLowMatchRateIsTheBadCase) {
  // Paper conclusion: "P3S performs very well (within 10x) compared to the
  // baseline except for small payloads and low matching rates."
  ModelParams p = ModelParams::paper_defaults();
  p.match_fraction = 0.05;
  const double small_ratio =
      p3s_throughput(p, 1 * kKB).total() / baseline_throughput(p, 1 * kKB).total();
  EXPECT_LT(small_ratio, 0.1);  // worse than 10x at 1 KB, f=5%
}

TEST(AnalyticThroughput, HigherMatchRateBenefitsP3s) {
  // Paper Fig. 10: "increasing the match rate benefits P3S. The baseline
  // only disseminates to subscribers who match, whereas P3S must
  // disseminate to all of them."
  ModelParams p5 = ModelParams::paper_defaults();
  ModelParams p50 = ModelParams::paper_defaults();
  p50.match_fraction = 0.5;
  const double c = 64 * kKB;
  const double rel5 =
      p3s_throughput(p5, c).total() / baseline_throughput(p5, c).total();
  const double rel50 =
      p3s_throughput(p50, c).total() / baseline_throughput(p50, c).total();
  EXPECT_GT(rel50, rel5);
}

TEST(AnalyticThroughput, BandwidthHelpsBothEqually) {
  // Paper: "increasing the network bandwidth from 10 to 100 Mbps helps both
  // systems equally" (in the bandwidth-bound regime).
  ModelParams p10 = ModelParams::paper_defaults();
  ModelParams p100 = ModelParams::paper_defaults();
  p100.bandwidth_bps = 100e6;
  const double c = 10 * kMB;
  const double gain_base = baseline_throughput(p100, c).total() /
                           baseline_throughput(p10, c).total();
  const double gain_p3s =
      p3s_throughput(p100, c).total() / p3s_throughput(p10, c).total();
  EXPECT_NEAR(gain_base, 10.0, 0.1);
  EXPECT_NEAR(gain_p3s, 10.0, 0.1);
}

TEST(AnalyticThroughput, RelativeThroughputIndependentOfSubscriberCount) {
  // Paper: "P3S throughput relative to the baseline shows no dependence on
  // the number of subscribers for a fixed matching rate f" (in the
  // bandwidth-bound regime).
  const double c = 1 * kMB;
  for (std::size_t ns : {50u, 100u, 200u}) {
    ModelParams p = ModelParams::paper_defaults();
    p.n_subscribers = ns;
    const double rel =
        p3s_throughput(p, c).total() / baseline_throughput(p, c).total();
    ModelParams p2 = ModelParams::paper_defaults();
    const double rel_ref =
        p3s_throughput(p2, c).total() / baseline_throughput(p2, c).total();
    EXPECT_NEAR(rel, rel_ref, 0.02) << ns;
  }
}

// --- Simulation vs analytic cross-checks ------------------------------------------

TEST(FlowSim, BaselineLatencyMatchesAnalytic) {
  // The analytic model is a worst case (it charges the network latency ℓ
  // once per matching delivery; the packet-level sim overlaps them), so the
  // simulation must land at or below the model, converging to it in the
  // serialization-dominated regime.
  const ModelParams p = ModelParams::paper_defaults();
  for (double c : {1 * kMB, 16 * kMB}) {
    const double sim = simulate_baseline_latency(p, c);
    const double analytic = baseline_latency(p, c).total();
    EXPECT_LE(sim, analytic * 1.01) << c;
    EXPECT_NEAR(sim, analytic, 0.25 * analytic) << c;
  }
  // Small payloads: the model's extra per-delivery ℓ terms dominate; the
  // sim stays strictly below but in the same order of magnitude.
  const double sim_small = simulate_baseline_latency(p, 1 * kKB);
  const double analytic_small = baseline_latency(p, 1 * kKB).total();
  EXPECT_LE(sim_small, analytic_small);
  EXPECT_GT(sim_small, 0.25 * analytic_small);
}

TEST(FlowSim, P3sLatencyMatchesAnalytic) {
  const ModelParams p = ModelParams::paper_defaults();
  for (double c : {1 * kKB, 1 * kMB, 16 * kMB}) {
    const double sim = simulate_p3s_latency(p, c);
    const double analytic = p3s_latency(p, c).total();
    EXPECT_LE(sim, analytic * 1.01) << c;
    EXPECT_NEAR(sim, analytic, 0.30 * analytic) << c;
  }
}

TEST(FlowSim, BaselineThroughputMatchesAnalytic) {
  const ModelParams p = ModelParams::paper_defaults();
  for (double c : {256 * kKB, 1 * kMB}) {
    const double sim = simulate_baseline_throughput(p, c);
    const double analytic = baseline_throughput(p, c).total();
    EXPECT_NEAR(sim, analytic, 0.25 * analytic) << c;
  }
}

TEST(FlowSim, P3sThroughputMatchesAnalytic) {
  const ModelParams p = ModelParams::paper_defaults();
  for (double c : {64 * kKB, 1 * kMB}) {
    const double sim = simulate_p3s_throughput(p, c);
    const double analytic = p3s_throughput(p, c).total();
    EXPECT_NEAR(sim, analytic, 0.30 * analytic) << c;
  }
}

TEST(FlowSim, SimulatedP3sFloorsAtDsBroadcastRate) {
  const ModelParams p = ModelParams::paper_defaults();
  const double sim = simulate_p3s_throughput(p, 1 * kKB);
  EXPECT_NEAR(sim, 1.25, 0.2);  // ds-nic bound
}

}  // namespace
}  // namespace p3s::model
