#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pbe/schema.hpp"

namespace p3s::pbe {
namespace {

MetadataSchema finance_schema() {
  return MetadataSchema({
      {"sector", {"tech", "finance", "energy", "health"}},       // 2 bits
      {"region", {"us", "eu", "apac"}},                          // 2 bits
      {"event", {"merger", "earnings", "default", "ipo",
                 "downgrade", "lawsuit", "split", "buyback"}},   // 3 bits
  });
}

TEST(Schema, WidthIsSumOfAttributeBits) {
  EXPECT_EQ(finance_schema().width(), 7u);
  EXPECT_EQ(MetadataSchema::uniform(13, 8).width(), 39u);  // paper's ~40 bits
}

TEST(Schema, EncodeMetadataBits) {
  const auto s = finance_schema();
  const BitVector v = s.encode_metadata(
      {{"sector", "finance"}, {"region", "us"}, {"event", "default"}});
  ASSERT_EQ(v.size(), 7u);
  // finance = index 1 -> bits {1,0}; us = 0 -> {0,0}; default = 2 -> {0,1,0}
  EXPECT_EQ(v, (BitVector{1, 0, 0, 0, 0, 1, 0}));
}

TEST(Schema, EncodeInterestWildcardsSpanAttributes) {
  const auto s = finance_schema();
  const Pattern p = s.encode_interest({{"sector", "finance"}});
  ASSERT_EQ(p.size(), 7u);
  EXPECT_EQ(p[0], 1);
  EXPECT_EQ(p[1], 0);
  for (std::size_t i = 2; i < 7; ++i) EXPECT_EQ(p[i], kWildcard) << i;
}

TEST(Schema, EncodedInterestMatchesEncodedMetadataConsistently) {
  const auto s = finance_schema();
  TestRng rng(7);
  const auto& specs = s.attributes();
  for (int trial = 0; trial < 200; ++trial) {
    Metadata md;
    for (const auto& spec : specs) {
      md[spec.name] = spec.values[rng.uniform(spec.values.size())];
    }
    Interest in;
    for (const auto& spec : specs) {
      if (rng.uniform(2) == 0) {
        in[spec.name] = spec.values[rng.uniform(spec.values.size())];
      }
    }
    if (in.empty()) in[specs[0].name] = md.at(specs[0].name);

    EXPECT_EQ(hve_match_plain(s.encode_metadata(md), s.encode_interest(in)),
              interest_matches(in, md));
  }
}

TEST(Schema, MissingAttributeRejected) {
  const auto s = finance_schema();
  EXPECT_THROW(s.encode_metadata({{"sector", "tech"}}), std::invalid_argument);
}

TEST(Schema, UnknownAttributeOrValueRejected) {
  const auto s = finance_schema();
  EXPECT_THROW(s.encode_metadata({{"sector", "tech"},
                                  {"region", "us"},
                                  {"event", "merger"},
                                  {"bogus", "x"}}),
               std::invalid_argument);
  EXPECT_THROW(s.encode_interest({{"sector", "crypto"}}), std::invalid_argument);
  EXPECT_THROW(s.encode_interest({{"bogus", "x"}}), std::invalid_argument);
}

TEST(Schema, AllWildcardInterestRejected) {
  EXPECT_THROW(finance_schema().encode_interest({}), std::invalid_argument);
}

TEST(Schema, ConstructionValidation) {
  EXPECT_THROW(MetadataSchema(std::vector<AttributeSpec>{}),
               std::invalid_argument);
  EXPECT_THROW(MetadataSchema(std::vector<AttributeSpec>{{"a", {"only"}}}),
               std::invalid_argument);
  EXPECT_THROW(MetadataSchema(std::vector<AttributeSpec>{{"a", {"x", "y"}},
                                                         {"a", {"x", "y"}}}),
               std::invalid_argument);
}

TEST(Schema, SerializationRoundTrip) {
  const auto s = finance_schema();
  const auto s2 = MetadataSchema::deserialize(s.serialize());
  EXPECT_EQ(s2, s);
  EXPECT_EQ(s2.width(), s.width());
}

TEST(Schema, InterestMatchesSemantics) {
  const Metadata md = {{"a", "1"}, {"b", "2"}};
  EXPECT_TRUE(interest_matches({}, md));  // all-wildcard (plaintext helper only)
  EXPECT_TRUE(interest_matches({{"a", "1"}}, md));
  EXPECT_FALSE(interest_matches({{"a", "2"}}, md));
  EXPECT_FALSE(interest_matches({{"c", "1"}}, md));
}

TEST(Schema, NonPowerOfTwoValueCountStillInjective) {
  // "region" has 3 values in 2 bits; all encodings must be distinct.
  const auto s = finance_schema();
  BitVector a = s.encode_metadata({{"sector", "tech"}, {"region", "us"}, {"event", "ipo"}});
  BitVector b = s.encode_metadata({{"sector", "tech"}, {"region", "eu"}, {"event", "ipo"}});
  BitVector c = s.encode_metadata({{"sector", "tech"}, {"region", "apac"}, {"event", "ipo"}});
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace p3s::pbe
