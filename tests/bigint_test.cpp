#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "common/rng.hpp"
#include "math/bigint.hpp"

namespace p3s::math {
namespace {

TEST(BigInt, ConstructionAndZero) {
  EXPECT_TRUE(BigInt{}.is_zero());
  EXPECT_TRUE(BigInt{0}.is_zero());
  EXPECT_FALSE(BigInt{}.is_negative());
  EXPECT_FALSE(BigInt{1}.is_zero());
  EXPECT_TRUE(BigInt{-5}.is_negative());
  EXPECT_EQ(BigInt{std::int64_t{-1}}.to_dec(), "-1");
}

TEST(BigInt, Int64MinRoundTrip) {
  BigInt v{std::int64_t{INT64_MIN}};
  EXPECT_EQ(v.to_dec(), "-9223372036854775808");
}

// Pins the INT64_MIN arithmetic paths the UBSan job watches: the naive
// `-v` on the raw int64 would overflow, so the constructor and negation
// must take the -(v+1)+1 route. Values are pinned so a regression changes
// output, not just sanitizer status.
TEST(BigInt, Int64MinArithmeticPinned) {
  const BigInt v{std::int64_t{INT64_MIN}};
  EXPECT_EQ((-v).to_dec(), "9223372036854775808");
  EXPECT_EQ(v.abs().to_dec(), "9223372036854775808");
  EXPECT_EQ((v + v).to_dec(), "-18446744073709551616");
  EXPECT_EQ((v - v), BigInt{});
  EXPECT_EQ((v * BigInt{-1}).to_hex(), "8000000000000000");
  auto [q, r] = BigInt::divmod(v, BigInt{-1});
  EXPECT_EQ(q.to_hex(), "8000000000000000");
  EXPECT_TRUE(r.is_zero());
}

TEST(BigInt, DecRoundTrip) {
  const char* cases[] = {
      "0",
      "1",
      "-1",
      "18446744073709551615",
      "18446744073709551616",
      "340282366920938463463374607431768211456",
      "-123456789012345678901234567890123456789012345678901234567890",
  };
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::from_dec(s).to_dec(), s) << s;
  }
}

TEST(BigInt, HexRoundTrip) {
  const char* cases[] = {"0", "1", "ff", "deadbeefcafebabe",
                         "123456789abcdef0123456789abcdef01"};
  for (const char* s : cases) {
    EXPECT_EQ(BigInt::from_hex(s).to_hex(), s) << s;
  }
}

TEST(BigInt, ParseRejectsMalformed) {
  EXPECT_THROW(BigInt::from_dec(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_dec("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_dec("12a"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("xyz"), std::invalid_argument);
}

TEST(BigInt, AdditionBasics) {
  EXPECT_EQ(BigInt{2} + BigInt{3}, BigInt{5});
  EXPECT_EQ(BigInt{-2} + BigInt{3}, BigInt{1});
  EXPECT_EQ(BigInt{2} + BigInt{-3}, BigInt{-1});
  EXPECT_EQ(BigInt{-2} + BigInt{-3}, BigInt{-5});
  EXPECT_EQ(BigInt{5} + BigInt{-5}, BigInt{});
}

TEST(BigInt, CarryPropagation) {
  BigInt a = BigInt::from_hex("ffffffffffffffffffffffffffffffff");
  EXPECT_EQ((a + BigInt{1}).to_hex(), "100000000000000000000000000000000");
  EXPECT_EQ((a + BigInt{1} - BigInt{1}).to_hex(), a.to_hex());
}

TEST(BigInt, MultiplicationSigns) {
  EXPECT_EQ(BigInt{6} * BigInt{7}, BigInt{42});
  EXPECT_EQ(BigInt{-6} * BigInt{7}, BigInt{-42});
  EXPECT_EQ(BigInt{-6} * BigInt{-7}, BigInt{42});
  EXPECT_EQ(BigInt{0} * BigInt{-7}, BigInt{});
}

TEST(BigInt, MultiplicationLarge) {
  BigInt a = BigInt::from_dec("123456789012345678901234567890");
  BigInt b = BigInt::from_dec("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_dec(),
            "121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigInt, DivModTruncatedSemantics) {
  // C++ semantics: quotient toward zero, remainder has dividend's sign.
  EXPECT_EQ(BigInt{7} / BigInt{2}, BigInt{3});
  EXPECT_EQ(BigInt{7} % BigInt{2}, BigInt{1});
  EXPECT_EQ(BigInt{-7} / BigInt{2}, BigInt{-3});
  EXPECT_EQ(BigInt{-7} % BigInt{2}, BigInt{-1});
  EXPECT_EQ(BigInt{7} / BigInt{-2}, BigInt{-3});
  EXPECT_EQ(BigInt{7} % BigInt{-2}, BigInt{1});
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{}, std::domain_error);
  EXPECT_THROW(BigInt{1} % BigInt{}, std::domain_error);
}

TEST(BigInt, DivModIdentityRandom) {
  TestRng rng(11);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::random_bits(rng, 40 + rng.uniform(400));
    BigInt b = BigInt::random_bits(rng, 1 + rng.uniform(300));
    auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
    EXPECT_FALSE(r.is_negative());
  }
}

TEST(BigInt, KnuthDAddBackCase) {
  // A case engineered to exercise the rare add-back branch of Algorithm D:
  // u = B^2 * (B - 1), v = B + 1 pattern (classic trigger family).
  BigInt b64 = BigInt{1} << 64;
  BigInt u = (b64 - BigInt{1}) * b64 * b64;
  BigInt v = b64 * b64 - BigInt{1};
  auto [q, r] = BigInt::divmod(u, v);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
}

TEST(BigInt, ShiftRoundTrip) {
  BigInt a = BigInt::from_hex("123456789abcdef0fedcba9876543210");
  for (std::size_t n : {0u, 1u, 7u, 63u, 64u, 65u, 130u}) {
    EXPECT_EQ((a << n) >> n, a) << n;
  }
  EXPECT_EQ(BigInt{1} << 64, BigInt::from_hex("10000000000000000"));
  EXPECT_EQ(BigInt::from_hex("10000000000000000") >> 64, BigInt{1});
  EXPECT_EQ(BigInt{3} >> 10, BigInt{});
}

// Shift counts at exact limb boundaries are where a shift-width bug would
// hide: n % 64 == 0 must bypass the `x << bits` / `x >> (64 - bits)` pair
// entirely (both would be UB at width 64). Pinned values catch an
// off-by-one even if the sanitizer build is skipped.
TEST(BigInt, ShiftAtLimbBoundariesPinned) {
  const BigInt a = BigInt::from_hex("f0debc9a78563412f0debc9a78563412");
  EXPECT_EQ((a << 64).to_hex(),
            "f0debc9a78563412f0debc9a785634120000000000000000");
  EXPECT_EQ((a << 128).to_hex(),
            "f0debc9a78563412f0debc9a78563412"
            "00000000000000000000000000000000");
  EXPECT_EQ((a >> 64).to_hex(), "f0debc9a78563412");
  EXPECT_EQ((a >> 128), BigInt{});
  EXPECT_EQ((a >> 127), BigInt{1});
  EXPECT_EQ((a << 63).to_hex(),
            "786f5e4d3c2b1a09786f5e4d3c2b1a090000000000000000");
  EXPECT_EQ((BigInt{} << 64), BigInt{});
  EXPECT_EQ((BigInt{} >> 64), BigInt{});
  EXPECT_EQ((a >> 100000), BigInt{});
  EXPECT_EQ(((BigInt{1} << 4096) >> 4096), BigInt{1});
}

// Division shapes that drive qhat to its correction loop and the add-back
// branch: dense all-ones dividends against divisors whose second limb is
// near the radix. The quotient/remainder identity plus pinned remainders
// guard the multiply-subtract borrow chain in Algorithm D.
TEST(BigInt, DivmodQhatCorrectionSweep) {
  const BigInt one{1};
  const BigInt u = (one << 256) - one;                   // 2^256 - 1
  const BigInt v = (one << 128) - (one << 64) - one;     // sparse high limbs
  auto [q, r] = BigInt::divmod(u, v);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
  EXPECT_EQ(q.to_hex(), "100000000000000010000000000000002");
  EXPECT_EQ(r.to_hex(), "30000000000000001");
  TestRng rng(113);
  for (int i = 0; i < 300; ++i) {
    BigInt a = BigInt::random_bits(rng, 1 + rng.uniform(520));
    BigInt b = BigInt::random_bits(rng, 1 + rng.uniform(260));
    auto [qq, rr] = BigInt::divmod(a, b);
    EXPECT_EQ(qq * b + rr, a);
    auto [qn, rn] = BigInt::divmod(-a, b);
    EXPECT_EQ(qn * b + rn, -a);
  }
}

TEST(BigInt, Comparison) {
  EXPECT_LT(BigInt{-5}, BigInt{3});
  EXPECT_LT(BigInt{-5}, BigInt{-3});
  EXPECT_GT(BigInt{5}, BigInt{3});
  EXPECT_EQ(BigInt{5} <=> BigInt{5}, std::strong_ordering::equal);
  EXPECT_LT(BigInt::from_hex("ffffffffffffffff"),
            BigInt::from_hex("10000000000000000"));
}

TEST(BigInt, BitAccessors) {
  BigInt a = BigInt::from_hex("8000000000000001");
  EXPECT_EQ(a.bit_length(), 64u);
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(63));
  EXPECT_FALSE(a.bit(64));
  EXPECT_EQ(BigInt{}.bit_length(), 0u);
  EXPECT_TRUE(BigInt{3}.is_odd());
  EXPECT_TRUE(BigInt{4}.is_even());
}

TEST(BigInt, BytesRoundTrip) {
  TestRng rng(12);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt::random_bits(rng, 8 + rng.uniform(500));
    EXPECT_EQ(BigInt::from_bytes(a.to_bytes()), a);
  }
  // Padding.
  EXPECT_EQ(BigInt{1}.to_bytes(4), (Bytes{0, 0, 0, 1}));
  EXPECT_THROW(BigInt{-1}.to_bytes(), std::domain_error);
}

TEST(BigInt, ToU64) {
  EXPECT_EQ(BigInt{std::uint64_t{0xffffffffffffffffull}}.to_u64(),
            0xffffffffffffffffull);
  EXPECT_EQ(BigInt{}.to_u64(), 0u);
  EXPECT_THROW((BigInt{1} << 64).to_u64(), std::overflow_error);
  EXPECT_THROW(BigInt{-1}.to_u64(), std::overflow_error);
}

TEST(BigInt, RandomBitsWidthExact) {
  TestRng rng(13);
  for (std::size_t bits : {1u, 2u, 8u, 63u, 64u, 65u, 257u}) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
    }
  }
}

TEST(BigInt, RandomBelowInRange) {
  TestRng rng(14);
  BigInt bound = BigInt::from_dec("1000000000000000000000000");
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::random_below(rng, bound);
    EXPECT_LT(v, bound);
    EXPECT_FALSE(v.is_negative());
  }
  EXPECT_THROW(BigInt::random_below(rng, BigInt{}), std::invalid_argument);
}

TEST(BigInt, KaratsubaMatchesSchoolbook) {
  // Large operands cross the Karatsuba threshold; verify against the
  // multiply-by-parts identity (a*2^k + b)(c*2^k + d).
  TestRng rng(15);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_bits(rng, 3000);
    BigInt b = BigInt::random_bits(rng, 2800);
    BigInt lo_a = a % (BigInt{1} << 1500), hi_a = a >> 1500;
    BigInt lo_b = b % (BigInt{1} << 1400), hi_b = b >> 1400;
    BigInt expected = (hi_a << 1500) * (hi_b << 1400) +
                      (hi_a << 1500) * lo_b + lo_a * (hi_b << 1400) +
                      lo_a * lo_b;
    EXPECT_EQ(a * b, expected);
  }
}

TEST(BigInt, AbsAndNegation) {
  EXPECT_EQ(BigInt{-5}.abs(), BigInt{5});
  EXPECT_EQ(BigInt{5}.abs(), BigInt{5});
  EXPECT_EQ(-BigInt{5}, BigInt{-5});
  EXPECT_EQ(-BigInt{}, BigInt{});
}

}  // namespace
}  // namespace p3s::math
