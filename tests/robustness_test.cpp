// Component-level robustness: every P3S service must survive malformed,
// truncated, misrouted, and adversarial frames without crashing or leaking —
// fail-closed behaviour at the frame-handling layer.
#include <gtest/gtest.h>

#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "p3s/messages.hpp"
#include "p3s/system.hpp"

namespace p3s::core {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = pbe::MetadataSchema({{"topic", {"a", "b"}},
                                         {"tier", {"x", "y"}}});
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
    sub_ = system_->make_subscriber("sub1", "s", {"m"}, rng_);
    pub_ = system_->make_publisher("pub1", "p", rng_);
    sub_->subscribe({{"topic", "a"}});
  }

  void expect_system_still_works() {
    const std::size_t before = sub_->deliveries().size();
    pub_->publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("alive"),
                  abe::parse_policy("m"));
    EXPECT_EQ(sub_->deliveries().size(), before + 1);
  }

  net::DirectNetwork net_;
  TestRng rng_{0x0b0b};
  std::unique_ptr<P3sSystem> system_;
  std::unique_ptr<Subscriber> sub_;
  std::unique_ptr<Publisher> pub_;
};

TEST_F(RobustnessTest, ServicesIgnoreGarbageFrames) {
  TestRng rng(1);
  for (const char* target : {"ds", "rs", "pbe-ts", "anon", "sub1", "pub1"}) {
    EXPECT_NO_THROW(net_.send("attacker", target, Bytes{}));
    EXPECT_NO_THROW(net_.send("attacker", target, Bytes{0xff, 0xff}));
    EXPECT_NO_THROW(net_.send("attacker", target, rng.bytes(200)));
  }
  expect_system_still_works();
}

TEST_F(RobustnessTest, ServicesIgnoreMisroutedValidFrames) {
  // A valid token request sent to the RS, a content request sent to the
  // PBE-TS, a store sent to the DS: all silently ignored.
  const Bytes token_req = tagged_frame(FrameType::kTokenRequest, 1, Bytes(32));
  const Bytes content_req =
      tagged_frame(FrameType::kContentRequest, 1, Bytes(32));
  EXPECT_NO_THROW(net_.send("attacker", "rs", token_req));
  EXPECT_NO_THROW(net_.send("attacker", "pbe-ts", content_req));
  EXPECT_NO_THROW(net_.send("attacker", "ds", content_req));
  expect_system_still_works();
}

TEST_F(RobustnessTest, UnregisteredClientCannotPublishThroughDs) {
  // A channel is established but registration is skipped: the DS must not
  // fan out metadata from a non-publisher.
  auto creds = system_->ara().register_publisher("ghost", rng_);
  Publisher ghost(net_, "ghost", creds, rng_);
  // connect() registers; forge the flow by connecting then crashing the DS
  // registry only for this client via a fresh DS session without register.
  // Simplest equivalent: DS drops registrations on restart.
  ghost.connect();
  system_->ds().crash_and_restart();
  sub_->reconnect();
  // ghost still believes it is connected but the DS lost its registration;
  // its publish is dropped at the DS (no session), not delivered.
  const std::size_t before = sub_->metadata_received();
  try {
    ghost.publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("spoof"),
                  abe::parse_policy("m"));
  } catch (const std::exception&) {
    // acceptable: client-side detection
  }
  EXPECT_EQ(sub_->metadata_received(), before);
}

TEST_F(RobustnessTest, RsIgnoresStoreWithTruncatedBody) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kStoreContent));
  w.u8(0);        // not wrapped
  w.u32(16);      // claims 16 guid bytes...
  w.raw(Bytes(4));  // ...provides 4
  const std::size_t before = system_->rs().stored_items();
  EXPECT_NO_THROW(net_.send("attacker", "rs", w.take()));
  EXPECT_EQ(system_->rs().stored_items(), before);
}

TEST_F(RobustnessTest, TokenServerRejectsReplayedRequestBlobGracefully) {
  // Capture a legitimate token request from the wire and replay it: the
  // PBE-TS will process it (HBC model has no replay protection at this
  // layer — the response is useless to the attacker without Ks), and the
  // system stays healthy.
  Bytes captured;
  for (const auto& rec : net_.traffic()) {
    if (rec.to == "pbe-ts") captured = rec.frame;
  }
  ASSERT_FALSE(captured.empty());
  EXPECT_NO_THROW(net_.send("attacker", "pbe-ts", captured));
  expect_system_still_works();
}

TEST_F(RobustnessTest, AnonymizerDropsResponsesWithUnknownTags) {
  const Bytes fake =
      tagged_frame(FrameType::kContentResponse, 424242, Bytes(16));
  EXPECT_NO_THROW(net_.send("rs", "anon", fake));
  expect_system_still_works();
}

TEST_F(RobustnessTest, SubscriberSurvivesCorruptedBroadcast) {
  // An attacker cannot speak on the DS channel (no session), and even a
  // spoofed channel record must be rejected by the AEAD, not crash the
  // subscriber.
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kChannelRecord));
  w.bytes(TestRng(7).bytes(64));
  EXPECT_NO_THROW(net_.send("ds", "sub1", w.take()));
  expect_system_still_works();
}

TEST_F(RobustnessTest, ClientsIgnoreUnsolicitedResponses) {
  EXPECT_NO_THROW(net_.send("attacker", "sub1",
                            tagged_frame(FrameType::kTokenResponse, 9, Bytes(8))));
  EXPECT_NO_THROW(net_.send(
      "attacker", "sub1", tagged_frame(FrameType::kContentResponse, 9, Bytes(8))));
  EXPECT_EQ(sub_->token_count(), 1u);
  expect_system_still_works();
}

}  // namespace
}  // namespace p3s::core
