#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "p3s/credentials.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {
namespace {

TEST(Messages, FrameTypeRoundTrip) {
  for (std::uint8_t t = 1; t <= 18; ++t) {
    const Bytes f = frame(static_cast<FrameType>(t), str_to_bytes("body"));
    Reader r(f);
    EXPECT_EQ(static_cast<std::uint8_t>(read_frame_type(r)), t);
    EXPECT_EQ(bytes_to_str(r.raw(4)), "body");
  }
}

TEST(Messages, UnknownFrameTypeRejected) {
  for (std::uint8_t t : {std::uint8_t{0}, std::uint8_t{19}, std::uint8_t{255}}) {
    Bytes f{t};
    Reader r(f);
    EXPECT_THROW(read_frame_type(r), std::invalid_argument) << int(t);
  }
  Reader empty(Bytes{});
  EXPECT_THROW(read_frame_type(empty), std::out_of_range);
}

TEST(Messages, TaggedFrameRoundTrip) {
  const Bytes f =
      tagged_frame(FrameType::kTokenRequest, 0xdeadbeefull, str_to_bytes("p"));
  Reader r(f);
  EXPECT_EQ(read_frame_type(r), FrameType::kTokenRequest);
  const TaggedBody body = read_tagged(r);
  EXPECT_EQ(body.tag, 0xdeadbeefull);
  EXPECT_EQ(bytes_to_str(body.payload), "p");
}

TEST(Messages, ContentBodyRoundTripClearGuid) {
  TestRng rng(1);
  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Guid::random(rng).to_bytes();
  body.ttl_seconds = 123.456;
  body.abe_ciphertext = rng.bytes(64);
  const Bytes wire = content_body(body);
  Reader r2(wire);
  const ContentBody out = read_content(r2);
  EXPECT_FALSE(out.guid_wrapped);
  EXPECT_EQ(out.guid_field, body.guid_field);
  EXPECT_NEAR(out.ttl_seconds, body.ttl_seconds, 0.001);  // ms precision
  EXPECT_EQ(out.abe_ciphertext, body.abe_ciphertext);
}

TEST(Messages, ContentBodyRoundTripWrappedGuid) {
  TestRng rng(2);
  ContentBody body;
  body.guid_wrapped = true;
  body.guid_field = rng.bytes(100);  // opaque envelope, arbitrary size
  body.ttl_seconds = 1.0;
  body.abe_ciphertext = rng.bytes(8);
  const Bytes wire = content_body(body);
  Reader r(wire);
  const ContentBody out = read_content(r);
  EXPECT_TRUE(out.guid_wrapped);
  EXPECT_EQ(out.guid_field, body.guid_field);
}

TEST(Messages, ClearGuidMustBeExactly16Bytes) {
  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Bytes(15);
  body.ttl_seconds = 1.0;
  const Bytes wire = content_body(body);
  Reader r(wire);
  EXPECT_THROW(read_content(r), std::invalid_argument);
}

TEST(Messages, CertificateRoundTripAndTamperDetection) {
  const auto pp = pairing::Pairing::test_pairing();
  TestRng rng(3);
  const auto ca = pairing::schnorr_keygen(*pp, rng);
  Certificate cert;
  cert.pseudonym = "alice";
  cert.role = Certificate::Role::kSubscriber;
  cert.signature =
      pairing::schnorr_sign(*pp, ca.secret, cert.signed_body(), rng);

  const auto cert2 = Certificate::deserialize(*pp, cert.serialize(*pp));
  EXPECT_TRUE(cert2.verify(*pp, ca.public_key));

  Certificate forged = cert2;
  forged.role = Certificate::Role::kPublisher;
  EXPECT_FALSE(forged.verify(*pp, ca.public_key));
  Certificate renamed = cert2;
  renamed.pseudonym = "mallory";
  EXPECT_FALSE(renamed.verify(*pp, ca.public_key));
}

TEST(Messages, CertificateRejectsBadRole) {
  const auto pp = pairing::Pairing::test_pairing();
  TestRng rng(4);
  const auto ca = pairing::schnorr_keygen(*pp, rng);
  Certificate cert;
  cert.pseudonym = "x";
  cert.signature = pairing::schnorr_sign(*pp, ca.secret, cert.signed_body(), rng);
  Bytes wire = cert.serialize(*pp);
  // Role byte is right after the 4-byte length + pseudonym.
  wire[4 + 1] = 99;
  EXPECT_THROW(Certificate::deserialize(*pp, wire), std::invalid_argument);
}

}  // namespace
}  // namespace p3s::core
