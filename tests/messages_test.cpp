#include <gtest/gtest.h>

#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "net/async.hpp"
#include "p3s/credentials.hpp"
#include "p3s/messages.hpp"
#include "p3s/system.hpp"

namespace p3s::core {
namespace {

TEST(Messages, FrameTypeRoundTrip) {
  for (std::uint8_t t = 1; t <= 25; ++t) {
    const Bytes f = frame(static_cast<FrameType>(t), str_to_bytes("body"));
    Reader r(f);
    EXPECT_EQ(static_cast<std::uint8_t>(read_frame_type(r)), t);
    EXPECT_EQ(bytes_to_str(r.raw(4)), "body");
  }
}

TEST(Messages, UnknownFrameTypeRejected) {
  for (std::uint8_t t : {std::uint8_t{0}, std::uint8_t{26}, std::uint8_t{255}}) {
    Bytes f{t};
    Reader r(f);
    EXPECT_THROW(read_frame_type(r), std::invalid_argument) << int(t);
  }
  Reader empty(Bytes{});
  EXPECT_THROW(read_frame_type(empty), std::out_of_range);
}

TEST(Messages, PublishRequestBodyRoundTrip) {
  TestRng rng(11);
  PublishRequestBody body;
  body.request_id = rng.bytes(kRequestIdSize);
  body.content.guid_wrapped = false;
  body.content.guid_field = Guid::random(rng).to_bytes();
  body.content.ttl_seconds = 42.5;
  body.content.abe_ciphertext = rng.bytes(48);
  body.hve_ciphertext = rng.bytes(96);
  const Bytes wire = publish_request_body(body);
  Reader r(wire);
  const PublishRequestBody out = read_publish_request(r);
  EXPECT_EQ(out.request_id, body.request_id);
  EXPECT_EQ(out.content.guid_field, body.content.guid_field);
  EXPECT_NEAR(out.content.ttl_seconds, body.content.ttl_seconds, 0.001);
  EXPECT_EQ(out.content.abe_ciphertext, body.content.abe_ciphertext);
  EXPECT_EQ(out.hve_ciphertext, body.hve_ciphertext);
}

TEST(Messages, StoreRequestBodyRoundTrip) {
  TestRng rng(12);
  StoreRequestBody body;
  body.request_id = rng.bytes(kRequestIdSize);
  body.content.guid_wrapped = false;
  body.content.guid_field = Guid::random(rng).to_bytes();
  body.content.ttl_seconds = 7.0;
  body.content.abe_ciphertext = rng.bytes(16);
  const Bytes wire = store_request_body(body);
  Reader r(wire);
  const StoreRequestBody out = read_store_request(r);
  EXPECT_EQ(out.request_id, body.request_id);
  EXPECT_EQ(out.content.guid_field, body.content.guid_field);
  EXPECT_EQ(out.content.abe_ciphertext, body.content.abe_ciphertext);
}

TEST(Messages, RequestIdMustBeExactly16Bytes) {
  TestRng rng(13);
  PublishRequestBody body;
  body.request_id = rng.bytes(kRequestIdSize - 1);
  body.content.guid_wrapped = false;
  body.content.guid_field = Guid::random(rng).to_bytes();
  body.content.ttl_seconds = 1.0;
  EXPECT_THROW(publish_request_body(body), std::invalid_argument);
  StoreRequestBody store;
  store.request_id = rng.bytes(kRequestIdSize + 1);
  store.content = body.content;
  EXPECT_THROW(store_request_body(store), std::invalid_argument);
}

TEST(Messages, TaggedFrameRoundTrip) {
  const Bytes f =
      tagged_frame(FrameType::kTokenRequest, 0xdeadbeefull, str_to_bytes("p"));
  Reader r(f);
  EXPECT_EQ(read_frame_type(r), FrameType::kTokenRequest);
  const TaggedBody body = read_tagged(r);
  EXPECT_EQ(body.tag, 0xdeadbeefull);
  EXPECT_EQ(bytes_to_str(body.payload), "p");
}

TEST(Messages, ContentBodyRoundTripClearGuid) {
  TestRng rng(1);
  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Guid::random(rng).to_bytes();
  body.ttl_seconds = 123.456;
  body.abe_ciphertext = rng.bytes(64);
  const Bytes wire = content_body(body);
  Reader r2(wire);
  const ContentBody out = read_content(r2);
  EXPECT_FALSE(out.guid_wrapped);
  EXPECT_EQ(out.guid_field, body.guid_field);
  EXPECT_NEAR(out.ttl_seconds, body.ttl_seconds, 0.001);  // ms precision
  EXPECT_EQ(out.abe_ciphertext, body.abe_ciphertext);
}

TEST(Messages, ContentBodyRoundTripWrappedGuid) {
  TestRng rng(2);
  ContentBody body;
  body.guid_wrapped = true;
  body.guid_field = rng.bytes(100);  // opaque envelope, arbitrary size
  body.ttl_seconds = 1.0;
  body.abe_ciphertext = rng.bytes(8);
  const Bytes wire = content_body(body);
  Reader r(wire);
  const ContentBody out = read_content(r);
  EXPECT_TRUE(out.guid_wrapped);
  EXPECT_EQ(out.guid_field, body.guid_field);
}

TEST(Messages, ClearGuidMustBeExactly16Bytes) {
  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Bytes(15);
  body.ttl_seconds = 1.0;
  const Bytes wire = content_body(body);
  Reader r(wire);
  EXPECT_THROW(read_content(r), std::invalid_argument);
}

// Malformed-frame regressions distilled from the fuzz corpus
// (fuzz/corpus/frames/): every shape an attacker can put on the wire must
// be rejected with an exception the channel loop catches — never a crash,
// hang, or unbounded allocation.

TEST(Messages, TruncatedTaggedBodyRejected) {
  // fuzz seed truncated_tagged.bin: length prefix promises 100 bytes,
  // only 5 follow.
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kTokenRequest));
  w.u64(1);
  w.u32(100);
  w.raw(str_to_bytes("short"));
  Reader r(w.data());
  EXPECT_EQ(read_frame_type(r), FrameType::kTokenRequest);
  EXPECT_THROW(read_tagged(r), std::out_of_range);
  // Tag alone, no payload length at all.
  Writer w2;
  w2.u64(7);
  Reader r2(w2.data());
  EXPECT_THROW(read_tagged(r2), std::out_of_range);
}

TEST(Messages, OversizedLengthPrefixRejectedWithoutAllocating) {
  // fuzz seed oversized_len.bin: a 4 GiB length claim on a tiny frame. The
  // bounds check must fire on `remaining()`, before any allocation of the
  // claimed size is attempted.
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kPublishContent));
  w.u8(0);
  w.u32(0xffffffffu);
  Reader r(w.data());
  EXPECT_EQ(read_frame_type(r), FrameType::kPublishContent);
  EXPECT_THROW(read_content(r), std::out_of_range);
}

TEST(Messages, TypeConfusedBodyRejected) {
  // fuzz seed type_confused.bin: a valid *tagged* body sent under a
  // *content* frame type, and vice versa. The wrong decoder must throw
  // rather than misinterpret.
  // (The precise exception depends on where the misparse trips; the channel
  // loop catches std::exception, so that is the contract asserted.)
  const Bytes tagged =
      tagged_frame(FrameType::kContentRequest, 7, str_to_bytes("blob"));
  Reader r(BytesView(tagged).subspan(1));  // skip type byte, keep body
  EXPECT_THROW(read_content(r), std::exception);

  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Bytes(Guid::kSize, 0xaa);
  body.ttl_seconds = 1.0;
  const Bytes content = content_body(body);
  Reader r2(content);
  EXPECT_THROW(read_tagged(r2), std::exception);
}

TEST(Messages, TruncatedContentBodyRejected) {
  TestRng rng(5);
  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Guid::random(rng).to_bytes();
  body.ttl_seconds = 2.5;
  body.abe_ciphertext = rng.bytes(32);
  const Bytes wire = content_body(body);
  // Every proper prefix must throw; none may crash or succeed.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Reader r(BytesView(wire).first(cut));
    EXPECT_THROW(read_content(r), std::exception) << cut;
  }
}

TEST(Messages, TrailingGarbageAfterBodyRejected) {
  // A trailer is only legal when it parses as one complete pad field
  // (u32-length-prefixed bytes, DESIGN.md §11); anything else still throws.
  Bytes wire = tagged_frame(FrameType::kAraResponse, 3, str_to_bytes("ok"));
  wire.push_back(0x00);  // not a complete length-prefixed field
  Reader r(wire);
  EXPECT_EQ(read_frame_type(r), FrameType::kAraResponse);
  EXPECT_THROW(read_tagged(r), std::exception);
}

TEST(Messages, BucketPaddingSkippedAndBoundedTrailerEnforced) {
  TestRng rng(7);
  const Bytes base = tagged_frame(FrameType::kAraResponse, 3, str_to_bytes("ok"));

  // Padded frames land exactly on the bucket boundary and parse cleanly.
  const Bytes padded = pad_to_bucket(base, 96, rng);
  EXPECT_EQ(padded.size() % 96, 0u);
  EXPECT_GE(padded.size(), base.size());
  Reader pr(padded);
  EXPECT_EQ(read_frame_type(pr), FrameType::kAraResponse);
  const TaggedBody body = read_tagged(pr);
  EXPECT_EQ(body.tag, 3u);
  EXPECT_EQ(body.payload, str_to_bytes("ok"));

  // Garbage AFTER the pad field is still trailing garbage.
  Bytes padded_plus = padded;
  padded_plus.push_back(0xff);
  Reader gr(padded_plus);
  EXPECT_EQ(read_frame_type(gr), FrameType::kAraResponse);
  EXPECT_THROW(read_tagged(gr), std::invalid_argument);

  // bucket = 0 disables padding entirely.
  EXPECT_EQ(pad_to_bucket(base, 0, rng), base);
}

TEST(Messages, CertificateRoundTripAndTamperDetection) {
  const auto pp = pairing::Pairing::test_pairing();
  TestRng rng(3);
  const auto ca = pairing::schnorr_keygen(*pp, rng);
  Certificate cert;
  cert.pseudonym = "alice";
  cert.role = Certificate::Role::kSubscriber;
  cert.signature =
      pairing::schnorr_sign(*pp, ca.secret, cert.signed_body(), rng);

  const auto cert2 = Certificate::deserialize(*pp, cert.serialize(*pp));
  EXPECT_TRUE(cert2.verify(*pp, ca.public_key));

  Certificate forged = cert2;
  forged.role = Certificate::Role::kPublisher;
  EXPECT_FALSE(forged.verify(*pp, ca.public_key));
  Certificate renamed = cert2;
  renamed.pseudonym = "mallory";
  EXPECT_FALSE(renamed.verify(*pp, ca.public_key));
}

// --- Duplicate-frame (replay) cases ------------------------------------------
// An attacker (or a retrying peer) can put any previously observed frame on
// the wire again. Every handler must be idempotent: no crash, no second
// delivery, no duplicated server state. Channel-sealed records are already
// rejected by the session sequence numbers, so these tests target the frames
// that travel outside a channel (RS store, token response) plus the reliable
// broadcast stream, which dedupes by index.

class ReplayP3sTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema =
        pbe::MetadataSchema({{"topic", {"a", "b"}}, {"tier", {"x", "y"}}});
    config.reliability.enabled = true;
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
    sub_ = system_->make_subscriber("sub1", "sub1-pseud", {"m"}, rng_);
    pub_ = system_->make_publisher("pub1", "press", rng_);
    net_.run_until_idle();
    sub_->subscribe({{"topic", "a"}});
    net_.run_until_idle();
  }

  /// Latest frame delivered to `to` whose first byte is `type`.
  Bytes last_frame_to(const std::string& to, FrameType type) {
    for (auto it = net_.traffic().rbegin(); it != net_.traffic().rend(); ++it) {
      if (it->to == to && !it->frame.empty() &&
          it->frame[0] == static_cast<std::uint8_t>(type)) {
        return it->frame;
      }
    }
    ADD_FAILURE() << "no frame of type " << int(static_cast<std::uint8_t>(type))
                  << " to " << to << " on the wire";
    return {};
  }

  net::AsyncNetwork net_;
  TestRng rng_{0x4e91};
  std::unique_ptr<P3sSystem> system_;
  std::unique_ptr<Subscriber> sub_;
  std::unique_ptr<Publisher> pub_;
};

TEST_F(ReplayP3sTest, RsStoreReplayIsIdempotent) {
  pub_->publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("once"),
                abe::parse_policy("m"), 1e6);
  net_.run_until_idle();
  ASSERT_EQ(system_->rs().stored_items(), 1u);
  ASSERT_EQ(sub_->deliveries().size(), 1u);

  // Replay the DS→RS store verbatim: one slot (GUID overwrite), and the
  // re-acked request id finds no pending publish at the DS — no second
  // fan-out, no second delivery.
  const Bytes store = last_frame_to(system_->directory().rs_name,
                                    FrameType::kStoreRequest);
  net_.send(system_->directory().ds_name, system_->directory().rs_name, store);
  net_.run_until_idle();
  EXPECT_EQ(system_->rs().stored_items(), 1u);
  EXPECT_EQ(sub_->deliveries().size(), 1u);
}

TEST_F(ReplayP3sTest, TokenResponseReplayIsIgnored) {
  ASSERT_EQ(sub_->token_count(), 1u);
  // The response's tag was consumed with its Ks on first receipt; replaying
  // the exact ciphertext finds no pending request and changes nothing.
  const Bytes resp = last_frame_to("sub1", FrameType::kTokenResponse);
  net_.send(system_->directory().pbe_ts_name, "sub1", resp);
  net_.run_until_idle();
  EXPECT_EQ(sub_->token_count(), 1u);
}

TEST_F(ReplayP3sTest, DsNotifyReplayNeverRedelivers) {
  pub_->publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("once"),
                abe::parse_policy("m"), 1e6);
  net_.run_until_idle();
  ASSERT_EQ(sub_->deliveries().size(), 1u);

  // Ask the DS to replay its whole broadcast ring (what a retried sync does).
  // Every replayed index is recognized as already processed.
  const std::size_t dupes_before = sub_->duplicate_metadata();
  sub_->request_metadata_replay(0);
  net_.run_until_idle();
  EXPECT_EQ(sub_->deliveries().size(), 1u);
  EXPECT_GT(sub_->duplicate_metadata(), dupes_before);
  EXPECT_EQ(sub_->missing_metadata_count(), 0u);
}

TEST(Messages, CertificateRejectsBadRole) {
  const auto pp = pairing::Pairing::test_pairing();
  TestRng rng(4);
  const auto ca = pairing::schnorr_keygen(*pp, rng);
  Certificate cert;
  cert.pseudonym = "x";
  cert.signature = pairing::schnorr_sign(*pp, ca.secret, cert.signed_body(), rng);
  Bytes wire = cert.serialize(*pp);
  // Role byte is right after the 4-byte length + pseudonym.
  wire[4 + 1] = 99;
  EXPECT_THROW(Certificate::deserialize(*pp, wire), std::invalid_argument);
}

}  // namespace
}  // namespace p3s::core
