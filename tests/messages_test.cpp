#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "p3s/credentials.hpp"
#include "p3s/messages.hpp"

namespace p3s::core {
namespace {

TEST(Messages, FrameTypeRoundTrip) {
  for (std::uint8_t t = 1; t <= 18; ++t) {
    const Bytes f = frame(static_cast<FrameType>(t), str_to_bytes("body"));
    Reader r(f);
    EXPECT_EQ(static_cast<std::uint8_t>(read_frame_type(r)), t);
    EXPECT_EQ(bytes_to_str(r.raw(4)), "body");
  }
}

TEST(Messages, UnknownFrameTypeRejected) {
  for (std::uint8_t t : {std::uint8_t{0}, std::uint8_t{19}, std::uint8_t{255}}) {
    Bytes f{t};
    Reader r(f);
    EXPECT_THROW(read_frame_type(r), std::invalid_argument) << int(t);
  }
  Reader empty(Bytes{});
  EXPECT_THROW(read_frame_type(empty), std::out_of_range);
}

TEST(Messages, TaggedFrameRoundTrip) {
  const Bytes f =
      tagged_frame(FrameType::kTokenRequest, 0xdeadbeefull, str_to_bytes("p"));
  Reader r(f);
  EXPECT_EQ(read_frame_type(r), FrameType::kTokenRequest);
  const TaggedBody body = read_tagged(r);
  EXPECT_EQ(body.tag, 0xdeadbeefull);
  EXPECT_EQ(bytes_to_str(body.payload), "p");
}

TEST(Messages, ContentBodyRoundTripClearGuid) {
  TestRng rng(1);
  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Guid::random(rng).to_bytes();
  body.ttl_seconds = 123.456;
  body.abe_ciphertext = rng.bytes(64);
  const Bytes wire = content_body(body);
  Reader r2(wire);
  const ContentBody out = read_content(r2);
  EXPECT_FALSE(out.guid_wrapped);
  EXPECT_EQ(out.guid_field, body.guid_field);
  EXPECT_NEAR(out.ttl_seconds, body.ttl_seconds, 0.001);  // ms precision
  EXPECT_EQ(out.abe_ciphertext, body.abe_ciphertext);
}

TEST(Messages, ContentBodyRoundTripWrappedGuid) {
  TestRng rng(2);
  ContentBody body;
  body.guid_wrapped = true;
  body.guid_field = rng.bytes(100);  // opaque envelope, arbitrary size
  body.ttl_seconds = 1.0;
  body.abe_ciphertext = rng.bytes(8);
  const Bytes wire = content_body(body);
  Reader r(wire);
  const ContentBody out = read_content(r);
  EXPECT_TRUE(out.guid_wrapped);
  EXPECT_EQ(out.guid_field, body.guid_field);
}

TEST(Messages, ClearGuidMustBeExactly16Bytes) {
  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Bytes(15);
  body.ttl_seconds = 1.0;
  const Bytes wire = content_body(body);
  Reader r(wire);
  EXPECT_THROW(read_content(r), std::invalid_argument);
}

// Malformed-frame regressions distilled from the fuzz corpus
// (fuzz/corpus/frames/): every shape an attacker can put on the wire must
// be rejected with an exception the channel loop catches — never a crash,
// hang, or unbounded allocation.

TEST(Messages, TruncatedTaggedBodyRejected) {
  // fuzz seed truncated_tagged.bin: length prefix promises 100 bytes,
  // only 5 follow.
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kTokenRequest));
  w.u64(1);
  w.u32(100);
  w.raw(str_to_bytes("short"));
  Reader r(w.data());
  EXPECT_EQ(read_frame_type(r), FrameType::kTokenRequest);
  EXPECT_THROW(read_tagged(r), std::out_of_range);
  // Tag alone, no payload length at all.
  Writer w2;
  w2.u64(7);
  Reader r2(w2.data());
  EXPECT_THROW(read_tagged(r2), std::out_of_range);
}

TEST(Messages, OversizedLengthPrefixRejectedWithoutAllocating) {
  // fuzz seed oversized_len.bin: a 4 GiB length claim on a tiny frame. The
  // bounds check must fire on `remaining()`, before any allocation of the
  // claimed size is attempted.
  Writer w;
  w.u8(static_cast<std::uint8_t>(FrameType::kPublishContent));
  w.u8(0);
  w.u32(0xffffffffu);
  Reader r(w.data());
  EXPECT_EQ(read_frame_type(r), FrameType::kPublishContent);
  EXPECT_THROW(read_content(r), std::out_of_range);
}

TEST(Messages, TypeConfusedBodyRejected) {
  // fuzz seed type_confused.bin: a valid *tagged* body sent under a
  // *content* frame type, and vice versa. The wrong decoder must throw
  // rather than misinterpret.
  // (The precise exception depends on where the misparse trips; the channel
  // loop catches std::exception, so that is the contract asserted.)
  const Bytes tagged =
      tagged_frame(FrameType::kContentRequest, 7, str_to_bytes("blob"));
  Reader r(BytesView(tagged).subspan(1));  // skip type byte, keep body
  EXPECT_THROW(read_content(r), std::exception);

  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Bytes(Guid::kSize, 0xaa);
  body.ttl_seconds = 1.0;
  const Bytes content = content_body(body);
  Reader r2(content);
  EXPECT_THROW(read_tagged(r2), std::exception);
}

TEST(Messages, TruncatedContentBodyRejected) {
  TestRng rng(5);
  ContentBody body;
  body.guid_wrapped = false;
  body.guid_field = Guid::random(rng).to_bytes();
  body.ttl_seconds = 2.5;
  body.abe_ciphertext = rng.bytes(32);
  const Bytes wire = content_body(body);
  // Every proper prefix must throw; none may crash or succeed.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Reader r(BytesView(wire).first(cut));
    EXPECT_THROW(read_content(r), std::exception) << cut;
  }
}

TEST(Messages, TrailingGarbageAfterBodyRejected) {
  Bytes wire = tagged_frame(FrameType::kAraResponse, 3, str_to_bytes("ok"));
  wire.push_back(0x00);
  Reader r(wire);
  EXPECT_EQ(read_frame_type(r), FrameType::kAraResponse);
  EXPECT_THROW(read_tagged(r), std::invalid_argument);
}

TEST(Messages, CertificateRoundTripAndTamperDetection) {
  const auto pp = pairing::Pairing::test_pairing();
  TestRng rng(3);
  const auto ca = pairing::schnorr_keygen(*pp, rng);
  Certificate cert;
  cert.pseudonym = "alice";
  cert.role = Certificate::Role::kSubscriber;
  cert.signature =
      pairing::schnorr_sign(*pp, ca.secret, cert.signed_body(), rng);

  const auto cert2 = Certificate::deserialize(*pp, cert.serialize(*pp));
  EXPECT_TRUE(cert2.verify(*pp, ca.public_key));

  Certificate forged = cert2;
  forged.role = Certificate::Role::kPublisher;
  EXPECT_FALSE(forged.verify(*pp, ca.public_key));
  Certificate renamed = cert2;
  renamed.pseudonym = "mallory";
  EXPECT_FALSE(renamed.verify(*pp, ca.public_key));
}

TEST(Messages, CertificateRejectsBadRole) {
  const auto pp = pairing::Pairing::test_pairing();
  TestRng rng(4);
  const auto ca = pairing::schnorr_keygen(*pp, rng);
  Certificate cert;
  cert.pseudonym = "x";
  cert.signature = pairing::schnorr_sign(*pp, ca.secret, cert.signed_body(), rng);
  Bytes wire = cert.serialize(*pp);
  // Role byte is right after the 4-byte length + pseudonym.
  wire[4 + 1] = 99;
  EXPECT_THROW(Certificate::deserialize(*pp, wire), std::invalid_argument);
}

}  // namespace
}  // namespace p3s::core
