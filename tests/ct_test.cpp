// dudect-style statistical constant-time verification (Reparaz, Balasch,
// Verbauwhede: "Dude, is my code constant time?"). For each secret-bearing
// decision point we time two input classes that differ only in WHERE the
// secret-dependent difference sits (first byte vs last byte) and run
// Welch's t-test on the cropped timing populations. An early-exit compare
// separates the classes by orders of magnitude; a constant-time one leaves
// |t| near zero. The NaiveCompare control proves the harness can actually
// detect a leak on this machine, so the passing assertions are not vacuous.
//
// Covered decision points:
//   - crypto::ct_equal itself (the blessed primitive),
//   - crypto::hmac_verify (MAC check),
//   - crypto::aead_decrypt tag rejection (poly1305 tag, pre-decrypt),
//   - pbe::hve_query_bytes match decision (KEM query + DEM tag check).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <vector>

#include "abe/policy.hpp"
#include "common/guid.hpp"
#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/ct.hpp"
#include "crypto/hmac.hpp"
#include "net/network.hpp"
#include "p3s/system.hpp"
#include "pairing/ecies.hpp"
#include "pairing/pairing.hpp"
#include "pbe/hve.hpp"

namespace p3s {
namespace {

// Samples whose |t| must stay below this bound for a constant-time pass.
// dudect flags a leak at |t| > 4.5 under lab conditions; shared CI runners
// are noisier, so the pass bound is generous — a genuine early exit lands
// two orders of magnitude above it (see the NaiveCompare control).
constexpr double kMaxCtT = 15.0;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Welch's t-statistic between two samples.
double welch_t(const std::vector<double>& a, const std::vector<double>& b) {
  const auto stats = [](const std::vector<double>& v) {
    double mean = 0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0;
    for (double x : v) var += (x - mean) * (x - mean);
    var /= static_cast<double>(v.size() - 1);
    return std::pair<double, double>(mean, var);
  };
  const auto [ma, va] = stats(a);
  const auto [mb, vb] = stats(b);
  const double denom = std::sqrt(va / static_cast<double>(a.size()) +
                                 vb / static_cast<double>(b.size()));
  if (denom == 0) return 0;
  return (ma - mb) / denom;
}

// Drop the slowest tail of BOTH classes above one pooled percentile cutoff
// (dudect's cropping: scheduler preemptions and cache evictions live in the
// upper tail and would otherwise dominate the variance).
void crop(std::vector<double>& a, std::vector<double>& b, double keep) {
  std::vector<double> pooled;
  pooled.reserve(a.size() + b.size());
  pooled.insert(pooled.end(), a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());
  std::sort(pooled.begin(), pooled.end());
  const double cutoff =
      pooled[static_cast<std::size_t>(keep * static_cast<double>(pooled.size() - 1))];
  const auto apply = [cutoff](std::vector<double>& v) {
    std::erase_if(v, [cutoff](double x) { return x > cutoff; });
  };
  apply(a);
  apply(b);
}

// Time `op(cls)` n_samples times per class in randomly interleaved order
// (decorrelates clock drift and thermal trends from the class label), crop,
// and return Welch's t.
template <typename Op>
double measure_t(Op&& op, std::size_t n_samples, TestRng& rng) {
  std::vector<std::uint8_t> schedule;
  schedule.reserve(2 * n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    schedule.push_back(0);
    schedule.push_back(1);
  }
  for (std::size_t i = schedule.size(); i-- > 1;) {
    std::swap(schedule[i], schedule[rng.uniform(i + 1)]);
  }
  std::vector<double> cls0, cls1;
  cls0.reserve(n_samples);
  cls1.reserve(n_samples);
  op(0);  // warm caches before the first timed sample
  op(1);
  for (std::uint8_t cls : schedule) {
    const double t0 = now_seconds();
    op(cls);
    const double dt = now_seconds() - t0;
    (cls == 0 ? cls0 : cls1).push_back(dt);
  }
  crop(cls0, cls1, 0.9);
  return welch_t(cls0, cls1);
}

// --- the blessed primitive ---------------------------------------------------

// NOTE on harness hygiene, here and below: both classes run against the
// SAME buffer, mutated in place outside the timed region. Giving each class
// its own allocation lets address/alignment effects masquerade as a class
// signal (observed t ≈ 22 on a perfectly constant-time compare).
TEST(ConstantTime, CtEqualIndependentOfMismatchPosition) {
  TestRng rng(0xc7);
  const Bytes secret = rng.bytes(64);
  Bytes probe = secret;
  volatile bool sink = false;
  const double t = measure_t(
      [&](std::uint8_t cls) {
        probe = secret;
        probe[cls == 0 ? 0 : 63] ^= 1;  // mismatch position IS the class
        bool acc = false;
        for (int i = 0; i < 64; ++i) acc ^= crypto::ct_equal(secret, probe);
        sink = acc;
      },
      4000, rng);
  EXPECT_LT(std::abs(t), kMaxCtT) << "ct_equal timing leaks mismatch position";
}

TEST(ConstantTime, HmacVerifyIndependentOfMismatchPosition) {
  TestRng rng(0xc8);
  const Bytes key = rng.bytes(32);
  const Bytes msg = rng.bytes(256);
  const Bytes mac = crypto::hmac_sha256(key, msg);
  Bytes probe = mac;
  volatile bool sink = false;
  const double t = measure_t(
      [&](std::uint8_t cls) {
        probe = mac;
        probe[cls == 0 ? 0 : mac.size() - 1] ^= 1;
        bool acc = false;
        for (int i = 0; i < 4; ++i) acc ^= crypto::hmac_verify(key, msg, probe);
        sink = acc;
      },
      2500, rng);
  EXPECT_LT(std::abs(t), kMaxCtT) << "hmac_verify timing leaks mismatch position";
}

TEST(ConstantTime, AeadTagRejectIndependentOfMismatchPosition) {
  TestRng rng(0xc9);
  const Bytes key = rng.bytes(32);
  const Bytes aad = rng.bytes(16);
  const auto ct = crypto::aead_encrypt(key, rng.bytes(512), aad, rng);
  // Corrupt the poly1305 tag (final 16 bytes of the body) at its first vs
  // last byte; both classes take the reject path before any decryption.
  auto probe = ct;
  volatile bool sink = false;
  const double t = measure_t(
      [&](std::uint8_t cls) {
        const std::size_t flip =
            probe.body.size() - (cls == 0 ? 16 : 1);
        probe.body[flip] ^= 1;
        sink = crypto::aead_decrypt(key, probe, aad).has_value();
        probe.body[flip] ^= 1;  // restore
      },
      2500, rng);
  EXPECT_LT(std::abs(t), kMaxCtT) << "AEAD tag reject timing leaks position";
}

// --- HVE match decision ------------------------------------------------------

// The subscriber-side match decision (paper §5: metadata delivery) must not
// reveal WHERE a non-matching broadcast diverged from the token's pattern:
// the query is one full-width multi-pairing product and the DEM tag check
// is ct_equal, so a mismatch at position 0 must cost the same as one at the
// last position.
TEST(ConstantTime, HveMatchDecisionIndependentOfMismatchPosition) {
  constexpr std::size_t kWidth = 8;
  const auto pp = pairing::Pairing::test_pairing();
  TestRng rng(0xca);
  const auto keys = pbe::hve_setup(pp, kWidth, rng);

  // Token: all-concrete pattern of ones.
  const pbe::Pattern want(kWidth, 1);
  const auto token = pbe::hve_gen_token(keys, want, rng);

  // Class 0: attribute vector mismatches the pattern only at position 0;
  // class 1: only at the last position. Both fail the predicate.
  pbe::BitVector x_first(kWidth, 1), x_last(kWidth, 1);
  x_first[0] = 0;
  x_last[kWidth - 1] = 0;
  const Bytes payload = rng.bytes(16);
  constexpr std::size_t kPool = 8;  // fresh randomness per pool entry
  std::vector<Bytes> blobs_first, blobs_last;
  for (std::size_t i = 0; i < kPool; ++i) {
    blobs_first.push_back(pbe::hve_encrypt_bytes(keys.pk, x_first, payload, rng));
    blobs_last.push_back(pbe::hve_encrypt_bytes(keys.pk, x_last, payload, rng));
  }
  std::size_t round = 0;
  volatile bool sink = false;
  const double t = measure_t(
      [&](std::uint8_t cls) {
        const auto& blobs = cls == 0 ? blobs_first : blobs_last;
        const Bytes& blob = blobs[round++ % kPool];
        sink = pbe::hve_query_bytes(*pp, token, blob).has_value();
      },
      150, rng);
  EXPECT_LT(std::abs(t), kMaxCtT) << "HVE match decision leaks mismatch position";
}

// --- sensitivity control -----------------------------------------------------

// A deliberately variable-time compare over the same harness: memcmp early-
// exits at the first differing byte, so first-byte vs last-byte mismatch on
// a 4 KiB buffer must separate cleanly. If this control ever fails, the
// machine is too noisy for the assertions above to mean anything — treat
// its failure as a harness bug, not a crypto regression.
TEST(ConstantTime, NaiveCompareLeaksAsExpected) {
  TestRng rng(0xcb);
  const Bytes secret = rng.bytes(4096);
  Bytes probe = secret;
  volatile int sink = 0;
  const double t = measure_t(
      [&](std::uint8_t cls) {
        probe = secret;
        probe[cls == 0 ? 0 : 4095] ^= 1;
        int acc = 0;
        for (int i = 0; i < 16; ++i) {
          // Value barrier: keeps the pure, identical-argument memcmp calls
          // from being folded into one (which would shrink the signal).
          const std::uint8_t* p = probe.data();
          __asm__ __volatile__("" : "+r"(p));
          // p3s:lint-allow(banned-api) — deliberate leak for calibration
          acc ^= std::memcmp(secret.data(), p, secret.size());
        }
        sink = acc;
      },
      4000, rng);
  EXPECT_GT(std::abs(t), kMaxCtT)
      << "harness failed to detect a known-variable-time compare";
}

// --- wire-shape indistinguishability (DESIGN.md §11) -------------------------
// The timing harness above covers the LOCAL match decision; this covers the
// WIRE: with response padding on, an eavesdropper watching the RS must see
// the same response count and the same frame size whether a content fetch
// hit a stored item or missed. The unpadded control proves the assertion is
// not vacuous (hit and miss genuinely differ in size without the defense).

namespace wire_shape {

/// Sizes of the kContentResponse frames the RS emitted for one hit and one
/// miss fetch under `pad_bucket`.
std::pair<std::size_t, std::size_t> hit_miss_response_sizes(
    std::size_t pad_bucket) {
  net::DirectNetwork net;
  TestRng rng(0x3147);
  const pairing::PairingPtr pp = pairing::Pairing::test_pairing();
  core::P3sConfig config;
  config.pairing = pp;
  config.schema = pbe::MetadataSchema(
      {{"sector", {"finance", "tech"}}, {"grade", {"x", "y"}}});
  config.rs_grace_seconds = 1e9;
  config.rs_response_pad_bucket = pad_bucket;
  core::P3sSystem system(net, std::move(config), rng);
  auto sub = system.make_subscriber("sub1", "alice", {"m"}, rng);
  auto pub = system.make_publisher("pub1", "press", rng);
  sub->subscribe({{"sector", "finance"}});
  EXPECT_EQ(sub->token_count(), 1u);

  const std::string rs = system.directory().rs_name;
  const auto response_sizes = [&] {
    std::vector<std::size_t> sizes;
    for (const auto& rec : net.traffic()) {
      if (rec.from == rs) {
        Reader r(rec.frame);
        if (core::read_frame_type(r) == core::FrameType::kContentResponse) {
          sizes.push_back(rec.size);
        }
      }
    }
    return sizes;
  };

  // Hit: a genuine publication the subscriber matches and fetches.
  pub->publish({{"sector", "finance"}, {"grade", "x"}},
               str_to_bytes("wire-shape-payload"), abe::parse_policy("m"),
               1e9);
  EXPECT_EQ(sub->deliveries().size(), 1u);
  auto sizes = response_sizes();
  EXPECT_EQ(sizes.size(), 1u);  // exactly one response per fetch
  const std::size_t hit_size = sizes.empty() ? 0 : sizes.back();

  // Miss: the same 2-tuple request shape for a GUID the RS never stored
  // (byte-compatible with Subscriber::request_content and the relay's
  // decoys). The observer endpoint just swallows the reply.
  net.register_endpoint("probe", [](const std::string&, BytesView) {});
  Writer plain;
  plain.bytes(rng.bytes(32));
  plain.raw(Guid::random(rng).to_bytes());
  const Bytes blob = pairing::ecies_encrypt(*pp, system.directory().rs_pk,
                                            plain.data(), rng);
  net.send("probe", rs,
           core::tagged_frame(core::FrameType::kContentRequest, 7, blob));
  sizes = response_sizes();
  EXPECT_EQ(sizes.size(), 2u);
  const std::size_t miss_size = sizes.size() < 2 ? 0 : sizes.back();
  return {hit_size, miss_size};
}

}  // namespace wire_shape

TEST(WireShape, PaddedContentResponsesHideHitVsMiss) {
  const auto [hit, miss] = wire_shape::hit_miss_response_sizes(4096);
  EXPECT_EQ(hit, miss)
      << "padded hit/miss responses must be indistinguishable by size";
}

TEST(WireShape, UnpaddedControlActuallyDiffers) {
  const auto [hit, miss] = wire_shape::hit_miss_response_sizes(0);
  EXPECT_NE(hit, miss)
      << "control lost its signal: hit and miss already equal unpadded, "
         "so the padded assertion above would be vacuous";
}

}  // namespace
}  // namespace p3s
