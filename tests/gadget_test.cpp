// The paper's §6.1 semi-formal privacy analysis, executed: each claim about
// who can derive what becomes a machine-checked property of the gadget
// graphs.
#include <gtest/gtest.h>

#include "gadget/gadget.hpp"

namespace p3s::gadget {
namespace {

TEST(Gadget, AndGateRequiresAllInputs) {
  Gadget g;
  const NodeId a = g.add_info("a");
  const NodeId b = g.add_info("b");
  const NodeId c = g.add_info("c", /*sensitive=*/true);
  g.add_derivation("op", {a, b}, c);

  EXPECT_FALSE(g.derivable({a}, c));
  EXPECT_FALSE(g.derivable({b}, c));
  EXPECT_TRUE(g.derivable({a, b}, c));
}

TEST(Gadget, AlternativeDerivationsAreOr) {
  Gadget g;
  const NodeId a = g.add_info("a");
  const NodeId b = g.add_info("b");
  const NodeId m = g.add_info("m");
  g.add_derivation("path1", {a}, m);
  g.add_derivation("path2", {b}, m);
  EXPECT_TRUE(g.derivable({a}, m));
  EXPECT_TRUE(g.derivable({b}, m));
  EXPECT_FALSE(g.derivable({}, m));
}

TEST(Gadget, TransitiveClosure) {
  Gadget g;
  const NodeId a = g.add_info("a");
  const NodeId b = g.add_info("b");
  const NodeId c = g.add_info("c");
  const NodeId d = g.add_info("d");
  g.add_derivation("s1", {a}, b);
  g.add_derivation("s2", {b}, c);
  g.add_derivation("s3", {c}, d);
  EXPECT_TRUE(g.derivable({a}, d));
}

TEST(Gadget, CyclicDependenciesTerminate) {
  Gadget g;
  const NodeId a = g.add_info("a");
  const NodeId b = g.add_info("b");
  g.add_derivation("ab", {a}, b);
  g.add_derivation("ba", {b}, a);
  EXPECT_TRUE(g.derivable({a}, b));
  EXPECT_FALSE(g.derivable({}, a));
}

TEST(Gadget, UnknownElementThrows) {
  Gadget g;
  g.add_info("a");
  EXPECT_THROW(g.find("zzz"), std::out_of_range);
  EXPECT_THROW(g.add_info("a"), std::invalid_argument);
}

// --- PBE gadget: the claims of §6.1 ------------------------------------------------

class PbeGadgetTest : public ::testing::Test {
 protected:
  Gadget g_ = make_pbe_gadget();
};

TEST_F(PbeGadgetTest, HbcSubscriberCannotLearnMetadataFromBroadcast) {
  // An HBC subscriber holds the public key, the ciphertexts it receives,
  // and its own token — but neither x (metadata) nor others' y.
  Knowledge k;
  k.sees_all(g_, {"pk_pbe", "ct_pbe", "t_y", "X"});
  // x is NOT derivable (attribute hiding): it would need the full token set.
  EXPECT_FALSE(g_.derivable(k.nodes(), "x"));
}

TEST_F(PbeGadgetTest, MatchingTokenRevealsExactlyTheGuid) {
  Knowledge k;
  k.sees_all(g_, {"ct_pbe", "t_y"});
  EXPECT_TRUE(g_.derivable(k.nodes(), "m"));   // the GUID
  EXPECT_FALSE(g_.derivable(k.nodes(), "x"));  // not the metadata
}

TEST_F(PbeGadgetTest, TokenProbingAttackRevealsInterest) {
  // Paper (orange edges): "If a participant is able to obtain a token t_y
  // and create encrypted metadata, it will be able to reveal y."
  Knowledge malicious;
  malicious.sees_all(g_, {"t_y", "pk_pbe", "X"});
  EXPECT_TRUE(g_.derivable(malicious.nodes(), "y"));
}

TEST_F(PbeGadgetTest, WithoutTheTokenInterestIsSafe) {
  Knowledge k;
  k.sees_all(g_, {"pk_pbe", "X", "ct_pbe"});
  EXPECT_FALSE(g_.derivable(k.nodes(), "y"));
}

TEST_F(PbeGadgetTest, TokenAccumulationAttackRevealsMetadata) {
  // "if a subscriber can subscribe to all or a significant part of the
  // space of all possible subscription interests ... he can test any given
  // ciphertext against all tokens to reveal the attribute vector x."
  Knowledge hoarder;
  hoarder.sees_all(g_, {"ct_pbe", "T_Y", "Y"});
  EXPECT_TRUE(g_.derivable(hoarder.nodes(), "x"));
}

TEST_F(PbeGadgetTest, PbeTsSeesInterestButNotBinding) {
  // The PBE-TS knows y (plaintext predicate) and its master key, but never
  // sees sid — so the association a_sid_y stays out of reach.
  Knowledge ts;
  ts.sees_all(g_, {"y", "sk_pbe", "pk_pbe"});
  EXPECT_FALSE(g_.derivable(ts.nodes(), "a_sid_y"));
  // Without the anonymizer it ALSO sees sid; then the binding falls.
  Knowledge ts_noanon = ts;
  ts_noanon.sees(g_, "sid");
  EXPECT_TRUE(g_.derivable(ts_noanon.nodes(), "a_sid_y"));
}

TEST_F(PbeGadgetTest, CollusionIsUnionOfIndividualViews) {
  // Two HBC subscribers pooling tokens learn what either could learn alone
  // with the shared material — the paper: "such sharing does not reveal any
  // more information than the union of the information revealed by them
  // individually."
  Knowledge s1;
  s1.sees_all(g_, {"pk_pbe", "ct_pbe", "t_y"});
  Knowledge s2;
  s2.sees_all(g_, {"pk_pbe", "ct_pbe"});
  const auto pooled = Knowledge::pool(s1, s2);
  const auto view1 = g_.derive(s1.nodes());
  const auto view2 = g_.derive(s2.nodes());
  std::set<NodeId> union_views = view1;
  union_views.insert(view2.begin(), view2.end());
  EXPECT_EQ(g_.derive(pooled.nodes()), union_views);
}

TEST_F(PbeGadgetTest, SensitiveExposureReport) {
  Knowledge malicious;
  malicious.sees_all(g_, {"t_y", "pk_pbe", "X", "ct_pbe"});
  const auto exposed = g_.exposed_sensitive(malicious.nodes());
  // y via probing, then m via query.
  EXPECT_NE(std::find(exposed.begin(), exposed.end(), "y"), exposed.end());
  EXPECT_NE(std::find(exposed.begin(), exposed.end(), "m"), exposed.end());
}

// --- CP-ABE gadget --------------------------------------------------------------

class CpabeGadgetTest : public ::testing::Test {
 protected:
  Gadget g_ = make_cpabe_gadget();
};

TEST_F(CpabeGadgetTest, PolicyIsPublicFromCiphertext) {
  Knowledge rs;
  rs.sees(g_, "ct_abe");
  EXPECT_TRUE(g_.derivable(rs.nodes(), "policy"));
  EXPECT_FALSE(g_.derivable(rs.nodes(), "m_A"));
}

TEST_F(CpabeGadgetTest, SatisfyingKeyDecrypts) {
  Knowledge sub;
  sub.sees_all(g_, {"ct_abe", "sk_S", "S_satisfies_policy"});
  EXPECT_TRUE(g_.derivable(sub.nodes(), "m_A"));
}

TEST_F(CpabeGadgetTest, NonSatisfyingKeyDoesNot) {
  Knowledge sub;
  sub.sees_all(g_, {"ct_abe", "sk_S"});
  EXPECT_FALSE(g_.derivable(sub.nodes(), "m_A"));
}

TEST_F(CpabeGadgetTest, KeysComeOnlyFromMasterKey) {
  Knowledge k;
  k.sees_all(g_, {"S", "pk_abe"});
  EXPECT_FALSE(g_.derivable(k.nodes(), "sk_S"));
  k.sees(g_, "mk_abe");
  EXPECT_TRUE(g_.derivable(k.nodes(), "sk_S"));
}

// --- PK / SK gadgets ---------------------------------------------------------------

TEST(PkGadget, OnlyServiceKeyOpensEnvelope) {
  Gadget g = make_pk_gadget();
  Knowledge eavesdropper;
  eavesdropper.sees_all(g, {"ct_pk", "pk_svc"});
  EXPECT_FALSE(g.derivable(eavesdropper.nodes(), "m_pk"));
  Knowledge service;
  service.sees_all(g, {"ct_pk", "sk_svc"});
  EXPECT_TRUE(g.derivable(service.nodes(), "m_pk"));
}

TEST(SkGadget, KsHolderOpens) {
  Gadget g = make_sk_gadget();
  Knowledge k;
  k.sees(g, "ct_sk");
  EXPECT_FALSE(g.derivable(k.nodes(), "m_sk"));
  k.sees(g, "Ks");
  EXPECT_TRUE(g.derivable(k.nodes(), "m_sk"));
}

// --- End-to-end composition: the P3S flow across gadgets --------------------------

TEST(P3sComposition, DsView) {
  // The DS sees PBE and CP-ABE ciphertexts plus the PBE public key — none
  // of the sensitive elements fall out.
  Gadget pbe = make_pbe_gadget();
  Knowledge ds;
  ds.sees_all(pbe, {"ct_pbe", "pk_pbe"});
  EXPECT_TRUE(pbe.exposed_sensitive(ds.nodes()).empty());

  Gadget cpabe = make_cpabe_gadget();
  Knowledge ds2;
  ds2.sees(cpabe, "ct_abe");
  EXPECT_TRUE(cpabe.exposed_sensitive(ds2.nodes()).empty());
}

TEST(P3sComposition, RsView) {
  Gadget cpabe = make_cpabe_gadget();
  Knowledge rs;
  rs.sees_all(cpabe, {"ct_abe", "pk_abe"});
  // Policy becomes visible (allowed), payload does not.
  EXPECT_TRUE(cpabe.derivable(rs.nodes(), "policy"));
  EXPECT_TRUE(cpabe.exposed_sensitive(rs.nodes()).empty());
}

}  // namespace
}  // namespace p3s::gadget
