// Tests for the observability layer (src/obs): exact concurrent counting,
// histogram percentile math, golden exporter output, closed-vocabulary
// enforcement (the privacy property), clock plumbing, and the
// zero-allocation guarantee on the hot write paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/probe.hpp"
#include "obs/catalog.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

// Global allocation counter for the zero-allocation tests. Counting every
// operator new in the binary is crude but exact: if a hot-path call
// allocates, the counter moves.
namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace p3s::obs {
namespace {

TEST(ObsVocabulary, AcceptsClosedVocabularyNames) {
  EXPECT_TRUE(Registry::valid_name("p3s.pub.publish_total"));
  EXPECT_TRUE(Registry::valid_name("p3s.chan.record_bytes"));
  EXPECT_TRUE(Registry::valid_name("p3s.test.x_9"));
}

TEST(ObsVocabulary, RejectsEverythingElse) {
  EXPECT_FALSE(Registry::valid_name(""));
  EXPECT_FALSE(Registry::valid_name("publish_total"));    // no p3s. prefix
  EXPECT_FALSE(Registry::valid_name("p3s.publishes"));    // no component
  EXPECT_FALSE(Registry::valid_name("p3s.pub.Publish"));  // uppercase
  EXPECT_FALSE(Registry::valid_name("p3s.pub.a b"));      // space
  EXPECT_FALSE(Registry::valid_name("p3s.pub.org:us"));   // attribute-like
  EXPECT_FALSE(Registry::valid_name("p3s.sub.interest=finance"));
  EXPECT_FALSE(Registry::valid_name(std::string(80, 'a')));
}

TEST(ObsVocabulary, RuntimeStringsCannotBecomeMetricsOrLabels) {
  Registry reg;
  // Typical runtime strings — structured interests, payload markers,
  // pseudonyms, attribute syntax — violate the charset and are rejected at
  // the API boundary. (A lone lowercase word would pass the charset; the
  // closed vocabulary holds because names are compile-time constants in
  // catalog.hpp and privacy_test greps exported snapshots for leaks.)
  EXPECT_THROW(reg.counter("p3s.sub.sector=finance"), std::invalid_argument);
  EXPECT_THROW(reg.counter("TOP-SECRET-PAYLOAD"), std::invalid_argument);
  EXPECT_THROW(reg.counter("p3s.ara.reg.org:us"), std::invalid_argument);
  EXPECT_THROW(reg.counter("p3s.sub.seen", {{"interest", "topic=markets"}}),
               std::invalid_argument);
  EXPECT_THROW(reg.counter("p3s.sub.seen", {{"user", "Alice Smith"}}),
               std::invalid_argument);
}

TEST(ObsVocabulary, TypeMismatchThrows) {
  Registry reg;
  reg.counter("p3s.test.v");
  EXPECT_THROW(reg.gauge("p3s.test.v"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("p3s.test.v"), std::invalid_argument);
  // Same name, same type: get-or-create returns the same instance.
  Counter& a = reg.counter("p3s.test.v");
  Counter& b = reg.counter("p3s.test.v");
  EXPECT_EQ(&a, &b);
}

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  Registry reg;
  Counter& c = reg.counter("p3s.test.concurrent_total");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAndAdd) {
  Registry reg;
  Gauge& g = reg.gauge("p3s.test.depth");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(ObsHistogram, CountAndSumAreExact) {
  Registry reg;
  Histogram& h = reg.histogram("p3s.test.lat", {}, "1", "",
                               Histogram::exponential_bounds(1.0, 2.0, 12));
  double expected_sum = 0.0;
  for (int v = 1; v <= 1000; ++v) {
    h.record(static_cast<double>(v));
    expected_sum += v;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
  EXPECT_DOUBLE_EQ(h.mean(), expected_sum / 1000.0);
}

TEST(ObsHistogram, PercentilesOfUniformDistribution) {
  Registry reg;
  // Bounds 1,2,4,...,2048: percentile resolution is one bucket width.
  Histogram& h = reg.histogram("p3s.test.lat", {}, "1", "",
                               Histogram::exponential_bounds(1.0, 2.0, 12));
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  // True p50 = 500, inside bucket (256, 512].
  EXPECT_GT(h.percentile(0.50), 256.0);
  EXPECT_LE(h.percentile(0.50), 512.0);
  // True p99 = 990, inside bucket (512, 1024].
  EXPECT_GT(h.percentile(0.99), 512.0);
  EXPECT_LE(h.percentile(0.99), 1024.0);
  // Monotone in p.
  EXPECT_LE(h.percentile(0.50), h.percentile(0.95));
  EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
}

TEST(ObsHistogram, PointMassLandsInItsBucket) {
  Registry reg;
  Histogram& h = reg.histogram("p3s.test.lat", {}, "1", "",
                               Histogram::exponential_bounds(1.0, 2.0, 8));
  for (int i = 0; i < 100; ++i) h.record(5.0);  // bucket (4, 8]
  EXPECT_GT(h.percentile(0.5), 4.0);
  EXPECT_LE(h.percentile(0.5), 8.0);
  EXPECT_EQ(h.percentile(0.0), 4.0);  // bucket lower edge
}

TEST(ObsHistogram, OverflowBucketClampsToLastBound) {
  Registry reg;
  Histogram& h = reg.histogram("p3s.test.lat", {}, "1", "",
                               Histogram::exponential_bounds(1.0, 2.0, 4));
  h.record(1e9);  // far beyond the last bound (8)
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 8.0);
}

TEST(ObsExport, GoldenTextOutput) {
  Registry reg;
  reg.counter("p3s.test.a_total").inc(3);
  reg.gauge("p3s.test.g").set(-2);
  reg.histogram("p3s.test.h", {}, "1", "", {1.0, 2.0, 4.0}).record(1.5);
  const std::string expected =
      "p3s.test.a_total  counter    3\n"
      "p3s.test.g        gauge      -2\n"
      "p3s.test.h        histogram  count=1 mean=1.5 p50=1.5 p95=1.95 "
      "p99=1.99\n";
  EXPECT_EQ(render_text(reg), expected);
}

TEST(ObsExport, GoldenJsonOutput) {
  Registry reg;
  reg.set_clock([] { return 42.0; });
  reg.counter("p3s.test.a_total").inc(3);
  reg.histogram("p3s.test.h", {}, "1", "", {1.0, 2.0, 4.0}).record(1.5);
  const std::string expected =
      "{\"p3s_metrics_version\":1,\"time\":42,\"enabled\":true,\"metrics\":["
      "{\"name\":\"p3s.test.a_total\",\"type\":\"counter\",\"unit\":\"1\","
      "\"help\":\"\",\"value\":3},"
      "{\"name\":\"p3s.test.h\",\"type\":\"histogram\",\"unit\":\"1\","
      "\"help\":\"\",\"count\":1,\"sum\":1.5,\"p50\":1.5,\"p95\":1.95,"
      "\"p99\":1.99}"
      "],\"spans\":[]}";
  EXPECT_EQ(render_json(reg), expected);
}

TEST(ObsExport, LabeledMetricsRenderNameBraceForm) {
  Registry reg;
  reg.counter("p3s.test.req_total", {{"status", "ok"}}).inc(2);
  reg.counter("p3s.test.req_total", {{"status", "notfound"}}).inc(1);
  const std::string text = render_text(reg);
  EXPECT_NE(text.find("p3s.test.req_total{status=ok}"), std::string::npos);
  EXPECT_NE(text.find("p3s.test.req_total{status=notfound}"),
            std::string::npos);
}

TEST(ObsHotPath, ZeroAllocationOnIncrementAndRecord) {
  Registry reg;
  Counter& c = reg.counter("p3s.test.hot_total");
  Gauge& g = reg.gauge("p3s.test.hot_depth");
  Histogram& h = reg.histogram("p3s.test.hot_lat");
  c.inc();  // warm any lazy state
  g.set(1);
  h.record(0.5);
  const std::size_t before = g_allocations.load();
  for (int i = 0; i < 10000; ++i) {
    c.inc(2);
    g.add(1);
    h.record(static_cast<double>(i) * 1e-6);
  }
  const std::size_t after = g_allocations.load();
  EXPECT_EQ(before, after);
}

TEST(ObsHotPath, DisabledRegistryRecordsNothing) {
  Registry reg;
  Counter& c = reg.counter("p3s.test.off_total");
  Histogram& h = reg.histogram("p3s.test.off_lat");
  reg.set_enabled(false);
  c.inc(5);
  h.record(1.0);
  {
    ScopedTimer t(reg, h, "p3s.test.off_lat");
  }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(reg.snapshot().spans.empty());
  reg.set_enabled(true);
  c.inc(5);
  EXPECT_EQ(c.value(), 5u);
}

TEST(ObsClock, ScopedTimerRidesInstalledClock) {
  Registry reg;
  double sim_now = 100.0;
  Histogram& h = reg.histogram("p3s.test.span_lat");
  {
    ClockGuard guard(reg, [&sim_now] { return sim_now; });
    EXPECT_DOUBLE_EQ(reg.now(), 100.0);
    {
      ScopedTimer t(reg, h, "p3s.test.span_lat");
      sim_now += 2.5;  // simulated time advances while the span is open
    }
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 2.5);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_STREQ(snap.spans[0].name, "p3s.test.span_lat");
  EXPECT_DOUBLE_EQ(snap.spans[0].start, 100.0);
  EXPECT_DOUBLE_EQ(snap.spans[0].duration, 2.5);
  // Guard destroyed: the registry is back on the wall clock, which is
  // nowhere near the fake simulated instant.
  EXPECT_NE(reg.now(), 102.5);
}

TEST(ObsClock, SpansOrderedMostRecentFirst) {
  Registry reg;
  reg.set_clock([] { return 1.0; });
  reg.record_span("p3s.test.a", 1.0, 0.1);
  reg.record_span("p3s.test.b", 2.0, 0.2);
  reg.record_span("p3s.test.c", 3.0, 0.3);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.spans.size(), 3u);
  EXPECT_STREQ(snap.spans[0].name, "p3s.test.c");
  EXPECT_STREQ(snap.spans[2].name, "p3s.test.a");
}

TEST(ObsRegistry, ResetZeroesValuesKeepsRegistrations) {
  Registry reg;
  Counter& c = reg.counter("p3s.test.r_total");
  Histogram& h = reg.histogram("p3s.test.r_lat");
  c.inc(9);
  h.record(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  // Still present in the snapshot (schema survives reset).
  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.metrics.size(), 2u);
}

TEST(ObsCatalog, EveryCatalogNameIsVocabularyCleanAndRegistered) {
  Registry reg;
  register_catalog(reg);
  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_GE(snap.metrics.size(), 40u);
  for (const auto& m : snap.metrics) {
    const std::string base = m.name.substr(0, m.name.find('{'));
    EXPECT_TRUE(Registry::valid_name(base)) << m.name;
    EXPECT_FALSE(m.unit.empty()) << m.name;
  }
  // register_catalog is idempotent (get-or-create semantics).
  register_catalog(reg);
  EXPECT_EQ(reg.snapshot().metrics.size(), snap.metrics.size());
}

TEST(ObsCatalog, GlobalRegistryIsPreRegistered) {
  const RegistrySnapshot snap = Registry::global().snapshot();
  bool found = false;
  for (const auto& m : snap.metrics) {
    if (m.name == names::kPubPublishTotal) found = true;
  }
  EXPECT_TRUE(found);
}

// The common/probe.hpp seam: linking obs installs a sink that routes
// primitive-layer probe events (the pairing stack's, in production) into
// the global registry's catalogued instruments.
TEST(ObsProbeSeam, ProbeEventsLandInGlobalRegistry) {
  Registry& reg = Registry::global();
  ASSERT_NE(probe::sink(), nullptr);  // installed at load via metrics.cpp

  Histogram& hist = reg.histogram(names::kCryptoPairSeconds);
  Counter& ctr = reg.counter(names::kCryptoG1FixedBaseTotal);
  const std::uint64_t hist_before = hist.count();
  const std::uint64_t ctr_before = ctr.value();

  const std::size_t hist_id = probe::intern(names::kCryptoPairSeconds);
  const std::size_t ctr_id = probe::intern(names::kCryptoG1FixedBaseTotal);
  probe::observe(hist_id, 0.25);
  probe::add(ctr_id, 3);
  {
    probe::ScopedTimer timer(hist_id);
  }

  EXPECT_EQ(hist.count(), hist_before + 2);
  EXPECT_EQ(ctr.value(), ctr_before + 3);

  // Re-interning the same spelling returns the same id.
  EXPECT_EQ(probe::intern(names::kCryptoPairSeconds), hist_id);
}

}  // namespace
}  // namespace p3s::obs
