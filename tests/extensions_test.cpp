// Tests for the paper's extension features implemented beyond the base
// prototype: token-revocation epochs (§6.1 mitigation), GUID
// super-encryption (footnote 1), embedded PBE-TS (§8 alternative
// configuration), and hierarchical dissemination (§6.2 remedy).
#include <gtest/gtest.h>

#include <algorithm>

#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "model/analytic.hpp"
#include "net/network.hpp"
#include "p3s/system.hpp"
#include "pbe/epoch.hpp"

namespace p3s::core {
namespace {

pbe::MetadataSchema small_schema() {
  return pbe::MetadataSchema({
      {"topic", {"a", "b", "c", "d"}},
      {"region", {"x", "y"}},
  });
}

pbe::Metadata md(const char* topic, const char* region) {
  return {{"topic", topic}, {"region", region}};
}

// --- EpochPolicy unit behaviour -----------------------------------------------------

TEST(EpochPolicy, EpochIndexCycles) {
  const pbe::EpochPolicy ep(4, 10.0);
  EXPECT_EQ(ep.epoch_at(0.0), 0u);
  EXPECT_EQ(ep.epoch_at(9.9), 0u);
  EXPECT_EQ(ep.epoch_at(10.0), 1u);
  EXPECT_EQ(ep.epoch_at(39.0), 3u);
  EXPECT_EQ(ep.epoch_at(40.0), 0u);  // wraps mod 4
}

TEST(EpochPolicy, ValidatesArguments) {
  EXPECT_THROW(pbe::EpochPolicy(1, 10.0), std::invalid_argument);
  EXPECT_THROW(pbe::EpochPolicy(4, 0.0), std::invalid_argument);
  EXPECT_THROW(pbe::EpochPolicy(4, -1.0), std::invalid_argument);
}

TEST(EpochPolicy, ExtendAddsEpochAttribute) {
  const pbe::EpochPolicy ep(8, 60.0);
  const auto base = small_schema();
  const auto extended = ep.extend(base);
  EXPECT_EQ(extended.attributes().size(), base.attributes().size() + 1);
  EXPECT_EQ(extended.width(), base.width() + 3);  // 8 epochs -> 3 bits
}

TEST(EpochPolicy, StampAndRestrictAgree) {
  const pbe::EpochPolicy ep(4, 10.0);
  const auto schema = ep.extend(small_schema());
  const auto stamped = ep.stamp(md("a", "x"), 25.0);   // epoch 2
  const auto same = ep.restrict({{"topic", "a"}}, 27.0);  // epoch 2
  const auto later = ep.restrict({{"topic", "a"}}, 35.0);  // epoch 3
  EXPECT_TRUE(pbe::interest_matches(same, stamped));
  EXPECT_FALSE(pbe::interest_matches(later, stamped));
}

// --- Epoch integration: token revocation --------------------------------------------

class EpochSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = small_schema();
    // DirectNetwork ticks are "seconds": 1000-tick epochs, 4 in the cycle.
    config.epoch = pbe::EpochPolicy(4, 1000.0);
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
  }

  net::DirectNetwork net_;
  TestRng rng_{0xe90c};
  std::unique_ptr<P3sSystem> system_;
};

TEST_F(EpochSystemTest, CurrentEpochTokenMatches) {
  auto sub = system_->make_subscriber("s1", "alice", {"member"}, rng_);
  auto pub = system_->make_publisher("p1", "press", rng_);
  sub->subscribe({{"topic", "a"}});
  pub->publish(md("a", "x"), str_to_bytes("now"), abe::parse_policy("member"));
  EXPECT_EQ(sub->deliveries().size(), 1u);
}

TEST_F(EpochSystemTest, StaleTokenStopsMatchingAfterRollover) {
  auto sub = system_->make_subscriber("s1", "alice", {"member"}, rng_);
  auto pub = system_->make_publisher("p1", "press", rng_);
  sub->subscribe({{"topic", "a"}});

  // Cross into the next epoch; the old token is now revoked de facto.
  net_.advance(1000);
  pub->publish(md("a", "x"), str_to_bytes("later"), abe::parse_policy("member"));
  EXPECT_EQ(sub->match_count(), 0u);
  EXPECT_TRUE(sub->deliveries().empty());

  // Refreshing tokens (re-keying for the new epoch) restores matching.
  sub->refresh_tokens();
  pub->publish(md("a", "x"), str_to_bytes("fresh"), abe::parse_policy("member"));
  EXPECT_EQ(sub->deliveries().size(), 1u);
  EXPECT_EQ(bytes_to_str(sub->deliveries()[0].payload), "fresh");
}

TEST_F(EpochSystemTest, HoardedTokensFromOldEpochsAreUseless) {
  // The §6.1 token-accumulation attack: a subscriber hoards tokens over
  // time. With epochs, only the current epoch's tokens are live.
  auto hoarder = system_->make_subscriber("s1", "eve", {"member"}, rng_);
  auto pub = system_->make_publisher("p1", "press", rng_);
  // Accumulate tokens across two epochs.
  hoarder->subscribe({{"topic", "a"}});
  net_.advance(1000);
  hoarder->subscribe({{"topic", "b"}});
  EXPECT_EQ(hoarder->token_count(), 2u);

  net_.advance(1000);  // now in epoch 2: both hoarded tokens are stale
  pub->publish(md("a", "x"), str_to_bytes("m1"), abe::parse_policy("member"));
  pub->publish(md("b", "x"), str_to_bytes("m2"), abe::parse_policy("member"));
  EXPECT_EQ(hoarder->match_count(), 0u);
}

// --- GUID super-encryption (footnote 1) -------------------------------------------

class SuperEncryptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = small_schema();
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
  }

  bool wire_contains(BytesView needle) {
    for (const auto& rec : net_.traffic()) {
      if (std::search(rec.frame.begin(), rec.frame.end(), needle.begin(),
                      needle.end()) != rec.frame.end()) {
        return true;
      }
    }
    return false;
  }

  net::DirectNetwork net_;
  TestRng rng_{0x5e};
  std::unique_ptr<P3sSystem> system_;
};

TEST_F(SuperEncryptTest, WrappedGuidStaysOffTheWire) {
  auto sub = system_->make_subscriber("s1", "alice", {"m"}, rng_);
  auto pub = system_->make_publisher("p1", "press", rng_);
  pub->set_guid_super_encryption(true);
  sub->subscribe({{"topic", "a"}});
  net_.clear_traffic();

  const Guid guid = pub->publish(md("a", "x"), str_to_bytes("payload"),
                                 abe::parse_policy("m"));
  // Delivery still works end to end...
  ASSERT_EQ(sub->deliveries().size(), 1u);
  EXPECT_EQ(sub->deliveries()[0].guid, guid);
  // ...but the GUID bytes never appear in any wire frame.
  EXPECT_FALSE(wire_contains(guid.to_bytes()));
}

TEST_F(SuperEncryptTest, ClearGuidIsVisibleWithoutTheMitigation) {
  auto sub = system_->make_subscriber("s1", "alice", {"m"}, rng_);
  auto pub = system_->make_publisher("p1", "press", rng_);
  sub->subscribe({{"topic", "a"}});
  net_.clear_traffic();
  const Guid guid = pub->publish(md("a", "x"), str_to_bytes("payload"),
                                 abe::parse_policy("m"));
  ASSERT_EQ(sub->deliveries().size(), 1u);
  EXPECT_TRUE(wire_contains(guid.to_bytes()));  // the documented leak
}

// --- Embedded PBE-TS (§8) -----------------------------------------------------------

class EmbeddedTsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = small_schema();
    config.embedded_token_server = true;
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
  }

  net::DirectNetwork net_;
  TestRng rng_{0xe3b};
  std::unique_ptr<P3sSystem> system_;
};

TEST_F(EmbeddedTsTest, InterestNeverLeavesTheSubscriber) {
  auto sub = system_->make_subscriber("s1", "alice", {"m"}, rng_);
  auto pub = system_->make_publisher("p1", "press", rng_);
  net_.clear_traffic();
  sub->subscribe({{"topic", "a"}});
  EXPECT_EQ(sub->token_count(), 1u);
  // No token request crossed the network at all.
  EXPECT_TRUE(system_->token_server().seen_predicates().empty());
  for (const auto& rec : net_.traffic()) {
    EXPECT_NE(rec.to, "pbe-ts");
  }
  // And the flow still works.
  pub->publish(md("a", "x"), str_to_bytes("m"), abe::parse_policy("m"));
  EXPECT_EQ(sub->deliveries().size(), 1u);
}

TEST_F(EmbeddedTsTest, TradeOffSubscriberHoldsMasterKeyAndCanDecodeAllMetadata) {
  // The cost of the §8 embedded configuration, made explicit: a subscriber
  // holding the HVE master key can mint a token for ANY predicate and so
  // recover every publication's GUID — metadata privacy against
  // subscribers is gone. (The paper flags finding better configurations as
  // open work.)
  auto sub = system_->make_subscriber("s1", "alice", {"m"}, rng_);
  auto pub = system_->make_publisher("p1", "press", rng_);
  // alice never subscribed to topic=c, but mints tokens for every topic.
  for (const char* t : {"a", "b", "c", "d"}) {
    sub->subscribe({{"topic", t}});
  }
  pub->publish(md("c", "y"), str_to_bytes("supposedly-hidden"),
               abe::parse_policy("m"));
  EXPECT_EQ(sub->match_count(), 1u);  // she can probe everything
}

// --- Hierarchical dissemination model (§6.2) --------------------------------------

TEST(HierarchicalModel, RemovesTheSmallPayloadFlatline) {
  const model::ModelParams p = model::ModelParams::paper_defaults();
  const double c = 1024.0;
  const auto flat = model::p3s_throughput(p, c);
  const auto tree = model::p3s_throughput_hierarchical(p, c, /*fanout=*/10);
  EXPECT_STREQ(flat.bottleneck(), "ds-nic");
  // Per-relay broadcast cost drops from N_s to fanout copies: x10 here.
  EXPECT_NEAR(tree.total() / flat.total(),
              static_cast<double>(p.n_subscribers) / 10.0, 0.1);
  // At Table-1 parameters the (relieved) relay NIC still caps throughput
  // below the per-subscriber match rate of w/t_PBE ≈ 67/s.
  EXPECT_LT(tree.total(), tree.r_match);
}

TEST(HierarchicalModel, FanOutTradesLatencyForThroughput) {
  const model::ModelParams p = model::ModelParams::paper_defaults();
  const double c = 1024.0;
  const auto flat = model::p3s_latency(p, c);
  const auto tree = model::p3s_latency_hierarchical(p, c, /*fanout=*/10);
  // 2 levels of 10 x 8ms beats 1 level of 100 x 8ms.
  EXPECT_LT(tree.tp2, flat.tp2);
  EXPECT_GT(tree.tp2, 2 * p.latency_s);  // but pays per-level latency
}

TEST(HierarchicalModel, LargePayloadRegimeUnaffected) {
  const model::ModelParams p = model::ModelParams::paper_defaults();
  const double c = 16.0 * 1024 * 1024;
  const auto flat = model::p3s_throughput(p, c);
  const auto tree = model::p3s_throughput_hierarchical(p, c, 10);
  EXPECT_DOUBLE_EQ(flat.total(), tree.total());  // rs-nic bound either way
}

}  // namespace
}  // namespace p3s::core
