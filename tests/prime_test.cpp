#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "math/prime.hpp"

namespace p3s::math {
namespace {

TEST(Prime, SmallKnownPrimes) {
  TestRng rng(31);
  for (std::uint64_t p : {2u, 3u, 5u, 7u, 11u, 97u, 101u, 65537u}) {
    EXPECT_TRUE(is_probable_prime(BigInt{p}, rng)) << p;
  }
}

TEST(Prime, SmallKnownComposites) {
  TestRng rng(32);
  for (std::uint64_t n : {0u, 1u, 4u, 6u, 9u, 15u, 91u, 561u, 65535u}) {
    EXPECT_FALSE(is_probable_prime(BigInt{n}, rng)) << n;
  }
}

TEST(Prime, CarmichaelNumbersRejected) {
  TestRng rng(33);
  // Carmichael numbers fool Fermat but not Miller-Rabin.
  for (std::uint64_t n : {561u, 1105u, 1729u, 2465u, 2821u, 6601u, 8911u}) {
    EXPECT_FALSE(is_probable_prime(BigInt{n}, rng)) << n;
  }
}

TEST(Prime, LargeKnownPrime) {
  TestRng rng(34);
  // 2^127 - 1 is a Mersenne prime.
  BigInt m127 = (BigInt{1} << 127) - BigInt{1};
  EXPECT_TRUE(is_probable_prime(m127, rng));
  // 2^128 + 1 is composite (Fermat F7 factor known).
  EXPECT_FALSE(is_probable_prime((BigInt{1} << 128) + BigInt{1}, rng));
}

TEST(Prime, RandomPrimeHasExactWidthAndIsPrime) {
  TestRng rng(35);
  for (std::size_t bits : {32u, 64u, 128u}) {
    BigInt p = random_prime(rng, bits);
    EXPECT_EQ(p.bit_length(), bits);
    EXPECT_TRUE(is_probable_prime(p, rng));
  }
}

TEST(Prime, ProductOfPrimesIsComposite) {
  TestRng rng(36);
  BigInt p = random_prime(rng, 96);
  BigInt q = random_prime(rng, 96);
  EXPECT_FALSE(is_probable_prime(p * q, rng));
}

}  // namespace
}  // namespace p3s::math
