// AsyncNetwork semantics plus the full P3S protocol under asynchrony, frame
// loss, and adversarial reordering — the failure modes behind the paper's
// §6.1 robustness discussion and the T_G grace period.
#include <gtest/gtest.h>

#include <algorithm>

#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "net/async.hpp"
#include "p3s/system.hpp"

namespace p3s::core {
namespace {

TEST(AsyncNetwork, DeliversOnlyWhenPumped) {
  net::AsyncNetwork net;
  int got = 0;
  net.register_endpoint("b", [&](const std::string&, BytesView) { ++got; });
  net.send("a", "b", str_to_bytes("m"));
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.in_flight(), 1u);
  EXPECT_TRUE(net.pump_one());
  EXPECT_EQ(got, 1);
  EXPECT_FALSE(net.pump_one());
}

TEST(AsyncNetwork, FifoOrderByDefault) {
  net::AsyncNetwork net;
  std::vector<int> order;
  net.register_endpoint("b", [&](const std::string&, BytesView f) {
    order.push_back(f[0]);
  });
  net.send("a", "b", Bytes{1});
  net.send("a", "b", Bytes{2});
  net.send("a", "b", Bytes{3});
  net.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(AsyncNetwork, ReorderDeliversNewestFirst) {
  net::AsyncNetwork net;
  std::vector<int> order;
  net.register_endpoint("b", [&](const std::string&, BytesView f) {
    order.push_back(f[0]);
  });
  net.set_reorder(true);
  net.send("a", "b", Bytes{1});
  net.send("a", "b", Bytes{2});
  net.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(AsyncNetwork, DropsInjectedLoss) {
  net::AsyncNetwork net;
  int got = 0;
  net.register_endpoint("b", [&](const std::string&, BytesView) { ++got; });
  net.drop_next(2);
  net.send("a", "b", Bytes{1});
  net.send("a", "b", Bytes{2});
  net.send("a", "b", Bytes{3});
  net.run_until_idle();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(net.dropped_frames(), 2u);
  // Dropped frames are still on the eavesdropper's log.
  EXPECT_EQ(net.traffic().size(), 3u);
}

TEST(AsyncNetwork, CascadingSendsAreProcessed) {
  net::AsyncNetwork net;
  int sink = 0;
  net.register_endpoint("relay", [&](const std::string&, BytesView f) {
    net.send("relay", "sink", Bytes(f.begin(), f.end()));
  });
  net.register_endpoint("sink", [&](const std::string&, BytesView) { ++sink; });
  net.send("a", "relay", Bytes{1});
  EXPECT_EQ(net.run_until_idle(), 2u);
  EXPECT_EQ(sink, 1);
}

TEST(AsyncNetwork, LiveLockGuardThrows) {
  net::AsyncNetwork net;
  net.register_endpoint("a", [&](const std::string&, BytesView) {
    net.send("a", "a", Bytes{1});  // infinite self-ping
  });
  net.send("x", "a", Bytes{1});
  EXPECT_THROW(net.run_until_idle(100), std::runtime_error);
}

// --- Seeded fault plans ------------------------------------------------------

TEST(FaultPlan, SameSeedSameSchedule) {
  const auto run = [](std::uint64_t seed) {
    net::FaultPlan plan(seed);
    net::LinkFaults f;
    f.drop = 0.3;
    f.duplicate = 0.2;
    f.delay_max = 5.0;
    plan.set_default(f);
    std::vector<int> decisions;
    for (int i = 0; i < 200; ++i) {
      decisions.push_back(plan.should_drop("a", "b") ? 1 : 0);
      decisions.push_back(plan.should_duplicate("a", "b") ? 1 : 0);
      decisions.push_back(static_cast<int>(plan.delay("a", "b") * 1000));
    }
    return decisions;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(FaultPlan, PerLinkOverridesAndCounters) {
  net::AsyncNetwork net;
  net::FaultPlan plan(3);
  net::LinkFaults lossy;
  lossy.drop = 1.0;
  plan.set_link("a", "b", lossy);  // only a→b is lossy; default is clean
  net.set_fault_plan(std::move(plan));
  int got = 0;
  net.register_endpoint("a", [&](const std::string&, BytesView) { ++got; });
  net.register_endpoint("b", [&](const std::string&, BytesView) { ++got; });
  for (int i = 0; i < 5; ++i) {
    net.send("a", "b", Bytes{1});
    net.send("b", "a", Bytes{2});
  }
  net.run_until_idle();
  EXPECT_EQ(got, 5);  // all b→a frames
  EXPECT_EQ(net.dropped_frames(), 5u);
  EXPECT_EQ(net.dropped_on("a", "b"), 5u);
  EXPECT_EQ(net.dropped_on("b", "a"), 0u);
  EXPECT_EQ(net.traffic().size(), 10u);  // eavesdropper saw every frame
}

TEST(FaultPlan, DuplicateDeliversTwiceAndLogsTwice) {
  net::AsyncNetwork net;
  net::FaultPlan plan(4);
  net::LinkFaults f;
  f.duplicate = 1.0;
  plan.set_default(f);
  net.set_fault_plan(std::move(plan));
  int got = 0;
  net.register_endpoint("b", [&](const std::string&, BytesView) { ++got; });
  net.send("a", "b", Bytes{1});
  net.run_until_idle();
  EXPECT_EQ(got, 2);
  // The copy crossed the wire too: two traffic records.
  EXPECT_EQ(net.traffic().size(), 2u);
}

TEST(FaultPlan, BlackoutWindowSilencesEndpoint) {
  net::AsyncNetwork net;
  net::FaultPlan plan(5);
  plan.add_blackout("b", 0.0, 1000.0);
  net.set_fault_plan(std::move(plan));
  int got = 0;
  net.register_endpoint("b", [&](const std::string&, BytesView) { ++got; });
  net.send("a", "b", Bytes{1});  // lands inside the window: lost
  net.run_until_idle();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(net.dropped_frames(), 1u);
  net.advance(2000);  // window over
  net.send("a", "b", Bytes{2});
  net.run_until_idle();
  EXPECT_EQ(got, 1);
  // Sender-side blackout: frames from a dark endpoint are lost at send
  // time, BEFORE the wire — so unlike drops/receiver blackouts (lost past
  // the observation point) they never appear on the eavesdropper log.
  net.fault_plan()->add_blackout("b", net.now(), net.now() + 1000.0);
  const std::size_t wire_before = net.traffic().size();
  net.send("b", "a", Bytes{3});
  net.run_until_idle();
  EXPECT_EQ(net.dropped_frames(), 2u);
  EXPECT_EQ(net.traffic().size(), wire_before);
}

TEST(FaultPlan, DelayHoldsFrameUntilItsTick) {
  net::AsyncNetwork net;
  net::FaultPlan plan(6);
  net::LinkFaults f;
  f.delay_max = 50.0;
  plan.set_default(f);
  net.set_fault_plan(std::move(plan));
  std::vector<int> order;
  net.register_endpoint("b", [&](const std::string&, BytesView fr) {
    order.push_back(fr[0]);
  });
  // With random extra delay, pumping still delivers everything exactly once
  // (earliest deliver_at first).
  for (int i = 0; i < 20; ++i) net.send("a", "b", Bytes{std::uint8_t(i)});
  net.run_until_idle();
  EXPECT_EQ(order.size(), 20u);
  std::sort(order.begin(), order.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(FaultPlan, ClearRestoresLegacyBehavior) {
  net::AsyncNetwork net;
  net::FaultPlan plan(9);
  net::LinkFaults f;
  f.drop = 1.0;
  plan.set_default(f);
  net.set_fault_plan(std::move(plan));
  net.clear_fault_plan();
  EXPECT_EQ(net.fault_plan(), nullptr);
  std::vector<int> order;
  net.register_endpoint("b", [&](const std::string&, BytesView fr) {
    order.push_back(fr[0]);
  });
  net.send("a", "b", Bytes{1});
  net.send("a", "b", Bytes{2});
  net.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(net.dropped_frames(), 0u);
}

// --- P3S over an asynchronous wire --------------------------------------------------

class AsyncP3sTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = pbe::MetadataSchema(
        {{"topic", {"a", "b"}}, {"tier", {"x", "y"}}});
    config.rs_grace_seconds = 0.0;  // strict deletion: exposes races
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
  }

  // make_* helpers drive protocol steps that need responses; pump after each.
  std::unique_ptr<Subscriber> subscriber(const std::string& name) {
    auto sub = system_->make_subscriber(name, name + "-pseud", {"m"}, rng_);
    net_.run_until_idle();
    return sub;
  }

  net::AsyncNetwork net_;
  TestRng rng_{0xa57c};
  std::unique_ptr<P3sSystem> system_;
};

TEST_F(AsyncP3sTest, FullFlowUnderAsynchrony) {
  auto sub = subscriber("sub1");
  auto pub = system_->make_publisher("pub1", "press", rng_);
  net_.run_until_idle();
  ASSERT_TRUE(sub->connected());
  ASSERT_TRUE(pub->connected());

  sub->subscribe({{"topic", "a"}});
  net_.run_until_idle();
  ASSERT_EQ(sub->token_count(), 1u);

  pub->publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("async"),
               abe::parse_policy("m"), /*ttl=*/1e6);
  net_.run_until_idle();
  ASSERT_EQ(sub->deliveries().size(), 1u);
  EXPECT_EQ(bytes_to_str(sub->deliveries()[0].payload), "async");
}

TEST_F(AsyncP3sTest, LostTokenResponseIsRecoverable) {
  auto sub = subscriber("sub1");
  auto pub = system_->make_publisher("pub1", "press", rng_);
  net_.run_until_idle();

  sub->subscribe({{"topic", "a"}});
  // Lose the in-flight request on the wire: the whole exchange dies.
  ASSERT_EQ(net_.in_flight(), 1u);
  net_.drop_next(1);
  net_.run_until_idle();
  EXPECT_EQ(sub->token_count(), 0u);
  EXPECT_EQ(net_.dropped_frames(), 1u);

  // Application-level recovery (paper: loss is detectable; clients retry).
  sub->refresh_tokens();
  net_.run_until_idle();
  EXPECT_EQ(sub->token_count(), 1u);

  pub->publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("ok"),
               abe::parse_policy("m"), 1e6);
  net_.run_until_idle();
  EXPECT_EQ(sub->deliveries().size(), 1u);
}

TEST_F(AsyncP3sTest, ChannelRejectsReorderedRecordsButFlowRecovers) {
  auto sub = subscriber("sub1");
  auto pub = system_->make_publisher("pub1", "press", rng_);
  net_.run_until_idle();
  sub->subscribe({{"topic", "a"}});
  net_.run_until_idle();

  // Two publications sent while the wire delivers newest-first: the DS
  // channel's strictly-increasing sequence numbers reject the older record
  // (TLS semantics), so only the newer publication survives.
  net_.set_reorder(true);
  pub->publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("first"),
               abe::parse_policy("m"), 1e6);
  pub->publish({{"topic", "a"}, {"tier", "y"}}, str_to_bytes("second"),
               abe::parse_policy("m"), 1e6);
  net_.run_until_idle();
  net_.set_reorder(false);
  EXPECT_LE(sub->deliveries().size(), 1u);

  // In-order traffic afterwards fails (the channel lost sync) until the
  // client re-establishes its session — the documented recovery path.
  pub->connect();
  net_.run_until_idle();
  pub->publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("recovered"),
               abe::parse_policy("m"), 1e6);
  net_.run_until_idle();
  ASSERT_FALSE(sub->deliveries().empty());
  EXPECT_EQ(bytes_to_str(sub->deliveries().back().payload), "recovered");
}

TEST_F(AsyncP3sTest, SlowConsumerMissesStrictlyDeletedItem) {
  // The T_G = 0 race from §4.3, now with real asynchrony: the item expires
  // while the subscriber's fetch is still in flight.
  auto sub = subscriber("sub1");
  auto pub = system_->make_publisher("pub1", "press", rng_);
  net_.run_until_idle();
  sub->subscribe({{"topic", "a"}});
  net_.run_until_idle();

  pub->publish({{"topic", "a"}, {"tier", "x"}}, str_to_bytes("ephemeral"),
               abe::parse_policy("m"), /*ttl=*/1.0);
  // Deliver the store + broadcast, but stall before the content request
  // lands; meanwhile the TTL passes.
  net_.run_until_idle();  // subscriber has matched and requested by now...
  // ...actually the request was delivered too. Re-run with a stalled fetch:
  // publish again and advance time past TTL before pumping the request.
  pub->publish({{"topic", "a"}, {"tier", "y"}}, str_to_bytes("ephemeral2"),
               abe::parse_policy("m"), /*ttl=*/1.0);
  // Pump only the store + fan-out, not the fetch: deliver frames until the
  // subscriber has matched (its request is then in flight).
  const std::size_t before = sub->match_count();
  while (sub->match_count() == before && net_.pump_one()) {
  }
  net_.advance(10);  // TTL passes while the request is in flight
  system_->rs().garbage_collect();
  net_.run_until_idle();
  EXPECT_GE(sub->fetch_failures(), 1u);
}

}  // namespace
}  // namespace p3s::core
