#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/aead.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/ct.hpp"
#include "crypto/drbg.hpp"
#include "crypto/hmac.hpp"
#include "crypto/poly1305.hpp"
#include "crypto/sha256.hpp"

namespace p3s::crypto {
namespace {

// --- SHA-256 (FIPS 180-4 / NIST CAVS vectors) -------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::digest(str_to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::digest(str_to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  TestRng rng(1);
  const Bytes data = rng.bytes(1000);
  for (std::size_t split : {0u, 1u, 63u, 64u, 65u, 999u, 1000u}) {
    Sha256 h;
    h.update(BytesView(data.data(), split));
    h.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), Sha256::digest(data)) << split;
  }
}

TEST(Sha256, UpdateAfterFinishThrows) {
  Sha256 h;
  h.update(str_to_bytes("x"));
  h.finish();
  EXPECT_THROW(h.update(str_to_bytes("y")), std::logic_error);
  EXPECT_THROW(h.finish(), std::logic_error);
}

// --- HMAC-SHA256 (RFC 4231 vectors) ------------------------------------------

// --- constant-time primitives (crypto/ct.hpp) -------------------------------

TEST(Ct, Equal) {
  EXPECT_TRUE(ct_equal(str_to_bytes("abc"), str_to_bytes("abc")));
  EXPECT_FALSE(ct_equal(str_to_bytes("abc"), str_to_bytes("abd")));
  EXPECT_FALSE(ct_equal(str_to_bytes("abc"), str_to_bytes("ab")));
  EXPECT_TRUE(ct_equal({}, {}));
  // Single-bit differences at every position are caught.
  Bytes a(64, 0x5a), b(64, 0x5a);
  EXPECT_TRUE(ct_equal(a, b));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] ^= 0x01;
    EXPECT_FALSE(ct_equal(a, b)) << i;
    b[i] ^= 0x01;
  }
}

TEST(Ct, IsZeroAndSelect) {
  EXPECT_TRUE(ct_is_zero({}));
  EXPECT_TRUE(ct_is_zero(Bytes(32, 0x00)));
  Bytes nz(32, 0x00);
  nz[31] = 0x80;
  EXPECT_FALSE(ct_is_zero(nz));
  EXPECT_EQ(ct_select_u8(1, 0xaa, 0x55), 0xaa);
  EXPECT_EQ(ct_select_u8(0, 0xaa, 0x55), 0x55);
  EXPECT_EQ(ct_select_u8(0xff, 0xaa, 0x55), 0xaa);
}

TEST(Hmac, VerifyRoutesThroughCtEqual) {
  const Bytes key = str_to_bytes("Jefe");
  const Bytes data = str_to_bytes("what do ya want for nothing?");
  Bytes mac = hmac_sha256(key, data);
  EXPECT_TRUE(hmac_verify(key, data, mac));
  mac[0] ^= 0x01;
  EXPECT_FALSE(hmac_verify(key, data, mac));
  mac[0] ^= 0x01;
  mac.pop_back();
  EXPECT_FALSE(hmac_verify(key, data, mac));  // truncated MACs never pass
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(key, str_to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(str_to_bytes("Jefe"),
                               str_to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashed) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha256(
                key, str_to_bytes("Test Using Larger Than Block-Size Key - "
                                  "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// --- HKDF (RFC 5869 vectors) --------------------------------------------------

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, Rfc5869Case3EmptySaltInfo) {
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, RejectsOversizedOutput) {
  EXPECT_THROW(hkdf_expand(Bytes(32), {}, 255 * 32 + 1), std::invalid_argument);
}

// --- ChaCha20 (RFC 8439 §2.4.2) ------------------------------------------------

TEST(ChaCha20Cipher, Rfc8439Vector) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.";
  const Bytes ct = ChaCha20::crypt(key, nonce, str_to_bytes(plaintext), 1);
  EXPECT_EQ(to_hex(Bytes(ct.begin(), ct.begin() + 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
  // Decryption is the same operation.
  EXPECT_EQ(bytes_to_str(ChaCha20::crypt(key, nonce, ct, 1)), plaintext);
}

TEST(ChaCha20Cipher, RejectsBadSizes) {
  EXPECT_THROW(ChaCha20(Bytes(31), Bytes(12)), std::invalid_argument);
  EXPECT_THROW(ChaCha20(Bytes(32), Bytes(11)), std::invalid_argument);
}

// --- Poly1305 (RFC 8439 §2.5.2) -------------------------------------------------

TEST(Poly1305, Rfc8439Vector) {
  const Bytes key = from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  const Bytes tag = poly1305_tag(key, str_to_bytes("Cryptographic Forum Research Group"));
  EXPECT_EQ(to_hex(tag), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, EmptyMessage) {
  // With r = 0 the polynomial is 0 and the tag equals s.
  Bytes key(32, 0);
  for (int i = 16; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const Bytes tag = poly1305_tag(key, {});
  EXPECT_EQ(tag, Bytes(key.begin() + 16, key.end()));
}

TEST(Poly1305, RejectsBadKeySize) {
  EXPECT_THROW(poly1305_tag(Bytes(16), {}), std::invalid_argument);
}

// --- AEAD ----------------------------------------------------------------------

TEST(Aead, RoundTrip) {
  TestRng rng(2);
  const Bytes key = rng.bytes(32);
  const Bytes pt = str_to_bytes("publication payload");
  const Bytes aad = str_to_bytes("guid-0001");
  const AeadCiphertext ct = aead_encrypt(key, pt, aad, rng);
  const auto out = aead_decrypt(key, ct, aad);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, pt);
}

TEST(Aead, WrongKeyFails) {
  TestRng rng(3);
  const Bytes key = rng.bytes(32);
  Bytes key2 = key;
  key2[0] ^= 1;
  const AeadCiphertext ct = aead_encrypt(key, str_to_bytes("secret"), {}, rng);
  EXPECT_FALSE(aead_decrypt(key2, ct, {}).has_value());
}

TEST(Aead, WrongAadFails) {
  TestRng rng(4);
  const Bytes key = rng.bytes(32);
  const AeadCiphertext ct =
      aead_encrypt(key, str_to_bytes("secret"), str_to_bytes("a"), rng);
  EXPECT_FALSE(aead_decrypt(key, ct, str_to_bytes("b")).has_value());
}

TEST(Aead, TamperedCiphertextFails) {
  TestRng rng(5);
  const Bytes key = rng.bytes(32);
  AeadCiphertext ct = aead_encrypt(key, str_to_bytes("secret"), {}, rng);
  ct.body[0] ^= 0x80;
  EXPECT_FALSE(aead_decrypt(key, ct, {}).has_value());
}

TEST(Aead, TamperedTagFails) {
  TestRng rng(6);
  const Bytes key = rng.bytes(32);
  AeadCiphertext ct = aead_encrypt(key, str_to_bytes("secret"), {}, rng);
  ct.body.back() ^= 1;
  EXPECT_FALSE(aead_decrypt(key, ct, {}).has_value());
}

TEST(Aead, EmptyPlaintextRoundTrip) {
  TestRng rng(7);
  const Bytes key = rng.bytes(32);
  const AeadCiphertext ct = aead_encrypt(key, {}, {}, rng);
  const auto out = aead_decrypt(key, ct, {});
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Aead, SerializationRoundTrip) {
  TestRng rng(8);
  const Bytes key = rng.bytes(32);
  const AeadCiphertext ct = aead_encrypt(key, str_to_bytes("x"), {}, rng);
  const AeadCiphertext ct2 = AeadCiphertext::deserialize(ct.serialize());
  EXPECT_EQ(ct2.nonce, ct.nonce);
  EXPECT_EQ(ct2.body, ct.body);
  const auto out = aead_decrypt(key, ct2, {});
  ASSERT_TRUE(out.has_value());
}

TEST(Aead, DeserializeRejectsGarbage) {
  EXPECT_THROW(AeadCiphertext::deserialize(Bytes{1, 2, 3}), std::exception);
}

// --- DRBG ------------------------------------------------------------------------

TEST(Drbg, DeterministicWithSeed) {
  Drbg a(str_to_bytes("seed"));
  Drbg b(str_to_bytes("seed"));
  EXPECT_EQ(a.bytes(100), b.bytes(100));
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a(str_to_bytes("seed-1"));
  Drbg b(str_to_bytes("seed-2"));
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

TEST(Drbg, StreamsDoNotRepeatAcrossRefills) {
  Drbg a(str_to_bytes("seed"));
  const Bytes first = a.bytes(960);
  const Bytes second = a.bytes(960);
  EXPECT_NE(first, second);
}

TEST(Drbg, SystemSeededProducesDistinctStreams) {
  Drbg a, b;
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

}  // namespace
}  // namespace p3s::crypto
