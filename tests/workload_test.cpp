#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "gadget/gadget.hpp"
#include "model/workload.hpp"

namespace p3s::model {
namespace {

pbe::MetadataSchema schema() { return pbe::MetadataSchema::uniform(4, 8); }

TEST(Workload, MetadataIsAlwaysComplete) {
  TestRng rng(1);
  const WorkloadGenerator gen(schema());
  for (int i = 0; i < 50; ++i) {
    const auto md = gen.random_metadata(rng);
    EXPECT_EQ(md.size(), 4u);
    EXPECT_NO_THROW(gen.schema().encode_metadata(md));
  }
}

TEST(Workload, InterestsAreNonEmptyAndEncodable) {
  TestRng rng(2);
  const WorkloadGenerator gen(schema(), {0.8, 0.9});  // heavy wildcards
  for (int i = 0; i < 100; ++i) {
    const auto interest = gen.random_interest(rng);
    EXPECT_FALSE(interest.empty());
    EXPECT_NO_THROW(gen.schema().encode_interest(interest));
  }
}

TEST(Workload, ZipfSkewsPopularity) {
  TestRng rng(3);
  WorkloadConfig config;
  config.zipf_s = 1.2;
  const WorkloadGenerator gen(schema(), config);
  std::map<std::string, int> counts;
  for (int i = 0; i < 2000; ++i) {
    counts[gen.random_metadata(rng).at("attr0")]++;
  }
  // Rank-1 value should dominate rank-8 decisively under s=1.2.
  EXPECT_GT(counts["v0"], counts["v7"] * 3);
}

TEST(Workload, UniformWhenSkewZero) {
  TestRng rng(4);
  WorkloadConfig config;
  config.zipf_s = 0.0;
  const WorkloadGenerator gen(schema(), config);
  std::map<std::string, int> counts;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    counts[gen.random_metadata(rng).at("attr0")]++;
  }
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count, n / 8, n / 16) << value;
  }
}

TEST(Workload, MatchRateRisesWithWildcardProbability) {
  TestRng rng(5);
  WorkloadConfig narrow;
  narrow.wildcard_prob = 0.1;  // very specific interests
  WorkloadConfig broad;
  broad.wildcard_prob = 0.9;  // nearly-everything interests
  const double f_narrow =
      WorkloadGenerator(schema(), narrow).estimate_match_rate(rng, 50, 50);
  const double f_broad =
      WorkloadGenerator(schema(), broad).estimate_match_rate(rng, 50, 50);
  EXPECT_LT(f_narrow, f_broad);
  EXPECT_GT(f_broad, 0.1);
}

TEST(Workload, MatchRateInUnitInterval) {
  TestRng rng(6);
  const double f = WorkloadGenerator(schema()).estimate_match_rate(rng, 30, 30);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 1.0);
}

// --- Gadget DOT export --------------------------------------------------------------

TEST(GadgetDot, RendersAllNodesAndConventions) {
  const gadget::Gadget g = gadget::make_pbe_gadget();
  const std::string dot = g.to_dot("pbe");
  EXPECT_NE(dot.find("digraph pbe"), std::string::npos);
  // Sensitive elements drawn with a heavy border (paper's dark boxes).
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);
  // Gates as boxes.
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  // Every named element appears.
  for (const char* name : {"m", "x", "y", "t_y", "ct_pbe", "pk_pbe"}) {
    EXPECT_NE(dot.find("label=\"" + std::string(name) + "\""), std::string::npos)
        << name;
  }
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace p3s::model
