// Anonymizer hardening edge cases (DESIGN.md §11): the batched-mixing
// machinery at its boundaries — an empty batch flush must be a wire no-op,
// a lone request must be padded with decoys (or held to its deadline when
// no cover material exists), a flush into a blacked-out RS must still
// converge to exactly-once delivery, and DS cover traffic must flow without
// confusing subscribers.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "net/async.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"
#include "p3s/anonymizer.hpp"
#include "p3s/system.hpp"

namespace p3s::core {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

std::size_t frames_between(const net::Network& net, const std::string& from,
                           const std::string& to) {
  std::size_t n = 0;
  for (const auto& rec : net.traffic()) {
    if (rec.from == from && rec.to == to) ++n;
  }
  return n;
}

P3sConfig base_config() {
  P3sConfig config;
  config.pairing = pairing::Pairing::test_pairing();
  config.schema = pbe::MetadataSchema(
      {{"sector", {"finance", "tech"}}, {"grade", {"x", "y"}}});
  config.rs_grace_seconds = 1e9;
  return config;
}

/// Drive the async system: deliver, poll every component, advance when idle.
template <typename Done>
bool converge(net::AsyncNetwork& net, P3sSystem& system, Subscriber* sub,
              const Done& done, int max_rounds = 500) {
  for (int round = 0; round < max_rounds; ++round) {
    net.run_until_idle(500000);
    if (done()) return true;
    if (sub != nullptr) sub->poll();
    system.ds().poll();
    if (auto* anon = system.anonymizer()) anon->poll();
    if (net.in_flight() == 0) net.advance(97);
  }
  net.run_until_idle(500000);
  return done();
}

TEST(AnonHardeningTest, EmptyBatchFlushIsWireNoop) {
  net::AsyncNetwork net;
  AnonHardening hard;
  hard.batching = true;
  hard.batch_size = 4;
  hard.flush_interval = 50.0;
  Anonymizer anon(net, "anon", hard);
  const auto flushes_before =
      counter_value(obs::names::kAnonBatchFlushesTotal);
  // Plenty of deadline-worths of time with nothing held: no frames, no
  // flushes, no deadline armed.
  for (int i = 0; i < 10; ++i) {
    net.advance(100);
    anon.poll();
  }
  EXPECT_EQ(anon.held_count(), 0u);
  EXPECT_TRUE(net.traffic().empty());
  EXPECT_EQ(counter_value(obs::names::kAnonBatchFlushesTotal),
            flushes_before);
}

TEST(AnonHardeningTest, LoneRequestIsPaddedWithDecoys) {
  net::AsyncNetwork net;
  TestRng rng(0xdec0);
  P3sConfig config = base_config();
  config.anon_hardening.batching = true;
  config.anon_hardening.batch_size = 3;
  config.anon_hardening.min_batch = 3;
  config.anon_hardening.flush_interval = 150.0;
  config.anon_hardening.flush_jitter = 50.0;
  P3sSystem system(net, std::move(config), rng);
  auto sub = system.make_subscriber("sub1", "alice", {"m"}, rng);
  auto pub = system.make_publisher("pub1", "press", rng);
  net.run_until_idle();
  sub->subscribe({{"sector", "finance"}});
  // The token request itself is held at the batching relay: converge
  // (polling the anonymizer) until the deadline flush releases it.
  ASSERT_TRUE(converge(net, system, sub.get(),
                       [&] { return sub->token_count() == 1u; }));
  ASSERT_NE(system.anonymizer(), nullptr);
  ASSERT_EQ(system.anonymizer()->held_count(), 0u);

  const auto cover_before = counter_value(obs::names::kAnonCoverTotal);
  const auto absorbed_before =
      counter_value(obs::names::kAnonDecoyRepliesTotal);
  const std::size_t wire_to_rs_before =
      frames_between(net, system.directory().anonymizer_name,
                     system.directory().rs_name);
  pub->publish({{"sector", "finance"}, {"grade", "x"}},
               str_to_bytes("lone-payload"), abe::parse_policy("m"), 1e9);
  net.run_until_idle();
  // The single fetch is held: one real request, batch of 3 not reached.
  EXPECT_EQ(system.anonymizer()->held_count(), 1u);
  EXPECT_TRUE(converge(net, system, sub.get(),
                       [&] { return sub->deliveries().size() == 1u; }));
  // The deadline flush topped the lone request up with two decoy fetches,
  // and the decoys' replies were absorbed at the relay, never forwarded.
  EXPECT_EQ(counter_value(obs::names::kAnonCoverTotal), cover_before + 2);
  EXPECT_EQ(counter_value(obs::names::kAnonDecoyRepliesTotal),
            absorbed_before + 2);
  EXPECT_EQ(frames_between(net, system.directory().anonymizer_name,
                           system.directory().rs_name),
            wire_to_rs_before + 3);
  EXPECT_EQ(system.anonymizer()->held_count(), 0u);
}

TEST(AnonHardeningTest, LoneRequestHeldToDeadlineWithoutCover) {
  net::AsyncNetwork net;
  TestRng rng(0x401d);
  P3sConfig config = base_config();
  config.anon_hardening.batching = true;
  config.anon_hardening.batch_size = 3;
  config.anon_hardening.min_batch = 0;  // no cover material: hold, don't pad
  config.anon_hardening.flush_interval = 150.0;
  P3sSystem system(net, std::move(config), rng);
  auto sub = system.make_subscriber("sub1", "alice", {"m"}, rng);
  auto pub = system.make_publisher("pub1", "press", rng);
  net.run_until_idle();
  sub->subscribe({{"sector", "finance"}});
  // Token request held at the relay until its deadline flush, as above.
  ASSERT_TRUE(converge(net, system, sub.get(),
                       [&] { return sub->token_count() == 1u; }));
  ASSERT_NE(system.anonymizer(), nullptr);
  ASSERT_EQ(system.anonymizer()->held_count(), 0u);

  const auto cover_before = counter_value(obs::names::kAnonCoverTotal);
  pub->publish({{"sector", "finance"}, {"grade", "x"}},
               str_to_bytes("held-payload"), abe::parse_policy("m"), 1e9);
  net.run_until_idle();
  EXPECT_EQ(system.anonymizer()->held_count(), 1u);
  EXPECT_EQ(sub->deliveries().size(), 0u);  // still held
  EXPECT_TRUE(converge(net, system, sub.get(),
                       [&] { return sub->deliveries().size() == 1u; }));
  EXPECT_EQ(counter_value(obs::names::kAnonCoverTotal), cover_before);
}

TEST(AnonHardeningTest, FlushAcrossRsBlackoutConvergesExactlyOnce) {
  net::AsyncNetwork net;
  TestRng rng(0xb1ac);
  P3sConfig config = base_config();
  config.reliability.enabled = true;
  config.reliability.timeout = 300.0;
  config.reliability.max_timeout = 1200.0;
  config.reliability.sync_interval = 700.0;
  config.reliability.max_attempts = 16;
  config.anon_hardening.batching = true;
  config.anon_hardening.batch_size = 3;
  config.anon_hardening.min_batch = 3;
  config.anon_hardening.flush_interval = 150.0;
  config.anon_hardening.flush_jitter = 50.0;
  P3sSystem system(net, std::move(config), rng);
  auto sub = system.make_subscriber("sub1", "alice", {"m"}, rng);
  auto pub = system.make_publisher("pub1", "press", rng);
  const auto settled = [&] {
    return pub->connected() && sub->connected() && sub->token_count() == 1;
  };
  sub->subscribe({{"sector", "finance"}});
  ASSERT_TRUE(converge(net, system, sub.get(), settled));

  pub->publish({{"sector", "finance"}, {"grade", "x"}},
               str_to_bytes("blackout-payload"), abe::parse_policy("m"), 1e9);
  net.run_until_idle();
  // The fetch is held at the relay; black the RS out across the flush
  // deadline, so the mixed batch lands on a dark endpoint and is lost.
  net::FaultPlan plan(0xb1ac);
  plan.add_blackout(system.directory().rs_name, net.now(), net.now() + 600.0);
  net.set_fault_plan(std::move(plan));
  EXPECT_TRUE(converge(net, system, sub.get(),
                       [&] { return sub->deliveries().size() == 1u; },
                       800));
  // Exactly-once despite retries re-entering later mixed batches.
  EXPECT_EQ(sub->deliveries().size(), 1u);
  EXPECT_EQ(sub->request_failures(), 0u);
}

TEST(DsHardeningTest, CoverBroadcastsFlowWithoutConfusingSubscribers) {
  net::AsyncNetwork net;
  TestRng rng(0xc0ffe);
  P3sConfig config = base_config();
  config.ds_hardening.batching = true;
  config.ds_hardening.batch_size = 4;
  config.ds_hardening.flush_interval = 200.0;
  config.ds_hardening.cover_interval = 120.0;
  P3sSystem system(net, std::move(config), rng);
  auto sub = system.make_subscriber("sub1", "alice", {"m"}, rng);
  net.run_until_idle();
  sub->subscribe({{"sector", "finance"}});
  net.run_until_idle();
  ASSERT_EQ(sub->token_count(), 1u);

  const auto cover_before = counter_value(obs::names::kDsCoverTotal);
  for (int i = 0; i < 12; ++i) {
    net.advance(120);
    system.ds().poll();
    net.run_until_idle();
  }
  // Cover broadcasts went out on the normal fanout path and the subscriber
  // processed them as ordinary (unmatchable) metadata — no delivery, no
  // crash, no match.
  EXPECT_GT(counter_value(obs::names::kDsCoverTotal), cover_before);
  EXPECT_GT(sub->metadata_received(), 0u);
  EXPECT_EQ(sub->match_count(), 0u);
  EXPECT_TRUE(sub->deliveries().empty());
}

}  // namespace
}  // namespace p3s::core
