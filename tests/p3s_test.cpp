// End-to-end integration tests for the P3S middleware: protocol flows of
// paper Figs. 1-4, deletion semantics, crash/restart behaviour, and the
// §6.1 visibility ("curious log") privacy assertions.
#include <gtest/gtest.h>

#include <algorithm>

#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "exec/pool.hpp"
#include "net/network.hpp"
#include "p3s/system.hpp"

namespace p3s::core {
namespace {

pbe::MetadataSchema test_schema() {
  return pbe::MetadataSchema({
      {"sector", {"tech", "finance", "energy", "health"}},
      {"region", {"us", "eu", "apac"}},
      {"event", {"merger", "earnings", "default", "ipo"}},
  });
}

pbe::Metadata md(const char* sector, const char* region, const char* event) {
  return {{"sector", sector}, {"region", region}, {"event", event}};
}

class P3sEndToEnd : public ::testing::Test {
 protected:
  void build(bool with_anonymizer = true, double grace = 5.0) {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = test_schema();
    config.with_anonymizer = with_anonymizer;
    config.rs_grace_seconds = grace;
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
  }

  net::DirectNetwork net_;
  TestRng rng_{0x935};
  std::unique_ptr<P3sSystem> system_;
};

TEST_F(P3sEndToEnd, MatchingSubscriberReceivesPayload) {
  build();
  auto sub = system_->make_subscriber("sub1", "alice", {"analyst", "org:us"},
                                      rng_);
  auto pub = system_->make_publisher("pub1", "acme-news", rng_);
  ASSERT_TRUE(sub->connected());
  ASSERT_TRUE(pub->connected());

  sub->subscribe({{"sector", "finance"}});
  ASSERT_EQ(sub->token_count(), 1u);

  const Bytes payload = str_to_bytes("lehman default imminent");
  const Guid guid = pub->publish(md("finance", "us", "default"), payload,
                                 abe::parse_policy("analyst and org:us"));

  ASSERT_EQ(sub->deliveries().size(), 1u);
  EXPECT_EQ(sub->deliveries()[0].guid, guid);
  EXPECT_EQ(sub->deliveries()[0].payload, payload);
  EXPECT_EQ(sub->match_count(), 1u);
  EXPECT_EQ(sub->metadata_received(), 1u);
}

TEST_F(P3sEndToEnd, NonMatchingSubscriberLearnsNothing) {
  build();
  auto sub = system_->make_subscriber("sub1", "bob", {"analyst"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "tech"}});

  pub->publish(md("finance", "us", "default"), str_to_bytes("secret"),
               abe::parse_policy("analyst"));

  // Received the encrypted broadcast but no match, no fetch, no delivery.
  EXPECT_EQ(sub->metadata_received(), 1u);
  EXPECT_EQ(sub->match_count(), 0u);
  EXPECT_TRUE(sub->deliveries().empty());
  EXPECT_TRUE(system_->rs().request_counts().empty());
}

TEST_F(P3sEndToEnd, MatchingButUnauthorizedCannotDecrypt) {
  build();
  // Interest matches, but attributes fail the CP-ABE policy.
  auto sub = system_->make_subscriber("sub1", "eve", {"intern"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "finance"}});

  pub->publish(md("finance", "us", "merger"), str_to_bytes("need-to-know"),
               abe::parse_policy("analyst and org:us"));

  EXPECT_EQ(sub->match_count(), 1u);
  EXPECT_EQ(sub->undecryptable_payloads(), 1u);
  EXPECT_TRUE(sub->deliveries().empty());
}

TEST_F(P3sEndToEnd, WildcardInterestSpansValues) {
  build();
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  // Interested in any finance event in any region.
  sub->subscribe({{"sector", "finance"}});

  for (const char* region : {"us", "eu", "apac"}) {
    pub->publish(md("finance", region, "ipo"), str_to_bytes(region),
                 abe::parse_policy("a"));
  }
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("no"),
               abe::parse_policy("a"));

  EXPECT_EQ(sub->deliveries().size(), 3u);
  EXPECT_EQ(sub->metadata_received(), 4u);
}

TEST_F(P3sEndToEnd, MultipleInterestsMultipleSubscribers) {
  build();
  auto s1 = system_->make_subscriber("sub1", "s1", {"a"}, rng_);
  auto s2 = system_->make_subscriber("sub2", "s2", {"a"}, rng_);
  auto s3 = system_->make_subscriber("sub3", "s3", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);

  s1->subscribe({{"sector", "tech"}});
  s1->subscribe({{"sector", "energy"}});
  s2->subscribe({{"sector", "tech"}, {"region", "eu"}});
  s3->subscribe({{"event", "merger"}});

  pub->publish(md("tech", "eu", "merger"), str_to_bytes("m1"),
               abe::parse_policy("a"));
  EXPECT_EQ(s1->deliveries().size(), 1u);
  EXPECT_EQ(s2->deliveries().size(), 1u);
  EXPECT_EQ(s3->deliveries().size(), 1u);

  pub->publish(md("tech", "us", "ipo"), str_to_bytes("m2"),
               abe::parse_policy("a"));
  EXPECT_EQ(s1->deliveries().size(), 2u);
  EXPECT_EQ(s2->deliveries().size(), 1u);  // region mismatch
  EXPECT_EQ(s3->deliveries().size(), 1u);  // event mismatch

  pub->publish(md("energy", "apac", "earnings"), str_to_bytes("m3"),
               abe::parse_policy("a"));
  EXPECT_EQ(s1->deliveries().size(), 3u);  // second interest fired
}

TEST_F(P3sEndToEnd, SubscriberWithTwoMatchingTokensFetchesOnce) {
  build();
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "tech"}});
  sub->subscribe({{"region", "us"}});

  pub->publish(md("tech", "us", "ipo"), str_to_bytes("m"),
               abe::parse_policy("a"));
  EXPECT_EQ(sub->deliveries().size(), 1u);
  // RS served exactly one request for the item.
  ASSERT_EQ(system_->rs().request_counts().size(), 1u);
  EXPECT_EQ(system_->rs().request_counts().begin()->second, 1u);
}

// --- Deletion semantics (paper §4.3 "Deletion") -----------------------------------

TEST_F(P3sEndToEnd, ExpiredItemsAreGarbageCollected) {
  // DirectNetwork ticks stand in for seconds; each send advances the clock
  // by one, so keep generous margins around the TTL + T_G boundary.
  build(/*with_anonymizer=*/true, /*grace=*/5.0);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("m"),
               abe::parse_policy("a"), /*ttl_seconds=*/10.0);
  EXPECT_EQ(system_->rs().stored_items(), 1u);

  net_.advance(11);  // past TTL but inside TTL + T_G
  EXPECT_EQ(system_->rs().garbage_collect(), 0u);
  EXPECT_EQ(system_->rs().stored_items(), 1u);

  net_.advance(5);  // decisively past TTL + T_G
  EXPECT_EQ(system_->rs().garbage_collect(), 1u);
  EXPECT_EQ(system_->rs().stored_items(), 0u);
}

TEST_F(P3sEndToEnd, StrictGraceZeroFailsSlowConsumers) {
  // Paper: with T_G = 0 a slow matched subscriber may fail to fetch.
  build(/*with_anonymizer=*/true, /*grace=*/0.0);
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);

  pub->publish(md("tech", "us", "ipo"), str_to_bytes("m"),
               abe::parse_policy("a"), /*ttl_seconds=*/1.0);
  // The slow subscriber only subscribes (and would match) after expiry.
  net_.advance(5);
  system_->rs().garbage_collect();
  sub->subscribe({{"sector", "tech"}});

  // Republish the same metadata so the subscriber has something to match
  // against — but fetch the OLD guid is impossible; instead verify the
  // deleted item cannot be fetched: deliveries stay empty and stored == 1
  // for the new item only.
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("fresh"),
               abe::parse_policy("a"), /*ttl_seconds=*/100.0);
  EXPECT_EQ(sub->deliveries().size(), 1u);
  EXPECT_EQ(bytes_to_str(sub->deliveries()[0].payload), "fresh");
  EXPECT_EQ(system_->rs().stored_items(), 1u);
}

TEST_F(P3sEndToEnd, MatchedButDeletedItemYieldsFetchFailure) {
  // Paper §4.3: "For a strict interpretation ... T_G can be set to 0, which
  // may result in considerably more failures to fetch the item for some
  // (slower) clients with matched subscription."
  build(/*with_anonymizer=*/true, /*grace=*/0.0);
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "tech"}});

  // TTL 0 + grace 0: the item expires the instant it is stored; by the time
  // the matched subscriber's request reaches the RS (later network ticks),
  // the item is gone.
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("m"),
               abe::parse_policy("a"), /*ttl_seconds=*/0.0);

  EXPECT_EQ(sub->match_count(), 1u);
  EXPECT_EQ(sub->fetch_failures(), 1u);
  EXPECT_TRUE(sub->deliveries().empty());
}

// --- Restart / robustness (paper §6.1) ----------------------------------------------

TEST_F(P3sEndToEnd, DsRestartRequiresReregistration) {
  build();
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "tech"}});

  system_->ds().crash_and_restart();

  // Clients re-register (tokens survive client-side; paper §6.1).
  sub->reconnect();
  pub->connect();

  pub->publish(md("tech", "us", "ipo"), str_to_bytes("after-restart"),
               abe::parse_policy("a"));
  ASSERT_EQ(sub->deliveries().size(), 1u);
  EXPECT_EQ(bytes_to_str(sub->deliveries()[0].payload), "after-restart");
}

TEST_F(P3sEndToEnd, RsSnapshotRestorePersistsEncryptedContent) {
  build();
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("durable"),
               abe::parse_policy("a"), 1000.0);

  // "Crash": persist, wipe, restore — no re-encryption needed.
  const Bytes snap = system_->rs().snapshot();
  system_->rs().restore(Bytes{0, 0, 0, 0});  // empty store
  EXPECT_EQ(system_->rs().stored_items(), 0u);
  system_->rs().restore(snap);
  EXPECT_EQ(system_->rs().stored_items(), 1u);

  sub->subscribe({{"sector", "tech"}});
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("durable"),
               abe::parse_policy("a"), 1000.0);
  EXPECT_EQ(sub->deliveries().size(), 1u);
}

TEST_F(P3sEndToEnd, RsFilePersistenceSurvivesRestart) {
  build();
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("on-disk"),
               abe::parse_policy("a"), 1e6);

  const std::string path = ::testing::TempDir() + "/p3s_rs_store.bin";
  system_->rs().save_to_file(path);
  system_->rs().restore(Bytes{0, 0, 0, 0});  // crash wipes memory
  EXPECT_EQ(system_->rs().stored_items(), 0u);
  system_->rs().load_from_file(path);  // restart reloads from disk
  EXPECT_EQ(system_->rs().stored_items(), 1u);

  sub->subscribe({{"sector", "tech"}});
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("on-disk"),
               abe::parse_policy("a"), 1e6);
  EXPECT_EQ(sub->deliveries().size(), 1u);

  EXPECT_THROW(system_->rs().load_from_file("/nonexistent/nope.bin"),
               std::runtime_error);
}

TEST_F(P3sEndToEnd, SubscriberRestartRefreshesTokens) {
  build();
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "tech"}});
  EXPECT_EQ(sub->token_count(), 1u);

  sub->reconnect();       // new channel
  sub->refresh_tokens();  // re-obtain tokens from the PBE-TS
  EXPECT_EQ(sub->token_count(), 1u);

  pub->publish(md("tech", "us", "ipo"), str_to_bytes("m"),
               abe::parse_policy("a"));
  EXPECT_EQ(sub->deliveries().size(), 1u);
}

// --- Unsubscribe / clean departure ------------------------------------------------

TEST_F(P3sEndToEnd, UnsubscribeStopsMatchingImmediately) {
  build();
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "tech"}});
  sub->subscribe({{"sector", "finance"}});

  pub->publish(md("tech", "us", "ipo"), str_to_bytes("m1"),
               abe::parse_policy("a"));
  EXPECT_EQ(sub->deliveries().size(), 1u);

  EXPECT_TRUE(sub->unsubscribe({{"sector", "tech"}}));
  EXPECT_EQ(sub->token_count(), 1u);  // finance token remains
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("m2"),
               abe::parse_policy("a"));
  EXPECT_EQ(sub->deliveries().size(), 1u);  // no new delivery
  pub->publish(md("finance", "us", "ipo"), str_to_bytes("m3"),
               abe::parse_policy("a"));
  EXPECT_EQ(sub->deliveries().size(), 2u);  // other interest still live

  EXPECT_FALSE(sub->unsubscribe({{"sector", "health"}}));  // never registered
}

TEST_F(P3sEndToEnd, DisconnectedSubscriberStopsReceivingBroadcasts) {
  build();
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "tech"}});
  sub->disconnect();
  EXPECT_FALSE(sub->connected());
  EXPECT_EQ(system_->ds().subscriber_count(), 0u);

  pub->publish(md("tech", "us", "ipo"), str_to_bytes("m"),
               abe::parse_policy("a"));
  EXPECT_EQ(sub->metadata_received(), 0u);

  // Rejoin: reconnect and matching resumes with the kept tokens.
  sub->reconnect();
  pub->publish(md("tech", "us", "ipo"), str_to_bytes("back"),
               abe::parse_policy("a"));
  EXPECT_EQ(sub->deliveries().size(), 1u);
}

TEST_F(P3sEndToEnd, DisconnectedPublisherCannotPublish) {
  build();
  auto pub = system_->make_publisher("pub1", "p", rng_);
  pub->disconnect();
  EXPECT_EQ(system_->ds().publisher_count(), 0u);
  EXPECT_THROW(pub->publish(md("tech", "us", "ipo"), str_to_bytes("m"),
                            abe::parse_policy("a")),
               std::logic_error);
}

// --- Certificate enforcement -----------------------------------------------------

TEST_F(P3sEndToEnd, ForgedCertificateRejectedByTokenServer) {
  build();
  auto creds = system_->ara().register_subscriber("mallory", {"a"}, rng_);
  creds.certificate.pseudonym = "admin";  // tamper after signing
  Subscriber sub(net_, "subx", creds, rng_);
  sub.connect();
  sub.subscribe({{"sector", "tech"}});
  EXPECT_EQ(sub.token_count(), 0u);
  EXPECT_EQ(sub.token_rejections(), 1u);
  EXPECT_EQ(system_->token_server().rejected_requests(), 1u);
}

TEST_F(P3sEndToEnd, PublisherCertificateCannotGetTokens) {
  build();
  const auto pub_creds = system_->ara().register_publisher("pressco", rng_);
  // A publisher tries to request a token using its publisher certificate.
  auto sub_creds = system_->ara().register_subscriber("shim", {"a"}, rng_);
  sub_creds.certificate = pub_creds.certificate;
  Subscriber shim(net_, "shim", sub_creds, rng_);
  shim.connect();
  shim.subscribe({{"sector", "tech"}});
  EXPECT_EQ(shim.token_count(), 0u);
  EXPECT_EQ(shim.token_rejections(), 1u);
}

// --- Batch publishing --------------------------------------------------------------

TEST_F(P3sEndToEnd, PublishBatchDeliversLikeIndividualPublishes) {
  build();
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "finance"}});

  std::vector<PublishItem> items;
  items.push_back({md("finance", "us", "ipo"), str_to_bytes("m1"),
                   abe::parse_policy("a")});
  items.push_back({md("tech", "us", "ipo"), str_to_bytes("no-match"),
                   abe::parse_policy("a")});
  items.push_back({md("finance", "eu", "merger"), str_to_bytes("m3"),
                   abe::parse_policy("a")});
  const std::vector<Guid> guids = pub->publish_batch(items);

  ASSERT_EQ(guids.size(), 3u);
  EXPECT_EQ(sub->metadata_received(), 3u);
  ASSERT_EQ(sub->deliveries().size(), 2u);
  EXPECT_EQ(sub->deliveries()[0].guid, guids[0]);
  EXPECT_EQ(bytes_to_str(sub->deliveries()[0].payload), "m1");
  EXPECT_EQ(sub->deliveries()[1].guid, guids[2]);
  EXPECT_EQ(bytes_to_str(sub->deliveries()[1].payload), "m3");
}

// The parallel batch path must be bit-identical to the sequential one: run
// the same seeded scenario under a 1-thread and a 4-thread global pool and
// compare every frame an eavesdropper would see on the wire.
TEST(P3sBatchEquivalence, WireTrafficIdenticalForAnyPoolSize) {
  const auto run = [](std::size_t threads) {
    exec::Pool::set_global_threads(threads);
    net::DirectNetwork net;
    TestRng rng(0x77aa);
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = test_schema();
    P3sSystem system(net, std::move(config), rng);
    auto sub = system.make_subscriber("sub1", "s", {"a"}, rng);
    auto pub = system.make_publisher("pub1", "p", rng);
    sub->subscribe({{"sector", "finance"}});
    sub->subscribe({{"event", "merger"}});

    std::vector<PublishItem> items;
    items.push_back({md("finance", "us", "ipo"), str_to_bytes("a"),
                     abe::parse_policy("a")});
    items.push_back({md("tech", "eu", "merger"), str_to_bytes("bb"),
                     abe::parse_policy("a")});
    items.push_back({md("energy", "us", "earnings"), str_to_bytes("ccc"),
                     abe::parse_policy("a")});
    items.push_back({md("finance", "apac", "merger"), str_to_bytes("dddd"),
                     abe::parse_policy("a")});
    pub->publish_batch(items);

    std::vector<net::TrafficRecord> traffic = net.traffic();
    std::vector<Bytes> payloads;
    for (const auto& d : sub->deliveries()) payloads.push_back(d.payload);
    return std::pair(std::move(traffic), std::move(payloads));
  };

  const auto [seq_traffic, seq_deliveries] = run(1);
  const auto [par_traffic, par_deliveries] = run(4);
  exec::Pool::set_global_threads(1);  // restore determinism for later tests

  EXPECT_EQ(seq_deliveries, par_deliveries);
  ASSERT_EQ(seq_traffic.size(), par_traffic.size());
  for (std::size_t i = 0; i < seq_traffic.size(); ++i) {
    EXPECT_EQ(seq_traffic[i].from, par_traffic[i].from) << "frame " << i;
    EXPECT_EQ(seq_traffic[i].to, par_traffic[i].to) << "frame " << i;
    EXPECT_EQ(seq_traffic[i].frame, par_traffic[i].frame) << "frame " << i;
  }
}

// --- Without the anonymization service ---------------------------------------------

TEST_F(P3sEndToEnd, WorksWithoutAnonymizer) {
  build(/*with_anonymizer=*/false);
  auto sub = system_->make_subscriber("sub1", "s", {"a"}, rng_);
  auto pub = system_->make_publisher("pub1", "p", rng_);
  sub->subscribe({{"sector", "finance"}});
  pub->publish(md("finance", "us", "ipo"), str_to_bytes("m"),
               abe::parse_policy("a"));
  EXPECT_EQ(sub->deliveries().size(), 1u);
  // Without anonymization the PBE-TS sees the subscriber's network identity.
  ASSERT_EQ(system_->token_server().seen_predicates().size(), 1u);
  EXPECT_EQ(system_->token_server().seen_predicates()[0].network_from, "sub1");
}

}  // namespace
}  // namespace p3s::core
