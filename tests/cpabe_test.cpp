#include <gtest/gtest.h>

#include "abe/cpabe.hpp"
#include "common/rng.hpp"

namespace p3s::abe {
namespace {

class CpabeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new TestRng(0xabe);
    keys_ = new CpabeKeys(cpabe_setup(pairing::Pairing::test_pairing(), *rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }

  static std::set<std::string> attrs(std::initializer_list<const char*> list) {
    std::set<std::string> out;
    for (const char* a : list) out.insert(a);
    return out;
  }

  static TestRng* rng_;
  static CpabeKeys* keys_;
};

TestRng* CpabeTest::rng_ = nullptr;
CpabeKeys* CpabeTest::keys_ = nullptr;

TEST_F(CpabeTest, DecryptsWhenPolicySatisfied) {
  const auto sk = cpabe_keygen(*keys_, attrs({"analyst", "org:us"}), *rng_);
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct =
      cpabe_encrypt(keys_->pk, m, parse_policy("analyst and org:us"), *rng_);
  const auto out = cpabe_decrypt(keys_->pk, sk, ct);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST_F(CpabeTest, FailsWhenPolicyUnsatisfied) {
  const auto sk = cpabe_keygen(*keys_, attrs({"analyst"}), *rng_);
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct =
      cpabe_encrypt(keys_->pk, m, parse_policy("analyst and org:us"), *rng_);
  EXPECT_FALSE(cpabe_decrypt(keys_->pk, sk, ct).has_value());
}

TEST_F(CpabeTest, OrPolicyEitherBranch) {
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct =
      cpabe_encrypt(keys_->pk, m, parse_policy("org:us or org:uk"), *rng_);
  for (const char* a : {"org:us", "org:uk"}) {
    const auto sk = cpabe_keygen(*keys_, attrs({a}), *rng_);
    const auto out = cpabe_decrypt(keys_->pk, sk, ct);
    ASSERT_TRUE(out.has_value()) << a;
    EXPECT_EQ(*out, m) << a;
  }
  const auto sk_fr = cpabe_keygen(*keys_, attrs({"org:fr"}), *rng_);
  EXPECT_FALSE(cpabe_decrypt(keys_->pk, sk_fr, ct).has_value());
}

TEST_F(CpabeTest, ThresholdPolicy) {
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = cpabe_encrypt(keys_->pk, m, parse_policy("2 of (a, b, c)"), *rng_);
  const auto sk_ab = cpabe_keygen(*keys_, attrs({"a", "b"}), *rng_);
  const auto sk_bc = cpabe_keygen(*keys_, attrs({"b", "c"}), *rng_);
  const auto sk_abc = cpabe_keygen(*keys_, attrs({"a", "b", "c"}), *rng_);
  const auto sk_a = cpabe_keygen(*keys_, attrs({"a"}), *rng_);
  EXPECT_EQ(cpabe_decrypt(keys_->pk, sk_ab, ct), m);
  EXPECT_EQ(cpabe_decrypt(keys_->pk, sk_bc, ct), m);
  EXPECT_EQ(cpabe_decrypt(keys_->pk, sk_abc, ct), m);
  EXPECT_FALSE(cpabe_decrypt(keys_->pk, sk_a, ct).has_value());
}

TEST_F(CpabeTest, DeepNestedPolicy) {
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto policy =
      parse_policy("(lead or 2 of (senior, cleared, local)) and org:us");
  const auto ct = cpabe_encrypt(keys_->pk, m, policy, *rng_);
  EXPECT_EQ(cpabe_decrypt(keys_->pk,
                          cpabe_keygen(*keys_, attrs({"lead", "org:us"}), *rng_),
                          ct),
            m);
  EXPECT_EQ(cpabe_decrypt(
                keys_->pk,
                cpabe_keygen(*keys_, attrs({"senior", "local", "org:us"}), *rng_),
                ct),
            m);
  EXPECT_FALSE(cpabe_decrypt(keys_->pk,
                             cpabe_keygen(*keys_, attrs({"lead"}), *rng_), ct)
                   .has_value());
  EXPECT_FALSE(
      cpabe_decrypt(keys_->pk,
                    cpabe_keygen(*keys_, attrs({"senior", "org:us"}), *rng_), ct)
          .has_value());
}

TEST_F(CpabeTest, DecryptMatchesReferenceAcrossPolicyShapes) {
  // The flattened single-multi-pairing decrypt must agree with the original
  // recursive evaluation — including which leaves get selected when a
  // policy is only partially satisfied (first k satisfied children win).
  const char* policies[] = {
      "analyst",
      "analyst and org:us",
      "analyst or clearance:ts",
      "2 of (analyst, org:us, clearance:ts)",
      "(analyst and org:us) or (auditor and clearance:ts)",
      "2 of (analyst, auditor, (org:us or org:eu))",
  };
  const auto key_sets = {attrs({"analyst", "org:us"}),
                         attrs({"auditor", "clearance:ts"}),
                         attrs({"analyst", "org:eu", "auditor"}),
                         attrs({"org:us"})};
  for (const char* policy : policies) {
    const auto m = keys_->pk.pairing->random_gt(*rng_);
    const auto ct = cpabe_encrypt(keys_->pk, m, parse_policy(policy), *rng_);
    for (const auto& attr_set : key_sets) {
      const auto sk = cpabe_keygen(*keys_, attr_set, *rng_);
      const auto fast = cpabe_decrypt(keys_->pk, sk, ct);
      const auto ref = cpabe_decrypt_reference(keys_->pk, sk, ct);
      ASSERT_EQ(fast.has_value(), ref.has_value()) << policy;
      if (fast.has_value()) {
        EXPECT_EQ(*fast, *ref) << policy;
        EXPECT_EQ(*fast, m) << policy;
      }
    }
  }
}

TEST_F(CpabeTest, RepeatedAttributeInPolicy) {
  // The same attribute may appear under several leaves.
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct =
      cpabe_encrypt(keys_->pk, m, parse_policy("(a and b) or (a and c)"), *rng_);
  EXPECT_EQ(cpabe_decrypt(keys_->pk, cpabe_keygen(*keys_, attrs({"a", "c"}), *rng_), ct),
            m);
}

TEST_F(CpabeTest, CollusionResistance) {
  // Alice has "a", Bob has "b"; policy needs both. Merging their key
  // components must NOT decrypt (keys are blinded with distinct r).
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = cpabe_encrypt(keys_->pk, m, parse_policy("a and b"), *rng_);
  const auto alice = cpabe_keygen(*keys_, attrs({"a"}), *rng_);
  const auto bob = cpabe_keygen(*keys_, attrs({"b"}), *rng_);

  CpabeSecretKey frankenstein = alice;  // Alice's D (blinded with r_alice)
  frankenstein.components.insert(bob.components.begin(), bob.components.end());
  const auto out = cpabe_decrypt(keys_->pk, frankenstein, ct);
  // Either decryption aborts or yields a wrong value — never the message.
  if (out.has_value()) {
    EXPECT_NE(*out, m);
  }
}

TEST_F(CpabeTest, KeygenRejectsEmptyAttributeSet) {
  EXPECT_THROW(cpabe_keygen(*keys_, {}, *rng_), std::invalid_argument);
}

TEST_F(CpabeTest, CiphertextSerializationRoundTrip) {
  const auto& p = *keys_->pk.pairing;
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = cpabe_encrypt(keys_->pk, m, parse_policy("a and (b or c)"), *rng_);
  const auto ct2 = CpabeCiphertext::deserialize(p, ct.serialize(p));
  const auto sk = cpabe_keygen(*keys_, attrs({"a", "c"}), *rng_);
  EXPECT_EQ(cpabe_decrypt(keys_->pk, sk, ct2), m);
}

TEST_F(CpabeTest, KeySerializationRoundTrip) {
  const auto& p = *keys_->pk.pairing;
  const auto sk = cpabe_keygen(*keys_, attrs({"a", "b"}), *rng_);
  const auto sk2 = CpabeSecretKey::deserialize(p, sk.serialize(p));
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = cpabe_encrypt(keys_->pk, m, parse_policy("a and b"), *rng_);
  EXPECT_EQ(cpabe_decrypt(keys_->pk, sk2, ct), m);

  const auto pk2 = CpabePublicKey::deserialize(keys_->pk.pairing,
                                               keys_->pk.serialize());
  EXPECT_EQ(pk2.g, keys_->pk.g);
  EXPECT_EQ(pk2.e_gg_alpha, keys_->pk.e_gg_alpha);
}

TEST_F(CpabeTest, HybridBytesRoundTrip) {
  const Bytes payload = str_to_bytes("quarterly M&A brief: Lehman Brothers");
  const auto ct = cpabe_encrypt_bytes(keys_->pk, payload,
                                      parse_policy("analyst and org:us"), *rng_);
  const auto sk = cpabe_keygen(*keys_, attrs({"analyst", "org:us"}), *rng_);
  const auto out = cpabe_decrypt_bytes(keys_->pk, sk, ct);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
}

TEST_F(CpabeTest, HybridFailsClosedOnWrongAttributes) {
  const auto ct = cpabe_encrypt_bytes(keys_->pk, str_to_bytes("secret"),
                                      parse_policy("a and b"), *rng_);
  const auto sk = cpabe_keygen(*keys_, attrs({"a"}), *rng_);
  EXPECT_FALSE(cpabe_decrypt_bytes(keys_->pk, sk, ct).has_value());
}

TEST_F(CpabeTest, HybridRejectsTamperedCiphertext) {
  const auto ct = cpabe_encrypt_bytes(keys_->pk, str_to_bytes("secret"),
                                      parse_policy("a"), *rng_);
  const auto sk = cpabe_keygen(*keys_, attrs({"a"}), *rng_);
  Bytes bad = ct;
  bad[bad.size() - 3] ^= 1;  // flip a DEM bit
  EXPECT_FALSE(cpabe_decrypt_bytes(keys_->pk, sk, bad).has_value());
  EXPECT_FALSE(cpabe_decrypt_bytes(keys_->pk, sk, Bytes{9, 9}).has_value());
}

TEST_F(CpabeTest, PolicyIsVisibleInTheClear) {
  // Paper §3.2: CP-ABE transmits the policy with the ciphertext; anyone
  // (e.g. the RS) can read it without keys.
  const auto policy = parse_policy("analyst and (org:us or org:uk)");
  const auto ct =
      cpabe_encrypt_bytes(keys_->pk, str_to_bytes("x"), policy, *rng_);
  EXPECT_EQ(cpabe_peek_policy(*keys_->pk.pairing, ct), policy);
}

TEST_F(CpabeTest, CiphertextsAreRandomized) {
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto policy = parse_policy("a");
  const auto ct1 = cpabe_encrypt(keys_->pk, m, policy, *rng_);
  const auto ct2 = cpabe_encrypt(keys_->pk, m, policy, *rng_);
  EXPECT_NE(ct1.c_tilde, ct2.c_tilde);
}

TEST_F(CpabeTest, SizeGrowsLinearlyInPolicyLeaves) {
  // The paper models |CT_A| = 2vk + |payload|: two group elements per leaf.
  const auto& p = *keys_->pk.pairing;
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct2 = cpabe_encrypt(keys_->pk, m, parse_policy("a and b"), *rng_);
  const auto ct3 =
      cpabe_encrypt(keys_->pk, m, parse_policy("a and b and c"), *rng_);
  const auto ct5 = cpabe_encrypt(
      keys_->pk, m, parse_policy("a and b and c and d and e"), *rng_);
  const std::size_t s2 = ct2.serialize(p).size();
  const std::size_t s3 = ct3.serialize(p).size();
  const std::size_t s5 = ct5.serialize(p).size();
  // Each extra leaf costs a fixed amount (two G1 points + framing).
  EXPECT_GE(s3 - s2, 2 * p.g1_bytes());
  EXPECT_EQ(s5 - s3, 2 * (s3 - s2));
}

}  // namespace
}  // namespace p3s::abe
