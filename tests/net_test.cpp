#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "net/secure.hpp"
#include "pairing/pairing.hpp"
#include "pairing/schnorr.hpp"

namespace p3s::net {
namespace {

TEST(DirectNetwork, DeliversFrames) {
  DirectNetwork net;
  std::vector<std::pair<std::string, Bytes>> got;
  net.register_endpoint("b", [&](const std::string& from, BytesView frame) {
    got.emplace_back(from, Bytes(frame.begin(), frame.end()));
  });
  net.send("a", "b", str_to_bytes("hello"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, "a");
  EXPECT_EQ(bytes_to_str(got[0].second), "hello");
}

TEST(DirectNetwork, DropsFramesToUnknownEndpoints) {
  DirectNetwork net;
  EXPECT_NO_THROW(net.send("a", "ghost", str_to_bytes("x")));
  // Still recorded on the wire.
  EXPECT_EQ(net.traffic().size(), 1u);
}

TEST(DirectNetwork, DuplicateEndpointRejected) {
  DirectNetwork net;
  net.register_endpoint("a", [](const std::string&, BytesView) {});
  EXPECT_THROW(net.register_endpoint("a", [](const std::string&, BytesView) {}),
               std::invalid_argument);
}

TEST(DirectNetwork, UnregisterStopsDelivery) {
  DirectNetwork net;
  int count = 0;
  net.register_endpoint("a", [&](const std::string&, BytesView) { ++count; });
  net.send("x", "a", {});
  net.unregister_endpoint("a");
  net.send("x", "a", {});
  EXPECT_EQ(count, 1);
}

TEST(DirectNetwork, TrafficLogRecordsSizesAndEndpoints) {
  DirectNetwork net;
  net.register_endpoint("b", [](const std::string&, BytesView) {});
  net.send("a", "b", Bytes(100));
  net.send("a", "b", Bytes(50));
  net.send("b", "a", Bytes(7));
  EXPECT_EQ(net.bytes_sent_by("a"), 150u);
  EXPECT_EQ(net.bytes_sent_by("b"), 7u);
  EXPECT_EQ(net.traffic().size(), 3u);
  EXPECT_EQ(net.traffic()[0].size, 100u);
}

TEST(DirectNetwork, ReentrantSendDuringDelivery) {
  DirectNetwork net;
  std::vector<std::string> order;
  net.register_endpoint("relay", [&](const std::string&, BytesView frame) {
    order.push_back("relay");
    net.send("relay", "sink", Bytes(frame.begin(), frame.end()));
  });
  net.register_endpoint("sink", [&](const std::string&, BytesView) {
    order.push_back("sink");
  });
  net.send("src", "relay", str_to_bytes("m"));
  EXPECT_EQ(order, (std::vector<std::string>{"relay", "sink"}));
}

class SecureSessionTest : public ::testing::Test {
 protected:
  pairing::PairingPtr pp_ = pairing::Pairing::test_pairing();
  TestRng rng_{0x7e57};
};

TEST_F(SecureSessionTest, RoundTrip) {
  const auto kp = pairing::ecies_keygen(*pp_, rng_);
  Bytes hello;
  SecureSession client = SecureSession::initiate(*pp_, kp.public_key, rng_, hello);
  auto server = SecureSession::accept(*pp_, kp.secret, hello);
  ASSERT_TRUE(server.has_value());

  const Bytes rec = client.seal(str_to_bytes("register"), rng_);
  const auto out = server->open(rec);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(bytes_to_str(*out), "register");

  // And the reverse direction.
  const Bytes resp = server->seal(str_to_bytes("ack"), rng_);
  const auto out2 = client.open(resp);
  ASSERT_TRUE(out2.has_value());
  EXPECT_EQ(bytes_to_str(*out2), "ack");
}

TEST_F(SecureSessionTest, WrongServerKeyRejectsHello) {
  const auto kp = pairing::ecies_keygen(*pp_, rng_);
  const auto other = pairing::ecies_keygen(*pp_, rng_);
  Bytes hello;
  (void)SecureSession::initiate(*pp_, kp.public_key, rng_, hello);
  EXPECT_FALSE(SecureSession::accept(*pp_, other.secret, hello).has_value());
}

TEST_F(SecureSessionTest, ReplayDetected) {
  const auto kp = pairing::ecies_keygen(*pp_, rng_);
  Bytes hello;
  SecureSession client = SecureSession::initiate(*pp_, kp.public_key, rng_, hello);
  auto server = SecureSession::accept(*pp_, kp.secret, hello);
  const Bytes rec = client.seal(str_to_bytes("once"), rng_);
  ASSERT_TRUE(server->open(rec).has_value());
  EXPECT_FALSE(server->open(rec).has_value());  // replay
}

TEST_F(SecureSessionTest, TamperDetected) {
  const auto kp = pairing::ecies_keygen(*pp_, rng_);
  Bytes hello;
  SecureSession client = SecureSession::initiate(*pp_, kp.public_key, rng_, hello);
  auto server = SecureSession::accept(*pp_, kp.secret, hello);
  Bytes rec = client.seal(str_to_bytes("payload"), rng_);
  rec[rec.size() / 2] ^= 1;
  EXPECT_FALSE(server->open(rec).has_value());
}

TEST_F(SecureSessionTest, CrossDirectionKeysDiffer) {
  // A record sealed by the client cannot be opened by the client's own
  // receive path (directional keys).
  const auto kp = pairing::ecies_keygen(*pp_, rng_);
  Bytes hello;
  SecureSession client = SecureSession::initiate(*pp_, kp.public_key, rng_, hello);
  Bytes rec = client.seal(str_to_bytes("m"), rng_);
  EXPECT_FALSE(client.open(rec).has_value());
}

TEST_F(SecureSessionTest, SequencePreservedAcrossManyRecords) {
  const auto kp = pairing::ecies_keygen(*pp_, rng_);
  Bytes hello;
  SecureSession client = SecureSession::initiate(*pp_, kp.public_key, rng_, hello);
  auto server = SecureSession::accept(*pp_, kp.secret, hello);
  for (int i = 0; i < 50; ++i) {
    const Bytes rec = client.seal(str_to_bytes("m" + std::to_string(i)), rng_);
    const auto out = server->open(rec);
    ASSERT_TRUE(out.has_value()) << i;
    EXPECT_EQ(bytes_to_str(*out), "m" + std::to_string(i));
  }
}

// --- Schnorr certificates ------------------------------------------------------

TEST_F(SecureSessionTest, SchnorrSignVerify) {
  const auto kp = pairing::schnorr_keygen(*pp_, rng_);
  const Bytes msg = str_to_bytes("subscriber-cert:alice");
  const auto sig = pairing::schnorr_sign(*pp_, kp.secret, msg, rng_);
  EXPECT_TRUE(pairing::schnorr_verify(*pp_, kp.public_key, msg, sig));
  EXPECT_FALSE(pairing::schnorr_verify(*pp_, kp.public_key,
                                       str_to_bytes("subscriber-cert:mallory"),
                                       sig));
  const auto other = pairing::schnorr_keygen(*pp_, rng_);
  EXPECT_FALSE(pairing::schnorr_verify(*pp_, other.public_key, msg, sig));
}

TEST_F(SecureSessionTest, SchnorrSerializationRoundTrip) {
  const auto kp = pairing::schnorr_keygen(*pp_, rng_);
  const Bytes msg = str_to_bytes("m");
  const auto sig = pairing::schnorr_sign(*pp_, kp.secret, msg, rng_);
  const auto sig2 =
      pairing::SchnorrSignature::deserialize(*pp_, sig.serialize(*pp_));
  EXPECT_TRUE(pairing::schnorr_verify(*pp_, kp.public_key, msg, sig2));
}

}  // namespace
}  // namespace p3s::net
