#include <gtest/gtest.h>

#include "abe/policy.hpp"
#include "abe/shamir.hpp"
#include "common/rng.hpp"
#include "math/modular.hpp"
#include "math/prime.hpp"

namespace p3s::abe {
namespace {

std::set<std::string> attrs(std::initializer_list<const char*> list) {
  std::set<std::string> out;
  for (const char* a : list) out.insert(a);
  return out;
}

TEST(Policy, SingleAttribute) {
  const PolicyNode p = parse_policy("analyst");
  EXPECT_TRUE(p.is_leaf());
  EXPECT_TRUE(p.satisfied_by(attrs({"analyst"})));
  EXPECT_FALSE(p.satisfied_by(attrs({"trader"})));
  EXPECT_EQ(p.leaf_count(), 1u);
}

TEST(Policy, AndSemantics) {
  const PolicyNode p = parse_policy("a and b and c");
  EXPECT_TRUE(p.satisfied_by(attrs({"a", "b", "c"})));
  EXPECT_TRUE(p.satisfied_by(attrs({"a", "b", "c", "extra"})));
  EXPECT_FALSE(p.satisfied_by(attrs({"a", "b"})));
  EXPECT_EQ(p.k(), 3u);
  EXPECT_EQ(p.leaf_count(), 3u);
}

TEST(Policy, OrSemantics) {
  const PolicyNode p = parse_policy("a or b or c");
  EXPECT_TRUE(p.satisfied_by(attrs({"b"})));
  EXPECT_FALSE(p.satisfied_by(attrs({"x"})));
  EXPECT_EQ(p.k(), 1u);
}

TEST(Policy, PrecedenceAndBindsTighter) {
  // "a or b and c" == "a or (b and c)"
  const PolicyNode p = parse_policy("a or b and c");
  EXPECT_TRUE(p.satisfied_by(attrs({"a"})));
  EXPECT_TRUE(p.satisfied_by(attrs({"b", "c"})));
  EXPECT_FALSE(p.satisfied_by(attrs({"b"})));
}

TEST(Policy, Parentheses) {
  const PolicyNode p = parse_policy("(a or b) and c");
  EXPECT_TRUE(p.satisfied_by(attrs({"a", "c"})));
  EXPECT_TRUE(p.satisfied_by(attrs({"b", "c"})));
  EXPECT_FALSE(p.satisfied_by(attrs({"a", "b"})));
}

TEST(Policy, ThresholdGate) {
  const PolicyNode p = parse_policy("2 of (a, b, c)");
  EXPECT_FALSE(p.satisfied_by(attrs({"a"})));
  EXPECT_TRUE(p.satisfied_by(attrs({"a", "c"})));
  EXPECT_TRUE(p.satisfied_by(attrs({"a", "b", "c"})));
  EXPECT_EQ(p.k(), 2u);
}

TEST(Policy, NestedThreshold) {
  const PolicyNode p = parse_policy("2 of (a and b, c, d or e)");
  EXPECT_TRUE(p.satisfied_by(attrs({"a", "b", "c"})));
  EXPECT_TRUE(p.satisfied_by(attrs({"c", "e"})));
  EXPECT_FALSE(p.satisfied_by(attrs({"a", "c"})));  // "a" alone fails a∧b
}

TEST(Policy, RealisticCoalitionPolicy) {
  const PolicyNode p =
      parse_policy("intel_analyst and (nation:us or nation:uk) and tier-2");
  EXPECT_TRUE(p.satisfied_by(attrs({"intel_analyst", "nation:uk", "tier-2"})));
  EXPECT_FALSE(p.satisfied_by(attrs({"intel_analyst", "nation:fr", "tier-2"})));
}

TEST(Policy, AttributeSet) {
  const PolicyNode p = parse_policy("a and (b or a) and 2 of (c, d, a)");
  EXPECT_EQ(p.attribute_set(), attrs({"a", "b", "c", "d"}));
}

TEST(Policy, ToStringRoundTrips) {
  for (const char* text :
       {"a", "a and b", "a or b", "(a or b) and c", "2 of (a, b, c)",
        "2 of (a and b, c or d, e)", "a and b and c or d"}) {
    const PolicyNode p = parse_policy(text);
    const PolicyNode p2 = parse_policy(p.to_string());
    EXPECT_EQ(p, p2) << text << " -> " << p.to_string();
  }
}

TEST(Policy, SerializationRoundTrips) {
  for (const char* text :
       {"a", "a and b", "2 of (a, b or x, c and y)", "org:us.mil-1"}) {
    const PolicyNode p = parse_policy(text);
    EXPECT_EQ(PolicyNode::deserialize(p.serialize()), p) << text;
  }
}

TEST(Policy, ParseErrors) {
  for (const char* text : {"", "and", "a and", "a or or b", "(a", "a)",
                           "5 of (a, b)", "0 of (a, b)", "2 of ()", "a b"}) {
    EXPECT_THROW(parse_policy(text), std::invalid_argument) << text;
  }
}

TEST(Policy, NumericAttributeNameIsAllowed) {
  // A bare number not followed by "of" is an attribute.
  const PolicyNode p = parse_policy("42 and a");
  EXPECT_TRUE(p.satisfied_by(attrs({"42", "a"})));
}

TEST(Policy, ConstructorsValidate) {
  EXPECT_THROW(PolicyNode::leaf(""), std::invalid_argument);
  EXPECT_THROW(PolicyNode::threshold(1, {}), std::invalid_argument);
  std::vector<PolicyNode> kids;
  kids.push_back(PolicyNode::leaf("a"));
  EXPECT_THROW(PolicyNode::threshold(2, std::move(kids)), std::invalid_argument);
}

// --- Shamir ------------------------------------------------------------------

TEST(Shamir, InterpolationRecoversSecret) {
  TestRng rng(41);
  const math::BigInt r = math::random_prime(rng, 64);
  const math::BigInt secret = math::BigInt::random_below(rng, r);
  const SharePolynomial poly(secret, 2, r, rng);  // degree 2: need 3 shares

  const std::vector<std::uint64_t> subset = {1, 3, 5};
  math::BigInt acc{};
  for (std::uint64_t i : subset) {
    const math::BigInt coeff = lagrange_at_zero(subset, i, r);
    acc = math::mod_add(acc, math::mod_mul(coeff, poly.eval(i), r), r);
  }
  EXPECT_EQ(acc, secret);
}

TEST(Shamir, DifferentSubsetsAgree) {
  TestRng rng(42);
  const math::BigInt r = math::random_prime(rng, 64);
  const math::BigInt secret = math::BigInt::random_below(rng, r);
  const SharePolynomial poly(secret, 1, r, rng);
  for (const std::vector<std::uint64_t>& subset :
       {std::vector<std::uint64_t>{1, 2}, {2, 3}, {1, 4}}) {
    math::BigInt acc{};
    for (std::uint64_t i : subset) {
      acc = math::mod_add(
          acc, math::mod_mul(lagrange_at_zero(subset, i, r), poly.eval(i), r), r);
    }
    EXPECT_EQ(acc, secret);
  }
}

TEST(Shamir, DegreeZeroIsConstant) {
  TestRng rng(43);
  const math::BigInt r{101};
  const SharePolynomial poly(math::BigInt{7}, 0, r, rng);
  EXPECT_EQ(poly.eval(1), math::BigInt{7});
  EXPECT_EQ(poly.eval(99), math::BigInt{7});
}

TEST(Shamir, LagrangeRequiresMembership) {
  EXPECT_THROW(lagrange_at_zero({1, 2}, 3, math::BigInt{101}),
               std::invalid_argument);
}

}  // namespace
}  // namespace p3s::abe
