#include <gtest/gtest.h>

#include "broker/baseline.hpp"
#include "net/network.hpp"

namespace p3s::broker {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  net::DirectNetwork net_;
  BaselineBroker broker_{net_, "broker"};
};

TEST_F(BaselineTest, DeliversToMatchingSubscribers) {
  BaselineSubscriber s1(net_, "s1", "broker");
  BaselineSubscriber s2(net_, "s2", "broker");
  BaselinePublisher pub(net_, "p", "broker");
  s1.subscribe({{"topic", "sports"}});
  s2.subscribe({{"topic", "finance"}});

  pub.publish({{"topic", "sports"}, {"lang", "en"}}, str_to_bytes("goal!"));
  ASSERT_EQ(s1.received().size(), 1u);
  EXPECT_EQ(bytes_to_str(s1.received()[0].payload), "goal!");
  EXPECT_TRUE(s2.received().empty());
}

TEST_F(BaselineTest, WildcardViaAbsentAttribute) {
  BaselineSubscriber s(net_, "s", "broker");
  BaselinePublisher pub(net_, "p", "broker");
  s.subscribe({{"lang", "en"}});  // any topic
  pub.publish({{"topic", "a"}, {"lang", "en"}}, str_to_bytes("1"));
  pub.publish({{"topic", "b"}, {"lang", "en"}}, str_to_bytes("2"));
  pub.publish({{"topic", "b"}, {"lang", "fr"}}, str_to_bytes("3"));
  EXPECT_EQ(s.received().size(), 2u);
}

TEST_F(BaselineTest, OneDeliveryPerSubscriberEvenWithMultipleMatchingSubs) {
  BaselineSubscriber s(net_, "s", "broker");
  BaselinePublisher pub(net_, "p", "broker");
  s.subscribe({{"topic", "x"}});
  s.subscribe({{"lang", "en"}});
  pub.publish({{"topic", "x"}, {"lang", "en"}}, str_to_bytes("once"));
  EXPECT_EQ(s.received().size(), 1u);
}

TEST_F(BaselineTest, MatchCostIsPerSubscriptionPerPublication) {
  BaselineSubscriber s1(net_, "s1", "broker");
  BaselineSubscriber s2(net_, "s2", "broker");
  BaselinePublisher pub(net_, "p", "broker");
  s1.subscribe({{"topic", "a"}});
  s2.subscribe({{"topic", "b"}});
  pub.publish({{"topic", "a"}}, str_to_bytes("m"));
  pub.publish({{"topic", "b"}}, str_to_bytes("m"));
  // The broker tested each of the 2 subscriptions against each of the 2
  // publications — the N_s · t_match term of the paper's model.
  EXPECT_EQ(broker_.match_operations(), 4u);
  EXPECT_EQ(broker_.publications(), 2u);
}

TEST_F(BaselineTest, BrokerSeesEverythingInTheClear) {
  // The privacy contrast with P3S: interests AND metadata are fully visible
  // at the baseline broker.
  BaselineSubscriber s(net_, "s", "broker");
  BaselinePublisher pub(net_, "p", "broker");
  s.subscribe({{"topic", "merger"}});
  pub.publish({{"topic", "merger"}}, str_to_bytes("m"));
  ASSERT_EQ(broker_.visible_interests().size(), 1u);
  EXPECT_EQ(broker_.visible_interests()[0].at("topic"), "merger");
  ASSERT_EQ(broker_.visible_metadata().size(), 1u);
  EXPECT_EQ(broker_.visible_metadata()[0].at("topic"), "merger");
}

TEST_F(BaselineTest, MalformedFramesIgnored) {
  EXPECT_NO_THROW(net_.send("x", "broker", Bytes{0xff, 1, 2}));
  EXPECT_NO_THROW(net_.send("x", "broker", Bytes{}));
  EXPECT_EQ(broker_.publications(), 0u);
}

TEST_F(BaselineTest, DeliveryCarriesMetadata) {
  BaselineSubscriber s(net_, "s", "broker");
  BaselinePublisher pub(net_, "p", "broker");
  s.subscribe({{"topic", "t"}});
  pub.publish({{"topic", "t"}, {"extra", "e"}}, str_to_bytes("m"));
  ASSERT_EQ(s.received().size(), 1u);
  EXPECT_EQ(s.received()[0].metadata.at("extra"), "e");
}

}  // namespace
}  // namespace p3s::broker
