// Privacy assertions from paper §6.1, enforced against the REAL running
// system: we let HBC components remember everything they see (curious logs),
// record every wire frame (eavesdropper view), and assert that sensitive
// information appears exactly where the paper says it may — and nowhere else.
#include <gtest/gtest.h>

#include <algorithm>

#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "net/async.hpp"
#include "net/network.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "p3s/messages.hpp"
#include "p3s/system.hpp"

namespace p3s::core {
namespace {

pbe::MetadataSchema test_schema() {
  return pbe::MetadataSchema({
      {"sector", {"tech", "finance", "energy", "health"}},
      {"region", {"us", "eu", "apac"}},
      {"event", {"merger", "earnings", "default", "ipo"}},
  });
}

bool wire_contains(const net::Network& net, BytesView needle) {
  for (const auto& rec : net.traffic()) {
    if (needle.size() > rec.frame.size()) continue;
    if (std::search(rec.frame.begin(), rec.frame.end(), needle.begin(),
                    needle.end()) != rec.frame.end()) {
      return true;
    }
  }
  return false;
}

class PrivacyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = test_schema();
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
    sub_ = system_->make_subscriber("sub1", "alice", {"analyst", "org:us"},
                                    rng_);
    other_ = system_->make_subscriber("sub2", "bob", {"analyst"}, rng_);
    pub_ = system_->make_publisher("pub1", "acme", rng_);
    net_.clear_traffic();  // analyze only the steady-state protocol
  }

  void run_flow() {
    sub_->subscribe({{"sector", "finance"}, {"event", "default"}});
    other_->subscribe({{"sector", "tech"}});
    pub_->publish({{"sector", "finance"}, {"region", "us"}, {"event", "default"}},
                  str_to_bytes(kPayloadMarker),
                  abe::parse_policy("analyst and org:us"));
  }

  static constexpr const char* kPayloadMarker =
      "TOP-SECRET-PAYLOAD-0x5ca1ab1e";

  net::DirectNetwork net_;
  TestRng rng_{0x99};
  std::unique_ptr<P3sSystem> system_;
  std::unique_ptr<Subscriber> sub_;
  std::unique_ptr<Subscriber> other_;
  std::unique_ptr<Publisher> pub_;
};

TEST_F(PrivacyTest, PayloadNeverAppearsOnTheWire) {
  run_flow();
  ASSERT_EQ(sub_->deliveries().size(), 1u);  // flow actually delivered
  EXPECT_FALSE(wire_contains(net_, str_to_bytes(kPayloadMarker)));
}

TEST_F(PrivacyTest, InterestKeywordsNeverAppearOnTheWire) {
  run_flow();
  // The subscriber's predicate values travel only inside ECIES envelopes.
  EXPECT_FALSE(wire_contains(net_, str_to_bytes("finance")));
  EXPECT_FALSE(wire_contains(net_, str_to_bytes("default")));
  EXPECT_FALSE(wire_contains(net_, str_to_bytes("sector")));
}

TEST_F(PrivacyTest, PolicyAttributesDoAppearInTheClear) {
  // Contrast: the paper is explicit that the CP-ABE policy is NOT hidden
  // ("the access policy in CP-ABE encryption is 'in the clear'"). Policies
  // must therefore only use attributes safe to disclose.
  run_flow();
  EXPECT_TRUE(wire_contains(net_, str_to_bytes("analyst")));
  EXPECT_TRUE(wire_contains(net_, str_to_bytes("org:us")));
}

TEST_F(PrivacyTest, PbeTsSeesPredicateButNotIdentity) {
  run_flow();
  const auto& seen = system_->token_server().seen_predicates();
  ASSERT_EQ(seen.size(), 2u);
  // Plaintext predicate visible (paper: "the PBE-TS sees the plaintext
  // predicate")...
  EXPECT_EQ(seen[0].interest.at("sector"), "finance");
  // ...but every request arrived via the anonymizer.
  for (const auto& s : seen) EXPECT_EQ(s.network_from, "anon");
}

TEST_F(PrivacyTest, RsSeesOnlyDsAndAnonymizer) {
  run_flow();
  for (const std::string& src : system_->rs().frame_sources()) {
    EXPECT_TRUE(src == "ds" || src == "anon") << src;
  }
  // The RS can count requests per GUID (allowed leakage, §6.1).
  ASSERT_EQ(system_->rs().request_counts().size(), 1u);
  EXPECT_EQ(system_->rs().request_counts().begin()->second, 1u);
}

TEST_F(PrivacyTest, DsLearnsOnlySizesAndTypes) {
  run_flow();
  // The DS observation log records sizes and frame kinds; assert that the
  // DS never received a token request/response or plaintext maps — its
  // observed types are registration, publish and ack frames only.
  for (const auto& obs : system_->ds().observations()) {
    EXPECT_TRUE(obs.inner_type ==
                    static_cast<std::uint8_t>(FrameType::kRegisterSubscriber) ||
                obs.inner_type ==
                    static_cast<std::uint8_t>(FrameType::kRegisterPublisher) ||
                obs.inner_type ==
                    static_cast<std::uint8_t>(FrameType::kPublishMetadata) ||
                obs.inner_type ==
                    static_cast<std::uint8_t>(FrameType::kPublishContent))
        << static_cast<int>(obs.inner_type);
  }
}

TEST_F(PrivacyTest, AnonymizerSeesRoutingButNotContent) {
  run_flow();
  ASSERT_FALSE(system_->anonymizer()->observations().empty());
  for (const auto& obs : system_->anonymizer()->observations()) {
    EXPECT_TRUE(obs.destination == "pbe-ts" || obs.destination == "rs");
    EXPECT_TRUE(obs.requester == "sub1" || obs.requester == "sub2");
  }
}

TEST_F(PrivacyTest, NonMatchingSubscriberSeesBroadcastButLearnsNothing) {
  run_flow();
  EXPECT_EQ(other_->metadata_received(), 1u);
  EXPECT_EQ(other_->match_count(), 0u);
  EXPECT_TRUE(other_->deliveries().empty());
  // And it never contacted the RS.
  for (const auto& obs : system_->anonymizer()->observations()) {
    if (obs.requester == "sub2") {
      EXPECT_EQ(obs.destination, "pbe-ts");
    }
  }
}

TEST_F(PrivacyTest, EavesdropperSeesGuidOnlyAsClearFieldOfStoreFrame) {
  // Footnote 1 of the paper: eavesdroppers may learn the GUID sent in the
  // clear between DS and RS (mitigable by super-encryption under the RS
  // key). Verify the payload itself is still protected even with the GUID.
  run_flow();
  ASSERT_EQ(sub_->deliveries().size(), 1u);
  const Guid guid = sub_->deliveries()[0].guid;
  EXPECT_TRUE(wire_contains(net_, guid.to_bytes()));       // documented leak
  EXPECT_FALSE(wire_contains(net_, str_to_bytes(kPayloadMarker)));
}

TEST_F(PrivacyTest, PublisherLearnsNothingAboutMatching) {
  run_flow();
  // Frames addressed to the publisher: channel acks only, all of identical
  // shape regardless of whether anything matched.
  std::size_t to_pub = 0;
  for (const auto& rec : net_.traffic()) {
    if (rec.to == "pub1") ++to_pub;
  }
  net_.clear_traffic();
  // Publish an item nobody matches; the publisher-visible traffic pattern
  // is identical (same count of acks per publish: zero — fire and forget).
  pub_->publish({{"sector", "health"}, {"region", "eu"}, {"event", "ipo"}},
                str_to_bytes("unmatched"), abe::parse_policy("analyst"));
  std::size_t to_pub2 = 0;
  for (const auto& rec : net_.traffic()) {
    if (rec.to == "pub1") ++to_pub2;
  }
  // In both flows the publisher receives zero feedback frames: it cannot
  // distinguish matched from unmatched publications.
  EXPECT_EQ(to_pub, 0u);
  EXPECT_EQ(to_pub2, 0u);
}

TEST_F(PrivacyTest, CollusionOfHbcSubscribersIsUnionOfViews) {
  run_flow();
  // Pool the two subscribers' deliveries: bob (non-matching, and lacking
  // org:us) contributes nothing; alice's view is unchanged by pooling.
  EXPECT_EQ(sub_->deliveries().size() + other_->deliveries().size(), 1u);
}

TEST_F(PrivacyTest, MetricsSnapshotsLeakNoSensitiveStrings) {
  // The observability layer watches the whole data path; §6.1 therefore
  // applies to its exports too. After a full flow, neither the text nor the
  // JSON snapshot may contain interest values, metadata keys/values, the
  // payload, policy attributes, pseudonyms, or endpoint names.
  run_flow();
  const std::string text = obs::render_text(obs::Registry::global(),
                                            /*max_spans=*/64);
  const std::string json = obs::render_json(obs::Registry::global());
  const char* leaks[] = {
      "finance", "default", "merger", "sector",   // interest/metadata words
      kPayloadMarker,                             // payload bytes
      "analyst", "org:us",                        // CP-ABE policy attributes
      "alice",   "bob",     "acme",               // pseudonyms
      "sub1",    "pub1",                          // endpoint names
  };
  for (const char* leak : leaks) {
    EXPECT_EQ(text.find(leak), std::string::npos) << "text leaks: " << leak;
    EXPECT_EQ(json.find(leak), std::string::npos) << "json leaks: " << leak;
  }
}

TEST_F(PrivacyTest, MetricNamesStayInsideClosedVocabulary) {
  // Every name exported after real traffic still passes the vocabulary
  // check — i.e. no instrumentation path smuggled runtime data into a
  // metric identity. (The registry throws on violation; this guards the
  // exported view end-to-end.)
  run_flow();
  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  ASSERT_FALSE(snap.metrics.empty());
  for (const auto& m : snap.metrics) {
    const std::string base = m.name.substr(0, m.name.find('{'));
    EXPECT_TRUE(obs::Registry::valid_name(base)) << m.name;
  }
  for (const auto& s : snap.spans) {
    EXPECT_TRUE(obs::Registry::valid_name(s.name)) << s.name;
  }
}

TEST(PrivacyUnderLoss, DroppedFramesStillReachTheEavesdropper) {
  // Loss happens on the receiver side of the wire: an eavesdropper near the
  // sender records every frame whether or not it arrives. The traffic log
  // (our eavesdropper model) must therefore grow at send time, and the
  // per-link drop counters must account for every loss.
  net::AsyncNetwork net;
  net::FaultPlan plan(42);
  net::LinkFaults faults;
  faults.drop = 0.5;
  plan.set_default(faults);
  net.set_fault_plan(std::move(plan));

  std::size_t delivered = 0;
  net.register_endpoint("a", [&](const std::string&, BytesView) {
    ++delivered;
  });
  net.register_endpoint("b", [&](const std::string&, BytesView) {
    ++delivered;
  });
  for (int i = 0; i < 100; ++i) {
    net.send("a", "b", Bytes{std::uint8_t(i)});
    net.send("b", "a", Bytes{std::uint8_t(i)});
  }
  net.run_until_idle();
  ASSERT_GT(net.dropped_frames(), 0u);
  EXPECT_EQ(delivered + net.dropped_frames(), 200u);
  // Every frame — delivered or dropped — was recorded at send time.
  EXPECT_EQ(net.traffic().size(), 200u);
  // Per-link counters partition the total.
  EXPECT_EQ(net.dropped_on("a", "b") + net.dropped_on("b", "a"),
            net.dropped_frames());
  EXPECT_EQ(net.dropped_on("b", "c"), 0u);
}

TEST(PrivacyUnderLoss, SenderBlackoutFramesNeverReachTheEavesdropper) {
  // The converse boundary: a blacked-out SENDER is off the network, so its
  // frames are lost before the wire — the eavesdropper must NOT see them.
  // (Receiver-side loss — plan drops, receiver blackouts — happens past
  // the observation point and stays in the log, as pinned above.) This is
  // the end-to-end form of the recording-order fix in AsyncNetwork::send.
  net::AsyncNetwork net;
  TestRng rng(0xb0b);
  P3sConfig config;
  config.pairing = pairing::Pairing::test_pairing();
  config.schema = test_schema();
  P3sSystem system(net, std::move(config), rng);
  auto sub = system.make_subscriber("sub1", "alice", {"analyst"}, rng);
  auto pub = system.make_publisher("pub1", "acme", rng);
  net.run_until_idle();
  sub->subscribe({{"sector", "finance"}});
  net.run_until_idle();
  ASSERT_EQ(sub->token_count(), 1u);

  net::FaultPlan plan(7);
  plan.add_blackout("pub1", net.now(), net.now() + 1e6);
  net.set_fault_plan(std::move(plan));
  const std::size_t wire_before = net.traffic().size();
  pub->publish({{"sector", "finance"}, {"region", "us"}, {"event", "ipo"}},
               str_to_bytes("dark-sender-payload"), abe::parse_policy("analyst"));
  net.run_until_idle();
  // The publisher was dark: nothing it sent hit the wire, nobody reacted.
  EXPECT_EQ(net.traffic().size(), wire_before);
  EXPECT_GT(net.dropped_frames(), 0u);
  EXPECT_EQ(sub->deliveries().size(), 0u);
  for (std::size_t i = wire_before; i < net.traffic().size(); ++i) {
    ADD_FAILURE() << "unexpected frame " << net.traffic()[i].from << " -> "
                  << net.traffic()[i].to;
  }
}

TEST(PrivacyUnderLoss, LossyFlowLeaksNothingExtra) {
  // The §6.1 wire assertions hold under loss too: a full flow over a lossy
  // AsyncNetwork (with the reliable layer retrying) still never puts the
  // payload or interest plaintext on the wire — retried frames are fresh
  // ciphertext, and dropped frames stay in the eavesdropper's log.
  constexpr const char* kLossyMarker = "TOP-SECRET-PAYLOAD-0x10e55";
  net::AsyncNetwork net;
  TestRng rng(0x10e55);
  P3sConfig config;
  config.pairing = pairing::Pairing::test_pairing();
  config.schema = test_schema();
  config.reliability.enabled = true;
  config.reliability.timeout = 300.0;
  config.reliability.max_timeout = 1200.0;
  P3sSystem system(net, std::move(config), rng);

  net::FaultPlan plan(7);
  net::LinkFaults faults;
  faults.drop = 0.1;
  plan.set_default(faults);
  net.set_fault_plan(std::move(plan));

  auto sub = system.make_subscriber("sub1", "alice", {"analyst", "org:us"},
                                    rng);
  auto pub = system.make_publisher("pub1", "acme", rng);
  sub->subscribe({{"sector", "finance"}, {"event", "default"}});
  for (int round = 0; round < 300 && sub->deliveries().empty(); ++round) {
    net.run_until_idle();
    sub->poll();
    pub->poll();
    if (net.in_flight() == 0) {
      if (pub->connected() && sub->token_count() == 1 &&
          pub->pending_publish_count() == 0 && sub->deliveries().empty() &&
          sub->match_count() == 0) {
        // Everything settled and nothing published yet: publish now.
        pub->publish(
            {{"sector", "finance"}, {"region", "us"}, {"event", "default"}},
            str_to_bytes(kLossyMarker), abe::parse_policy("analyst and org:us"));
      }
      net.advance(97);
    }
  }
  ASSERT_EQ(sub->deliveries().size(), 1u);
  EXPECT_GT(net.dropped_frames(), 0u);
  EXPECT_FALSE(wire_contains(net, str_to_bytes(kLossyMarker)));
  EXPECT_FALSE(wire_contains(net, str_to_bytes("finance")));
  EXPECT_FALSE(wire_contains(net, str_to_bytes("sector")));
}

TEST_F(PrivacyTest, MetadataBroadcastIsIdenticalForAllSubscribers) {
  // Every subscriber receives the same-size encrypted metadata whether or
  // not they match: reception patterns do not leak interest.
  run_flow();
  std::size_t sub1_meta = 0, sub2_meta = 0;
  for (const auto& rec : net_.traffic()) {
    if (rec.from != "ds") continue;
    if (rec.to == "sub1") ++sub1_meta;
    if (rec.to == "sub2") ++sub2_meta;
  }
  EXPECT_EQ(sub1_meta, sub2_meta);
}

}  // namespace
}  // namespace p3s::core
