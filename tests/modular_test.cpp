#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "math/modular.hpp"
#include "math/montgomery.hpp"
#include "math/prime.hpp"

namespace p3s::math {
namespace {

TEST(Modular, ModNormalizesNegative) {
  EXPECT_EQ(mod(BigInt{-1}, BigInt{7}), BigInt{6});
  EXPECT_EQ(mod(BigInt{13}, BigInt{7}), BigInt{6});
  EXPECT_EQ(mod(BigInt{-14}, BigInt{7}), BigInt{});
}

TEST(Modular, AddSubWithinRange) {
  const BigInt m{7};
  EXPECT_EQ(mod_add(BigInt{5}, BigInt{4}, m), BigInt{2});
  EXPECT_EQ(mod_sub(BigInt{2}, BigInt{5}, m), BigInt{4});
  EXPECT_EQ(mod_sub(BigInt{5}, BigInt{2}, m), BigInt{3});
}

TEST(Modular, ModPowSmall) {
  EXPECT_EQ(mod_pow(BigInt{2}, BigInt{10}, BigInt{1000}), BigInt{24});
  EXPECT_EQ(mod_pow(BigInt{3}, BigInt{}, BigInt{7}), BigInt{1});
  EXPECT_EQ(mod_pow(BigInt{3}, BigInt{1}, BigInt{7}), BigInt{3});
  EXPECT_EQ(mod_pow(BigInt{5}, BigInt{100}, BigInt{1}), BigInt{});
}

TEST(Modular, FermatLittleTheorem) {
  TestRng rng(21);
  const BigInt p = random_prime(rng, 128);
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt{1} + BigInt::random_below(rng, p - BigInt{1});
    EXPECT_EQ(mod_pow(a, p - BigInt{1}, p), BigInt{1});
  }
}

TEST(Modular, ModPowMatchesNaive) {
  TestRng rng(22);
  const BigInt m{1000003};
  for (int i = 0; i < 30; ++i) {
    std::uint64_t base = rng.uniform(1000003);
    std::uint64_t exp = rng.uniform(50);
    BigInt naive{1};
    for (std::uint64_t j = 0; j < exp; ++j) {
      naive = mod_mul(naive, BigInt{base}, m);
    }
    EXPECT_EQ(mod_pow(BigInt{base}, BigInt{exp}, m), naive);
  }
}

TEST(Modular, InverseRoundTrip) {
  TestRng rng(23);
  const BigInt p = random_prime(rng, 192);
  for (int i = 0; i < 30; ++i) {
    BigInt a = BigInt{1} + BigInt::random_below(rng, p - BigInt{1});
    BigInt inv = mod_inv(a, p);
    EXPECT_EQ(mod_mul(a, inv, p), BigInt{1});
  }
}

TEST(Modular, InverseOfNonInvertibleThrows) {
  EXPECT_THROW(mod_inv(BigInt{6}, BigInt{9}), std::domain_error);
  EXPECT_THROW(mod_inv(BigInt{}, BigInt{7}), std::domain_error);
}

TEST(Modular, InverseCompositeModulus) {
  // 5 is invertible mod 12.
  EXPECT_EQ(mod_inv(BigInt{5}, BigInt{12}), BigInt{5});
}

TEST(Modular, Gcd) {
  EXPECT_EQ(gcd(BigInt{12}, BigInt{18}), BigInt{6});
  EXPECT_EQ(gcd(BigInt{-12}, BigInt{18}), BigInt{6});
  EXPECT_EQ(gcd(BigInt{}, BigInt{5}), BigInt{5});
  EXPECT_EQ(gcd(BigInt{17}, BigInt{13}), BigInt{1});
}

TEST(Modular, QuadraticResidue) {
  const BigInt p{23};  // squares mod 23: 1,2,3,4,6,8,9,12,13,16,18
  EXPECT_TRUE(is_quadratic_residue(BigInt{4}, p));
  EXPECT_TRUE(is_quadratic_residue(BigInt{2}, p));
  EXPECT_FALSE(is_quadratic_residue(BigInt{5}, p));
  EXPECT_TRUE(is_quadratic_residue(BigInt{}, p));
}

TEST(Modular, Sqrt3Mod4) {
  TestRng rng(24);
  // Find a 3-mod-4 prime.
  BigInt p;
  do {
    p = random_prime(rng, 160);
  } while ((p % BigInt{4}) != BigInt{3});
  for (int i = 0; i < 20; ++i) {
    BigInt a = BigInt::random_below(rng, p);
    BigInt sq = mod_mul(a, a, p);
    BigInt r = mod_sqrt_3mod4(sq, p);
    EXPECT_EQ(mod_mul(r, r, p), sq);
  }
}

TEST(Modular, SqrtRejectsNonResidue) {
  const BigInt p{23};
  EXPECT_THROW(mod_sqrt_3mod4(BigInt{5}, p), std::domain_error);
  EXPECT_THROW(mod_sqrt_3mod4(BigInt{4}, BigInt{13}), std::domain_error);  // 13%4==1
}

TEST(Modular, MontgomeryQrAndSqrtOverloadsMatchBigIntPath) {
  TestRng rng(25);
  BigInt p;
  do {
    p = random_prime(rng, 192);
  } while ((p % BigInt{4}) != BigInt{3});
  const Montgomery mont(p);
  int residues = 0;
  for (int i = 0; i < 30; ++i) {
    const BigInt a = BigInt::random_below(rng, p);
    const bool qr = is_quadratic_residue(a, p);
    EXPECT_EQ(is_quadratic_residue(a, mont), qr);
    if (qr && !a.is_zero()) {
      ++residues;
      EXPECT_EQ(mod_sqrt_3mod4(a, mont), mod_sqrt_3mod4(a, p));
    } else if (!qr) {
      EXPECT_THROW(mod_sqrt_3mod4(a, mont), std::domain_error);
    }
  }
  EXPECT_GT(residues, 0);  // the sweep actually exercised the sqrt path
  EXPECT_THROW(mod_sqrt_3mod4(BigInt{4}, Montgomery(BigInt{13})),
               std::domain_error);  // 13 % 4 == 1
}

}  // namespace
}  // namespace p3s::math
