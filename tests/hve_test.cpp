#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "exec/pool.hpp"
#include "pbe/hve.hpp"

namespace p3s::pbe {
namespace {

class HveTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kWidth = 8;

  static void SetUpTestSuite() {
    rng_ = new TestRng(0x487e);
    keys_ = new HveKeys(hve_setup(pairing::Pairing::test_pairing(), kWidth, *rng_));
  }
  static void TearDownTestSuite() {
    delete keys_;
    delete rng_;
    keys_ = nullptr;
    rng_ = nullptr;
  }

  static TestRng* rng_;
  static HveKeys* keys_;
};

TestRng* HveTest::rng_ = nullptr;
HveKeys* HveTest::keys_ = nullptr;

TEST_F(HveTest, ExactMatchDecrypts) {
  const BitVector x = {1, 0, 1, 1, 0, 0, 1, 0};
  const Pattern w = {1, 0, 1, 1, 0, 0, 1, 0};
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = hve_encrypt(keys_->pk, x, m, *rng_);
  const auto tok = hve_gen_token(*keys_, w, *rng_);
  EXPECT_EQ(hve_query(*keys_->pk.pairing, tok, ct), m);
}

TEST_F(HveTest, WildcardMatchDecrypts) {
  const BitVector x = {1, 0, 1, 1, 0, 0, 1, 0};
  const Pattern w = {1, kWildcard, kWildcard, 1, kWildcard, kWildcard, kWildcard,
                     kWildcard};
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = hve_encrypt(keys_->pk, x, m, *rng_);
  const auto tok = hve_gen_token(*keys_, w, *rng_);
  EXPECT_EQ(hve_query(*keys_->pk.pairing, tok, ct), m);
}

TEST_F(HveTest, MismatchYieldsGarbage) {
  const BitVector x = {1, 0, 1, 1, 0, 0, 1, 0};
  Pattern w(kWidth, kWildcard);
  w[0] = 0;  // contradicts x[0] == 1
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = hve_encrypt(keys_->pk, x, m, *rng_);
  const auto tok = hve_gen_token(*keys_, w, *rng_);
  EXPECT_NE(hve_query(*keys_->pk.pairing, tok, ct), m);
}

TEST_F(HveTest, QueryMatchesReferenceEvaluation) {
  // The multi-pairing fast path must agree with the original 2|S|
  // independent-pairings evaluation bit-for-bit — on matches AND on the
  // garbage GT element a mismatch produces.
  const BitVector x = {1, 0, 1, 1, 0, 0, 1, 0};
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = hve_encrypt(keys_->pk, x, m, *rng_);
  const Pattern matching = {1, kWildcard, 1, kWildcard, 0, kWildcard,
                            kWildcard, 0};
  Pattern mismatching = matching;
  mismatching[0] = 0;
  for (const Pattern& w : {matching, mismatching}) {
    const auto tok = hve_gen_token(*keys_, w, *rng_);
    EXPECT_EQ(hve_query(*keys_->pk.pairing, tok, ct),
              hve_query_reference(*keys_->pk.pairing, tok, ct));
  }
}

TEST_F(HveTest, PrecomputedEncryptMatchesPlainEncrypt) {
  // Both paths consume the RNG identically, so from equal seeds they must
  // produce byte-identical ciphertexts.
  const HvePrecomp pre = hve_precompute(keys_->pk);
  ASSERT_EQ(pre.width(), kWidth);
  const BitVector x = {0, 1, 1, 0, 1, 0, 0, 1};
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  TestRng rng_a(0x9e11), rng_b(0x9e11);
  const auto plain = hve_encrypt(keys_->pk, x, m, rng_a);
  const auto fast = hve_encrypt(keys_->pk, x, m, rng_b, &pre);
  EXPECT_EQ(plain.serialize(*keys_->pk.pairing),
            fast.serialize(*keys_->pk.pairing));
  // And the precomputed ciphertext round-trips through a real query.
  const Pattern w = {0, 1, kWildcard, kWildcard, 1, kWildcard, kWildcard, 1};
  const auto tok = hve_gen_token(*keys_, w, *rng_);
  EXPECT_EQ(hve_query(*keys_->pk.pairing, tok, fast), m);
}

TEST_F(HveTest, PrecompWidthMismatchRejected) {
  const HvePrecomp pre = hve_precompute(keys_->pk);
  TestRng rng(1);
  const auto narrow =
      hve_setup(keys_->pk.pairing, kWidth - 1, rng);
  const BitVector x(kWidth - 1, 1);
  const auto m = keys_->pk.pairing->random_gt(rng);
  EXPECT_THROW(hve_encrypt(narrow.pk, x, m, rng, &pre),
               std::invalid_argument);
}

TEST_F(HveTest, SingleBitOffMismatches) {
  const BitVector x = {1, 1, 1, 1, 1, 1, 1, 1};
  for (std::size_t flip = 0; flip < kWidth; ++flip) {
    Pattern w(kWidth, 1);
    w[flip] = 0;
    const auto m = keys_->pk.pairing->random_gt(*rng_);
    const auto ct = hve_encrypt(keys_->pk, x, m, *rng_);
    const auto tok = hve_gen_token(*keys_, w, *rng_);
    EXPECT_NE(hve_query(*keys_->pk.pairing, tok, ct), m) << flip;
  }
}

// Property sweep: random vectors and patterns; HVE agrees with the plaintext
// predicate via the KEM wrapper (which detects mismatch explicitly).
class HvePropertyTest : public HveTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(HvePropertyTest, AgreesWithPlaintextPredicate) {
  TestRng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  BitVector x(kWidth);
  Pattern w(kWidth);
  bool any_concrete = false;
  for (std::size_t i = 0; i < kWidth; ++i) {
    x[i] = static_cast<std::uint8_t>(rng.uniform(2));
    const std::uint64_t c = rng.uniform(3);
    w[i] = (c == 2) ? kWildcard : static_cast<std::int8_t>(c);
    any_concrete |= (w[i] != kWildcard);
  }
  if (!any_concrete) w[0] = static_cast<std::int8_t>(x[0]);

  const Bytes payload = rng.bytes(16);
  const Bytes ct = hve_encrypt_bytes(keys_->pk, x, payload, rng);
  const auto tok = hve_gen_token(*keys_, w, rng);
  const auto out = hve_query_bytes(*keys_->pk.pairing, tok, ct);

  if (hve_match_plain(x, w)) {
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, payload);
  } else {
    EXPECT_FALSE(out.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, HvePropertyTest,
                         ::testing::Range(0, 25));

TEST_F(HveTest, AllWildcardTokenRejected) {
  const Pattern w(kWidth, kWildcard);
  EXPECT_THROW(hve_gen_token(*keys_, w, *rng_), std::invalid_argument);
}

TEST_F(HveTest, WidthMismatchRejected) {
  EXPECT_THROW(hve_encrypt(keys_->pk, BitVector(kWidth - 1, 0),
                           keys_->pk.pairing->gt_one(), *rng_),
               std::invalid_argument);
  EXPECT_THROW(hve_gen_token(*keys_, Pattern(kWidth + 1, 1), *rng_),
               std::invalid_argument);
}

TEST_F(HveTest, NonBinaryInputsRejected) {
  BitVector x(kWidth, 0);
  x[3] = 2;
  EXPECT_THROW(hve_encrypt(keys_->pk, x, keys_->pk.pairing->gt_one(), *rng_),
               std::invalid_argument);
  Pattern w(kWidth, 1);
  w[2] = 5;
  EXPECT_THROW(hve_gen_token(*keys_, w, *rng_), std::invalid_argument);
}

TEST_F(HveTest, TokenRevealsPositionsNotValues) {
  Pattern w1(kWidth, kWildcard), w2(kWidth, kWildcard);
  w1[2] = 1;
  w2[2] = 0;
  const auto t1 = hve_gen_token(*keys_, w1, *rng_);
  const auto t2 = hve_gen_token(*keys_, w2, *rng_);
  EXPECT_EQ(t1.positions, t2.positions);  // same shape...
  EXPECT_NE(t1.y, t2.y);                  // ...different key material
}

TEST_F(HveTest, CollusionTwoTokensDoNotCombine) {
  // Token A matches on bit0=1, token B on bit1=1. Ciphertext has bit0=1 but
  // bit1=0. Neither token alone matches-and-reveals more than its own
  // predicate; pairing components of A and B cannot be merged because the
  // y-shares are independent per token.
  const BitVector x = {1, 0, 0, 0, 0, 0, 0, 0};
  Pattern wa(kWidth, kWildcard), wb(kWidth, kWildcard);
  wa[0] = 1;
  wa[1] = 1;  // requires bit1 == 1 too -> mismatch
  wb[1] = 0;
  wb[2] = 1;  // requires bit2 == 1 -> mismatch
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = hve_encrypt(keys_->pk, x, m, *rng_);
  const auto ta = hve_gen_token(*keys_, wa, *rng_);
  const auto tb = hve_gen_token(*keys_, wb, *rng_);
  EXPECT_NE(hve_query(*keys_->pk.pairing, ta, ct), m);
  EXPECT_NE(hve_query(*keys_->pk.pairing, tb, ct), m);
  // Frankenstein token: positions of A with B's components where they
  // overlap — shares no longer sum to y, so it cannot decrypt anything.
  HveToken franken = ta;
  franken.y[1] = tb.y[0];
  franken.l[1] = tb.l[0];
  const BitVector x2 = {1, 0, 1, 0, 0, 0, 0, 0};
  const auto m2 = keys_->pk.pairing->random_gt(*rng_);
  const auto ct2 = hve_encrypt(keys_->pk, x2, m2, *rng_);
  EXPECT_NE(hve_query(*keys_->pk.pairing, franken, ct2), m2);
}

TEST_F(HveTest, CiphertextSerializationRoundTrip) {
  const auto& p = *keys_->pk.pairing;
  const BitVector x = {0, 1, 0, 1, 0, 1, 0, 1};
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = hve_encrypt(keys_->pk, x, m, *rng_);
  const auto ct2 = HveCiphertext::deserialize(p, ct.serialize(p));
  Pattern w(kWidth, kWildcard);
  w[1] = 1;
  w[2] = 0;
  const auto tok = hve_gen_token(*keys_, w, *rng_);
  EXPECT_EQ(hve_query(p, tok, ct2), m);
}

TEST_F(HveTest, TokenSerializationRoundTrip) {
  const auto& p = *keys_->pk.pairing;
  Pattern w(kWidth, kWildcard);
  w[0] = 1;
  w[5] = 0;
  const auto tok = hve_gen_token(*keys_, w, *rng_);
  const auto tok2 = HveToken::deserialize(p, tok.serialize(p));
  EXPECT_EQ(tok2.positions, tok.positions);
  EXPECT_EQ(tok2.y, tok.y);
  EXPECT_EQ(tok2.l, tok.l);
}

TEST_F(HveTest, PublicKeySerializationRoundTrip) {
  const auto pk2 =
      HvePublicKey::deserialize(keys_->pk.pairing, keys_->pk.serialize());
  EXPECT_EQ(pk2.t, keys_->pk.t);
  EXPECT_EQ(pk2.omega, keys_->pk.omega);
  // And it still encrypts compatibly.
  const BitVector x = {1, 1, 0, 0, 1, 1, 0, 0};
  const auto m = keys_->pk.pairing->random_gt(*rng_);
  const auto ct = hve_encrypt(pk2, x, m, *rng_);
  Pattern w(kWidth, kWildcard);
  w[0] = 1;
  const auto tok = hve_gen_token(*keys_, w, *rng_);
  EXPECT_EQ(hve_query(*keys_->pk.pairing, tok, ct), m);
}

TEST_F(HveTest, PreparedQueryBitIdenticalToPlainQuery) {
  // The ciphertext-side Miller precompute must reproduce the plain
  // multi-pairing query bit-for-bit — on matches AND on the garbage GT
  // element a mismatch produces.
  const auto& p = *keys_->pk.pairing;
  const BitVector x = {1, 0, 1, 1, 0, 0, 1, 0};
  const Bytes blob = hve_encrypt_bytes(keys_->pk, x, str_to_bytes("g"), *rng_);
  Reader r(blob);
  const HveCiphertext kem = HveCiphertext::deserialize(p, r.bytes());
  const HveMatchCt prepared = hve_match_prepare(p, blob);
  ASSERT_EQ(prepared.width(), kWidth);

  const Pattern matching = {1, kWildcard, 1, kWildcard, 0,
                            kWildcard, kWildcard, 0};
  Pattern mismatching = matching;
  mismatching[0] = 0;
  for (const Pattern& w : {matching, mismatching}) {
    const auto tok = hve_gen_token(*keys_, w, *rng_);
    EXPECT_EQ(hve_query(p, tok, prepared), hve_query(p, tok, kem));
  }
}

TEST_F(HveTest, PreparePositionFilterRestrictsAndRejects) {
  const auto& p = *keys_->pk.pairing;
  const BitVector x = {1, 0, 1, 1, 0, 0, 1, 0};
  const Bytes blob = hve_encrypt_bytes(keys_->pk, x, str_to_bytes("g"), *rng_);
  const std::vector<std::uint32_t> subset = {0, 3};
  const HveMatchCt prepared = hve_match_prepare(p, blob, &subset);

  Pattern inside(kWidth, kWildcard);
  inside[0] = 1;
  inside[3] = 1;
  const auto tok_in = hve_gen_token(*keys_, inside, *rng_);
  const HveCiphertext kem =
      HveCiphertext::deserialize(p, Reader(blob).bytes());
  EXPECT_EQ(hve_query(p, tok_in, prepared), hve_query(p, tok_in, kem));

  Pattern outside(kWidth, kWildcard);
  outside[5] = 0;  // position excluded from the prepare call
  const auto tok_out = hve_gen_token(*keys_, outside, *rng_);
  EXPECT_THROW(hve_query(p, tok_out, prepared), std::invalid_argument);
}

TEST_F(HveTest, MatchAnyReturnsLowestMatchAndPayload) {
  const auto& p = *keys_->pk.pairing;
  const BitVector x = {1, 0, 1, 1, 0, 0, 1, 0};
  const Bytes payload = rng_->bytes(16);
  const Bytes blob = hve_encrypt_bytes(keys_->pk, x, payload, *rng_);
  const HveMatchCt prepared = hve_match_prepare(p, blob);

  Pattern miss(kWidth, kWildcard);
  miss[0] = 0;
  Pattern hit_a(kWidth, kWildcard);
  hit_a[0] = 1;
  hit_a[1] = 0;
  Pattern hit_b(kWidth, kWildcard);
  hit_b[3] = 1;
  const auto t_miss = hve_gen_token(*keys_, miss, *rng_);
  const auto t_a = hve_gen_token(*keys_, hit_a, *rng_);
  const auto t_b = hve_gen_token(*keys_, hit_b, *rng_);

  // Two matching tokens: the LOWEST span index wins, like the serial scan.
  const std::vector<const HveToken*> tokens = {&t_miss, &t_a, &t_b};
  const HveMatchResult res = hve_match_any(p, tokens, prepared);
  ASSERT_TRUE(res.matched());
  EXPECT_EQ(res.token_index, 1u);
  EXPECT_EQ(res.payload, payload);

  // No matching token at all.
  const std::vector<const HveToken*> misses = {&t_miss};
  EXPECT_FALSE(hve_match_any(p, misses, prepared).matched());
  // Empty batch.
  EXPECT_FALSE(
      hve_match_any(p, std::span<const HveToken* const>{}, prepared)
          .matched());
}

TEST_F(HveTest, MatchAnyParallelEqualsSequential) {
  // The batch evaluation must return the same index and payload whatever
  // the pool size — sequential reference vs a multi-worker pool.
  const auto& p = *keys_->pk.pairing;
  TestRng rng(0x6a21);
  const BitVector x = {1, 0, 1, 1, 0, 0, 1, 0};
  const Bytes payload = rng.bytes(24);
  const Bytes blob = hve_encrypt_bytes(keys_->pk, x, payload, rng);
  const HveMatchCt prepared = hve_match_prepare(p, blob);

  std::vector<HveToken> toks;
  for (int i = 0; i < 9; ++i) {
    Pattern w(kWidth, kWildcard);
    w[static_cast<std::size_t>(i) % kWidth] =
        (i == 6) ? static_cast<std::int8_t>(x[6]) : // the only match
        static_cast<std::int8_t>(1 - x[static_cast<std::size_t>(i) % kWidth]);
    toks.push_back(hve_gen_token(*keys_, w, rng));
  }
  std::vector<const HveToken*> ptrs;
  for (const auto& t : toks) ptrs.push_back(&t);

  exec::Pool seq(1), par(4);
  const HveMatchResult a = hve_match_any(p, ptrs, prepared, &seq);
  const HveMatchResult b = hve_match_any(p, ptrs, prepared, &par);
  ASSERT_TRUE(a.matched());
  EXPECT_EQ(a.token_index, 6u);
  EXPECT_EQ(b.token_index, a.token_index);
  EXPECT_EQ(b.payload, a.payload);
}

TEST_F(HveTest, KemRejectsMalformedInput) {
  Pattern w(kWidth, kWildcard);
  w[0] = 1;
  const auto tok = hve_gen_token(*keys_, w, *rng_);
  EXPECT_FALSE(hve_query_bytes(*keys_->pk.pairing, tok, Bytes{1, 2}).has_value());
  EXPECT_FALSE(hve_query_bytes(*keys_->pk.pairing, tok, {}).has_value());
}

TEST_F(HveTest, TokenProbingAttackDemonstratesNoTokenPrivacy) {
  // Paper §6.1 (orange edges in the PBE gadget): a party holding a token and
  // the public key can learn the interest vector by probing encryptions of
  // all attribute vectors. We demonstrate on a 3-bit sub-pattern.
  TestRng rng(0xa77ac);
  const auto keys = hve_setup(pairing::Pairing::test_pairing(), 3, rng);
  const Pattern secret_interest = {1, kWildcard, 0};
  const auto tok = hve_gen_token(keys, secret_interest, rng);

  // The attacker cannot see wildcard positions from components alone but
  // CAN see them from `positions`; for the rest it probes.
  Pattern recovered(3, kWildcard);
  for (std::uint32_t pos : tok.positions) recovered[pos] = 0;  // placeholder
  for (int assignment = 0; assignment < 8; ++assignment) {
    BitVector x = {static_cast<std::uint8_t>(assignment & 1),
                   static_cast<std::uint8_t>((assignment >> 1) & 1),
                   static_cast<std::uint8_t>((assignment >> 2) & 1)};
    const Bytes probe = hve_encrypt_bytes(keys.pk, x, str_to_bytes("p"), rng);
    if (hve_query_bytes(*keys.pk.pairing, tok, probe).has_value()) {
      for (std::uint32_t pos : tok.positions) {
        recovered[pos] = static_cast<std::int8_t>(x[pos]);
      }
      break;
    }
  }
  EXPECT_EQ(recovered, secret_interest);
}

}  // namespace
}  // namespace p3s::pbe
