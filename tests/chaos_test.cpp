// Seeded chaos matrix: the full P3S protocol (publish → store → broadcast →
// match → fetch → decrypt) driven to convergence under deterministic fault
// schedules — drop-heavy, duplicate-heavy, adversarial reorder, and a DS
// blackout + restart. Every (scenario, seed) cell is an individual ctest
// case named after its seed; a failing cell prints a one-line replay
// command. The reliable request layer (DESIGN.md "Reliability") must bring
// every cell to exactly-once delivery, and the fault schedule must leak
// nothing new to the eavesdropper's traffic log.
//
// Also pins the RS T_G grace period end-to-end: a fetch racing deletion
// inside T_G succeeds; past T_G it fails with a clean typed miss, never a
// hang or an unbounded retry storm.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "net/async.hpp"
#include "p3s/system.hpp"

namespace p3s::core {
namespace {

constexpr const char* kPayloadA = "CHAOS-SECRET-ALPHA";
constexpr const char* kPayloadB = "CHAOS-SECRET-BRAVO";

bool wire_contains(const net::Network& net, BytesView needle) {
  for (const auto& rec : net.traffic()) {
    if (needle.size() > rec.frame.size()) continue;
    if (std::search(rec.frame.begin(), rec.frame.end(), needle.begin(),
                    needle.end()) != rec.frame.end()) {
      return true;
    }
  }
  return false;
}

struct ChaosCase {
  const char* scenario;
  std::uint64_t seed;
};

std::string case_name(const ChaosCase& c) {
  return std::string(c.scenario) + "_seed" + std::to_string(c.seed);
}

void PrintTo(const ChaosCase& c, std::ostream* os) { *os << case_name(c); }

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> out;
  for (const char* scenario :
       {"drop_heavy", "dup_heavy", "reorder", "blackout_restart"}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      out.push_back({scenario, seed});
    }
  }
  return out;
}

net::LinkFaults scenario_faults(const std::string& scenario) {
  net::LinkFaults f;
  if (scenario == "drop_heavy") {
    f.drop = 0.12;
    f.delay_max = 2.0;
  } else if (scenario == "dup_heavy") {
    f.duplicate = 0.35;
    f.delay_max = 2.0;
  } else if (scenario == "reorder") {
    f.reorder = 0.6;
    f.delay_max = 4.0;
  } else {  // blackout_restart: light ambient loss around the outage
    f.drop = 0.05;
    f.delay_max = 2.0;
  }
  return f;
}

class ChaosMatrix : public ::testing::TestWithParam<ChaosCase> {
 protected:
  void SetUp() override {
    // Client randomness varies with the chaos seed too, so every cell
    // exercises different GUIDs/keys — while staying fully replayable.
    rng_.emplace(0xc4a05u ^ GetParam().seed);

    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = pbe::MetadataSchema(
        {{"sector", {"finance", "tech"}}, {"grade", {"x", "y"}}});
    config.rs_grace_seconds = 1e9;  // T_G races are pinned separately below
    config.reliability.enabled = true;
    // Times are AsyncNetwork ticks (every send and every pump is a tick).
    config.reliability.timeout = 300.0;
    config.reliability.max_timeout = 1200.0;
    config.reliability.sync_interval = 700.0;
    config.reliability.max_attempts = 16;
    config.reliability.reconnect_after = 3;
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), *rng_);
  }

  /// Pump + poll + advance until `done()` holds with an idle wire, or the
  /// round budget runs out.
  [[nodiscard]] bool converge(const std::function<bool()>& done,
                              int max_rounds = 500) {
    for (int round = 0; round < max_rounds; ++round) {
      net_.run_until_idle(500000);
      if (done()) return true;
      pub_->poll();
      sub1_->poll();
      sub2_->poll();
      if (net_.in_flight() == 0) net_.advance(97);
    }
    net_.run_until_idle(500000);
    return done();
  }

  bool all_connected() const {
    return pub_->connected() && sub1_->connected() && sub2_->connected() &&
           sub1_->token_count() == 1 && sub2_->token_count() == 1;
  }

  /// Exactly-once: each subscriber delivered exactly `expected`, no
  /// duplicates, nothing extra, and the publisher has nothing pending.
  void assert_exactly_once(const std::set<Guid>& expected) {
    for (const Subscriber* sub : {sub1_.get(), sub2_.get()}) {
      std::set<Guid> got;
      for (const auto& d : sub->deliveries()) {
        EXPECT_TRUE(got.insert(d.guid).second)
            << sub->name() << ": duplicate delivery";
      }
      EXPECT_EQ(got, expected) << sub->name();
      EXPECT_EQ(sub->deliveries().size(), expected.size()) << sub->name();
      EXPECT_EQ(sub->request_failures(), 0u) << sub->name();
    }
    EXPECT_EQ(pub_->pending_publish_count(), 0u);
    EXPECT_EQ(pub_->publish_failures(), 0u);
  }

  net::AsyncNetwork net_;
  std::optional<TestRng> rng_;
  std::unique_ptr<P3sSystem> system_;
  std::unique_ptr<Publisher> pub_;
  std::unique_ptr<Subscriber> sub1_;
  std::unique_ptr<Subscriber> sub2_;
};

TEST_P(ChaosMatrix, ConvergesToExactlyOnceDelivery) {
  const ChaosCase c = GetParam();
  SCOPED_TRACE("replay: tests/test_chaos --gtest_filter='*" + case_name(c) +
               "'");

  net::FaultPlan plan(c.seed);
  plan.set_default(scenario_faults(c.scenario));
  net_.set_fault_plan(std::move(plan));

  sub1_ = system_->make_subscriber("sub1", "alice", {"m"}, *rng_);
  sub2_ = system_->make_subscriber("sub2", "bob", {"m"}, *rng_);
  pub_ = system_->make_publisher("pub1", "press", *rng_);
  sub1_->subscribe({{"sector", "finance"}});
  sub2_->subscribe({{"sector", "finance"}});
  ASSERT_TRUE(converge([&] { return all_connected(); }))
      << "clients never converged to connected+token state";

  const bool blackout = std::string(c.scenario) == "blackout_restart";
  std::set<Guid> expected;
  const auto publish_matching = [&](const char* payload) {
    expected.insert(pub_->publish({{"sector", "finance"}, {"grade", "x"}},
                                  str_to_bytes(payload),
                                  abe::parse_policy("m"), /*ttl=*/1e9));
  };

  // Phase 1: two matching items plus one nobody matches (broadcast-only).
  publish_matching(kPayloadA);
  publish_matching(kPayloadB);
  pub_->publish({{"sector", "tech"}, {"grade", "y"}},
                str_to_bytes("CHAOS-SECRET-NOMATCH"), abe::parse_policy("m"),
                1e9);
  const auto phase1_done = [&] {
    return sub1_->deliveries().size() == expected.size() &&
           sub2_->deliveries().size() == expected.size() &&
           pub_->pending_publish_count() == 0;
  };
  ASSERT_TRUE(converge(phase1_done)) << "phase 1 never converged";

  if (blackout) {
    // The DS goes dark and loses all volatile state (sessions,
    // registrations, replay ring), then comes back as a new incarnation.
    // Clients must notice, re-register, and resume exactly-once delivery.
    system_->ds().crash_and_restart();
    ASSERT_NE(net_.fault_plan(), nullptr);
    net_.fault_plan()->add_blackout(system_->directory().ds_name, net_.now(),
                                    net_.now() + 900.0);
    publish_matching("CHAOS-SECRET-AFTER-1");
    publish_matching("CHAOS-SECRET-AFTER-2");
    const auto phase2_done = [&] {
      return sub1_->deliveries().size() == expected.size() &&
             sub2_->deliveries().size() == expected.size() &&
             pub_->pending_publish_count() == 0;
    };
    ASSERT_TRUE(converge(phase2_done, 800)) << "post-restart never converged";
  }

  assert_exactly_once(expected);

  // The cell must not pass vacuously: the schedule really injected faults.
  const std::string scenario = c.scenario;
  if (scenario == "drop_heavy" || scenario == "blackout_restart") {
    EXPECT_GT(net_.dropped_frames(), 0u);
  }
  if (scenario == "dup_heavy") {
    // Duplicated frames are verbatim copies, so the eavesdropper log holds
    // at least one exact repeat.
    std::set<std::pair<std::string, Bytes>> seen;
    bool repeat = false;
    for (const auto& rec : net_.traffic()) {
      if (!seen.insert({rec.from + "\x1f" + rec.to, rec.frame}).second) {
        repeat = true;
        break;
      }
    }
    EXPECT_TRUE(repeat);
  }

  // The faults changed timing and multiplicity, never exposure: no payload
  // and no interest/metadata plaintext anywhere on the wire — including
  // frames that were dropped (they were sent, so the eavesdropper saw them).
  EXPECT_FALSE(wire_contains(net_, str_to_bytes(kPayloadA)));
  EXPECT_FALSE(wire_contains(net_, str_to_bytes(kPayloadB)));
  EXPECT_FALSE(wire_contains(net_, str_to_bytes("CHAOS-SECRET")));
  EXPECT_FALSE(wire_contains(net_, str_to_bytes("sector")));
  EXPECT_FALSE(wire_contains(net_, str_to_bytes("finance")));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ChaosMatrix, ::testing::ValuesIn(chaos_cases()),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      return case_name(info.param);
    });

// --- RS T_G grace period, pinned end-to-end ----------------------------------

class GracePeriodTest : public ::testing::Test {
 protected:
  void SetUp() override {
    P3sConfig config;
    config.pairing = pairing::Pairing::test_pairing();
    config.schema = pbe::MetadataSchema(
        {{"sector", {"finance", "tech"}}, {"grade", {"x", "y"}}});
    config.rs_grace_seconds = kGrace;
    config.reliability.enabled = true;
    system_ = std::make_unique<P3sSystem>(net_, std::move(config), rng_);
    sub_ = system_->make_subscriber("sub1", "alice", {"m"}, rng_);
    pub_ = system_->make_publisher("pub1", "press", rng_);
    net_.run_until_idle();
    sub_->subscribe({{"sector", "finance"}});
    net_.run_until_idle();
    ASSERT_EQ(sub_->token_count(), 1u);
  }

  /// Publish with `ttl`, then deliver frames only until the subscriber has
  /// matched — its content request is then in flight, racing deletion.
  void publish_and_stall_fetch(double ttl) {
    pub_->publish({{"sector", "finance"}, {"grade", "x"}},
                  str_to_bytes("grace-payload"), abe::parse_policy("m"), ttl);
    const std::size_t before = sub_->match_count();
    while (sub_->match_count() == before && net_.pump_one()) {
    }
    ASSERT_GT(sub_->match_count(), before);
  }

  static constexpr double kTtl = 50.0;
  static constexpr double kGrace = 500.0;  // T_G
  net::AsyncNetwork net_;
  TestRng rng_{0x97ace};
  std::unique_ptr<P3sSystem> system_;
  std::unique_ptr<Subscriber> sub_;
  std::unique_ptr<Publisher> pub_;
};

TEST_F(GracePeriodTest, FetchAfterTtlButInsideGraceSucceeds) {
  publish_and_stall_fetch(kTtl);
  // TTL passes while the request is in flight, but we are inside T_G: the
  // RS must still serve the item (the grace period exists exactly for this
  // slow-consumer race, paper §4.3).
  net_.advance(static_cast<std::uint64_t>(kTtl) + 100);
  system_->rs().garbage_collect();
  net_.run_until_idle();
  EXPECT_EQ(sub_->deliveries().size(), 1u);
  EXPECT_EQ(sub_->fetch_failures(), 0u);
}

TEST_F(GracePeriodTest, FetchPastGraceIsTypedMissNotAHang) {
  publish_and_stall_fetch(kTtl);
  // Past TTL + T_G the item is gone for good. The fetch must complete with
  // a clean NotFound surfaced as a fetch failure — the request is settled,
  // nothing stays pending, and nothing retries forever.
  net_.advance(static_cast<std::uint64_t>(kTtl + kGrace) + 100);
  system_->rs().garbage_collect();
  net_.run_until_idle();
  EXPECT_EQ(sub_->deliveries().size(), 0u);
  EXPECT_EQ(sub_->fetch_failures(), 1u);
  EXPECT_EQ(sub_->pending_request_count(), 0u);
  // Polling afterwards must not resurrect the settled request.
  sub_->poll();
  net_.run_until_idle();
  EXPECT_EQ(sub_->fetch_failures(), 1u);
  EXPECT_EQ(sub_->pending_request_count(), 0u);
}

}  // namespace
}  // namespace p3s::core
