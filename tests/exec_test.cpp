// Tests for the shared execution layer (src/exec): pool lifecycle,
// submit/steal/shutdown stress, parallel_for / parallel_find semantics,
// inline fallback determinism, and exactness of the sharded metrics under
// heavy concurrent writers. Built with -DP3S_SANITIZE=thread in CI these
// double as the TSan stress suite.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/pool.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::exec {
namespace {

TEST(Pool, SingleThreadPoolSpawnsNoWorkersAndRunsInline) {
  Pool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<int> order;
  std::thread::id task_thread;
  pool.submit([&] {
    order.push_back(1);
    task_thread = std::this_thread::get_id();
  });
  pool.submit([&] { order.push_back(2); });
  // Inline execution: both tasks already ran, on the calling thread.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(task_thread, caller);
  EXPECT_FALSE(on_worker_thread());
}

TEST(Pool, AsyncReturnsValueAndPropagatesExceptions) {
  Pool pool(3);
  auto ok = pool.async([] { return 41 + 1; });
  EXPECT_EQ(ok.get(), 42);
  auto boom = pool.async([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(Pool, SubmitStealShutdownStress) {
  // Many small tasks pushed from several submitter threads while workers
  // pop and steal; the pool must run every task exactly once and join
  // cleanly with a non-empty moment-to-moment queue mix.
  constexpr int kSubmitters = 4;
  constexpr int kTasksEach = 500;
  std::atomic<int> ran{0};
  {
    Pool pool(4);
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&pool, &ran] {
        for (int i = 0; i < kTasksEach; ++i) {
          pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (auto& t : submitters) t.join();
    // Destructor drains the queues before joining the workers.
  }
  EXPECT_EQ(ran.load(), kSubmitters * kTasksEach);
}

TEST(Pool, TasksSubmittedFromWorkersRunInline) {
  // A worker submitting into its own pool must not deadlock: nested tasks
  // run inline on the worker.
  Pool pool(2);
  auto fut = pool.async([&pool] {
    EXPECT_TRUE(on_worker_thread());
    int nested = 0;
    pool.submit([&nested] { nested = 7; });  // inline on this worker
    return nested;
  });
  EXPECT_EQ(fut.get(), 7);
}

TEST(Pool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Pool pool(threads);
    constexpr std::size_t kN = 10'000;
    std::vector<std::atomic<std::uint32_t>> hits(kN);
    pool.parallel_for(0, kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " threads " << threads;
    }
    // Empty and single-element ranges are fine too.
    pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
    std::size_t only = 0;
    pool.parallel_for(7, 8, [&](std::size_t i) { only = i; });
    EXPECT_EQ(only, 7u);
  }
}

TEST(Pool, ParallelForRethrowsBodyException) {
  Pool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("body failed");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives and stays usable after the throw.
  std::atomic<int> ran{0};
  pool.parallel_for(0, 8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(Pool, ParallelFindReturnsLowestHit) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    Pool pool(threads);
    // Two hits: the LOWEST one must win regardless of evaluation order.
    const auto pred = [](std::size_t i) { return i == 13 || i == 77; };
    EXPECT_EQ(pool.parallel_find(100, pred), 13u);
    EXPECT_EQ(pool.parallel_find(100, [](std::size_t) { return false; }),
              SIZE_MAX);
    EXPECT_EQ(pool.parallel_find(0, [](std::size_t) { return true; }),
              SIZE_MAX);
    EXPECT_EQ(pool.parallel_find(1, [](std::size_t i) { return i == 0; }), 0u);
  }
}

TEST(Pool, ParallelFindLowestWinsUnderRacedHits) {
  // Make the low hit slow so higher hits land first; the result must still
  // be the lowest index (a later low hit overrides earlier higher ones).
  Pool pool(4);
  for (int round = 0; round < 20; ++round) {
    const std::size_t got = pool.parallel_find(64, [](std::size_t i) {
      if (i == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return true;
      }
      return i >= 50;
    });
    ASSERT_EQ(got, 2u) << "round " << round;
  }
}

TEST(Pool, GlobalPoolResizes) {
  Pool::set_global_threads(3);
  EXPECT_EQ(Pool::global().thread_count(), 3u);
  Pool::set_global_threads(1);
  EXPECT_EQ(Pool::global().thread_count(), 1u);
}

TEST(ExecMetrics, CounterExactUnderParallelForContention) {
  // The sharded counter must not lose a single increment when hammered from
  // all workers at once; the histogram count must match the number of
  // records. Uses throwaway catalogued-charset names in the global registry.
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& counter = reg.counter("p3s.test.exec_contention_total");
  obs::Histogram& hist = reg.histogram("p3s.test.exec_contention_seconds");
  const std::uint64_t before_c = counter.value();
  const std::uint64_t before_h = hist.count();

  constexpr std::size_t kIters = 20'000;
  Pool pool(4);
  pool.parallel_for(0, kIters, [&](std::size_t i) {
    counter.inc();
    if (i % 10 == 0) hist.record(1e-6 * static_cast<double>(i));
  });

  EXPECT_EQ(counter.value() - before_c, kIters);
  EXPECT_EQ(hist.count() - before_h, kIters / 10);
}

TEST(ExecMetrics, PoolAccountingCountersMoveForward) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& tasks = reg.counter(obs::names::kExecTasksTotal);
  obs::Counter& pfor = reg.counter(obs::names::kExecParallelForTotal);
  const std::uint64_t t0 = tasks.value();
  const std::uint64_t p0 = pfor.value();
  Pool pool(2);
  pool.parallel_for(0, 64, [](std::size_t) {});
  auto fut = pool.async([] { return 1; });
  fut.get();
  EXPECT_GT(tasks.value(), t0);
  EXPECT_GT(pfor.value(), p0);
}

}  // namespace
}  // namespace p3s::exec
