// Pins the lexer corner cases tools/p3s-lint depends on (see the header
// comment in tools/p3s-lint/lexer.hpp). Each regression here once produced
// a desynchronized token stream: an apostrophe opening a bogus char
// literal, a raw-string body parsed as code, or a "//" inside a string
// starting a false comment — all of which silently blind the analyzer for
// the rest of the file.
#include "tools/p3s-lint/lexer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using p3s::lint::Tok;
using p3s::lint::Token;
using p3s::lint::tokenize;

std::vector<Token> lex(const std::string& src) { return tokenize(src); }

// Convenience: kinds/texts of all tokens, comments included.
std::vector<std::string> texts(const std::vector<Token>& toks) {
  std::vector<std::string> out;
  for (const Token& t : toks) out.push_back(t.text);
  return out;
}

TEST(LintLexer, DigitSeparatorsAreOneNumberToken) {
  const auto toks = lex("int x = 1'000'000;");
  ASSERT_EQ(toks.size(), 5u);  // int x = <num> ; — separators stripped
  EXPECT_EQ(toks[3].kind, Tok::kNumber);
  EXPECT_EQ(toks[3].text, "1000000");  // compares equal to plain form
  EXPECT_EQ(toks[4].text, ";");
}

TEST(LintLexer, HexDigitSeparators) {
  const auto toks = lex("auto m = 0xFF'FF;");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[3].kind, Tok::kNumber);
  EXPECT_EQ(toks[3].text, "0xFFFF");
}

TEST(LintLexer, SeparatorDoesNotOpenCharLiteral) {
  // The apostrophe in 1'000 must not swallow code up to the next quote:
  // the call to strcpy after it has to stay visible as a call.
  const auto toks = lex("f(1'000); strcpy(dst, src);");
  bool saw_strcpy_call = false;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind == Tok::kIdent && toks[i].text == "strcpy" &&
        toks[i + 1].kind == Tok::kPunct && toks[i + 1].text == "(") {
      saw_strcpy_call = true;
    }
  }
  EXPECT_TRUE(saw_strcpy_call);
}

TEST(LintLexer, RawStringBodyIsData) {
  const auto toks = lex("auto s = R\"(no // comment \" here)\"; g();");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[3].kind, Tok::kString);
  EXPECT_EQ(toks[3].text, "no // comment \" here");
  // The g() after the literal still lexes as a call.
  EXPECT_EQ(toks[toks.size() - 4].text, "g");
  for (const Token& t : toks) EXPECT_NE(t.kind, Tok::kComment);
}

TEST(LintLexer, RawStringCustomDelimiter) {
  const auto toks = lex("R\"xx(a)\" not closed )xx\" h();");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, Tok::kString);
  EXPECT_EQ(toks[0].text, "a)\" not closed ");
  EXPECT_EQ(toks[1].text, "h");
}

TEST(LintLexer, EncodingPrefixedRawString) {
  const auto toks = lex("auto s = u8R\"(x//y)\";");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[3].kind, Tok::kString);
  EXPECT_EQ(toks[3].text, "x//y");
  for (const Token& t : toks) EXPECT_NE(t.kind, Tok::kComment);
}

TEST(LintLexer, SlashSlashInsideStringIsNotComment) {
  const auto toks = lex("log(\"http://x\"); rand();");
  bool saw_rand = false;
  for (const Token& t : toks) {
    EXPECT_NE(t.kind, Tok::kComment);
    if (t.kind == Tok::kIdent && t.text == "rand") saw_rand = true;
  }
  EXPECT_TRUE(saw_rand);
}

TEST(LintLexer, LiteralSuffixDoesNotDetach) {
  // 10ms / "x"sv: the suffix must not become a free identifier that shifts
  // call-site detection one token over.
  const auto toks = lex("wait_for(10ms); use(\"x\"sv);");
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "ms");
    EXPECT_NE(t.text, "sv");
  }
}

TEST(LintLexer, EncodingPrefixedOrdinaryLiterals) {
  const auto toks = lex("auto a = u8\"abc\"; auto c = L'q';");
  int strings = 0;
  int chars = 0;
  for (const Token& t : toks) {
    if (t.kind == Tok::kString) ++strings;
    if (t.kind == Tok::kChar) ++chars;
  }
  EXPECT_EQ(strings, 1);
  EXPECT_EQ(chars, 1);
  // The prefixes must not appear as identifiers.
  for (const Token& t : toks) {
    if (t.kind == Tok::kIdent) {
      EXPECT_NE(t.text, "u8");
      EXPECT_NE(t.text, "L");
    }
  }
}

TEST(LintLexer, UnterminatedStringStopsAtNewline) {
  // One stray quote must not swallow the rest of the file: the comment on
  // the next line still lexes as a comment.
  const auto toks = lex("auto s = \"oops;\n// real comment\nint x;");
  bool saw_comment = false;
  for (const Token& t : toks) {
    if (t.kind == Tok::kComment) saw_comment = true;
  }
  EXPECT_TRUE(saw_comment);
}

TEST(LintLexer, CommentsCarrySuppressionText) {
  const auto toks = lex("x = 1;  // p3s:lint-allow(banned-api) reason\n");
  ASSERT_FALSE(toks.empty());
  const Token& last = toks.back();
  EXPECT_EQ(last.kind, Tok::kComment);
  EXPECT_NE(last.text.find("p3s:lint-allow(banned-api)"), std::string::npos);
}

TEST(LintLexer, MultiCharPunctuationIsGreedy) {
  const auto toks = lex("a==b; c<=>d; e->f; g::h;");
  const auto tx = texts(toks);
  EXPECT_NE(std::find(tx.begin(), tx.end(), "=="), tx.end());
  EXPECT_NE(std::find(tx.begin(), tx.end(), "<=>"), tx.end());
  EXPECT_NE(std::find(tx.begin(), tx.end(), "->"), tx.end());
  EXPECT_NE(std::find(tx.begin(), tx.end(), "::"), tx.end());
}

TEST(LintLexer, LineNumbersSurviveMultilineConstructs) {
  const auto toks = lex("/* a\nb\nc */\nR\"(1\n2)\"\nlast");
  ASSERT_FALSE(toks.empty());
  const Token& last = toks.back();
  EXPECT_EQ(last.text, "last");
  EXPECT_EQ(last.line, 6);
}

}  // namespace
