#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "math/modular.hpp"
#include "pairing/curve.hpp"
#include "pairing/ecies.hpp"
#include "pairing/fq2.hpp"
#include "pairing/pairing.hpp"

namespace p3s::pairing {
namespace {

using math::BigInt;
using math::mod;

class PairingTest : public ::testing::Test {
 protected:
  PairingPtr pp_ = Pairing::test_pairing();
  TestRng rng_{0xfeed};
};

// --- Fq2 ---------------------------------------------------------------------

TEST_F(PairingTest, Fq2FieldAxioms) {
  const BigInt& q = pp_->q();
  TestRng rng(1);
  for (int i = 0; i < 20; ++i) {
    Fq2 a{BigInt::random_below(rng, q), BigInt::random_below(rng, q)};
    Fq2 b{BigInt::random_below(rng, q), BigInt::random_below(rng, q)};
    Fq2 c{BigInt::random_below(rng, q), BigInt::random_below(rng, q)};
    // Commutativity and associativity of multiplication.
    EXPECT_EQ(fq2_mul(a, b, q), fq2_mul(b, a, q));
    EXPECT_EQ(fq2_mul(fq2_mul(a, b, q), c, q), fq2_mul(a, fq2_mul(b, c, q), q));
    // Distributivity.
    EXPECT_EQ(fq2_mul(a, fq2_add(b, c, q), q),
              fq2_add(fq2_mul(a, b, q), fq2_mul(a, c, q), q));
    // Square matches mul.
    EXPECT_EQ(fq2_sqr(a, q), fq2_mul(a, a, q));
    // Additive inverse.
    EXPECT_TRUE(fq2_is_zero(fq2_add(a, fq2_neg(a, q), q)));
    // Multiplicative inverse.
    if (!fq2_is_zero(a)) {
      EXPECT_TRUE(fq2_is_one(fq2_mul(a, fq2_inv(a, q), q)));
    }
  }
}

TEST_F(PairingTest, Fq2IsquaredIsMinusOne) {
  const BigInt& q = pp_->q();
  const Fq2 i{BigInt{}, BigInt{1}};
  const Fq2 i2 = fq2_mul(i, i, q);
  EXPECT_EQ(i2.a, q - BigInt{1});
  EXPECT_TRUE(i2.b.is_zero());
}

TEST_F(PairingTest, Fq2PowMatchesRepeatedMul) {
  const BigInt& q = pp_->q();
  const Fq2 x{BigInt{3}, BigInt{5}};
  Fq2 acc = fq2_one();
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(fq2_pow(x, BigInt{e}, q), acc) << e;
    acc = fq2_mul(acc, x, q);
  }
}

TEST_F(PairingTest, Fq2ConjIsFrobenius) {
  // For q ≡ 3 mod 4, x^q == conj(x).
  const BigInt& q = pp_->q();
  TestRng rng(2);
  const Fq2 x{BigInt::random_below(rng, q), BigInt::random_below(rng, q)};
  EXPECT_EQ(fq2_pow(x, q, q), fq2_conj(x, q));
}

TEST_F(PairingTest, Fq2InvZeroThrows) {
  EXPECT_THROW(fq2_inv(fq2_zero(), pp_->q()), std::domain_error);
}

// --- Curve -------------------------------------------------------------------

TEST_F(PairingTest, GeneratorOnCurveWithOrderR) {
  const auto& prm = pp_->params();
  EXPECT_TRUE(on_curve(prm.g, prm.q));
  EXPECT_FALSE(prm.g.infinity);
  EXPECT_TRUE(point_mul(prm.g, prm.r, prm.q).infinity);
  EXPECT_FALSE(point_mul(prm.g, prm.r - BigInt{1}, prm.q).infinity);
}

TEST_F(PairingTest, GroupLaws) {
  const auto& prm = pp_->params();
  const Point p = pp_->random_g1(rng_);
  const Point q2 = pp_->random_g1(rng_);
  const Point r2 = pp_->random_g1(rng_);
  // Commutativity / associativity.
  EXPECT_EQ(point_add(p, q2, prm.q), point_add(q2, p, prm.q));
  EXPECT_EQ(point_add(point_add(p, q2, prm.q), r2, prm.q),
            point_add(p, point_add(q2, r2, prm.q), prm.q));
  // Identity and inverse.
  EXPECT_EQ(point_add(p, Point::at_infinity(), prm.q), p);
  EXPECT_TRUE(point_add(p, point_neg(p, prm.q), prm.q).infinity);
  // Double == add self.
  EXPECT_EQ(point_double(p, prm.q), point_add(p, p, prm.q));
}

TEST_F(PairingTest, ScalarMulMatchesRepeatedAdd) {
  const auto& prm = pp_->params();
  const Point p = pp_->random_g1(rng_);
  Point acc = Point::at_infinity();
  for (std::uint64_t k = 0; k < 16; ++k) {
    EXPECT_EQ(point_mul(p, BigInt{k}, prm.q), acc) << k;
    acc = point_add(acc, p, prm.q);
  }
}

TEST_F(PairingTest, ScalarMulDistributes) {
  const auto& prm = pp_->params();
  const Point p = pp_->random_g1(rng_);
  const BigInt a = pp_->random_scalar(rng_);
  const BigInt b = pp_->random_scalar(rng_);
  const Point lhs = point_mul(p, mod(a + b, prm.r), prm.q);
  const Point rhs =
      point_add(point_mul(p, a, prm.q), point_mul(p, b, prm.q), prm.q);
  EXPECT_EQ(lhs, rhs);
}

TEST_F(PairingTest, ResultsStayOnCurve) {
  const auto& prm = pp_->params();
  TestRng rng(4);
  for (int i = 0; i < 10; ++i) {
    const Point p = pp_->random_g1(rng);
    const Point s = point_mul(p, pp_->random_scalar(rng), prm.q);
    EXPECT_TRUE(on_curve(s, prm.q));
  }
}

// --- Pairing -----------------------------------------------------------------

TEST_F(PairingTest, NonDegenerate) {
  const Fq2 e = pp_->pair(pp_->generator(), pp_->generator());
  EXPECT_FALSE(fq2_is_one(e));
  EXPECT_FALSE(fq2_is_zero(e));
}

TEST_F(PairingTest, GtElementHasOrderR) {
  const Fq2 e = pp_->gt_generator();
  EXPECT_TRUE(fq2_is_one(fq2_pow(e, pp_->r(), pp_->q())));
}

TEST_F(PairingTest, Bilinearity) {
  for (int trial = 0; trial < 3; ++trial) {
    const BigInt a = pp_->random_nonzero_scalar(rng_);
    const BigInt b = pp_->random_nonzero_scalar(rng_);
    const Point ga = pp_->mul(pp_->generator(), a);
    const Point gb = pp_->mul(pp_->generator(), b);
    const Fq2 lhs = pp_->pair(ga, gb);
    const Fq2 rhs = pp_->gt_pow(pp_->gt_generator(), mod(a * b, pp_->r()));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_F(PairingTest, BilinearInEachArgument) {
  const Point p = pp_->random_g1(rng_);
  const Point q2 = pp_->random_g1(rng_);
  const BigInt k = pp_->random_nonzero_scalar(rng_);
  EXPECT_EQ(pp_->pair(pp_->mul(p, k), q2), pp_->pair(p, pp_->mul(q2, k)));
  EXPECT_EQ(pp_->pair(pp_->mul(p, k), q2), pp_->gt_pow(pp_->pair(p, q2), k));
}

TEST_F(PairingTest, PairingWithIdentityIsOne) {
  EXPECT_TRUE(fq2_is_one(pp_->pair(Point::at_infinity(), pp_->generator())));
  EXPECT_TRUE(fq2_is_one(pp_->pair(pp_->generator(), Point::at_infinity())));
}

TEST_F(PairingTest, PairingSymmetricUpToDistortion) {
  // For the Type-A distortion pairing, e(P,Q) == e(Q,P).
  const Point p = pp_->random_g1(rng_);
  const Point q2 = pp_->random_g1(rng_);
  EXPECT_EQ(pp_->pair(p, q2), pp_->pair(q2, p));
}

TEST_F(PairingTest, MultiplicativeHomomorphism) {
  const Point p = pp_->random_g1(rng_);
  const Point a = pp_->random_g1(rng_);
  const Point b = pp_->random_g1(rng_);
  EXPECT_EQ(pp_->pair(p, pp_->add(a, b)),
            pp_->gt_mul(pp_->pair(p, a), pp_->pair(p, b)));
}

// --- Hash to group / serialization --------------------------------------------

TEST_F(PairingTest, HashToG1Deterministic) {
  const Point a = pp_->hash_to_g1(str_to_bytes("attribute:finance"));
  const Point b = pp_->hash_to_g1(str_to_bytes("attribute:finance"));
  const Point c = pp_->hash_to_g1(str_to_bytes("attribute:legal"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(on_curve(a, pp_->q()));
  // In the order-r subgroup:
  EXPECT_TRUE(pp_->mul(a, pp_->r()).infinity);
}

TEST_F(PairingTest, G1SerializationRoundTrip) {
  const Point p = pp_->random_g1(rng_);
  const Bytes ser = pp_->serialize_g1(p);
  EXPECT_EQ(ser.size(), pp_->g1_bytes());
  EXPECT_EQ(pp_->deserialize_g1(ser), p);
  // Infinity round-trips too.
  EXPECT_TRUE(pp_->deserialize_g1(pp_->serialize_g1(Point::at_infinity())).infinity);
}

TEST_F(PairingTest, G1DeserializationValidatesCurve) {
  Bytes ser = pp_->serialize_g1(pp_->generator());
  ser[5] ^= 1;  // corrupt x
  EXPECT_THROW(pp_->deserialize_g1(ser), std::invalid_argument);
}

TEST_F(PairingTest, GtSerializationRoundTrip) {
  const Fq2 e = pp_->random_gt(rng_);
  const Bytes ser = pp_->serialize_gt(e);
  EXPECT_EQ(ser.size(), pp_->gt_bytes());
  EXPECT_EQ(pp_->deserialize_gt(ser), e);
}

TEST_F(PairingTest, ParamsSerializationRoundTrip) {
  const Bytes ser = pp_->params().serialize();
  const Params p2 = Params::deserialize(ser);
  EXPECT_EQ(p2.q, pp_->params().q);
  EXPECT_EQ(p2.r, pp_->params().r);
  EXPECT_EQ(p2.h, pp_->params().h);
  EXPECT_EQ(p2.g, pp_->params().g);
}

TEST_F(PairingTest, ParamsValidation) {
  Params bad = pp_->params();
  bad.g.x += BigInt{1};
  EXPECT_THROW(Pairing{bad}, std::invalid_argument);
  Params bad2 = pp_->params();
  bad2.h += BigInt{4};
  EXPECT_THROW(Pairing{bad2}, std::invalid_argument);
}

TEST(PairingGen, FreshParamsSatisfyInvariants) {
  TestRng rng(99);
  const Params p = generate_params(rng, 40, 96);
  EXPECT_EQ(p.r.bit_length(), 40u);
  EXPECT_EQ(p.q.bit_length(), 96u);
  EXPECT_EQ(p.q % BigInt{4}, BigInt{3});
  EXPECT_EQ(p.q, p.h * p.r - BigInt{1});
  const Pairing pairing(p);
  // Bilinearity sanity on the fresh group.
  TestRng r2(100);
  const BigInt a = pairing.random_nonzero_scalar(r2);
  EXPECT_EQ(pairing.pair(pairing.mul(p.g, a), p.g),
            pairing.gt_pow(pairing.gt_generator(), a));
}

// --- ECIES ---------------------------------------------------------------------

TEST_F(PairingTest, EciesRoundTrip) {
  const EciesKeyPair kp = ecies_keygen(*pp_, rng_);
  const Bytes msg = str_to_bytes("token request: predicate=(a=1 AND b=*)");
  const Bytes ct = ecies_encrypt(*pp_, kp.public_key, msg, rng_);
  const auto out = ecies_decrypt(*pp_, kp.secret, ct);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, msg);
}

TEST_F(PairingTest, EciesWrongKeyFails) {
  const EciesKeyPair kp = ecies_keygen(*pp_, rng_);
  const EciesKeyPair other = ecies_keygen(*pp_, rng_);
  const Bytes ct = ecies_encrypt(*pp_, kp.public_key, str_to_bytes("m"), rng_);
  EXPECT_FALSE(ecies_decrypt(*pp_, other.secret, ct).has_value());
}

TEST_F(PairingTest, EciesTamperDetected) {
  const EciesKeyPair kp = ecies_keygen(*pp_, rng_);
  Bytes ct = ecies_encrypt(*pp_, kp.public_key, str_to_bytes("m"), rng_);
  ct[ct.size() / 2] ^= 1;
  EXPECT_FALSE(ecies_decrypt(*pp_, kp.secret, ct).has_value());
}

TEST_F(PairingTest, EciesMalformedInputIsRejectedGracefully) {
  const EciesKeyPair kp = ecies_keygen(*pp_, rng_);
  EXPECT_FALSE(ecies_decrypt(*pp_, kp.secret, Bytes{1, 2, 3}).has_value());
  EXPECT_FALSE(ecies_decrypt(*pp_, kp.secret, {}).has_value());
}

TEST_F(PairingTest, EciesCiphertextsAreRandomized) {
  const EciesKeyPair kp = ecies_keygen(*pp_, rng_);
  const Bytes a = ecies_encrypt(*pp_, kp.public_key, str_to_bytes("m"), rng_);
  const Bytes b = ecies_encrypt(*pp_, kp.public_key, str_to_bytes("m"), rng_);
  EXPECT_NE(a, b);
}

// --- Fast path vs reference pins ---------------------------------------------

TEST_F(PairingTest, FastPairMatchesReference) {
  for (int i = 0; i < 5; ++i) {
    const Point a = pp_->mul(pp_->generator(), pp_->random_nonzero_scalar(rng_));
    const Point b = pp_->mul(pp_->generator(), pp_->random_nonzero_scalar(rng_));
    EXPECT_EQ(pp_->pair(a, b), pp_->pair_reference(a, b));
  }
}

TEST_F(PairingTest, PairProductMatchesProductOfPairs) {
  for (const std::size_t n : {1u, 2u, 3u, 7u}) {
    std::vector<PairTerm> terms;
    Fq2 expect = pp_->gt_one();
    for (std::size_t i = 0; i < n; ++i) {
      const Point a =
          pp_->mul(pp_->generator(), pp_->random_nonzero_scalar(rng_));
      const Point b =
          pp_->mul(pp_->generator(), pp_->random_nonzero_scalar(rng_));
      terms.push_back({a, b});
      expect = pp_->gt_mul(expect, pp_->pair_reference(a, b));
    }
    EXPECT_EQ(pp_->pair_product(terms), expect) << n;
  }
}

TEST_F(PairingTest, PairProductEmptyAndInfinityTerms) {
  EXPECT_TRUE(fq2_is_one(pp_->pair_product({})));
  const Point a = pp_->mul(pp_->generator(), pp_->random_nonzero_scalar(rng_));
  const Point b = pp_->mul(pp_->generator(), pp_->random_nonzero_scalar(rng_));
  // Identity terms contribute 1 and must not disturb the shared accumulator.
  const std::vector<PairTerm> terms{
      {Point::at_infinity(), b}, {a, b}, {a, Point::at_infinity()}};
  EXPECT_EQ(pp_->pair_product(terms), pp_->pair(a, b));
}

TEST_F(PairingTest, PairProductNegationCancels) {
  // e(A,B)·e(−A,B) = 1: the identity the HVE/CP-ABE rewrites rely on to
  // turn GT divisions into extra product terms.
  const Point a = pp_->mul(pp_->generator(), pp_->random_nonzero_scalar(rng_));
  const Point b = pp_->mul(pp_->generator(), pp_->random_nonzero_scalar(rng_));
  const std::vector<PairTerm> terms{{a, b}, {pp_->neg(a), b}};
  EXPECT_TRUE(fq2_is_one(pp_->pair_product(terms)));
}

TEST_F(PairingTest, MontScalarMulMatchesReferenceOnEdgeScalars) {
  const BigInt& r = pp_->r();
  const math::Montgomery& mq = pp_->mont_q();
  std::vector<BigInt> scalars{BigInt{},        BigInt{1}, BigInt{2},
                              r - BigInt{1},   r,         r + BigInt{1},
                              r * r + BigInt{7}};
  for (int i = 0; i < 4; ++i) scalars.push_back(BigInt::random_below(rng_, r));
  const Point base =
      pp_->mul(pp_->generator(), pp_->random_nonzero_scalar(rng_));
  const FixedBaseTable table(mq, base, r.bit_length());
  for (const BigInt& k : scalars) {
    const Point ref = point_mul(base, k, pp_->q());
    EXPECT_EQ(point_mul_mont(base, k, mq), ref) << k.to_dec();
    EXPECT_EQ(table.mul(k), ref) << k.to_dec();
  }
  EXPECT_THROW(point_mul_mont(base, BigInt{-1}, mq), std::invalid_argument);
  EXPECT_THROW(table.mul(BigInt{-1}), std::invalid_argument);
  EXPECT_TRUE(point_mul_mont(Point::at_infinity(), BigInt{5}, mq).infinity);
}

TEST_F(PairingTest, Wnaf4DigitsReconstructScalar) {
  for (int i = 0; i < 12; ++i) {
    const BigInt k = BigInt::random_bits(rng_, 8 + 17 * i);
    const auto digits = wnaf4(k);
    BigInt acc{};
    BigInt pow{1};
    for (const std::int8_t d : digits) {
      if (d != 0) {
        EXPECT_NE(d % 2, 0);
        EXPECT_LE(d, 15);
        EXPECT_GE(d, -15);
        acc = acc + pow * BigInt{d};
      }
      pow = pow + pow;
    }
    EXPECT_EQ(acc, k);
  }
}

TEST_F(PairingTest, GtFixedBaseMatchesGenericPow) {
  const Fq2 base = pp_->random_gt(rng_);
  const GtFixedBase table(pp_->mont_q(), base, pp_->r().bit_length());
  std::vector<BigInt> exps{BigInt{}, BigInt{1}, pp_->r() - BigInt{1}};
  for (int i = 0; i < 4; ++i) {
    exps.push_back(BigInt::random_below(rng_, pp_->r()));
  }
  for (const BigInt& e : exps) {
    EXPECT_EQ(table.pow(e), fq2_pow(base, e, pp_->q())) << e.to_dec();
  }
  EXPECT_THROW(table.pow(BigInt{-1}), std::invalid_argument);
  // The Pairing-owned e(g,g) table serves gt_pow on the GT generator.
  const BigInt e = pp_->random_nonzero_scalar(rng_);
  EXPECT_EQ(pp_->gt_pow(pp_->gt_generator(), e),
            fq2_pow(pp_->gt_generator(), e, pp_->q()));
}

TEST_F(PairingTest, MontgomeryFq2PowMatchesPlain) {
  const BigInt& q = pp_->q();
  for (int i = 0; i < 5; ++i) {
    const Fq2 x{BigInt::random_below(rng_, q), BigInt::random_below(rng_, q)};
    const BigInt e = BigInt::random_bits(rng_, 150);
    EXPECT_EQ(fq2_pow(x, e, pp_->mont_q()), fq2_pow(x, e, q));
  }
}

TEST_F(PairingTest, HashToG1PinnedAcrossProcesses) {
  // The exact output for a fixed input on the baked test parameters. A
  // changed value means hash_to_g1 is no longer deterministic across
  // processes/builds, which would break every serialized attribute hash.
  const Point p =
      pp_->hash_to_g1(str_to_bytes("p3s hash_to_g1 determinism pin v1"));
  EXPECT_EQ(to_hex(pp_->serialize_g1(p)),
            "01187676234303dcc246ef3c4b5095faf5558dabe500adb012b1f2aa803f0aa5"
            "cedeca9184630e1972");
}

TEST(PairingBaked, BakedParamsSatisfyCurveInvariants) {
  // test_pairing() and paper_pairing() now load serialized constants; the
  // structural invariants the old generator guaranteed must still hold.
  for (const PairingPtr& pp :
       {Pairing::test_pairing(), Pairing::paper_pairing()}) {
    const BigInt& q = pp->q();
    const BigInt& r = pp->r();
    EXPECT_EQ(q % BigInt{4}, BigInt{3});
    EXPECT_TRUE((q + BigInt{1}) % r == BigInt{});  // q + 1 = h·r
    EXPECT_TRUE(on_curve(pp->generator(), q));
    EXPECT_TRUE(pp->mul(pp->generator(), r).infinity);
    EXPECT_FALSE(fq2_is_one(pp->gt_generator()));
  }
}

}  // namespace
}  // namespace p3s::pairing
