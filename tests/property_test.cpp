// Cross-module property sweeps: randomized agreement between the crypto
// implementations and their plaintext reference semantics, robustness of
// every deserializer against corrupted input, and an end-to-end scale test
// checked against a plaintext oracle.
#include <gtest/gtest.h>

#include "abe/cpabe.hpp"
#include "abe/policy.hpp"
#include "common/rng.hpp"
#include "net/network.hpp"
#include "p3s/system.hpp"
#include "pbe/hve.hpp"
#include "pbe/schema.hpp"

namespace p3s {
namespace {

using pairing::Pairing;

// --- HVE vs plaintext predicate across widths ---------------------------------------

class HveWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HveWidthSweep, AgreesWithPlaintextPredicate) {
  const std::size_t width = GetParam();
  TestRng rng(0x5eed ^ width);
  const auto keys = pbe::hve_setup(Pairing::test_pairing(), width, rng);
  for (int trial = 0; trial < 6; ++trial) {
    pbe::BitVector x(width);
    pbe::Pattern w(width);
    bool concrete = false;
    for (std::size_t i = 0; i < width; ++i) {
      x[i] = static_cast<std::uint8_t>(rng.uniform(2));
      const auto c = rng.uniform(3);
      w[i] = c == 2 ? pbe::kWildcard : static_cast<std::int8_t>(c);
      concrete |= (w[i] != pbe::kWildcard);
    }
    if (!concrete) w[0] = static_cast<std::int8_t>(x[0]);
    const Bytes payload = rng.bytes(8);
    const Bytes ct = pbe::hve_encrypt_bytes(keys.pk, x, payload, rng);
    const auto tok = pbe::hve_gen_token(keys, w, rng);
    const auto out = pbe::hve_query_bytes(*keys.pk.pairing, tok, ct);
    EXPECT_EQ(out.has_value(), pbe::hve_match_plain(x, w)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HveWidthSweep,
                         ::testing::Values(2, 4, 6, 12, 16));

// --- CP-ABE vs plaintext policy evaluation ------------------------------------------

abe::PolicyNode random_policy(TestRng& rng, int depth,
                              const std::vector<std::string>& universe) {
  if (depth == 0 || rng.uniform(3) == 0) {
    return abe::PolicyNode::leaf(universe[rng.uniform(universe.size())]);
  }
  const std::size_t n = 2 + rng.uniform(3);  // 2..4 children
  std::vector<abe::PolicyNode> children;
  for (std::size_t i = 0; i < n; ++i) {
    children.push_back(random_policy(rng, depth - 1, universe));
  }
  const unsigned k = 1 + static_cast<unsigned>(rng.uniform(n));
  return abe::PolicyNode::threshold(k, std::move(children));
}

class CpabePolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(CpabePolicySweep, DecryptSucceedsIffPolicySatisfied) {
  TestRng rng(0xcafe + static_cast<std::uint64_t>(GetParam()) * 271);
  static const abe::CpabeKeys keys =
      abe::cpabe_setup(Pairing::test_pairing(), rng);
  const std::vector<std::string> universe = {"a", "b", "c", "d", "e"};

  const auto policy = random_policy(rng, 2, universe);
  std::set<std::string> attrs;
  for (const auto& a : universe) {
    if (rng.uniform(2) == 0) attrs.insert(a);
  }
  if (attrs.empty()) attrs.insert(universe[0]);

  const auto m = keys.pk.pairing->random_gt(rng);
  const auto ct = cpabe_encrypt(keys.pk, m, policy, rng);
  const auto sk = cpabe_keygen(keys, attrs, rng);
  const auto out = cpabe_decrypt(keys.pk, sk, ct);

  if (policy.satisfied_by(attrs)) {
    ASSERT_TRUE(out.has_value()) << policy.to_string();
    EXPECT_EQ(*out, m) << policy.to_string();
  } else {
    EXPECT_FALSE(out.has_value()) << policy.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPolicies, CpabePolicySweep,
                         ::testing::Range(0, 20));

// --- Deserializer robustness ----------------------------------------------------------
// Every deserializer must reject corrupted/truncated input by throwing (or
// returning nullopt at the API layer) — never crash or accept silently.

class Corruption : public ::testing::Test {
 protected:
  TestRng rng_{0xbad};
  pairing::PairingPtr pp_ = Pairing::test_pairing();
};

template <typename Fn>
void expect_rejects_corruption(const Bytes& valid, Fn&& parse) {
  // Truncations at a spread of prefix lengths.
  for (std::size_t len : {std::size_t{0}, valid.size() / 4, valid.size() / 2,
                          valid.size() - 1}) {
    Bytes cut(valid.begin(), valid.begin() + len);
    EXPECT_THROW(parse(cut), std::exception) << "truncate to " << len;
  }
  // Trailing garbage.
  Bytes extended = valid;
  extended.push_back(0x42);
  EXPECT_THROW(parse(extended), std::exception) << "trailing byte";
}

TEST_F(Corruption, HveCiphertextDeserializer) {
  const auto keys = pbe::hve_setup(pp_, 4, rng_);
  const auto ct = pbe::hve_encrypt(keys.pk, {1, 0, 1, 0},
                                   pp_->random_gt(rng_), rng_);
  expect_rejects_corruption(ct.serialize(*pp_), [&](const Bytes& b) {
    return pbe::HveCiphertext::deserialize(*pp_, b);
  });
}

TEST_F(Corruption, HveTokenDeserializer) {
  const auto keys = pbe::hve_setup(pp_, 4, rng_);
  const auto tok = pbe::hve_gen_token(keys, {1, pbe::kWildcard, 0, pbe::kWildcard},
                                      rng_);
  expect_rejects_corruption(tok.serialize(*pp_), [&](const Bytes& b) {
    return pbe::HveToken::deserialize(*pp_, b);
  });
}

TEST_F(Corruption, CpabeCiphertextDeserializer) {
  const auto keys = abe::cpabe_setup(pp_, rng_);
  const auto ct = abe::cpabe_encrypt(keys.pk, pp_->random_gt(rng_),
                                     abe::parse_policy("a and b"), rng_);
  expect_rejects_corruption(ct.serialize(*pp_), [&](const Bytes& b) {
    return abe::CpabeCiphertext::deserialize(*pp_, b);
  });
}

TEST_F(Corruption, CpabeSecretKeyDeserializer) {
  const auto keys = abe::cpabe_setup(pp_, rng_);
  const auto sk = abe::cpabe_keygen(keys, {"a", "b"}, rng_);
  expect_rejects_corruption(sk.serialize(*pp_), [&](const Bytes& b) {
    return abe::CpabeSecretKey::deserialize(*pp_, b);
  });
}

TEST_F(Corruption, PolicyDeserializer) {
  const auto policy = abe::parse_policy("2 of (a, b and c, d)");
  expect_rejects_corruption(policy.serialize(), [](const Bytes& b) {
    return abe::PolicyNode::deserialize(b);
  });
}

TEST_F(Corruption, SchemaDeserializer) {
  const auto schema = pbe::MetadataSchema::uniform(3, 4);
  expect_rejects_corruption(schema.serialize(), [](const Bytes& b) {
    return pbe::MetadataSchema::deserialize(b);
  });
}

TEST_F(Corruption, ParamsDeserializer) {
  expect_rejects_corruption(pp_->params().serialize(), [](const Bytes& b) {
    return pairing::Params::deserialize(b);
  });
}

TEST_F(Corruption, PointBitFlipsRejectedOrHarmless) {
  // Flipping coordinate bits must yield either a clean rejection (point not
  // on curve) — never a crash.
  const auto pt = pp_->random_g1(rng_);
  const Bytes valid = pp_->serialize_g1(pt);
  int rejected = 0;
  for (std::size_t i = 1; i < valid.size(); i += 3) {
    Bytes bad = valid;
    bad[i] ^= 0x01;
    try {
      (void)pp_->deserialize_g1(bad);
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);  // the curve check fires for nearly all flips
}

// --- End-to-end scale sweep against a plaintext oracle --------------------------------

TEST(ScaleSweep, TwentySubscribersMatchOracle) {
  TestRng rng(0x5ca1e);
  net::DirectNetwork net;
  core::P3sConfig config;
  config.pairing = Pairing::test_pairing();
  config.schema = pbe::MetadataSchema({
      {"topic", {"t0", "t1", "t2", "t3"}},
      {"tier", {"gold", "silver"}},
  });
  core::P3sSystem system(net, config, rng);

  const std::size_t n_subs = 20;
  std::vector<std::unique_ptr<core::Subscriber>> subs;
  std::vector<pbe::Interest> interests;
  for (std::size_t i = 0; i < n_subs; ++i) {
    subs.push_back(system.make_subscriber("sub" + std::to_string(i),
                                          "u" + std::to_string(i),
                                          {"member"}, rng));
    pbe::Interest interest;
    interest["topic"] = "t" + std::to_string(rng.uniform(4));
    if (rng.uniform(2) == 0) {
      interest["tier"] = rng.uniform(2) == 0 ? "gold" : "silver";
    }
    interests.push_back(interest);
    subs[i]->subscribe(interest);
  }
  auto pub = system.make_publisher("pub", "press", rng);

  std::vector<std::size_t> expected(n_subs, 0);
  for (int k = 0; k < 6; ++k) {
    pbe::Metadata md;
    md["topic"] = "t" + std::to_string(rng.uniform(4));
    md["tier"] = rng.uniform(2) == 0 ? "gold" : "silver";
    pub->publish(md, str_to_bytes("msg" + std::to_string(k)),
                 abe::parse_policy("member"));
    for (std::size_t i = 0; i < n_subs; ++i) {
      if (pbe::interest_matches(interests[i], md)) ++expected[i];
    }
  }
  for (std::size_t i = 0; i < n_subs; ++i) {
    EXPECT_EQ(subs[i]->deliveries().size(), expected[i]) << "subscriber " << i;
    EXPECT_EQ(subs[i]->metadata_received(), 6u) << "subscriber " << i;
  }
}

}  // namespace
}  // namespace p3s
