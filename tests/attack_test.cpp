// Adversarial workload matrix (DESIGN.md §11): every attack in src/attack
// runs as an executable scenario against a vulnerable baseline (defense
// off — the attack must LAND, advantage above its leak budget) and against
// the hardened configuration (advantage must stay within budget while
// delivery stays exactly-once). Each (attack, mode, seed) cell is an
// individual ctest case; a failing cell prints a one-line replay command.
//
// Budgets are the declared leak contract for each attack class. They are
// meaningful only because the vulnerable cells EXCEED them: a budget both
// modes satisfy would pin nothing.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "attack/attacks.hpp"
#include "attack/scenario.hpp"
#include "net/fault.hpp"
#include "obs/catalog.hpp"
#include "obs/metrics.hpp"

namespace p3s::attack {
namespace {

constexpr double kFrequencyBudget = 0.25;
constexpr double kIntersectionBudget = 0.20;
constexpr double kProbeBudget = 0.25;
constexpr double kReplayBudget = 0.15;

std::uint64_t counter_value(const char* name) {
  return obs::Registry::global().counter(name).value();
}

struct AttackCellCase {
  const char* attack;  // frequency | intersection | probe | replay
  const char* mode;    // vulnerable | hardened
  std::uint64_t seed;
};

std::string case_name(const AttackCellCase& c) {
  return std::string(c.attack) + "_" + c.mode + "_seed" +
         std::to_string(c.seed);
}

void PrintTo(const AttackCellCase& c, std::ostream* os) {
  *os << case_name(c);
}

std::vector<AttackCellCase> attack_cases() {
  std::vector<AttackCellCase> out;
  for (const char* attack :
       {"frequency", "intersection", "probe", "replay"}) {
    for (const char* mode : {"vulnerable", "hardened"}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        out.push_back({attack, mode, seed});
      }
    }
  }
  return out;
}

class AttackMatrix : public ::testing::TestWithParam<AttackCellCase> {
 protected:
  bool hardened() const { return std::string(GetParam().mode) == "hardened"; }

  void check_budget(const AttackReport& report) {
    if (hardened()) {
      EXPECT_LE(report.advantage, report.budget)
          << report.name << " leaked past its budget: " << report.detail;
    } else {
      EXPECT_GT(report.advantage, report.budget)
          << report.name
          << " did not land on the vulnerable baseline (vacuous budget): "
          << report.detail;
    }
  }

  /// Every subscriber delivered exactly the publications of its topic,
  /// without duplicates — the defenses must not cost correctness.
  void check_exactly_once(AttackScenario& sc, std::size_t per_topic) {
    for (core::Subscriber* sub : sc.subscribers()) {
      std::set<Guid> got;
      for (const auto& d : sub->deliveries()) {
        EXPECT_TRUE(got.insert(d.guid).second)
            << sub->name() << ": duplicate delivery";
      }
      EXPECT_EQ(got.size(), per_topic) << sub->name();
    }
  }
};

TEST_P(AttackMatrix, AdvantageStaysWithinLeakBudget) {
  const AttackCellCase c = GetParam();
  SCOPED_TRACE("replay: tests/test_attack --gtest_filter='*" + case_name(c) +
               "'");
  const std::string attack = c.attack;

  if (attack == "frequency") {
    // Passive eavesdropper correlating a known publish schedule with
    // per-subscriber reaction timing on the sub → anonymizer link.
    ScenarioConfig cfg;
    cfg.seed = c.seed;
    cfg.hardened = hardened();
    cfg.subs_per_topic = 3;
    AttackScenario sc(cfg);
    ASSERT_TRUE(sc.settle());
    const auto ds_flushes = counter_value(obs::names::kDsBatchFlushesTotal);
    const auto anon_flushes =
        counter_value(obs::names::kAnonBatchFlushesTotal);
    for (int round = 0; round < 4; ++round) {
      sc.publish("finance");
      sc.publish("tech");
    }
    ASSERT_TRUE(sc.drain());
    const EavesdropperObserver obs = sc.observer();
    const AttackReport report = frequency_attack(
        obs, sc.schedule(), sc.truth(),
        sc.system().directory().anonymizer_name, AttackScenario::topics(),
        kFrequencyBudget);
    emit_attack_metrics(report, obs.sightings().size());
    check_budget(report);
    if (hardened()) {
      // Non-vacuous: the mixing defenses actually engaged.
      EXPECT_GT(counter_value(obs::names::kDsBatchFlushesTotal), ds_flushes);
      EXPECT_GT(counter_value(obs::names::kAnonBatchFlushesTotal),
                anon_flushes);
    }
    check_exactly_once(sc, 4);
    return;
  }

  if (attack == "intersection") {
    // Malicious RS intersecting request arrivals with the publish schedule.
    // The defense under test is the anonymizer itself: the vulnerable
    // baseline runs without it, so subscribers fetch under their own names.
    ScenarioConfig cfg;
    cfg.seed = c.seed;
    cfg.hardened = hardened();
    cfg.with_anonymizer = hardened();
    cfg.subs_per_topic = 3;
    AttackScenario sc(cfg);
    ASSERT_TRUE(sc.settle());
    for (int round = 0; round < 4; ++round) {
      sc.publish("finance");
      sc.publish("tech");
    }
    ASSERT_TRUE(sc.drain());
    const EavesdropperObserver obs = sc.observer();
    const std::string rs = sc.system().directory().rs_name;
    const AttackReport report =
        intersection_attack(obs, sc.schedule(), sc.truth(), rs,
                            AttackScenario::topics(), kIntersectionBudget);
    emit_attack_metrics(report, obs.on_link("", rs).size());
    check_budget(report);
    if (hardened()) {
      // Structural form of the same guarantee: the RS never sees a
      // subscriber identity — only the relay and the DS talk to it.
      const std::string anon = sc.system().directory().anonymizer_name;
      const std::string ds = sc.system().directory().ds_name;
      for (const Sighting& s : obs.on_link("", rs)) {
        EXPECT_TRUE(s.from == anon || s.from == ds) << s.from;
      }
    }
    check_exactly_once(sc, 4);
    return;
  }

  if (attack == "probe") {
    // Chosen-publication oracle: a malicious publisher probes each topic
    // and watches which victims react. Ambient workload publications
    // interleave with the probes; hardened batching merges probe and
    // ambient rounds so the oracle loses attribution.
    ScenarioConfig cfg;
    cfg.seed = c.seed;
    cfg.hardened = hardened();
    cfg.subs_per_topic = 2;
    AttackScenario sc(cfg);
    ASSERT_TRUE(sc.settle());
    sc.attacker();  // register before the schedule opens
    std::size_t probes = 0;
    for (int rep = 0; rep < 2; ++rep) {
      sc.publish("finance", /*probe=*/true);
      ++probes;
      sc.publish("tech");
      sc.publish("tech", /*probe=*/true);
      ++probes;
      sc.publish("finance");
    }
    ASSERT_TRUE(sc.drain());
    const EavesdropperObserver obs = sc.observer();
    const AttackReport report = probe_attack(
        obs, sc.schedule(), sc.truth(),
        sc.system().directory().anonymizer_name, AttackScenario::topics(),
        kProbeBudget);
    emit_attack_metrics(report, obs.sightings().size(), probes);
    check_budget(report);
    check_exactly_once(sc, 4);
    return;
  }

  ASSERT_EQ(attack, "replay");
  // Malicious-DS replay griefing, two layers deep. First, the PR-5 fault
  // plan's duplicate fault re-sends sealed channel records on the wire —
  // the SecureSession sequence check must absorb those in BOTH modes.
  // Second, a compromised DS re-seals its retained broadcasts with fresh
  // channel sequence numbers (replay_broadcasts), which only the reliable
  // layer's broadcast-index dedup can suppress: the vulnerable baseline
  // reprocesses every replay (match + fetch amplification).
  ScenarioConfig cfg;
  cfg.seed = c.seed;
  cfg.reliability = hardened();
  cfg.subs_per_topic = 1;
  AttackScenario sc(cfg);
  ASSERT_TRUE(sc.settle());
  net::FaultPlan plan(c.seed);
  net::LinkFaults replay_faults;
  replay_faults.duplicate = 0.6;
  replay_faults.delay_max = 2.0;
  const std::string ds = sc.system().directory().ds_name;
  for (core::Subscriber* sub : sc.subscribers()) {
    plan.set_link(ds, sub->name(), replay_faults);
  }
  const auto wire_dups_before =
      counter_value(obs::names::kNetFaultDuplicatedTotal);
  sc.net().set_fault_plan(std::move(plan));
  for (int round = 0; round < 3; ++round) {
    sc.publish("finance");
    sc.publish("tech");
  }
  ASSERT_TRUE(sc.converge([&] {
    for (core::Subscriber* sub : sc.subscribers()) {
      if (sub->deliveries().size() != 3u) return false;
    }
    return sc.net().in_flight() == 0;
  }));
  // Wire-level duplicates were injected, yet the channel absorbed them:
  // metadata processing so far matches the genuine broadcast count.
  EXPECT_GT(counter_value(obs::names::kNetFaultDuplicatedTotal),
            wire_dups_before);
  const std::size_t broadcasts = sc.schedule().size();
  const std::size_t expected =
      broadcasts * sc.subscribers().size();
  EXPECT_EQ(sc.metadata_received_total(), expected);
  // Now the compromised DS replays its whole broadcast log.
  EXPECT_GT(sc.system().ds().replay_broadcasts(), 0u);
  ASSERT_TRUE(sc.drain());
  const AttackReport report =
      replay_attack(broadcasts, sc.subscribers().size(),
                    sc.metadata_received_total(), kReplayBudget);
  emit_attack_metrics(report, sc.observer().sightings().size());
  check_budget(report);
  if (hardened()) {
    // Non-vacuous: replays really arrived and were suppressed.
    EXPECT_GT(sc.duplicate_metadata_total(), 0u);
  }
  check_exactly_once(sc, 3);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AttackMatrix, ::testing::ValuesIn(attack_cases()),
    [](const ::testing::TestParamInfo<AttackCellCase>& info) {
      return case_name(info.param);
    });

// --- observer unit coverage --------------------------------------------------

TEST(EavesdropperObserverTest, StripsContentAndTalliesLinks) {
  net::DirectNetwork net;
  net.register_endpoint("b", [](const std::string&, BytesView) {});
  net.send("a", "b", Bytes{1, 2, 3});
  net.send("a", "b", Bytes{4, 5, 6, 7});
  net.send("c", "b", Bytes{8});
  const EavesdropperObserver obs(net.traffic());
  ASSERT_EQ(obs.sightings().size(), 3u);
  EXPECT_EQ(obs.on_link("a", "b").size(), 2u);
  EXPECT_EQ(obs.on_link("", "b").size(), 3u);
  const auto tally = obs.link_tally();
  ASSERT_EQ(tally.size(), 2u);
  EXPECT_EQ(tally.at({"a", "b"}).frames, 2u);
  EXPECT_EQ(tally.at({"a", "b"}).bytes, 7u);
  EXPECT_EQ(tally.at({"c", "b"}).frames, 1u);
  EXPECT_EQ(obs.sizes_on("a", "b"), (std::set<std::size_t>{3u, 4u}));
}

TEST(AttackReportTest, ReplayAdvantageIsAmplification) {
  const AttackReport none = replay_attack(6, 2, 12, 0.15);
  EXPECT_DOUBLE_EQ(none.advantage, 0.0);
  EXPECT_TRUE(none.within_budget());
  const AttackReport amplified = replay_attack(6, 2, 18, 0.15);
  EXPECT_DOUBLE_EQ(amplified.advantage, 0.5);
  EXPECT_FALSE(amplified.within_budget());
}

}  // namespace
}  // namespace p3s::attack
